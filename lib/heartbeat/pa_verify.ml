let default_max = 4_000_000

let participants variant (p : Params.t) =
  let n =
    match (variant : Pa_models.variant) with
    | Pa_models.Static | Pa_models.Expanding | Pa_models.Dynamic -> p.Params.n
    | Pa_models.Binary | Pa_models.Revised | Pa_models.Two_phase -> 1
  in
  List.init n (fun k -> k + 1)

let name_in names (l : Proc.Semantics.label) =
  match l with
  | Proc.Semantics.Tick -> false
  | Proc.Semantics.Act (name, _) -> List.mem name names

let is_tick (l : Proc.Semantics.label) = l = Proc.Semantics.Tick

(* Each monitor is paired with its alphabet: the action names its
   predicates observe, plus [tick] for the deadline monitors (their
   clock is the global tick).  The alphabet is what the partial-order
   reduction must keep visible for the verdict to carry over. *)
let monitors variant (p : Params.t) req :
    (Proc.Semantics.label Mc.Monitor.t * string list) list =
  let ps = participants variant p in
  let joining = Pa_models.has_join variant in
  let loses = List.concat_map (Pa_models.act_lose variant) ps in
  match (req : Requirements.requirement) with
  | Requirements.R1 ->
      (* One watchdog per participant: more than 2*tmax ticks after the
         last beat of p[i] received at p[0], while p[0] never
         inactivated, is an error.  For the joining variants the watchdog
         arms at the first received beat or join request and is disarmed
         by a leave beat. *)
      List.map
        (fun i ->
          let reset_names =
            [ Pa_models.act_beat_delivered_to_p0 i ]
            @ if joining then [ Pa_models.act_join_delivered_to_p0 i ] else []
          in
          let ok_names =
            [ Pa_models.act_inactivate_nv_p0; Pa_models.act_crash_p0 ]
            @
            if variant = Pa_models.Dynamic then
              [ Pa_models.act_leave_delivered_to_p0 i ]
            else []
          in
          let reset = name_in reset_names and ok = name_in ok_names in
          let bound = 2 * p.Params.tmax in
          let monitor =
            if joining then
              Mc.Monitor.deadline_after ~arm:reset ~tick:is_tick ~reset ~ok
                bound
            else Mc.Monitor.deadline ~tick:is_tick ~reset ~ok bound
          in
          (monitor, (Proc.Spec.tick_name :: reset_names) @ ok_names))
        ps
  | Requirements.R2 ->
      (* inactivate_nv_p[i] must be preceded by a loss or by an
         inactivation of p[0] or of some other participant (voluntary
         crash or watchdog inactivation; leaving does not count). *)
      List.map
        (fun i ->
          let fault =
            loses
            @ [ Pa_models.act_crash_p0; Pa_models.act_inactivate_nv_p0 ]
            @ List.concat_map
                (fun j ->
                  if j = i then []
                  else
                    [
                      Pa_models.act_crash_pi j; Pa_models.act_inactivate_nv_pi j;
                    ])
                ps
          in
          let bad = [ Pa_models.act_inactivate_nv_pi i ] in
          ( Mc.Monitor.precedence ~fault:(name_in fault) ~bad:(name_in bad),
            fault @ bad ))
        ps
  | Requirements.R3 ->
      (* inactivate_nv_p0 must be preceded by a loss or by any
         inactivation of a participant (leaving does not count). *)
      let fault =
        loses
        @ List.concat_map
            (fun j ->
              [ Pa_models.act_crash_pi j; Pa_models.act_inactivate_nv_pi j ])
            ps
      in
      let bad = [ Pa_models.act_inactivate_nv_p0 ] in
      [
        ( Mc.Monitor.precedence ~fault:(name_in fault) ~bad:(name_in bad),
          fault @ bad );
      ]

(* The lint pass's static state bound, as an [expected_states] table
   pre-sizing hint for the explorer.  Memoised on the spec term: sweeps
   revisit the same spec for several requirements and engines. *)
let expected_of spec =
  match Lint.Pa.static_bound_cached spec with
  | Lint.Interval.Finite n -> Some n
  | Lint.Interval.Unbounded -> None

let check_verdict ?(max_states = default_max) ?(domains = 1) ?(slice = false)
    ?(reduce = false) ?store ?workstealing ?budget ?degrade variant params req
    =
  let spec = Pa_models.build variant params in
  let sys = Proc.Semantics.system spec in
  (* the slice never touches action labels, so the monitors and their
     POR alphabets carry over unchanged; the pre-sizing hint and the
     reduction are computed over the sliced spec (what is actually
     explored) *)
  let sspec = if slice then (Slice_pa.slice spec).Slice_pa.spec else spec in
  let slice_sys = if slice then Some (Proc.Semantics.system sspec) else None in
  let expected_states = expected_of sspec in
  (* reduction composes with domains > 1 through the parallel-safe
     proviso: each reduced system is built with [~par:true] and Safety
     is told not to force the sequential engine *)
  let par = domains > 1 in
  let analysis = if reduce then Some (Por.analyze_cached sspec) else None in
  (* first non-Holds verdict wins; all monitors must hold for Holds *)
  let rec go = function
    | [] -> Mc.Safety.Holds
    | (monitor, alphabet) :: rest -> (
        let reduction =
          Option.map (fun a -> Por.reduced_system ~alphabet ~par a) analysis
        in
        match
          Mc.Safety.check_monitor ~max_states ?expected_states ~domains
            ?slice:slice_sys ?reduction ~parallel_reduction:par ?store
            ?workstealing ?budget ?degrade sys monitor
        with
        | Mc.Safety.Holds -> go rest
        | v -> v)
  in
  go (monitors variant params req)

let check ?max_states ?domains ?slice ?reduce ?store ?workstealing variant
    params req =
  match
    check_verdict ?max_states ?domains ?slice ?reduce ?store ?workstealing
      variant params req
  with
  | Mc.Safety.Holds -> true
  | Mc.Safety.Violated _ -> false
  | Mc.Safety.Unknown n ->
      Format.kasprintf failwith
        "Pa_verify.check: state bound %d exceeded (%s, %s)" n
        (Pa_models.variant_name variant)
        (Requirements.name req)
  | Mc.Safety.Exhausted e ->
      Format.kasprintf failwith "Pa_verify.check: %a (%s, %s)"
        Mc.Explore.pp_exhaustion e
        (Pa_models.variant_name variant)
        (Requirements.name req)

let state_count ?(max_states = default_max) ?(domains = 1) ?(slice = false)
    ?(reduce = false) ?store ?workstealing variant params =
  let spec = Pa_models.build variant params in
  let spec = if slice then (Slice_pa.slice spec).Slice_pa.spec else spec in
  let expected_states = expected_of spec in
  let parallel =
    domains > 1 || store <> None || workstealing <> None
  in
  let count, complete =
    let sys =
      if reduce then
        Por.reduced_system ~par:(domains > 1) (Por.analyze_cached spec)
      else Proc.Semantics.system spec
    in
    if parallel then
      Mc.Pexplore.count ~max_states ?expected_states ~domains
        ?store ?workstealing sys
    else Mc.Explore.count ~max_states ?expected_states sys
  in
  if not complete then failwith "Pa_verify.state_count: state bound exceeded";
  count

type explore_stats = { states : int; transitions : int; complete : bool }

let explore ?(max_states = default_max) ?(slice = false) ?(reduce = false)
    variant params =
  let spec = Pa_models.build variant params in
  let spec = if slice then (Slice_pa.slice spec).Slice_pa.spec else spec in
  let expected_states = expected_of spec in
  let sys =
    if reduce then Por.reduced_system (Por.analyze_cached spec)
    else Proc.Semantics.system spec
  in
  let space = Mc.Explore.space ~max_states ?expected_states sys in
  {
    states = Lts.Graph.num_states space.Mc.Explore.lts;
    transitions = Lts.Graph.num_transitions space.Mc.Explore.lts;
    complete = space.Mc.Explore.complete;
  }

let check_live ?(engine = Ltl.Check.Ndfs) ?(max_states = default_max)
    ?(slice = false) ?(reduce = false) ?(domains = 1) ?store ?workstealing
    ?budget variant params req =
  let spec = Pa_models.build variant params in
  let sys = Proc.Semantics.system spec in
  let sspec = if slice then (Slice_pa.slice spec).Slice_pa.spec else spec in
  let slice_sys = if slice then Some (Proc.Semantics.system sspec) else None in
  let reduction =
    if reduce then
      let a = Por.analyze_cached sspec in
      Some (fun ~alphabet -> Por.reduction ~par:(domains > 1) a ~alphabet)
    else None
  in
  Ltl.Check.check ~engine ~fairness:Requirements.live_fairness_pa
    ?slice:slice_sys ?reduction ~max_states ~domains ?store ?workstealing
    ?budget sys
    (Requirements.live_formula_pa variant params req)

let check_live_run ?(engine = Ltl.Check.Ndfs) ?(max_states = default_max)
    ?(slice = false) ?(reduce = false) ?(domains = 1) ?store ?workstealing
    ?budget ?checkpoint ?resume variant params req =
  let spec = Pa_models.build variant params in
  let sys = Proc.Semantics.system spec in
  let sspec = if slice then (Slice_pa.slice spec).Slice_pa.spec else spec in
  let slice_sys = if slice then Some (Proc.Semantics.system sspec) else None in
  let reduction =
    if reduce then
      let a = Por.analyze_cached sspec in
      Some (fun ~alphabet -> Por.reduction ~par:(domains > 1) a ~alphabet)
    else None
  in
  Ltl.Check.check_run ~engine ~fairness:Requirements.live_fairness_pa
    ?slice:slice_sys ?reduction ~max_states ~domains ?store ?workstealing
    ?budget ?checkpoint ?resume sys
    (Requirements.live_formula_pa variant params req)
