(** The verification driver: model-check a protocol against R1–R3 and
    regenerate the paper's result tables.

    This is the workflow of the paper's §5.4–5.5: build the model for a
    data set [(tmin, tmax)], check each requirement, and tabulate
    satisfied / violated. *)

type outcome = {
  holds : bool;
  counterexample : Ta.Semantics.label list option;
      (** a shortest violating trace, when [holds] is false *)
  states_explored : int option;  (** when cheaply available *)
  exhausted : Mc.Explore.exhaustion option;
      (** set when the resource budget tripped before a full verdict:
          [holds] is then [false] with no counterexample, meaning
          "no violation found in the covered fraction" *)
}

val check :
  ?fixed:bool ->
  ?max_states:int ->
  ?domains:int ->
  ?slice:bool ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  ?budget:Mc.Budget.t ->
  ?degrade:bool ->
  ?zone:bool ->
  ?lu:Zone.Sym.lu ->
  Ta_models.variant ->
  Params.t ->
  Requirements.requirement ->
  outcome
(** Model-check one requirement.  [domains] (default 1) selects the
    sequential or the parallel exploration engine ({!Mc.Pexplore}); the
    verdict and counterexample length are identical either way.
    [store] and [workstealing] are forwarded to {!Mc.Safety}: a
    compressed store makes [holds = true] probabilistic (omitted states
    are never explored), while violations found are always real.
    [slice] (default false) first slices the model against the
    requirement's property seed ({!Requirements.slice_seed}, the
    [slice] library): irrelevant variables and clocks are projected
    out, constants folded, and per-location inactive clocks zeroed.
    The verdict is unchanged (the slice is an exact label-preserving
    projection) and the counterexample trace replays in the full model
    ({!Slice.replay}); the explorer pre-sizing then uses the
    activity-aware post-slice bound.
    [budget] bounds the run by wall clock / live heap; a trip is
    reported in [outcome.exhausted] rather than raising, and with
    [degrade] (default [true]) memory trips first walk the store down
    the compression ladder (see {!Mc.Safety.check_monitor}).
    [zone] (default false) checks the {e dense-time} semantics instead,
    through the symbolic zone engine ({!Zone.Reach} over {!Zone.Sym}):
    states are location/variable vectors paired with canonical DBMs,
    explored with inclusion subsumption.  For these models (all clock
    constraints closed) the verdict coincides with the discrete one;
    counterexample traces are action sequences modulo time and replay
    discretely ({!Zone.Reach.guided_replay}).
    [lu] (default {!Zone.Sym.Global}) selects the zone engine's
    extrapolation mode; {!Zone.Sym.Location} uses the per-location
    bound tables from the [lubounds] backward fixpoint — same
    verdicts, never more stored zones.
    @raise Invalid_argument if [zone] is combined with [slice],
    [domains > 1], [store] or [workstealing] (the zone engine is
    sequential with an exact store), or if [lu] is [Location] without
    [zone].
    @raise Failure if the state bound is exceeded (no verdict). *)

val check_live :
  ?fixed:bool ->
  ?engine:Ltl.Check.engine ->
  ?max_states:int ->
  ?slice:bool ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  ?budget:Mc.Budget.t ->
  Ta_models.variant ->
  Params.t ->
  Requirements.requirement ->
  Ta.Semantics.label Ltl.Check.verdict
(** Model-check the liveness formulation of a requirement
    ({!Requirements.live_formula}) under time divergence
    ({!Requirements.live_fairness}).  The watchdog automata are never
    included: R1-live is a pure LTL property.  A refutation carries a
    lasso (render it with {!Msc.render_lasso}); [Unknown] is returned
    when the product state bound is hit. *)

val check_live_run :
  ?fixed:bool ->
  ?engine:Ltl.Check.engine ->
  ?max_states:int ->
  ?slice:bool ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  ?budget:Mc.Budget.t ->
  ?checkpoint:
    (int
    * ((Ta.Semantics.config, Ta.Semantics.label) Ltl.Check.product_cursor ->
      unit)) ->
  ?resume:(Ta.Semantics.config, Ta.Semantics.label) Ltl.Check.product_cursor ->
  Ta_models.variant ->
  Params.t ->
  Requirements.requirement ->
  (Ta.Semantics.config, Ta.Semantics.label) Ltl.Check.run_result
(** The resilient form of {!check_live} ({!Ltl.Check.check_run}): a
    budget trip with the {!Ltl.Check.Scc} engine suspends into a
    checkpointable product cursor instead of concluding, and [resume]
    continues from one.
    @raise Invalid_argument if [checkpoint]/[resume] is combined with
    the {!Ltl.Check.Ndfs} engine. *)

type row = {
  tmin : int;
  tmax : int;
  r1 : bool;
  r2 : bool;
  r3 : bool;
}

val table :
  ?fixed:bool ->
  ?n:int ->
  ?datasets:(int * int) list ->
  ?domains:int ->
  ?slice:bool ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  Ta_models.variant ->
  row list
(** One verification row per data set (default: the paper's
    {!Params.table_datasets}), i.e. Table 1 for the binary family and
    static, Table 2 for expanding/dynamic. *)

val pp_table :
  Format.formatter -> header:string -> row list -> unit
(** Render rows in the layout of the paper's tables ([T]/[F] entries). *)

val worst_detection :
  ?fixed:bool -> ?max_states:int -> ?domains:int -> Ta_models.variant -> Params.t -> int
(** The exact worst-case time between the last heartbeat received by
    p\[0\] and p\[0\]'s inactivation, measured {e on the model}: the
    smallest watchdog bound [B] such that the R1 property with bound [B]
    holds.  Cross-validates the §6.2 closed-form analysis
    ({!Bounds.p0_detection_exhaustive}) against the actual state space.
    @raise Failure if even the bound [4*tmax] is violated (p\[0\] can
    starve forever — e.g. the dynamic protocol's leave semantics). *)

val deadlocks :
  ?fixed:bool ->
  ?max_states:int ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  ?budget:Mc.Budget.t ->
  ?degrade:bool ->
  Ta_models.variant ->
  Params.t ->
  Ta.Semantics.label Mc.Safety.verdict
(** Deadlock search as a full verdict: {!Mc.Safety.Holds} means no
    configuration without successors, [Violated] carries a shortest
    trace to one, and a [budget] trip yields [Exhausted] instead of
    raising. *)

val deadlock_free :
  ?fixed:bool ->
  ?max_states:int ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  Ta_models.variant ->
  Params.t ->
  bool
(** Sanity check used by the test suite: the model has no configuration
    without successors (would indicate a modelling artefact such as a
    blocked urgent location).
    @raise Failure on a hit state bound or tripped budget. *)
