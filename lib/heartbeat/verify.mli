(** The verification driver: model-check a protocol against R1–R3 and
    regenerate the paper's result tables.

    This is the workflow of the paper's §5.4–5.5: build the model for a
    data set [(tmin, tmax)], check each requirement, and tabulate
    satisfied / violated. *)

type outcome = {
  holds : bool;
  counterexample : Ta.Semantics.label list option;
      (** a shortest violating trace, when [holds] is false *)
  states_explored : int option;  (** when cheaply available *)
}

val check :
  ?fixed:bool ->
  ?max_states:int ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  Ta_models.variant ->
  Params.t ->
  Requirements.requirement ->
  outcome
(** Model-check one requirement.  [domains] (default 1) selects the
    sequential or the parallel exploration engine ({!Mc.Pexplore}); the
    verdict and counterexample length are identical either way.
    [store] and [workstealing] are forwarded to {!Mc.Safety}: a
    compressed store makes [holds = true] probabilistic (omitted states
    are never explored), while violations found are always real.
    @raise Failure if the state bound is exceeded (no verdict). *)

val check_live :
  ?fixed:bool ->
  ?engine:Ltl.Check.engine ->
  ?max_states:int ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  Ta_models.variant ->
  Params.t ->
  Requirements.requirement ->
  Ta.Semantics.label Ltl.Check.verdict
(** Model-check the liveness formulation of a requirement
    ({!Requirements.live_formula}) under time divergence
    ({!Requirements.live_fairness}).  The watchdog automata are never
    included: R1-live is a pure LTL property.  A refutation carries a
    lasso (render it with {!Msc.render_lasso}); [Unknown] is returned
    when the product state bound is hit. *)

type row = {
  tmin : int;
  tmax : int;
  r1 : bool;
  r2 : bool;
  r3 : bool;
}

val table :
  ?fixed:bool ->
  ?n:int ->
  ?datasets:(int * int) list ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  Ta_models.variant ->
  row list
(** One verification row per data set (default: the paper's
    {!Params.table_datasets}), i.e. Table 1 for the binary family and
    static, Table 2 for expanding/dynamic. *)

val pp_table :
  Format.formatter -> header:string -> row list -> unit
(** Render rows in the layout of the paper's tables ([T]/[F] entries). *)

val worst_detection :
  ?fixed:bool -> ?max_states:int -> ?domains:int -> Ta_models.variant -> Params.t -> int
(** The exact worst-case time between the last heartbeat received by
    p\[0\] and p\[0\]'s inactivation, measured {e on the model}: the
    smallest watchdog bound [B] such that the R1 property with bound [B]
    holds.  Cross-validates the §6.2 closed-form analysis
    ({!Bounds.p0_detection_exhaustive}) against the actual state space.
    @raise Failure if even the bound [4*tmax] is violated (p\[0\] can
    starve forever — e.g. the dynamic protocol's leave semantics). *)

val deadlock_free :
  ?fixed:bool ->
  ?max_states:int ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  Ta_models.variant ->
  Params.t ->
  bool
(** Sanity check used by the test suite: the model has no configuration
    without successors (would indicate a modelling artefact such as a
    blocked urgent location). *)
