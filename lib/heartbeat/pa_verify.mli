(** Verification of the process-algebra models (paper §5.2).

    The paper checks the same requirements on the mCRL2 models with the
    CADP toolset, using µ-calculus safety formulae of the shape
    [\[R\]false] plus watchdog monitor processes.  Here R2 and R3 are the
    corresponding regular safety properties over the action traces, and R1
    is a deadline monitor over [tick]s ({!Mc.Monitor.deadline}) — the
    exact counterpart of the paper's watchdog-with-error-action scheme.

    The test suite checks these verdicts against the timed-automata
    verdicts of {!Verify} on common data sets (the paper's claim that
    "both model checkers produced similar results"). *)

val check_verdict :
  ?max_states:int ->
  ?domains:int ->
  ?slice:bool ->
  ?reduce:bool ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  ?budget:Mc.Budget.t ->
  ?degrade:bool ->
  Pa_models.variant ->
  Params.t ->
  Requirements.requirement ->
  Proc.Semantics.label Mc.Safety.verdict
(** Like {!check} but as a full {!Mc.Safety.verdict}: the first
    non-[Holds] verdict among the requirement's monitors is returned
    (monitors are checked in participant order).  A [budget] trip
    surfaces as [Exhausted] instead of raising; [degrade] (default
    [true]) lets memory trips walk the store down the compression
    ladder in place (see {!Mc.Safety.check_monitor}). *)

val check :
  ?max_states:int ->
  ?domains:int ->
  ?slice:bool ->
  ?reduce:bool ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  Pa_models.variant ->
  Params.t ->
  Requirements.requirement ->
  bool
(** [check variant params req] model-checks [req] on the process-algebra
    model; [true] means the requirement holds.  [domains] (default 1)
    selects the sequential or parallel exploration engine.  [reduce]
    (default false) explores an ample-set reduced sub-structure instead
    ({!Por}), with each monitor's alphabet kept visible; the verdict is
    unchanged, counterexample traces may schedule independent actions
    differently.  [reduce] composes with [domains > 1]: the reduced
    systems are then built with the parallel-safe proviso
    ([Por.reduced_system ~par:true]) and explored in parallel.  [store]
    and [workstealing] are forwarded to the engine ({!Mc.Safety}); a
    [true] result under a compressed store is probabilistic in the
    usual under-approximating sense.

    [slice] (default false) first runs the property-directed static
    slice ({!Slice.Pa}) over the spec and explores the sliced system
    instead; action labels are never touched by the slice, so the
    monitors, their POR alphabets, and the verdict carry over exactly.
    The pre-sizing hint and (with [reduce]) the ample-set analysis are
    computed over the sliced spec — the model actually explored.
    @raise Failure if the state bound (default 4 million) is exceeded. *)

val state_count :
  ?max_states:int ->
  ?domains:int ->
  ?slice:bool ->
  ?reduce:bool ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  Pa_models.variant ->
  Params.t ->
  int
(** Size of the reachable state space (for tests and benchmarks); with
    [reduce], of the reduced sub-structure (parallel-proviso-reduced
    when [domains > 1], so the count may differ slightly from the
    sequential reduced count between runs — full counts are unaffected).
    A compressed [store] under-counts on fingerprint collision. *)

type explore_stats = { states : int; transitions : int; complete : bool }

val explore :
  ?max_states:int ->
  ?slice:bool ->
  ?reduce:bool ->
  Pa_models.variant ->
  Params.t ->
  explore_stats
(** Reachable states and transitions.  With [reduce] the ample-set
    partial-order reduction ({!Por}) with an empty property alphabet is
    applied, so the counts are those of the reduced sub-structure;
    [complete = false] means the bound was hit (the counts are then the
    deterministic truncation of {!Mc.Explore.space}). *)

val check_live :
  ?engine:Ltl.Check.engine ->
  ?max_states:int ->
  ?slice:bool ->
  ?reduce:bool ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  ?budget:Mc.Budget.t ->
  Pa_models.variant ->
  Params.t ->
  Requirements.requirement ->
  Proc.Semantics.label Ltl.Check.verdict
(** The liveness reading of the requirement
    ({!Requirements.live_formula_pa}) under time divergence
    ({!Requirements.live_fairness_pa}).  With [reduce] the check offers
    {!Ltl.Check.check} the partial-order reduction (parallel-safe when
    [domains > 1]); the formulas pass the stutter-invariance gate, so
    it is actually applied.  [domains], [store] and [workstealing]
    take effect with the {!Ltl.Check.Scc} engine (see
    {!Ltl.Check.check}). *)

val check_live_run :
  ?engine:Ltl.Check.engine ->
  ?max_states:int ->
  ?slice:bool ->
  ?reduce:bool ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  ?budget:Mc.Budget.t ->
  ?checkpoint:
    (int
    * ((Proc.Semantics.state, Proc.Semantics.label) Ltl.Check.product_cursor ->
      unit)) ->
  ?resume:
    (Proc.Semantics.state, Proc.Semantics.label) Ltl.Check.product_cursor ->
  Pa_models.variant ->
  Params.t ->
  Requirements.requirement ->
  (Proc.Semantics.state, Proc.Semantics.label) Ltl.Check.run_result
(** The resilient form of {!check_live} ({!Ltl.Check.check_run}): a
    budget trip with the {!Ltl.Check.Scc} engine suspends into a
    checkpointable product cursor instead of concluding, and [resume]
    continues from one.
    @raise Invalid_argument if [checkpoint]/[resume] is combined with
    the {!Ltl.Check.Ndfs} engine. *)
