(** Verification of the process-algebra models (paper §5.2).

    The paper checks the same requirements on the mCRL2 models with the
    CADP toolset, using µ-calculus safety formulae of the shape
    [\[R\]false] plus watchdog monitor processes.  Here R2 and R3 are the
    corresponding regular safety properties over the action traces, and R1
    is a deadline monitor over [tick]s ({!Mc.Monitor.deadline}) — the
    exact counterpart of the paper's watchdog-with-error-action scheme.

    The test suite checks these verdicts against the timed-automata
    verdicts of {!Verify} on common data sets (the paper's claim that
    "both model checkers produced similar results"). *)

val check :
  ?max_states:int ->
  ?domains:int ->
  Pa_models.variant ->
  Params.t ->
  Requirements.requirement ->
  bool
(** [check variant params req] model-checks [req] on the process-algebra
    model; [true] means the requirement holds.  [domains] (default 1)
    selects the sequential or parallel exploration engine.
    @raise Failure if the state bound (default 4 million) is exceeded. *)

val state_count : ?max_states:int -> ?domains:int -> Pa_models.variant -> Params.t -> int
(** Size of the reachable state space (for tests and benchmarks). *)
