type event =
  | Send of { src : int; dst : int; at : float }
  | Deliver of { src : int; dst : int; at : float }
  | Drop of { src : int; dst : int; at : float; kind : Sim.Net.drop_kind }
  | Late of { src : int; dst : int; at : float }
  | Crash of { node : int; at : float }
  | Recover of { node : int; at : float }
  | Detect of { at : float }
  | Inactivate of { node : int; at : float }

let time_of = function
  | Send { at; _ }
  | Deliver { at; _ }
  | Drop { at; _ }
  | Late { at; _ }
  | Crash { at; _ }
  | Recover { at; _ }
  | Detect { at }
  | Inactivate { at; _ } ->
      at

let pp_event ppf = function
  | Send { src; dst; at } ->
      Format.fprintf ppf "t=%-8.3f p[%d] sends to p[%d]" at src dst
  | Deliver { src; dst; at } ->
      Format.fprintf ppf "t=%-8.3f p[%d] receives from p[%d]" at dst src
  | Drop { src; dst; at; kind } ->
      Format.fprintf ppf "t=%-8.3f message p[%d]->p[%d] %s" at src dst
        (match kind with
        | Sim.Net.Stochastic -> "lost"
        | Sim.Net.Down -> "dropped (link down)")
  | Late { src; dst; at } ->
      Format.fprintf ppf
        "t=%-8.3f message p[%d]->p[%d] delivered past the delay bound" at src
        dst
  | Crash { node; at } -> Format.fprintf ppf "t=%-8.3f p[%d] crashes" at node
  | Recover { node; at } ->
      Format.fprintf ppf "t=%-8.3f p[%d] recovers" at node
  | Detect { at } ->
      Format.fprintf ppf "t=%-8.3f p[0] detects / self-inactivates" at
  | Inactivate { node; at } ->
      Format.fprintf ppf "t=%-8.3f p[%d] non-voluntarily inactivated" at node

type violation = {
  req : Requirements.requirement;
  at : float;
  reason : string;
  prefix : event list;
}

type verdict = Pass | Fail of violation

(* An R2/R3 candidate held open for [grace]: the delivery excusing it (a
   reordered or jittered message still in flight when the protocol acted)
   may only land after the inactivation it explains. *)
type pending = { p_v : violation; p_excused : unit -> bool }

type t = {
  n : int;
  r1_bound : float;
  pi_bound : float;
  slack : float;
  grace : float;
  quiescence_after : float;
  check : Requirements.requirement -> bool;
  mutable rev_trace : event list;
  last_reply : float array; (* last delivery i -> p[0], index 1..n *)
  last_beat : float array; (* last delivery p[0] -> i *)
  drop_touching : bool array; (* some message on i's links was lost/dropped *)
  mutable any_drop : bool;
  late_touching : bool array; (* some message on i's links broke the bound *)
  mutable any_late : bool;
  crashed : bool array; (* currently crashed by a fault *)
  ever_crashed : bool array;
  inactivated : bool array;
  mutable detected : float option;
  mutable pendings : pending list;
  mutable violation : violation option;
}

let create ?(slack = 1e-6) ?(grace = 0.0) ?quiescence_after ~n ~r1_bound
    ~pi_bound reqs =
  if n < 1 then invalid_arg "Heartbeat.Monitors.create: n must be >= 1";
  if r1_bound <= 0.0 || pi_bound <= 0.0 then
    invalid_arg "Heartbeat.Monitors.create: bounds must be positive";
  let quiescence_after =
    match quiescence_after with Some q -> q | None -> 2.0 *. pi_bound
  in
  {
    n;
    r1_bound;
    pi_bound;
    slack;
    grace;
    quiescence_after;
    check = (fun r -> List.mem r reqs);
    rev_trace = [];
    last_reply = Array.make (n + 1) 0.0;
    last_beat = Array.make (n + 1) 0.0;
    drop_touching = Array.make (n + 1) false;
    any_drop = false;
    late_touching = Array.make (n + 1) false;
    any_late = false;
    crashed = Array.make (n + 1) false;
    ever_crashed = Array.make (n + 1) false;
    inactivated = Array.make (n + 1) false;
    detected = None;
    pendings = [];
    violation = None;
  }

let violate t req at fmt =
  Format.kasprintf
    (fun reason ->
      if t.violation = None then
        t.violation <- Some { req; at; reason; prefix = List.rev t.rev_trace })
    fmt

let propose t req at excused fmt =
  Format.kasprintf
    (fun reason ->
      if t.violation = None then
        t.pendings <-
          t.pendings
          @ [
              {
                p_v = { req; at; reason; prefix = List.rev t.rev_trace };
                p_excused = excused;
              };
            ])
    fmt

(* Latch the earliest pending candidate whose grace window has elapsed
   without an excuse arriving. *)
let expire t now =
  if t.violation = None then
    let expired, waiting =
      List.partition
        (fun p -> now > p.p_v.at +. t.grace +. t.slack)
        t.pendings
    in
    match expired with
    | [] -> ()
    | first :: rest ->
        let earliest =
          List.fold_left
            (fun acc p -> if p.p_v.at < acc.p_v.at then p else acc)
            first rest
        in
        t.violation <- Some earliest.p_v;
        t.pendings <- waiting

(* R1's two watchdogs, evaluated whenever time has advanced to [now]:
   p[0] past its detection bound, a participant past its inactivation
   bound.  A process crashed by a fault is excused — it cannot act. *)
let check_deadlines t now =
  if t.check Requirements.R1 && t.violation = None then begin
    if (not t.crashed.(0)) && t.detected = None then
      for i = 1 to t.n do
        let deadline = t.last_reply.(i) +. t.r1_bound in
        if t.violation = None && now > deadline +. t.slack then
          violate t Requirements.R1 deadline
            "p[0] still active %g after the last heartbeat from p[%d] \
             (required detection bound %g)"
            (now -. t.last_reply.(i))
            i t.r1_bound
      done;
    for i = 1 to t.n do
      let deadline = t.last_beat.(i) +. t.pi_bound in
      if
        t.violation = None
        && (not t.inactivated.(i))
        && (not t.crashed.(i))
        && now > deadline +. t.slack
      then
        violate t Requirements.R1 deadline
          "p[%d] still active %g after its last received beat (required \
           inactivation bound %g)"
          i
          (now -. t.last_beat.(i))
          t.pi_bound
    done
  end

let apply t e =
  match e with
  | Send { at; _ } -> (
      match t.detected with
      | Some d
        when t.check Requirements.R3 && at > d +. t.quiescence_after +. t.slack
        ->
          violate t Requirements.R3 at
            "message sent %g after p[0]'s inactivation — the system never \
             quiesces"
            (at -. d)
      | _ -> ())
  | Deliver { src; dst; at } ->
      if dst = 0 then t.last_reply.(src) <- at;
      if src = 0 then t.last_beat.(dst) <- at
  | Drop { src; dst; _ } ->
      t.drop_touching.(src) <- true;
      t.drop_touching.(dst) <- true;
      t.any_drop <- true
  | Late { src; dst; _ } ->
      t.late_touching.(src) <- true;
      t.late_touching.(dst) <- true;
      t.any_late <- true
  | Crash { node; at } ->
      t.crashed.(node) <- true;
      t.ever_crashed.(node) <- true;
      ignore at
  | Recover { node; at } ->
      t.crashed.(node) <- false;
      if node = 0 then
        (* p[0] restarts with a fresh view: its detection obligations
           count from the recovery instant. *)
        for i = 1 to t.n do
          t.last_reply.(i) <- at
        done
      else t.last_beat.(node) <- at
  | Detect { at } ->
      let excused () =
        t.any_drop || t.any_late || Array.exists (fun b -> b) t.ever_crashed
      in
      if t.check Requirements.R3 && not (excused ()) then
        propose t Requirements.R3 at excused
          "p[0] self-inactivated although no message was lost or late and \
           no process crashed";
      if t.detected = None then t.detected <- Some at
  | Inactivate { node; at } ->
      let excused () =
        t.drop_touching.(node) || t.drop_touching.(0)
        || t.late_touching.(node) || t.late_touching.(0)
        || t.ever_crashed.(0)
        || t.detected <> None
        || t.ever_crashed.(node)
      in
      if t.check Requirements.R2 && not (excused ()) then
        propose t Requirements.R2 at excused
          "p[%d] non-voluntarily inactivated although p[0] was up and no \
           message on its links was lost or late"
          node;
      t.inactivated.(node) <- true

let feed t e =
  if t.violation = None then begin
    t.rev_trace <- e :: t.rev_trace;
    let now = time_of e in
    expire t now;
    if t.violation = None then begin
      check_deadlines t now;
      if t.violation = None then begin
        apply t e;
        t.pendings <- List.filter (fun p -> not (p.p_excused ())) t.pendings
      end
    end
  end

let finish t ~now =
  (* Candidates still inside their grace window at the horizon are
     inconclusive — the excusing delivery may have been cut off — and
     are dropped rather than latched. *)
  if t.violation = None then begin
    expire t now;
    if t.violation = None then check_deadlines t now
  end
let verdict t = match t.violation with None -> Pass | Some v -> Fail v
let trace t = List.rev t.rev_trace

let pp_violation ppf v =
  Format.fprintf ppf "%s violated at t=%g: %s (%d-event prefix)"
    (Requirements.name v.req) v.at v.reason (List.length v.prefix)

(* MSC-style rendering: one column per lifeline (p[0], p[1..n]) plus a
   channel column, one row per event — the layout of Figures 10-13. *)
let render_prefix ?(n = 1) v =
  let cols = n + 2 in
  let width = 16 in
  let buf = Buffer.create 1024 in
  let row time cells =
    Buffer.add_string buf (Printf.sprintf "%8.3f |" time);
    Array.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf " %-*s|" width c))
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf (Printf.sprintf "%8s |" "t");
  for c = 0 to cols - 1 do
    let label =
      if c < n + 1 then Printf.sprintf "p[%d]" c else "channel"
    in
    Buffer.add_string buf (Printf.sprintf " %-*s|" width label)
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.make (10 + ((width + 2) * cols)) '-');
  Buffer.add_char buf '\n';
  let cell col text =
    let cells = Array.make cols "" in
    if col >= 0 && col < cols then cells.(col) <- text;
    cells
  in
  let chan = cols - 1 in
  List.iter
    (fun e ->
      let time = time_of e in
      match e with
      | Send { src; dst; _ } ->
          row time (cell src (Printf.sprintf "send -> p[%d]" dst))
      | Deliver { src; dst; _ } ->
          row time (cell dst (Printf.sprintf "recv <- p[%d]" src))
      | Drop { src; dst; kind; _ } ->
          row time
            (cell chan
               (Printf.sprintf "p[%d]->p[%d] %s" src dst
                  (match kind with
                  | Sim.Net.Stochastic -> "lost"
                  | Sim.Net.Down -> "cut")))
      | Late { src; dst; _ } ->
          row time (cell chan (Printf.sprintf "p[%d]->p[%d] late" src dst))
      | Crash { node; _ } -> row time (cell node "CRASH")
      | Recover { node; _ } -> row time (cell node "recover")
      | Detect _ -> row time (cell 0 "DETECT (inact.)")
      | Inactivate { node; _ } -> row time (cell node "inactivate(nv)"))
    v.prefix;
  Buffer.add_string buf
    (Printf.sprintf "%8.3f * %s violated: %s\n" v.at
       (Requirements.name v.req) v.reason);
  Buffer.contents buf
