(** Message-sequence-chart rendering of counterexample traces.

    The paper presents its counterexamples as sequence diagrams
    (Figures 10–13): one lifeline for p[0], one per participant, messages
    and timeouts marked along a vertical time axis.  This module renders
    a {!Scenarios.t} in that style as text: one column per process plus a
    channel column, one row per instant at which anything happens. *)

val render : ?n:int -> Scenarios.t -> string
(** [render scenario] lays the trace out as a chart; [n] is the number of
    participant columns (default 1). *)

val render_lasso :
  ?n:int -> header:string -> Ta.Semantics.label Ltl.Check.lasso -> string
(** Render a liveness counterexample ({!Verify.check_live}) in the same
    chart style: the finite prefix, a separator line, then one lap of the
    cycle that repeats forever.  Tick steps are folded into timestamps
    continuing across the boundary. *)

val column_of : string -> int option
(** Which lifeline an action belongs to: [Some 0] for p[0], [Some i] for
    p\[i\], [None] for channel events (deliveries and losses).  Exposed
    for the tests. *)
