(* Aggregated hit counters for the memoised static analyses.

   The verify sweeps (tables, smoke matrices, benchmark campaigns)
   rebuild the same model at many table points and consult the same
   analyses — [Por.analyze] for the reduction, [Lint.Pa] /
   [Lint.Ta_model] static bounds for table pre-sizing, [Lubounds] LU
   tables for zone extrapolation — at each cell.  The analyses are
   memoised at their definition sites ([Lint.Memo]); this module just
   gathers the counters so campaign-level reports can show how much
   static-analysis work the caches absorbed. *)

type stats = {
  por_lookups : int;
  por_hits : int;
  pa_bound_lookups : int;
  pa_bound_hits : int;
  ta_bound_lookups : int;
  ta_bound_hits : int;
  lu_lookups : int;
  lu_hits : int;
}

let stats () =
  let por_lookups, por_hits = Por.cache_stats () in
  let pa_bound_lookups, pa_bound_hits = Lint.Pa.cache_stats () in
  let ta_bound_lookups, ta_bound_hits = Lint.Ta_model.cache_stats () in
  let lu_lookups, lu_hits = Lubounds.cache_stats () in
  {
    por_lookups;
    por_hits;
    pa_bound_lookups;
    pa_bound_hits;
    ta_bound_lookups;
    ta_bound_hits;
    lu_lookups;
    lu_hits;
  }

let lookups s =
  s.por_lookups + s.pa_bound_lookups + s.ta_bound_lookups + s.lu_lookups

let hits s = s.por_hits + s.pa_bound_hits + s.ta_bound_hits + s.lu_hits

let to_json s =
  Printf.sprintf
    {|{"por":{"lookups":%d,"hits":%d},"pa_bound":{"lookups":%d,"hits":%d},"ta_bound":{"lookups":%d,"hits":%d},"lu_bounds":{"lookups":%d,"hits":%d},"total":{"lookups":%d,"hits":%d}}|}
    s.por_lookups s.por_hits s.pa_bound_lookups s.pa_bound_hits
    s.ta_bound_lookups s.ta_bound_hits s.lu_lookups s.lu_hits (lookups s)
    (hits s)

let pp ppf s =
  Format.fprintf ppf
    "analysis caches: %d/%d hits (por %d/%d, pa bound %d/%d, ta bound %d/%d, \
     lu bounds %d/%d)"
    (hits s) (lookups s) s.por_hits s.por_lookups s.pa_bound_hits
    s.pa_bound_lookups s.ta_bound_hits s.ta_bound_lookups s.lu_hits
    s.lu_lookups
