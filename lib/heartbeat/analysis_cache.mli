(** Aggregated hit counters for the memoised static analyses.

    Verification sweeps revisit the same model term at many table
    points; [Por.analyze_cached] and the [Lint] static bounds are
    memoised on the model term ({!Lint.Memo}), and this module gathers
    their counters for campaign-level stats reporting. *)

type stats = {
  por_lookups : int;
  por_hits : int;
  pa_bound_lookups : int;
  pa_bound_hits : int;
  ta_bound_lookups : int;
  ta_bound_hits : int;
  lu_lookups : int;
  lu_hits : int;
}

val stats : unit -> stats
(** Snapshot of all cache counters since start-up. *)

val lookups : stats -> int
val hits : stats -> int

val to_json : stats -> string
(** Single-line JSON object (deterministic key order). *)

val pp : Format.formatter -> stats -> unit
