(* Adversarial fault-injection campaigns: sweep fault scenarios across
   disciplines and parameter points, run each under the R1-R3 monitors,
   and shrink any violating schedule to a minimal reproduction. *)

module F = Sim.Fault

type point = {
  kind : Runtime.kind;
  params : Params.t;
  fixed : bool;
  scenario : string;
  faults : F.schedule;
  seed : int64;
  duration : float;
}

type outcome = {
  point : point;
  verdict : Monitors.verdict;
  shrunk : F.schedule option;
  sent : int;
  lost : int;
  dropped : int;
  detected_at : float option;
  inactivations : int;
}

type t = {
  fixed : bool;
  seed : int64;
  outcomes : outcome list;
  interrupted : Mc.Budget.reason option;
}

(* The paper's claimed detection bound for p[0] (Section 5's R1 reading):
   2*tmax after the last heartbeat.  The unfixed protocols are monitored
   against this claim — which the halving schedule genuinely exceeds at
   the parameter points the tables mark F. *)
let claimed_r1_bound (p : Params.t) = 2.0 *. float_of_int p.Params.tmax

(* The corrected (Section 6.2) worst case, computed over the float
   waiting-time recurrence the runtime actually executes.  (The integer
   bound of {!Bounds.p0_detection_exhaustive} halves with integer
   division, which under-counts e.g. (1,10): float halving visits
   5, 2.5, 1.25 for an extra 8.75, not 8.) *)
let exact_r1_bound kind (p : Params.t) =
  let tmin = float_of_int p.Params.tmin and tmax = float_of_int p.Params.tmax in
  match (kind : Runtime.kind) with
  | Runtime.Halving ->
      let rec halvings t acc =
        if t < tmin then acc else halvings (t /. 2.0) (acc +. t)
      in
      (2.0 *. tmax) +. halvings (tmax /. 2.0) 0.0
  | Runtime.Two_phase -> (2.0 *. tmax) +. tmin
  | Runtime.Fixed_rate k -> tmax *. (1.0 +. (1.0 /. float_of_int k))

let monitor_bounds ~fixed kind (p : Params.t) =
  let tmin = float_of_int p.Params.tmin and tmax = float_of_int p.Params.tmax in
  let r1 = if fixed then exact_r1_bound kind p else claimed_r1_bound p in
  let pi = if fixed then 2.0 *. tmax else (3.0 *. tmax) -. tmin in
  (r1, pi)

(* The default adversary: every fault class the injector knows, at
   phases chosen off the round boundaries (multiples of 0.05*tmax are
   avoided indirectly by the fractional factors) so exact ties with
   protocol timers cannot arise. *)
let default_scenarios (p : Params.t) =
  let tmin = float_of_int p.Params.tmin and tmax = float_of_int p.Params.tmax in
  [
    ("crash-early", [ F.crash ~at:((2.0 *. tmax) +. (0.6 *. tmin)) 1 ]);
    ("crash-coordinator", [ F.crash ~at:(2.35 *. tmax) 0 ]);
    ( "crash-recover",
      [
        F.crash ~at:((2.0 *. tmax) +. (0.6 *. tmin)) 1;
        F.recover ~at:((3.0 *. tmax) +. (0.6 *. tmin)) 1;
      ] );
    ( "coordinator-flap",
      [ F.crash ~at:(1.7 *. tmax) 0; F.recover ~at:(2.4 *. tmax) 0 ] );
    ( "partition",
      [
        F.partition ~at:(2.15 *. tmax) ~drop_inflight:true
          ~duration:(1.2 *. tmax) [ 1 ];
      ] );
    ("burst", [ F.burst ~at:(2.2 *. tmax) ~duration:(1.4 *. tmax) 0.85 ]);
    ( "chaos",
      [
        F.duplicate ~at:(1.1 *. tmax) ~duration:(2.0 *. tmax) 0.25;
        F.reorder ~at:(1.6 *. tmax) ~duration:(2.0 *. tmax) 0.25;
        F.jitter ~at:(2.1 *. tmax) ~duration:(2.0 *. tmax) (0.4 *. tmin);
      ] );
  ]

let max_jitter faults =
  List.fold_left
    (fun acc { F.action; _ } ->
      match action with
      | F.Jitter { extra; _ } -> Float.max acc extra
      | _ -> acc)
    0.0 faults

let run_point pt =
  let tmin_f = float_of_int pt.params.Params.tmin in
  let j = max_jitter pt.faults in
  let r1_bound, pi_bound = monitor_bounds ~fixed:pt.fixed pt.kind pt.params in
  let mon =
    (* Grace must cover the worst lateness still in flight when the
       protocol acts on a miss: a reordered message takes up to tmin
       (both hops) plus jitter on each. *)
    Monitors.create ~n:pt.params.Params.n ~r1_bound ~pi_bound
      ~grace:(tmin_f +. (2.0 *. j) +. 0.5)
      ~quiescence_after:(tmin_f +. j +. 0.5)
      Requirements.all
  in
  let cfg =
    Runtime.config ~kind:pt.kind ~faults:pt.faults ~fixed_bounds:pt.fixed
      ~seed:pt.seed ~duration:pt.duration pt.params
  in
  let result = Runtime.run ~on_event:(Monitors.feed mon) cfg in
  Monitors.finish mon ~now:pt.duration;
  (Monitors.verdict mon, result)

let fails pt faults =
  match fst (run_point { pt with faults }) with
  | Monitors.Fail _ -> true
  | Monitors.Pass -> false

(* Greedy 1-minimal shrink of a violating schedule: repeatedly delete
   single events while the violation persists, then halve window
   durations.  Every candidate is re-run under the same seed, so the
   result is a genuine minimal reproduction, not a guess. *)
let shrink pt =
  let rec drop_events sched =
    let rec try_each acc = function
      | [] -> sched
      | e :: rest ->
          let candidate = List.rev_append acc rest in
          if fails pt candidate then drop_events candidate
          else try_each (e :: acc) rest
    in
    try_each [] sched
  in
  let halve ev =
    let shorter d rebuild =
      if d > 1.0 then Some { ev with F.action = rebuild (d /. 2.0) } else None
    in
    match ev.F.action with
    | F.Partition { isolated; duration; drop_inflight } ->
        shorter duration (fun d ->
            F.Partition { isolated; duration = d; drop_inflight })
    | F.Burst { duration; loss } ->
        shorter duration (fun d -> F.Burst { duration = d; loss })
    | F.Duplicate { duration; prob } ->
        shorter duration (fun d -> F.Duplicate { duration = d; prob })
    | F.Reorder { duration; prob } ->
        shorter duration (fun d -> F.Reorder { duration = d; prob })
    | F.Jitter { duration; extra } ->
        shorter duration (fun d -> F.Jitter { duration = d; extra })
    | F.Crash _ | F.Recover _ -> None
  in
  let rec trim sched budget =
    if budget = 0 then sched
    else
      let arr = Array.of_list sched in
      let rec scan i =
        if i >= Array.length arr then None
        else
          match halve arr.(i) with
          | None -> scan (i + 1)
          | Some ev' ->
              let candidate =
                Array.to_list (Array.mapi (fun k e -> if k = i then ev' else e) arr)
              in
              if fails pt candidate then Some candidate else scan (i + 1)
      in
      match scan 0 with
      | Some c -> trim c (budget - 1)
      | None -> sched
  in
  trim (drop_events pt.faults) 8

let default_kinds = [ Runtime.Halving; Runtime.Two_phase; Runtime.Fixed_rate 2 ]

let run ?(kinds = default_kinds) ?(datasets = Params.table_datasets) ?(n = 1)
    ?(fixed = false) ?(seed = 7L) ?(duration_factor = 10.0)
    ?(shrink_failures = true) ?budget () =
  let master = Sim.Rng.create seed in
  let outcomes = ref [] in
  (* Budget polled between points only: a point is the unit of work, so
     an interrupted campaign is a clean prefix of the full sweep (the
     sub-seeds are still drawn in sweep order, keeping the points that
     did run identical to the uninterrupted campaign's). *)
  let stopped () =
    match budget with None -> false | Some b -> Mc.Budget.check b <> None
  in
  List.iter
    (fun (tmin, tmax) ->
      let params = Params.make ~n ~tmin ~tmax () in
      List.iter
        (fun kind ->
          List.iter
            (fun (scenario, faults) ->
              (* One independent sub-seed per point, drawn in sweep
                 order: reproducible, and stable under re-running a
                 single point (the seed is recorded in the outcome). *)
              let pt_seed = Sim.Rng.int64 master in
              let pt =
                {
                  kind;
                  params;
                  fixed;
                  scenario;
                  faults;
                  seed = pt_seed;
                  duration = duration_factor *. float_of_int tmax;
                }
              in
              if stopped () then ()
              else
              let verdict, result = run_point pt in
              let shrunk =
                match verdict with
                | Monitors.Fail _ when shrink_failures -> Some (shrink pt)
                | _ -> None
              in
              outcomes :=
                {
                  point = pt;
                  verdict;
                  shrunk;
                  sent = result.Runtime.messages_sent;
                  lost = result.Runtime.messages_lost;
                  dropped = result.Runtime.messages_dropped;
                  detected_at = result.Runtime.p0_detected_at;
                  inactivations =
                    List.length result.Runtime.pi_inactivated_at;
                }
                :: !outcomes)
            (default_scenarios params))
        kinds)
    datasets;
  let interrupted = Option.bind budget Mc.Budget.tripped in
  { fixed; seed; outcomes = List.rev !outcomes; interrupted }

let violations t =
  List.filter
    (fun o -> match o.verdict with Monitors.Fail _ -> true | _ -> false)
    t.outcomes

(* --- deterministic JSON (no Hashtbl order, no wall clock) --- *)

let fstr = Printf.sprintf "%.12g"

let esc s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let outcome_to_json o =
  let b = Buffer.create 512 in
  let { kind; params; scenario; faults; seed; duration; fixed = _; _ } =
    o.point
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"kind\":\"%s\",\"tmin\":%d,\"tmax\":%d,\"n\":%d,\"scenario\":\"%s\",\"seed\":\"%Ld\",\"duration\":%s,\"faults\":%s"
       (esc (Runtime.kind_name kind))
       params.Params.tmin params.Params.tmax params.Params.n (esc scenario)
       seed (fstr duration) (F.to_json faults));
  (match o.verdict with
  | Monitors.Pass -> Buffer.add_string b ",\"verdict\":\"pass\""
  | Monitors.Fail v ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"verdict\":\"fail\",\"violation\":{\"req\":\"%s\",\"at\":%s,\"reason\":\"%s\",\"prefix_events\":%d}"
           (Requirements.name v.Monitors.req)
           (fstr v.Monitors.at)
           (esc v.Monitors.reason)
           (List.length v.Monitors.prefix)));
  Option.iter
    (fun s -> Buffer.add_string b (",\"shrunk\":" ^ F.to_json s))
    o.shrunk;
  Buffer.add_string b
    (Printf.sprintf ",\"sent\":%d,\"lost\":%d,\"dropped\":%d" o.sent o.lost
       o.dropped);
  (match o.detected_at with
  | Some at -> Buffer.add_string b (",\"detected_at\":" ^ fstr at)
  | None -> Buffer.add_string b ",\"detected_at\":null");
  Buffer.add_string b (Printf.sprintf ",\"inactivations\":%d}" o.inactivations);
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"campaign\":{\"fixed\":%b,\"seed\":\"%Ld\",\"points\":%d,\"violations\":%d,\"interrupted\":%s},\"outcomes\":[\n"
       t.fixed t.seed (List.length t.outcomes)
       (List.length (violations t))
       (match t.interrupted with
       | None -> "null"
       | Some r -> Printf.sprintf "\"%s\"" (Mc.Budget.reason_name r)));
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (outcome_to_json o))
    t.outcomes;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let pp_outcome ppf o =
  let v =
    match o.verdict with
    | Monitors.Pass -> "pass"
    | Monitors.Fail v ->
        Printf.sprintf "FAIL %s at t=%s"
          (Requirements.name v.Monitors.req)
          (fstr v.Monitors.at)
  in
  Format.fprintf ppf "%-14s (%2d,%2d) %-18s %s"
    (Runtime.kind_name o.point.kind)
    o.point.params.Params.tmin o.point.params.Params.tmax o.point.scenario v;
  match o.shrunk with
  | Some s -> Format.fprintf ppf "  [shrunk to %d event(s)]" (List.length s)
  | None -> ()

let pp ppf t =
  let bad = violations t in
  Format.fprintf ppf
    "campaign: %d points, %d violation(s) (%s bounds, seed %Ld)@."
    (List.length t.outcomes) (List.length bad)
    (if t.fixed then "fixed 6.2" else "unfixed")
    t.seed;
  Option.iter
    (fun r ->
      Format.fprintf ppf "  INTERRUPTED (%a): partial sweep@." Mc.Budget.pp_reason
        r)
    t.interrupted;
  List.iter (fun o -> Format.fprintf ppf "  %a@." pp_outcome o) t.outcomes
