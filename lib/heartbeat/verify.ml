type outcome = {
  holds : bool;
  counterexample : Ta.Semantics.label list option;
  states_explored : int option;
  exhausted : Mc.Explore.exhaustion option;
}

let default_max = 5_000_000

(* The lint pass's static state bound, as an [expected_states] table
   pre-sizing hint for the explorer.  [None] (bound saturated or model
   truly unbounded) falls back to the engine's default growth.  The
   bound is memoised on the model term: sweeps revisit the same model
   for several requirements and parameters. *)
let expected_of model =
  match Lint.Ta_model.static_bound_cached model with
  | Lint.Interval.Finite n -> Some n
  | Lint.Interval.Unbounded -> None

let card_to_expected = function
  | Lint.Interval.Finite n -> Some n
  | Lint.Interval.Unbounded -> None

(* Slice the model against the requirement's seed.  The returned triple
   is (sliced system to explore, bad predicate over it, pre-sizing hint
   from the activity-aware post-slice bound). *)
let sliced_parts variant params req model =
  let seed = Requirements.slice_seed variant params req in
  let sl = Slice_ta.slice ~seed model in
  let snet = Ta.Semantics.compile sl.Slice_ta.model in
  let bad = Requirements.bad_state variant params snet req in
  (Slice_ta.system sl snet, bad, card_to_expected sl.Slice_ta.expected)

(* Dense-time check via the zone engine: same model builders, same bad
   predicates (they observe only the discrete part), different
   exploration.  Sequential and exact by construction, so the
   parallel/compressed-store knobs are rejected rather than ignored. *)
let check_zone ~fixed ~max_states ?budget ~lu variant params req =
  let with_r1_monitors = Requirements.needs_monitors req in
  let model = Ta_models.build ~fixed ~with_r1_monitors variant params in
  let z = Zone.Sym.compile ~lu model in
  let bad = Requirements.bad_state variant params (Zone.Sym.net z) req in
  let stats = Zone.Reach.new_stats () in
  match
    Zone.Reach.find ~max_states ?budget ~stats z ~goal:(Zone.Sym.bad_of z bad)
  with
  | Mc.Explore.Unreachable ->
      {
        holds = true;
        counterexample = None;
        states_explored = Some stats.Zone.Reach.states;
        exhausted = None;
      }
  | Mc.Explore.Reached w ->
      {
        holds = false;
        counterexample = Some w.Mc.Explore.trace;
        states_explored = None;
        exhausted = None;
      }
  | Mc.Explore.Exhausted e ->
      {
        holds = false;
        counterexample = None;
        states_explored = Some e.Mc.Explore.states_so_far;
        exhausted = Some e;
      }
  | Mc.Explore.Bound_hit n ->
      Format.kasprintf failwith
        "Verify.check: zone state bound %d exceeded (%s, %s, %a)" n
        (Ta_models.variant_name variant)
        (Requirements.name req) Params.pp params

let check ?(fixed = false) ?(max_states = default_max) ?(domains = 1)
    ?(slice = false) ?store ?workstealing ?budget ?degrade ?(zone = false)
    ?(lu = Zone.Sym.Global) variant params req =
  if zone then begin
    if slice then
      invalid_arg "Verify.check: zone and slice engines are exclusive";
    if domains > 1 || store <> None || workstealing <> None then
      invalid_arg
        "Verify.check: the zone engine is sequential with an exact store";
    check_zone ~fixed ~max_states ?budget ~lu variant params req
  end
  else begin
  if lu <> Zone.Sym.Global then
    invalid_arg "Verify.check: --lu location needs the zone engine";
  let with_r1_monitors = Requirements.needs_monitors req in
  let model = Ta_models.build ~fixed ~with_r1_monitors variant params in
  let net = Ta.Semantics.compile model in
  let slice_sys, bad, expected_states =
    if slice then
      let sys, bad, expected = sliced_parts variant params req model in
      (Some sys, bad, expected)
    else
      (None, Requirements.bad_state variant params net req, expected_of model)
  in
  match
    Mc.Safety.check_state ~max_states ?expected_states ~domains
      ?slice:slice_sys ?store ?workstealing ?budget ?degrade
      (Ta.Semantics.system net) bad
  with
  | Mc.Safety.Holds ->
      {
        holds = true;
        counterexample = None;
        states_explored = None;
        exhausted = None;
      }
  | Mc.Safety.Violated trace ->
      {
        holds = false;
        counterexample = Some trace;
        states_explored = None;
        exhausted = None;
      }
  | Mc.Safety.Exhausted e ->
      (* no violation in the covered fraction, but no full verdict either *)
      {
        holds = false;
        counterexample = None;
        states_explored = Some e.Mc.Explore.states_so_far;
        exhausted = Some e;
      }
  | Mc.Safety.Unknown n ->
      Format.kasprintf failwith
        "Verify.check: state bound %d exceeded (%s, %s, %a)" n
        (Ta_models.variant_name variant)
        (Requirements.name req) Params.pp params
  end

(* The liveness formulas are pure label properties, so the slicing seed
   is empty: the pass keeps every guard (labels must be exact) and wins
   through dead writes, constant folding and clock activity alone. *)
let live_slice model =
  let sl = Slice_ta.slice model in
  Slice_ta.system sl (Ta.Semantics.compile sl.Slice_ta.model)

let check_live ?(fixed = false) ?(engine = Ltl.Check.Ndfs)
    ?(max_states = default_max) ?(slice = false) ?domains ?store ?workstealing
    ?budget variant params req =
  let model = Ta_models.build ~fixed variant params in
  let net = Ta.Semantics.compile model in
  let slice_sys = if slice then Some (live_slice model) else None in
  Ltl.Check.check ~engine ~fairness:Requirements.live_fairness ?slice:slice_sys
    ~max_states ?domains ?store ?workstealing ?budget
    (Ta.Semantics.system net)
    (Requirements.live_formula variant params req)

let check_live_run ?(fixed = false) ?(engine = Ltl.Check.Ndfs)
    ?(max_states = default_max) ?(slice = false) ?domains ?store ?workstealing
    ?budget ?checkpoint ?resume variant params req =
  let model = Ta_models.build ~fixed variant params in
  let net = Ta.Semantics.compile model in
  let slice_sys = if slice then Some (live_slice model) else None in
  Ltl.Check.check_run ~engine ~fairness:Requirements.live_fairness
    ?slice:slice_sys ~max_states ?domains ?store ?workstealing ?budget
    ?checkpoint ?resume
    (Ta.Semantics.system net)
    (Requirements.live_formula variant params req)

(* R1 with an explicit watchdog bound. *)
let r1_holds_with_bound ~fixed ~max_states ~domains variant params bound =
  let model =
    Ta_models.build ~fixed ~with_r1_monitors:true ~r1_bound:bound variant
      params
  in
  let net = Ta.Semantics.compile model in
  let bad = Requirements.bad_state variant params net Requirements.R1 in
  match
    Mc.Safety.check_state ~max_states ?expected_states:(expected_of model)
      ~domains (Ta.Semantics.system net) bad
  with
  | Mc.Safety.Holds -> true
  | Mc.Safety.Violated _ -> false
  | Mc.Safety.Unknown n ->
      Format.kasprintf failwith "Verify.worst_detection: state bound %d hit" n
  | Mc.Safety.Exhausted e ->
      (* unreachable without a budget (none is passed above) *)
      Format.kasprintf failwith "Verify.worst_detection: %a"
        Mc.Explore.pp_exhaustion e

let worst_detection ?(fixed = false) ?(max_states = default_max)
    ?(domains = 1) variant params =
  let ceiling = 4 * params.Params.tmax in
  if not (r1_holds_with_bound ~fixed ~max_states ~domains variant params ceiling)
  then
    Format.kasprintf failwith
      "Verify.worst_detection: no detection within %d (%s, %a)" ceiling
      (Ta_models.variant_name variant)
      Params.pp params;
  (* smallest bound that holds; bounds are monotone in B *)
  let rec search lo hi =
    (* invariant: lo fails (or is below every candidate), hi holds *)
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if r1_holds_with_bound ~fixed ~max_states ~domains variant params mid
      then search lo mid
      else search mid hi
  in
  search 0 ceiling

type row = { tmin : int; tmax : int; r1 : bool; r2 : bool; r3 : bool }

let table ?(fixed = false) ?(n = 1) ?(datasets = Params.table_datasets)
    ?(domains = 1) ?slice ?store ?workstealing variant =
  List.map
    (fun (tmin, tmax) ->
      let params = Params.make ~n ~tmin ~tmax () in
      let outcome req =
        (check ~fixed ~domains ?slice ?store ?workstealing variant params req)
          .holds
      in
      {
        tmin;
        tmax;
        r1 = outcome Requirements.R1;
        r2 = outcome Requirements.R2;
        r3 = outcome Requirements.R3;
      })
    datasets

let pp_table ppf ~header rows =
  let tf b = if b then "T" else "F" in
  Format.fprintf ppf "%s@." header;
  Format.fprintf ppf "  %-6s" "tmin";
  List.iter (fun r -> Format.fprintf ppf " %4d" r.tmin) rows;
  Format.fprintf ppf "@.  %-6s" "tmax";
  List.iter (fun r -> Format.fprintf ppf " %4d" r.tmax) rows;
  Format.fprintf ppf "@.  %-6s" "R1";
  List.iter (fun r -> Format.fprintf ppf " %4s" (tf r.r1)) rows;
  Format.fprintf ppf "@.  %-6s" "R2";
  List.iter (fun r -> Format.fprintf ppf " %4s" (tf r.r2)) rows;
  Format.fprintf ppf "@.  %-6s" "R3";
  List.iter (fun r -> Format.fprintf ppf " %4s" (tf r.r3)) rows;
  Format.fprintf ppf "@."

let deadlocks ?(fixed = false) ?(max_states = default_max) ?(domains = 1)
    ?(store = Mc.Store.Exact) ?workstealing ?budget ?degrade variant params =
  let model = Ta_models.build ~fixed variant params in
  let net = Ta.Semantics.compile model in
  let sys = Ta.Semantics.system net in
  let goal c = Ta.Semantics.successors net c = [] in
  let expected_states = expected_of model in
  match
    if
      domains <= 1 && store = Mc.Store.Exact && workstealing = None
      && budget = None
    then Mc.Explore.find ~max_states ?expected_states ~goal sys
    else
      Mc.Pexplore.find ~max_states ?expected_states ~domains ~store
        ?workstealing ?budget ?degrade ~goal sys
  with
  | Mc.Explore.Unreachable -> Mc.Safety.Holds
  | Mc.Explore.Reached w -> Mc.Safety.Violated w.Mc.Explore.trace
  | Mc.Explore.Bound_hit n -> Mc.Safety.Unknown n
  | Mc.Explore.Exhausted e -> Mc.Safety.Exhausted e

let deadlock_free ?fixed ?max_states ?domains ?store ?workstealing variant
    params =
  match
    deadlocks ?fixed ?max_states ?domains ?store ?workstealing variant params
  with
  | Mc.Safety.Holds -> true
  | Mc.Safety.Violated _ -> false
  | Mc.Safety.Unknown n ->
      Format.kasprintf failwith "Verify.deadlock_free: state bound %d hit" n
  | Mc.Safety.Exhausted e ->
      Format.kasprintf failwith "Verify.deadlock_free: %a"
        Mc.Explore.pp_exhaustion e
