(** The paper's correctness requirements R1–R3 (§5), as checks on the
    timed-automata models.

    - {b R1} (progress): for each participant i, if p[0] receives no
      heartbeat from p\[i\] for [2*tmax], then p[0] becomes inactive.
      Checked as reachability of the watchdog error location of
      [M{i}] ({!Ta_models.monitor_automaton}).
    - {b R2} (safety of participants): no p\[i\] is non-voluntarily
      inactivated unless a message was lost or some other process crashed
      voluntarily.  Checked as reachability of a state with
      [lost == 0], [P{i}] in [NVInact], [P0] in [Alive], and no other
      participant voluntarily crashed.
    - {b R3} (safety of p\[0\]): symmetric for the coordinator.

    Each requirement is expressed as a {e bad-state predicate}; the
    requirement holds iff no bad state is reachable. *)

type requirement = R1 | R2 | R3

val all : requirement list
val name : requirement -> string

val needs_monitors : requirement -> bool
(** R1 needs the watchdog automata in the model. *)

val bad_state :
  Ta_models.variant ->
  Params.t ->
  Ta.Semantics.t ->
  requirement ->
  Ta.Semantics.config ->
  bool
(** [bad_state variant params compiled r] is the predicate over
    configurations whose reachability refutes requirement [r].  The
    [compiled] network must have been built by {!Ta_models.build} for the
    same [variant] and [params] (and with monitors for R1). *)

val slice_seed :
  Ta_models.variant -> Params.t -> requirement -> Slice_ta.seed
(** The slicing seed matching {!bad_state}: the variables and locations
    the requirement's predicate observes, which {!Slice_ta.slice} must
    keep so the predicate can be built against the sliced network.  No
    requirement observes a clock. *)

(** {2 Liveness formulations}

    Each requirement also has a {e liveness} reading, checked with the LTL
    engine ({!Ltl.Check}) instead of as a bad-state reachability:

    - {b R2-live}: if the environment is benign — no message loss, no
      voluntary crash, no leave, ever — then every participant's beats keep
      arriving at p[0] forever ([GF dlv1_i]).  The non-voluntary
      inactivations of the unfixed protocols kill the beat stream, so the
      simultaneity races of §5.5 show up as lassos ending in an idle cycle.
    - {b R3-live}: symmetrically, p[0]'s beats keep arriving at every
      participant forever ([GF dlv0_i]).
    - {b R1-live}: the untimed essence of R1 — if p\[i\]'s beats stop
      arriving forever, p[0] is eventually inactivated (or crashed
      voluntarily).  No benign-environment premise: losses and crashes are
      exactly what the watchdog must detect.  The [2*tmax] {e bound} of R1
      proper is a real-time property outside LTL's reach; it stays with the
      watchdog automata of {!bad_state}.  Expected to hold on unfixed
      models too.

    In the expanding/dynamic variants the per-participant obligation is
    guarded by [F join_i] (a participant that never joins owes nothing),
    and in the dynamic variant R1-live also excuses a voluntary leave.

    All three are checked under the {!live_fairness} premise (time
    divergence): Zeno runs and deadlock stutter-extensions cannot refute
    them. *)

val live_formula :
  Ta_models.variant ->
  Params.t ->
  requirement ->
  Ta.Semantics.label Ltl.Formula.t

val live_fairness : Ta.Semantics.label Ltl.Check.fairness list
(** Time divergence: the unit-delay tick occurs infinitely often. *)

val live_description : requirement -> string
(** One-line prose for CLI output. *)

(** {2 Liveness on the process-algebra models}

    The same three liveness readings, over {!Proc.Semantics.label}
    traces of the {!Pa_models} specifications.  Every atom observes a
    single action name (and the time-divergence premise observes only
    [tick]), so the formulas pass {!Ltl.Formula.stutter_invariant} and
    {!Ltl.Formula.alphabet} — which is what lets {!Pa_verify.check_live}
    hand {!Ltl.Check.check} a partial-order reduction. *)

val live_formula_pa :
  Pa_models.variant ->
  Params.t ->
  requirement ->
  Proc.Semantics.label Ltl.Formula.t

val live_fairness_pa : Proc.Semantics.label Ltl.Check.fairness list
(** Time divergence: the global [tick] occurs infinitely often. *)
