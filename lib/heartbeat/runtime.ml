type kind = Halving | Two_phase | Fixed_rate of int

let kind_name = function
  | Halving -> "halving"
  | Two_phase -> "two-phase"
  | Fixed_rate k -> Printf.sprintf "fixed-rate(%d)" k

type crash = { who : int; at : float }

type config = {
  params : Params.t;
  kind : kind;
  loss : float;
  loss_model : Sim.Loss.t option;
  duration : float;
  crash : crash option;
  faults : Sim.Fault.schedule;
  fixed_bounds : bool;
  seed : int64;
}

let config ?(kind = Halving) ?(loss = 0.0) ?loss_model ?crash ?(faults = [])
    ?(fixed_bounds = false) ?(seed = 1L) ~duration params =
  (match kind with
  | Fixed_rate k when k < 1 ->
      invalid_arg "Heartbeat.Runtime: Fixed_rate needs k >= 1"
  | _ -> ());
  Sim.Fault.validate faults;
  { params; kind; loss; loss_model; duration; crash; faults; fixed_bounds;
    seed }

type result = {
  messages_sent : int;
  messages_lost : int;
  messages_dropped : int;
  p0_detected_at : float option;
  pi_inactivated_at : (int * float) list;
  false_detection : bool;
  fault_log : (float * Sim.Fault.action) list;
}

(* Mutable per-run protocol state. *)
type participant = {
  index : int;
  mutable alive : bool;
  mutable p_crashed : bool;
  mutable deadline : Sim.Engine.timer option;
}

type coordinator = {
  mutable c_alive : bool;
  mutable c_crashed : bool;
  mutable tm : float array; (* per-participant waiting time *)
  mutable rcvd : bool array;
  mutable misses : int array; (* fixed-rate miss counters *)
  mutable detected : float option;
}

let run ?on_event (cfg : config) : result =
  let { Params.tmin; tmax; n } = cfg.params in
  let tmin_f = float_of_int tmin and tmax_f = float_of_int tmax in
  let engine = Sim.Engine.create ~seed:cfg.seed () in
  let emit =
    match on_event with Some f -> f | None -> fun (_ : Monitors.event) -> ()
  in
  let pi_bound =
    if cfg.fixed_bounds then 2.0 *. tmax_f
    else (3.0 *. tmax_f) -. tmin_f
  in
  let coordinator =
    {
      c_alive = true;
      c_crashed = false;
      tm = Array.make (n + 1) tmax_f;
      rcvd = Array.make (n + 1) true;
      misses = Array.make (n + 1) 0;
      detected = None;
    }
  in
  let participants =
    Array.init (n + 1) (fun i ->
        { index = i; alive = true; p_crashed = false; deadline = None })
  in
  let inactivations = ref [] in
  let crashed = ref false in
  let fault_log = ref [] in
  (* One-way links; each direction gets half the round-trip budget. *)
  let link ~src ~dst deliver =
    Sim.Net.create engine ~loss:cfg.loss ?model:cfg.loss_model
      ~on_drop:(fun kind _ ->
        emit (Monitors.Drop { src; dst; at = Sim.Engine.now engine; kind }))
      ~on_late:(fun _ ->
        emit (Monitors.Late { src; dst; at = Sim.Engine.now engine }))
      ~delay_lo:0.0 ~delay_hi:(tmin_f /. 2.0) ~deliver ()
  in
  (* Forward refs between the two directions' handlers. *)
  let to_p0 : int Sim.Net.t option array = Array.make (n + 1) None in
  let reply i =
    emit (Monitors.Send { src = i; dst = 0; at = Sim.Engine.now engine });
    Sim.Net.send (Option.get to_p0.(i)) i
  in
  let rearm_deadline p on_fire =
    Option.iter Sim.Engine.cancel p.deadline;
    p.deadline <- Some (Sim.Engine.schedule engine ~delay:pi_bound on_fire)
  in
  let rec participant_deadline i () =
    let p = participants.(i) in
    if p.alive then begin
      p.alive <- false;
      let at = Sim.Engine.now engine in
      inactivations := (i, at) :: !inactivations;
      emit (Monitors.Inactivate { node = i; at })
    end
  and on_beat i =
    let p = participants.(i) in
    emit
      (Monitors.Deliver { src = 0; dst = i; at = Sim.Engine.now engine });
    if p.alive then begin
      reply i;
      rearm_deadline p (participant_deadline i)
    end
  in
  let to_pi =
    Array.init (n + 1) (fun i -> link ~src:0 ~dst:i (fun _ -> on_beat i))
  in
  for i = 1 to n do
    to_p0.(i) <-
      Some
        (link ~src:i ~dst:0 (fun i ->
             emit
               (Monitors.Deliver
                  { src = i; dst = 0; at = Sim.Engine.now engine });
             if coordinator.c_alive then begin
               coordinator.rcvd.(i) <- true;
               coordinator.misses.(i) <- 0
             end))
  done;
  let detect () =
    if coordinator.detected = None then begin
      let at = Sim.Engine.now engine in
      coordinator.detected <- Some at;
      coordinator.c_alive <- false;
      emit (Monitors.Detect { at })
    end
  in
  let broadcast () =
    for i = 1 to n do
      emit (Monitors.Send { src = 0; dst = i; at = Sim.Engine.now engine });
      Sim.Net.send to_pi.(i) i
    done
  in
  (* Halving coordinator: evaluate the ending round, recompute the
     waiting times, broadcast, and schedule the next round boundary. *)
  let rec accelerated_round () =
    if coordinator.c_alive then begin
      for i = 1 to n do
        if coordinator.rcvd.(i) then coordinator.tm.(i) <- tmax_f
        else coordinator.tm.(i) <- coordinator.tm.(i) /. 2.0;
        coordinator.rcvd.(i) <- false
      done;
      let t = Array.fold_left min infinity (Array.sub coordinator.tm 1 n) in
      if t < tmin_f then detect ()
      else begin
        broadcast ();
        ignore (Sim.Engine.schedule engine ~delay:t accelerated_round)
      end
    end
  in
  (* Two-phase starvation bookkeeping: a miss at tm = tmin means the
     accelerated probe also went unanswered. *)
  let rec two_phase_round () =
    if coordinator.c_alive then begin
      let starved = ref false in
      for i = 1 to n do
        if coordinator.rcvd.(i) then coordinator.tm.(i) <- tmax_f
        else if coordinator.tm.(i) <= tmin_f then starved := true
        else coordinator.tm.(i) <- tmin_f;
        coordinator.rcvd.(i) <- false
      done;
      if !starved then detect ()
      else begin
        let t = Array.fold_left min infinity (Array.sub coordinator.tm 1 n) in
        broadcast ();
        ignore (Sim.Engine.schedule engine ~delay:t two_phase_round)
      end
    end
  in
  let rec fixed_rate_round k () =
    if coordinator.c_alive then begin
      let period = tmax_f /. float_of_int k in
      let failed = ref false in
      for i = 1 to n do
        if not coordinator.rcvd.(i) then begin
          coordinator.misses.(i) <- coordinator.misses.(i) + 1;
          if coordinator.misses.(i) >= k then failed := true
        end;
        coordinator.rcvd.(i) <- false
      done;
      if !failed then detect ()
      else begin
        broadcast ();
        ignore (Sim.Engine.schedule engine ~delay:period (fixed_rate_round k))
      end
    end
  in
  let start_coordinator () =
    match cfg.kind with
    | Halving ->
        ignore (Sim.Engine.schedule engine ~delay:tmax_f accelerated_round)
    | Two_phase ->
        ignore (Sim.Engine.schedule engine ~delay:tmax_f two_phase_round)
    | Fixed_rate k ->
        ignore
          (Sim.Engine.schedule engine
             ~delay:(tmax_f /. float_of_int k)
             (fixed_rate_round k))
  in
  (* Fault hooks: crash kills a node outright (timers cancelled, rounds
     die); recover revives a crashed node with a fresh protocol state —
     the coordinator restarts its round schedule as at start-up, a
     participant re-arms its inactivation deadline. *)
  let do_crash who =
    crashed := true;
    emit (Monitors.Crash { node = who; at = Sim.Engine.now engine });
    if who = 0 then begin
      coordinator.c_alive <- false;
      coordinator.c_crashed <- true
    end
    else begin
      participants.(who).alive <- false;
      participants.(who).p_crashed <- true;
      Option.iter Sim.Engine.cancel participants.(who).deadline
    end
  in
  let do_recover who =
    if who = 0 then begin
      if coordinator.c_crashed then begin
        coordinator.c_crashed <- false;
        emit (Monitors.Recover { node = 0; at = Sim.Engine.now engine });
        if coordinator.detected = None then begin
          coordinator.c_alive <- true;
          for i = 1 to n do
            coordinator.rcvd.(i) <- true;
            coordinator.misses.(i) <- 0;
            coordinator.tm.(i) <- tmax_f
          done;
          start_coordinator ()
        end
      end
    end
    else begin
      let p = participants.(who) in
      if p.p_crashed then begin
        p.p_crashed <- false;
        p.alive <- true;
        emit (Monitors.Recover { node = who; at = Sim.Engine.now engine });
        rearm_deadline p (participant_deadline who)
      end
    end
  in
  (* Arm participant deadlines and start the coordinator. *)
  for i = 1 to n do
    rearm_deadline participants.(i) (participant_deadline i)
  done;
  start_coordinator ();
  (* Crash injection: the legacy single scripted crash, kept verbatim for
     existing experiments, plus the declarative fault schedule. *)
  Option.iter
    (fun { who; at } ->
      ignore
        (Sim.Engine.schedule engine ~delay:at (fun () ->
             fault_log :=
               (Sim.Engine.now engine, Sim.Fault.Crash who) :: !fault_log;
             do_crash who)))
    cfg.crash;
  if cfg.faults <> [] then begin
    let nodes = List.init (n + 1) Fun.id in
    let link ~src ~dst =
      if src = 0 && dst >= 1 && dst <= n then Some (Sim.Net.ctl to_pi.(dst))
      else if dst = 0 && src >= 1 && src <= n then
        Option.map Sim.Net.ctl to_p0.(src)
      else None
    in
    Sim.Fault.apply engine ~nodes ~link ~on_crash:do_crash
      ~on_recover:do_recover
      ~on_apply:(fun at action -> fault_log := (at, action) :: !fault_log)
      cfg.faults
  end;
  Sim.Engine.run ~until:cfg.duration engine;
  let sent = ref 0 and lost = ref 0 and dropped = ref 0 in
  let count l =
    sent := !sent + Sim.Net.sent l;
    lost := !lost + Sim.Net.lost l;
    dropped := !dropped + Sim.Net.dropped l
  in
  Array.iteri (fun i l -> if i >= 1 then count l) to_pi;
  Array.iter (fun l -> Option.iter count l) to_p0;
  {
    messages_sent = !sent;
    messages_lost = !lost;
    messages_dropped = !dropped;
    p0_detected_at = coordinator.detected;
    pi_inactivated_at = List.rev !inactivations;
    false_detection = coordinator.detected <> None && not !crashed;
    fault_log = List.rev !fault_log;
  }

let first_crash_at cfg =
  let scheduled =
    List.filter_map
      (fun { Sim.Fault.at; action } ->
        match action with Sim.Fault.Crash _ -> Some at | _ -> None)
      cfg.faults
  in
  let all =
    match cfg.crash with
    | Some { at; _ } -> at :: scheduled
    | None -> scheduled
  in
  match all with [] -> None | _ -> Some (List.fold_left min infinity all)

let detection_delay cfg result =
  match (first_crash_at cfg, result.p0_detected_at) with
  | Some at, Some d when d >= at -> Some (d -. at)
  | _ -> None
