(* Column layout: time | p[0] | channels | p[1] .. p[n].

   Actions are routed to a lifeline by their conventional names
   (see {!Ta_models}); channel deliveries and losses live in the middle
   column with an arrow showing the direction. *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let participant_suffix s =
  (* trailing integer of an action name like "inactivate_nv_p3" *)
  let n = String.length s in
  let rec go i = if i > 0 && s.[i - 1] >= '0' && s.[i - 1] <= '9' then go (i - 1) else i in
  let start = go n in
  if start = n then None else int_of_string_opt (String.sub s start (n - start))

let column_of action =
  if
    starts_with "timeout_p0" action
    || starts_with "beat0" action
    || action = "inactivate_nv_p0" || action = "crash_p0"
  then Some 0
  else if
    starts_with "dlv" action
    || starts_with "lose" action
    || starts_with "jlose" action
  then None
  else
    (* beat1, join1, inactivate_nv_p1, crash_p1, errorR1_1, leave1 ... *)
    participant_suffix action

(* Direction glyph for channel events. *)
let channel_glyph action =
  if starts_with "dlv0" action then Printf.sprintf "--%s-->" action
  else if starts_with "dlv1" action then Printf.sprintf "<--%s--" action
  else if starts_with "(" action then action
  else Printf.sprintf "x %s x" action

let col_width = 22

let pad text = Printf.sprintf "%-*s" col_width text

let header_line n =
  pad "time" ^ pad "p[0]" ^ pad "channel"
  ^ String.concat "" (List.init n (fun i -> pad (Printf.sprintf "p[%d]" (i + 1))))

let add_events buf ~n ~last_time events =
  let row time cells =
    Buffer.add_string buf (pad time);
    List.iter (fun c -> Buffer.add_string buf (pad c)) cells;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (e : Scenarios.event) ->
      let time_cell =
        if e.Scenarios.time <> !last_time then begin
          last_time := e.Scenarios.time;
          Printf.sprintf "t=%d" e.Scenarios.time
        end
        else ""
      in
      let cells =
        match column_of e.Scenarios.action with
        | Some 0 ->
            e.Scenarios.action :: "" :: List.init n (fun _ -> "")
        | Some i when i >= 1 && i <= n ->
            "" :: ""
            :: List.init n (fun k -> if k + 1 = i then e.Scenarios.action else "")
        | Some _ | None ->
            "" :: channel_glyph e.Scenarios.action :: List.init n (fun _ -> "")
      in
      row time_cell cells)
    events

let render ?(n = 1) (s : Scenarios.t) =
  let buf = Buffer.create 1024 in
  let header = header_line n in
  Buffer.add_string buf (Printf.sprintf "%s — %s\n" s.Scenarios.figure
     (Ta_models.variant_name s.Scenarios.variant));
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf (String.make (String.length header) '-' ^ "\n");
  add_events buf ~n ~last_time:(ref (-1)) s.Scenarios.events;
  Buffer.contents buf

let render_lasso ?(n = 1) ~header:title
    (lasso : Ta.Semantics.label Ltl.Check.lasso) =
  let buf = Buffer.create 1024 in
  let header = header_line n in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf (String.make (String.length header) '-' ^ "\n");
  (* fold ticks into timestamps, continuing across the prefix/cycle
     boundary so the cycle's first lap carries real times *)
  let time = ref 0 in
  let events steps =
    List.filter_map
      (fun (s : Ta.Semantics.label Ltl.Check.step) ->
        match s with
        | Ltl.Check.Step Ta.Semantics.Delay ->
            incr time;
            None
        | Ltl.Check.Step (Ta.Semantics.Act a) ->
            Some { Scenarios.time = !time; action = a }
        | Ltl.Check.Stutter ->
            Some { Scenarios.time = !time; action = "(stutter)" })
      steps
  in
  let prefix_events = events lasso.Ltl.Check.prefix in
  let cycle_events = events lasso.Ltl.Check.cycle in
  let last_time = ref (-1) in
  add_events buf ~n ~last_time prefix_events;
  let ticks =
    List.length
      (List.filter
         (fun s -> s = Ltl.Check.Step Ta.Semantics.Delay)
         lasso.Ltl.Check.cycle)
  in
  Buffer.add_string buf
    (Printf.sprintf "%s cycle repeats forever (%d tick%s per lap) %s\n"
       (String.make 8 '=') ticks
       (if ticks = 1 then "" else "s")
       (String.make (max 8 (String.length header - 50)) '='));
  add_events buf ~n ~last_time cycle_events;
  Buffer.contents buf
