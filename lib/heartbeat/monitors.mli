(** Online runtime monitors for the paper's requirements R1–R3, checked
    against simulation traces.

    {!Requirements} expresses R1–R3 as bad-state predicates over the
    timed-automata models, decided offline by the model checker.  This
    module is the runtime half of the same loop: a monitor consumes the
    event trace of a {!Runtime} simulation online and reports the first
    event at which a requirement is refuted, with the trace prefix that
    led there (rendered MSC-style, like the paper's Figures 10–13).

    The monitored clauses, in requirement terms:

    - {b R1} (bounded detection): if p[0] receives no heartbeat from a
      participant for [r1_bound], p[0] must have inactivated itself; and
      a participant that receives no beat for [pi_bound] must have
      inactivated — unless the process in question is itself crashed by
      a fault.  The bounds are supplied by the caller: the paper's
      claimed [2*tmax] refutes the unfixed protocols at the parameter
      points the tables mark [F]; the corrected §6.2 bounds hold.
    - {b R2} (no false inactivation of participants): a participant is
      never non-voluntarily inactivated while p[0] is up unless a
      message on one of its links was lost or dropped.
    - {b R3} (no false inactivation of p[0], and quiescence): p[0] never
      self-inactivates unless some process crashed or a message was
      lost; and after p[0]'s inactivation the system goes quiet — no
      message is sent more than [quiescence_after] past it. *)

type event =
  | Send of { src : int; dst : int; at : float }
  | Deliver of { src : int; dst : int; at : float }
  | Drop of { src : int; dst : int; at : float; kind : Sim.Net.drop_kind }
  | Late of { src : int; dst : int; at : float }
      (** delivered past the channel's nominal delay bound (reordering /
          jitter faults) — excuses R2/R3 like a loss does *)
  | Crash of { node : int; at : float }
  | Recover of { node : int; at : float }
  | Detect of { at : float }  (** p[0] concluded a failure *)
  | Inactivate of { node : int; at : float }
      (** non-voluntary participant inactivation *)

val time_of : event -> float
val pp_event : Format.formatter -> event -> unit

type violation = {
  req : Requirements.requirement;
  at : float;  (** when the requirement became refuted *)
  reason : string;
  prefix : event list;  (** the trace up to and including discovery *)
}

type verdict = Pass | Fail of violation

type t

val create :
  ?slack:float ->
  ?grace:float ->
  ?quiescence_after:float ->
  n:int ->
  r1_bound:float ->
  pi_bound:float ->
  Requirements.requirement list ->
  t
(** [create ~n ~r1_bound ~pi_bound reqs] monitors the given requirements
    over a run with participants [1..n].  [slack] (default [1e-6])
    absorbs floating-point ties at exact deadlines; [quiescence_after]
    (default [2 * pi_bound]) is how long after p[0]'s inactivation
    residual in-flight traffic may still cause sends.

    [grace] (default 0) holds an R2/R3 candidate violation open for that
    long before latching it: under reordering or jitter the delivery that
    excuses a false-looking inactivation (the late message the protocol
    timed out on) can land {e after} the inactivation itself.  Callers
    injecting such faults should set it to at least the worst-case
    lateness still in flight (e.g. [tmin + 2 * jitter]); a candidate
    still inside its grace window when {!finish} is called is dropped as
    inconclusive rather than latched. *)

val feed : t -> event -> unit
(** Consume the next trace event (events must arrive in time order).
    After the first violation the monitor latches and further events are
    ignored. *)

val finish : t -> now:float -> unit
(** Declare the end of the run at time [now], checking deadlines that
    expired after the last event. *)

val verdict : t -> verdict

val trace : t -> event list
(** Everything fed so far, in order (capped at the violation if any). *)

val pp_violation : Format.formatter -> violation -> unit

val render_prefix : ?n:int -> violation -> string
(** The violation's trace prefix as an MSC-style chart: one column per
    process plus a channel column, one row per event ([n] participant
    columns, default 1). *)
