(** Adversarial fault-injection campaigns over the {!Runtime}
    simulations.

    A campaign sweeps a grid of fault {e scenarios} (crashes, coordinator
    loss, crash-then-recover, partitions, burst loss, duplication /
    reordering / jitter) across the three coordinator disciplines and the
    paper's [(tmin, tmax)] table points, runs every point under the
    {!Monitors} for R1–R3, and — when a requirement is refuted — shrinks
    the fault schedule to a minimal reproduction by greedy re-execution
    under the same seed.

    Monitored bounds follow the paper's argument: unfixed runs are held
    to the {e claimed} [2*tmax] detection bound (which the accelerated
    schedules genuinely exceed at the table points marked F), fixed runs
    to the corrected §6.2 worst case of their discipline, so a default
    campaign over the fixed variants passes with zero violations while
    the unfixed one reproduces the paper's refutations. *)

type point = {
  kind : Runtime.kind;
  params : Params.t;
  fixed : bool;  (** monitor against the corrected §6.2 bounds *)
  scenario : string;
  faults : Sim.Fault.schedule;
  seed : int64;
  duration : float;
}

type outcome = {
  point : point;
  verdict : Monitors.verdict;
  shrunk : Sim.Fault.schedule option;
      (** minimal failing schedule, present iff the verdict is [Fail]
          and shrinking was requested *)
  sent : int;
  lost : int;
  dropped : int;
  detected_at : float option;
  inactivations : int;
}

type t = {
  fixed : bool;
  seed : int64;
  outcomes : outcome list;
  interrupted : Mc.Budget.reason option;
      (** set when a [budget] stopped the sweep early; [outcomes] is
          then a prefix of the full campaign in sweep order *)
}

val claimed_r1_bound : Params.t -> float
(** The paper's claimed detection bound, [2 * tmax]. *)

val exact_r1_bound : Runtime.kind -> Params.t -> float
(** The §6.2 worst-case detection delay of a discipline measured from
    the last heartbeat delivery, over the float recurrence the runtime
    executes (e.g. halving at (1,10): [28.75], not the integer-halving
    [28]). *)

val monitor_bounds : fixed:bool -> Runtime.kind -> Params.t -> float * float
(** [(r1_bound, pi_bound)] a campaign point is monitored against. *)

val default_scenarios : Params.t -> (string * Sim.Fault.schedule) list
(** The built-in adversary, scaled to the parameter point. *)

val run_point : point -> Monitors.verdict * Runtime.result
(** Run a single point under fresh monitors. *)

val shrink : point -> Sim.Fault.schedule
(** Greedy 1-minimal shrink of the point's (violating) schedule: drops
    single events, then halves window durations, keeping each change
    that still yields a violation under the same seed. *)

val default_kinds : Runtime.kind list

val run :
  ?kinds:Runtime.kind list ->
  ?datasets:(int * int) list ->
  ?n:int ->
  ?fixed:bool ->
  ?seed:int64 ->
  ?duration_factor:float ->
  ?shrink_failures:bool ->
  ?budget:Mc.Budget.t ->
  unit ->
  t
(** Sweep [datasets × kinds × default_scenarios].  Each point gets an
    independent sub-seed drawn from [seed] (default 7) in sweep order and
    runs for [duration_factor * tmax] (default 10).  Deterministic:
    equal arguments give equal outcomes, including the shrunk
    schedules.  [budget] is polled between points (a point is the unit
    of work): a trip or a signal stops the sweep after the current
    point, recording the reason in {!t.interrupted} — the completed
    prefix is identical to the uninterrupted campaign's. *)

val violations : t -> outcome list

val to_json : t -> string
(** Deterministic report — equal campaigns render byte-identically. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp : Format.formatter -> t -> unit
