type requirement = R1 | R2 | R3

let all = [ R1; R2; R3 ]
let name = function R1 -> "R1" | R2 -> "R2" | R3 -> "R3"
let needs_monitors = function R1 -> true | R2 | R3 -> false

let participants variant (p : Params.t) =
  let n = if Ta_models.is_multi variant then p.Params.n else 1 in
  List.init n (fun k -> k + 1)

(* "p[j] is still a live participant": any location other than the two
   inactivated ones.  Never-joined and left participants are handled
   separately, following the paper's UPPAAL formulas
   (e.g. [P2.Alive or (not jnd[..]) or leave[..]]). *)
let alive_pred variant net j =
  let loc_is loc = Ta.Semantics.loc_is net ~auto:(Ta_models.p_name j) ~loc in
  let v = loc_is "VInact" and nv = loc_is "NVInact" in
  let left =
    if variant = Ta_models.Dynamic then loc_is "Left" else fun _ -> false
  in
  fun c -> (not (v c)) && (not (nv c)) && not (left c)

(* "p[j]'s state cannot excuse someone else's inactivation": p[j] is
   alive, or it never joined, or it left voluntarily. *)
let no_excuse_pred variant net j =
  let alive = alive_pred variant net j in
  let left =
    if variant = Ta_models.Dynamic then
      Ta.Semantics.loc_is net ~auto:(Ta_models.p_name j) ~loc:"Left"
    else fun _ -> false
  in
  let unjoined =
    if variant = Ta_models.Expanding || variant = Ta_models.Dynamic then
      let jv = Ta.Semantics.var net (Printf.sprintf "jnd%d" j) in
      fun c -> jv c = 0
    else fun _ -> false
  in
  fun c -> alive c || left c || unjoined c

let bad_state variant (p : Params.t) (net : Ta.Semantics.t) req =
  let loc_is auto loc = Ta.Semantics.loc_is net ~auto ~loc in
  let var name = Ta.Semantics.var net name in
  let ps = participants variant p in
  match req with
  | R1 ->
      (* Some watchdog reached its error location. *)
      let errors =
        List.map (fun i -> loc_is (Ta_models.monitor_name i) "Error") ps
      in
      fun c -> List.exists (fun pred -> pred c) errors
  | R2 ->
      (* Some participant was non-voluntarily inactivated although no
         message was ever lost, p[0] is still alive, and every other
         participant is alive (or never joined / left voluntarily). *)
      let lost = var "lost" in
      let p0_alive = loc_is Ta_models.p0_name "Alive" in
      let nv =
        List.map (fun i -> (i, loc_is (Ta_models.p_name i) "NVInact")) ps
      in
      let no_excuse = List.map (fun j -> (j, no_excuse_pred variant net j)) ps in
      fun c ->
        lost c = 0 && p0_alive c
        && List.exists
             (fun (i, nv_i) ->
               nv_i c
               && List.for_all (fun (j, ok_j) -> j = i || ok_j c) no_excuse)
             nv
  | R3 ->
      (* p[0] was non-voluntarily inactivated although no message was ever
         lost and every participant is alive (or never joined / left). *)
      let lost = var "lost" in
      let p0_nv = loc_is Ta_models.p0_name "NVInact" in
      let no_excuse = List.map (fun j -> no_excuse_pred variant net j) ps in
      fun c ->
        lost c = 0 && p0_nv c && List.for_all (fun ok_j -> ok_j c) no_excuse

(* The slicing seed mirrors [bad_state]: every variable and location a
   requirement's predicate observes must survive the slice, so the
   predicate can be built against the sliced net and the seeded clocks
   keep exact values.  No clocks are observed by any requirement. *)
let slice_seed variant (p : Params.t) req : Slice_ta.seed =
  let ps = participants variant p in
  let joining =
    variant = Ta_models.Expanding || variant = Ta_models.Dynamic
  in
  let alive_locs j =
    [ (Ta_models.p_name j, "VInact"); (Ta_models.p_name j, "NVInact") ]
    @ if variant = Ta_models.Dynamic then [ (Ta_models.p_name j, "Left") ] else []
  in
  let excuse_vars =
    if joining then List.map (fun j -> Printf.sprintf "jnd%d" j) ps else []
  in
  match req with
  | R1 ->
      {
        Slice_ta.empty_seed with
        Slice_ta.seed_locs =
          List.map (fun i -> (Ta_models.monitor_name i, "Error")) ps;
      }
  | R2 ->
      {
        Slice_ta.seed_vars = "lost" :: excuse_vars;
        seed_clocks = [];
        seed_locs =
          (Ta_models.p0_name, "Alive") :: List.concat_map alive_locs ps;
      }
  | R3 ->
      {
        Slice_ta.seed_vars = "lost" :: excuse_vars;
        seed_clocks = [];
        seed_locs =
          (Ta_models.p0_name, "NVInact") :: List.concat_map alive_locs ps;
      }

(* ------------------------------------------------------------------ *)
(* Liveness formulations                                               *)
(* ------------------------------------------------------------------ *)

let is_act p = function
  | Ta.Semantics.Act a -> p a
  | Ta.Semantics.Delay -> false

let act name = Ltl.Formula.lbl name (is_act (String.equal name))

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Environment faults: message losses, voluntary crashes, voluntary
   leaves.  Non-voluntary inactivations are deliberately *not* faults —
   they are the protocol's own decisions, and the runs we want to expose
   (the §5.5 races) contain them. *)
let fault =
  Ltl.Formula.lbl "fault"
    (is_act (fun a ->
         starts_with "lose" a || starts_with "jlose" a
         || starts_with "crash_" a || starts_with "leave" a))

let benign = Ltl.Formula.globally (Ltl.Formula.Not fault)

let live_fairness =
  [ Ltl.Check.often "time" (fun l -> l = Ta.Semantics.Delay) ]

let live_formula variant (p : Params.t) req =
  let ps = participants variant p in
  let joining =
    variant = Ta_models.Expanding || variant = Ta_models.Dynamic
  in
  let dlv1 i = act (Printf.sprintf "dlv1_%d" i) in
  let dlv0 i = act (Printf.sprintf "dlv0_%d" i) in
  let join i = act (Printf.sprintf "join%d" i) in
  let joined_owes i f =
    if joining then Ltl.Formula.implies (Ltl.Formula.finally (join i)) f
    else f
  in
  match req with
  | R1 ->
      (* The watchdog arms at the first *delivered* beat (a join whose
         every beat is lost leaves p[0] unaware of p[i], so p[0] owes
         nothing), hence the F dlv1_i guard rather than F join_i. *)
      Ltl.Formula.conj
        (List.map
           (fun i ->
             Ltl.Formula.implies
               (Ltl.Formula.finally (dlv1 i))
               (Ltl.Formula.disj
                  ([
                     Ltl.Formula.infinitely_often (dlv1 i);
                     Ltl.Formula.finally (act "inactivate_nv_p0");
                     Ltl.Formula.finally (act "crash_p0");
                   ]
                  @
                  if variant = Ta_models.Dynamic then
                    [ Ltl.Formula.finally (act (Printf.sprintf "leave%d" i)) ]
                  else [])))
           ps)
  | R2 ->
      Ltl.Formula.implies benign
        (Ltl.Formula.conj
           (List.map
              (fun i -> joined_owes i (Ltl.Formula.infinitely_often (dlv1 i)))
              ps))
  | R3 ->
      Ltl.Formula.implies benign
        (Ltl.Formula.conj
           (List.map
              (fun i -> joined_owes i (Ltl.Formula.infinitely_often (dlv0 i)))
              ps))

let live_description = function
  | R1 ->
      "if some participant's beats stop arriving forever, p[0] is \
       eventually inactivated (untimed essence of R1; the 2*tmax bound \
       stays with the watchdogs)"
  | R2 ->
      "with no losses, crashes or leaves, every participant's beats keep \
       arriving at p[0] forever"
  | R3 ->
      "with no losses, crashes or leaves, p[0]'s beats keep arriving at \
       every participant forever"

(* ------------------------------------------------------------------ *)
(* Liveness on the process-algebra models                              *)
(* ------------------------------------------------------------------ *)

let pa_act name =
  Ltl.Formula.lbl name (fun (l : Proc.Semantics.label) ->
      match l with
      | Proc.Semantics.Act (n, _) -> n = name
      | Proc.Semantics.Tick -> false)

let pa_participants variant (p : Params.t) =
  let n =
    match (variant : Pa_models.variant) with
    | Pa_models.Static | Pa_models.Expanding | Pa_models.Dynamic -> p.Params.n
    | Pa_models.Binary | Pa_models.Revised | Pa_models.Two_phase -> 1
  in
  List.init n (fun k -> k + 1)

(* One single-name atom per fault: a multi-name predicate would break
   the [Lbl] contract {!Ltl.Formula.stutter_invariant} relies on, and
   with it the partial-order reduction of the check. *)
let benign_pa variant ps =
  let faults =
    List.concat_map (Pa_models.act_lose variant) ps
    @ [ Pa_models.act_crash_p0 ]
    @ List.map Pa_models.act_crash_pi ps
    @
    if variant = Pa_models.Dynamic then List.map Pa_models.act_leave_pi ps
    else []
  in
  Ltl.Formula.conj
    (List.map
       (fun nm -> Ltl.Formula.globally (Ltl.Formula.Not (pa_act nm)))
       faults)

let live_fairness_pa =
  [ Ltl.Check.often "tick" (fun l -> l = Proc.Semantics.Tick) ]

let live_formula_pa variant (p : Params.t) req =
  let ps = pa_participants variant p in
  let joining = Pa_models.has_join variant in
  let dlv1 i = pa_act (Pa_models.act_beat_delivered_to_p0 i) in
  let dlv0 i = pa_act (Pa_models.act_beat_delivered_to_pi i) in
  let jdlv i = pa_act (Pa_models.act_join_delivered_to_p0 i) in
  let joined_owes i f =
    (* the watchdogs arm at the first delivered join/beat, so the
       obligation is guarded by the delivery, not the attempt *)
    if joining then Ltl.Formula.implies (Ltl.Formula.finally (jdlv i)) f
    else f
  in
  match req with
  | R1 ->
      Ltl.Formula.conj
        (List.map
           (fun i ->
             Ltl.Formula.implies
               (Ltl.Formula.finally (dlv1 i))
               (Ltl.Formula.disj
                  ([
                     Ltl.Formula.infinitely_often (dlv1 i);
                     Ltl.Formula.finally (pa_act Pa_models.act_inactivate_nv_p0);
                     Ltl.Formula.finally (pa_act Pa_models.act_crash_p0);
                   ]
                  @
                  if variant = Pa_models.Dynamic then
                    [
                      Ltl.Formula.finally
                        (pa_act (Pa_models.act_leave_delivered_to_p0 i));
                    ]
                  else [])))
           ps)
  | R2 ->
      Ltl.Formula.implies (benign_pa variant ps)
        (Ltl.Formula.conj
           (List.map
              (fun i -> joined_owes i (Ltl.Formula.infinitely_often (dlv1 i)))
              ps))
  | R3 ->
      Ltl.Formula.implies (benign_pa variant ps)
        (Ltl.Formula.conj
           (List.map
              (fun i -> joined_owes i (Ltl.Formula.infinitely_often (dlv0 i)))
              ps))
