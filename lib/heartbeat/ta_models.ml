module M = Ta.Model
module E = Ta.Expr

type variant = Binary | Revised | Two_phase | Static | Expanding | Dynamic

let all_variants = [ Binary; Revised; Two_phase; Static; Expanding; Dynamic ]

let variant_name = function
  | Binary -> "binary"
  | Revised -> "revised"
  | Two_phase -> "two-phase"
  | Static -> "static"
  | Expanding -> "expanding"
  | Dynamic -> "dynamic"

let is_multi = function
  | Static | Expanding | Dynamic -> true
  | Binary | Revised | Two_phase -> false

let has_join = function
  | Expanding | Dynamic -> true
  | Binary | Revised | Two_phase | Static -> false

let p0_name = "P0"
let p_name i = Printf.sprintf "P%d" i
let monitor_name i = Printf.sprintf "M%d" i
let error_act i = Printf.sprintf "errorR1_%d" i

(* Per-participant names. *)
let active i = if i = 0 then "active0" else Printf.sprintf "active%d" i
let rcvd i = Printf.sprintf "rcvd%d" i
let tm i = Printf.sprintf "tm%d" i
let jnd i = Printf.sprintf "jnd%d" i
let gone i = Printf.sprintf "gone%d" i
let spent i = Printf.sprintf "spent%d" i
let pbusy i = Printf.sprintf "pbusy%d" i
let in0 i = Printf.sprintf "in0_%d" i
let in1 i = Printf.sprintf "in1_%d" i
let msg1 i = Printf.sprintf "msg1_%d" i
let out1 i = Printf.sprintf "out1_%d" i
let jmode i = Printf.sprintf "jmode%d" i
let wfb i = Printf.sprintf "wfb%d" i
let wtj i = Printf.sprintf "wtj%d" i
let d0 i = Printf.sprintf "d0_%d" i
let d1 i = Printf.sprintf "d1_%d" i
let mclk i = Printf.sprintf "m%d" i
let ch0 i = Printf.sprintf "Ch0_%d" i
let ch1 i = Printf.sprintf "Ch1_%d" i
let snd1 i = Printf.sprintf "snd1_%d" i
let dlv0 i = Printf.sprintf "dlv0_%d" i
let dlv1 i = Printf.sprintf "dlv1_%d" i

(* Expression shorthands (explicit, to avoid shadowing loop indices). *)
let num n = E.Int n
let var name = E.Var name
let clk name = E.Clock name
let eq a b = E.Cmp (E.Eq, a, b)
let le a b = E.Cmp (E.Le, a, b)
let ge a b = E.Cmp (E.Ge, a, b)
let gt a b = E.Cmp (E.Gt, a, b)
let ne a b = E.Cmp (E.Ne, a, b)
let band a b = E.And (a, b)
let assign name e = M.Assign (M.Scalar name, e)
let set1 name = assign name (num 1)
let set0 name = assign name (num 0)

(* p[0]'s coordinator automaton. *)
let p0_automaton variant ~fixed (p : Params.t) n =
  let tmin = p.Params.tmin and tmax = p.Params.tmax in
  let participants = List.init n (fun k -> k + 1) in
  (* New waiting time of participant i, computed from the pre-timeout
     values of rcvd_i / tm_i / jnd_i. *)
  let tm' i =
    let on_reply = num tmax in
    let on_miss =
      match variant with
      | Two_phase -> num tmin
      | Binary | Revised | Static | Expanding | Dynamic ->
          E.Div (var (tm i), num 2)
    in
    let joined_case =
      E.Add
        ( E.Mul (var (rcvd i), on_reply),
          E.Mul (E.Sub (num 1, var (rcvd i)), on_miss) )
    in
    if has_join variant then
      E.Add
        ( E.Mul (var (jnd i), joined_case),
          E.Mul (E.Sub (num 1, var (jnd i)), num tmax) )
    else joined_case
  in
  let newt =
    match participants with
    | [] -> num tmax
    | first :: rest ->
        List.fold_left (fun acc k -> E.Min (acc, tm' k)) (tm' first) rest
  in
  let send_guard, nv_guard =
    match variant with
    | Two_phase ->
        ( E.Or (ne (var (rcvd 1)) (num 0), gt (var (tm 1)) (num tmin)),
          band (eq (var (rcvd 1)) (num 0)) (le (var (tm 1)) (num tmin)) )
    | Binary | Revised | Static | Expanding | Dynamic ->
        (ge newt (num tmin), E.Cmp (E.Lt, newt, num tmin))
  in
  (* Receive priority (the §6.1 fix): the round boundary may not be
     processed while any message of the exchange is still in flight — a
     pending reply, or a pending forward beat whose delivery would trigger
     an instantaneous reply.  The chain resolves without time passing, so
     this only reorders simultaneous events, exactly as the fix asks. *)
  let timeout_guard =
    let base = eq (clk "w0") (var "t") in
    if fixed then
      List.fold_left
        (fun acc k ->
          band acc
            (band
               (band (eq (var (in1 k)) (num 0)) (eq (var (in0 k)) (num 0)))
               (eq (var (pbusy k)) (num 0))))
        base participants
    else base
  in
  let beat_updates =
    (assign "t" newt :: List.map (fun k -> assign (tm k) (tm' k)) participants)
    @ List.map (fun k -> set0 (rcvd k)) participants
    @ [ M.Reset "w0"; set0 "p0busy" ]
  in
  let recv_edges loc =
    List.concat_map
      (fun k ->
        match variant with
        | Dynamic ->
            [
              (* Leaving is permanent: beats from a participant that has
                 left are ignored. *)
              M.edge ~src:loc ~dst:loc ~sync:(M.Recv (dlv1 k))
                ~guard:
                  (band (eq (var (msg1 k)) (num 1)) (eq (var (gone k)) (num 0)))
                ~updates:[ set1 (rcvd k); set1 (jnd k) ]
                ();
              M.edge ~src:loc ~dst:loc ~sync:(M.Recv (dlv1 k))
                ~guard:
                  (band (eq (var (msg1 k)) (num 1)) (eq (var (gone k)) (num 1)))
                ();
              M.edge ~src:loc ~dst:loc ~sync:(M.Recv (dlv1 k))
                ~guard:(eq (var (msg1 k)) (num 0))
                ~updates:[ set0 (jnd k); set1 (gone k) ]
                ();
            ]
        | Expanding ->
            [
              M.edge ~src:loc ~dst:loc ~sync:(M.Recv (dlv1 k))
                ~updates:[ set1 (rcvd k); set1 (jnd k) ]
                ();
            ]
        | Binary | Revised | Two_phase | Static ->
            [
              M.edge ~src:loc ~dst:loc ~sync:(M.Recv (dlv1 k))
                ~updates:[ set1 (rcvd k) ]
                ();
            ])
      participants
  in
  let dead_recv_edges loc =
    List.map
      (fun k -> M.edge ~src:loc ~dst:loc ~sync:(M.Recv (dlv1 k)) ())
      participants
  in
  let locations =
    (if variant = Revised then [ M.loc ~kind:M.Urgent "Start" ] else [])
    @ [
        M.loc ~invariant:(le (clk "w0") (var "t")) "Alive";
        M.loc ~kind:M.Urgent "TimeOut";
        M.loc "VInact";
        M.loc "NVInact";
      ]
  in
  let start_edges =
    if variant = Revised then
      [
        M.edge ~src:"Start" ~dst:"Alive" ~sync:(M.Send "snd0") ~act:"beat0"
          ~updates:[ M.Reset "w0" ] ();
        M.edge ~src:"Start" ~dst:"VInact" ~act:"crash_p0"
          ~updates:[ set0 (active 0) ]
          ();
      ]
    else []
  in
  let edges =
    start_edges
    @ [
        M.edge ~src:"Alive" ~dst:"TimeOut" ~guard:timeout_guard
          ~act:"timeout_p0"
          ~updates:[ set1 "p0busy" ]
          ();
        M.edge ~src:"TimeOut" ~dst:"Alive" ~sync:(M.Send "snd0")
          ~guard:send_guard ~act:"beat0" ~updates:beat_updates ();
        M.edge ~src:"TimeOut" ~dst:"NVInact" ~guard:nv_guard
          ~act:"inactivate_nv_p0"
          ~updates:[ set0 (active 0); set0 "p0busy" ]
          ();
        M.edge ~src:"Alive" ~dst:"VInact" ~act:"crash_p0"
          ~updates:[ set0 (active 0) ]
          ();
      ]
    @ recv_edges "Alive" @ dead_recv_edges "VInact" @ dead_recv_edges "NVInact"
  in
  {
    M.auto_name = p0_name;
    locations;
    edges;
    init_loc = (if variant = Revised then "Start" else "Alive");
  }

(* Participant automaton p[i]. *)
let pi_automaton variant ~fixed (p : Params.t) i =
  let tmin = p.Params.tmin and tmax = p.Params.tmax in
  let pibound = if fixed then 2 * tmax else (3 * tmax) - tmin in
  let joinbound = if fixed then (2 * tmax) + tmin else (3 * tmax) - tmin in
  let nv_guard clock bound =
    let base = eq (clk clock) (num bound) in
    if fixed then band base (eq (var (in0 i)) (num 0)) else base
  in
  let reply_updates =
    [ M.Reset (wfb i); set0 (pbusy i) ]
    @ if variant = Dynamic then [ assign (out1 i) (num 1) ] else []
  in
  let joining = has_join variant in
  let locations =
    (if joining then
       [
         M.loc ~kind:M.Urgent "Init";
         M.loc
           ~invariant:
             (band
                (le (clk (wtj i)) (num tmin))
                (le (clk (wfb i)) (num joinbound)))
           "Waiting";
       ]
     else [])
    @ [
        M.loc ~invariant:(le (clk (wfb i)) (num pibound)) "Alive";
        M.loc ~kind:M.Urgent "Rcvd";
        M.loc "VInact";
        M.loc "NVInact";
      ]
    @ (if variant = Dynamic then [ M.loc "Left" ] else [])
  in
  let dead_recv loc = M.edge ~src:loc ~dst:loc ~sync:(M.Recv (dlv0 i)) () in
  let join_updates =
    [ M.Reset (wtj i) ]
    @ if variant = Dynamic then [ assign (out1 i) (num 1) ] else []
  in
  let join_edges =
    if joining then
      [
        M.edge ~src:"Init" ~dst:"Waiting" ~sync:(M.Send (snd1 i))
          ~act:(Printf.sprintf "join%d" i)
          ~updates:(M.Reset (wfb i) :: join_updates)
          ();
        M.edge ~src:"Init" ~dst:"VInact"
          ~act:(Printf.sprintf "crash_p%d" i)
          ~updates:[ set0 (active i) ]
          ();
        M.edge ~src:"Waiting" ~dst:"Waiting" ~sync:(M.Send (snd1 i))
          ~guard:(eq (clk (wtj i)) (num tmin))
          ~act:(Printf.sprintf "join%d" i)
          ~updates:join_updates ();
        M.edge ~src:"Waiting" ~dst:"Rcvd" ~sync:(M.Recv (dlv0 i))
          ~updates:[ set1 (pbusy i) ]
          ();
        M.edge ~src:"Waiting" ~dst:"NVInact"
          ~guard:(nv_guard (wfb i) joinbound)
          ~act:(Printf.sprintf "inactivate_nv_p%d" i)
          ~updates:[ set0 (active i) ]
          ();
        M.edge ~src:"Waiting" ~dst:"VInact"
          ~act:(Printf.sprintf "crash_p%d" i)
          ~updates:[ set0 (active i) ]
          ();
      ]
    else []
  in
  let edges =
    join_edges
    @ [
        M.edge ~src:"Alive" ~dst:"Rcvd" ~sync:(M.Recv (dlv0 i))
          ~updates:[ set1 (pbusy i) ]
          ();
        M.edge ~src:"Rcvd" ~dst:"Alive" ~sync:(M.Send (snd1 i))
          ~act:(Printf.sprintf "beat%d" i)
          ~updates:reply_updates ();
        M.edge ~src:"Alive" ~dst:"NVInact"
          ~guard:(nv_guard (wfb i) pibound)
          ~act:(Printf.sprintf "inactivate_nv_p%d" i)
          ~updates:[ set0 (active i) ]
          ();
        M.edge ~src:"Alive" ~dst:"VInact"
          ~act:(Printf.sprintf "crash_p%d" i)
          ~updates:[ set0 (active i) ]
          ();
        dead_recv "VInact";
        dead_recv "NVInact";
      ]
    @
    if variant = Dynamic then
      [
        (* Departure is tracked by the Left location itself; a separate
           leave_i flag would be a write-only config cell (hblint
           TA-VAR-WRITE-ONLY). *)
        M.edge ~src:"Rcvd" ~dst:"Left" ~sync:(M.Send (snd1 i))
          ~act:(Printf.sprintf "leave%d" i)
          ~updates:[ assign (out1 i) (num 0); set0 (pbusy i) ]
          ();
        dead_recv "Left";
      ]
    else []
  in
  {
    M.auto_name = p_name i;
    locations;
    edges;
    init_loc = (if joining then "Init" else "Alive");
  }

(* Forward channel p[0] -> p[i]: picks up the broadcast [snd0] (when p[i]
   participates), then delivers within [tmin] — recording the spent
   forward delay — or loses the beat. *)
let ch0_automaton variant (p : Params.t) i =
  let tmin = p.Params.tmin in
  let participate =
    if has_join variant then eq (var (jnd i)) (num 1) else E.True
  in
  let locations =
    [ M.loc "Idle"; M.loc ~invariant:(le (clk (d0 i)) (num tmin)) "Busy" ]
  in
  let edges =
    [
      M.edge ~src:"Idle" ~dst:"Busy" ~sync:(M.Recv "snd0") ~guard:participate
        ~updates:[ M.Reset (d0 i); assign (spent i) (num 0); set1 (in0 i) ]
        ();
      M.edge ~src:"Busy" ~dst:"Idle" ~sync:(M.Send (dlv0 i))
        ~guard:(eq (var (pbusy i)) (num 0))
        ~act:(dlv0 i)
        ~updates:[ assign (spent i) (clk (d0 i)); set0 (in0 i) ]
        ();
      M.edge ~src:"Busy" ~dst:"Idle"
        ~act:(Printf.sprintf "lose0_%d" i)
        ~updates:[ set1 "lost"; set0 (in0 i) ]
        ();
      (* A beat broadcast while one is still in flight overruns the
         one-place channel; count it as a loss. *)
      M.edge ~src:"Busy" ~dst:"Busy" ~sync:(M.Recv "snd0") ~guard:participate
        ~updates:[ set1 "lost" ]
        ();
    ]
  in
  { M.auto_name = ch0 i; locations; edges; init_loc = "Idle" }

(* Reverse channel p[i] -> p[0].  A reply's in-flight time is bounded by
   the round-trip budget left over from the forward direction.  In the
   joining variants, a beat sent before p[i] has joined travels on the
   paper's "extra channel": it may take up to tmax (this is what makes the
   Figure-13 scenario — a join request arriving just after a round
   boundary, acknowledged only a full round later — possible), and a join
   request superseded by a newer one is dropped silently, since the
   pre-join request stream is redundant by design and its drops are not
   what the requirements count as message loss. *)
let ch1_automaton variant (p : Params.t) i =
  let tmin = p.Params.tmin and tmax = p.Params.tmax in
  let joining = has_join variant in
  let enter_updates =
    [ M.Reset (d1 i); set1 (in1 i) ]
    @ (if joining then [ assign (jmode i) (var (jnd i)) ] else [])
    @ if variant = Dynamic then [ assign (msg1 i) (var (out1 i)) ] else []
  in
  let reply_budget = E.Sub (num tmin, var (spent i)) in
  let busy_invariant =
    if joining then
      le (clk (d1 i))
        (E.Add
           ( E.Mul (var (jmode i), reply_budget),
             E.Mul (E.Sub (num 1, var (jmode i)), num tmax) ))
    else le (clk (d1 i)) reply_budget
  in
  let overrun_edges =
    if joining then
      [
        M.edge ~src:"Busy" ~dst:"Busy" ~sync:(M.Recv (snd1 i))
          ~guard:(eq (var (jnd i)) (num 1))
          ~updates:[ set1 "lost" ]
          ();
        M.edge ~src:"Busy" ~dst:"Busy" ~sync:(M.Recv (snd1 i))
          ~guard:(eq (var (jnd i)) (num 0))
          ();
      ]
    else
      [
        M.edge ~src:"Busy" ~dst:"Busy" ~sync:(M.Recv (snd1 i))
          ~updates:[ set1 "lost" ]
          ();
      ]
  in
  let locations = [ M.loc "Idle"; M.loc ~invariant:busy_invariant "Busy" ] in
  let edges =
    [
      M.edge ~src:"Idle" ~dst:"Busy" ~sync:(M.Recv (snd1 i))
        ~updates:enter_updates ();
      M.edge ~src:"Busy" ~dst:"Idle" ~sync:(M.Send (dlv1 i))
        ~guard:(eq (var "p0busy") (num 0))
        ~act:(dlv1 i)
        ~updates:[ set0 (in1 i) ]
        ();
      M.edge ~src:"Busy" ~dst:"Idle"
        ~act:(Printf.sprintf "lose1_%d" i)
        ~updates:[ set1 "lost"; set0 (in1 i) ]
        ();
    ]
    @ overrun_edges
  in
  { M.auto_name = ch1 i; locations; edges; init_loc = "Idle" }

(* Requirement-R1 watchdog (Figure 9): raises errorR1_i when more than the
   claimed detection bound passes after a beat of p[i] reached p[0] while
   p[0] is still alive. *)
let monitor_automaton variant ~r1_bound i =
  let armed_initially = not (has_join variant) in
  let watch_recv =
    match variant with
    | Dynamic ->
        [
          M.edge ~src:"Watch" ~dst:"Watch" ~sync:(M.Recv (dlv1 i))
            ~guard:(eq (var (msg1 i)) (num 1))
            ~updates:[ M.Reset (mclk i) ]
            ();
          M.edge ~src:"Watch" ~dst:"Done" ~sync:(M.Recv (dlv1 i))
            ~guard:(eq (var (msg1 i)) (num 0))
            ();
        ]
    | Binary | Revised | Two_phase | Static | Expanding ->
        [
          M.edge ~src:"Watch" ~dst:"Watch" ~sync:(M.Recv (dlv1 i))
            ~updates:[ M.Reset (mclk i) ]
            ();
        ]
  in
  let arm_edges =
    if armed_initially then []
    else
      match variant with
      | Dynamic ->
          [
            M.edge ~src:"Idle" ~dst:"Watch" ~sync:(M.Recv (dlv1 i))
              ~guard:(eq (var (msg1 i)) (num 1))
              ~updates:[ M.Reset (mclk i) ]
              ();
          ]
      | Binary | Revised | Two_phase | Static | Expanding ->
          [
            M.edge ~src:"Idle" ~dst:"Watch" ~sync:(M.Recv (dlv1 i))
              ~updates:[ M.Reset (mclk i) ]
              ();
          ]
  in
  let locations =
    (if armed_initially then [] else [ M.loc "Idle" ])
    @ [ M.loc "Watch"; M.loc "Error" ]
    @ (if variant = Dynamic then [ M.loc "Done" ] else [])
  in
  let edges =
    arm_edges @ watch_recv
    @ [
        M.edge ~src:"Watch" ~dst:"Error"
          ~guard:
            (band
               (ge (clk (mclk i)) (num (r1_bound + 1)))
               (eq (var "active0") (num 1)))
          ~act:(error_act i) ();
      ]
  in
  {
    M.auto_name = monitor_name i;
    locations;
    edges;
    init_loc = (if armed_initially then "Watch" else "Idle");
  }

let r1_bound variant ~fixed (p : Params.t) =
  if not fixed then 2 * p.Params.tmax
  else
    match variant with
    | Two_phase -> (2 * p.Params.tmax) + p.Params.tmin
    | Binary | Revised | Static | Expanding | Dynamic -> Bounds.p0_detection p

let build ?(fixed = false) ?(with_r1_monitors = false) ?r1_bound:r1_override
    variant (p : Params.t) =
  let tmin = p.Params.tmin and tmax = p.Params.tmax in
  let n = if is_multi variant then p.Params.n else 1 in
  let participants = List.init n (fun k -> k + 1) in
  let joining = has_join variant in
  let r1b =
    match r1_override with
    | Some b -> b
    | None -> r1_bound variant ~fixed p
  in
  let wfb_cap = (3 * tmax) + tmin + 2 in
  (* The paper's specification initialises rcvd to true: the first round
     behaves as if a reply had arrived.  The revised variant instead sends
     its first beat at time 0, so its first round genuinely awaits one. *)
  let rcvd_init = if variant = Revised then 0 else 1 in
  let vars =
    [
      M.scalar "t" tmax;
      M.scalar "active0" 1;
      M.scalar "lost" 0;
      M.scalar "p0busy" 0;
    ]
    @ List.concat_map
        (fun i ->
          [
            M.scalar (active i) 1;
            M.scalar (rcvd i) rcvd_init;
            M.scalar (tm i) tmax;
            M.scalar (spent i) 0;
            M.scalar (pbusy i) 0;
            M.scalar (in0 i) 0;
            M.scalar (in1 i) 0;
          ]
          @ (if joining then [ M.scalar (jnd i) 0; M.scalar (jmode i) 0 ] else [])
          @
          if variant = Dynamic then
            [
              M.scalar (gone i) 0;
              M.scalar (msg1 i) 1; M.scalar (out1 i) 1;
            ]
          else [])
        participants
  in
  let clocks =
    [ { M.clock_name = "w0"; cap = tmax + 1 } ]
    @ List.concat_map
        (fun i ->
          [
            { M.clock_name = wfb i; cap = wfb_cap };
            { M.clock_name = d0 i; cap = tmin + 1 };
            { M.clock_name = d1 i; cap = (if joining then tmax else tmin) + 1 };
          ]
          @ (if joining then [ { M.clock_name = wtj i; cap = tmin + 1 } ]
             else [])
          @
          if with_r1_monitors then
            [ { M.clock_name = mclk i; cap = r1b + 2 } ]
          else [])
        participants
  in
  let chans =
    M.chan ~broadcast:true "snd0"
    :: List.concat_map
         (fun i ->
           [
             M.chan (snd1 i);
             M.chan ~broadcast:true (dlv0 i);
             M.chan ~broadcast:true (dlv1 i);
           ])
         participants
  in
  let automata =
    [ p0_automaton variant ~fixed p n ]
    @ List.map (fun i -> pi_automaton variant ~fixed p i) participants
    @ List.map (fun i -> ch0_automaton variant p i) participants
    @ List.map (fun i -> ch1_automaton variant p i) participants
    @
    if with_r1_monitors then
      List.map
        (fun i -> monitor_automaton variant ~r1_bound:r1b i)
        participants
    else []
  in
  { M.vars; clocks; chans; automata }
