(** Executable, event-driven implementations of the heartbeat protocols,
    for quantitative simulation on {!Sim}.

    These complement the formal models: where {!Ta_models}/{!Pa_models}
    answer "can this requirement ever be violated", the runtime measures
    the quantities the ICDCS'98 paper motivates its design with — the
    steady-state message rate, the failure-detection delay, and the
    probability of a false (loss-induced) deactivation.

    Three coordinator disciplines are provided: the accelerated halving
    schedule of the binary/static protocols, the two-phase drop to
    [tmin], and a classic fixed-rate heartbeat (period [tmax/k], declare
    failure after [k] misses) as the baseline the accelerated design is
    compared against. *)

type kind =
  | Halving  (** accelerated: waiting time halves on each miss *)
  | Two_phase  (** accelerated: waiting time drops to [tmin] on a miss *)
  | Fixed_rate of int
      (** [Fixed_rate k]: send every [tmax / k], declare failure after
          [k] consecutive misses — matches the accelerated protocols'
          worst-case detection of roughly [2 * tmax] while sending [k]
          times as often.
          @raise Invalid_argument unless [k >= 1]. *)

val kind_name : kind -> string

type crash = { who : int; at : float }
(** Crash participant [who] (0 for the coordinator) at time [at] — the
    legacy single scripted crash; use [faults] for anything richer. *)

type config = {
  params : Params.t;
  kind : kind;
  loss : float;  (** per-message loss probability *)
  loss_model : Sim.Loss.t option;
      (** overrides [loss] when given (e.g. bursty Gilbert–Elliott) *)
  duration : float;  (** simulated time horizon *)
  crash : crash option;
  faults : Sim.Fault.schedule;
      (** declarative fault schedule: multiple crashes (coordinator
          included), crash-then-recover, partitions, burst loss,
          duplication, reordering, delay jitter *)
  fixed_bounds : bool;
      (** use the corrected (§6.2) participant bounds instead of
          [3*tmax - tmin] *)
  seed : int64;
}

val config :
  ?kind:kind ->
  ?loss:float ->
  ?loss_model:Sim.Loss.t ->
  ?crash:crash ->
  ?faults:Sim.Fault.schedule ->
  ?fixed_bounds:bool ->
  ?seed:int64 ->
  duration:float ->
  Params.t ->
  config
(** @raise Invalid_argument on a bad [kind] or an invalid fault
    schedule. *)

type result = {
  messages_sent : int;  (** heartbeats handed to the network, both ways *)
  messages_lost : int;  (** stochastic channel loss (model or burst) *)
  messages_dropped : int;
      (** partition / down-link drops, counted separately from loss *)
  p0_detected_at : float option;
      (** when p[0] concluded a failure (accelerated: self-inactivated;
          fixed-rate: declared a participant dead) *)
  pi_inactivated_at : (int * float) list;
      (** non-voluntary participant inactivations *)
  false_detection : bool;
      (** [p0_detected_at] fired although nothing had crashed *)
  fault_log : (float * Sim.Fault.action) list;
      (** every injected fault event with its firing timestamp, in
          order (includes the legacy [crash]) *)
}

val run : ?on_event:(Monitors.event -> unit) -> config -> result
(** Run one simulation.  Deterministic for a given [seed]; [on_event]
    receives the full protocol/channel trace in time order (sends,
    deliveries, drops, crashes, recoveries, detection, inactivations) —
    attach {!Monitors.feed} to check requirements online. *)

val detection_delay : config -> result -> float option
(** Time from the earliest configured or scheduled crash to p[0]'s
    detection, when both happened. *)
