(** Umbrella module re-exporting the public API of the reproduction.

    - {!Lts} — labelled transition systems
    - {!Mc} — explicit-state model checker
    - {!Proc} — process algebra with data
    - {!Ta} — discrete-time timed automata
    - {!Sim} — discrete-event simulator
    - {!Heartbeat} — the accelerated heartbeat protocols, their formal
      models, requirements and verification drivers
    - {!Fd} — a failure-detector layer (the paper's stated follow-up)
      with Chen-style QoS measurement
    - {!Ltl} — LTL liveness checking with Büchi products, fairness and
      lasso counterexamples *)

module Lts = Lts
module Mc = Mc
module Proc = Proc
module Ta = Ta
module Sim = Sim
module Heartbeat = Heartbeat
module Fd = Fd
module Ltl = Ltl
