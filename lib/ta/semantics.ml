type config = int array
(* Layout: [| loc_0 .. loc_{A-1} ; clock_0 .. clock_{C-1} ; vars ... |] *)

type label = Delay | Act of string

type env = {
  lookup_var : string -> int * int; (* offset, size *)
  lookup_clock : string -> int; (* offset *)
}

type compiled_edge = {
  e_guard : config -> bool;
  e_updates : (config -> unit) list; (* applied in place, in order *)
  e_dst : int;
  e_label : string;
}

type compiled_loc = {
  l_name : string;
  l_kind : Model.loc_kind;
  l_invariant : config -> bool;
  l_tau : compiled_edge list;
  l_send : compiled_edge list array; (* per channel *)
  l_recv : compiled_edge list array;
}

type compiled_auto = {
  a_name : string;
  a_locs : compiled_loc array;
}

type t = {
  autos : compiled_auto array;
  auto_index : (string, int) Hashtbl.t;
  loc_indices : (string, int) Hashtbl.t array; (* per automaton *)
  num_clocks : int;
  clock_offset : int;
  clock_caps : int array;
  env : env;
  chans : Model.chan_decl array;
  init_config : config;
  loc_bounds : int array array array option;
      (* per (automaton, location, clock): the largest constant the
         clock can still meet from there, -1 = never compared; the
         delay step caps each clock at min(declared cap, 1 + max over
         the current location vector) when present *)
}

let fail fmt = Format.kasprintf invalid_arg fmt

(* --- expression compilation --- *)

let rec compile_expr env (e : Expr.t) : config -> int =
  let ce = compile_expr env in
  match e with
  | Expr.Int n -> fun _ -> n
  | Expr.Var name ->
      let off, size = env.lookup_var name in
      if size <> 1 then fail "variable %s is an array, not a scalar" name;
      fun c -> c.(off)
  | Expr.Elem (name, idx) ->
      let off, size = env.lookup_var name in
      let fidx = ce idx in
      fun c ->
        let k = fidx c in
        if k < 0 || k >= size then fail "index %d out of bounds for %s" k name;
        c.(off + k)
  | Expr.Clock name ->
      let off = env.lookup_clock name in
      fun c -> c.(off)
  | Expr.Add (a, b) ->
      let fa = ce a and fb = ce b in
      fun c -> fa c + fb c
  | Expr.Sub (a, b) ->
      let fa = ce a and fb = ce b in
      fun c -> fa c - fb c
  | Expr.Mul (a, b) ->
      let fa = ce a and fb = ce b in
      fun c -> fa c * fb c
  | Expr.Div (a, b) ->
      let fa = ce a and fb = ce b in
      fun c -> fa c / fb c
  | Expr.Min (a, b) ->
      let fa = ce a and fb = ce b in
      fun c -> min (fa c) (fb c)
  | Expr.Max (a, b) ->
      let fa = ce a and fb = ce b in
      fun c -> max (fa c) (fb c)

let rec compile_bexpr env (b : Expr.b) : config -> bool =
  let cb = compile_bexpr env and ce = compile_expr env in
  match b with
  | Expr.True -> fun _ -> true
  | Expr.False -> fun _ -> false
  | Expr.Cmp (cmp, a, b) ->
      let fa = ce a and fb = ce b in
      let op : int -> int -> bool =
        match cmp with
        | Expr.Lt -> ( < )
        | Expr.Le -> ( <= )
        | Expr.Eq -> ( = )
        | Expr.Ge -> ( >= )
        | Expr.Gt -> ( > )
        | Expr.Ne -> ( <> )
      in
      fun c -> op (fa c) (fb c)
  | Expr.Not b ->
      let fb = cb b in
      fun c -> not (fb c)
  | Expr.And (a, b) ->
      let fa = cb a and fb = cb b in
      fun c -> fa c && fb c
  | Expr.Or (a, b) ->
      let fa = cb a and fb = cb b in
      fun c -> fa c || fb c

let compile_update env (u : Model.update) : config -> unit =
  match u with
  | Model.Reset name ->
      let off = env.lookup_clock name in
      fun c -> c.(off) <- 0
  | Model.Assign (Model.Scalar name, e) ->
      let off, size = env.lookup_var name in
      if size <> 1 then fail "assignment to array %s without index" name;
      let fe = compile_expr env e in
      fun c -> c.(off) <- fe c
  | Model.Assign (Model.Element (name, idx), e) ->
      let off, size = env.lookup_var name in
      let fidx = compile_expr env idx in
      let fe = compile_expr env e in
      fun c ->
        let k = fidx c in
        if k < 0 || k >= size then fail "index %d out of bounds for %s" k name;
        c.(off + k) <- fe c

(* --- network compilation --- *)

let compile (net : Model.t) : t =
  let num_autos = List.length net.Model.automata in
  let num_clocks = List.length net.Model.clocks in
  let clock_offset = num_autos in
  let var_offset = num_autos + num_clocks in
  let clock_index = Hashtbl.create 8 in
  let clock_caps = Array.make num_clocks 0 in
  List.iteri
    (fun k (cd : Model.clock_decl) ->
      if Hashtbl.mem clock_index cd.Model.clock_name then
        fail "duplicate clock %s" cd.Model.clock_name;
      Hashtbl.add clock_index cd.Model.clock_name (clock_offset + k);
      clock_caps.(k) <- cd.Model.cap)
    net.Model.clocks;
  let var_layout = Hashtbl.create 8 in
  let var_inits = ref [] in
  let var_cells = ref 0 in
  List.iter
    (fun (vd : Model.var_decl) ->
      if Hashtbl.mem var_layout vd.Model.var_name then
        fail "duplicate variable %s" vd.Model.var_name;
      let size = List.length vd.Model.init in
      if size = 0 then
        fail "variable %s has no initial value" vd.Model.var_name;
      Hashtbl.add var_layout vd.Model.var_name (var_offset + !var_cells, size);
      var_inits := List.rev_append vd.Model.init !var_inits;
      var_cells := !var_cells + size)
    net.Model.vars;
  let var_inits = List.rev !var_inits in
  let chans = Array.of_list net.Model.chans in
  let num_chans = Array.length chans in
  let chan_id = Hashtbl.create 8 in
  Array.iteri
    (fun k (cd : Model.chan_decl) ->
      if Hashtbl.mem chan_id cd.Model.chan_name then
        fail "duplicate channel %s" cd.Model.chan_name;
      Hashtbl.add chan_id cd.Model.chan_name k)
    chans;
  let env =
    {
      lookup_var =
        (fun name ->
          match Hashtbl.find_opt var_layout name with
          | Some x -> x
          | None -> fail "unknown variable %s" name);
      lookup_clock =
        (fun name ->
          match Hashtbl.find_opt clock_index name with
          | Some x -> x
          | None -> fail "unknown clock %s" name);
    }
  in
  let auto_index = Hashtbl.create 8 in
  List.iteri
    (fun i (a : Model.automaton) ->
      if Hashtbl.mem auto_index a.Model.auto_name then
        fail "duplicate automaton %s" a.Model.auto_name;
      Hashtbl.add auto_index a.Model.auto_name i)
    net.Model.automata;
  let loc_indices = Array.make num_autos (Hashtbl.create 0) in
  let compile_auto i (a : Model.automaton) : compiled_auto =
    let loc_index = Hashtbl.create 8 in
    List.iteri
      (fun k (l : Model.location) ->
        if Hashtbl.mem loc_index l.Model.loc_name then
          fail "duplicate location %s in %s" l.Model.loc_name a.Model.auto_name;
        Hashtbl.add loc_index l.Model.loc_name k)
      a.Model.locations;
    loc_indices.(i) <- loc_index;
    let find_loc name =
      match Hashtbl.find_opt loc_index name with
      | Some k -> k
      | None -> fail "unknown location %s in %s" name a.Model.auto_name
    in
    let find_chan name =
      match Hashtbl.find_opt chan_id name with
      | Some k -> k
      | None -> fail "unknown channel %s" name
    in
    let locs =
      Array.of_list
        (List.map
           (fun (l : Model.location) ->
             {
               l_name = l.Model.loc_name;
               l_kind = l.Model.kind;
               l_invariant = compile_bexpr env l.Model.invariant;
               l_tau = [];
               l_send = Array.make num_chans [];
               l_recv = Array.make num_chans [];
             })
           a.Model.locations)
    in
    (* Re-allocate the per-location arrays so they are not shared. *)
    Array.iteri
      (fun k l ->
        locs.(k) <-
          { l with l_send = Array.make num_chans []; l_recv = Array.make num_chans [] })
      locs;
    List.iter
      (fun (e : Model.edge) ->
        let src = find_loc e.Model.src in
        let default_label =
          match e.Model.sync with
          | Model.Tau -> "tau"
          | Model.Send ch -> ch ^ "!"
          | Model.Recv ch -> ch ^ "?"
        in
        let ce =
          {
            e_guard = compile_bexpr env e.Model.guard;
            e_updates = List.map (compile_update env) e.Model.updates;
            e_dst = find_loc e.Model.dst;
            e_label = Option.value e.Model.act ~default:default_label;
          }
        in
        let l = locs.(src) in
        match e.Model.sync with
        | Model.Tau -> locs.(src) <- { l with l_tau = l.l_tau @ [ ce ] }
        | Model.Send ch ->
            let k = find_chan ch in
            l.l_send.(k) <- l.l_send.(k) @ [ ce ]
        | Model.Recv ch ->
            let k = find_chan ch in
            l.l_recv.(k) <- l.l_recv.(k) @ [ ce ])
      a.Model.edges;
    { a_name = a.Model.auto_name; a_locs = locs }
  in
  let autos =
    Array.of_list (List.mapi compile_auto net.Model.automata)
  in
  let init_config =
    Array.of_list
      (List.map
         (fun (a : Model.automaton) ->
           match Hashtbl.find_opt loc_indices.(Hashtbl.find auto_index a.Model.auto_name) a.Model.init_loc with
           | Some k -> k
           | None ->
               fail "unknown initial location %s in %s" a.Model.init_loc
                 a.Model.auto_name)
         net.Model.automata
      @ List.init num_clocks (fun _ -> 0)
      @ var_inits)
  in
  let t =
    {
      autos;
      auto_index;
      loc_indices;
      num_clocks;
      clock_offset;
      clock_caps;
      env;
      chans;
      init_config;
      loc_bounds = None;
    }
  in
  (* Reject models whose initial configuration violates an invariant. *)
  Array.iteri
    (fun i a ->
      let l = a.a_locs.(init_config.(i)) in
      if not (l.l_invariant init_config) then
        fail "initial invariant of %s violated" a.a_name)
    autos;
  t

(* --- successor relation --- *)

let invariants_ok t (c : config) =
  let ok = ref true in
  let i = ref 0 in
  let n = Array.length t.autos in
  while !ok && !i < n do
    let a = t.autos.(!i) in
    if not (a.a_locs.(c.(!i)).l_invariant c) then ok := false;
    incr i
  done;
  !ok

let current_loc t c i = t.autos.(i).a_locs.(c.(i))

let committed_present t c =
  let n = Array.length t.autos in
  let rec go i =
    i < n
    && ((current_loc t c i).l_kind = Model.Committed || go (i + 1))
  in
  go 0

let urgent_or_committed_present t c =
  let n = Array.length t.autos in
  let rec go i =
    if i >= n then false
    else
      match (current_loc t c i).l_kind with
      | Model.Urgent | Model.Committed -> true
      | Model.Normal -> go (i + 1)
  in
  go 0

let apply_edge c (e : compiled_edge) i =
  c.(i) <- e.e_dst;
  List.iter (fun u -> u c) e.e_updates

let successors t (c : config) : (label * config) list =
  let acc = ref [] in
  let committed = committed_present t c in
  let n = Array.length t.autos in
  let allowed i = (not committed) || (current_loc t c i).l_kind = Model.Committed in
  (* internal edges *)
  for i = 0 to n - 1 do
    if allowed i then
      List.iter
        (fun e ->
          if e.e_guard c then begin
            let c' = Array.copy c in
            apply_edge c' e i;
            if invariants_ok t c' then acc := (Act e.e_label, c') :: !acc
          end)
        (current_loc t c i).l_tau
  done;
  (* synchronisations *)
  Array.iteri
    (fun ch (cd : Model.chan_decl) ->
      if not cd.Model.broadcast then begin
        (* binary handshake: sender i, receiver j, i <> j *)
        for i = 0 to n - 1 do
          List.iter
            (fun es ->
              if es.e_guard c then
                for j = 0 to n - 1 do
                  if j <> i && ((not committed) || allowed i || allowed j)
                  then
                    List.iter
                      (fun er ->
                        if er.e_guard c then begin
                          let c' = Array.copy c in
                          apply_edge c' es i;
                          apply_edge c' er j;
                          if invariants_ok t c' then
                            acc := (Act es.e_label, c') :: !acc
                        end)
                      (current_loc t c j).l_recv.(ch)
                done)
            (current_loc t c i).l_send.(ch)
        done
      end
      else
        (* broadcast: one sender, every automaton with an enabled receiving
           edge participates; enumerate the choice of receiving edge per
           participant. *)
        for i = 0 to n - 1 do
          List.iter
            (fun es ->
              if es.e_guard c then begin
                let receivers =
                  List.init n (fun j ->
                      if j = i then (j, [])
                      else
                        ( j,
                          List.filter (fun e -> e.e_guard c)
                            (current_loc t c j).l_recv.(ch) ))
                in
                let participating =
                  List.filter (fun (_, es) -> es <> []) receivers
                in
                let committed_ok =
                  (not committed) || allowed i
                  || List.exists (fun (j, _) -> allowed j) participating
                in
                if committed_ok then begin
                  (* cartesian product over each participant's choices *)
                  let rec expand chosen = function
                    | [] ->
                        let c' = Array.copy c in
                        apply_edge c' es i;
                        List.iter
                          (fun (j, e) -> apply_edge c' e j)
                          (List.rev chosen);
                        if invariants_ok t c' then
                          acc := (Act es.e_label, c') :: !acc
                    | (j, choices) :: rest ->
                        List.iter
                          (fun e -> expand ((j, e) :: chosen) rest)
                          choices
                  in
                  expand [] participating
                end
              end)
            (current_loc t c i).l_send.(ch)
        done)
    t.chans;
  (* unit delay *)
  if not (urgent_or_committed_present t c) then begin
    let c' = Array.copy c in
    (match t.loc_bounds with
    | None ->
        for k = 0 to t.num_clocks - 1 do
          let off = t.clock_offset + k in
          if c'.(off) < t.clock_caps.(k) then c'.(off) <- c'.(off) + 1
        done
    | Some tbl ->
        (* values beyond 1 + the largest constant still meetable from
           the current location vector are indistinguishable: clamp
           there instead of at the declared cap (possibly downward,
           when a move shrank the bound since the last delay) *)
        for k = 0 to t.num_clocks - 1 do
          let b = ref (-1) in
          for i = 0 to n - 1 do
            let v = tbl.(i).(c.(i)).(k) in
            if v > !b then b := v
          done;
          let cap = min t.clock_caps.(k) (!b + 1) in
          let off = t.clock_offset + k in
          c'.(off) <- min (c'.(off) + 1) cap
        done);
    if invariants_ok t c' then acc := (Delay, c') :: !acc
  end;
  List.rev !acc

(* --- observations --- *)

let initial t = Array.copy t.init_config

let find_auto t name =
  match Hashtbl.find_opt t.auto_index name with
  | Some i -> i
  | None -> fail "unknown automaton %s" name

let loc_is t ~auto ~loc =
  let i = find_auto t auto in
  let k =
    match Hashtbl.find_opt t.loc_indices.(i) loc with
    | Some k -> k
    | None -> fail "unknown location %s in %s" loc auto
  in
  fun (c : config) -> c.(i) = k

let var t name =
  let off, size = t.env.lookup_var name in
  if size <> 1 then fail "variable %s is an array" name;
  fun (c : config) -> c.(off)

let elem t name k =
  let off, size = t.env.lookup_var name in
  if k < 0 || k >= size then fail "index %d out of bounds for %s" k name;
  fun (c : config) -> c.(off + k)

let clock t name =
  let off = t.env.lookup_clock name in
  fun (c : config) -> c.(off)

(* --- zone-engine support ------------------------------------------------ *)

let of_cells (c : int array) : config = c
let cells (c : config) : int array = c
let num_automata t = Array.length t.autos
let num_clocks t = t.num_clocks
let clock_offset t = t.clock_offset
let clock_caps t = t.clock_caps
let lookup_var t name = t.env.lookup_var name
let lookup_clock t name = t.env.lookup_clock name

(* Per-location clock capping: delay saturates each clock at
   min(declared cap, 1 + the largest constant it can still meet from
   the current location vector).  Sound for location/variable
   observations because the location bounds are backward-closed (every
   comparison, invariant and read reachable before the next reset is
   below the bound) and reads pin the bound to the declared cap, so
   all values at or above the effective cap are bisimilar.  Clock
   observations in caller predicates see the capped values — callers
   that read clocks directly must stay on the declared-cap semantics. *)
let with_loc_caps t (table : int array array array) =
  if Array.length table <> Array.length t.autos then
    fail "with_loc_caps: expected %d automata tables, got %d"
      (Array.length t.autos) (Array.length table);
  Array.iteri
    (fun i (a : compiled_auto) ->
      if Array.length table.(i) <> Array.length a.a_locs then
        fail "with_loc_caps: %s has %d locations, table has %d" a.a_name
          (Array.length a.a_locs)
          (Array.length table.(i));
      Array.iter
        (fun row ->
          if Array.length row <> t.num_clocks then
            fail "with_loc_caps: clock row length %d, expected %d"
              (Array.length row) t.num_clocks)
        table.(i))
    t.autos;
  { t with loc_bounds = Some table }

let loc_index t ~auto name =
  match Hashtbl.find_opt t.loc_indices.(auto) name with
  | Some k -> k
  | None -> fail "unknown location %s in %s" name t.autos.(auto).a_name

let loc_name_at t i k = t.autos.(i).a_locs.(k).l_name
let loc_kind_at t i k = t.autos.(i).a_locs.(k).l_kind
let auto_name_at t i = t.autos.(i).a_name
let compile_expr_fn t e = compile_expr t.env e
let compile_bexpr_fn t b = compile_bexpr t.env b

(* Clock-activity projection support: given, per automaton and per
   location, the clocks proven inactive there (every path to the next
   read passes a reset first), build a closure that zeroes those clock
   cells.  States differing only in inactive clocks collapse to one
   representative; since nothing reads an inactive clock before
   resetting it, the projection is a label-preserving bisimulation. *)
let canonicalizer t ~inactive =
  let n = Array.length t.autos in
  let table =
    Array.init n (fun i -> Array.make (Array.length t.autos.(i).a_locs) [||])
  in
  List.iter
    (fun (auto, locs) ->
      let i = find_auto t auto in
      List.iter
        (fun (loc, clocks) ->
          let k =
            match Hashtbl.find_opt t.loc_indices.(i) loc with
            | Some k -> k
            | None -> fail "unknown location %s in %s" loc auto
          in
          table.(i).(k) <-
            Array.of_list (List.map t.env.lookup_clock clocks))
        locs)
    inactive;
  fun (c : config) ->
    let c' = ref c in
    for i = 0 to n - 1 do
      Array.iter
        (fun off ->
          if !c'.(off) <> 0 then begin
            if !c' == c then c' := Array.copy c;
            !c'.(off) <- 0
          end)
        table.(i).(c.(i))
    done;
    !c'

let pp_label ppf = function
  | Delay -> Format.pp_print_string ppf "tick"
  | Act name -> Format.pp_print_string ppf name

let pp_config t ppf (c : config) =
  let n = Array.length t.autos in
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i a -> Format.fprintf ppf "%s:%s " a.a_name a.a_locs.(c.(i)).l_name)
    t.autos;
  for k = 0 to t.num_clocks - 1 do
    Format.fprintf ppf "c%d=%d " k c.(t.clock_offset + k)
  done;
  for off = t.clock_offset + t.num_clocks to Array.length c - 1 do
    Format.fprintf ppf "v%d=%d " (off - t.clock_offset - t.num_clocks) c.(off)
  done;
  ignore n;
  Format.fprintf ppf "@]"

let hash_config (c : config) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length c - 1 do
    h := (!h lxor c.(i)) * 0x01000193 land max_int
  done;
  !h

let equal_config (a : config) (b : config) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let system (t : t) : (config, label) Mc.System.t =
  (module struct
    type state = config
    type nonrec label = label

    let initial = initial t
    let successors = successors t
    let equal_state = equal_config
    let hash_state = hash_config
    let pp_state = pp_config t
    let pp_label = pp_label
  end)
