(** Export of timed-automata networks to UPPAAL's textual [.xta] format.

    Lets a downstream user load the models built here into the real
    UPPAAL tool (the one the paper used).  The discrete-time semantics of
    {!Semantics} and UPPAAL's dense-time semantics agree on location
    reachability for these models because all constraints are closed, so
    the exported model checks the same properties.

    Notes on the mapping: clocks and variables become global
    declarations; [Min]/[Max] expressions use UPPAAL's [<?] / [>?]
    operators; clock caps are a state-space device of our checker and do
    not appear in the export. *)

val pp : Format.formatter -> Model.t -> unit
(** Print the network as a self-contained [.xta] document (declarations,
    one [process] per automaton, and the [system] line). *)

val to_string : Model.t -> string

(** {1 Parsing}

    A recursive-descent parser for the same fragment the printer
    emits, plus UPPAAL extensions the shipped heartbeat models never
    need but the Fontana-Cleaveland benchmark suite does: strict clock
    comparisons ([<] / [>]), [urgent] / [commit] location lists, and
    [broadcast chan] declarations all round-trip.

    Clock caps are not part of the [.xta] surface syntax (they are a
    state-space device of the discrete checker), so the parser infers
    them: every clock gets [cap = m + 2] where [m] is the largest
    integer literal in the document — large enough to exceed every
    constant any clock is compared against, which is what saturation
    soundness requires. *)

exception Parse_error of string
(** Raised with a [line N: reason] message on malformed input. *)

val parse : string -> Model.t
(** [parse s] reads an [.xta] document.  Guarantees
    [to_string (parse (to_string m)) = to_string m] for every model
    the printer accepts.  @raise Parse_error on syntax errors. *)
