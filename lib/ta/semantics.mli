(** Discrete-time operational semantics of timed-automata networks.

    Time is modelled by explicit unit-delay steps ({!Delay} labels): all
    clocks advance by one together, and a delay is enabled only when no
    urgent or committed location is occupied and every location invariant
    still holds afterwards.  Clock values saturate at their declared cap,
    which keeps the state space finite; the saturation is sound as long as
    each cap exceeds every constant its clock is compared against.  For the
    closed (non-strict) constraints used by the paper's models, this
    digitised semantics reaches the same locations as UPPAAL's dense-time
    semantics.

    Action steps follow UPPAAL's rules: internal edges, binary handshake
    (sender updates applied before receiver updates), broadcast (all
    enabled receivers participate), and committed-location priority. *)

type config
(** A network configuration: locations, clock values and variable values. *)

type label = Delay | Act of string

type t
(** A compiled network: name resolution and guard/update compilation are
    done once, up front. *)

val compile : Model.t -> t
(** Compile a network.
    @raise Invalid_argument on unknown names, duplicate declarations, or an
    initial configuration violating an invariant. *)

val system : t -> (config, label) Mc.System.t
(** Package the compiled network for the explorer. *)

val initial : t -> config

val successors : t -> config -> (label * config) list

(** {2 Observations on configurations} (for state predicates) *)

val loc_is : t -> auto:string -> loc:string -> config -> bool
(** Is the given automaton in the given location? *)

val var : t -> string -> config -> int
val elem : t -> string -> int -> config -> int
val clock : t -> string -> config -> int

(** {2 Zone-engine support}

    The symbolic zone engine ({!Zone.Sym} in the [zone] library) reuses
    the discrete configuration layout for the discrete part of its
    states — locations and variables, with every clock cell zeroed — so
    that state predicates built from {!loc_is} / {!var} / {!elem} apply
    unchanged to symbolic states.  These accessors expose the layout
    and the compiled evaluators it needs; [of_cells] / [cells] convert
    (for free — a configuration {e is} its cell array) between the two
    views. *)

val of_cells : int array -> config
val cells : config -> int array

val num_automata : t -> int
val num_clocks : t -> int

val clock_offset : t -> int
(** Clock cells occupy [clock_offset t .. clock_offset t + num_clocks t - 1]. *)

val clock_caps : t -> int array
(** Saturation cap per clock, in declaration order (shared, do not
    mutate). *)

val lookup_var : t -> string -> int * int
(** Cell offset and size of a variable.  @raise Invalid_argument on
    unknown names. *)

val lookup_clock : t -> string -> int
(** Cell offset of a clock.  @raise Invalid_argument on unknown names. *)

val loc_index : t -> auto:int -> string -> int
val loc_name_at : t -> int -> int -> string
val loc_kind_at : t -> int -> int -> Model.loc_kind
val auto_name_at : t -> int -> string

val compile_expr_fn : t -> Expr.t -> config -> int
val compile_bexpr_fn : t -> Expr.b -> config -> bool
(** Compile an expression against this network's layout (the same
    compilation the successor relation uses).  A clock read evaluates
    the clock {e cell} — callers that zero clock cells must only pass
    clock-free expressions. *)

val with_loc_caps : t -> int array array array -> t
(** [with_loc_caps t table] switches the delay step to per-location
    clock capping: each clock saturates at [min (declared cap)
    (1 + max over the current location vector of
    table.(auto).(location).(clock))], clamping downward when a move
    shrank the bound ([-1] entries pin the clock at 0).  [table] must
    give backward-closed location bounds (every constant the clock can
    still be compared against, every invariant constant, and the
    declared cap at locations where an update reads it —
    {!Lubounds.caps_for} produces exactly this), which makes the
    capped semantics bisimilar to the declared-cap semantics for
    location and variable observations.  Predicates reading clocks
    via {!clock} observe the capped values.
    @raise Invalid_argument when the table shape does not match the
    network. *)

val canonicalizer :
  t -> inactive:(string * (string * string list) list) list -> config -> config
(** [canonicalizer t ~inactive] builds a projection that zeroes, for each
    automaton currently at a listed location, the clocks declared inactive
    there ([inactive] is per automaton, per location, a list of clock
    names).  Used by the slicer's clock-activity reduction: states that
    differ only in inactive clocks collapse to one representative.
    @raise Invalid_argument on unknown automaton/location/clock names. *)

val pp_config : t -> Format.formatter -> config -> unit
val pp_label : Format.formatter -> label -> unit
