(* Ample-set partial-order reduction driven by a static dependence
   analysis of the spec.

   The ample set at a state is chosen per "communication-closed group":
   starting from a seed component, close under "some member currently
   offers a communication half whose partner another component could
   still offer from its *current* configuration" (the syntactic
   derivative closure: prefix names of the component's term plus every
   definition reachable from its calls — an over-approximation of all
   future offers that only shrinks as the component moves).  Members of
   the group are then frozen with respect to the rest of the system —
   no transition outside the group can change a member or enable a new
   interaction with one, because any outsider that could ever grow a
   matching offer would have been pulled into the group — so the
   group's internal enabled transitions form a valid ample set
   provided:

   - T. some member currently refuses [tick], which keeps the global
     clock step (a transition of *every* component) disabled until an
     ample transition fires;
   - C0. the set is nonempty;
   - C2. every ample label is invisible for the property alphabet;
   - C3. every cycle of the reduced graph contains a fully expanded
     state.  Tick is never in an ample set, so cycles through a tick
     edge get this for free; tick-free cycles either don't exist
     (statically proven zeno-freedom, the common case for the shipped
     models) or are caught by a runtime discovery-order proviso.

   Every component is tried as a seed and the smallest valid ample set
   wins; if no seed yields one, the state is fully expanded via
   [Proc.Semantics.successors_from], so the reduced relation is always
   a sub-structure of the full one.  See DESIGN.md ("Partial-order
   reduction") for the soundness argument. *)

module Sem = Proc.Semantics
module T = Proc.Term
module SSet = Lint_pa.SSet
module SMap = Lint_pa.SMap
module I = Lint_interval
module R = Lint_report

type analysis = {
  compiled : Sem.compiled;
  defs : (string, T.def) Hashtbl.t;
  names : string array;
  alphabets : SSet.t array;
  offerer_tbl : (string, int list) Hashtbl.t;
  zeno_suspects : int list;
      (* components the static zeno-freedom pruning could not discharge;
         empty = every global cycle provably performs a tick *)
}

let has_cycle (edges : (string * string * string list) list) : bool =
  let adj = Hashtbl.create 16 in
  List.iter (fun (src, dst, _) -> Hashtbl.add adj src dst) edges;
  let color = Hashtbl.create 16 in
  let rec visit v =
    match Hashtbl.find_opt color v with
    | Some `Open -> true
    | Some `Done -> false
    | None ->
        Hashtbl.replace color v `Open;
        let cyc = List.exists visit (Hashtbl.find_all adj v) in
        Hashtbl.replace color v `Done;
        cyc
  in
  List.exists (fun (src, _, _) -> visit src) edges

(* Static zeno-freedom: no reachable cycle of the full system consists of
   non-tick transitions only.  On such a cycle every moving component
   traverses a closed walk of its own definition graph made of tick-free
   call edges, so (a) every definition on the walk is *entered* by a
   tick-free call on the walk — its parameters take only values flowing
   around the walk, never the tick-loop values — and (b) every
   communication half fired on the walk pairs with a partner action that
   lies on some other component's walk, i.e. on a *cyclic* feasible edge
   of that component.

   Both facts are exploited by a downward iteration from ⊤ over
   [Lint_pa]'s interval domain: per definition an entry environment
   joined over the currently-feasible tick-free call sites (so the
   paper's timer loops, re-armed with counter 0 and exited only under
   [c == lim], lose their exit edge: the guard is statically false on
   every tick-free entry); per component the set of action names
   occurring on feasible edges that lie on a cycle (so a partner offer
   that exists only on an acyclic or guard-dead path supports nobody).
   Each round is a sound over-approximation of the true walks, so the
   iteration can stop at any point.  A component whose final feasible
   edge graph is acyclic cannot move on a tick-free cycle; if that holds
   for all of them, every global cycle performs a tick.  Conservative: a
   [false] answer only costs the runtime cycle proviso. *)

type zedge = { zsrc : string; zdst : string; zacts : string list }

let zeno_rounds = 30

let compute_zeno_suspects compiled (spec : Proc.Spec.t) defs
    (alphabets : SSet.t array) =
  let comps = Array.of_list spec.Proc.Spec.init in
  let n = Array.length comps in
  let reach =
    Array.map
      (fun ((root, _) : string * Proc.Value.t list) ->
        Lint_pa.reachable_from defs [ root ])
      comps
  in
  (* Entry environments per (component, definition); absence means "no
     feasible tick-free entry".  The empty map is ⊤: [Lint_pa.lookup]
     defaults unbound parameters to the full interval. *)
  let envs : Lint_pa.env SMap.t array =
    Array.map
      (fun r ->
        SSet.fold (fun d acc -> SMap.add d (SMap.empty : Lint_pa.env) acc) r SMap.empty)
      reach
  in
  let offers = Array.copy alphabets in
  let edges : zedge list array = Array.make (max n 1) [] in
  let feasible i nm =
    if nm = Proc.Spec.tick_name then false
    else
      match Sem.comm_partners compiled nm with
      | [] -> Sem.is_visible compiled nm || Sem.is_hidden compiled nm
      | partners ->
          List.exists
            (fun ((partner, result) : string * string) ->
              (Sem.is_visible compiled result || Sem.is_hidden compiled result)
              &&
              let ok = ref false in
              for j = 0 to n - 1 do
                if j <> i && SSet.mem partner offers.(j) then ok := true
              done;
              !ok)
            partners
  in
  (* Walk a definition body under its entry environment, pruning
     branches whose guards are statically decided, binding sum
     variables, and cutting paths at infeasible or tick prefixes. *)
  let walk i (d : T.def) (env0 : Lint_pa.env) ~on_edge =
    let rec go env acts (t : T.t) =
      match t with
      | T.Nil -> ()
      | T.Prefix (a, p) ->
          let nm = a.T.act_name in
          if nm <> Proc.Spec.tick_name && feasible i nm then go env (nm :: acts) p
      | T.Choice ps -> List.iter (go env acts) ps
      | T.Sum (x, lo, hi, p) ->
          if lo <= hi then
            go (SMap.add x (Lint_pa.Num (I.of_bounds lo hi)) env) acts p
      | T.Cond (c, p, q) -> (
          match Lint_pa.bool_eval env c with
          | Some true -> branch env c true acts p
          | Some false -> branch env c false acts q
          | None ->
              branch env c true acts p;
              branch env c false acts q)
      | T.Call (name, args) -> on_edge ~env ~acts:(List.rev acts) name args
    and branch env c truth acts t =
      match Lint_pa.refine env c truth with
      | Some env' -> go env' acts t
      | None -> () (* assumption contradictory: branch unreachable *)
    in
    go env0 [] d.T.body
  in
  let join_env params a b =
    List.fold_left
      (fun acc p ->
        let get m =
          match SMap.find_opt p m with Some v -> v | None -> Lint_pa.Num I.top
        in
        SMap.add p (Lint_pa.join_aval (get a) (get b)) acc)
      SMap.empty params
  in
  (* Action names on feasible edges that lie on a cycle (src and dst in
     the same strongly-connected component). *)
  let cyclic_offers es =
    let adj = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.add adj e.zsrc e.zdst) es;
    let on_cycle e =
      (* does zdst reach zsrc? *)
      let seen = Hashtbl.create 16 in
      let rec go v =
        v = e.zsrc
        || (not (Hashtbl.mem seen v))
           && begin
                Hashtbl.add seen v ();
                List.exists go (Hashtbl.find_all adj v)
              end
      in
      go e.zdst
    in
    List.fold_left
      (fun acc e ->
        if on_cycle e then
          List.fold_left (fun acc a -> SSet.add a acc) acc e.zacts
        else acc)
      SSet.empty es
  in
  for _round = 1 to zeno_rounds do
    let new_envs = Array.make (max n 1) (SMap.empty : Lint_pa.env SMap.t) in
    for i = 0 to n - 1 do
      let es = ref [] in
      SMap.iter
        (fun dname env ->
          match Hashtbl.find_opt defs dname with
          | None -> ()
          | Some (d : T.def) ->
              walk i d env ~on_edge:(fun ~env ~acts callee args ->
                  es := { zsrc = dname; zdst = callee; zacts = acts } :: !es;
                  match Hashtbl.find_opt defs callee with
                  | Some (cd : T.def)
                    when List.length cd.T.params = List.length args ->
                      let entry =
                        List.fold_left2
                          (fun acc p a -> SMap.add p (Lint_pa.eval env a) acc)
                          SMap.empty cd.T.params args
                      in
                      new_envs.(i) <-
                        SMap.update callee
                          (function
                            | None -> Some entry
                            | Some prev -> Some (join_env cd.T.params prev entry))
                          new_envs.(i)
                  | Some _ | None -> ()))
        envs.(i);
      edges.(i) <- !es
    done;
    for i = 0 to n - 1 do
      envs.(i) <- new_envs.(i);
      offers.(i) <- cyclic_offers edges.(i)
    done
  done;
  let suspects = ref [] in
  for i = n - 1 downto 0 do
    if has_cycle (List.map (fun e -> (e.zsrc, e.zdst, e.zacts)) edges.(i)) then
      suspects := i :: !suspects
  done;
  !suspects

let analyze spec =
  let compiled = Sem.compile spec in
  let defs = Lint_pa.def_table spec in
  let comps = Array.of_list spec.Proc.Spec.init in
  let names = Array.map (fun ((name, _) : string * Proc.Value.t list) -> name) comps in
  let alphabets =
    Array.map
      (fun (root, _) -> Lint_pa.offered_by defs (Lint_pa.reachable_from defs [ root ]))
      comps
  in
  let offerer_tbl = Hashtbl.create 64 in
  Array.iteri
    (fun i alpha ->
      SSet.iter
        (fun a ->
          let prev = Option.value (Hashtbl.find_opt offerer_tbl a) ~default:[] in
          Hashtbl.replace offerer_tbl a (i :: prev))
        alpha)
    alphabets;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) offerer_tbl;
  let zeno_suspects = compute_zeno_suspects compiled spec defs alphabets in
  { compiled; defs; names; alphabets; offerer_tbl; zeno_suspects }

(* The analysis is a pure function of the spec term, so verification
   sweeps that revisit the same spec (table cells, smoke matrices) can
   share one result.  See [Lint_memo] for the cache discipline. *)
let memo : (Proc.Spec.t, analysis) Lint_memo.t = Lint_memo.create ()
let analyze_cached spec = Lint_memo.find memo spec analyze
let cache_stats () = Lint_memo.stats memo

let zeno_free a = a.zeno_suspects = []
let zeno_suspects a = a.zeno_suspects

let compiled a = a.compiled
let component_names a = a.names
let component_alphabet a i = SSet.elements a.alphabets.(i)
let offerers a name = Option.value (Hashtbl.find_opt a.offerer_tbl name) ~default:[]

type stats = {
  mutable states : int;
  mutable ample_states : int;
  mutable no_refuser : int;
  mutable proviso_blocked : int;
  mutable visible_blocked : int;
  mutable cross_domain_blocked : int;
}

module H = Hashtbl.Make (struct
  type t = Sem.state

  let equal = Sem.equal_state
  let hash = Sem.hash_state
end)

module TH = Hashtbl.Make (struct
  type t = T.t

  let equal = ( = )
  let hash t = Hashtbl.hash_param 128 256 t
end)

let nstripes = 64

let reduced_successors ?(par = false) (a : analysis) ~alphabet :
    (Sem.state -> (Sem.label * Sem.state) list) * stats =
  let c = a.compiled in
  let prop = SSet.of_list alphabet in
  let visible_prop l = SSet.mem (Sem.label_name l) prop in
  let stats =
    {
      states = 0;
      ample_states = 0;
      no_refuser = 0;
      proviso_blocked = 0;
      visible_blocked = 0;
      cross_domain_blocked = 0;
    }
  in
  (* Every stripe-lock critical section below runs under [Fun.protect]:
     the hashed operations inside call [Sem.hash_state]/[Sem.equal_state],
     and a raise there with a lock still held would deadlock every other
     domain on that stripe (the work-stealing engine survives raising
     user code precisely because no lock is orphaned). *)
  let locked m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  let smu = Mutex.create () in
  let with_stats f = if par then locked smu f else f () in
  (* Discovery indices for the cycle proviso: every state this system
     has handed out or been asked about gets a sequence number when
     first seen.  An ample transition into a state discovered no later
     than the current one is a potential cycle-closing back edge and
     forces full expansion; edges to later-discovered states (the
     common diamond-convergence case) are harmless.  Soundness needs no
     assumption on the caller's exploration order beyond it being
     sequential: on any all-reduced cycle, the state with the minimal
     discovery index was noted before its cycle predecessor was, so the
     predecessor's expansion saw the back edge and cannot have chosen
     that ample set.  Memoization makes the reduced relation a function
     of the state despite the stateful proviso. *)
  let seen : int H.t = H.create 4096 in
  let next_disc = ref 0 in
  let memo : (Sem.label * Sem.state) list H.t = H.create 4096 in
  (* Parallel ([par = true]) variants of [seen]/[memo]: lock-striped
     tables safe to drive from several domains at once, e.g. from the
     work-stealing explorer.  The sequential soundness argument above
     survives any interleaving because the discovery counter is fetched
     {e inside} the owning stripe's lock: the in-lock fetches are
     totally ordered, so a [None] answer read under the lock implies the
     state's eventual stamp strictly exceeds every stamp already handed
     out — in particular the reader's own [disc].  On an all-reduced
     cycle in the final (memoized, winner-takes-all) relation, the
     minimal-stamp state therefore cannot have been invisible to its
     cycle predecessor's winning expansion, which must have seen the
     back edge and fully expanded.  Each stamp also records the domain
     that minted it; a back edge whose stamp was minted by another
     domain is counted in [cross_domain_blocked] — the full expansion it
     forces is the conservative fallback on cross-domain edges. *)
  let locks = Array.init (if par then nstripes else 0) (fun _ -> Mutex.create ()) in
  let seen_p : (int * int) H.t array =
    Array.init (if par then nstripes else 0) (fun _ -> H.create 64)
  in
  let memo_p : (Sem.label * Sem.state) list H.t array =
    Array.init (if par then nstripes else 0) (fun _ -> H.create 64)
  in
  let next_disc_p = Atomic.make 0 in
  let stripe s = Sem.hash_state s land max_int land (nstripes - 1) in
  (* Future offers of a configuration: every action name it could ever
     offer again, over-approximated syntactically — the prefix names of
     its own term plus those of every definition reachable from its
     calls.  Action names are static strings, so this set is exact up
     to data; and every derivative's set is a subset of its source's,
     which is what makes it usable for freezing: a component whose
     future offers exclude [partner] can move freely without ever
     enabling that handshake.  Memoized per term (environments don't
     affect names). *)
  let future_cache : SSet.t TH.t = TH.create 256 in
  let fmu = Mutex.create () in
  let future_offers comp =
    let t = Sem.component_term comp in
    let cached =
      if par then locked fmu (fun () -> TH.find_opt future_cache t)
      else TH.find_opt future_cache t
    in
    match cached with
    | Some set -> set
    | None ->
        let roots = SSet.elements (Lint_pa.callees SSet.empty t) in
        let set =
          SSet.union
            (Lint_pa.offered SSet.empty t)
            (Lint_pa.offered_by a.defs (Lint_pa.reachable_from a.defs roots))
        in
        let install () =
          if not (TH.mem future_cache t) then TH.add future_cache t set
        in
        if par then locked fmu install else install ();
        set
  in
  let note s =
    if par then
      let k = stripe s in
      locked locks.(k) (fun () ->
          match H.find_opt seen_p.(k) s with
          | Some _ -> ()
          | None ->
              (* counter fetched inside the stripe lock — see the
                 soundness comment at [seen_p] *)
              let d = Atomic.fetch_and_add next_disc_p 1 in
              H.add seen_p.(k) s (d, (Domain.self () :> int)))
    else if not (H.mem seen s) then begin
      H.add seen s !next_disc;
      incr next_disc
    end
  in
  (* Stamp and minting domain of a noted state; [None] means "discovered
     strictly later than any stamp already read" (see [seen_p]). *)
  let disc_of s =
    if par then
      let k = stripe s in
      locked locks.(k) (fun () -> H.find_opt seen_p.(k) s)
    else Option.map (fun d -> (d, 0)) (H.find_opt seen s)
  in
  let expand (s : Sem.state) ~disc ~mydom : (Sem.label * Sem.state) list =
    let n = Array.length s in
    let locals = Array.map (Sem.component_steps c) s in
    let future = Array.map future_offers s in
    let offers_tick steps =
      List.exists (fun ((nm, _, _) : string * Proc.Value.t list * _) -> nm = Proc.Spec.tick_name) steps
    in
    (* Least communication-closed group containing [seed]. *)
    let group seed =
      let in_g = Array.make n false in
      in_g.(seed) <- true;
      let stack = ref [ seed ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | m :: rest ->
            stack := rest;
            List.iter
              (fun ((nm, _, _) : string * Proc.Value.t list * _) ->
                List.iter
                  (fun ((partner, _result) : string * string) ->
                    for j = 0 to n - 1 do
                      if (not in_g.(j)) && SSet.mem partner future.(j) then begin
                        in_g.(j) <- true;
                        stack := j :: !stack
                      end
                    done)
                  (Sem.comm_partners c nm))
              locals.(m)
      done;
      in_g
    in
    (* Enabled transitions internal to the group, mirroring the order of
       [Sem.successors_from] (locals in component order, then
       communications for i < j); [None] if some label is visible. *)
    let internal in_g =
      let acc = ref [] in
      let ok = ref true in
      let emit label s' =
        if visible_prop label then ok := false else acc := (label, s') :: !acc
      in
      let set1 i comp' =
        let s' = Array.copy s in
        s'.(i) <- comp';
        s'
      in
      let set2 i ci j cj =
        let s' = Array.copy s in
        s'.(i) <- ci;
        s'.(j) <- cj;
        s'
      in
      Array.iteri
        (fun i steps ->
          if in_g.(i) && !ok then
            List.iter
              (fun (name, args, comp') ->
                if name <> Proc.Spec.tick_name && not (Sem.is_comm c name) then begin
                  if Sem.is_hidden c name then emit Sem.tau (set1 i comp')
                  else if Sem.is_visible c name then emit (Sem.Act (name, args)) (set1 i comp')
                end)
              steps)
        locals;
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if in_g.(i) && in_g.(j) && !ok then
            List.iter
              (fun (name_i, args_i, ci) ->
                List.iter
                  (fun ((partner, result) : string * string) ->
                    List.iter
                      (fun (name_j, args_j, cj) ->
                        if name_j = partner && args_i = args_j then begin
                          if Sem.is_hidden c result then emit Sem.tau (set2 i ci j cj)
                          else if Sem.is_visible c result then
                            emit (Sem.Act (result, args_i)) (set2 i ci j cj)
                        end)
                      locals.(j))
                  (Sem.comm_partners c name_i))
              locals.(i)
        done
      done;
      if !ok then Some (List.rev !acc) else None
    in
    let depth = ref 0 in
    let cross_seen = ref false in
    let try_seed seed =
      let in_g = group seed in
      let tick_refused =
        let r = ref false in
        Array.iteri (fun i g -> if g && not (offers_tick locals.(i)) then r := true) in_g;
        !r
      in
      if not tick_refused then None
      else
        match internal in_g with
        | None | Some [] -> (if !depth < 1 then depth := 1); None
        | Some amples ->
            (* Cycle proviso: an ample transition back to an
               earlier-discovered (or the current) state could close a
               cycle along which the deferred transitions never fire.
               Ample sets never contain the tick, so any reduced cycle
               through a tick edge already has a fully expanded state —
               only tick-free (zeno) cycles are a risk, and when the
               static analysis proves there are none, the proviso is
               vacuous and skipped. *)
            if a.zeno_suspects = [] then Some amples
            else
              let back (_, s') =
                match disc_of s' with
                | Some (d, dom) ->
                    if d <= disc then begin
                      if dom <> mydom then cross_seen := true;
                      true
                    end
                    else false
                | None -> false
              in
              if List.exists back amples then ((if !depth < 2 then depth := 2); None)
              else Some amples
    in
    (* Every component is tried as a seed and the smallest valid ample
       set wins (ties go to the lowest seed, keeping the choice
       deterministic).  Hub components close to near-total groups whose
       "ample" set defers almost nothing; a peripheral seed — an
       in-flight channel, say — often freezes just itself and its
       current partners. *)
    let best = ref None in
    for seed = 0 to n - 1 do
      match try_seed seed with
      | None -> ()
      | Some amples -> (
          let k = List.length amples in
          match !best with
          | Some (k0, _) when k0 <= k -> ()
          | _ -> best := Some (k, amples))
    done;
    match !best with
    | Some (_, amples) ->
        with_stats (fun () -> stats.ample_states <- stats.ample_states + 1);
        amples
    | None ->
        with_stats (fun () ->
            match !depth with
            | 0 -> stats.no_refuser <- stats.no_refuser + 1
            | 1 -> stats.visible_blocked <- stats.visible_blocked + 1
            | _ ->
                stats.proviso_blocked <- stats.proviso_blocked + 1;
                if !cross_seen then
                  stats.cross_domain_blocked <- stats.cross_domain_blocked + 1);
        Sem.successors_from c locals s
  in
  let successors_seq s =
    match H.find_opt memo s with
    | Some r -> r
    | None ->
        note s;
        stats.states <- stats.states + 1;
        let result = expand s ~disc:(H.find seen s) ~mydom:0 in
        List.iter (fun (_, s') -> note s') result;
        H.add memo s result;
        result
  in
  (* Parallel variant: expansions are computed outside the locks and
     installed into the memo winner-takes-all, so racing domains may
     both expand a state but every caller observes the single winning
     expansion — the reduced relation stays a function of the state
     within a run.  [stats.states] consequently counts expansion
     computations, which can slightly exceed the number of distinct
     reduced states under races. *)
  let successors_par s =
    let k = stripe s in
    let cached = locked locks.(k) (fun () -> H.find_opt memo_p.(k) s) in
    match cached with
    | Some r -> r
    | None ->
        note s;
        let disc = match disc_of s with Some (d, _) -> d | None -> assert false in
        with_stats (fun () -> stats.states <- stats.states + 1);
        let result = expand s ~disc ~mydom:(Domain.self () :> int) in
        List.iter (fun (_, s') -> note s') result;
        locked locks.(k) (fun () ->
            match H.find_opt memo_p.(k) s with
            | Some winner -> winner
            | None ->
                H.add memo_p.(k) s result;
                result)
  in
  ((if par then successors_par else successors_seq), stats)

let reduced_system_stats ?(alphabet = []) ?par (a : analysis) :
    (Sem.state, Sem.label) Mc.System.t * stats =
  let successors, stats = reduced_successors ?par a ~alphabet in
  let sys : (Sem.state, Sem.label) Mc.System.t =
    (module struct
      type state = Sem.state
      type label = Sem.label

      let initial = Sem.initial_of a.compiled
      let successors = successors
      let equal_state = Sem.equal_state
      let hash_state = Sem.hash_state
      let pp_state = Sem.pp_state
      let pp_label = Sem.pp_label
    end)
  in
  (sys, stats)

let reduced_system ?alphabet ?par a = fst (reduced_system_stats ?alphabet ?par a)
let reduction ?par a ~alphabet = Some (reduced_system ~alphabet ?par a)

(* --- hblint report section -------------------------------------------- *)

let diagnostics (a : analysis) : R.diag list =
  let spec = Sem.spec_of a.compiled in
  let c = a.compiled in
  let diags = ref [] in
  let info ~where fmt =
    Format.kasprintf
      (fun m -> diags := R.diag ~severity:R.Info ~code:"PA-POR" ~where "%s" m :: !diags)
      fmt
  in
  let comp_names is =
    match is with
    | [] -> "(none)"
    | _ -> String.concat ", " (List.map (fun i -> a.names.(i)) is)
  in
  let all = Array.fold_left SSet.union SSet.empty a.alphabets in
  let local_acts =
    SSet.filter (fun nm -> nm <> Proc.Spec.tick_name && not (Sem.is_comm c nm)) all
  in
  let singleton_locals =
    SSet.filter (fun nm -> match offerers a nm with [ _ ] -> true | _ -> false) local_acts
  in
  info ~where:"por"
    "%d components; %d communication pair(s); %d local action name(s), %d of them \
     confined to a single component (ample candidates when invisible); tick is \
     global (all components participate, never reduced)"
    (Array.length a.names)
    (List.length spec.Proc.Spec.comms)
    (SSet.cardinal local_acts)
    (SSet.cardinal singleton_locals);
  List.iter
    (fun ((s, r, res) : string * string * string) ->
      info
        ~where:("comm " ^ res)
        "handshake %s/%s couples {%s} with {%s}: every action of these components is \
         dependent on %s"
        s r (comp_names (offerers a s)) (comp_names (offerers a r)) res)
    spec.Proc.Spec.comms;
  SSet.iter
    (fun nm ->
      match offerers a nm with
      | [ i ] ->
          info ~where:("action " ^ nm)
            "confined to component %s: independent of every other component's actions"
            a.names.(i)
      | is ->
          info ~where:("action " ^ nm)
            "offered by %s: occurrences in different components are independent of \
             each other but dependent on their own component's actions"
            (comp_names is))
    local_acts;
  List.rev !diags
