(** Static dependence analysis and ample-set partial-order reduction.

    The paper's specifications are parallel compositions whose
    components mostly act independently; interleaving all their
    invisible local moves is what makes the full state space large.
    This module (1) statically computes, per component of a
    {!Proc.Spec.t}, which action names it can ever offer and who its
    communication partners are, and (2) uses that dependence
    information to build a {e reduced} {!Mc.System.t} that explores
    only an ample subset of each state's transitions, sound for
    deadlocks, safety monitors over a given alphabet, and
    stutter-invariant LTL over that alphabet (see DESIGN.md for the
    soundness argument and the cycle proviso).

    The reduced system is stateful (it memoizes expansions to
    implement the cycle proviso).  By default ([par = false]) it must
    be explored {e sequentially} — {!Mc.Explore}, {!Mc.Safety} with
    [domains = 1], or the {!Ltl.Check} engines.  With [~par:true] the
    proviso's seen-set and memo become lock-striped and the discovery
    stamps are minted inside the stripe locks, which makes the reduced
    system safe to feed to {!Mc.Pexplore} with any domain count: a
    state whose stamp is still unknown to a reader is guaranteed to be
    stamped strictly later, so the sequential back-edge argument
    (the minimal-stamp state on an all-reduced cycle must have been
    visible to its predecessor's expansion) holds under any
    interleaving, and back edges judged against stamps minted by
    another domain conservatively force full expansion (counted in
    [cross_domain_blocked]).  Racing expansions are resolved
    winner-takes-all in the memo, so within one run the reduced
    relation is still a function of the state; across runs the winner
    — and hence the reduced graph and its statistics — may differ with
    scheduling.  Parallel reduced runs therefore guarantee {e verdict}
    parity with the full system, not byte-identical state spaces. *)

type analysis
(** Result of the static pass over one specification. *)

val analyze : Proc.Spec.t -> analysis
(** Compile the spec and compute per-component statically-reachable
    action alphabets (via the call graph, as in [Lint.Pa]) and the
    offerer table: for each action name, which components can ever
    offer it.
    @raise Invalid_argument if {!Proc.Spec.validate} rejects the spec. *)

val analyze_cached : Proc.Spec.t -> analysis
(** Like {!analyze}, memoised on the spec term (structural equality):
    table sweeps and smoke matrices that revisit the same spec share
    one analysis.  Safe because the analysis is a pure function of the
    spec. *)

val cache_stats : unit -> int * int
(** [(lookups, hits)] of the {!analyze_cached} memo since start-up. *)

val compiled : analysis -> Proc.Semantics.compiled
val component_names : analysis -> string array

val component_alphabet : analysis -> int -> string list
(** Sorted action names component [i] can ever offer (including [tick]
    and communication halves). *)

val offerers : analysis -> string -> int list
(** Ascending indices of the components that can ever offer the given
    action name; [[]] for unknown names and pure result names. *)

val zeno_free : analysis -> bool
(** Statically proven: every cycle of the full system performs a tick.
    Since ample sets never contain the tick, a zeno-free spec needs no
    runtime cycle proviso — reduction is then both cheaper and more
    effective.  Conservative: [false] only means the runtime proviso
    stays on. *)

val zeno_suspects : analysis -> int list
(** The component indices the zeno pruning could not discharge —
    the potential movers of a tick-free cycle.  [[]] iff {!zeno_free}. *)

type stats = {
  mutable states : int;  (** states whose successors were computed *)
  mutable ample_states : int;
      (** of those, states where an ample subset was returned *)
  mutable no_refuser : int;
      (** fully expanded: every candidate group had all members offering
          [tick] (typically a stable state where only time can pass) *)
  mutable proviso_blocked : int;
      (** fully expanded: every otherwise-valid candidate had a
          potential cycle-closing back edge *)
  mutable visible_blocked : int;
      (** fully expanded: every tick-refusing candidate offered a
          visible label (or nothing at all) *)
  mutable cross_domain_blocked : int;
      (** of the [proviso_blocked] expansions, those where a blocking
          back edge's discovery stamp was minted by another domain —
          the parallel proviso's conservative cross-domain fallback.
          Always [0] sequentially. *)
}

val reduced_system_stats :
  ?alphabet:string list ->
  ?par:bool ->
  analysis ->
  (Proc.Semantics.state, Proc.Semantics.label) Mc.System.t * stats
(** A reduced system together with its live counters.  [alphabet] is
    the property alphabet: the label names the property being checked
    can observe (a safety monitor's predicate names, or the [Lbl]
    atoms of a stutter-invariant LTL formula).  Every transition label
    whose name is in [alphabet] is treated as visible and never
    reduced past.  The default [[]] (pure reachability / state
    counting) reduces the most.

    [par] (default [false]) selects the lock-striped parallel proviso
    described in the module header; sequential exploration of a
    [~par:true] system is also sound (and deterministic on a single
    domain), it merely pays the locking overhead.  In parallel mode
    [states] counts expansion computations, which can slightly exceed
    the number of distinct reduced states when domains race on the
    same state. *)

val reduced_system :
  ?alphabet:string list ->
  ?par:bool ->
  analysis ->
  (Proc.Semantics.state, Proc.Semantics.label) Mc.System.t

val reduction :
  ?par:bool ->
  analysis ->
  alphabet:string list ->
  (Proc.Semantics.state, Proc.Semantics.label) Mc.System.t option
(** Adapter with the shape {!Ltl.Check.check}'s [?reduction] callback
    expects: builds a fresh reduced system for the formula's alphabet. *)

val diagnostics : analysis -> Lint_report.diag list
(** The dependence analysis as [hblint] report entries (code [PA-POR],
    severity Info): a summary of ample opportunities, one entry per
    communication pair naming the dependent component groups, and one
    entry per local action naming its offerers.  Deterministic. *)
