(* Namespaced entry point for the (unwrapped) slice library.

   [Slice.Ta] slices timed-automata networks against a property seed
   (cone-of-influence, dead-write elimination, constant folding,
   Daws-Yovine clock activity); [Slice.Pa] slices process-algebra
   specifications (constant parameter folding, dead-parameter
   elimination).  Both are exact label-preserving projections, so
   counterexamples found in a sliced system replay in the full one by
   guided replay of their label trace — [replay] below is the
   certificate check. *)

module Ta = Slice_ta
module Pa = Slice_pa

(* [replay sys trace] — does the label trace embed in [sys] from its
   initial state?  Because slicing preserves label traces exactly, a
   sliced counterexample must replay in the full system; this is the
   run-time validation of the slicing certificate. *)
let replay (type s l) (sys : (s, l) Mc.System.t) (trace : l list) : bool =
  let module S = (val sys) in
  let rec go s = function
    | [] -> true
    | l :: rest ->
        List.exists (fun (l', s') -> l' = l && go s' rest) (S.successors s)
  in
  go S.initial trace
