(* Property-driven slicing of timed-automata networks.

   Given a network and a seed (the variables, clocks and locations a
   property observes), produce a smaller network with the same label
   traces.  The pass is an {e exact label-preserving projection}: every
   guard and invariant of the kept part is preserved verbatim (modulo
   constant folding, which never changes a value), so the sliced and
   full systems are trace-equivalent for any observer over action
   labels and over the seeded state atoms.  Counterexamples from the
   sliced model therefore replay in the full model by guided replay of
   their label trace (see {!Slice.replay}); the certificate in {!t}
   records what was folded or removed so the replay and the reports can
   name full-model entities.

   Pipeline:
   1. constant folding — variables whose flow-insensitive interval
      ({!Lint_ta.intervals_of}) is a singleton are provably constant;
      substitute the constant, drop their (dead) writes;
   2. expression simplification — fold closed arithmetic and boolean
      subterms; edges whose guard folds to [False] are dropped;
   3. location pruning — locations unreachable in the edge graph after
      folding are dropped (seeded locations are kept so property
      observers still resolve);
   4. dead-write elimination — a backward relevance fixpoint from the
      seed and from every kept guard/invariant; writes to irrelevant
      variables are dropped, then unread variables and clocks are
      projected out of the declarations;
   5. clock-activity reduction (Daws–Yovine) — for clocks used by a
      single automaton, per-location active sets are computed by
      backward propagation over non-resetting edges; inactive clocks
      stay in the vector but are zeroed by a canonicalizer
      ({!Ta.Semantics.canonicalizer}), collapsing states that differ
      only in clock values nothing will read before resetting;
   6. an activity-aware static bound replaces the declaration-product
      bound: per automaton, the sum over locations of the product of
      the {e active} owned-clock domains.

   Step 4 keeps every guard and invariant of the kept part, which is
   what makes the projection exact rather than merely conservative:
   slicing never adds behaviours, so verdict parity holds in both
   directions.  Seeded entities are exempt from folding and removal. *)

module E = Ta.Expr
module M = Ta.Model
module I = Lint_interval
module R = Lint_report
module SSet = Set.Make (String)
module SMap = Map.Make (String)

type seed = {
  seed_vars : string list;
  seed_clocks : string list;
  seed_locs : (string * string) list; (* automaton, location *)
}

let empty_seed = { seed_vars = []; seed_clocks = []; seed_locs = [] }

type t = {
  model : M.t;
  folded : (string * int) list; (* variable, proven constant value *)
  removed_vars : string list;
  removed_clocks : string list;
  removed_locs : (string * string) list; (* automaton, location *)
  inactive : (string * (string * string list) list) list;
      (* automaton -> location -> inactive owned clocks *)
  expected : I.card; (* activity-aware post-slice state bound *)
}

(* --- expression helpers ------------------------------------------------- *)

let rec subst_expr env (e : E.t) : E.t =
  match e with
  | E.Int _ | E.Clock _ -> e
  | E.Var x -> (
      match SMap.find_opt x env with Some n -> E.Int n | None -> e)
  | E.Elem (x, i) -> E.Elem (x, subst_expr env i)
  | E.Add (a, b) -> E.Add (subst_expr env a, subst_expr env b)
  | E.Sub (a, b) -> E.Sub (subst_expr env a, subst_expr env b)
  | E.Mul (a, b) -> E.Mul (subst_expr env a, subst_expr env b)
  | E.Div (a, b) -> E.Div (subst_expr env a, subst_expr env b)
  | E.Min (a, b) -> E.Min (subst_expr env a, subst_expr env b)
  | E.Max (a, b) -> E.Max (subst_expr env a, subst_expr env b)

let rec subst_bexpr env (b : E.b) : E.b =
  match b with
  | E.True | E.False -> b
  | E.Cmp (c, a, b') -> E.Cmp (c, subst_expr env a, subst_expr env b')
  | E.Not b -> E.Not (subst_bexpr env b)
  | E.And (a, b) -> E.And (subst_bexpr env a, subst_bexpr env b)
  | E.Or (a, b) -> E.Or (subst_bexpr env a, subst_bexpr env b)

let rec fold_expr (e : E.t) : E.t =
  match e with
  | E.Int _ | E.Var _ | E.Clock _ -> e
  | E.Elem (x, i) -> E.Elem (x, fold_expr i)
  | E.Add (a, b) -> (
      match (fold_expr a, fold_expr b) with
      | E.Int x, E.Int y -> E.Int (x + y)
      | a, b -> E.Add (a, b))
  | E.Sub (a, b) -> (
      match (fold_expr a, fold_expr b) with
      | E.Int x, E.Int y -> E.Int (x - y)
      | a, b -> E.Sub (a, b))
  | E.Mul (a, b) -> (
      match (fold_expr a, fold_expr b) with
      | E.Int x, E.Int y -> E.Int (x * y)
      | a, b -> E.Mul (a, b))
  | E.Div (a, b) -> (
      (* x/0 must keep raising at run time, so only fold nonzero
         divisors *)
      match (fold_expr a, fold_expr b) with
      | E.Int x, E.Int y when y <> 0 -> E.Int (x / y)
      | a, b -> E.Div (a, b))
  | E.Min (a, b) -> (
      match (fold_expr a, fold_expr b) with
      | E.Int x, E.Int y -> E.Int (min x y)
      | a, b -> E.Min (a, b))
  | E.Max (a, b) -> (
      match (fold_expr a, fold_expr b) with
      | E.Int x, E.Int y -> E.Int (max x y)
      | a, b -> E.Max (a, b))

let cmp_op : E.cmp -> int -> int -> bool = function
  | E.Lt -> ( < )
  | E.Le -> ( <= )
  | E.Eq -> ( = )
  | E.Ge -> ( >= )
  | E.Gt -> ( > )
  | E.Ne -> ( <> )

let rec fold_bexpr (b : E.b) : E.b =
  match b with
  | E.True | E.False -> b
  | E.Cmp (c, a, b') -> (
      match (fold_expr a, fold_expr b') with
      | E.Int x, E.Int y -> if cmp_op c x y then E.True else E.False
      | a, b' -> E.Cmp (c, a, b'))
  | E.Not b -> (
      match fold_bexpr b with
      | E.True -> E.False
      | E.False -> E.True
      | b -> E.Not b)
  | E.And (a, b) -> (
      match (fold_bexpr a, fold_bexpr b) with
      | E.False, _ | _, E.False -> E.False
      | E.True, x | x, E.True -> x
      | a, b -> E.And (a, b))
  | E.Or (a, b) -> (
      match (fold_bexpr a, fold_bexpr b) with
      | E.True, _ | _, E.True -> E.True
      | E.False, x | x, E.False -> x
      | a, b -> E.Or (a, b))

let rec expr_vars acc (e : E.t) =
  match e with
  | E.Int _ | E.Clock _ -> acc
  | E.Var x -> SSet.add x acc
  | E.Elem (x, i) -> expr_vars (SSet.add x acc) i
  | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
  | E.Min (a, b) | E.Max (a, b) ->
      expr_vars (expr_vars acc a) b

let rec bexpr_vars acc (b : E.b) =
  match b with
  | E.True | E.False -> acc
  | E.Cmp (_, a, b') -> expr_vars (expr_vars acc a) b'
  | E.Not b -> bexpr_vars acc b
  | E.And (a, b) | E.Or (a, b) -> bexpr_vars (bexpr_vars acc a) b

let rec expr_clocks acc (e : E.t) =
  match e with
  | E.Int _ | E.Var _ -> acc
  | E.Clock c -> SSet.add c acc
  | E.Elem (_, i) -> expr_clocks acc i
  | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
  | E.Min (a, b) | E.Max (a, b) ->
      expr_clocks (expr_clocks acc a) b

let rec bexpr_clocks acc (b : E.b) =
  match b with
  | E.True | E.False -> acc
  | E.Cmp (_, a, b') -> expr_clocks (expr_clocks acc a) b'
  | E.Not b -> bexpr_clocks acc b
  | E.And (a, b) | E.Or (a, b) -> bexpr_clocks (bexpr_clocks acc a) b

let lhs_var = function M.Scalar x -> x | M.Element (x, _) -> x

(* --- clock activity (Daws-Yovine) ---------------------------------------

   A clock is owned by automaton A when every read and reset of it sits
   in A (and it is not seeded, so property observers keep exact values).
   active(l) = reads local to l (its invariant, plus guards and update
   expressions of edges out of l) joined with active(l') over
   non-resetting edges l -> l'.  Shared with the zone engine, which
   zeroes inactive clocks in its DBMs for the same reason the slicer
   zeroes them in discrete states: nothing reads them before a reset,
   so the projection is a label-preserving bisimulation. *)

let clock_sites (model : M.t) =
  (* clock -> set of automaton names touching it *)
  let tbl = Hashtbl.create 8 in
  let touch auto c =
    let prev = Option.value (Hashtbl.find_opt tbl c) ~default:SSet.empty in
    Hashtbl.replace tbl c (SSet.add auto prev)
  in
  List.iter
    (fun (a : M.automaton) ->
      let name = a.M.auto_name in
      List.iter
        (fun (l : M.location) ->
          SSet.iter (touch name) (bexpr_clocks SSet.empty l.M.invariant))
        a.M.locations;
      List.iter
        (fun (e : M.edge) ->
          SSet.iter (touch name) (bexpr_clocks SSet.empty e.M.guard);
          List.iter
            (fun (u : M.update) ->
              match u with
              | M.Reset c -> touch name c
              | M.Assign (M.Scalar _, rhs) ->
                  SSet.iter (touch name) (expr_clocks SSet.empty rhs)
              | M.Assign (M.Element (_, i), rhs) ->
                  SSet.iter (touch name)
                    (expr_clocks (expr_clocks SSet.empty i) rhs))
            e.M.updates)
        a.M.edges)
    model.M.automata;
  tbl

let owned_by ~seed_clocks (model : M.t) sites auto =
  List.filter_map
    (fun (c : M.clock_decl) ->
      let name = c.M.clock_name in
      if SSet.mem name seed_clocks then None
      else
        match Hashtbl.find_opt sites name with
        | Some autos when SSet.equal autos (SSet.singleton auto) -> Some name
        | _ -> None)
    model.M.clocks

let activity (a : M.automaton) owned =
  let owned_set = SSet.of_list owned in
  let local l =
    let inv_reads = bexpr_clocks SSet.empty l.M.invariant in
    List.fold_left
      (fun acc (e : M.edge) ->
        if e.M.src <> l.M.loc_name then acc
        else
          let acc = bexpr_clocks acc e.M.guard in
          List.fold_left
            (fun acc (u : M.update) ->
              match u with
              | M.Reset _ -> acc
              | M.Assign (M.Scalar _, rhs) -> expr_clocks acc rhs
              | M.Assign (M.Element (_, i), rhs) ->
                  expr_clocks (expr_clocks acc i) rhs)
            acc e.M.updates)
      inv_reads a.M.edges
    |> SSet.inter owned_set
  in
  let active = Hashtbl.create 8 in
  List.iter
    (fun (l : M.location) -> Hashtbl.replace active l.M.loc_name (local l))
    a.M.locations;
  let get l = Option.value (Hashtbl.find_opt active l) ~default:SSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : M.edge) ->
        let resets =
          List.filter_map
            (fun (u : M.update) ->
              match u with M.Reset c -> Some c | M.Assign _ -> None)
            e.M.updates
          |> SSet.of_list
        in
        let flow = SSet.diff (get e.M.dst) resets in
        let cur = get e.M.src in
        let next = SSet.union cur flow in
        if not (SSet.equal cur next) then begin
          Hashtbl.replace active e.M.src next;
          changed := true
        end)
      a.M.edges
  done;
  active

let inactive_of ~seed_clocks (model : M.t) =
  let sites = clock_sites model in
  List.filter_map
    (fun (a : M.automaton) ->
      let owned = owned_by ~seed_clocks model sites a.M.auto_name in
      if owned = [] then None
      else
        let active = activity a owned in
        let per_loc =
          List.filter_map
            (fun (l : M.location) ->
              let act =
                Option.value
                  (Hashtbl.find_opt active l.M.loc_name)
                  ~default:SSet.empty
              in
              let inact = List.filter (fun c -> not (SSet.mem c act)) owned in
              if inact = [] then None else Some (l.M.loc_name, inact))
            a.M.locations
        in
        if per_loc = [] then None else Some (a.M.auto_name, per_loc))
    model.M.automata

(* The zone engine's entry point: per-automaton, per-location inactive
   clocks of the full (unsliced, unseeded) model. *)
let clock_activity (model : M.t) = inactive_of ~seed_clocks:SSet.empty model

(* --- the pass ----------------------------------------------------------- *)

let slice ?(seed = empty_seed) (model : M.t) : t =
  let seed_vars = SSet.of_list seed.seed_vars in
  let seed_clocks = SSet.of_list seed.seed_clocks in
  let seed_locs_of auto =
    List.filter_map
      (fun (a, l) -> if a = auto then Some l else None)
      seed.seed_locs
    |> SSet.of_list
  in
  (* 1. constants: non-seed scalars whose interval is a singleton. *)
  let _decls, globals = Lint_ta.intervals_of model in
  let consts =
    List.fold_left
      (fun acc (v : M.var_decl) ->
        if
          List.length v.M.init = 1
          && not (SSet.mem v.M.var_name seed_vars)
        then
          match SMap.find_opt (Lint_ta.vkey v.M.var_name) globals with
          | Some i when I.is_singleton i -> SMap.add v.M.var_name i.I.lo acc
          | _ -> acc
        else acc)
      SMap.empty model.M.vars
  in
  (* 2. substitute + fold; drop writes to folded vars and edges with
     statically-false guards. *)
  let rw_expr e = fold_expr (subst_expr consts e) in
  let rw_bexpr b = fold_bexpr (subst_bexpr consts b) in
  let rw_updates us =
    List.filter_map
      (fun (u : M.update) ->
        match u with
        | M.Reset _ -> Some u
        | M.Assign (lhs, rhs) ->
            if SMap.mem (lhs_var lhs) consts then None
            else
              let lhs =
                match lhs with
                | M.Scalar _ -> lhs
                | M.Element (x, i) -> M.Element (x, rw_expr i)
              in
              Some (M.Assign (lhs, rw_expr rhs)))
      us
  in
  let automata =
    List.map
      (fun (a : M.automaton) ->
        {
          a with
          M.locations =
            List.map
              (fun (l : M.location) ->
                { l with M.invariant = rw_bexpr l.M.invariant })
              a.M.locations;
          M.edges =
            List.filter_map
              (fun (e : M.edge) ->
                match rw_bexpr e.M.guard with
                | E.False -> None
                | g ->
                    Some
                      { e with M.guard = g; M.updates = rw_updates e.M.updates })
              a.M.edges;
        })
      model.M.automata
  in
  (* 3. prune locations unreachable in the post-fold edge graph (seeded
     locations survive so property observers still resolve). *)
  let removed_locs = ref [] in
  let automata =
    List.map
      (fun (a : M.automaton) ->
        let reach = Lint_ta.reachable_locs a in
        let kept = SSet.union reach (seed_locs_of a.M.auto_name) in
        List.iter
          (fun (l : M.location) ->
            if not (SSet.mem l.M.loc_name kept) then
              removed_locs := (a.M.auto_name, l.M.loc_name) :: !removed_locs)
          a.M.locations;
        {
          a with
          M.locations =
            List.filter
              (fun (l : M.location) -> SSet.mem l.M.loc_name kept)
              a.M.locations;
          M.edges =
            List.filter (fun (e : M.edge) -> SSet.mem e.M.src reach) a.M.edges;
        })
      automata
  in
  let removed_locs = List.rev !removed_locs in
  (* 4. backward relevance fixpoint.  Every kept guard and invariant is
     preserved verbatim, so their reads are all relevant; the closure
     adds the reads feeding writes to relevant variables. *)
  let base_vars, base_clocks =
    List.fold_left
      (fun acc (a : M.automaton) ->
        let acc =
          List.fold_left
            (fun (vs, cs) (l : M.location) ->
              (bexpr_vars vs l.M.invariant, bexpr_clocks cs l.M.invariant))
            acc a.M.locations
        in
        List.fold_left
          (fun (vs, cs) (e : M.edge) ->
            (bexpr_vars vs e.M.guard, bexpr_clocks cs e.M.guard))
          acc a.M.edges)
      (seed_vars, seed_clocks)
      automata
  in
  let assigns =
    List.concat_map
      (fun (a : M.automaton) ->
        List.concat_map
          (fun (e : M.edge) ->
            List.filter_map
              (fun (u : M.update) ->
                match u with
                | M.Reset _ -> None
                | M.Assign (lhs, rhs) ->
                    let reads_v =
                      match lhs with
                      | M.Scalar _ -> expr_vars SSet.empty rhs
                      | M.Element (_, i) ->
                          expr_vars (expr_vars SSet.empty i) rhs
                    in
                    let reads_c =
                      match lhs with
                      | M.Scalar _ -> expr_clocks SSet.empty rhs
                      | M.Element (_, i) ->
                          expr_clocks (expr_clocks SSet.empty i) rhs
                    in
                    Some (lhs_var lhs, reads_v, reads_c))
              e.M.updates)
          a.M.edges)
      automata
  in
  let rec closure vars clocks =
    let vars', clocks' =
      List.fold_left
        (fun (vs, cs) (x, rv, rc) ->
          if SSet.mem x vs then (SSet.union vs rv, SSet.union cs rc)
          else (vs, cs))
        (vars, clocks) assigns
    in
    if SSet.equal vars vars' && SSet.equal clocks clocks' then (vars, clocks)
    else closure vars' clocks'
  in
  let relevant_vars, relevant_clocks = closure base_vars base_clocks in
  let removed_vars =
    List.filter_map
      (fun (v : M.var_decl) ->
        if
          SSet.mem v.M.var_name relevant_vars
          || SMap.mem v.M.var_name consts
        then None
        else Some v.M.var_name)
      model.M.vars
  in
  let removed_clocks =
    List.filter_map
      (fun (c : M.clock_decl) ->
        if SSet.mem c.M.clock_name relevant_clocks then None
        else Some c.M.clock_name)
      model.M.clocks
  in
  let dead_v = SSet.of_list removed_vars in
  let dead_c = SSet.of_list removed_clocks in
  let automata =
    List.map
      (fun (a : M.automaton) ->
        {
          a with
          M.edges =
            List.map
              (fun (e : M.edge) ->
                {
                  e with
                  M.updates =
                    List.filter
                      (fun (u : M.update) ->
                        match u with
                        | M.Reset c -> not (SSet.mem c dead_c)
                        | M.Assign (lhs, _) ->
                            not (SSet.mem (lhs_var lhs) dead_v))
                      e.M.updates;
                })
              a.M.edges;
        })
      automata
  in
  let sliced =
    {
      M.vars =
        List.filter
          (fun (v : M.var_decl) ->
            not
              (SSet.mem v.M.var_name dead_v || SMap.mem v.M.var_name consts))
          model.M.vars;
      M.clocks =
        List.filter
          (fun (c : M.clock_decl) -> not (SSet.mem c.M.clock_name dead_c))
          model.M.clocks;
      M.chans = model.M.chans;
      M.automata = automata;
    }
  in
  (* 5. clock activity (the Daws-Yovine pass above, on the sliced
     model, keeping seeded clocks exact). *)
  let owned_by = owned_by ~seed_clocks sliced (clock_sites sliced) in
  let inactive = inactive_of ~seed_clocks sliced in
  (* 6. activity-aware bound: per automaton, sum over locations of the
     product of active owned-clock domains; unowned clocks and kept
     variables multiply globally as before. *)
  let _sd, sliced_globals = Lint_ta.intervals_of sliced in
  let owned_all =
    List.fold_left
      (fun acc (a : M.automaton) ->
        List.fold_left
          (fun acc c -> SSet.add c acc)
          acc
          (owned_by a.M.auto_name))
      SSet.empty sliced.M.automata
  in
  let cap_of c =
    match
      List.find_opt (fun (d : M.clock_decl) -> d.M.clock_name = c)
        sliced.M.clocks
    with
    | Some d -> d.M.cap
    | None -> 0
  in
  let expected =
    let per_auto =
      List.fold_left
        (fun acc (a : M.automaton) ->
          let owned = owned_by a.M.auto_name in
          let active = activity a owned in
          let locs_sum =
            List.fold_left
              (fun acc (l : M.location) ->
                let act =
                  Option.value
                    (Hashtbl.find_opt active l.M.loc_name)
                    ~default:SSet.empty
                in
                let prod =
                  SSet.fold
                    (fun c acc -> I.card_mul acc (I.Finite (cap_of c + 1)))
                    act (I.Finite 1)
                in
                I.card_add acc prod)
              (I.Finite 0) a.M.locations
          in
          let locs_sum =
            match locs_sum with I.Finite 0 -> I.Finite 1 | s -> s
          in
          I.card_mul acc locs_sum)
        (I.Finite 1) sliced.M.automata
    in
    let with_unowned =
      List.fold_left
        (fun acc (c : M.clock_decl) ->
          if SSet.mem c.M.clock_name owned_all then acc
          else I.card_mul acc (I.Finite (c.M.cap + 1)))
        per_auto sliced.M.clocks
    in
    List.fold_left
      (fun acc (v : M.var_decl) ->
        let i =
          match
            SMap.find_opt (Lint_ta.vkey v.M.var_name) sliced_globals
          with
          | Some i -> i
          | None -> I.top
        in
        I.card_mul acc (I.card_pow (I.width i) (List.length v.M.init)))
      with_unowned sliced.M.vars
  in
  {
    model = sliced;
    folded = SMap.bindings consts;
    removed_vars;
    removed_clocks;
    removed_locs;
    inactive;
    expected;
  }

(* --- packaging ---------------------------------------------------------- *)

(* Wrap the compiled sliced network so every emitted configuration is the
   canonical representative of its clock-activity class. *)
let system (sl : t) (net : Ta.Semantics.t) :
    (Ta.Semantics.config, Ta.Semantics.label) Mc.System.t =
  let module S = (val Ta.Semantics.system net) in
  if sl.inactive = [] then (module S)
  else
    let canon = Ta.Semantics.canonicalizer net ~inactive:sl.inactive in
    (module struct
      type state = S.state
      type label = S.label

      let initial = canon S.initial
      let successors s = List.map (fun (l, s') -> (l, canon s')) (S.successors s)
      let equal_state = S.equal_state
      let hash_state = S.hash_state
      let pp_state = S.pp_state
      let pp_label = S.pp_label
    end)

(* --- reporting ---------------------------------------------------------- *)

let diagnostics (sl : t) : R.diag list =
  let info ~where fmt =
    Format.kasprintf
      (fun message -> R.diag ~severity:R.Info ~code:"TA-SLICE" ~where "%s" message)
      fmt
  in
  List.map
    (fun (x, n) ->
      info ~where:("variable " ^ x) "variable %s folded to constant %d" x n)
    sl.folded
  @ List.map
      (fun x ->
        info ~where:("variable " ^ x)
          "variable %s sliced away (irrelevant to the property)" x)
      sl.removed_vars
  @ List.map
      (fun c ->
        info ~where:("clock " ^ c)
          "clock %s sliced away (irrelevant to the property)" c)
      sl.removed_clocks
  @ List.map
      (fun (a, l) ->
        info
          ~where:(Printf.sprintf "automaton %s, location %s" a l)
          "location %s is unreachable after folding and was dropped" l)
      sl.removed_locs
  @ List.concat_map
      (fun (a, locs) ->
        List.map
          (fun (l, clocks) ->
            info
              ~where:(Printf.sprintf "automaton %s, location %s" a l)
              "clocks inactive here (zeroed by canonicalization): %s"
              (String.concat ", " clocks))
          locs)
      sl.inactive
