(* Property-driven slicing of process-algebra specifications.

   The PA state is the vector of component terms with their data
   parameters, so the lever here is the {e data}: definition parameters
   that are provably constant are folded into the bodies, and
   parameters that no label or branch ever (transitively) depends on
   are dropped from signatures and call sites.  Action labels — the
   only thing monitors, LTL formulas and the POR visibility condition
   observe — are never altered: act names and act argument expressions
   are preserved (modulo constant folding, which never changes a
   value).  The sliced system is therefore trace-equivalent to the
   full one over labels, for any property; there is no seed.

   Pipeline:
   1. prune definitions unreachable from the initial components (the
      {!Lint_pa.reachable_from} call-graph walk, shared with [Por]);
   2. interprocedural constant propagation: a parameter is [Cst v] when
      every call site (including the initial instantiation) passes an
      expression that partially evaluates to the same literal [v];
      statically-dead [Cond] branches do not contribute call sites;
   3. fold [Cst] parameters: substitute the constant into the body
      (respecting [Sum] shadowing), drop the parameter and every
      call-site argument at its position;
   4. constant-fold expressions and prune [Cond]s whose condition
      folded to a literal;
   5. dead-parameter elimination: a parameter is needed iff it is free
      in a [Cond] condition, an action argument, or an argument
      expression feeding a {e needed} parameter of a callee (backward
      fixpoint over the call graph); unneeded parameters and their
      arguments are dropped — two states differing only in dead data
      collapse into one;
   6. final reachability prune, and a {!Proc.Spec.validate} sanity
      check on the result.

   Dropping a call-site argument also drops any run-time failure its
   evaluation could raise (e.g. an out-of-range [Nth]); the shipped
   models have no such partial arguments, and the qcheck generators do
   not produce them. *)

module P = Proc.Pexpr
module T = Proc.Term
module S = Proc.Spec
module V = Proc.Value
module R = Lint_report
module SSet = Set.Make (String)
module SMap = Map.Make (String)

type t = {
  spec : S.t;
  dropped_defs : string list;
  folded_params : (string * string * V.t) list; (* def, param, value *)
  dropped_params : (string * string) list; (* def, param *)
}

(* --- expression helpers ------------------------------------------------- *)

let rec fv acc (e : P.t) =
  match e with
  | P.Const _ -> acc
  | P.Var x -> SSet.add x acc
  | P.Add (a, b) | P.Sub (a, b) | P.Mul (a, b) | P.Div (a, b)
  | P.Eq (a, b) | P.Lt (a, b) | P.Le (a, b) | P.And (a, b) | P.Or (a, b)
  | P.Nth (a, b) | P.Repl (a, b) ->
      fv (fv acc a) b
  | P.Not a | P.Min_list a | P.Len a -> fv acc a
  | P.If (a, b, c) | P.Set_nth (a, b, c) -> fv (fv (fv acc a) b) c

let rec subst_pexpr (env : V.t SMap.t) (e : P.t) : P.t =
  let s = subst_pexpr env in
  match e with
  | P.Const _ -> e
  | P.Var x -> (
      match SMap.find_opt x env with Some v -> P.Const v | None -> e)
  | P.Add (a, b) -> P.Add (s a, s b)
  | P.Sub (a, b) -> P.Sub (s a, s b)
  | P.Mul (a, b) -> P.Mul (s a, s b)
  | P.Div (a, b) -> P.Div (s a, s b)
  | P.Eq (a, b) -> P.Eq (s a, s b)
  | P.Lt (a, b) -> P.Lt (s a, s b)
  | P.Le (a, b) -> P.Le (s a, s b)
  | P.And (a, b) -> P.And (s a, s b)
  | P.Or (a, b) -> P.Or (s a, s b)
  | P.Not a -> P.Not (s a)
  | P.If (a, b, c) -> P.If (s a, s b, s c)
  | P.Nth (a, b) -> P.Nth (s a, s b)
  | P.Set_nth (a, b, c) -> P.Set_nth (s a, s b, s c)
  | P.Min_list a -> P.Min_list (s a)
  | P.Len a -> P.Len (s a)
  | P.Repl (a, b) -> P.Repl (s a, s b)

let rec fold_pexpr (e : P.t) : P.t =
  let f = fold_pexpr in
  let e =
    match e with
    | P.Const _ | P.Var _ -> e
    | P.Add (a, b) -> P.Add (f a, f b)
    | P.Sub (a, b) -> P.Sub (f a, f b)
    | P.Mul (a, b) -> P.Mul (f a, f b)
    | P.Div (a, b) -> P.Div (f a, f b)
    | P.Eq (a, b) -> P.Eq (f a, f b)
    | P.Lt (a, b) -> P.Lt (f a, f b)
    | P.Le (a, b) -> P.Le (f a, f b)
    | P.And (a, b) -> P.And (f a, f b)
    | P.Or (a, b) -> P.Or (f a, f b)
    | P.Not a -> P.Not (f a)
    | P.If (a, b, c) -> (
        match f a with
        | P.Const (V.Bool true) -> f b
        | P.Const (V.Bool false) -> f c
        | a -> P.If (a, f b, f c))
    | P.Nth (a, b) -> P.Nth (f a, f b)
    | P.Set_nth (a, b, c) -> P.Set_nth (f a, f b, f c)
    | P.Min_list a -> P.Min_list (f a)
    | P.Len a -> P.Len (f a)
    | P.Repl (a, b) -> P.Repl (f a, f b)
  in
  match e with
  | P.Const _ -> e
  | _ ->
      if SSet.is_empty (fv SSet.empty e) then
        match (try Some (P.eval [] e) with Invalid_argument _ -> None) with
        | Some v -> P.Const v
        | None -> e
      else e

let rec subst_term (env : V.t SMap.t) (t : T.t) : T.t =
  match t with
  | T.Nil -> T.Nil
  | T.Prefix (a, p) ->
      T.Prefix
        ( { a with T.act_args = List.map (subst_pexpr env) a.T.act_args },
          subst_term env p )
  | T.Choice ps -> T.Choice (List.map (subst_term env) ps)
  | T.Sum (x, lo, hi, p) ->
      (* the sum binder shadows any outer constant of the same name *)
      T.Sum (x, lo, hi, subst_term (SMap.remove x env) p)
  | T.Cond (c, p, q) ->
      T.Cond (subst_pexpr env c, subst_term env p, subst_term env q)
  | T.Call (f, args) -> T.Call (f, List.map (subst_pexpr env) args)

let rec fold_term (t : T.t) : T.t =
  match t with
  | T.Nil -> T.Nil
  | T.Prefix (a, p) ->
      T.Prefix
        ({ a with T.act_args = List.map fold_pexpr a.T.act_args }, fold_term p)
  | T.Choice ps -> T.Choice (List.map fold_term ps)
  | T.Sum (x, lo, hi, p) -> T.Sum (x, lo, hi, fold_term p)
  | T.Cond (c, p, q) -> (
      match fold_pexpr c with
      | P.Const (V.Bool true) -> fold_term p
      | P.Const (V.Bool false) -> fold_term q
      | c -> T.Cond (c, fold_term p, fold_term q))
  | T.Call (f, args) -> T.Call (f, List.map fold_pexpr args)

(* --- constant propagation ----------------------------------------------- *)

type cst = Cst of V.t | Any

let join_cst a b =
  match (a, b) with
  | Cst x, Cst y when V.equal x y -> a
  | _ -> Any

(* Flow literal arguments from every (statically live) call site into
   the callee's parameter lattice.  [bindings] holds the enclosing
   definition's already-known constant parameters; sum binders shadow
   them. *)
let propagate_constants (defs : T.def SMap.t) (init : (string * V.t list) list)
    : cst array SMap.t =
  let state =
    SMap.map (fun (d : T.def) -> Array.make (List.length d.T.params) Any) defs
  in
  (* seed: parameters start optimistically unknown (no constraint); we
     represent "no call site seen yet" as a separate option layer *)
  let state =
    SMap.map (fun arr -> Array.map (fun _ -> (None : cst option)) arr) state
  in
  let flow name (args : cst list) =
    match SMap.find_opt name state with
    | None -> ()
    | Some arr ->
        List.iteri
          (fun i a ->
            if i < Array.length arr then
              arr.(i) <-
                (match arr.(i) with
                | None -> Some a
                | Some prev -> Some (join_cst prev a)))
          args
  in
  let eval_arg bindings shadowed (e : P.t) : cst =
    let free = fv SSet.empty e in
    if
      SSet.exists (fun x -> SSet.mem x shadowed) free
      || not (SSet.for_all (fun x -> SMap.mem x bindings) free)
    then Any
    else
      let env = SMap.bindings bindings in
      match (try Some (P.eval env e) with Invalid_argument _ -> None) with
      | Some v -> Cst v
      | None -> Any
  in
  let rec walk bindings shadowed (t : T.t) =
    match t with
    | T.Nil -> ()
    | T.Prefix (_, p) -> walk bindings shadowed p
    | T.Choice ps -> List.iter (walk bindings shadowed) ps
    | T.Sum (x, _, _, p) ->
        walk (SMap.remove x bindings) (SSet.add x shadowed) p
    | T.Cond (c, p, q) -> (
        (* skip statically-dead branches so they contribute no call
           sites *)
        match eval_arg bindings shadowed c with
        | Cst (V.Bool true) -> walk bindings shadowed p
        | Cst (V.Bool false) -> walk bindings shadowed q
        | _ ->
            walk bindings shadowed p;
            walk bindings shadowed q)
    | T.Call (f, args) ->
        flow f (List.map (eval_arg bindings shadowed) args)
  in
  let snapshot () =
    SMap.map (fun arr -> Array.copy arr) state
  in
  let equal_state a b =
    SMap.for_all
      (fun name arr ->
        match SMap.find_opt name b with
        | None -> false
        | Some arr' ->
            Array.for_all2
              (fun x y ->
                match (x, y) with
                | None, None -> true
                | Some p, Some q -> (
                    match (p, q) with
                    | Any, Any -> true
                    | Cst u, Cst v -> V.equal u v
                    | _ -> false)
                | _ -> false)
              arr arr')
      a
  in
  List.iter (fun (name, vals) -> flow name (List.map (fun v -> Cst v) vals)) init;
  let rec iterate () =
    let before = snapshot () in
    SMap.iter
      (fun _ (d : T.def) ->
        let arr = SMap.find d.T.def_name state in
        let bindings =
          List.fold_left
            (fun (acc, i) p ->
              match arr.(i) with
              | Some (Cst v) -> (SMap.add p v acc, i + 1)
              | _ -> (acc, i + 1))
            (SMap.empty, 0) d.T.params
          |> fst
        in
        walk bindings SSet.empty d.T.body)
      defs;
    if not (equal_state before state) then iterate ()
  in
  iterate ();
  SMap.map
    (fun arr ->
      Array.map (function Some c -> c | None -> Any) arr)
    state

(* --- positional argument dropping --------------------------------------- *)

(* [keep] maps a definition name to a bool per parameter position;
   rewrite every call site (and the init list) to the kept positions. *)
let filter_positions keep xs =
  List.filteri (fun i _ -> i >= Array.length keep || keep.(i)) xs

let rec drop_args (keeps : bool array SMap.t) (t : T.t) : T.t =
  match t with
  | T.Nil -> T.Nil
  | T.Prefix (a, p) -> T.Prefix (a, drop_args keeps p)
  | T.Choice ps -> T.Choice (List.map (drop_args keeps) ps)
  | T.Sum (x, lo, hi, p) -> T.Sum (x, lo, hi, drop_args keeps p)
  | T.Cond (c, p, q) -> T.Cond (c, drop_args keeps p, drop_args keeps q)
  | T.Call (f, args) ->
      let args =
        match SMap.find_opt f keeps with
        | Some keep -> filter_positions keep args
        | None -> args
      in
      T.Call (f, args)

(* --- dead parameters ----------------------------------------------------- *)

(* A parameter is needed iff it can reach a label or a branch: free in a
   Cond condition, free in an action argument, or free in an argument
   expression feeding a needed parameter of the callee. *)
let needed_params (defs : T.def SMap.t) : SSet.t SMap.t =
  let needed = ref (SMap.map (fun _ -> SSet.empty) defs) in
  let need_of f =
    Option.value (SMap.find_opt f !needed) ~default:SSet.empty
  in
  let changed = ref true in
  let add def xs =
    let cur = need_of def in
    let next = SSet.union cur xs in
    if not (SSet.equal cur next) then begin
      needed := SMap.add def next !needed;
      changed := true
    end
  in
  let rec walk def params shadowed (t : T.t) =
    let live acc e = SSet.diff (SSet.inter (fv SSet.empty e) params) shadowed |> SSet.union acc in
    match t with
    | T.Nil -> ()
    | T.Prefix (a, p) ->
        add def (List.fold_left live SSet.empty a.T.act_args);
        walk def params shadowed p
    | T.Choice ps -> List.iter (walk def params shadowed) ps
    | T.Sum (x, _, _, p) -> walk def params (SSet.add x shadowed) p
    | T.Cond (c, p, q) ->
        add def (live SSet.empty c);
        walk def params shadowed p;
        walk def params shadowed q
    | T.Call (f, args) ->
        let callee_needed = need_of f in
        let callee_params =
          match SMap.find_opt f defs with
          | Some d -> d.T.params
          | None -> []
        in
        List.iteri
          (fun i arg ->
            match List.nth_opt callee_params i with
            | Some p when SSet.mem p callee_needed ->
                add def (live SSet.empty arg)
            | _ -> ())
          args
  in
  while !changed do
    changed := false;
    SMap.iter
      (fun _ (d : T.def) ->
        walk d.T.def_name (SSet.of_list d.T.params) SSet.empty d.T.body)
      defs
  done;
  !needed

(* --- the pass ----------------------------------------------------------- *)

let def_map (defs : T.def list) =
  List.fold_left
    (fun acc (d : T.def) -> SMap.add d.T.def_name d acc)
    SMap.empty defs

let prune_defs (spec : S.t) : S.t * string list =
  let defs = Lint_pa.def_table spec in
  let roots = List.map fst spec.S.init in
  let reach = Lint_pa.reachable_from defs roots in
  let kept, dropped =
    List.partition (fun (d : T.def) -> SSet.mem d.T.def_name reach) spec.S.defs
  in
  ( { spec with S.defs = kept },
    List.map (fun (d : T.def) -> d.T.def_name) dropped )

let slice (spec : S.t) : t =
  let spec, dropped0 = prune_defs spec in
  let defs = def_map spec.S.defs in
  (* 2-3. constant parameters *)
  let csts = propagate_constants defs spec.S.init in
  let folded_params =
    SMap.fold
      (fun name arr acc ->
        match SMap.find_opt name defs with
        | None -> acc
        | Some d ->
            List.fold_left
              (fun (acc, i) p ->
                match arr.(i) with
                | Cst v -> ((name, p, v) :: acc, i + 1)
                | Any -> (acc, i + 1))
              (acc, 0) d.T.params
            |> fst)
      csts []
    |> List.rev
  in
  let keeps_cst =
    SMap.mapi
      (fun _name arr -> Array.map (function Cst _ -> false | Any -> true) arr)
      csts
  in
  let spec =
    {
      spec with
      S.defs =
        List.map
          (fun (d : T.def) ->
            let arr = SMap.find d.T.def_name csts in
            let env =
              List.fold_left
                (fun (acc, i) p ->
                  match arr.(i) with
                  | Cst v -> (SMap.add p v acc, i + 1)
                  | Any -> (acc, i + 1))
                (SMap.empty, 0) d.T.params
              |> fst
            in
            let body = subst_term env d.T.body in
            let body = drop_args keeps_cst body in
            {
              d with
              T.params =
                filter_positions (SMap.find d.T.def_name keeps_cst) d.T.params;
              T.body = fold_term body;
            })
          spec.S.defs;
      S.init =
        List.map
          (fun (name, vals) ->
            match SMap.find_opt name keeps_cst with
            | Some keep -> (name, filter_positions keep vals)
            | None -> (name, vals))
          spec.S.init;
    }
  in
  (* 5. dead parameters *)
  let defs = def_map spec.S.defs in
  let needed = needed_params defs in
  let keeps_dead =
    SMap.mapi
      (fun name (d : T.def) ->
        let need = Option.value (SMap.find_opt name needed) ~default:SSet.empty in
        Array.of_list (List.map (fun p -> SSet.mem p need) d.T.params))
      defs
  in
  let dropped_params =
    SMap.fold
      (fun name (d : T.def) acc ->
        let keep = SMap.find name keeps_dead in
        List.fold_left
          (fun (acc, i) p ->
            ((if keep.(i) then acc else (name, p) :: acc), i + 1))
          (acc, 0) d.T.params
        |> fst)
      defs []
    |> List.rev
  in
  let spec =
    {
      spec with
      S.defs =
        List.map
          (fun (d : T.def) ->
            {
              d with
              T.params =
                filter_positions (SMap.find d.T.def_name keeps_dead) d.T.params;
              T.body = drop_args keeps_dead d.T.body;
            })
          spec.S.defs;
      S.init =
        List.map
          (fun (name, vals) ->
            match SMap.find_opt name keeps_dead with
            | Some keep -> (name, filter_positions keep vals)
            | None -> (name, vals))
          spec.S.init;
    }
  in
  (* 6. final prune + sanity check *)
  let spec, dropped1 = prune_defs spec in
  S.validate spec;
  {
    spec;
    dropped_defs = dropped0 @ dropped1;
    folded_params;
    dropped_params;
  }

(* --- reporting ---------------------------------------------------------- *)

let diagnostics (sl : t) : R.diag list =
  let info ~where fmt =
    Format.kasprintf
      (fun message ->
        R.diag ~severity:R.Info ~code:"PA-SLICE" ~where "%s" message)
      fmt
  in
  List.map
    (fun name ->
      info ~where:("definition " ^ name)
        "definition %s is unreachable from the initial components" name)
    sl.dropped_defs
  @ List.map
      (fun (d, p, v) ->
        info ~where:("definition " ^ d) "parameter %s folded to constant %s" p
          (V.to_string v))
      sl.folded_params
  @ List.map
      (fun (d, p) ->
        info ~where:("definition " ^ d)
          "parameter %s sliced away (no label or branch depends on it)" p)
      sl.dropped_params
