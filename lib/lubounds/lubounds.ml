(* Location-sensitive LU bounds (Behrmann et al.'s static guard
   analysis): for every automaton, location and clock, the largest
   lower-bound constant L and upper-bound constant U the clock can
   still be compared against before it is next reset.

   The analysis is a backward fixpoint on each automaton's control
   graph.  Base facts: a guard atom [x >(=) e] on an edge out of [l]
   (or in [l]'s invariant) contributes [sup e] to [L(l, x)], an upper
   atom [x <(=) e] contributes to [U(l, x)], and an update that reads
   [x] before resetting it pins [L = U = cap] at the edge's source
   (reads observe the exact value up to the declared cap — the zone
   engine's case split and the discrete engine's saturation both rely
   on it).  Propagation: for every edge [l -> l'] that does not reset
   [x], [L(l, x) >= L(l', x)] (likewise U).  Bounds only grow and are
   drawn from a finite constant set, so round-robin sweeps terminate.

   Variable-valued bound expressions are closed by interval evaluation
   against the lint fixpoint ({!Lint_ta.intervals_of}); an expression
   the interval analysis cannot bound makes the clock's bound diverge
   and falls back to the declared cap (reported, so hblint can warn).
   Clocks appearing in constraints outside the diagonal-free
   conjunctive fragment (diagonals, disjunctions, disequalities,
   clock arithmetic) are conservatively pinned to their global bounds
   at every location — sound, and irrelevant to the zone engine, which
   rejects such models outright.

   Synchronisation needs no product construction: each component of a
   binary or broadcast macro edge contributes its guard atoms at its
   own source location, and the per-state bound is the maximum over
   the automata's current locations.  That maximum is sound for the
   product automaton: any constant compared against [x] on a product
   path before a reset of [x] belongs to some component, whose own
   backward propagation carries it to that component's current
   location (a reset by *another* component only makes the propagated
   bound larger than necessary, never smaller). *)

module E = Ta.Expr
module M = Ta.Model
module S = Ta.Semantics
module I = Lint_interval
module SMap = Map.Make (String)

type loc_bounds = { lb_l : int SMap.t; lb_u : int SMap.t }
(* absent key = -1 (the clock is never compared that way from here) *)

type t = {
  t_autos : (string * string array * loc_bounds array) list;
      (* automaton name, location names in model order, bounds per
         location (same order) *)
  t_clocks : string list; (* declaration order *)
  t_global_l : int SMap.t;
  t_global_u : int SMap.t;
  t_pinned : string list;
  t_diverging : (string * string) list; (* where, clock *)
  t_iters : int;
}

(* --- the constraint fragment, atom collection ----------------------- *)

exception Out_of_fragment

let rec expr_has_clock = function
  | E.Int _ | E.Var _ -> false
  | E.Clock _ -> true
  | E.Elem (_, i) -> expr_has_clock i
  | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
  | E.Min (a, b) | E.Max (a, b) ->
      expr_has_clock a || expr_has_clock b

let rec bexpr_has_clock = function
  | E.True | E.False -> false
  | E.Cmp (_, a, b) -> expr_has_clock a || expr_has_clock b
  | E.Not b -> bexpr_has_clock b
  | E.And (a, b) | E.Or (a, b) -> bexpr_has_clock a || bexpr_has_clock b

let rec clocks_of_e acc = function
  | E.Int _ | E.Var _ -> acc
  | E.Clock c -> if List.mem c acc then acc else c :: acc
  | E.Elem (_, i) -> clocks_of_e acc i
  | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
  | E.Min (a, b) | E.Max (a, b) ->
      clocks_of_e (clocks_of_e acc a) b

let rec clocks_of_b acc = function
  | E.True | E.False -> acc
  | E.Cmp (_, a, b) -> clocks_of_e (clocks_of_e acc a) b
  | E.Not b -> clocks_of_b acc b
  | E.And (a, b) | E.Or (a, b) -> clocks_of_b (clocks_of_b acc a) b

let negate_cmp = function
  | E.Lt -> E.Ge
  | E.Le -> E.Gt
  | E.Eq -> E.Ne
  | E.Ne -> E.Eq
  | E.Ge -> E.Lt
  | E.Gt -> E.Le

let rec negate = function
  | E.True -> E.False
  | E.False -> E.True
  | E.Cmp (cmp, a, b) -> E.Cmp (negate_cmp cmp, a, b)
  | E.Not b -> b
  | E.And (a, b) -> E.Or (negate a, negate b)
  | E.Or (a, b) -> E.And (negate a, negate b)

let flip_cmp = function
  | E.Lt -> E.Gt
  | E.Le -> E.Ge
  | E.Gt -> E.Lt
  | E.Ge -> E.Le
  | (E.Eq | E.Ne) as c -> c

(* (clock, is-lower-bound, bound expression); strictness is irrelevant
   to LU constants. *)
let atoms_of_cmp cmp c e =
  match cmp with
  | E.Lt | E.Le -> [ (c, false, e) ]
  | E.Gt | E.Ge -> [ (c, true, e) ]
  | E.Eq -> [ (c, false, e); (c, true, e) ]
  | E.Ne -> raise Out_of_fragment

(* Clock atoms of a conjunctive guard, negation pushed inward — the
   same fragment Zone.Sym compiles.  Raises {!Out_of_fragment} on
   diagonals, clocks under disjunction/disequality, or clocks inside
   arithmetic. *)
let atoms_of (b : E.b) : (string * bool * E.t) list =
  let rec go b acc =
    if not (bexpr_has_clock b) then acc
    else
      match b with
      | E.And (x, y) -> go y (go x acc)
      | E.Cmp (cmp, E.Clock c, e) when not (expr_has_clock e) ->
          atoms_of_cmp cmp c e @ acc
      | E.Cmp (cmp, e, E.Clock c) when not (expr_has_clock e) ->
          atoms_of_cmp (flip_cmp cmp) c e @ acc
      | E.Cmp _ | E.Or _ -> raise Out_of_fragment
      | E.Not inner -> go (negate inner) acc
      | E.True | E.False -> acc
  in
  List.rev (go b [])

(* Clocks an update sequence reads before (or without) resetting them
   — mirrors Zone.Sym.update_reads. *)
let update_reads (updates : M.update list) : string list =
  let reset = ref [] and reads = ref [] in
  List.iter
    (fun (u : M.update) ->
      match u with
      | M.Reset c -> if not (List.mem c !reset) then reset := c :: !reset
      | M.Assign (lhs, rhs) ->
          let exprs =
            rhs :: (match lhs with M.Element (_, i) -> [ i ] | M.Scalar _ -> [])
          in
          List.iter
            (fun e ->
              List.iter
                (fun c ->
                  if not (List.mem c !reset) && not (List.mem c !reads) then
                    reads := c :: !reads)
                (clocks_of_e [] e))
            exprs)
    updates;
  List.rev !reads

let edge_resets (updates : M.update list) : string list =
  List.filter_map
    (function M.Reset c -> Some c | M.Assign _ -> None)
    updates

(* --- the analysis --------------------------------------------------- *)

let analyze (m : M.t) : t =
  let _, globals = Lint_ta.intervals_of m in
  let caps =
    List.fold_left
      (fun acc (c : M.clock_decl) -> SMap.add c.M.clock_name c.M.cap acc)
      SMap.empty m.M.clocks
  in
  let cap_of c = Option.value (SMap.find_opt c caps) ~default:0 in
  let diverging = ref [] and pinned = ref [] in
  let global_l = ref SMap.empty and global_u = ref SMap.empty in
  let gbump tbl c v =
    tbl :=
      SMap.update c
        (function None -> Some v | Some w -> Some (max w v))
        !tbl
  in
  (* Static supremum of a bound expression over all reachable variable
     values, by interval evaluation against the lint fixpoint — the
     same closure Zone.Sym uses for its global bounds. *)
  let rec sup_itv (e : E.t) : I.t =
    match e with
    | E.Int n -> I.const n
    | E.Var x | E.Elem (x, _) -> (
        match SMap.find_opt (Lint_ta.vkey x) globals with
        | Some iv -> iv
        | None -> I.top)
    | E.Clock _ -> I.top (* atoms_of rejected it; never reached *)
    | E.Add (a, b) -> I.add (sup_itv a) (sup_itv b)
    | E.Sub (a, b) -> I.sub (sup_itv a) (sup_itv b)
    | E.Mul (a, b) -> I.mul (sup_itv a) (sup_itv b)
    | E.Div (a, b) -> I.div (sup_itv a) (sup_itv b)
    | E.Min (a, b) -> I.min_ (sup_itv a) (sup_itv b)
    | E.Max (a, b) -> I.max_ (sup_itv a) (sup_itv b)
  in
  let sup_of where clock e =
    let hi = (sup_itv e).I.hi in
    if hi = I.pos_inf then begin
      if not (List.mem (where, clock) !diverging) then
        diverging := (where, clock) :: !diverging;
      cap_of clock
    end
    else hi
  in
  let pin clocks =
    List.iter
      (fun c -> if not (List.mem c !pinned) then pinned := c :: !pinned)
      clocks
  in
  let iters = ref 0 in
  let do_auto (a : M.automaton) =
    let nloc = List.length a.M.locations in
    let idx = Hashtbl.create 8 in
    List.iteri
      (fun i (l : M.location) -> Hashtbl.replace idx l.M.loc_name i)
      a.M.locations;
    let loc_index name =
      match Hashtbl.find_opt idx name with
      | Some i -> i
      | None ->
          Format.kasprintf invalid_arg "Lubounds: unknown location %s in %s"
            name a.M.auto_name
    in
    let lb = Array.make nloc SMap.empty and ub = Array.make nloc SMap.empty in
    let bump tbl i c v =
      (* a negative constant never needs to survive extrapolation:
         trivially true (lower) or empties the zone (upper) *)
      if v >= 0 then begin
        tbl.(i) <-
          SMap.update c
            (function None -> Some v | Some w -> Some (max w v))
            tbl.(i);
        gbump (if tbl == lb then global_l else global_u) c v
      end
    in
    let contribute i where guard =
      match atoms_of guard with
      | atoms ->
          List.iter
            (fun (c, lower, e) ->
              bump (if lower then lb else ub) i c (sup_of where c e))
            atoms
      | exception Out_of_fragment -> pin (clocks_of_b [] guard)
    in
    List.iteri
      (fun i (l : M.location) ->
        contribute i
          (Printf.sprintf "%s.%s invariant" a.M.auto_name l.M.loc_name)
          l.M.invariant)
      a.M.locations;
    let edges =
      List.map
        (fun (e : M.edge) ->
          let src = loc_index e.M.src and dst = loc_index e.M.dst in
          let where =
            Printf.sprintf "%s: %s -> %s" a.M.auto_name e.M.src e.M.dst
          in
          contribute src where e.M.guard;
          List.iter
            (fun c ->
              (* a read observes the exact value up to the cap *)
              bump lb src c (cap_of c);
              bump ub src c (cap_of c))
            (update_reads e.M.updates);
          (src, dst, edge_resets e.M.updates))
        a.M.edges
    in
    (* backward fixpoint: bounds flow from dst to src along non-reset
       edges; round-robin sweeps until stable *)
    let changed = ref true in
    while !changed do
      changed := false;
      incr iters;
      List.iter
        (fun (src, dst, resets) ->
          let prop tbl =
            SMap.iter
              (fun c v ->
                if not (List.mem c resets) then
                  let cur =
                    Option.value (SMap.find_opt c tbl.(src)) ~default:(-1)
                  in
                  if v > cur then begin
                    tbl.(src) <- SMap.add c v tbl.(src);
                    changed := true
                  end)
              tbl.(dst)
          in
          prop lb;
          prop ub)
        edges
    done;
    let loc_names =
      Array.of_list (List.map (fun (l : M.location) -> l.M.loc_name) a.M.locations)
    in
    let bounds =
      Array.init nloc (fun i -> { lb_l = lb.(i); lb_u = ub.(i) })
    in
    (a.M.auto_name, loc_names, bounds)
  in
  let autos = List.map do_auto m.M.automata in
  (* pinned clocks: global bounds bumped to the cap (covers whatever
     the unsupported constraint compares against), every location set
     to the global pair *)
  let pinned_list = List.rev !pinned in
  List.iter
    (fun c ->
      gbump global_l c (cap_of c);
      gbump global_u c (cap_of c))
    pinned_list;
  let autos =
    if pinned_list = [] then autos
    else
      List.map
        (fun (name, locs, bounds) ->
          ( name,
            locs,
            Array.map
              (fun b ->
                List.fold_left
                  (fun b c ->
                    {
                      lb_l =
                        SMap.add c
                          (Option.value (SMap.find_opt c !global_l) ~default:(-1))
                          b.lb_l;
                      lb_u =
                        SMap.add c
                          (Option.value (SMap.find_opt c !global_u) ~default:(-1))
                          b.lb_u;
                    })
                  b pinned_list)
              bounds ))
        autos
  in
  {
    t_autos = autos;
    t_clocks = List.map (fun (c : M.clock_decl) -> c.M.clock_name) m.M.clocks;
    t_global_l = !global_l;
    t_global_u = !global_u;
    t_pinned = pinned_list;
    t_diverging = List.rev !diverging;
    t_iters = !iters;
  }

(* Memoised on the model term: the verify sweeps and the zone engine
   revisit the same model for several requirements and both LU modes. *)
let memo : (M.t, t) Lint_memo.t = Lint_memo.create ()
let analyze_cached m = Lint_memo.find memo m analyze
let cache_stats () = Lint_memo.stats memo

(* --- lookups --------------------------------------------------------- *)

let get tbl c = Option.value (SMap.find_opt c tbl) ~default:(-1)

let bounds t ~auto ~loc ~clock =
  match List.find_opt (fun (n, _, _) -> n = auto) t.t_autos with
  | None -> Format.kasprintf invalid_arg "Lubounds.bounds: unknown automaton %s" auto
  | Some (_, locs, per_loc) -> (
      let rec idx i =
        if i >= Array.length locs then
          Format.kasprintf invalid_arg
            "Lubounds.bounds: unknown location %s in %s" loc auto
        else if locs.(i) = loc then i
        else idx (i + 1)
      in
      let b = per_loc.(idx 0) in
      (get b.lb_l clock, get b.lb_u clock))

let global_bounds t clock = (get t.t_global_l clock, get t.t_global_u clock)

let tables t =
  List.map
    (fun (name, locs, per_loc) ->
      ( name,
        List.mapi
          (fun i loc ->
            let b = per_loc.(i) in
            ( loc,
              List.map
                (fun c -> (c, get b.lb_l c, get b.lb_u c))
                t.t_clocks ))
          (Array.to_list locs) ))
    t.t_autos

let pinned t = t.t_pinned
let diverging t = t.t_diverging
let iterations t = t.t_iters
let clocks t = t.t_clocks

(* --- index-table conversion for the engines -------------------------- *)

(* Per (automaton, location-index, clock-index): the largest constant
   the clock can still meet from there, max(L, U), -1 when never
   compared.  Indices follow Ta.Semantics' layout, so the table feeds
   Ta.Semantics.with_loc_caps directly. *)
let caps_for (net : S.t) (m : M.t) t : int array array array =
  Array.of_list
    (List.mapi
       (fun ia (a : M.automaton) ->
         let arr = Array.make (List.length a.M.locations) [||] in
         List.iter
           (fun (l : M.location) ->
             let li = S.loc_index net ~auto:ia l.M.loc_name in
             arr.(li) <-
               Array.of_list
                 (List.map
                    (fun clock ->
                      let lo, up =
                        bounds t ~auto:a.M.auto_name ~loc:l.M.loc_name ~clock
                      in
                      max lo up)
                    t.t_clocks))
           a.M.locations;
         arr)
       m.M.automata)

(* --- lint section ---------------------------------------------------- *)

let diagnostics (m : M.t) : Lint_report.diag list =
  let module R = Lint_report in
  let t = analyze_cached m in
  let diverge =
    List.map
      (fun (where, clock) ->
        R.diag ~severity:R.Warning ~code:"TA-LU-DIVERGE" ~where
          "bound on clock %s diverges: the interval analysis cannot close \
           the guard expression, so the location bound falls back to the \
           declared cap (statically unextrapolatable)"
          clock)
      t.t_diverging
  in
  let pin =
    List.map
      (fun clock ->
        R.diag ~severity:R.Info ~code:"TA-LU-PIN" ~where:clock
          "clock %s appears in a constraint outside the diagonal-free \
           conjunctive fragment; pinned to its global bounds at every \
           location"
          clock)
      t.t_pinned
  in
  let table =
    List.concat_map
      (fun (auto, locs) ->
        List.filter_map
          (fun clock ->
            let cells =
              List.filter_map
                (fun (loc, per_clock) ->
                  match
                    List.find_opt (fun (c, _, _) -> c = clock) per_clock
                  with
                  | Some (_, l, u) when l >= 0 || u >= 0 ->
                      Some (Printf.sprintf "%s L=%d U=%d" loc l u)
                  | _ -> None)
                locs
            in
            if cells = [] then None
            else
              Some
                (R.diag ~severity:R.Info ~code:"TA-LU"
                   ~where:(auto ^ "." ^ clock)
                   "location bounds: %s (elsewhere -1)"
                   (String.concat ", " cells)))
          t.t_clocks)
      (tables t)
  in
  diverge @ pin @ table
