(** Location-sensitive LU guard analysis (Behrmann et al.) over
    {!Ta.Model} networks.

    For every (automaton, location, clock) the analysis computes the
    largest lower-bound constant [L] and upper-bound constant [U] the
    clock can still be compared against before it is next reset, by a
    backward fixpoint on each automaton's control graph: guards and
    invariants contribute their constants at their source location,
    resets kill propagation, and variable-valued bounds are closed by
    interval evaluation against the lint fixpoint.  [-1] means "never
    compared that way from here".

    Synchronisation is handled per process, without building the
    product: each component of a macro edge contributes at its own
    source location, and the sound per-state bound is the maximum of
    the per-component bounds over the current location vector
    ({!Zone.Sym} composes it that way at extrapolation time, the
    discrete engine via {!Ta.Semantics.with_loc_caps}).

    Degenerate cases: a clock in a constraint outside the
    diagonal-free conjunctive fragment is conservatively pinned to its
    global bounds at every location; a bound expression the interval
    analysis cannot close makes the clock's bound diverge and falls
    back to the declared cap (both reported). *)

type t
(** The per-(automaton, location, clock) bound tables of one model. *)

val analyze : Ta.Model.t -> t

val analyze_cached : Ta.Model.t -> t
(** {!analyze} memoised on the model term ({!Lint_memo}): sweeps
    revisit the same model for several requirements and LU modes. *)

val cache_stats : unit -> int * int
(** (lookups, hits) of the {!analyze_cached} memo table. *)

val bounds : t -> auto:string -> loc:string -> clock:string -> int * int
(** [(L, U)] at one location; [-1] = never compared that way.
    @raise Invalid_argument on unknown automaton or location names. *)

val global_bounds : t -> string -> int * int
(** The location-insensitive maxima, i.e. the bounds global Extra_LU
    uses.  Per-location bounds never exceed these. *)

val tables : t -> (string * (string * (string * int * int) list) list) list
(** Every automaton (model order) with every location (model order)
    and every clock (declaration order): [(clock, L, U)]. *)

val pinned : t -> string list
(** Clocks pinned to their global bounds at every location because
    they appear in constraints outside the supported fragment. *)

val diverging : t -> (string * string) list
(** [(where, clock)] pairs whose bound expression the interval
    analysis could not close; the bound fell back to the declared
    cap. *)

val iterations : t -> int
(** Total backward-fixpoint sweeps across all automata (diagnostic). *)

val clocks : t -> string list
(** Clock names in declaration order. *)

val caps_for : Ta.Semantics.t -> Ta.Model.t -> t -> int array array array
(** Per (automaton index, location index, clock index): the largest
    constant the clock can still meet from that location,
    [max L U], [-1] when never compared — indexed to feed
    {!Ta.Semantics.with_loc_caps} directly.  [net] must be the
    compilation of [m]. *)

val diagnostics : Ta.Model.t -> Lint_report.diag list
(** The TA-LU lint section: info lines with the per-location bound
    tables (locations with any bound; the rest are -1), info lines for
    pinned clocks, and a warning per diverging bound. *)
