(** Discrete-event simulation engine.

    Events are closures scheduled at absolute simulated times; running the
    engine executes them in time order.  Timers can be cancelled (needed by
    heartbeat processes, which constantly re-arm timeouts). *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time 0; the seed (default 1) drives {!rng}. *)

val now : t -> float
(** Current simulated time. *)

val rng : t -> Rng.t
(** The engine's random stream. *)

type timer

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at time [now t +. delay].
    @raise Invalid_argument if [delay < 0]. *)

val at : t -> time:float -> (unit -> unit) -> timer
(** Schedule at an absolute time (not before [now]). *)

val cancel : timer -> unit
(** Cancelling a fired or already-cancelled timer is a no-op. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Execute events in time order until the queue drains, simulated time
    would exceed [until], or [max_events] events have run {e during this
    call} (the budget is per invocation, so successive [run]s each get a
    fresh allowance).  Events at the simulation horizon [until] itself
    still execute. *)

val events_executed : t -> int
(** Number of events executed so far (cancelled timers excluded). *)
