type event = { action : unit -> unit; mutable cancelled : bool; seq : int }

type t = {
  mutable clock : float;
  mutable queue : event Heap.t;
  mutable executed : int;
  mutable next_seq : int;
  rng : Rng.t;
}

type timer = event

let create ?(seed = 1L) () =
  {
    clock = 0.0;
    queue = Heap.empty;
    executed = 0;
    next_seq = 0;
    rng = Rng.create seed;
  }

let now t = t.clock
let rng t = t.rng

let at t ~time action =
  if time < t.clock then invalid_arg "Sim.Engine.at: time in the past";
  let ev = { action; cancelled = false; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  t.queue <- Heap.insert time ev t.queue;
  ev

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Sim.Engine.schedule: negative delay";
  at t ~time:(t.clock +. delay) action

let cancel ev = ev.cancelled <- true

let run ?(until = infinity) ?(max_events = max_int) t =
  (* [max_events] bounds this invocation, not the engine's lifetime:
     [executed] keeps accumulating across calls, so the budget is
     measured against its value on entry. *)
  let start = t.executed in
  let continue = ref true in
  while !continue do
    match Heap.pop t.queue with
    | None -> continue := false
    | Some ((time, ev), rest) ->
        if time > until then continue := false
        else begin
          t.queue <- rest;
          if not ev.cancelled then begin
            t.clock <- time;
            t.executed <- t.executed + 1;
            ev.action ();
            if t.executed - start >= max_events then continue := false
          end
        end
  done

let events_executed t = t.executed
