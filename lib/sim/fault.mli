(** Declarative, seed-reproducible fault schedules for simulations.

    A schedule is a list of timed fault events — node crashes and
    recoveries, link partitions with an explicit in-flight-message
    policy, burst-loss windows, duplication / reordering / delay-jitter
    windows — applied to a harness through a small injection hook API:
    the harness exposes its nodes, a link lookup returning {!Net.ctl}
    handles, and crash/recover callbacks, and {!apply} schedules the
    corresponding engine events.  All randomness comes from the engine's
    RNG, so a (schedule, seed) pair replays byte-identically. *)

type action =
  | Crash of int  (** node stops participating *)
  | Recover of int  (** a previously crashed node resumes *)
  | Partition of { isolated : int list; duration : float; drop_inflight : bool }
      (** every link between [isolated] and the rest goes down both ways
          for [duration]; [drop_inflight] flushes messages already in
          the air (otherwise they still arrive — the default channel
          assumption) *)
  | Burst of { duration : float; loss : float }
      (** all links drop each message with probability [loss] instead of
          consulting their loss model, for [duration] *)
  | Duplicate of { duration : float; prob : float }
      (** all links duplicate deliveries with probability [prob] *)
  | Reorder of { duration : float; prob : float }
      (** all links hold back messages past the delay window with
          probability [prob], letting later sends overtake *)
  | Jitter of { duration : float; extra : float }
      (** all links add uniform extra delay in [\[0, extra\]] —
          deliberately violating the round-trip bound *)

type event = { at : float; action : action }

type schedule = event list
(** Events need not be sorted; windows of the same kind should not
    overlap (the later window's end resets the knob for all). *)

val validate : schedule -> unit
(** @raise Invalid_argument on a negative time, non-positive duration,
    probability outside [\[0,1\]], negative jitter, or an empty
    partition. *)

val crash : at:float -> int -> event
val recover : at:float -> int -> event

val partition :
  at:float -> ?drop_inflight:bool -> duration:float -> int list -> event

val burst : at:float -> duration:float -> float -> event
val duplicate : at:float -> duration:float -> float -> event
val reorder : at:float -> duration:float -> float -> event
val jitter : at:float -> duration:float -> float -> event

val apply :
  Engine.t ->
  nodes:int list ->
  link:(src:int -> dst:int -> Net.ctl option) ->
  on_crash:(int -> unit) ->
  on_recover:(int -> unit) ->
  ?on_apply:(float -> action -> unit) ->
  schedule ->
  unit
(** Arm every event of the schedule on the engine.  [link ~src ~dst]
    returns the control handle of the directed link from [src] to [dst]
    ([None] if the harness has no such link); partitions and windows
    steer links through it, crashes and recoveries call the harness
    callbacks.  [on_apply] is invoked as each scheduled event fires
    (window ends are not reported).  Validates the schedule first.
    @raise Invalid_argument on an invalid schedule or an event naming a
    node outside [nodes]. *)

val pp_action : Format.formatter -> action -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> schedule -> unit

val action_to_json : action -> string
val to_json : schedule -> string
(** Deterministic single-line JSON rendering (used for campaign
    reports; equal schedules give byte-identical strings). *)
