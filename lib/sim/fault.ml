type action =
  | Crash of int
  | Recover of int
  | Partition of { isolated : int list; duration : float; drop_inflight : bool }
  | Burst of { duration : float; loss : float }
  | Duplicate of { duration : float; prob : float }
  | Reorder of { duration : float; prob : float }
  | Jitter of { duration : float; extra : float }

type event = { at : float; action : action }
type schedule = event list

let bad fmt = Format.kasprintf invalid_arg ("Sim.Fault: " ^^ fmt)

let validate_action = function
  | Crash _ | Recover _ -> ()
  | Partition { isolated; duration; _ } ->
      if isolated = [] then bad "empty partition";
      if duration <= 0.0 then bad "partition duration must be positive"
  | Burst { duration; loss } ->
      if duration <= 0.0 then bad "burst duration must be positive";
      if loss < 0.0 || loss > 1.0 then bad "burst loss outside [0,1]"
  | Duplicate { duration; prob } | Reorder { duration; prob } ->
      if duration <= 0.0 then bad "window duration must be positive";
      if prob < 0.0 || prob > 1.0 then bad "probability outside [0,1]"
  | Jitter { duration; extra } ->
      if duration <= 0.0 then bad "jitter duration must be positive";
      if extra < 0.0 then bad "negative jitter"

let validate schedule =
  List.iter
    (fun { at; action } ->
      if at < 0.0 then bad "negative event time";
      validate_action action)
    schedule

let crash ~at who = { at; action = Crash who }
let recover ~at who = { at; action = Recover who }

let partition ~at ?(drop_inflight = false) ~duration isolated =
  { at; action = Partition { isolated; duration; drop_inflight } }

let burst ~at ~duration loss = { at; action = Burst { duration; loss } }
let duplicate ~at ~duration prob = { at; action = Duplicate { duration; prob } }
let reorder ~at ~duration prob = { at; action = Reorder { duration; prob } }
let jitter ~at ~duration extra = { at; action = Jitter { duration; extra } }

let nodes_of_action = function
  | Crash who | Recover who -> [ who ]
  | Partition { isolated; _ } -> isolated
  | Burst _ | Duplicate _ | Reorder _ | Jitter _ -> []

let apply engine ~nodes ~link ~on_crash ~on_recover ?on_apply schedule =
  validate schedule;
  List.iter
    (fun { at = _; action } ->
      List.iter
        (fun who ->
          if not (List.mem who nodes) then bad "unknown node %d" who)
        (nodes_of_action action))
    schedule;
  let each_link f =
    List.iter
      (fun src ->
        List.iter
          (fun dst ->
            if src <> dst then Option.iter f (link ~src ~dst))
          nodes)
      nodes
  in
  let cut_links isolated f =
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if not (List.mem b isolated) then begin
              Option.iter f (link ~src:a ~dst:b);
              Option.iter f (link ~src:b ~dst:a)
            end)
          nodes)
      isolated
  in
  let window ~at ~duration set reset =
    ignore (Engine.at engine ~time:at (fun () -> each_link set));
    ignore (Engine.at engine ~time:(at +. duration) (fun () -> each_link reset))
  in
  List.iter
    (fun { at; action } ->
      (match on_apply with
      | Some f -> ignore (Engine.at engine ~time:at (fun () -> f at action))
      | None -> ());
      match action with
      | Crash who -> ignore (Engine.at engine ~time:at (fun () -> on_crash who))
      | Recover who ->
          ignore (Engine.at engine ~time:at (fun () -> on_recover who))
      | Partition { isolated; duration; drop_inflight } ->
          ignore
            (Engine.at engine ~time:at (fun () ->
                 cut_links isolated (fun c ->
                     Net.ctl_set_up c ~drop_inflight false)));
          ignore
            (Engine.at engine ~time:(at +. duration) (fun () ->
                 cut_links isolated (fun c ->
                     Net.ctl_set_up c ~drop_inflight:false true)))
      | Burst { duration; loss } ->
          window ~at ~duration
            (fun c -> Net.ctl_burst c (Some loss))
            (fun c -> Net.ctl_burst c None)
      | Duplicate { duration; prob } ->
          window ~at ~duration
            (fun c -> Net.ctl_duplicate c prob)
            (fun c -> Net.ctl_duplicate c 0.0)
      | Reorder { duration; prob } ->
          window ~at ~duration
            (fun c -> Net.ctl_reorder c prob)
            (fun c -> Net.ctl_reorder c 0.0)
      | Jitter { duration; extra } ->
          window ~at ~duration
            (fun c -> Net.ctl_jitter c extra)
            (fun c -> Net.ctl_jitter c 0.0))
    schedule

(* Deterministic float rendering shared by pp and JSON: shortest decimal
   form that round-trips would vary in style, so fix on %.12g. *)
let fstr x = Printf.sprintf "%.12g" x

let pp_action ppf = function
  | Crash who -> Format.fprintf ppf "crash p[%d]" who
  | Recover who -> Format.fprintf ppf "recover p[%d]" who
  | Partition { isolated; duration; drop_inflight } ->
      Format.fprintf ppf "partition {%s} for %s%s"
        (String.concat "," (List.map string_of_int isolated))
        (fstr duration)
        (if drop_inflight then " (drop in-flight)" else "")
  | Burst { duration; loss } ->
      Format.fprintf ppf "burst loss %s for %s" (fstr loss) (fstr duration)
  | Duplicate { duration; prob } ->
      Format.fprintf ppf "duplicate p=%s for %s" (fstr prob) (fstr duration)
  | Reorder { duration; prob } ->
      Format.fprintf ppf "reorder p=%s for %s" (fstr prob) (fstr duration)
  | Jitter { duration; extra } ->
      Format.fprintf ppf "jitter +%s for %s" (fstr extra) (fstr duration)

let pp_event ppf { at; action } =
  Format.fprintf ppf "t=%-6s %a" (fstr at) pp_action action

let pp ppf schedule =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_event e) schedule;
  Format.fprintf ppf "@]"

let action_to_json = function
  | Crash who -> Printf.sprintf {|{"type":"crash","node":%d}|} who
  | Recover who -> Printf.sprintf {|{"type":"recover","node":%d}|} who
  | Partition { isolated; duration; drop_inflight } ->
      Printf.sprintf
        {|{"type":"partition","isolated":[%s],"duration":%s,"drop_inflight":%b}|}
        (String.concat "," (List.map string_of_int isolated))
        (fstr duration) drop_inflight
  | Burst { duration; loss } ->
      Printf.sprintf {|{"type":"burst","duration":%s,"loss":%s}|}
        (fstr duration) (fstr loss)
  | Duplicate { duration; prob } ->
      Printf.sprintf {|{"type":"duplicate","duration":%s,"prob":%s}|}
        (fstr duration) (fstr prob)
  | Reorder { duration; prob } ->
      Printf.sprintf {|{"type":"reorder","duration":%s,"prob":%s}|}
        (fstr duration) (fstr prob)
  | Jitter { duration; extra } ->
      Printf.sprintf {|{"type":"jitter","duration":%s,"extra":%s}|}
        (fstr duration) (fstr extra)

let event_to_json { at; action } =
  Printf.sprintf {|{"at":%s,"action":%s}|} (fstr at) (action_to_json action)

let to_json schedule =
  "[" ^ String.concat "," (List.map event_to_json schedule) ^ "]"
