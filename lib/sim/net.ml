type drop_kind = Stochastic | Down

type 'a t = {
  engine : Engine.t;
  model : Loss.t;
  loss_state : Loss.state;
  delay_lo : float;
  delay_hi : float;
  deliver : 'a -> unit;
  on_drop : (drop_kind -> 'a -> unit) option;
  on_late : ('a -> unit) option;
  mutable is_up : bool;
  mutable epoch : int; (* bumped when in-flight messages are flushed *)
  mutable burst : float option; (* loss override during a burst window *)
  mutable dup : float;
  mutable reorder : float;
  mutable jitter : float;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int; (* stochastic: loss model or burst window *)
  mutable dropped : int; (* down link + flushed in-flight *)
  mutable duplicates : int;
  mutable late : int; (* delivered past the nominal delay bound *)
}

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Sim.Net.%s: probability outside [0,1]" name)

let create engine ?(loss = 0.0) ?model ?on_drop ?on_late ~delay_lo ~delay_hi
    ~deliver () =
  if delay_lo < 0.0 || delay_hi < delay_lo then
    invalid_arg "Sim.Net.create: bad delay range";
  if loss < 0.0 || loss > 1.0 then invalid_arg "Sim.Net.create: bad loss rate";
  let model = match model with Some m -> m | None -> Loss.bernoulli loss in
  Loss.validate model;
  {
    engine;
    model;
    loss_state = Loss.start model;
    delay_lo;
    delay_hi;
    deliver;
    on_drop;
    on_late;
    is_up = true;
    epoch = 0;
    burst = None;
    dup = 0.0;
    reorder = 0.0;
    jitter = 0.0;
    sent = 0;
    delivered = 0;
    lost = 0;
    dropped = 0;
    duplicates = 0;
    late = 0;
  }

(* A delivery scheduled before a flush must not reach the application:
   it carries the epoch it was sent under and is counted as dropped when
   it fires into a newer one. *)
let schedule_delivery t msg =
  let rng = Engine.rng t.engine in
  let delay =
    if t.reorder > 0.0 && Rng.bool rng t.reorder then
      (* held back past the nominal window, so later sends overtake it *)
      Rng.uniform rng t.delay_hi (2.0 *. t.delay_hi)
    else Rng.uniform rng t.delay_lo t.delay_hi
  in
  let delay =
    if t.jitter > 0.0 then delay +. Rng.uniform rng 0.0 t.jitter else delay
  in
  (* Reordering and jitter can push a message past the delay bound the
     protocol's timers assume; flag such deliveries so monitors can tell
     a broken channel assumption from a genuine requirement violation. *)
  let is_late = delay > t.delay_hi +. 1e-9 in
  let epoch = t.epoch in
  ignore
    (Engine.schedule t.engine ~delay (fun () ->
         if epoch = t.epoch then begin
           t.delivered <- t.delivered + 1;
           if is_late then begin
             t.late <- t.late + 1;
             Option.iter (fun f -> f msg) t.on_late
           end;
           t.deliver msg
         end
         else begin
           t.dropped <- t.dropped + 1;
           Option.iter (fun f -> f Down msg) t.on_drop
         end))

let stochastic_drop t =
  let rng = Engine.rng t.engine in
  match t.burst with
  | Some p -> Rng.bool rng p
  | None -> Loss.drops t.model t.loss_state rng

let send t msg =
  t.sent <- t.sent + 1;
  if not t.is_up then begin
    t.dropped <- t.dropped + 1;
    Option.iter (fun f -> f Down msg) t.on_drop
  end
  else if stochastic_drop t then begin
    t.lost <- t.lost + 1;
    Option.iter (fun f -> f Stochastic msg) t.on_drop
  end
  else begin
    schedule_delivery t msg;
    if t.dup > 0.0 && Rng.bool (Engine.rng t.engine) t.dup then begin
      t.duplicates <- t.duplicates + 1;
      schedule_delivery t msg
    end
  end

let flush_in_flight t = t.epoch <- t.epoch + 1

let up t = t.is_up

let set_up ?(drop_inflight = false) t b =
  t.is_up <- b;
  if (not b) && drop_inflight then flush_in_flight t

let set_burst t p =
  Option.iter (check_prob "set_burst") p;
  t.burst <- p

let set_duplicate t p =
  check_prob "set_duplicate" p;
  t.dup <- p

let set_reorder t p =
  check_prob "set_reorder" p;
  t.reorder <- p

let set_jitter t j =
  if j < 0.0 then invalid_arg "Sim.Net.set_jitter: negative jitter";
  t.jitter <- j

let sent t = t.sent
let delivered t = t.delivered
let lost t = t.lost
let dropped t = t.dropped
let duplicates t = t.duplicates
let late t = t.late

(* Type-erased fault-control view, so injectors need not know the
   message type. *)
type ctl = {
  c_set_up : drop_inflight:bool -> bool -> unit;
  c_set_burst : float option -> unit;
  c_set_duplicate : float -> unit;
  c_set_reorder : float -> unit;
  c_set_jitter : float -> unit;
}

let ctl t =
  {
    c_set_up = (fun ~drop_inflight b -> set_up ~drop_inflight t b);
    c_set_burst = set_burst t;
    c_set_duplicate = set_duplicate t;
    c_set_reorder = set_reorder t;
    c_set_jitter = set_jitter t;
  }

let ctl_set_up c ~drop_inflight up = c.c_set_up ~drop_inflight up
let ctl_burst c p = c.c_set_burst p
let ctl_duplicate c p = c.c_set_duplicate p
let ctl_reorder c p = c.c_set_reorder p
let ctl_jitter c j = c.c_set_jitter j
