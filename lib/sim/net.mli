(** Lossy, delaying point-to-point links for simulations.

    Matches the paper's channel assumptions: a message is either lost or
    delivered within a bounded delay; the bound [tmin] of the protocols is
    an upper bound on the *round-trip* delay, so each direction of a link
    is given half the budget by the callers.

    Beyond the stochastic loss model, a link exposes fault-injection
    knobs ({!set_up}, {!set_burst}, {!set_duplicate}, {!set_reorder},
    {!set_jitter}) that deliberately break those assumptions — the
    adversarial schedules under which the paper's requirements fail.
    Two kinds of non-delivery are accounted separately: {!lost} counts
    stochastic channel loss (the loss model, or a burst window), while
    {!dropped} counts messages swallowed by a down link or flushed while
    in flight, so reliability experiments do not over-count channel loss
    during partitions. *)

type 'a t

type drop_kind =
  | Stochastic  (** loss model or burst window — counted by {!lost} *)
  | Down  (** down link or in-flight flush — counted by {!dropped} *)

val create :
  Engine.t ->
  ?loss:float ->
  ?model:Loss.t ->
  ?on_drop:(drop_kind -> 'a -> unit) ->
  ?on_late:('a -> unit) ->
  delay_lo:float ->
  delay_hi:float ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [create engine ~loss ~delay_lo ~delay_hi ~deliver ()] builds a
    unidirectional link.  Each sent message is dropped according to the
    loss model — [model] if given, otherwise Bernoulli with probability
    [loss] (default 0) — and otherwise delivered after a uniform random
    delay in [\[delay_lo, delay_hi\]].  [on_drop] is called (with the
    kind) whenever a message is lost or dropped; [on_late] is called
    just before delivering a message whose drawn delay exceeded
    [delay_hi] — possible only under {!set_reorder} / {!set_jitter},
    i.e. when the channel's delay assumption was deliberately broken.
    @raise Invalid_argument on a negative delay, [delay_hi < delay_lo], or
    an invalid loss model. *)

val send : 'a t -> 'a -> unit

val up : 'a t -> bool

val set_up : ?drop_inflight:bool -> 'a t -> bool -> unit
(** Taking a link down silently drops everything sent afterwards; with
    [~drop_inflight:true] messages already in flight are flushed too
    (both are counted by {!dropped}, not {!lost}).  By default in-flight
    messages still arrive — the paper's channel-crash model. *)

val flush_in_flight : 'a t -> unit
(** Discard every message currently in flight (counted by {!dropped}
    when its delivery would have fired).  Delivery of later sends is
    unaffected. *)

val set_burst : 'a t -> float option -> unit
(** [set_burst t (Some p)] opens a burst-loss window: until the next
    [set_burst t None], each sent message is dropped with probability [p]
    {e instead of} consulting the loss model (the model's channel state
    is left untouched).  Burst drops count as {!lost}.
    @raise Invalid_argument if [p] is outside [\[0,1\]]. *)

val set_duplicate : 'a t -> float -> unit
(** Probability that a delivered message is delivered twice, the copy
    with an independently drawn delay (default 0).
    @raise Invalid_argument outside [\[0,1\]]. *)

val set_reorder : 'a t -> float -> unit
(** Probability that a message is held back past the nominal delay
    window — its delay is drawn from [\[delay_hi, 2*delay_hi\]] — so
    later sends can overtake it (default 0).
    @raise Invalid_argument outside [\[0,1\]]. *)

val set_jitter : 'a t -> float -> unit
(** Extra delay jitter: each delivery gets an additional uniform delay in
    [\[0, jitter\]] on top of its drawn delay (default 0).  Deliberately
    violates the [delay_hi] bound — an adversarial fault.
    @raise Invalid_argument on a negative bound. *)

val sent : 'a t -> int
(** Messages handed to the link. *)

val delivered : 'a t -> int
(** Messages actually delivered so far (duplicate copies included). *)

val lost : 'a t -> int
(** Messages dropped stochastically — by the loss model or a burst
    window.  Down-link drops are {e not} counted here; see {!dropped}. *)

val dropped : 'a t -> int
(** Messages swallowed because the link was down, or flushed in flight
    by {!flush_in_flight} / [set_up ~drop_inflight:true].  A flushed
    message is counted when its delivery would have fired. *)

val duplicates : 'a t -> int
(** Extra copies injected by {!set_duplicate}. *)

val late : 'a t -> int
(** Deliveries whose delay exceeded the nominal [delay_hi] bound (due to
    reordering or jitter). *)

(** {2 Fault-control handles}

    A type-erased view of the fault knobs, so a fault injector can steer
    links of any message type (see {!Fault}). *)

type ctl

val ctl : 'a t -> ctl
val ctl_set_up : ctl -> drop_inflight:bool -> bool -> unit
val ctl_burst : ctl -> float option -> unit
val ctl_duplicate : ctl -> float -> unit
val ctl_reorder : ctl -> float -> unit
val ctl_jitter : ctl -> float -> unit
