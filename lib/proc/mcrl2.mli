(** Export of process-algebra specifications to mCRL2 syntax.

    Produces a textual model a downstream user can load into the mCRL2
    toolset (the one the paper used): action declarations, one [proc]
    equation per definition, and an [init] line wiring the parallel
    composition through [hide], [allow] and [comm].

    Action argument sorts and definition parameter sorts come from the
    unified signatures of {!Typing.infer}, so every occurrence of an
    action agrees on one declaration; positions the unifier left
    unconstrained default to [Int].  If the specification is ill-sorted
    (a {!Typing} conflict — surfaced as an error by the lint pass), the
    exporter stays total and prints the first binding.  Actions never
    used with arguments are declared plain.  Finite sums
    [sum x:[lo..hi]] are exported as
    [sum x: Int . (lo <= x && x <= hi) -> ...]. *)

val pp : Format.formatter -> Spec.t -> unit
val to_string : Spec.t -> string
