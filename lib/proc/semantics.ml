type component = { proc : Term.t; env : Pexpr.env }
type state = component array

type label = Tick | Act of string * Value.t list

let tau = Act ("tau", [])

let label_name = function Tick -> "tick" | Act (name, _) -> name

let pp_label ppf = function
  | Tick -> Format.pp_print_string ppf "tick"
  | Act (name, []) -> Format.pp_print_string ppf name
  | Act (name, args) ->
      Format.fprintf ppf "%s(%a)" name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Value.pp)
        args

exception Unguarded_recursion of string

(* Maximum number of Call unfoldings along one step derivation; guarded
   specifications never get anywhere near this. *)
let max_unfold = 10_000

let find_def defs name =
  match Hashtbl.find_opt defs name with
  | Some d -> d
  | None -> invalid_arg ("Proc.Semantics: unknown definition " ^ name)

(* Canonical form of a component: unfold top-level definition calls so
   that syntactically different continuations of the same process state
   (e.g. [Call ("X", [])] versus the body of [X]) are identified. *)
let rec normalize defs fuel { proc; env } =
  if fuel <= 0 then raise (Unguarded_recursion "definition unfolding limit");
  match proc with
  | Term.Call (name, args) ->
      let d = find_def defs name in
      let values = List.map (Pexpr.eval env) args in
      normalize defs (fuel - 1)
        { proc = d.Term.body; env = List.combine d.Term.params values }
  | _ -> { proc; env }

(* Local steps of a sequential component: all (action name, data, next
   component) triples it offers. *)
let local_steps defs { proc; env } =
  let find_def name = find_def defs name in
  let acc = ref [] in
  let rec go fuel proc env =
    if fuel <= 0 then raise (Unguarded_recursion "definition unfolding limit");
    match (proc : Term.t) with
    | Term.Nil -> ()
    | Term.Prefix (a, p) ->
        let args = List.map (Pexpr.eval env) a.Term.act_args in
        acc := (a.Term.act_name, args, normalize defs max_unfold { proc = p; env }) :: !acc
    | Term.Choice ps -> List.iter (fun p -> go fuel p env) ps
    | Term.Sum (x, lo, hi, p) ->
        for v = lo to hi do
          go fuel p ((x, Value.Int v) :: env)
        done
    | Term.Cond (c, p, q) ->
        if Pexpr.eval_bool env c then go fuel p env else go fuel q env
    | Term.Call (name, args) ->
        let d = find_def name in
        let values = List.map (Pexpr.eval env) args in
        let env' = List.combine d.Term.params values in
        go (fuel - 1) d.Term.body env'
  in
  go max_unfold proc env;
  List.rev !acc

(* A specification compiled to the lookup tables the step relation
   needs.  Kept abstract so alternative successor functions (the
   partial-order reducer in lib/por) can share the exact step
   construction instead of re-deriving it. *)
type compiled = {
  spec : Spec.t;
  defs : (string, Term.def) Hashtbl.t;
  allow : (string, unit) Hashtbl.t;
  hide : (string, unit) Hashtbl.t;
  (* Communication lookup: action name -> (partner name, result) list, in
     both directions. *)
  comm : (string, string * string) Hashtbl.t;
  initial : state;
}

let compile (spec : Spec.t) : compiled =
  Spec.validate spec;
  let defs = Hashtbl.create 16 in
  List.iter
    (fun (d : Term.def) -> Hashtbl.replace defs d.Term.def_name d)
    spec.Spec.defs;
  let allow = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace allow a ()) spec.Spec.allow;
  let hide = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace hide a ()) spec.Spec.hide;
  let comm = Hashtbl.create 16 in
  List.iter
    (fun (s, r, res) ->
      Hashtbl.add comm s (r, res);
      Hashtbl.add comm r (s, res))
    spec.Spec.comms;
  let initial : state =
    Array.of_list
      (List.map
         (fun (name, values) ->
           let d =
             match Hashtbl.find_opt defs name with
             | Some d -> d
             | None -> invalid_arg ("Proc.Semantics: unknown definition " ^ name)
           in
           { proc = d.Term.body; env = List.combine d.Term.params values })
         spec.Spec.init)
  in
  { spec; defs; allow; hide; comm; initial }

let spec_of c = c.spec
let initial_of c = c.initial
let component_steps c comp = local_steps c.defs comp
let component_term comp = comp.proc
let is_visible c name = Hashtbl.mem c.allow name
let is_hidden c name = Hashtbl.mem c.hide name
let comm_partners c name = Hashtbl.find_all c.comm name
let is_comm c name = Hashtbl.mem c.comm name

(* Successor construction from pre-computed local step menus.  [locals]
   must be [Array.map (component_steps c) s]; exposed so callers that
   already computed the menus (the ample-set reducer) avoid doing it
   twice. *)
let successors_from (c : compiled) (locals : (string * Value.t list * component) list array)
    (s : state) : (label * state) list =
  let n = Array.length s in
  let visible name = Hashtbl.mem c.allow name in
  let hidden name = Hashtbl.mem c.hide name in
  let acc = ref [] in
  let emit label i comp' =
    let s' = Array.copy s in
    s'.(i) <- comp';
    acc := (label, s') :: !acc
  in
  let emit2 label i ci j cj =
    let s' = Array.copy s in
    s'.(i) <- ci;
    s'.(j) <- cj;
    acc := (label, s') :: !acc
  in
  (* Independent (non-communicating) visible or hidden actions. *)
  Array.iteri
    (fun i steps ->
      List.iter
        (fun (name, args, comp') ->
          if name <> Spec.tick_name && not (Hashtbl.mem c.comm name) then begin
            if hidden name then emit tau i comp'
            else if visible name then emit (Act (name, args)) i comp'
            (* otherwise blocked *)
          end)
        steps)
    locals;
  (* Binary communications: for i < j, match any send/recv pair with
     equal data, in either direction. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      List.iter
        (fun (name_i, args_i, ci) ->
          List.iter
            (fun ((partner, result) : string * string) ->
              List.iter
                (fun (name_j, args_j, cj) ->
                  if name_j = partner && args_i = args_j then begin
                    if hidden result then emit2 tau i ci j cj
                    else if visible result then
                      emit2 (Act (result, args_i)) i ci j cj
                  end)
                locals.(j))
            (Hashtbl.find_all c.comm name_i))
        locals.(i)
    done
  done;
  (* Global tick: every component must offer one. *)
  let ticks =
    Array.map
      (fun steps ->
        List.filter_map
          (fun (name, _, comp') ->
            if name = Spec.tick_name then Some comp' else None)
          steps)
      locals
  in
  if Array.for_all (fun l -> l <> []) ticks then begin
    (* Cartesian product over the (usually singleton) tick choices. *)
    let rec expand i chosen =
      if i = n then begin
        let s' = Array.of_list (List.rev chosen) in
        acc := (Tick, s') :: !acc
      end
      else List.iter (fun c -> expand (i + 1) (c :: chosen)) ticks.(i)
    in
    if n = 0 then () else expand 0 []
  end;
  List.rev !acc

let successors_of c s = successors_from c (Array.map (local_steps c.defs) s) s

let pp_state ppf (s : state) =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf c ->
         Term.pp ppf c.proc))
    (Array.to_list s)

let equal_state (a : state) (b : state) = a = b
let hash_state (s : state) = Hashtbl.hash_param 128 256 s

let system_of (c : compiled) : (state, label) Mc.System.t =
  (module struct
    type nonrec state = state
    type nonrec label = label

    let initial = c.initial
    let successors = successors_of c
    let equal_state = equal_state
    let hash_state = hash_state
    let pp_state = pp_state
    let pp_label = pp_label
  end)

let system (spec : Spec.t) : (state, label) Mc.System.t = system_of (compile spec)

let lts ?max_states ?(domains = 1) spec =
  let sys = system spec in
  let space =
    if domains <= 1 then Mc.Explore.space ?max_states sys
    else Mc.Pexplore.space ?max_states ~domains sys
  in
  if not space.Mc.Explore.complete then
    failwith "Proc.Semantics.lts: state bound exceeded";
  space.Mc.Explore.lts
