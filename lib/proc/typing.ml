(* Unification-based sort inference over specifications.

   Three ground sorts (Int, Bool, List(Int)) and a standard union-find
   over type variables.  Every definition parameter and every action
   argument position owns one variable; walking the bodies adds equality
   constraints.  Conflicts are recorded (with the first binding kept)
   instead of raised, so the pass always produces a total signature
   table, plus the deterministic list of everything that went wrong. *)

type sort = Int | Bool | Int_list

let sort_name = function
  | Int -> "Int"
  | Bool -> "Bool"
  | Int_list -> "List(Int)"

type ty = ty_desc ref
and ty_desc = Known of sort | Link of ty | Free of int

type signatures = {
  def_params : (string * sort option array) list;
  actions : (string * sort option array) list;
}

type error_kind = Sort_clash | Arity_conflict | Unbound_var

type error = {
  err_kind : error_kind;
  err_context : string;
  err_message : string;
}

let pp_error ppf e =
  Format.fprintf ppf "%s: %s" e.err_context e.err_message

(* --- the unifier ---------------------------------------------------- *)

let fresh =
  let n = ref 0 in
  fun () ->
    incr n;
    ref (Free !n)

let rec repr (t : ty) =
  match !t with
  | Link u ->
      let r = repr u in
      t := Link r;
      r
  | Known _ | Free _ -> t

(* [unify] returns [Some (s1, s2)] on a clash, leaving the first binding
   in place. *)
let unify a b =
  let a = repr a and b = repr b in
  if a == b then None
  else
    match (!a, !b) with
    | Known s1, Known s2 -> if s1 = s2 then None else Some (s1, s2)
    | Free _, _ ->
        a := Link b;
        None
    | _, Free _ ->
        b := Link a;
        None
    | Link _, _ | _, Link _ -> assert false (* reprs are not links *)

let known s : ty = ref (Known s)

let resolve t =
  match !(repr t) with
  | Known s -> Some s
  | Free _ -> None
  | Link _ -> assert false

let dominant = function Some s -> s | None -> Int

(* --- inference ------------------------------------------------------ *)

let sort_of_value = function
  | Value.Bool _ -> Bool
  | Value.Int _ -> Int
  | Value.List _ -> Int_list

type state = {
  defs : (string, ty array) Hashtbl.t;
  acts : (string, ty array) Hashtbl.t;
  mutable errors : error list;  (* reversed *)
}

let report st kind context fmt =
  Format.kasprintf
    (fun msg ->
      st.errors <-
        { err_kind = kind; err_context = context; err_message = msg }
        :: st.errors)
    fmt

let constrain st context what t sort =
  match unify t (known sort) with
  | None -> ()
  | Some (s1, s2) ->
      report st Sort_clash context "%s: %s is not compatible with %s" what
        (sort_name s1) (sort_name s2)

let equate st context what t1 t2 =
  match unify t1 t2 with
  | None -> ()
  | Some (s1, s2) ->
      report st Sort_clash context "%s: %s is not compatible with %s" what
        (sort_name s1) (sort_name s2)

(* Expression typing: returns the expression's sort variable under an
   environment mapping bound names to variables. *)
let rec infer_expr st context env (e : Pexpr.t) : ty =
  let sub = infer_expr st context env in
  let describe sub_e = Format.asprintf "in %a" Pexpr.pp sub_e in
  let want sort sub_e =
    constrain st context (describe sub_e) (sub sub_e) sort
  in
  match e with
  | Pexpr.Const v -> known (sort_of_value v)
  | Pexpr.Var x -> (
      match List.assoc_opt x env with
      | Some t -> t
      | None ->
          report st Unbound_var context "unbound variable %s" x;
          fresh ())
  | Pexpr.Add (a, b) | Pexpr.Sub (a, b) | Pexpr.Mul (a, b) | Pexpr.Div (a, b)
    ->
      want Int a;
      want Int b;
      known Int
  | Pexpr.Eq (a, b) ->
      equate st context (describe e) (sub a) (sub b);
      known Bool
  | Pexpr.Lt (a, b) | Pexpr.Le (a, b) ->
      want Int a;
      want Int b;
      known Bool
  | Pexpr.And (a, b) | Pexpr.Or (a, b) ->
      want Bool a;
      want Bool b;
      known Bool
  | Pexpr.Not a ->
      want Bool a;
      known Bool
  | Pexpr.If (c, a, b) ->
      want Bool c;
      let ta = sub a and tb = sub b in
      equate st context (describe e) ta tb;
      ta
  | Pexpr.Nth (l, i) ->
      want Int_list l;
      want Int i;
      known Int
  | Pexpr.Set_nth (l, i, x) ->
      want Int_list l;
      want Int i;
      want Int x;
      known Int_list
  | Pexpr.Min_list l | Pexpr.Len l ->
      want Int_list l;
      known Int
  | Pexpr.Repl (n, x) ->
      want Int n;
      want Int x;
      known Int_list

let infer (spec : Spec.t) : signatures * error list =
  let st =
    { defs = Hashtbl.create 16; acts = Hashtbl.create 32; errors = [] }
  in
  (* One variable per definition parameter.  Duplicate definitions keep
     the first variable set (the duplicate itself is a structural error
     reported by the lint pass, not here). *)
  List.iter
    (fun (d : Term.def) ->
      if not (Hashtbl.mem st.defs d.Term.def_name) then
        Hashtbl.add st.defs d.Term.def_name
          (Array.init (List.length d.Term.params) (fun _ -> fresh ())))
    spec.Spec.defs;
  let act_tys context name arity =
    match Hashtbl.find_opt st.acts name with
    | Some tys when Array.length tys = arity -> Some tys
    | Some tys ->
        report st Arity_conflict context
          "action %s used with %d arguments, elsewhere %d" name arity
          (Array.length tys);
        None
    | None ->
        let tys = Array.init arity (fun _ -> fresh ()) in
        Hashtbl.add st.acts name tys;
        Some tys
  in
  (* Seed parameter sorts from the initial components. *)
  List.iter
    (fun (name, values) ->
      match Hashtbl.find_opt st.defs name with
      | None -> () (* unknown root: structural error elsewhere *)
      | Some tys ->
          let context = Printf.sprintf "initial component %s" name in
          List.iteri
            (fun k v ->
              if k < Array.length tys then
                constrain st context
                  (Printf.sprintf "argument %d" (k + 1))
                  tys.(k) (sort_of_value v))
            values)
    spec.Spec.init;
  (* Walk every definition body. *)
  let walk_def (d : Term.def) =
    let context = Printf.sprintf "definition %s" d.Term.def_name in
    let own = Hashtbl.find st.defs d.Term.def_name in
    let env0 = List.mapi (fun k x -> (x, own.(k))) d.Term.params in
    let rec walk env (t : Term.t) =
      match t with
      | Term.Nil -> ()
      | Term.Prefix (a, p) ->
          let arity = List.length a.Term.act_args in
          (match act_tys context a.Term.act_name arity with
          | None -> List.iter (fun e -> ignore (infer_expr st context env e)) a.Term.act_args
          | Some tys ->
              List.iteri
                (fun k e ->
                  equate st context
                    (Printf.sprintf "action %s, argument %d" a.Term.act_name
                       (k + 1))
                    tys.(k)
                    (infer_expr st context env e))
                a.Term.act_args);
          walk env p
      | Term.Choice ps -> List.iter (walk env) ps
      | Term.Sum (x, _, _, p) -> walk ((x, known Int) :: env) p
      | Term.Cond (c, p, q) ->
          constrain st context
            (Format.asprintf "condition %a" Pexpr.pp c)
            (infer_expr st context env c)
            Bool;
          walk env p;
          walk env q
      | Term.Call (name, args) -> (
          match Hashtbl.find_opt st.defs name with
          | None ->
              (* unknown callee: structural error elsewhere; still type
                 the arguments for unbound-variable reporting *)
              List.iter (fun e -> ignore (infer_expr st context env e)) args
          | Some tys ->
              List.iteri
                (fun k e ->
                  let te = infer_expr st context env e in
                  if k < Array.length tys then
                    equate st context
                      (Printf.sprintf "call of %s, argument %d" name (k + 1))
                      tys.(k) te)
                args)
    in
    walk env0 d.Term.body
  in
  List.iter walk_def spec.Spec.defs;
  (* Tick never carries data; give it an explicit empty signature if some
     component offers it, so exporters can declare it. *)
  let def_params =
    List.map
      (fun (d : Term.def) ->
        ( d.Term.def_name,
          Array.map resolve (Hashtbl.find st.defs d.Term.def_name) ))
      spec.Spec.defs
  in
  let actions =
    Hashtbl.fold (fun name tys acc -> (name, Array.map resolve tys) :: acc)
      st.acts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  ({ def_params; actions }, List.rev st.errors)
