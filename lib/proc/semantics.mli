(** Operational semantics of parallel specifications.

    Builds, from a {!Spec.t}, a {!Mc.System.t} whose states are vectors of
    sequential-component configurations and whose labels are either the
    global clock step {!Tick} or a (possibly hidden) action occurrence.
    This is the role the mCRL2 linearisation + state-space generation
    pipeline plays in the paper. *)

type component
(** A sequential component configuration: a process term plus an
    environment for its data parameters. *)

type state = component array

type label =
  | Tick  (** global clock step: every component ticks together *)
  | Act of string * Value.t list
      (** action occurrence; hidden actions appear as [Act ("tau", [])] *)

val tau : label

val label_name : label -> string
(** ["tick"] for {!Tick}, the action name otherwise. *)

val pp_label : Format.formatter -> label -> unit

exception Unguarded_recursion of string
(** Raised during exploration if unfolding a definition never reaches an
    action prefix (the specification is not guarded). *)

val system : Spec.t -> (state, label) Mc.System.t
(** Compile a (validated) specification into an explorable system.
    @raise Invalid_argument if {!Spec.validate} rejects the spec. *)

(** {2 Compiled specifications}

    The step relation of {!system}, split into a compile step and
    introspection accessors.  This is what alternative successor
    functions (the ample-set reducer in [lib/por]) build on: they can
    read each component's current action offers, look up communication
    partners and visibility, and fall back to the exact full successor
    construction — guaranteeing the reduced system explores a
    sub-structure of the full one. *)

type compiled
(** A validated specification with its lookup tables (definitions,
    allow/hide sets, communication pairs) and initial state. *)

val compile : Spec.t -> compiled
(** @raise Invalid_argument if {!Spec.validate} rejects the spec. *)

val spec_of : compiled -> Spec.t
val initial_of : compiled -> state

val component_steps : compiled -> component -> (string * Value.t list * component) list
(** Local steps of one sequential component: every (action name,
    evaluated arguments, next configuration) it currently offers,
    in deterministic (syntactic) order.  Includes tick offers, blocked
    actions and unpaired communication halves — pairing, visibility and
    the global-tick rule are applied by {!successors_from}. *)

val component_term : component -> Term.t
(** The process term of a configuration (normalized: never a top-level
    [Call]).  Lets static analyses compute, per configuration, which
    actions it could ever offer again. *)

val is_visible : compiled -> string -> bool
(** The name is in the spec's [allow] list. *)

val is_hidden : compiled -> string -> bool
(** The name is in the spec's [hide] list. *)

val is_comm : compiled -> string -> bool
(** The name is a send or receive half of some communication pair. *)

val comm_partners : compiled -> string -> (string * string) list
(** [(partner, result)] pairs for a communication half, both directions;
    [[]] for non-communication names. *)

val successors_from :
  compiled -> (string * Value.t list * component) list array -> state -> (label * state) list
(** Full successor list of a state given the pre-computed local step
    menus of its components ([locals.(i)] must be
    [component_steps c s.(i)]).  This is the step relation of {!system}:
    independent actions in component order, then communications for
    [i < j], then the global tick. *)

val successors_of : compiled -> state -> (label * state) list

val system_of : compiled -> (state, label) Mc.System.t
(** The system of {!compile}d spec; [system spec] is
    [system_of (compile spec)]. *)

val pp_state : Format.formatter -> state -> unit
val equal_state : state -> state -> bool
val hash_state : state -> int

val lts : ?max_states:int -> ?domains:int -> Spec.t -> label Lts.Graph.t
(** Convenience: the reachable labelled transition system of the spec.
    [domains] (default 1) selects the sequential ({!Mc.Explore}) or
    parallel ({!Mc.Pexplore}) engine; the graph is identical either way.
    @raise Failure if [max_states] is exceeded. *)
