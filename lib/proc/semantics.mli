(** Operational semantics of parallel specifications.

    Builds, from a {!Spec.t}, a {!Mc.System.t} whose states are vectors of
    sequential-component configurations and whose labels are either the
    global clock step {!Tick} or a (possibly hidden) action occurrence.
    This is the role the mCRL2 linearisation + state-space generation
    pipeline plays in the paper. *)

type component
(** A sequential component configuration: a process term plus an
    environment for its data parameters. *)

type state = component array

type label =
  | Tick  (** global clock step: every component ticks together *)
  | Act of string * Value.t list
      (** action occurrence; hidden actions appear as [Act ("tau", [])] *)

val tau : label

val label_name : label -> string
(** ["tick"] for {!Tick}, the action name otherwise. *)

val pp_label : Format.formatter -> label -> unit

exception Unguarded_recursion of string
(** Raised during exploration if unfolding a definition never reaches an
    action prefix (the specification is not guarded). *)

val system : Spec.t -> (state, label) Mc.System.t
(** Compile a (validated) specification into an explorable system.
    @raise Invalid_argument if {!Spec.validate} rejects the spec. *)

val lts : ?max_states:int -> ?domains:int -> Spec.t -> label Lts.Graph.t
(** Convenience: the reachable labelled transition system of the spec.
    [domains] (default 1) selects the sequential ({!Mc.Explore}) or
    parallel ({!Mc.Pexplore}) engine; the graph is identical either way.
    @raise Failure if [max_states] is exceeded. *)
