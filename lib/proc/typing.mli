(** Sort inference for specifications.

    A proper Hindley–Milner-style pass over a {!Spec.t}: every definition
    parameter and every action argument position gets a unification
    variable, expression shapes and occurrences constrain them, and the
    result is one signature per definition and per action that is
    consistent across {e all} occurrences — or a list of typing errors
    when no such signature exists.

    This replaces (and is consumed by) {!Mcrl2}'s former per-occurrence
    sort guessing: an action used with an [Int] argument in one process
    and a [Bool] argument in another is a reported conflict here, where
    the old exporter silently joined the sorts to [Int]. *)

type sort = Int | Bool | Int_list

val sort_name : sort -> string
(** mCRL2 spelling: ["Int"], ["Bool"], ["List(Int)"]. *)

type signatures = {
  def_params : (string * sort option array) list;
      (** Parameter sorts per definition, in specification order.  [None]
          means the position is unconstrained (no occurrence fixed it). *)
  actions : (string * sort option array) list;
      (** Argument sorts per action name, sorted by name.  Zero-arity
          actions appear with an empty array. *)
}

type error_kind =
  | Sort_clash  (** two occurrences demand incompatible sorts *)
  | Arity_conflict  (** an action used with differing argument counts *)
  | Unbound_var  (** a variable not bound by parameters or a sum *)

type error = {
  err_kind : error_kind;
  err_context : string;  (** e.g. ["definition P0"] or ["action arm"] *)
  err_message : string;
}

val pp_error : Format.formatter -> error -> unit

val infer : Spec.t -> signatures * error list
(** [infer spec] walks every definition body once, unifying:
    - call-site argument sorts with callee parameter sorts,
    - action-occurrence argument sorts with the action's global signature,
    - expression operand sorts with the operators' requirements
      (arithmetic is [Int]; [&&]/[||]/[!] are [Bool]; conditions of
      conditionals are [Bool]; both branches of [If] agree; list
      primitives are over [Int_list] with [Int] elements), and
    - initial-component argument values with the root definitions.

    Errors do not abort the pass: the offending constraint is skipped
    (first binding wins) and recorded, so [signatures] is always total
    and the error list enumerates every conflict deterministically (in
    specification walk order). *)

val dominant : sort option -> sort
(** Resolution used by the exporter: unconstrained positions print as
    [Int]. *)
