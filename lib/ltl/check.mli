(** LTL model checking: Büchi products, emptiness, lasso counterexamples.

    [check sys f] decides whether every run of [sys] satisfies [f], by
    translating [¬f] (conjoined with the fairness premises) to a Büchi
    automaton ({!Buchi}), building the product with [sys] on the fly, and
    testing the product for emptiness.  A non-empty product yields a
    {e lasso} counterexample: a finite prefix followed by a cycle repeated
    forever.

    Two emptiness engines are provided.  {!Ndfs} is the on-the-fly nested
    depth-first search (Courcoubetis–Vardi–Wolper–Yannakakis, with the
    cyan-coloring early-termination improvement): memory-lean, stops at the
    first accepting cycle.  {!Scc} builds the full product graph with
    {!Mc.Explore} and scans its Tarjan components ({!Lts.Graph.scc}) for a
    nontrivial one containing an accepting state: the cross-validation
    engine, and the one that reports shortest-prefix lassos.  Both are
    deterministic; they agree on every verdict (the test suite checks this
    on random models). *)

(** {2 Runs, stuttering, fairness} *)

type 'l step = Step of 'l | Stutter
(** One position of a run: a transition label, or the virtual stutter
    step extending a finite run past a deadlock. *)

type 'l lasso = { prefix : 'l step list; cycle : 'l step list }
(** A counterexample run: [prefix] then [cycle] forever ([cycle] is
    nonempty). *)

type stutter_policy =
  | Extend
      (** deadlock states get a virtual {!Stutter} self-loop: every
          {!Formula.Lbl} atom is false there, every {!Formula.Enabled}
          atom too.  Finite maximal runs thus refute liveness ("nothing
          ever happens again") — the default, matching the view that a
          deadlock is observable. *)
  | Ignore
      (** finite maximal runs are not runs at all: only infinite paths
          can refute a property.  A system whose every run deadlocks
          satisfies every formula vacuously. *)

type 'l fairness = { fname : string; premise : 'l Formula.t }
(** A fairness constraint, as an LTL premise assumed of every run:
    [check] decides [premises -> f], i.e. unfair runs cannot refute. *)

val weakly_fair :
  string -> enabled:('l -> bool) -> taken:('l -> bool) -> 'l fairness
(** Weak fairness (justice): a run that keeps [enabled] continuously
    enabled from some point on must take [taken] infinitely often —
    [GF (¬Enabled(enabled) ∨ Lbl(taken))]. *)

val often : string -> ('l -> bool) -> 'l fairness
(** Unconditional fairness: labels satisfying the predicate occur
    infinitely often — [GF Lbl(p)].  With the global clock tick this is
    time divergence: Zeno runs (and stutter extensions) are unfair. *)

val response :
  string -> trigger:('l -> bool) -> response:('l -> bool) -> 'l fairness
(** Response fairness: infinitely many [trigger] labels imply infinitely
    many [response] labels — [GF trigger → GF response].  The fair-lossy
    channel assumption: a message retransmitted forever is eventually
    delivered, killing the "drop every heartbeat" lasso. *)

(** {2 Checking} *)

type 'l verdict =
  | Holds  (** every (fair) run satisfies the formula *)
  | Refuted of 'l lasso  (** a fair run violating the formula *)
  | Unknown of int  (** product state bound hit before a verdict *)
  | Exhausted of Mc.Explore.exhaustion
      (** the resource budget tripped before a verdict: no accepting
          cycle among the product states actually explored *)

type engine = Ndfs | Scc

type ('s, 'l) product_cursor = ('s * int, 'l step) Mc.Explore.cursor
(** A suspended {!Scc} product-space build: an {!Mc.Explore.cursor}
    over product states (system state × automaton state) and step
    labels.  Marshal it (see {!Mc.Checkpoint}) to resume the check in a
    later process — the resuming call must rebuild the {e same} system
    and formula. *)

type ('s, 'l) run_result =
  | Concluded of 'l verdict
  | Suspended of Mc.Budget.reason * ('s, 'l) product_cursor

val check :
  ?engine:engine ->
  ?stutter:stutter_policy ->
  ?fairness:'l fairness list ->
  ?slice:('s, 'l) Mc.System.t ->
  ?reduction:(alphabet:string list -> ('s, 'l) Mc.System.t option) ->
  ?max_states:int ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  ?budget:Mc.Budget.t ->
  ('s, 'l) Mc.System.t ->
  'l Formula.t ->
  'l verdict
(** [check sys f] — defaults: {!Ndfs}, {!Extend}, no fairness,
    [max_states = Mc.Explore.default_max] (bounding the number of distinct
    product states explored).

    [slice] (default none) is a property-preserving reduced system
    explored in place of [sys]; the caller guarantees it is an exact
    label-preserving projection for this formula's alphabet (see the
    [slice] library).  It replaces the base system {e before} the
    [reduction] callback is consulted, so the two compose: pass a
    reduction built over the sliced model.

    [reduction] (default none) offers a partial-order-reduced
    replacement for [sys] — typically [Por.reduction] partially
    applied.  It is consulted only when the checked formula
    ({e including} the fairness premises) passes
    {!Formula.stutter_invariant} and has a pure label alphabet
    ({!Formula.alphabet}); the callback receives that alphabet as the
    visibility set and may itself decline by returning [None].  The
    verdict is unchanged by construction; lassos come from the reduced
    product, so their runs exist in the full system but may schedule
    independent actions in a different order than an unreduced search
    would report.

    [domains], [store] and [workstealing] affect the {!Scc} engine
    only: its product graph is then built with {!Mc.Pexplore} (replay
    mode, byte-identical to the sequential graph under the exact
    store), so verdicts and lassos are unchanged at any domain count.
    Combining [domains > 1] with [reduction] requires a parallel-safe
    reduction ([Por.reduction ~par:true]).  {!Ndfs} is inherently
    sequential (its stack colouring has no parallel analogue here) and
    ignores all three.  A {!Store.Bitstate} store is rejected by the
    {!Scc} engine (no state graph); {!Store.Hash_compaction} makes a
    [Holds] verdict probabilistic in the usual under-approximating
    sense.

    [budget] bounds the check by wall clock / live heap / cancellation
    ({!Mc.Budget}); a trip yields {!Exhausted} with the product-state
    count reached.  Both engines poll it: {!Ndfs} once per product
    state touched, {!Scc} within the underlying space build. *)

val check_run :
  ?engine:engine ->
  ?stutter:stutter_policy ->
  ?fairness:'l fairness list ->
  ?slice:('s, 'l) Mc.System.t ->
  ?reduction:(alphabet:string list -> ('s, 'l) Mc.System.t option) ->
  ?max_states:int ->
  ?domains:int ->
  ?store:Mc.Store.mode ->
  ?workstealing:bool ->
  ?budget:Mc.Budget.t ->
  ?checkpoint:(int * (('s, 'l) product_cursor -> unit)) ->
  ?resume:('s, 'l) product_cursor ->
  ('s, 'l) Mc.System.t ->
  'l Formula.t ->
  ('s, 'l) run_result
(** The resilient form of {!check} ({!Scc} engine for
    checkpoint/resume).  On a budget trip the product-space build
    suspends into a {!product_cursor} instead of concluding; [resume]
    continues from one.  [checkpoint = (every, f)] additionally calls
    [f] with a consistent snapshot every [every] expanded product
    states on the {e sequential} Scc path (exact store, one domain) —
    the parallel path checkpoints only at suspension.  Sequential
    resumed runs are byte-identical to uninterrupted ones (same graph,
    same lasso); parallel ones are verdict-identical.
    @raise Invalid_argument if [checkpoint] or [resume] is given with
    the {!Ndfs} engine (its search state is not checkpointable). *)

val product :
  ('s, 'l) Mc.System.t ->
  'l Buchi.t ->
  stutter:stutter_policy ->
  ('s * int, 'l step) Mc.System.t * (('s * int) -> bool)
(** The Büchi product as an explorable system, paired with its acceptance
    predicate — exposed for the benchmarks and the test suite.  The
    automaton component starts in {!Buchi.t.initial}. *)

(** {2 Verdict utilities} *)

val holds : 'l verdict -> bool

val strip : 'l step list -> 'l list
(** Drop stutter steps, keeping the transition labels. *)

val pp_step :
  pp_label:(Format.formatter -> 'l -> unit) ->
  Format.formatter -> 'l step -> unit

val pp_verdict :
  pp_label:(Format.formatter -> 'l -> unit) ->
  Format.formatter -> 'l verdict -> unit
(** Render a verdict; a lasso prints as the prefix, a [-- cycle --]
    separator, then the cycle. *)
