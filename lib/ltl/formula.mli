(** Linear temporal logic over transition labels.

    Formulas are interpreted over the {e runs} of a {!Mc.System.S}: infinite
    sequences of transitions.  Position [i] of a run carries both the label
    of the [i]-th transition and the state it was taken from, so two kinds
    of atoms exist:

    - {!Lbl} atoms hold of the label taken at the position — the
      action-based reading used for requirements over message traces
      ("a beat is delivered", "a loss occurs");
    - {!Enabled} atoms hold of the source state, via its enabled labels —
      the state-based reading that connects to {!Mc.Ctl}'s [Can] atoms.

    Finite maximal runs (runs ending in a deadlock) are handled by the
    checker's stutter-extension policy, see {!Check.stutter_policy}.

    {b Atom identity.}  Atoms are identified by their [name] (per kind)
    during the Büchi translation: two atoms of the same kind and name are
    assumed to denote the same predicate.  Give semantically different
    atoms different names. *)

type 'l t =
  | True
  | False
  | Lbl of string * ('l -> bool)
      (** the label at this position satisfies the predicate *)
  | Enabled of string * ('l -> bool)
      (** some enabled transition of the state at this position satisfies
          the predicate (false at deadlock states) *)
  | Not of 'l t
  | And of 'l t * 'l t
  | Or of 'l t * 'l t
  | Next of 'l t
  | Until of 'l t * 'l t  (** strong until *)
  | Release of 'l t * 'l t  (** dual of until *)

(** {2 Constructors} *)

val lbl : string -> ('l -> bool) -> 'l t
val enabled : string -> ('l -> bool) -> 'l t
val conj : 'l t list -> 'l t
val disj : 'l t list -> 'l t
val implies : 'l t -> 'l t -> 'l t
val finally : 'l t -> 'l t  (** [F f = Until (True, f)] *)

val globally : 'l t -> 'l t  (** [G f = Release (False, f)] *)

val weak_until : 'l t -> 'l t -> 'l t
(** [a W b = Release (b, Or (a, b))]: until without the obligation that
    [b] ever happens. *)

val infinitely_often : 'l t -> 'l t  (** [G (F f)] *)

val eventually_always : 'l t -> 'l t  (** [F (G f)] *)

val pp : Format.formatter -> 'l t -> unit

(** {2 Normal form and classification} *)

val nnf : 'l t -> 'l t
(** Negation normal form: negations pushed inward until they apply only to
    atoms, using the [Until]/[Release] and De Morgan dualities ([Next] is
    self-dual — runs are infinite, by stutter extension if need be). *)

type cls =
  | Bounded  (** no [Until], no [Release] in NNF: a property of a fixed
                 number of initial steps *)
  | Safety  (** no [Until] in NNF: refutable by a finite prefix *)
  | Cosafety  (** no [Release] in NNF: witnessable by a finite prefix *)
  | General  (** both [Until] and [Release] occur: genuinely reactive *)

val classify : 'l t -> cls
(** Syntactic (past-free) safety/liveness classification of the NNF.  The
    classes are sound, not complete: a [General] formula may still be
    semantically a safety property. *)

val cls_name : cls -> string

(** {2 Stutter invariance}

    Support for partial-order reduction: a reduced exploration (see
    [Por]) preserves the verdict of a formula only if the formula
    cannot distinguish runs that differ in the insertion or deletion of
    {e invisible} transitions — transitions whose label name is outside
    the formula's alphabet.

    {b Lbl contract.}  Both functions below assume every [Lbl (name,
    pred)] atom satisfies [pred l => label-name-of l = name]: the atom
    observes only labels carrying its own name.  Under that contract
    every invisible label falsifies every atom, so all invisible labels
    behave as a single stutter letter.  An atom whose predicate accepts
    labels with other names breaks the analysis silently — name atoms
    after the one action they watch. *)

val stutter_invariant : 'l t -> bool
(** Syntactic under-approximation of stutter invariance, computed on
    the NNF: [Next]-free combinations of [Lbl] atoms where every
    [Until (g, f)] has [g] true and [f] false on stutter letters (or
    [f] itself invariant), and dually for [Release].  [Enabled] atoms
    are state predicates, invalidated by reduction itself, so any
    occurrence yields [false].  Sound, not complete: a [false] answer
    only means reduction must stay off. *)

val alphabet : 'l t -> string list option
(** The names of all [Lbl] atoms, sorted and deduplicated — the
    visibility set to hand to the reducer.  [None] if an [Enabled]
    atom occurs anywhere (no label alphabet captures a state
    predicate). *)
