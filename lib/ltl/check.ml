type 'l step = Step of 'l | Stutter
type 'l lasso = { prefix : 'l step list; cycle : 'l step list }
type stutter_policy = Extend | Ignore
type 'l fairness = { fname : string; premise : 'l Formula.t }

let weakly_fair name ~enabled ~taken =
  {
    fname = name;
    premise =
      Formula.infinitely_often
        (Formula.Or
           ( Formula.Not (Formula.enabled (name ^ ".enabled") enabled),
             Formula.lbl (name ^ ".taken") taken ));
  }

let often name p =
  { fname = name; premise = Formula.infinitely_often (Formula.lbl name p) }

let response name ~trigger ~response =
  {
    fname = name;
    premise =
      Formula.implies
        (Formula.infinitely_often (Formula.lbl (name ^ ".trigger") trigger))
        (Formula.infinitely_often (Formula.lbl (name ^ ".response") response));
  }

type 'l verdict =
  | Holds
  | Refuted of 'l lasso
  | Unknown of int
  | Exhausted of Mc.Explore.exhaustion

type engine = Ndfs | Scc

(* A suspended product-space build (Scc engine): the cursor ranges over
   product states [('s * int)] and step labels. *)
type ('s, 'l) product_cursor = ('s * int, 'l step) Mc.Explore.cursor

type ('s, 'l) run_result =
  | Concluded of 'l verdict
  | Suspended of Mc.Budget.reason * ('s, 'l) product_cursor

(* ------------------------------------------------------------------ *)
(* Büchi product                                                       *)
(* ------------------------------------------------------------------ *)

let product (type s l) ((module S) : (s, l) Mc.System.t) (ba : l Buchi.t)
    ~stutter : (s * int, l step) Mc.System.t * ((s * int) -> bool) =
  let module P = struct
    type state = s * int
    type label = l step

    let initial = (S.initial, ba.Buchi.initial)

    let successors (s, q) =
      match S.successors s with
      | [] -> (
          match stutter with
          | Ignore -> []
          | Extend ->
              (* virtual stutter self-loop: no label, nothing enabled *)
              List.filter_map
                (fun (g, q') ->
                  if Buchi.guard_holds ba g ~label:None ~can:(fun _ -> false)
                  then Some (Stutter, (s, q'))
                  else None)
                ba.Buchi.delta.(q))
      | succs ->
          let can p = List.exists (fun (l, _) -> p l) succs in
          List.concat_map
            (fun (l, s') ->
              List.filter_map
                (fun (g, q') ->
                  if Buchi.guard_holds ba g ~label:(Some l) ~can then
                    Some (Step l, (s', q'))
                  else None)
                ba.Buchi.delta.(q))
            succs

    let equal_state (s1, q1) (s2, q2) = q1 = q2 && S.equal_state s1 s2
    let hash_state (s, q) = (S.hash_state s * 131) + q
    let pp_state ppf (s, q) = Format.fprintf ppf "%a@@q%d" S.pp_state s q

    let pp_label ppf = function
      | Step l -> S.pp_label ppf l
      | Stutter -> Format.pp_print_string ppf "(stutter)"
  end in
  ((module P), fun (_, q) -> ba.Buchi.accepting.(q))

(* ------------------------------------------------------------------ *)
(* Emptiness engines                                                   *)
(* ------------------------------------------------------------------ *)

(* Shared result type: labels of a lasso witness, a truncation count, a
   budget trip mid-search ([SExh], NDFS), or a suspended space build
   with its resume cursor ([SSusp], SCC). *)
type ('p, 'm) search =
  | SEmpty
  | SNonempty of 'm list * 'm list
  | STrunc of int
  | SExh of Mc.Budget.reason * int
  | SSusp of Mc.Budget.reason * ('p, 'm) Mc.Explore.cursor

(* Nested DFS (Courcoubetis–Vardi–Wolper–Yannakakis, with the cyan-state
   improvement of Schwoon–Esparza): a blue DFS explores the product; at
   the postorder of every accepting state a red DFS hunts for a path back
   onto the blue stack (the cyan states).  A red hit at stack depth [d]
   closes an accepting cycle through the seed; a blue edge onto a cyan
   state closes one directly when either endpoint accepts.  Both DFSs are
   iterative with explicit frames — product stacks can be far deeper than
   the OCaml call stack allows. *)
let ndfs_emptiness (type p m) ?budget ((module P) : (p, m) Mc.System.t)
    ~(accepting : p -> bool) ~max_states =
  let module M = struct
    type frame = { st : p; inlab : m option; mutable succs : (m * p) list }
    type cinfo = { mutable cyan : int; mutable blue : bool; mutable red : bool }

    exception Lasso of m list * m list
    exception Bound
    exception Exh of Mc.Budget.reason

    module H = Hashtbl.Make (struct
      type t = p

      let equal = P.equal_state
      let hash = P.hash_state
    end)
  end in
  let open M in
  let info : cinfo H.t = H.create 4096 in
  let intern s =
    (* polled on every product-state touch; [Budget.check] rate-limits
       the expensive probes internally *)
    (match budget with
    | Some b -> (
        match Mc.Budget.check b with
        | Some r -> raise (Exh r)
        | None -> ())
    | None -> ());
    match H.find_opt info s with
    | Some r -> r
    | None ->
        if H.length info >= max_states then raise Bound;
        let r = { cyan = -1; blue = false; red = false } in
        H.add info s r;
        r
  in
  (* Lasso extraction.  [blue] is the blue stack (top first), [d] the
     cyan depth of the state the closing edge re-enters, [red_labels] the
     labels of the red path from the seed (empty when the blue DFS closed
     the cycle itself), [l] the closing edge's label. *)
  let extract blue d red_labels l =
    let arr = Array.of_list (List.rev blue) in
    let prefix = ref [] and cycle = ref [] in
    Array.iteri
      (fun i fr ->
        match fr.inlab with
        | None -> ()
        | Some lab ->
            if i <= d then prefix := lab :: !prefix
            else cycle := lab :: !cycle)
      arr;
    (List.rev !prefix, List.rev !cycle @ red_labels @ [ l ])
  in
  let red_dfs seed blue =
    let rstack =
      ref [ { st = seed; inlab = None; succs = P.successors seed } ]
    in
    while !rstack <> [] do
      match !rstack with
      | [] -> ()
      | fr :: rest -> (
          match fr.succs with
          | [] -> rstack := rest
          | (l, t) :: more ->
              fr.succs <- more;
              let rt = intern t in
              if rt.cyan >= 0 then begin
                let red_labels =
                  List.filter_map (fun f -> f.inlab) (List.rev !rstack)
                in
                let prefix, cycle = extract blue rt.cyan red_labels l in
                raise (Lasso (prefix, cycle))
              end
              else if not rt.red then begin
                rt.red <- true;
                rstack :=
                  { st = t; inlab = Some l; succs = P.successors t }
                  :: !rstack
              end)
    done
  in
  try
    let init = P.initial in
    (intern init).cyan <- 0;
    let stack =
      ref [ { st = init; inlab = None; succs = P.successors init } ]
    in
    let depth = ref 0 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | frame :: rest -> (
          match frame.succs with
          | (l, t) :: more ->
              frame.succs <- more;
              let rt = intern t in
              if rt.cyan >= 0 then begin
                if accepting frame.st || accepting t then begin
                  let prefix, cycle = extract !stack rt.cyan [] l in
                  raise (Lasso (prefix, cycle))
                end
              end
              else if not rt.blue then begin
                incr depth;
                rt.cyan <- !depth;
                stack :=
                  { st = t; inlab = Some l; succs = P.successors t }
                  :: !stack
              end
          | [] ->
              if accepting frame.st then red_dfs frame.st !stack;
              let rf = H.find info frame.st in
              rf.cyan <- -1;
              rf.blue <- true;
              stack := rest;
              decr depth)
    done;
    SEmpty
  with
  | Lasso (prefix, cycle) -> SNonempty (prefix, cycle)
  | Bound -> STrunc (H.length info)
  | Exh r -> SExh (r, H.length info)

(* Shortest path from the initial state to a goal state: labels plus the
   state reached. *)
let bfs_to g goal =
  let n = max (Lts.Graph.num_states g) 1 in
  let parent = Array.make n (-1) in
  let plabel = Array.make n None in
  let visited = Array.make n false in
  let init = Lts.Graph.initial g in
  let q = Queue.create () in
  let found = ref None in
  visited.(init) <- true;
  (try
     if goal init then begin
       found := Some init;
       raise Exit
     end;
     Queue.add init q;
     while not (Queue.is_empty q) do
       let u = Queue.pop q in
       List.iter
         (fun (l, v) ->
           if not visited.(v) then begin
             visited.(v) <- true;
             parent.(v) <- u;
             plabel.(v) <- Some l;
             if goal v then begin
               found := Some v;
               raise Exit
             end;
             Queue.add v q
           end)
         (Lts.Graph.successors g u)
     done
   with Exit -> ());
  match !found with
  | None -> None
  | Some v ->
      let rec build v acc =
        if parent.(v) < 0 then acc
        else build parent.(v) (Option.get plabel.(v) :: acc)
      in
      Some (build v [], v)

(* Shortest nonempty cycle through [a] staying inside component [c]. *)
let bfs_cycle g comp c a =
  let n = max (Lts.Graph.num_states g) 1 in
  let parent = Array.make n (-1) in
  let plabel = Array.make n None in
  let visited = Array.make n false in
  let q = Queue.create () in
  let result = ref None in
  let rec build u acc =
    if parent.(u) < 0 then Option.get plabel.(u) :: acc
    else build parent.(u) (Option.get plabel.(u) :: acc)
  in
  (try
     List.iter
       (fun (l, v) ->
         if comp.(v) = c then
           if v = a then begin
             result := Some [ l ];
             raise Exit
           end
           else if not visited.(v) then begin
             visited.(v) <- true;
             plabel.(v) <- Some l;
             Queue.add v q
           end)
       (Lts.Graph.successors g a);
     while not (Queue.is_empty q) do
       let u = Queue.pop q in
       List.iter
         (fun (l, v) ->
           if comp.(v) = c then
             if v = a then begin
               result := Some (build u [ l ]);
               raise Exit
             end
             else if not visited.(v) then begin
               visited.(v) <- true;
               parent.(v) <- u;
               plabel.(v) <- Some l;
               Queue.add v q
             end)
         (Lts.Graph.successors g u)
     done
   with Exit -> ());
  match !result with
  | Some c -> c
  | None -> assert false (* [a] sits in a nontrivial SCC: a cycle exists *)

(* SCC engine: build the product graph, find a nontrivial strongly
   connected component containing an accepting state, then extract the
   shortest lasso into it by breadth-first search — deterministic, and
   minimal in prefix length. *)
let scc_emptiness (type p m) ?(domains = 1) ?(store = Mc.Store.Exact)
    ?workstealing ?budget ?checkpoint ?resume (sys : (p, m) Mc.System.t)
    ~(accepting : p -> bool) ~max_states =
  let resilient = budget <> None || checkpoint <> None || resume <> None in
  let run =
    (* the parallel engine's replay mode reproduces Explore.space
       byte-for-byte, so the graph (and hence the lasso) is unchanged *)
    if domains <= 1 && store = Mc.Store.Exact && workstealing = None then
      Mc.Explore.space_run ~max_states ?budget ?checkpoint ?resume sys
    else if not resilient then
      Mc.Explore.Done
        (Mc.Pexplore.space ~max_states ~domains ~store ?workstealing sys)
    else
      (* resilience needs the work-stealing engine; degradation is off
         because a compressed product space cannot carry the lasso
         extraction (state identities degrade away) *)
      fst
        (Mc.Pexplore.space_run ~max_states ~domains ~store ?budget
           ~degrade:false ?resume sys)
  in
  match run with
  | Mc.Explore.Suspended (reason, cursor) -> SSusp (reason, cursor)
  | Mc.Explore.Done space ->
  let g = space.Mc.Explore.lts in
  let count, comp = Lts.Graph.scc g in
  let nontrivial = Array.make (max count 1) false in
  List.iter
    (fun (u, _, v) -> if comp.(u) = comp.(v) then nontrivial.(comp.(u)) <- true)
    (Lts.Graph.transitions g);
  let qual s =
    accepting space.Mc.Explore.states.(s) && nontrivial.(comp.(s))
  in
  match bfs_to g qual with
  | Some (prefix, a) ->
      (* the truncated graph only contains real transitions, so a cycle
         found under an exhausted bound is still a genuine witness *)
      SNonempty (prefix, bfs_cycle g comp comp.(a) a)
  | None ->
      if space.Mc.Explore.complete then SEmpty
      else STrunc (Lts.Graph.num_states g)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let check_run ?(engine = Ndfs) ?(stutter = Extend) ?(fairness = []) ?slice
    ?reduction ?(max_states = Mc.Explore.default_max) ?domains ?store
    ?workstealing ?budget ?checkpoint ?resume sys f =
  (* a slice replaces the base system before the reduction callback is
     consulted: the reduction, when also given, was built over the
     sliced model upstream *)
  let sys = Option.value slice ~default:sys in
  (match engine with
  | Scc -> ()
  | Ndfs ->
      if checkpoint <> None || resume <> None then
        invalid_arg
          "Ltl.Check: checkpoint/resume requires the Scc engine (the \
           nested-DFS search state is not checkpointable)");
  let checked =
    match fairness with
    | [] -> f
    | fs -> Formula.implies (Formula.conj (List.map (fun c -> c.premise) fs)) f
  in
  (* Partial-order reduction is sound only for stutter-invariant
     formulas over a pure label alphabet; the fairness premises are part
     of what the Büchi automaton watches, so [checked] — not [f] — must
     pass the classifier.  Otherwise fall back to the full system. *)
  let sys =
    match reduction with
    | None -> sys
    | Some build -> (
        if not (Formula.stutter_invariant checked) then sys
        else
          match Formula.alphabet checked with
          | None -> sys
          | Some alphabet -> (
              match build ~alphabet with Some reduced -> reduced | None -> sys))
  in
  (* a counterexample run satisfies [premises /\ not f] *)
  let ba = Buchi.of_formula (Formula.nnf (Formula.Not checked)) in
  let psys, accepting = product sys ba ~stutter in
  let result =
    match engine with
    | Ndfs -> ndfs_emptiness ?budget psys ~accepting ~max_states
    | Scc ->
        scc_emptiness ?domains ?store ?workstealing ?budget ?checkpoint
          ?resume psys ~accepting ~max_states
  in
  match result with
  | SEmpty -> Concluded Holds
  | SNonempty (prefix, cycle) -> Concluded (Refuted { prefix; cycle })
  | STrunc n -> Concluded (Unknown n)
  | SExh (reason, n) ->
      Concluded
        (Exhausted
           {
             Mc.Explore.reason;
             states_so_far = n;
             coverage =
               Mc.Store.coverage_of ~mode:Mc.Store.exact ~stored:n;
           })
  | SSusp (reason, cursor) -> Suspended (reason, cursor)

let check ?engine ?stutter ?fairness ?slice ?reduction ?max_states ?domains
    ?store ?workstealing ?budget sys f =
  match
    check_run ?engine ?stutter ?fairness ?slice ?reduction ?max_states
      ?domains ?store ?workstealing ?budget sys f
  with
  | Concluded v -> v
  | Suspended (reason, cursor) ->
      (* no checkpoint sink was given, so fold the suspension into the
         qualified verdict *)
      let n = Mc.Explore.cursor_states cursor in
      let mode =
        match store with Some m -> m | None -> Mc.Store.exact
      in
      Exhausted
        {
          Mc.Explore.reason;
          states_so_far = n;
          coverage = Mc.Store.coverage_of ~mode ~stored:n;
        }

let holds = function
  | Holds -> true
  | Refuted _ | Unknown _ | Exhausted _ -> false

let strip steps =
  List.filter_map (function Step l -> Some l | Stutter -> None) steps

let pp_step ~pp_label ppf = function
  | Step l -> pp_label ppf l
  | Stutter -> Format.pp_print_string ppf "(stutter)"

let pp_verdict ~pp_label ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Unknown n -> Format.fprintf ppf "unknown (state bound hit at %d)" n
  | Exhausted e -> Mc.Explore.pp_exhaustion ppf e
  | Refuted { prefix; cycle } ->
      Format.fprintf ppf "@[<v>refuted by lasso:@,";
      List.iter
        (fun s -> Format.fprintf ppf "  %a@," (pp_step ~pp_label) s)
        prefix;
      Format.fprintf ppf "  -- cycle --@,";
      List.iter
        (fun s -> Format.fprintf ppf "  %a@," (pp_step ~pp_label) s)
        cycle;
      Format.fprintf ppf "@]"
