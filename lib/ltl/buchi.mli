(** LTL to Büchi automata, via the expand-closure tableau construction.

    The translation is the standard Gerth–Peled–Vardi–Wolper (GPVW)
    on-the-fly tableau: the formula (in negation normal form) is decomposed
    into {e nodes} carrying "now" and "next" obligations, yielding a
    generalized Büchi automaton with one acceptance set per [Until]
    subformula, which is then degeneralized with the usual counter
    construction and pruned to its reachable part.

    Transitions carry {e guards}: conjunctions of positive and negated
    atoms.  A guard is evaluated against the label taken at a step (for
    {!Formula.Lbl} atoms) and the enabled labels of the source state (for
    {!Formula.Enabled} atoms), so the same automaton drives both the
    on-the-fly product ({!Check}) and word-level acceptance tests. *)

type kind = Label | State

type 'l atom = { aname : string; kind : kind; pred : 'l -> bool }

type guard = { pos : int list; neg : int list }
(** Indices into {!t.atoms}: all of [pos] must hold, none of [neg]. *)

type 'l t = {
  atoms : 'l atom array;
  size : int;  (** number of automaton states *)
  initial : int;
      (** the pre-initial state: no letter has been read yet; its outgoing
          guards constrain the first letter *)
  delta : (guard * int) list array;  (** outgoing edges, per state *)
  accepting : bool array;
}

val of_formula : 'l Formula.t -> 'l t
(** [of_formula f] is a Büchi automaton accepting exactly the infinite
    runs satisfying [f].  To check a system against [f], translate the
    {e negation} and test the product for emptiness (see {!Check}).

    Atoms are identified by [(kind, name)]: two atoms with the same name
    and kind are assumed to carry the same predicate (the first one wins).
    The automaton is pruned to the states reachable from [initial]. *)

val guard_holds :
  'l t -> guard -> label:'l option -> can:(('l -> bool) -> bool) -> bool
(** [guard_holds ba g ~label ~can] evaluates a guard at one step of a run:
    [label] is the label taken ([None] on a stutter step, where every
    [Label] atom is false), and [can p] tells whether some enabled label of
    the source state satisfies [p] (evaluates [State] atoms; pass
    [fun _ -> false] for deadlock states). *)

val num_acceptance_sets : 'l Formula.t -> int
(** Number of [Until] subformulas of the NNF — the generalized acceptance
    sets the degeneralization counter runs over (exposed for tests and
    statistics). *)

val pp_stats : Format.formatter -> 'l t -> unit
(** One-line [states/edges/accepting/atoms] summary. *)
