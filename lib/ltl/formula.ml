type 'l t =
  | True
  | False
  | Lbl of string * ('l -> bool)
  | Enabled of string * ('l -> bool)
  | Not of 'l t
  | And of 'l t * 'l t
  | Or of 'l t * 'l t
  | Next of 'l t
  | Until of 'l t * 'l t
  | Release of 'l t * 'l t

let lbl name pred = Lbl (name, pred)
let enabled name pred = Enabled (name, pred)

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun a b -> And (a, b)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun a b -> Or (a, b)) f fs

let implies a b = Or (Not a, b)
let finally f = Until (True, f)
let globally f = Release (False, f)
let weak_until a b = Release (b, Or (a, b))
let infinitely_often f = globally (finally f)
let eventually_always f = finally (globally f)

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Lbl (name, _) -> Format.pp_print_string ppf name
  | Enabled (name, _) -> Format.fprintf ppf "enabled(%s)" name
  | Not f -> Format.fprintf ppf "!(%a)" pp f
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Next f -> Format.fprintf ppf "X (%a)" pp f
  | Until (True, f) -> Format.fprintf ppf "F (%a)" pp f
  | Until (a, b) -> Format.fprintf ppf "(%a U %a)" pp a pp b
  | Release (False, f) -> Format.fprintf ppf "G (%a)" pp f
  | Release (a, b) -> Format.fprintf ppf "(%a R %a)" pp a pp b

let rec nnf = function
  | (True | False | Lbl _ | Enabled _) as f -> f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Next f -> Next (nnf f)
  | Until (a, b) -> Until (nnf a, nnf b)
  | Release (a, b) -> Release (nnf a, nnf b)
  | Not f -> (
      match f with
      | True -> False
      | False -> True
      | Lbl _ | Enabled _ -> Not (nnf f)
      | Not g -> nnf g
      | And (a, b) -> Or (nnf (Not a), nnf (Not b))
      | Or (a, b) -> And (nnf (Not a), nnf (Not b))
      | Next g -> Next (nnf (Not g))
      | Until (a, b) -> Release (nnf (Not a), nnf (Not b))
      | Release (a, b) -> Until (nnf (Not a), nnf (Not b)))

type cls = Bounded | Safety | Cosafety | General

let classify f =
  let has_u = ref false and has_r = ref false in
  let rec scan = function
    | True | False | Lbl _ | Enabled _ | Not _ -> ()
    | And (a, b) | Or (a, b) -> scan a; scan b
    | Next g -> scan g
    | Until (a, b) ->
        has_u := true;
        scan a;
        scan b
    | Release (a, b) ->
        has_r := true;
        scan a;
        scan b
  in
  scan (nnf f);
  match (!has_u, !has_r) with
  | false, false -> Bounded
  | false, true -> Safety
  | true, false -> Cosafety
  | true, true -> General

let cls_name = function
  | Bounded -> "bounded"
  | Safety -> "safety"
  | Cosafety -> "cosafety"
  | General -> "general"

(* --- stutter invariance ------------------------------------------------ *)

(* Syntactic under-approximation of invariance under insertion/deletion
   of "invisible" letters — letters whose name is outside the formula's
   alphabet, which (by the Lbl contract, see the .mli) falsify every
   atom and so all behave as the one stutter letter.  Per NNF subformula:

   - [ltr]: truth depends only on the first letter (True, False, Lbl,
     negated Lbl, and their And/Or combinations);
   - [at_stutter]: for an [ltr] formula, its truth on a stutter letter;
   - [inv]: invariant under stutter insertion/deletion.

   The interesting rules: [g U f] is invariant when g is
   letter-determined and true at stutter letters (inserted positions
   neither block the prefix condition nor add witnesses) and f is
   either invariant or letter-determined-and-false-at-stutter (witness
   positions correspond 1-1 to original positions); [g R f] dually
   needs g false at stutter (inserted positions cannot release) and f
   invariant or true at stutter (inserted positions cannot violate).
   [Next] kills invariance; [Enabled] atoms are state predicates, not
   letter predicates, so they kill it too. *)

type stutter = { ltr : bool; at_stutter : bool; inv : bool }

let stutter_invariant f =
  let none = { ltr = false; at_stutter = false; inv = false } in
  let rec go = function
    | True -> { ltr = true; at_stutter = true; inv = true }
    | False -> { ltr = true; at_stutter = false; inv = true }
    | Lbl _ -> { ltr = true; at_stutter = false; inv = false }
    | Not (Lbl _) -> { ltr = true; at_stutter = true; inv = false }
    | Enabled _ | Not _ -> none
    | And (a, b) ->
        let ca = go a and cb = go b in
        {
          ltr = ca.ltr && cb.ltr;
          at_stutter = ca.at_stutter && cb.at_stutter;
          inv = ca.inv && cb.inv;
        }
    | Or (a, b) ->
        let ca = go a and cb = go b in
        {
          ltr = ca.ltr && cb.ltr;
          at_stutter = ca.at_stutter || cb.at_stutter;
          inv = ca.inv && cb.inv;
        }
    | Next _ -> none
    | Until (g, f) ->
        let cg = go g and cf = go f in
        let inv =
          cg.ltr && cg.at_stutter && (cf.inv || (cf.ltr && not cf.at_stutter))
        in
        { none with inv }
    | Release (g, f) ->
        let cg = go g and cf = go f in
        let inv =
          cg.ltr && (not cg.at_stutter) && (cf.inv || (cf.ltr && cf.at_stutter))
        in
        { none with inv }
  in
  (go (nnf f)).inv

let alphabet f =
  let exception Has_enabled in
  let rec collect acc = function
    | True | False -> acc
    | Lbl (name, _) -> name :: acc
    | Enabled _ -> raise Has_enabled
    | Not g | Next g -> collect acc g
    | And (a, b) | Or (a, b) | Until (a, b) | Release (a, b) ->
        collect (collect acc a) b
  in
  match collect [] f with
  | names -> Some (List.sort_uniq String.compare names)
  | exception Has_enabled -> None
