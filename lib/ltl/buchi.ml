type kind = Label | State

type 'l atom = { aname : string; kind : kind; pred : 'l -> bool }

type guard = { pos : int list; neg : int list }

type 'l t = {
  atoms : 'l atom array;
  size : int;
  initial : int;
  delta : (guard * int) list array;
  accepting : bool array;
}

(* ------------------------------------------------------------------ *)
(* Indexed internal formulas: atoms interned to integers so sets and   *)
(* maps use plain structural comparison (the source AST carries        *)
(* closures, which cannot be compared).                                *)
(* ------------------------------------------------------------------ *)

module F = struct
  type t =
    | Tt
    | Ff
    | Pos of int
    | Neg of int
    | And of t * t
    | Or of t * t
    | X of t
    | U of t * t
    | R of t * t

  let compare = Stdlib.compare
end

module FSet = Set.Make (F)
module ISet = Set.Make (Int)

(* Intern an NNF source formula; returns the indexed formula and the atom
   table.  Atoms are keyed by (kind, name): the documented identity
   contract. *)
let intern (f : 'l Formula.t) =
  let table : (kind * string, int) Hashtbl.t = Hashtbl.create 16 in
  let atoms = ref [] in
  let n_atoms = ref 0 in
  let atom kind name pred =
    match Hashtbl.find_opt table (kind, name) with
    | Some i -> i
    | None ->
        let i = !n_atoms in
        incr n_atoms;
        Hashtbl.add table (kind, name) i;
        atoms := { aname = name; kind; pred } :: !atoms;
        i
  in
  let rec go : 'l Formula.t -> F.t = function
    | Formula.True -> F.Tt
    | Formula.False -> F.Ff
    | Formula.Lbl (name, pred) -> F.Pos (atom Label name pred)
    | Formula.Enabled (name, pred) -> F.Pos (atom State name pred)
    | Formula.Not (Formula.Lbl (name, pred)) -> F.Neg (atom Label name pred)
    | Formula.Not (Formula.Enabled (name, pred)) ->
        F.Neg (atom State name pred)
    | Formula.Not _ ->
        invalid_arg "Ltl.Buchi: formula not in negation normal form"
    | Formula.And (a, b) -> (
        match (go a, go b) with
        | F.Tt, g | g, F.Tt -> g
        | F.Ff, _ | _, F.Ff -> F.Ff
        | ga, gb -> F.And (ga, gb))
    | Formula.Or (a, b) -> (
        match (go a, go b) with
        | F.Ff, g | g, F.Ff -> g
        | F.Tt, _ | _, F.Tt -> F.Tt
        | ga, gb -> F.Or (ga, gb))
    | Formula.Next a -> F.X (go a)
    | Formula.Until (a, b) -> F.U (go a, go b)
    | Formula.Release (a, b) -> F.R (go a, go b)
  in
  let indexed = go f in
  (indexed, Array.of_list (List.rev !atoms))

(* All Until subformulas, in a fixed order: the generalized acceptance
   sets. *)
let untils_of indexed =
  let seen = ref FSet.empty in
  let out = ref [] in
  let rec scan (f : F.t) =
    match f with
    | F.Tt | F.Ff | F.Pos _ | F.Neg _ -> ()
    | F.And (a, b) | F.Or (a, b) | F.R (a, b) -> scan a; scan b
    | F.X a -> scan a
    | F.U (a, b) ->
        if not (FSet.mem f !seen) then begin
          seen := FSet.add f !seen;
          out := f :: !out
        end;
        scan a;
        scan b
  in
  scan indexed;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* GPVW expand-closure                                                 *)
(* ------------------------------------------------------------------ *)

type node = {
  id : int;
  mutable incoming : ISet.t;
  mutable nw : FSet.t;  (* obligations still to decompose *)
  mutable old : FSet.t;  (* decomposed obligations (defines the state) *)
  mutable nxt : FSet.t;  (* obligations passed to the successor *)
}

let build_gba indexed =
  let next_id = ref 1 in
  (* id 0 is the virtual "init" predecessor *)
  let fresh incoming nw old nxt =
    let id = !next_id in
    incr next_id;
    { id; incoming; nw; old; nxt }
  in
  let nodes : node list ref = ref [] in
  let add_new node f =
    if FSet.mem f node.old then () else node.nw <- FSet.add f node.nw
  in
  let rec expand node =
    match FSet.min_elt_opt node.nw with
    | None -> (
        match
          List.find_opt
            (fun nd ->
              FSet.equal nd.old node.old && FSet.equal nd.nxt node.nxt)
            !nodes
        with
        | Some nd -> nd.incoming <- ISet.union nd.incoming node.incoming
        | None ->
            nodes := node :: !nodes;
            expand
              (fresh (ISet.singleton node.id) node.nxt FSet.empty FSet.empty))
    | Some eta -> (
        node.nw <- FSet.remove eta node.nw;
        match eta with
        | F.Ff -> () (* contradiction: drop the node *)
        | F.Tt ->
            node.old <- FSet.add eta node.old;
            expand node
        | F.Pos a ->
            if FSet.mem (F.Neg a) node.old then ()
            else begin
              node.old <- FSet.add eta node.old;
              expand node
            end
        | F.Neg a ->
            if FSet.mem (F.Pos a) node.old then ()
            else begin
              node.old <- FSet.add eta node.old;
              expand node
            end
        | F.And (a, b) ->
            node.old <- FSet.add eta node.old;
            add_new node a;
            add_new node b;
            expand node
        | F.X a ->
            node.old <- FSet.add eta node.old;
            node.nxt <- FSet.add a node.nxt;
            expand node
        | F.Or (a, b) ->
            let n2 = fresh node.incoming node.nw node.old node.nxt in
            node.old <- FSet.add eta node.old;
            n2.old <- FSet.add eta n2.old;
            add_new node a;
            add_new n2 b;
            expand node;
            expand n2
        | F.U (a, b) ->
            (* U(a,b) = b \/ (a /\ X U(a,b)) *)
            let n2 = fresh node.incoming node.nw node.old node.nxt in
            node.old <- FSet.add eta node.old;
            n2.old <- FSet.add eta n2.old;
            add_new node a;
            node.nxt <- FSet.add eta node.nxt;
            add_new n2 b;
            expand node;
            expand n2
        | F.R (a, b) ->
            (* R(a,b) = (a /\ b) \/ (b /\ X R(a,b)) *)
            let n2 = fresh node.incoming node.nw node.old node.nxt in
            node.old <- FSet.add eta node.old;
            n2.old <- FSet.add eta n2.old;
            add_new node b;
            node.nxt <- FSet.add eta node.nxt;
            add_new n2 a;
            add_new n2 b;
            expand node;
            expand n2)
  in
  expand (fresh (ISet.singleton 0) (FSet.singleton indexed) FSet.empty FSet.empty);
  List.rev !nodes

(* ------------------------------------------------------------------ *)
(* Degeneralization and pruning                                        *)
(* ------------------------------------------------------------------ *)

let guard_of_old old =
  let pos = ref [] and neg = ref [] in
  FSet.iter
    (function
      | F.Pos a -> pos := a :: !pos
      | F.Neg a -> neg := a :: !neg
      | _ -> ())
    old;
  { pos = List.rev !pos; neg = List.rev !neg }

let of_formula f =
  let indexed, atoms = intern (Formula.nnf f) in
  let nodes = build_gba indexed in
  let untils = untils_of indexed in
  let k = List.length untils in
  (* dense numbering of the GBA nodes *)
  let n_nodes = List.length nodes in
  let idx_of_id = Hashtbl.create 64 in
  List.iteri (fun i nd -> Hashtbl.add idx_of_id nd.id i) nodes;
  let node_arr = Array.of_list nodes in
  let guards = Array.map (fun nd -> guard_of_old nd.old) node_arr in
  (* membership in each acceptance set: set for U(a,b) contains the nodes
     where the obligation is absent or already discharged (b in old) *)
  let in_set =
    Array.map
      (fun nd ->
        Array.of_list
          (List.map
             (fun u ->
               (not (FSet.mem u nd.old))
               ||
               match u with F.U (_, b) -> FSet.mem b nd.old | _ -> false)
             untils))
      node_arr
  in
  (* GBA edges: node [src] -> node [dst] for every src in dst.incoming;
     the guard lives on the destination (its "now" literals). *)
  let gba_succ = Array.make n_nodes [] in
  let gba_init = ref [] in
  Array.iteri
    (fun di nd ->
      ISet.iter
        (fun src_id ->
          if src_id = 0 then gba_init := di :: !gba_init
          else
            match Hashtbl.find_opt idx_of_id src_id with
            | Some si -> gba_succ.(si) <- di :: gba_succ.(si)
            | None -> () (* predecessor was dropped as contradictory *))
        nd.incoming)
    node_arr;
  let gba_succ = Array.map List.rev gba_succ in
  let gba_init = List.rev !gba_init in
  (* Degeneralize: counter copies (node, j), advancing on leaving a state
     of the j-th set; accepting = copy 0 inside set 0.  With no Until
     subformulas every state is accepting.  A node's guard constrains the
     letter read at the node, so every edge into (node, j) carries the
     node's own guard; the extra pre-initial state [iota] (no letter read
     yet) makes this uniform for the first letter. *)
  let copies = max 1 k in
  let b_idx n j = (n * copies) + j in
  let iota = n_nodes * copies in
  let size = iota + 1 in
  let delta = Array.make size [] in
  let accepting = Array.make size false in
  for n = 0 to n_nodes - 1 do
    for j = 0 to copies - 1 do
      let j' = if k = 0 then j else if in_set.(n).(j) then (j + 1) mod k else j in
      delta.(b_idx n j) <-
        List.map (fun d -> (guards.(d), b_idx d j')) gba_succ.(n);
      accepting.(b_idx n j) <- (k = 0) || (j = 0 && in_set.(n).(0))
    done
  done;
  delta.(iota) <- List.map (fun n -> (guards.(n), b_idx n 0)) gba_init;
  (* prune to the reachable part *)
  let reach = Array.make size false in
  let stack = ref [ iota ] in
  reach.(iota) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | s :: rest ->
        stack := rest;
        List.iter
          (fun (_, d) ->
            if not reach.(d) then begin
              reach.(d) <- true;
              stack := d :: !stack
            end)
          delta.(s)
  done;
  let remap = Array.make size (-1) in
  let count = ref 0 in
  for s = 0 to size - 1 do
    if reach.(s) then begin
      remap.(s) <- !count;
      incr count
    end
  done;
  let size' = !count in
  let delta' = Array.make (max size' 1) [] in
  let accepting' = Array.make (max size' 1) false in
  for s = 0 to size - 1 do
    if reach.(s) then begin
      delta'.(remap.(s)) <-
        List.map (fun (g, d) -> (g, remap.(d))) delta.(s);
      accepting'.(remap.(s)) <- accepting.(s)
    end
  done;
  {
    atoms;
    size = size';
    initial = remap.(iota);
    delta = delta';
    accepting = accepting';
  }

let guard_holds ba g ~label ~can =
  let sat a =
    let at = ba.atoms.(a) in
    match (at.kind, label) with
    | Label, Some l -> at.pred l
    | Label, None -> false
    | State, _ -> can at.pred
  in
  List.for_all sat g.pos && not (List.exists sat g.neg)

let num_acceptance_sets f =
  let indexed, _ = intern (Formula.nnf f) in
  List.length (untils_of indexed)

let pp_stats ppf ba =
  let edges = Array.fold_left (fun n l -> n + List.length l) 0 ba.delta in
  let acc =
    Array.fold_left (fun n a -> if a then n + 1 else n) 0 ba.accepting
  in
  Format.fprintf ppf "%d states, %d edges, %d accepting, %d atoms" ba.size
    edges acc (Array.length ba.atoms)
