type 'l verdict =
  | Holds
  | Violated of 'l list
  | Unknown of int
  | Exhausted of Explore.exhaustion

(* Product of a system and a monitor: the monitor state rides along in the
   configuration, and a goal search for an accepting monitor state yields a
   shortest violating trace. *)
let product (type s l) (sys : (s, l) System.t) (m : l Monitor.t) :
    (s * int, l) System.t =
  let module S = (val sys) in
  (module struct
    type state = S.state * int
    type label = S.label

    let initial = (S.initial, m.Monitor.start)

    let successors (s, q) =
      List.map (fun (l, s') -> (l, (s', m.Monitor.step q l))) (S.successors s)

    let equal_state (s1, q1) (s2, q2) = q1 = q2 && S.equal_state s1 s2
    let hash_state (s, q) = (S.hash_state s * 31) + q
    let pp_state ppf (s, q) = Format.fprintf ppf "%a | mon:%d" S.pp_state s q
    let pp_label = S.pp_label
  end)

(* Route goal searches through the sequential or the parallel engine: a
   non-exact store or an explicit engine selection forces Pexplore even
   on one domain (the sequential engine has no store support). *)
let run_find ?max_states ?expected_states ?(domains = 1)
    ?(store = Store.Exact) ?workstealing ?budget ?degrade ~goal sys =
  if domains <= 1 && store = Store.Exact && workstealing = None then
    Explore.find ?max_states ?expected_states ?budget ~goal sys
  else
    Pexplore.find ?max_states ?expected_states ~domains ~store ?workstealing
      ?budget ?degrade ~goal sys

(* A reduced replacement system built with the sequential proviso forces
   the sequential engine: its seen-set needs a deterministic call order.
   When the caller vouches the reduction uses the parallel-safe proviso
   ([Por.reduced_system ~par:true]), the requested domain count stands. *)
let apply_reduction reduction ~parallel_reduction domains sys =
  match reduction with
  | None -> (sys, domains)
  | Some reduced -> (reduced, if parallel_reduction then domains else Some 1)

let of_find_verdict = function
  | Explore.Unreachable -> Holds
  | Explore.Reached w -> Violated w.Explore.trace
  | Explore.Bound_hit n -> Unknown n
  | Explore.Exhausted e -> Exhausted e

let check_monitor (type s l) ?max_states ?expected_states ?domains ?slice
    ?reduction ?(parallel_reduction = false) ?store ?workstealing ?budget
    ?degrade (sys : (s, l) System.t) (m : l Monitor.t) : l verdict =
  (* A slice replaces the base system before the reduction is consulted:
     a reduction, when also given, was built over the sliced model
     upstream and wins. *)
  let sys = Option.value slice ~default:sys in
  let sys, domains = apply_reduction reduction ~parallel_reduction domains sys in
  let prod = product sys m in
  of_find_verdict
    (run_find ?max_states ?expected_states ?domains ?store ?workstealing
       ?budget ?degrade
       ~goal:(fun (_, q) -> m.Monitor.accepting q)
       prod)

let check_forbidden ?max_states ?expected_states ?domains ?slice ?reduction
    ?parallel_reduction ?store ?workstealing ?budget ?degrade sys r =
  check_monitor ?max_states ?expected_states ?domains ?slice ?reduction
    ?parallel_reduction ?store ?workstealing ?budget ?degrade sys
    (Regex.compile r)

let check_state (type s l) ?max_states ?expected_states ?domains ?slice
    ?reduction ?(parallel_reduction = false) ?store ?workstealing ?budget
    ?degrade (sys : (s, l) System.t) bad : l verdict =
  let sys = Option.value slice ~default:sys in
  let sys, domains = apply_reduction reduction ~parallel_reduction domains sys in
  of_find_verdict
    (run_find ?max_states ?expected_states ?domains ?store ?workstealing
       ?budget ?degrade ~goal:bad sys)

let holds = function
  | Holds -> true
  | Violated _ | Unknown _ | Exhausted _ -> false

let pp_verdict ~pp_label ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Violated trace ->
      Format.fprintf ppf "violated by trace:@,  @[<v>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_label)
        trace
  | Unknown n -> Format.fprintf ppf "unknown (state bound %d hit)" n
  | Exhausted e -> Explore.pp_exhaustion ppf e
