(** Parallel explicit-state exploration (OCaml 5 domains).

    Two engines share a sharded, lock-striped state table ({!Store}):

    - The {e work-stealing} engine (default): every domain owns a
      chunked deque of work items; owners push and pop whole chunks at
      the newest end, idle domains steal the oldest half of a victim's
      chunks (the BFS-shallowest, hence largest, remaining subtrees).
      Termination is detected with a global pending-item counter.  Items
      carry BFS depth stamps that are {e relaxed} — re-enqueued with the
      shorter depth — whenever a shorter path to a known state is found,
      which keeps truncation under [max_states] exact: a state is only
      skipped when its stamped depth exceeds the smallest depth whose
      cumulative state count reaches the bound, so every state the
      sequential engine would retain is interned and expanded.

    - The {e level-synchronised} engine ([~workstealing:false]): each
      BFS level is split into contiguous chunks, one per domain, with a
      barrier per level.  This is the baseline the work-stealing engine
      is benchmarked against; it does not support bitstate stores.

    In the default [~replay:true] mode a final sequential replay over
    the collected integer adjacency renumbers states into canonical
    sequential BFS discovery order, so results are {e deterministic and
    byte-identical} to the sequential engine:

    - {!space} produces exactly the {!Explore.space} result — same state
      numbering, same transition order, same [states] array, same
      [complete] flag, and the same truncation contract under
      [max_states] — for every domain count;
    - {!find} agrees with {!Explore.find} on the verdict constructor, on
      the witness trace length (shortest), and on {!Explore.Bound_hit}
      truncation behaviour;
    - {!count} agrees with {!Explore.count}.

    [~replay:false] skips the canonicalisation for {!space} when the
    exploration completed within the bound: the returned space uses the
    (non-deterministic) provisional numbering but has the same state
    set, transition multiset and [complete] flag.  Truncated runs fall
    back to the replay regardless.

    Compressed stores ({!Store.Hash_compaction}, {!Store.Bitstate})
    make the results {e probabilistic}: distinct states that collide are
    conflated, which can only under-report states (and hence miss
    violations), never over-report.  Byte-identical parity holds for
    hash compaction up to fingerprint collisions (~2^-62 per pair at the
    default width).  Bitstate keeps no state identities: it is rejected
    by {!space} and by the level-synchronised engine, {!find} witnesses
    lose the shortest-trace guarantee, and a [false] completeness flag
    is reported whenever the bound was engaged.

    [domains] defaults to [Domain.recommended_domain_count ()]; [1] runs
    the whole pipeline on the calling domain.  [shards] (default 64,
    rounded up to a power of two) sets the number of lock stripes of the
    state table. *)

type stats = {
  states : int;  (** canonical (retained) states *)
  transitions : int;
  wall_seconds : float;
  states_per_sec : float;
  peak_frontier : int;  (** largest BFS level *)
  depth_histogram : int array;  (** states discovered per BFS level *)
  shard_occupancy : int array;  (** interned states per table stripe *)
  domains_used : int;
  engine : string;  (** ["workstealing"] or ["levels"] *)
  steals : int;  (** successful steal operations (work-stealing only) *)
  relaxations : int;
      (** depth-stamp improvements that re-enqueued a known state *)
  coverage : Store.coverage;  (** store mode and omission estimate *)
  exhausted : Budget.reason option;
      (** why the run fell short of a full verdict, if it did *)
  degraded : string list;
      (** store modes entered by in-place degradation, in order *)
  retries : int;  (** poisoned items quarantined and retried *)
}

val pp_stats : Format.formatter -> stats -> unit

val space :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  ?progress:(depth:int -> states:int -> frontier:int -> unit) ->
  ?store:Store.mode ->
  ?workstealing:bool ->
  ?replay:bool ->
  ('s, 'l) System.t ->
  ('s, 'l) Explore.space
(** [space sys] builds the reachable state graph in parallel.  With the
    default exact store and [~replay:true] the result is byte-identical
    to [Explore.space ?max_states sys] regardless of [domains] and
    engine.  [progress] is invoked once per BFS level with the depth,
    cumulative state count and level size (from the coordinating domain
    in the level-synchronised engine; during the canonical replay in the
    work-stealing engine).

    [expected_states] (typically the lint pass's static state bound)
    pre-sizes the lock-striped state table: the hint is clamped to
    {!Explore.sizing_cap} and split evenly across the shards.  Results
    are unaffected.

    @raise Invalid_argument on a {!Store.Bitstate} store, which cannot
    produce a state graph. *)

val space_stats :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  ?progress:(depth:int -> states:int -> frontier:int -> unit) ->
  ?store:Store.mode ->
  ?workstealing:bool ->
  ?replay:bool ->
  ('s, 'l) System.t ->
  ('s, 'l) Explore.space * stats
(** Like {!space}, additionally returning exploration statistics. *)

val space_run :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  ?progress:(depth:int -> states:int -> frontier:int -> unit) ->
  ?store:Store.mode ->
  ?budget:Budget.t ->
  ?degrade:bool ->
  ?resume:('s, 'l) Explore.cursor ->
  ('s, 'l) System.t ->
  ('s, 'l) Explore.run_result * stats
(** The resilient form of {!space_stats} (work-stealing engine only).
    A {!Budget} trip — or an unrecoverable successor crash — suspends
    the run into an {!Explore.cursor} holding every interned state, the
    recorded adjacency and the unexpanded frontier; [resume] continues
    from such a cursor.  A resumed run always replays, so its [Done]
    space carries canonical numbering, making par->par round trips
    verdict- and graph-identical to an uninterrupted run ({e set}-wise;
    cursors taken by the {e sequential} engine resumed here, or vice
    versa, preserve verdicts but not byte-identity — only seq->seq round
    trips are byte-identical, see {!Explore.space_run}).

    With [degrade = true] (default) a {!Budget.Memory} trip first walks
    the store down the compression ladder in place
    ([Exact -> Hash_compaction -> Bitstate]) and re-arms the budget; the
    run only suspends once the ladder is exhausted.  Rungs taken are
    reported in [stats.degraded].  Note a store degraded to bitstate no
    longer tracks state identities, so the space degenerates (missing
    destinations are dropped and [complete] is [false]) — prefer
    {!count} or {!find} when heavy degradation is expected. *)

val count :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  ?store:Store.mode ->
  ?workstealing:bool ->
  ?budget:Budget.t ->
  ?degrade:bool ->
  ('s, 'l) System.t ->
  int * bool
(** Parallel {!Explore.count}: reachable-state count plus completeness
    flag, without retaining the graph.  Compressed stores under-count on
    collision; bitstate is supported (work-stealing engine only) and is
    the intended high-volume counting mode.  A [budget] trip reports the
    count so far with [complete = false]; [degrade] (default [true])
    lets memory trips walk the store down the compression ladder instead
    of stopping (work-stealing engine only). *)

val count_stats :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  ?store:Store.mode ->
  ?budget:Budget.t ->
  ?degrade:bool ->
  ('s, 'l) System.t ->
  (int * bool) * stats
(** {!count} on the work-stealing engine, additionally returning
    exploration statistics (including the store's {!Store.coverage}
    estimate — the way to surface bitstate omission probabilities).
    [stats.transitions] counts successor edges of first-time expansions,
    and the depth histogram uses stamped depths, which both coincide
    with the canonical values on unbounded runs.  [stats.exhausted],
    [stats.degraded] and [stats.retries] report budget trips, in-place
    store degradations and quarantine retries of this run. *)

val find :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  ?store:Store.mode ->
  ?workstealing:bool ->
  ?budget:Budget.t ->
  ?degrade:bool ->
  goal:('s -> bool) ->
  ('s, 'l) System.t ->
  ('s, 'l) Explore.verdict
(** Parallel {!Explore.find}: domains race over the frontier and the
    winner is canonicalised to a minimal-depth witness, so [Reached]
    traces have exactly the sequential (shortest) length and replay to a
    goal state; [Unreachable] and [Bound_hit] verdicts coincide with the
    sequential engine's.  Under a {!Store.Bitstate} store an
    [Unreachable] verdict is probabilistic — colliding states are never
    expanded, so a violation can be missed (never invented); see
    {!Store.coverage} for the omission estimate.

    A [budget] trip yields {!Explore.Exhausted} — unless a goal state
    was flagged before the trip, which always wins as [Reached].  A
    successor function that raises does {e not} take the run down: the
    poisoned item is quarantined and retried once on another domain
    after a backoff, and only a second failure converts the run into
    [Exhausted (Crashed _)] naming the offending state (after the rest
    of the space was explored). *)
