(** Parallel explicit-state exploration (OCaml 5 domains).

    A level-synchronised parallel BFS over a sharded, lock-striped state
    table: each BFS level is split into contiguous chunks, one per domain,
    successors are expanded per-domain and interned into the shard owning
    their {!System.S.hash_state}, and freshly discovered states are handed
    back in batches to form the next level.  A final sequential replay over
    the collected integer adjacency renumbers states into canonical
    sequential BFS discovery order, so results are {e deterministic and
    byte-identical} to the sequential engine:

    - {!space} produces exactly the {!Explore.space} result — same state
      numbering, same transition order, same [states] array, same
      [complete] flag, and the same truncation contract under
      [max_states] — for every domain count;
    - {!find} agrees with {!Explore.find} on the verdict constructor, on
      the witness trace length (shortest), and on {!Explore.Bound_hit}
      truncation behaviour (the racing domains are canonicalised to a
      minimal-depth witness);
    - {!count} agrees with {!Explore.count}.

    [domains] defaults to [Domain.recommended_domain_count ()]; [1] runs
    the whole pipeline on the calling domain.  [shards] (default 64,
    rounded up to a power of two) sets the number of lock stripes of the
    state table.  Worker domains are spawned once per exploration and
    synchronise per level, so the hand-off cost is two condvar round-trips
    per BFS level. *)

type stats = {
  states : int;  (** canonical (retained) states *)
  transitions : int;
  wall_seconds : float;
  states_per_sec : float;
  peak_frontier : int;  (** largest BFS level *)
  depth_histogram : int array;  (** states discovered per BFS level *)
  shard_occupancy : int array;  (** interned states per table shard *)
  domains_used : int;
}

val pp_stats : Format.formatter -> stats -> unit

val space :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  ?progress:(depth:int -> states:int -> frontier:int -> unit) ->
  ('s, 'l) System.t ->
  ('s, 'l) Explore.space
(** [space sys] builds the reachable state graph in parallel.  The result
    is byte-identical to [Explore.space ?max_states sys] regardless of
    [domains].  [progress] is invoked once per BFS level (from the
    coordinating domain) with the current depth, interned state count and
    frontier size.

    [expected_states] (typically the lint pass's static state bound)
    pre-sizes the lock-striped state table: the hint is clamped to
    {!Explore.sizing_cap} and split evenly across the shards, replacing
    the default 512-slot initial shards and the rehash-and-copy cycles
    of growing them.  Results are unaffected. *)

val space_stats :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  ?progress:(depth:int -> states:int -> frontier:int -> unit) ->
  ('s, 'l) System.t ->
  ('s, 'l) Explore.space * stats
(** Like {!space}, additionally returning exploration statistics. *)

val count :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  ('s, 'l) System.t ->
  int * bool
(** Parallel {!Explore.count}: reachable-state count plus completeness
    flag, without retaining the graph. *)

val find :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?shards:int ->
  goal:('s -> bool) ->
  ('s, 'l) System.t ->
  ('s, 'l) Explore.verdict
(** Parallel {!Explore.find}: domains race over each BFS level and the
    winner is canonicalised to a minimal-depth witness, so [Reached]
    traces have exactly the sequential (shortest) length and replay to a
    goal state; [Unreachable] and [Bound_hit] verdicts coincide with the
    sequential engine's. *)
