type 'l t =
  | True
  | False
  | Atom of string * (int -> bool)
  | Can of string * ('l -> bool)
  | Not of 'l t
  | And of 'l t * 'l t
  | Or of 'l t * 'l t
  | EX of 'l t
  | EF of 'l t
  | EG of 'l t
  | AX of 'l t
  | AF of 'l t
  | AG of 'l t
  | EU of 'l t * 'l t
  | AU of 'l t * 'l t

let atom name pred = Atom (name, pred)
let can name pred = Can (name, pred)
let implies a b = Or (Not a, b)

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom (name, _) | Can (name, _) -> Format.pp_print_string ppf name
  | Not f -> Format.fprintf ppf "!(%a)" pp f
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | EX f -> Format.fprintf ppf "EX (%a)" pp f
  | EF f -> Format.fprintf ppf "EF (%a)" pp f
  | EG f -> Format.fprintf ppf "EG (%a)" pp f
  | AX f -> Format.fprintf ppf "AX (%a)" pp f
  | AF f -> Format.fprintf ppf "AF (%a)" pp f
  | AG f -> Format.fprintf ppf "AG (%a)" pp f
  | EU (a, b) -> Format.fprintf ppf "E[%a U %a]" pp a pp b
  | AU (a, b) -> Format.fprintf ppf "A[%a U %a]" pp a pp b

let eval g formula =
  let n = Lts.Graph.num_states g in
  (* Reverse-edge table, shared across the recursive evaluation. *)
  let pred = lazy (Lts.Graph.predecessors g) in
  (* EX over a set: states with some successor in the set. *)
  let ex set =
    let out = Array.make n false in
    for s = 0 to n - 1 do
      if
        (not out.(s))
        && List.exists (fun (_, s') -> set.(s')) (Lts.Graph.successors g s)
      then out.(s) <- true
    done;
    out
  in
  (* least fixpoint of  b ∨ (a ∧ EX ·)  — E[a U b], backward worklist. *)
  let eu a b =
    let sat = Array.copy b in
    let queue = Queue.create () in
    Array.iteri (fun s v -> if v then Queue.add s queue) b;
    while not (Queue.is_empty queue) do
      let s' = Queue.pop queue in
      List.iter
        (fun s ->
          if (not sat.(s)) && a.(s) then begin
            sat.(s) <- true;
            Queue.add s queue
          end)
        (Lazy.force pred).(s')
    done;
    sat
  in
  (* greatest fixpoint of  a ∧ EX ·  — EG a, by pruning states that lose
     all successors inside the candidate set. *)
  let eg a =
    let sat = Array.copy a in
    (* successors-in-set counters *)
    let count = Array.make n 0 in
    Lts.Graph.fold_transitions
      (fun s _ s' () -> if sat.(s') then count.(s) <- count.(s) + 1)
      g ();
    let queue = Queue.create () in
    for s = 0 to n - 1 do
      if sat.(s) && count.(s) = 0 then Queue.add s queue
    done;
    while not (Queue.is_empty queue) do
      let s' = Queue.pop queue in
      if sat.(s') then begin
        sat.(s') <- false;
        List.iter
          (fun s ->
            if sat.(s) then begin
              count.(s) <- count.(s) - 1;
              if count.(s) = 0 then Queue.add s queue
            end)
          (Lazy.force pred).(s')
      end
    done;
    sat
  in
  let const v = Array.make n v in
  let lift2 f a b = Array.init n (fun s -> f a.(s) b.(s)) in
  let neg a = Array.map not a in
  let rec go = function
    | True -> const true
    | False -> const false
    | Atom (_, p) -> Array.init n p
    | Can (_, p) ->
        Array.init n (fun s ->
            List.exists (fun (l, _) -> p l) (Lts.Graph.successors g s))
    | Not f -> neg (go f)
    | And (a, b) -> lift2 ( && ) (go a) (go b)
    | Or (a, b) -> lift2 ( || ) (go a) (go b)
    | EX f -> ex (go f)
    | AX f ->
        (* all successors satisfy f; vacuously true in deadlocks *)
        let sat = go f in
        Array.init n (fun s ->
            List.for_all (fun (_, s') -> sat.(s')) (Lts.Graph.successors g s))
    | EF f -> eu (const true) (go f)
    | EU (a, b) -> eu (go a) (go b)
    | EG f -> eg (go f)
    | AF f -> neg (eg (neg (go f)))
    | AG f -> neg (eu (const true) (neg (go f)))
    | AU (a, b) ->
        (* A[a U b] = ¬(E[¬b U ¬a∧¬b] ∨ EG ¬b) *)
        let na = neg (go a) and nb = neg (go b) in
        neg (lift2 ( || ) (eu nb (lift2 ( && ) na nb)) (eg nb))
  in
  go formula

let holds g formula = (eval g formula).(Lts.Graph.initial g)

let witness_ef g formula =
  let sat = eval g formula in
  Lts.Graph.trace_to g (fun s -> sat.(s))
