let magic = "HBCKPT01"
let version = 1

let save ~file ~kind payload =
  let data = Marshal.to_string payload [] in
  let digest = Digest.string data in
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      output_binary_int oc (String.length kind);
      output_string oc kind;
      output_string oc digest;
      output_binary_int oc (String.length data);
      output_string oc data);
  Sys.rename tmp file

let load ~file ~kind =
  match open_in_bin file with
  | exception Sys_error e -> Error e
  | ic -> (
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            let m = really_input_string ic (String.length magic) in
            if m <> magic then Error "not a checkpoint file (bad magic)"
            else
              let v = input_binary_int ic in
              if v <> version then
                Error
                  (Printf.sprintf
                     "checkpoint version %d not supported (expected %d)" v
                     version)
              else
                let klen = input_binary_int ic in
                if klen < 0 || klen > 65536 then
                  Error "corrupt checkpoint (kind length)"
                else
                  let k = really_input_string ic klen in
                  if k <> kind then
                    Error
                      (Printf.sprintf
                         "checkpoint kind mismatch: file was written by %S, \
                          this run is %S"
                         k kind)
                  else
                    let digest = really_input_string ic 16 in
                    let len = input_binary_int ic in
                    if len < 0 then Error "corrupt checkpoint (payload length)"
                    else
                      let data = really_input_string ic len in
                      if Digest.string data <> digest then
                        Error "corrupt checkpoint (digest mismatch)"
                      else Ok (Marshal.from_string data 0)
          with End_of_file -> Error "truncated checkpoint"))
