(** Safety checking: monitor products and reachability verdicts.

    Combines a {!System.S} with a {!Monitor.t} (or a state predicate) and
    searches for a violation, returning a shortest counterexample trace when
    one exists — the workflow the paper performs with CADP (µ-calculus
    safety formulae on the mCRL2 state space) and with UPPAAL (reachability
    of monitor error locations). *)

type 'l verdict =
  | Holds  (** exhaustive exploration found no violation *)
  | Violated of 'l list  (** shortest counterexample, as a label trace *)
  | Unknown of int  (** state bound hit before a verdict was reached *)
  | Exhausted of Explore.exhaustion
      (** the resource budget tripped (or a successor function crashed
          in the parallel engine) before a verdict was reached: no
          violation among the [states_so_far] states actually visited,
          with the store's coverage estimate qualifying how much of the
          space that is *)

val check_monitor :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?slice:('s, 'l) System.t ->
  ?reduction:('s, 'l) System.t ->
  ?parallel_reduction:bool ->
  ?store:Store.mode ->
  ?workstealing:bool ->
  ?budget:Budget.t ->
  ?degrade:bool ->
  ('s, 'l) System.t ->
  'l Monitor.t ->
  'l verdict
(** [check_monitor sys m] explores the product of [sys] and [m] and reports
    whether an accepting monitor state is reachable.  [domains] (default 1)
    selects the exploration engine: [1] uses the sequential {!Explore},
    more uses the parallel {!Pexplore} with that many domains; verdicts
    and counterexample lengths are identical either way.  [expected_states]
    is forwarded to the engine as a table pre-sizing hint (see
    {!Pexplore.space}); it never affects verdicts.

    [store] (default {!Store.Exact}) selects the state-storage mode; any
    non-exact store routes through {!Pexplore} even on one domain.  A
    {!Holds} verdict obtained under {!Store.Hash_compaction} or
    {!Store.Bitstate} is {e probabilistic}: fingerprint-colliding states
    are conflated and never expanded, so a violation reachable only
    through an omitted state is missed — "no violation" then means "no
    violation in the covered fraction of the space" (the omission
    estimate is {!Store.coverage}; surface it via
    {!Pexplore.count_stats}).  A [Violated] verdict is always real: its
    trace replays on the uncompressed system.  [workstealing] picks the
    {!Pexplore} engine variant explicitly (default: work-stealing).

    [budget] bounds the search by wall clock and/or live heap; a trip
    yields the qualified {!Exhausted} verdict instead of running to
    completion.  With [degrade = true] (the default when a budget with
    a memory limit is given to the parallel engine) a memory trip first
    walks the store down the compression ladder
    ([Exact -> Hash_compaction -> Bitstate]) and only exhausts once at
    the bottom — the run then completes with a probabilistic verdict
    instead of dying.

    [slice], when given, is a property-preserving reduced model explored
    {e in place of} [sys] (the caller guarantees it is an exact
    label-preserving projection for this monitor — see the [slice]
    library).  It replaces the base system {e before} [reduction] is
    consulted: pass a [reduction] built over the sliced model to
    compose the two.  Unlike [reduction], a slice is an ordinary
    stateless system, so it composes with any [domains] and [store].

    [reduction], when given, is explored {e in place of} [sys].  The
    caller guarantees it is a sound reduction of [sys] for this
    monitor's alphabet (e.g. [Por.reduced_system ~alphabet] over the
    names the monitor's predicates observe, plus ["tick"] for deadline
    monitors).  The verdict is then unchanged, but a [Violated] trace
    may order independent actions differently and, under a tight
    [max_states], an [Unknown] full run may become a conclusive reduced
    one (fewer states to visit).  By default a reduction implies
    [domains = 1]: the sequential cycle proviso's seen-set needs the
    deterministic sequential call order.  Pass
    [~parallel_reduction:true] {e only} when the reduction was built
    with the parallel-safe proviso ([Por.reduced_system ~par:true] /
    [Por.reduction ~par:true]); the requested [domains] then stands and
    the reduced product is explored in parallel. *)

val check_forbidden :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?slice:('s, 'l) System.t ->
  ?reduction:('s, 'l) System.t ->
  ?parallel_reduction:bool ->
  ?store:Store.mode ->
  ?workstealing:bool ->
  ?budget:Budget.t ->
  ?degrade:bool ->
  ('s, 'l) System.t ->
  'l Regex.t ->
  'l verdict
(** [check_forbidden sys r] decides the µ-calculus safety formula
    [\[r\]false]: [Violated w] means the trace [w] matches [r]. *)

val check_state :
  ?max_states:int ->
  ?expected_states:int ->
  ?domains:int ->
  ?slice:('s, 'l) System.t ->
  ?reduction:('s, 'l) System.t ->
  ?parallel_reduction:bool ->
  ?store:Store.mode ->
  ?workstealing:bool ->
  ?budget:Budget.t ->
  ?degrade:bool ->
  ('s, 'l) System.t ->
  ('s -> bool) ->
  'l verdict
(** [check_state sys bad] decides the (negated) reachability property
    [E<> bad]: [Violated w] means [w] leads to a state satisfying [bad].
    This is the UPPAAL-style check used for the timed-automata models. *)

val holds : 'l verdict -> bool
(** [holds v] is [true] only for {!Holds}. *)

val pp_verdict :
  pp_label:(Format.formatter -> 'l -> unit) -> Format.formatter -> 'l verdict -> unit
(** Render a verdict, including the counterexample trace if any. *)
