type reason =
  | Wall_clock of float
  | Memory of int
  | Cancelled
  | Crashed of string

type t = {
  wall_secs : float option;
  mem_mb : int option; (* the configured limit, for reporting *)
  mem_dyn : int Atomic.t; (* effective limit; raised by [rearm], max_int = none *)
  probe : (unit -> reason option) option;
  check_every : int; (* power of two; probes run one call in [check_every] *)
  t0 : float;
  calls : int Atomic.t;
  cancelled : bool Atomic.t;
  state : reason option Atomic.t; (* sticky trip; first writer wins *)
}

let rec pow2_ceil n k = if k >= n then k else pow2_ceil n (k * 2)

let make ?wall_secs ?mem_mb ?probe ?(check_every = 64) () =
  {
    wall_secs;
    mem_mb;
    mem_dyn = Atomic.make (match mem_mb with Some m -> m | None -> max_int);
    probe;
    check_every = pow2_ceil (max 1 check_every) 1;
    t0 = Unix.gettimeofday ();
    calls = Atomic.make 0;
    cancelled = Atomic.make false;
    state = Atomic.make None;
  }

let unlimited () = make ()
let elapsed t = Unix.gettimeofday () -. t.t0

let live_mb () =
  let words = (Gc.quick_stat ()).Gc.heap_words in
  words * (Sys.word_size / 8) / (1024 * 1024)

let trip t r = ignore (Atomic.compare_and_set t.state None (Some r))
let tripped t = Atomic.get t.state
let cancel t = Atomic.set t.cancelled true

(* The OCaml 5 major heap does not shrink in place, so after a
   degradation frees the exact table the measured heap size can stay
   above the configured limit indefinitely.  Re-arm with headroom above
   the current heap instead: the point of degrading is that *growth*
   slows, and a further trip should mean the compressed run itself is
   outgrowing memory, not that the old high-water mark lingers. *)
let rearm t =
  match Atomic.get t.state with
  | Some (Memory _) as prev ->
      (match t.mem_mb with
      | Some limit ->
          let headroom = max 16 (limit / 2) in
          Atomic.set t.mem_dyn (max limit (live_mb () + headroom))
      | None -> ());
      ignore (Atomic.compare_and_set t.state prev None)
  | _ -> ()

(* The expensive part of a poll: only runs one call in [check_every]. *)
let probe_now t =
  if Atomic.get t.cancelled then Some Cancelled
  else
    let wall =
      match t.wall_secs with
      | Some limit when elapsed t > limit -> Some (Wall_clock limit)
      | _ -> None
    in
    match wall with
    | Some _ -> wall
    | None -> (
        let mem =
          match t.mem_mb with
          | Some limit when live_mb () > Atomic.get t.mem_dyn ->
              Some (Memory limit)
          | _ -> None
        in
        match mem with
        | Some _ -> mem
        | None -> ( match t.probe with Some f -> f () | None -> None))

let check t =
  match Atomic.get t.state with
  | Some _ as r -> r
  | None ->
      if Atomic.get t.cancelled then (
        trip t Cancelled;
        Atomic.get t.state)
      else if Atomic.fetch_and_add t.calls 1 land (t.check_every - 1) <> 0
      then None
      else
        match probe_now t with
        | Some r ->
            trip t r;
            Atomic.get t.state
        | None -> None

let install_signal_handlers ?(on_force = fun () -> exit 130) t =
  let hits = Atomic.make 0 in
  let handle _ =
    if Atomic.fetch_and_add hits 1 >= 1 then on_force () else cancel t
  in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let reason_name = function
  | Wall_clock _ -> "wall-clock"
  | Memory _ -> "memory"
  | Cancelled -> "interrupted"
  | Crashed _ -> "crashed"

let pp_reason ppf = function
  | Wall_clock s ->
      Format.fprintf ppf "wall-clock budget (%gs) exhausted" s
  | Memory mb -> Format.fprintf ppf "memory budget (%d MB) exhausted" mb
  | Cancelled -> Format.fprintf ppf "interrupted"
  | Crashed msg -> Format.fprintf ppf "successor function crashed: %s" msg
