type ('s, 'l) space = {
  lts : 'l Lts.Graph.t;
  states : 's array;
  complete : bool;
}

let default_max = 1_000_000

(* Initial capacity of the duplicate-detection tables.  A good
   [expected_states] hint (e.g. the lint pass's static state bound)
   skips the rehash-and-copy cycles of growing from the default; the
   clamp keeps a wildly overestimated bound from allocating a huge empty
   table. *)
let sizing_cap = 1 lsl 22

let initial_capacity expected_states =
  match expected_states with
  | None -> 4096
  | Some n -> max 4096 (min n sizing_cap)

(* A hash table keyed by the system's own state equality and hash. *)
module Table (S : System.S) = Hashtbl.Make (struct
  type t = S.state

  let equal = S.equal_state
  let hash = S.hash_state
end)

let space (type s l) ?(max_states = default_max) ?expected_states
    (sys : (s, l) System.t) : (s, l) space =
  let module S = (val sys) in
  let module T = Table (S) in
  let index = T.create (initial_capacity expected_states) in
  let states = ref [] in
  let count = ref 0 in
  let complete = ref true in
  let intern s =
    match T.find_opt index s with
    | Some i -> i
    | None ->
        let i = !count in
        T.add index s i;
        states := s :: !states;
        incr count;
        i
  in
  let transitions = ref [] in
  let queue = Queue.create () in
  let i0 = intern S.initial in
  Queue.add (i0, S.initial) queue;
  while not (Queue.is_empty queue) do
    let i, s = Queue.pop queue in
    List.iter
      (fun (l, s') ->
        (* Truncation contract: once the bound is reached no new state is
           interned, but every retained state is still expanded and
           transitions between retained states are kept — the result is
           the induced subgraph on the first [max_states] states in BFS
           discovery order (see the .mli). *)
        if !count < max_states || T.mem index s' then begin
          let before = !count in
          let j = intern s' in
          transitions := (i, l, j) :: !transitions;
          if j >= before then Queue.add (j, s') queue
        end
        else complete := false)
      (S.successors s)
  done;
  let states = Array.of_list (List.rev !states) in
  let lts =
    Lts.Graph.make ~num_states:!count ~initial:i0 (List.rev !transitions)
  in
  { lts; states; complete = !complete }

type ('s, 'l) witness = { trace : 'l list; state : 's }

type ('s, 'l) verdict =
  | Unreachable
  | Reached of ('s, 'l) witness
  | Bound_hit of int

let find (type s l) ?(max_states = default_max) ?expected_states ~goal
    (sys : (s, l) System.t) : (s, l) verdict =
  let module S = (val sys) in
  let module T = Table (S) in
  let visited = T.create (initial_capacity expected_states) in
  (* Parent pointers for shortest-trace reconstruction: state index ->
     (label, parent index); states are also kept in an extensible array. *)
  let states = ref [||] in
  let parents = ref [||] in
  let count = ref 0 in
  let push s parent =
    if !count >= Array.length !states then begin
      let cap = max 64 (2 * Array.length !states) in
      let grow a fill = Array.append a (Array.make (cap - Array.length a) fill) in
      states := grow !states s;
      parents := grow !parents parent
    end;
    !states.(!count) <- s;
    !parents.(!count) <- parent;
    T.add visited s !count;
    incr count;
    !count - 1
  in
  let rebuild i =
    let rec go i acc =
      match !parents.(i) with
      | None -> acc
      | Some (l, p) -> go p (l :: acc)
    in
    go i []
  in
  if goal S.initial then Reached { trace = []; state = S.initial }
  else begin
    let queue = Queue.create () in
    let i0 = push S.initial None in
    Queue.add i0 queue;
    let result = ref None in
    let truncated = ref false in
    (try
       while not (Queue.is_empty queue) do
         let i = Queue.pop queue in
         let s = !states.(i) in
         List.iter
           (fun (l, s') ->
             if not (T.mem visited s') then
               if !count >= max_states then truncated := true
               else begin
                 let j = push s' (Some (l, i)) in
                 if goal s' then begin
                   result := Some (rebuild j, s');
                   raise Exit
                 end;
                 Queue.add j queue
               end)
           (S.successors s)
       done
     with Exit -> ());
    match !result with
    | Some (trace, state) -> Reached { trace; state }
    | None -> if !truncated then Bound_hit max_states else Unreachable
  end

let count (type s l) ?(max_states = default_max) ?expected_states
    (sys : (s, l) System.t) =
  let module S = (val sys) in
  let module T = Table (S) in
  let visited = T.create (initial_capacity expected_states) in
  let queue = Queue.create () in
  let complete = ref true in
  T.add visited S.initial ();
  Queue.add S.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (_, s') ->
        if not (T.mem visited s') then
          if T.length visited >= max_states then complete := false
          else begin
            T.add visited s' ();
            Queue.add s' queue
          end)
      (S.successors s)
  done;
  (T.length visited, !complete)
