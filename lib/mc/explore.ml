type ('s, 'l) space = {
  lts : 'l Lts.Graph.t;
  states : 's array;
  complete : bool;
}

let default_max = 1_000_000

(* Initial capacity of the duplicate-detection tables.  A good
   [expected_states] hint (e.g. the lint pass's static state bound)
   skips the rehash-and-copy cycles of growing from the default; the
   clamp keeps a wildly overestimated bound from allocating a huge empty
   table. *)
let sizing_cap = 1 lsl 22

let initial_capacity expected_states =
  match expected_states with
  | None -> 4096
  | Some n -> max 4096 (min n sizing_cap)

(* A hash table keyed by the system's own state equality and hash. *)
module Table (S : System.S) = Hashtbl.Make (struct
  type t = S.state

  let equal = S.equal_state
  let hash = S.hash_state
end)

type exhaustion = {
  reason : Budget.reason;
  states_so_far : int;
  coverage : Store.coverage;
}

let pp_exhaustion ppf e =
  Format.fprintf ppf "exhausted after %d states: %a" e.states_so_far
    Budget.pp_reason e.reason

type ('s, 'l) cursor = {
  c_max_states : int;
  c_states : 's array; (* discovery order; index = state id *)
  c_depths : int array;
  c_trans : (int * 'l * int) list; (* accumulated, newest first *)
  c_queue : int array; (* unexpanded state ids, front first *)
  c_complete : bool;
}

let cursor_states c = Array.length c.c_states
let cursor_frontier c = Array.length c.c_queue

type ('s, 'l) run_result =
  | Done of ('s, 'l) space
  | Suspended of Budget.reason * ('s, 'l) cursor

let space_run (type s l) ?(max_states = default_max) ?expected_states ?budget
    ?checkpoint ?resume (sys : (s, l) System.t) : (s, l) run_result =
  let module S = (val sys) in
  let module T = Table (S) in
  let index = T.create (initial_capacity expected_states) in
  let states = ref [] in
  let depths = ref [] in
  let count = ref 0 in
  let complete = ref true in
  let transitions = ref [] in
  (* Queue entries carry the BFS depth so cursors record it for the
     parallel engine's truncation machinery; the sequential loop itself
     never branches on it. *)
  let queue : (int * s * int) Queue.t = Queue.create () in
  let intern s d =
    match T.find_opt index s with
    | Some i -> i
    | None ->
        let i = !count in
        T.add index s i;
        states := s :: !states;
        depths := d :: !depths;
        incr count;
        i
  in
  (match resume with
  | None ->
      let i0 = intern S.initial 0 in
      Queue.add (i0, S.initial, 0) queue
  | Some c ->
      if c.c_max_states <> max_states then
        invalid_arg
          (Printf.sprintf
             "Mc.Explore.space_run: checkpoint was taken with \
              max_states=%d, resumed with %d"
             c.c_max_states max_states);
      (* Re-interning in discovery order reproduces the table, the
         reversed state list and the id counter exactly, so the
         continuation is byte-identical to an uninterrupted run. *)
      Array.iteri (fun i s -> ignore (intern s c.c_depths.(i))) c.c_states;
      transitions := c.c_trans;
      complete := c.c_complete;
      Array.iter
        (fun i -> Queue.add (i, c.c_states.(i), c.c_depths.(i)) queue)
        c.c_queue);
  let snapshot () =
    {
      c_max_states = max_states;
      c_states = Array.of_list (List.rev !states);
      c_depths = Array.of_list (List.rev !depths);
      c_trans = !transitions;
      c_queue =
        Array.of_seq (Seq.map (fun (i, _, _) -> i) (Queue.to_seq queue));
      c_complete = !complete;
    }
  in
  let expanded = ref 0 in
  let suspended = ref None in
  (try
     while not (Queue.is_empty queue) do
       (match budget with
       | Some b -> (
           match Budget.check b with
           | Some r ->
               suspended := Some (Suspended (r, snapshot ()));
               raise Exit
           | None -> ())
       | None -> ());
       let i, s, d = Queue.pop queue in
       List.iter
         (fun (l, s') ->
           (* Truncation contract: once the bound is reached no new state
              is interned, but every retained state is still expanded and
              transitions between retained states are kept — the result
              is the induced subgraph on the first [max_states] states in
              BFS discovery order (see the .mli). *)
           if !count < max_states || T.mem index s' then begin
             let before = !count in
             let j = intern s' (d + 1) in
             transitions := (i, l, j) :: !transitions;
             if j >= before then Queue.add (j, s', d + 1) queue
           end
           else complete := false)
         (S.successors s);
       incr expanded;
       match checkpoint with
       | Some (every, f) when every > 0 && !expanded mod every = 0 ->
           f (snapshot ())
       | _ -> ()
     done
   with Exit -> ());
  match !suspended with
  | Some r -> r
  | None ->
      let states = Array.of_list (List.rev !states) in
      let lts =
        Lts.Graph.make ~num_states:!count ~initial:0 (List.rev !transitions)
      in
      Done { lts; states; complete = !complete }

let space ?max_states ?expected_states sys =
  match space_run ?max_states ?expected_states sys with
  | Done sp -> sp
  | Suspended _ -> assert false (* no budget, cannot suspend *)

type ('s, 'l) witness = { trace : 'l list; state : 's }

type ('s, 'l) verdict =
  | Unreachable
  | Reached of ('s, 'l) witness
  | Bound_hit of int
  | Exhausted of exhaustion

let find (type s l) ?(max_states = default_max) ?expected_states ?budget ~goal
    (sys : (s, l) System.t) : (s, l) verdict =
  let module S = (val sys) in
  let module T = Table (S) in
  let visited = T.create (initial_capacity expected_states) in
  (* Parent pointers for shortest-trace reconstruction: state index ->
     (label, parent index); states are also kept in an extensible array. *)
  let states = ref [||] in
  let parents = ref [||] in
  let count = ref 0 in
  let push s parent =
    if !count >= Array.length !states then begin
      let cap = max 64 (2 * Array.length !states) in
      let grow a fill = Array.append a (Array.make (cap - Array.length a) fill) in
      states := grow !states s;
      parents := grow !parents parent
    end;
    !states.(!count) <- s;
    !parents.(!count) <- parent;
    T.add visited s !count;
    incr count;
    !count - 1
  in
  let rebuild i =
    let rec go i acc =
      match !parents.(i) with
      | None -> acc
      | Some (l, p) -> go p (l :: acc)
    in
    go i []
  in
  if goal S.initial then Reached { trace = []; state = S.initial }
  else begin
    let queue = Queue.create () in
    let i0 = push S.initial None in
    Queue.add i0 queue;
    let result = ref None in
    let exhausted = ref None in
    let truncated = ref false in
    (try
       while not (Queue.is_empty queue) do
         (match budget with
         | Some b -> (
             match Budget.check b with
             | Some r ->
                 exhausted := Some r;
                 raise Exit
             | None -> ())
         | None -> ());
         let i = Queue.pop queue in
         let s = !states.(i) in
         List.iter
           (fun (l, s') ->
             if not (T.mem visited s') then
               if !count >= max_states then truncated := true
               else begin
                 let j = push s' (Some (l, i)) in
                 if goal s' then begin
                   result := Some (rebuild j, s');
                   raise Exit
                 end;
                 Queue.add j queue
               end)
           (S.successors s)
       done
     with Exit -> ());
    match (!result, !exhausted) with
    | Some (trace, state), _ -> Reached { trace; state }
    | None, Some reason ->
        Exhausted
          {
            reason;
            states_so_far = !count;
            coverage = Store.coverage_of ~mode:Store.exact ~stored:!count;
          }
    | None, None -> if !truncated then Bound_hit max_states else Unreachable
  end

let count (type s l) ?(max_states = default_max) ?expected_states ?budget
    (sys : (s, l) System.t) =
  let module S = (val sys) in
  let module T = Table (S) in
  let visited = T.create (initial_capacity expected_states) in
  let queue = Queue.create () in
  let complete = ref true in
  T.add visited S.initial ();
  Queue.add S.initial queue;
  (try
     while not (Queue.is_empty queue) do
       (match budget with
       | Some b -> (
           match Budget.check b with
           | Some _ ->
               complete := false;
               raise Exit
           | None -> ())
       | None -> ());
       let s = Queue.pop queue in
       List.iter
         (fun (_, s') ->
           if not (T.mem visited s') then
             if T.length visited >= max_states then complete := false
             else begin
               T.add visited s' ();
               Queue.add s' queue
             end)
         (S.successors s)
     done
   with Exit -> ());
  (T.length visited, !complete)
