(** Explicit-state exploration.

    Breadth-first exploration of a {!System.S} with hashed duplicate
    detection, producing either the full state space as an
    {!Lts.Graph.t}, a shortest witness trace to a goal state, or summary
    statistics.  All entry points take an optional [max_states] bound; when
    the bound is hit the result is marked incomplete rather than failing. *)

type ('s, 'l) space = {
  lts : 'l Lts.Graph.t;  (** the explored state graph *)
  states : 's array;  (** state of each LTS node *)
  complete : bool;  (** [false] iff exploration hit [max_states] *)
}

val default_max : int
(** The default [max_states] bound (one million). *)

val sizing_cap : int
(** Upper clamp (2{^22}) applied to [expected_states] hints when sizing
    the duplicate-detection tables, so an overestimated static bound
    cannot allocate a huge empty table. *)

val space :
  ?max_states:int -> ?expected_states:int -> ('s, 'l) System.t -> ('s, 'l) space
(** [space sys] builds the reachable state graph of [sys] breadth-first.
    [max_states] defaults to {!default_max}.

    {b Truncation contract.}  State [0] is the initial state and states are
    numbered in BFS discovery order (for each explored state in index
    order, successors are interned in the order {!System.S.successors}
    lists them).  When the reachable space exceeds [max_states], the result
    is the {e induced subgraph} on the first [max_states] states in that
    discovery order: every such state is still expanded, a transition is
    kept if and only if both its endpoints are among the retained states,
    and [complete] is [false] exactly when at least one successor fell
    outside the retained set.  In particular a bound equal to the exact
    number of reachable states yields [complete = true], and for a fixed
    successor function the truncated result is fully deterministic:
    [states] is a prefix of the unbounded [states] array and the transition
    list is the order-preserving restriction of the unbounded one. *)

type ('s, 'l) witness = {
  trace : 'l list;  (** labels of a shortest path from the initial state *)
  state : 's;  (** the reached goal state *)
}

type ('s, 'l) verdict =
  | Unreachable  (** exhaustive search found no goal state *)
  | Reached of ('s, 'l) witness
  | Bound_hit of int  (** no goal within the first [n] states explored *)

val find :
  ?max_states:int ->
  ?expected_states:int ->
  goal:('s -> bool) ->
  ('s, 'l) System.t ->
  ('s, 'l) verdict
(** [find ~goal sys] searches breadth-first for a state satisfying [goal],
    returning a shortest witness trace when one exists. *)

val count :
  ?max_states:int -> ?expected_states:int -> ('s, 'l) System.t -> int * bool
(** [count sys] is the number of reachable states paired with a completeness
    flag; cheaper than {!space} as no graph is retained.

    All entry points accept an [expected_states] hint (typically the lint
    pass's static state bound) that pre-sizes the duplicate-detection
    table, clamped to [[4096, sizing_cap]]; results are unaffected. *)
