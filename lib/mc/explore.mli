(** Explicit-state exploration.

    Breadth-first exploration of a {!System.S} with hashed duplicate
    detection, producing either the full state space as an
    {!Lts.Graph.t}, a shortest witness trace to a goal state, or summary
    statistics.  All entry points take an optional [max_states] bound; when
    the bound is hit the result is marked incomplete rather than failing.

    Entry points additionally accept a {!Budget.t}: the loop polls it
    once per expanded state and, on a trip, stops cooperatively — {!find}
    and {!count} report partial results, while {!space_run} suspends into
    a {!cursor} from which the run can later be resumed {e byte-identically}
    (same states array, same transition order, same graph) to an
    uninterrupted run. *)

type ('s, 'l) space = {
  lts : 'l Lts.Graph.t;  (** the explored state graph *)
  states : 's array;  (** state of each LTS node *)
  complete : bool;  (** [false] iff exploration hit [max_states] *)
}

val default_max : int
(** The default [max_states] bound (one million). *)

val sizing_cap : int
(** Upper clamp (2{^22}) applied to [expected_states] hints when sizing
    the duplicate-detection tables, so an overestimated static bound
    cannot allocate a huge empty table. *)

type exhaustion = {
  reason : Budget.reason;  (** which limit tripped *)
  states_so_far : int;  (** states interned before stopping *)
  coverage : Store.coverage;
      (** store omission estimate over the {e visited} states — the
          trivially-exact record for sequential/exact runs *)
}

val pp_exhaustion : Format.formatter -> exhaustion -> unit

type ('s, 'l) cursor = {
  c_max_states : int;  (** the bound the run was started with *)
  c_states : 's array;  (** interned states in discovery order *)
  c_depths : int array;  (** BFS depth stamp per state *)
  c_trans : (int * 'l * int) list;  (** transitions so far, newest first *)
  c_queue : int array;  (** unexpanded state ids, front first *)
  c_complete : bool;
}
(** A suspended exploration: everything needed to continue exactly where
    a budget trip or signal stopped the run.  The fields are exposed for
    the parallel engine and the checkpoint layer; treat the type as
    opaque otherwise.  Cursors are plain data (no closures) and safe to
    [Marshal] whenever the state and label types are. *)

val cursor_states : ('s, 'l) cursor -> int
val cursor_frontier : ('s, 'l) cursor -> int

type ('s, 'l) run_result =
  | Done of ('s, 'l) space
  | Suspended of Budget.reason * ('s, 'l) cursor

val space_run :
  ?max_states:int ->
  ?expected_states:int ->
  ?budget:Budget.t ->
  ?checkpoint:(int * (('s, 'l) cursor -> unit)) ->
  ?resume:('s, 'l) cursor ->
  ('s, 'l) System.t ->
  ('s, 'l) run_result
(** The resilient form of {!space}.  [checkpoint = (every, f)] calls
    [f] with a consistent snapshot after every [every] expanded states
    (use it to write periodic checkpoint files).  [resume] continues a
    suspended run; resuming with a different [max_states] than the
    cursor was taken with raises [Invalid_argument].

    {b Resume determinism.}  For a cursor produced by {e this} engine,
    [Done sp] after any number of suspend/resume round-trips is
    byte-identical to the uninterrupted result.  Cursors produced by
    the parallel engine ({!Pexplore}) use parallel discovery order, so
    resuming them here yields the same state {e set} and verdicts but
    not necessarily the same numbering. *)

val space :
  ?max_states:int -> ?expected_states:int -> ('s, 'l) System.t -> ('s, 'l) space
(** [space sys] builds the reachable state graph of [sys] breadth-first.
    [max_states] defaults to {!default_max}.

    {b Truncation contract.}  State [0] is the initial state and states are
    numbered in BFS discovery order (for each explored state in index
    order, successors are interned in the order {!System.S.successors}
    lists them).  When the reachable space exceeds [max_states], the result
    is the {e induced subgraph} on the first [max_states] states in that
    discovery order: every such state is still expanded, a transition is
    kept if and only if both its endpoints are among the retained states,
    and [complete] is [false] exactly when at least one successor fell
    outside the retained set.  In particular a bound equal to the exact
    number of reachable states yields [complete = true], and for a fixed
    successor function the truncated result is fully deterministic:
    [states] is a prefix of the unbounded [states] array and the transition
    list is the order-preserving restriction of the unbounded one. *)

type ('s, 'l) witness = {
  trace : 'l list;  (** labels of a shortest path from the initial state *)
  state : 's;  (** the reached goal state *)
}

type ('s, 'l) verdict =
  | Unreachable  (** exhaustive search found no goal state *)
  | Reached of ('s, 'l) witness
  | Bound_hit of int  (** no goal within the first [n] states explored *)
  | Exhausted of exhaustion
      (** the budget tripped (or a successor crashed, in the parallel
          engine) before the search concluded; no goal was found among
          the states visited so far *)

val find :
  ?max_states:int ->
  ?expected_states:int ->
  ?budget:Budget.t ->
  goal:('s -> bool) ->
  ('s, 'l) System.t ->
  ('s, 'l) verdict
(** [find ~goal sys] searches breadth-first for a state satisfying [goal],
    returning a shortest witness trace when one exists.  A goal state
    found before the budget trips is always reported as {!Reached} —
    {!Exhausted} means the search was cut short while still empty. *)

val count :
  ?max_states:int ->
  ?expected_states:int ->
  ?budget:Budget.t ->
  ('s, 'l) System.t ->
  int * bool
(** [count sys] is the number of reachable states paired with a completeness
    flag; cheaper than {!space} as no graph is retained.  A budget trip
    reports the states counted so far with [complete = false].

    All entry points accept an [expected_states] hint (typically the lint
    pass's static state bound) that pre-sizes the duplicate-detection
    table, clamped to [[4096, sizing_cap]]; results are unaffected. *)
