(* State-storage modes for the exploration engines.  See store.mli for
   the contract; the concurrency story is the same lock-striping used by
   the explorer table: a state is owned by exactly one stripe (selected
   from its key hash, or from its fingerprint in the compressed modes so
   that colliding states are serialised through the same lock), and all
   per-state mutation happens under that stripe's mutex.  The
   provisional-id counter is a plain [Atomic.t] fetched while holding
   the stripe lock, which makes ids dense and insertion atomic.

   The representation is additionally *mutable*: when a memory budget
   trips, [degrade] swaps the whole table one rung down the compression
   ladder (Exact -> Hash_compaction -> Bitstate) while holding every
   stripe lock.  Readers therefore re-check the representation after
   acquiring their stripe lock and retry against the new one if a swap
   raced them. *)

type mode =
  | Exact
  | Hash_compaction of { bits : int }
  | Bitstate of { log2_bits : int; hashes : int }

let exact = Exact
let hash_compaction = Hash_compaction { bits = 62 }
let bitstate = Bitstate { log2_bits = 25; hashes = 3 }

let clamp lo hi v = max lo (min hi v)

let mode_name = function
  | Exact -> "exact"
  | Hash_compaction _ -> "hashcompact"
  | Bitstate _ -> "bitstate"

let of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "exact" ] -> Ok Exact
  | [ "hashcompact" ] -> Ok hash_compaction
  | [ "hashcompact"; b ] -> (
      match int_of_string_opt b with
      | Some b when b >= 1 -> Ok (Hash_compaction { bits = clamp 1 62 b })
      | _ -> Error (Printf.sprintf "invalid fingerprint width %S" b))
  | [ "bitstate" ] -> Ok bitstate
  | [ "bitstate"; m ] | [ "bitstate"; m; "" ] -> (
      match int_of_string_opt m with
      | Some m when m >= 1 ->
          Ok (Bitstate { log2_bits = clamp 10 40 m; hashes = 3 })
      | _ -> Error (Printf.sprintf "invalid bitstate size %S" m))
  | [ "bitstate"; m; k ] -> (
      match (int_of_string_opt m, int_of_string_opt k) with
      | Some m, Some k when m >= 1 && k >= 1 ->
          Ok (Bitstate { log2_bits = clamp 10 40 m; hashes = clamp 1 8 k })
      | _ -> Error (Printf.sprintf "invalid bitstate spec %S" s))
  | _ ->
      Error
        (Printf.sprintf
           "unknown store %S (expected exact, hashcompact[:BITS] or \
            bitstate[:LOG2BITS[:HASHES]])"
           s)

type coverage = {
  mode : string;
  stored : int;
  bits : int;
  hash_factor : float;
  omission_prob : float;
  est_coverage : float;
  exact : bool;
}

let pp_coverage ppf c =
  if c.exact then Format.fprintf ppf "%s (no omissions possible)" c.mode
  else
    Format.fprintf ppf
      "%s: %d states in %d bits, P(omission) ~ %.2e, est. coverage %.4f"
      c.mode c.stored c.bits c.omission_prob c.est_coverage

(* 64-bit FNV-1a over the marshalled bytes, folded to OCaml's 62 usable
   positive-int bits.  Int64 arithmetic keeps the constants exact. *)
let fingerprint (type a) (x : a) =
  let s = Marshal.to_string x [ Marshal.No_sharing ] in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Int64.to_int !h land max_int

(* splitmix64 finaliser: derives the second bitstate probe stream from a
   fingerprint so that the k probe positions are pairwise independent in
   practice (double hashing). *)
let mix64 x =
  let open Int64 in
  let x = logxor x (shift_right_logical x 30) in
  let x = mul x 0xbf58476d1ce4e5b9L in
  let x = logxor x (shift_right_logical x 27) in
  let x = mul x 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let coverage_of ~mode ~stored =
  let n = float_of_int stored in
  match mode with
  | Exact ->
      {
        mode = "exact";
        stored;
        bits = 0;
        hash_factor = 0.;
        omission_prob = 0.;
        est_coverage = 1.;
        exact = true;
      }
  | Hash_compaction { bits } ->
      (* Birthday bound: expected fingerprint collisions among n states
         drawn into 2^bits slots is ~ n(n-1)/2^(bits+1); each collision
         omits (at least) the colliding state.  P(>=1 omission) is the
         Poisson complement of zero collisions. *)
      let expected_collisions =
        n *. (n -. 1.) /. Float.of_int 2 ** float_of_int (bits + 1)
      in
      let omission_prob = 1. -. exp (-.expected_collisions) in
      let est_coverage =
        if stored = 0 then 1.
        else max 0. (1. -. (expected_collisions /. n))
      in
      {
        mode = "hashcompact";
        stored;
        bits;
        hash_factor = 0.;
        omission_prob;
        est_coverage;
        exact = false;
      }
  | Bitstate { log2_bits; hashes } ->
      (* SPIN-style estimate: after i insertions into an m-bit array
         with k probes each, a fresh state is a false positive with
         probability p(i) = (1 - e^(-ki/m))^k.  The expected number of
         omitted states is the sum of p(i) over the insertion sequence;
         the reported omission_prob is the final-fill rate p(n). *)
      let m = Float.of_int 2 ** float_of_int log2_bits in
      let k = float_of_int hashes in
      let p i = (1. -. exp (-.(k *. i /. m))) ** k in
      let expected_omitted = ref 0. in
      for i = 1 to stored do
        expected_omitted := !expected_omitted +. p (float_of_int i)
      done;
      {
        mode = "bitstate";
        stored;
        bits = 1 lsl log2_bits;
        hash_factor = (if stored = 0 then infinity else m /. n);
        omission_prob = p n;
        est_coverage =
          (if stored = 0 then 1. else n /. (n +. !expected_omitted));
        exact = false;
      }

let round_pow2 n =
  let r = ref 1 in
  while !r < n do
    r := !r lsl 1
  done;
  !r

module Make (K : sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end) =
struct
  module T = Hashtbl.Make (struct
    type t = K.t

    let equal = K.equal
    let hash = K.hash
  end)

  type entry = { pid : int; mutable depth : int }

  type repr =
    | Rexact of entry T.t array
    | Rfp of { bits : int; shards : (int, entry) Hashtbl.t array }
    | Rbit of { log2_bits : int; hashes : int; words : int Atomic.t array }

  type t = {
    mutable mode : mode;
    mutable repr : repr; (* swapped under ALL stripe locks by [degrade] *)
    locks : Mutex.t array;
    mask : int;
    next : int Atomic.t;
    filled : int array; (* insertions per stripe, under the stripe lock *)
    fp : K.t -> int;
  }

  type intern_result = Fresh of int | Known of int | Relaxed of int * int

  let create ?(expected = 1024) ?(fingerprint = fingerprint) ~shards mode =
    let nshards = round_pow2 (max 1 shards) in
    let per_shard = max 64 (expected / nshards) in
    let repr =
      match mode with
      | Exact -> Rexact (Array.init nshards (fun _ -> T.create per_shard))
      | Hash_compaction { bits } ->
          Rfp
            {
              bits = clamp 1 62 bits;
              shards = Array.init nshards (fun _ -> Hashtbl.create per_shard);
            }
      | Bitstate { log2_bits; hashes } ->
          let log2_bits = clamp 10 40 log2_bits in
          let nwords = ((1 lsl log2_bits) + 62) / 63 in
          Rbit
            {
              log2_bits;
              hashes = clamp 1 8 hashes;
              words = Array.init nwords (fun _ -> Atomic.make 0);
            }
    in
    {
      mode;
      repr;
      locks = Array.init nshards (fun _ -> Mutex.create ());
      mask = nshards - 1;
      next = Atomic.make 0;
      filled = Array.make nshards 0;
      fp = fingerprint;
    }

  let total t = Atomic.get t.next
  let current_mode t = t.mode
  let tracks_pids t = match t.repr with Rbit _ -> false | _ -> true
  let occupancy t = Array.copy t.filled
  let coverage t = coverage_of ~mode:t.mode ~stored:(Atomic.get t.next)

  let fresh_id t shard =
    t.filled.(shard) <- t.filled.(shard) + 1;
    Atomic.fetch_and_add t.next 1

  (* Run [f] under the stripe lock — via [Fun.protect], so a raising
     user [hash]/[equal] can never leave the mutex held — but only if
     the representation was not swapped by [degrade] between computing
     the shard and acquiring the lock.  [None] means "stale repr, pick
     the shard again". *)
  let with_stripe t shard repr f =
    let lock = t.locks.(shard) in
    Mutex.lock lock;
    if t.repr != repr then (
      Mutex.unlock lock;
      None)
    else Some (Fun.protect ~finally:(fun () -> Mutex.unlock lock) f)

  (* Exact and fingerprint shards share the same intern shape: find the
     entry (already under the stripe lock), insert with a fresh dense id
     when absent, relax the depth stamp when the new path is shorter. *)
  let intern_slot find add t shard ~depth =
    match find () with
    | Some e ->
        if depth < e.depth then (
          let old = e.depth in
          e.depth <- depth;
          Relaxed (e.pid, old))
        else Known e.pid
    | None ->
        let pid = fresh_id t shard in
        add { pid; depth };
        Fresh pid

  (* k probe positions in the bit array via double hashing over the
     64-bit fingerprint.  Returns true iff the bit was already set. *)
  let bit_test_set words pos =
    let w = pos / 63 and b = pos mod 63 in
    let bit = 1 lsl b in
    let rec go () =
      let cur = Atomic.get words.(w) in
      if cur land bit <> 0 then true
      else if Atomic.compare_and_set words.(w) cur (cur lor bit) then false
      else go ()
    in
    go ()

  let bit_intern t ~log2_bits ~hashes ~words f shard =
    let m1 = (1 lsl log2_bits) - 1 in
    let h1 = f land m1 in
    let h2 = (Int64.to_int (mix64 (Int64.of_int f)) land m1) lor 1 in
    let seen = ref true in
    let pos = ref h1 in
    for _ = 1 to hashes do
      if not (bit_test_set words !pos) then seen := false;
      pos := (!pos + h2) land m1
    done;
    if !seen then Known (-1) else Fresh (fresh_id t shard)

  let rec intern t s ~depth =
    let repr = t.repr in
    let res =
      match repr with
      | Rexact shards ->
          let shard = K.hash s land max_int land t.mask in
          let tbl = shards.(shard) in
          with_stripe t shard repr (fun () ->
              intern_slot
                (fun () -> T.find_opt tbl s)
                (fun e -> T.add tbl s e)
                t shard ~depth)
      | Rfp { bits; shards } ->
          (* [(1 lsl 62) - 1 = max_int] on 64-bit OCaml, so the
             full-width default masks to all usable bits *)
          let f = t.fp s land ((1 lsl bits) - 1) in
          (* shard by fingerprint so equal fingerprints serialise through
             the same stripe and are deterministically conflated *)
          let shard = f land t.mask in
          let tbl = shards.(shard) in
          with_stripe t shard repr (fun () ->
              intern_slot
                (fun () -> Hashtbl.find_opt tbl f)
                (fun e -> Hashtbl.add tbl f e)
                t shard ~depth)
      | Rbit { log2_bits; hashes; words } ->
          let f = t.fp s in
          let shard = f land t.mask in
          with_stripe t shard repr (fun () ->
              bit_intern t ~log2_bits ~hashes ~words f shard)
    in
    match res with None -> intern t s ~depth | Some r -> r

  let rec find_pid t s =
    let repr = t.repr in
    let res =
      match repr with
      | Rexact shards ->
          let shard = K.hash s land max_int land t.mask in
          with_stripe t shard repr (fun () ->
              match T.find_opt shards.(shard) s with
              | Some e -> e.pid
              | None -> -1)
      | Rfp { bits; shards } ->
          let f = t.fp s land ((1 lsl bits) - 1) in
          let shard = f land t.mask in
          with_stripe t shard repr (fun () ->
              match Hashtbl.find_opt shards.(shard) f with
              | Some e -> e.pid
              | None -> -1)
      | Rbit _ -> Some (-1)
    in
    match res with None -> find_pid t s | Some r -> r

  let lock_all t = Array.iter Mutex.lock t.locks
  let unlock_all t = Array.iter Mutex.unlock t.locks

  (* One rung down the compression ladder, in place.  Holding every
     stripe lock serialises us against all in-flight interns: each is
     either already inside its stripe (we wait for it) or will notice
     the swapped representation and retry.  Provisional ids are
     preserved, so adjacency/state vectors built by the engines stay
     valid; colliding fingerprints are conflated to the smaller pid and
     depth, exactly as if the run had started in the compressed mode. *)
  let degrade t =
    lock_all t;
    Fun.protect ~finally:(fun () -> unlock_all t) @@ fun () ->
    match t.repr with
    | Rexact shards ->
        let bits = 62 in
        let nsh = Array.length shards in
        let fresh = Array.init nsh (fun _ -> Hashtbl.create 1024) in
        Array.iter
          (fun tbl ->
            T.iter
              (fun key e ->
                let f = t.fp key land ((1 lsl bits) - 1) in
                let sh = f land t.mask in
                match Hashtbl.find_opt fresh.(sh) f with
                | Some e0 ->
                    Hashtbl.replace fresh.(sh) f
                      {
                        pid = min e.pid e0.pid;
                        depth = min e.depth e0.depth;
                      }
                | None ->
                    Hashtbl.add fresh.(sh) f { pid = e.pid; depth = e.depth })
              tbl)
          shards;
        Array.iteri (fun i tb -> t.filled.(i) <- Hashtbl.length tb) fresh;
        t.mode <- Hash_compaction { bits };
        t.repr <- Rfp { bits; shards = fresh };
        Some t.mode
    | Rfp { bits = _; shards } ->
        let log2_bits = 25 and hashes = 3 in
        let m1 = (1 lsl log2_bits) - 1 in
        let nwords = ((1 lsl log2_bits) + 62) / 63 in
        let words = Array.init nwords (fun _ -> Atomic.make 0) in
        Array.iter
          (fun tbl ->
            Hashtbl.iter
              (fun f _ ->
                let h2 =
                  (Int64.to_int (mix64 (Int64.of_int f)) land m1) lor 1
                in
                let pos = ref (f land m1) in
                for _ = 1 to hashes do
                  ignore (bit_test_set words !pos);
                  pos := (!pos + h2) land m1
                done)
              tbl)
          shards;
        t.mode <- Bitstate { log2_bits; hashes };
        t.repr <- Rbit { log2_bits; hashes; words };
        Some t.mode
    | Rbit _ -> None

  (* Depth stamp per provisional id, for checkpointing.  Ids conflated
     away by a fingerprint collision (or untracked by bitstate) keep the
     default stamp 0. *)
  let depths t =
    lock_all t;
    Fun.protect ~finally:(fun () -> unlock_all t) @@ fun () ->
    let a = Array.make (Atomic.get t.next) 0 in
    let put _ e =
      if e.pid >= 0 && e.pid < Array.length a then a.(e.pid) <- e.depth
    in
    (match t.repr with
    | Rexact shards -> Array.iter (T.iter put) shards
    | Rfp { shards; _ } -> Array.iter (Hashtbl.iter put) shards
    | Rbit _ -> ());
    a
end
