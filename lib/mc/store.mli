(** State-storage modes for the exploration engines: exact, SPIN-style
    hash compaction, and bitstate/supertrace hashing.

    The explorers deduplicate visited states in a sharded, lock-striped
    table.  This module abstracts {e what the table stores per state}:

    - {!Exact} keeps the full state as the key — today's behaviour, no
      omissions, byte-identical replay possible;
    - {!Hash_compaction} keeps only a [bits]-bit fingerprint of the
      state (computed from its marshalled representation).  Two distinct
      states with equal fingerprints are conflated, so a vanishingly
      small fraction of the space can be {e omitted} — never
      over-counted;
    - {!Bitstate} (Holzmann's supertrace) keeps [k] bits in a
      [2^log2_bits]-bit array per state and no state identity at all:
      maximal compression, probabilistic coverage, no canonical replay.

    Every mode reports a {!coverage} estimate in the exploration stats:
    for bitstate the SPIN-style omission probability
    [(1 - e^(-kn/m))^k] at the final fill and the implied expected
    coverage; for hash compaction the birthday-bound collision estimate;
    for exact the trivially certain values.

    Fingerprints are computed by {!fingerprint}: a 64-bit FNV-1a hash of
    [Marshal.to_string state [No_sharing]].  This assumes states are
    acyclic, closure-free data whose structural representation is
    canonical with respect to [equal_state] — true of every system in
    this repository.  The compressed modes are therefore {e probabilistic}:
    a "no violation" verdict obtained under {!Hash_compaction} or
    {!Bitstate} only covers the visited (non-omitted) states. *)

type mode =
  | Exact
  | Hash_compaction of { bits : int }
      (** fingerprint width in bits, clamped to [1..62]; the default
          {!hash_compaction} uses the full 62 usable bits of an OCaml
          int.  Small widths are only useful to force collisions in
          tests. *)
  | Bitstate of { log2_bits : int; hashes : int }
      (** a [2^log2_bits]-bit array ([2^(log2_bits-3)] bytes) probed
          with [hashes] independent positions per state (double hashing
          over the 64-bit fingerprint).  [log2_bits] is clamped to
          [10..40], [hashes] to [1..8]. *)

val exact : mode
val hash_compaction : mode
(** {!Hash_compaction} at the default 62-bit width. *)

val bitstate : mode
(** {!Bitstate} with a 2^25-bit (4 MiB) array and 3 hash functions. *)

val mode_name : mode -> string
(** ["exact"], ["hashcompact"] or ["bitstate"] (parameters elided). *)

val of_string : string -> (mode, string) result
(** Parse a CLI spelling: ["exact"], ["hashcompact"], ["bitstate"],
    optionally with parameters as ["hashcompact:BITS"] or
    ["bitstate:LOG2BITS:HASHES"]. *)

type coverage = {
  mode : string;  (** {!mode_name} of the store that produced this *)
  stored : int;  (** states inserted (what the engine counted) *)
  bits : int;  (** fingerprint width, or the bit-array size in bits *)
  hash_factor : float;
      (** bitstate: bit-array size / states stored (SPIN's hash factor);
          [infinity] when nothing was stored, [0.] for exact *)
  omission_prob : float;
      (** estimated probability that at least one reachable state was
          omitted (hash compaction: birthday bound), or the
          per-insertion false-positive rate at the final fill
          (bitstate); exactly [0.] for exact *)
  est_coverage : float;
      (** estimated fraction of the encountered states actually stored
          (and hence expanded); exactly [1.] for exact *)
  exact : bool;  (** [true] iff the store was {!Exact} *)
}

val pp_coverage : Format.formatter -> coverage -> unit

val coverage_of : mode:mode -> stored:int -> coverage
(** The coverage estimate a store in [mode] would report after
    [stored] insertions (what {!Make.coverage} computes). *)

val fingerprint : 'a -> int
(** The 62-bit FNV-1a fingerprint of a value's marshalled bytes
    ([Marshal.No_sharing]).  Deterministic across runs and domains. *)

(** Concurrent lock-striped state tables, functorised over the state
    type.  All operations are thread-safe; [intern] additionally
    maintains a per-state BFS depth stamp used by the work-stealing
    engine's truncation machinery (ignored by {!Bitstate}, which tracks
    no per-state identity). *)
module Make (K : sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end) : sig
  type t

  type intern_result =
    | Fresh of int  (** first insertion; the new provisional id *)
    | Known of int
        (** already present and the depth did not improve; the stored
            id, or [-1] if the store tracks no ids ({!Bitstate}) *)
    | Relaxed of int * int
        (** already present but [depth] improved the stamp: the stored
            id and the {e previous} depth *)

  val create :
    ?expected:int -> ?fingerprint:(K.t -> int) -> shards:int -> mode -> t
  (** [shards] is rounded up to a power of two.  [expected] pre-sizes
      the hash shards.  [fingerprint] overrides {!fingerprint} (used by
      collision-injection tests). *)

  val intern : t -> K.t -> depth:int -> intern_result
  val find_pid : t -> K.t -> int
  (** [-1] when unknown or when the store tracks no ids. *)

  val total : t -> int
  (** States inserted so far (the provisional-id counter). *)

  val tracks_pids : t -> bool
  (** [false] only for {!Bitstate}: no state -> id lookup, no replay.
      May flip from [true] to [false] mid-run via {!degrade}. *)

  val occupancy : t -> int array
  (** Insertions per lock stripe; sums to {!total}. *)

  val coverage : t -> coverage

  val current_mode : t -> mode
  (** The mode the table is operating in {e now} — the creation mode
      until the first {!degrade}. *)

  val degrade : t -> mode option
  (** Swap the table one rung down the compression ladder, in place:
      [Exact -> Hash_compaction {bits = 62} -> Bitstate] (2^25 bits,
      3 hashes).  Returns the new mode, or [None] when already at the
      bottom.  Safe to call concurrently with [intern]/[find_pid]: the
      swap happens under every stripe lock and racing operations retry
      against the new representation.  Provisional ids survive the
      swap (colliding fingerprints conflate to the smaller pid), so
      engine-side vectors indexed by pid remain valid; the freed exact
      keys become garbage for the next GC.

      Caveat: degrading a {!Hash_compaction} table created with a
      non-default [bits < 62] re-probes by the {e masked} fingerprints,
      while subsequent live interns probe by full-width ones — only the
      default width round-trips exactly.  Narrow widths exist solely
      for collision-injection tests. *)

  val depths : t -> int array
  (** Snapshot of the BFS depth stamp per provisional id (index = pid),
      for checkpointing.  Ids conflated away by a fingerprint collision
      or untracked by {!Bitstate} report depth 0. *)
end
