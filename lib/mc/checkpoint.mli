(** Versioned checkpoint files.

    A checkpoint is a small self-describing container around a
    [Marshal] payload:

    {v magic "HBCKPT01" | version | kind | MD5(payload) | payload v}

    The [kind] string encodes everything that must match for a resume
    to be meaningful — tool, subcommand, model identity, exploration
    parameters — so resuming with different flags is rejected with a
    clear error instead of a segfault inside [Marshal.from_string].
    The digest catches truncated or corrupted files.  Writes go
    through a temp file and [Sys.rename] so a signal arriving
    mid-checkpoint never destroys the previous good one. *)

val version : int

val save : file:string -> kind:string -> 'a -> unit
(** Atomically (re)write [file].  Raises [Sys_error] on IO failure. *)

val load : file:string -> kind:string -> ('a, string) result
(** Validate magic, version, kind and digest, then unmarshal.  The
    caller must ask for the same ['a] it saved — the [kind] string is
    the guard for that. *)
