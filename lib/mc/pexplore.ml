(* Parallel explicit-state exploration over OCaml 5 domains.

   The engine runs a level-synchronised parallel BFS: the frontier of each
   BFS level is split into contiguous chunks, one per domain, and every
   domain expands its chunk against a shared, lock-striped state table
   sharded by [S.hash_state].  Freshly interned states receive a
   *provisional* id from a global atomic counter, so provisional numbering
   depends on the domain interleaving.  Determinism is restored by a final
   sequential *replay*: a cheap BFS over the already-collected adjacency
   (integer arrays only — no successor recomputation, no hashing) renumbers
   states in canonical sequential discovery order and re-applies the exact
   truncation gate of [Explore.space].  The produced [Explore.space] is
   therefore byte-identical to the sequential result for every domain
   count.

   Truncation: interning stops only at level boundaries (the first level
   whose cumulative state count reaches [max_states] is interned in full,
   then expanded lookup-only for back-edges), so the canonical first
   [max_states] states — always a prefix of complete BFS levels plus part
   of the boundary level — are guaranteed to be in the table, and the
   replay can cut exactly where the sequential engine would have. *)

type stats = {
  states : int;
  transitions : int;
  wall_seconds : float;
  states_per_sec : float;
  peak_frontier : int;
  depth_histogram : int array;
  shard_occupancy : int array;
  domains_used : int;
}

let pp_stats ppf s =
  let occ_min, occ_max =
    Array.fold_left
      (fun (mn, mx) o -> (min mn o, max mx o))
      (max_int, 0) s.shard_occupancy
  in
  Format.fprintf ppf
    "@[<v>%d states, %d transitions in %.3fs (%.0f states/s, %d domains)@,\
     depth %d, peak frontier %d, shard occupancy %d..%d over %d shards@]"
    s.states s.transitions s.wall_seconds s.states_per_sec s.domains_used
    (Array.length s.depth_histogram - 1)
    s.peak_frontier occ_min occ_max
    (Array.length s.shard_occupancy)

let default_domains () = max 1 (Domain.recommended_domain_count ())
let default_shards = 64

(* Frontiers smaller than this are expanded on the calling domain; the
   hand-off cost would dwarf the work. *)
let small_frontier = 128

(* --- worker crew -------------------------------------------------------- *)

(* A persistent SPMD crew: [size - 1] worker domains plus the caller.
   [run crew job] executes [job k] for every member [k] (the caller takes
   chunk 0) and returns when all are done, re-raising the first exception
   any member observed.  Spawning once per exploration keeps the per-level
   synchronisation cost to a mutex/condvar round-trip. *)
module Crew = struct
  type t = {
    size : int;
    mutable job : int -> unit;
    mutable gen : int;
    mutable completed : int;
    mutable failure : exn option;
    mutable stop : bool;
    m : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
    mutable members : unit Domain.t array;
  }

  let worker t k =
    let my_gen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.m;
      while (not t.stop) && t.gen = !my_gen do
        Condition.wait t.start t.m
      done;
      if t.stop then begin
        Mutex.unlock t.m;
        running := false
      end
      else begin
        my_gen := t.gen;
        let job = t.job in
        Mutex.unlock t.m;
        let fail = match job k with () -> None | exception e -> Some e in
        Mutex.lock t.m;
        (match fail with
        | Some _ when t.failure = None -> t.failure <- fail
        | _ -> ());
        t.completed <- t.completed + 1;
        if t.completed = t.size - 1 then Condition.signal t.finished;
        Mutex.unlock t.m
      end
    done

  let create size =
    let t =
      {
        size;
        job = ignore;
        gen = 0;
        completed = 0;
        failure = None;
        stop = false;
        m = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        members = [||];
      }
    in
    if size > 1 then
      t.members <-
        Array.init (size - 1) (fun k -> Domain.spawn (fun () -> worker t (k + 1)));
    t

  let run t job =
    if t.size = 1 then job 0
    else begin
      Mutex.lock t.m;
      t.job <- job;
      t.completed <- 0;
      t.failure <- None;
      t.gen <- t.gen + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.m;
      let fail0 = match job 0 with () -> None | exception e -> Some e in
      Mutex.lock t.m;
      while t.completed < t.size - 1 do
        Condition.wait t.finished t.m
      done;
      let fail = match fail0 with None -> t.failure | some -> some in
      Mutex.unlock t.m;
      match fail with Some e -> raise e | None -> ()
    end

  let shutdown t =
    if t.size > 1 then begin
      Mutex.lock t.m;
      t.stop <- true;
      Condition.broadcast t.start;
      Mutex.unlock t.m;
      Array.iter Domain.join t.members;
      t.members <- [||]
    end
end

(* --- the engine, functorised over the system ---------------------------- *)

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

module Engine (S : System.S) = struct
  module T = Hashtbl.Make (struct
    type t = S.state

    let equal = S.equal_state
    let hash = S.hash_state
  end)

  (* Lock-striped state table: shard by state hash, one mutex per shard,
     provisional ids from a global atomic counter. *)
  type table = {
    shards : int T.t array;
    locks : Mutex.t array;
    mask : int;
    next : int Atomic.t;
  }

  let make_table ?expected_states nshards =
    let nshards = round_pow2 (max 1 nshards) in
    (* Split the (clamped) expected-state hint evenly across the stripes:
       states shard by hash, so the per-shard load is count / nshards. *)
    let per_shard =
      match expected_states with
      | None -> 512
      | Some n -> max 512 (min n Explore.sizing_cap / nshards)
    in
    {
      shards = Array.init nshards (fun _ -> T.create per_shard);
      locks = Array.init nshards (fun _ -> Mutex.create ());
      mask = nshards - 1;
      next = Atomic.make 0;
    }

  let shard_of tbl s = S.hash_state s land max_int land tbl.mask

  (* Lookup-or-insert; returns the provisional id and whether the state was
     fresh.  Only the owning shard is locked. *)
  let intern tbl s =
    let k = shard_of tbl s in
    let lock = tbl.locks.(k) in
    Mutex.lock lock;
    match T.find_opt tbl.shards.(k) s with
    | Some pid ->
        Mutex.unlock lock;
        (pid, false)
    | None ->
        let pid = Atomic.fetch_and_add tbl.next 1 in
        T.add tbl.shards.(k) s pid;
        Mutex.unlock lock;
        (pid, true)

  (* Read-only lookup; used only in the final back-edge pass, after every
     writer has synchronised at the level barrier. *)
  let find_pid tbl s =
    match T.find_opt tbl.shards.(shard_of tbl s) s with
    | Some pid -> pid
    | None -> -1

  (* Per-domain per-level output buffers.  [fresh] keeps, for every state
     this domain won the intern race for: provisional id, state, parent
     edge, goal flag.  [recs] keeps one successor record per expanded
     frontier slot. *)
  type chunk = {
    mutable recs : (int * (S.label * int) array) list;
    mutable fresh : (int * S.state * int * S.label * bool) list;
    mutable fresh_n : int;
  }

  let new_chunk () = { recs = []; fresh = []; fresh_n = 0 }

  let expand_chunk ~lookup_only ~goal tbl (front : (int * S.state) array) lo hi
      out =
    for i = lo to hi - 1 do
      let pid, s = front.(i) in
      let cells =
        List.map
          (fun (l, s') ->
            let j =
              if lookup_only then find_pid tbl s'
              else begin
                let j, is_fresh = intern tbl s' in
                if is_fresh then begin
                  out.fresh <- (j, s', pid, l, goal s') :: out.fresh;
                  out.fresh_n <- out.fresh_n + 1
                end;
                j
              end
            in
            (l, j))
          (S.successors s)
      in
      out.recs <- (pid, Array.of_list cells) :: out.recs
    done

  (* Growable pid-indexed stores.  Provisional ids are dense, so plain
     doubling arrays indexed by pid suffice; they are written only by the
     coordinating domain, between level barriers. *)
  type store = {
    mutable states_of : S.state array;
    mutable adj : (S.label * int) array array;
    mutable parent : (int * S.label) option array; (* (parent pid, label) *)
    mutable goal_flag : Bytes.t;
  }

  let no_adj : (S.label * int) array = [||]

  let make_store s0 =
    {
      states_of = Array.make 1024 s0;
      adj = Array.make 1024 no_adj;
      parent = Array.make 1024 None;
      goal_flag = Bytes.make 1024 '\000';
    }

  let ensure st n =
    let cap = Array.length st.states_of in
    if n > cap then begin
      let cap' = max n (2 * cap) in
      let grow a fill =
        let a' = Array.make cap' fill in
        Array.blit a 0 a' 0 cap;
        a'
      in
      st.states_of <- grow st.states_of st.states_of.(0);
      st.adj <- grow st.adj no_adj;
      st.parent <- grow st.parent None;
      let b = Bytes.make cap' '\000' in
      Bytes.blit st.goal_flag 0 b 0 cap;
      st.goal_flag <- b
    end

  type exploration = {
    total : int;  (* provisional states interned (may overshoot the bound) *)
    store : store;
    levels : int list;  (* level sizes, deepest first *)
    dropped : bool;  (* back-edge pass saw an unknown successor *)
    tbl : table;
  }

  (* The shared level-synchronised loop.  [keep_adj] retains successor
     records for the replay; [goal] marks fresh states; [stop_on_goal]
     ends the loop at the first level that both contains a goal-flagged
     state and is entirely within the canonical [max_states] prefix. *)
  let explore ?expected_states ~max_states ~domains ~shards ~progress
      ~keep_adj ~goal ~stop_on_goal () =
    if domains < 1 then invalid_arg "Mc.Pexplore: domains must be >= 1";
    if max_states < 0 then invalid_arg "Mc.Pexplore: negative max_states";
    let crew = Crew.create domains in
    Fun.protect ~finally:(fun () -> Crew.shutdown crew) @@ fun () ->
    let tbl = make_table ?expected_states shards in
    let pid0, _ = intern tbl S.initial in
    let store = make_store S.initial in
    Bytes.set store.goal_flag pid0 (if goal S.initial then '\001' else '\000');
    let levels = ref [] in
    let record_recs chunks =
      if keep_adj then
        Array.iter
          (fun c ->
            List.iter (fun (pid, cells) -> store.adj.(pid) <- cells) c.recs)
          chunks
    in
    let expand ~lookup_only front =
      let n = Array.length front in
      let chunks = Array.init domains (fun _ -> new_chunk ()) in
      if domains = 1 || n < small_frontier then
        expand_chunk ~lookup_only ~goal tbl front 0 n chunks.(0)
      else
        Crew.run crew (fun k ->
            expand_chunk ~lookup_only ~goal tbl front (k * n / domains)
              ((k + 1) * n / domains)
              chunks.(k));
      chunks
    in
    let rec loop front depth =
      levels := Array.length front :: !levels;
      let total = Atomic.get tbl.next in
      progress ~depth ~states:total ~frontier:(Array.length front);
      if total >= max_states then begin
        (* Overflow level: fully interned already, cumulative count at or
           past the bound.  Expand it lookup-only so the replay sees the
           back-edges the sequential engine keeps, then stop. *)
        let chunks = expand ~lookup_only:true front in
        record_recs chunks;
        let dropped =
          Array.exists
            (fun c ->
              List.exists
                (fun (_, cells) -> Array.exists (fun (_, j) -> j < 0) cells)
                c.recs)
            chunks
        in
        { total; store; levels = !levels; dropped; tbl }
      end
      else if Array.length front = 0 then
        { total; store; levels = List.tl !levels; dropped = false; tbl }
      else begin
        let chunks = expand ~lookup_only:false front in
        record_recs chunks;
        let total' = Atomic.get tbl.next in
        ensure store total';
        let fresh_n = Array.fold_left (fun n c -> n + c.fresh_n) 0 chunks in
        let next = Array.make fresh_n (pid0, S.initial) in
        let goal_hit = ref false in
        (* Concatenate the per-chunk fresh lists (each reversed) into the
           next frontier, filling every chunk's slice back to front. *)
        let k = ref fresh_n in
        for ci = domains - 1 downto 0 do
          List.iter
            (fun (pid, s, parent_pid, l, g) ->
              decr k;
              next.(!k) <- (pid, s);
              store.states_of.(pid) <- s;
              store.parent.(pid) <- Some (parent_pid, l);
              if g then begin
                Bytes.set store.goal_flag pid '\001';
                goal_hit := true
              end)
            chunks.(ci).fresh
        done;
        if !goal_hit && stop_on_goal && total' <= max_states then
          { total = total'; store; levels = !levels; dropped = false; tbl }
        else loop next (depth + 1)
      end
    in
    loop [| (pid0, S.initial) |] 0

  (* Canonical replay: renumber provisional ids in sequential BFS discovery
     order and re-apply the exact truncation gate of [Explore.space].
     Returns the canonical order [pid_of] (canonical index -> pid), the
     canonical count, and — when [emit] — the transition list and complete
     flag. *)
  let replay ~max_states ~emit expl =
    let total = expl.total in
    let st = expl.store in
    let canon = Array.make total (-1) in
    let cap = max 1 (min total (max max_states 1)) in
    let pid_of = Array.make cap (-1) in
    let count = ref 0 in
    let complete = ref true in
    let trans = ref [] in
    let intern pid =
      if canon.(pid) >= 0 then canon.(pid)
      else begin
        let c = !count in
        canon.(pid) <- c;
        pid_of.(c) <- pid;
        incr count;
        c
      end
    in
    let (_ : int) = intern 0 in
    let c = ref 0 in
    while !c < !count do
      let pid = pid_of.(!c) in
      Array.iter
        (fun (l, dst) ->
          if dst >= 0 && (!count < max_states || canon.(dst) >= 0) then begin
            let j = intern dst in
            if emit then trans := (!c, l, j) :: !trans
          end
          else complete := false)
        st.adj.(pid);
      incr c
    done;
    (pid_of, !count, List.rev !trans, !complete)

  let shard_occupancy tbl = Array.map T.length tbl.shards

  let space ?expected_states ~max_states ~domains ~shards ~progress () =
    let t0 = Unix.gettimeofday () in
    let expl =
      explore ?expected_states ~max_states ~domains ~shards ~progress
        ~keep_adj:true
        ~goal:(fun _ -> false)
        ~stop_on_goal:false ()
    in
    let pid_of, count, transitions, complete =
      replay ~max_states ~emit:true expl
    in
    let states = Array.init count (fun c -> expl.store.states_of.(pid_of.(c))) in
    let lts = Lts.Graph.make ~num_states:count ~initial:0 transitions in
    let wall = Unix.gettimeofday () -. t0 in
    let stats =
      {
        states = count;
        transitions = Lts.Graph.num_transitions lts;
        wall_seconds = wall;
        states_per_sec = (if wall > 0. then float_of_int count /. wall else 0.);
        peak_frontier = List.fold_left max 0 expl.levels;
        depth_histogram = Array.of_list (List.rev expl.levels);
        shard_occupancy = shard_occupancy expl.tbl;
        domains_used = domains;
      }
    in
    ({ Explore.lts; states; complete }, stats)

  let count ?expected_states ~max_states ~domains ~shards () =
    let expl =
      explore ?expected_states ~max_states ~domains ~shards
        ~progress:(fun ~depth:_ ~states:_ ~frontier:_ -> ())
        ~keep_adj:false
        ~goal:(fun _ -> false)
        ~stop_on_goal:false ()
    in
    (* Mirrors [Explore.count]: the canonical count is the bounded prefix,
       and the space is complete iff nothing fell outside the table. The
       effective bound floors at one because the initial state is always
       interned, even under [max_states = 0]. *)
    let n = max 1 (min expl.total max_states) in
    (n, expl.total <= max 1 max_states && not expl.dropped)

  let trace_to st pid =
    let rec go pid acc =
      match st.parent.(pid) with
      | None -> acc
      | Some (parent, l) -> go parent (l :: acc)
    in
    go pid []

  let find ?expected_states ~max_states ~domains ~shards ~goal () =
    if goal S.initial then
      Explore.Reached { Explore.trace = []; state = S.initial }
    else begin
      let expl =
        explore ?expected_states ~max_states ~domains ~shards
          ~progress:(fun ~depth:_ ~states:_ ~frontier:_ -> ())
          ~keep_adj:true ~goal ~stop_on_goal:true ()
      in
      let st = expl.store in
      (* The effective bound floors at one: the initial state is interned
         even under [max_states = 0], exactly as in [Explore.find]. *)
      let emax = max 1 max_states in
      if expl.total > emax || (expl.total = emax && expl.dropped) then begin
        (* Truncated: only the canonical [max_states] prefix counts, and
           only a goal state inside it is a sequential-parity witness. *)
        let pid_of, count, _, _ = replay ~max_states ~emit:false expl in
        let witness = ref (-1) in
        let c = ref 0 in
        while !witness < 0 && !c < count do
          let pid = pid_of.(!c) in
          if Bytes.get st.goal_flag pid = '\001' then witness := pid;
          incr c
        done;
        if !witness >= 0 then
          Explore.Reached
            {
              Explore.trace = trace_to st !witness;
              state = st.states_of.(!witness);
            }
        else Explore.Bound_hit max_states
      end
      else begin
        (* Everything interned is canonical; any goal-flagged state is a
           shortest witness (the loop stopped at its level). *)
        let witness = ref (-1) in
        for pid = 0 to expl.total - 1 do
          if !witness < 0 && Bytes.get st.goal_flag pid = '\001' then
            witness := pid
        done;
        if !witness >= 0 then
          Explore.Reached
            {
              Explore.trace = trace_to st !witness;
              state = st.states_of.(!witness);
            }
        else Explore.Unreachable
      end
    end
end

(* --- public entry points ------------------------------------------------ *)

let no_progress ~depth:_ ~states:_ ~frontier:_ = ()

let space_stats (type s l) ?(max_states = Explore.default_max)
    ?expected_states ?domains ?(shards = default_shards)
    ?(progress = no_progress) (sys : (s, l) System.t) :
    (s, l) Explore.space * stats =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let module E = Engine ((val sys)) in
  E.space ?expected_states ~max_states ~domains ~shards ~progress ()

let space ?max_states ?expected_states ?domains ?shards ?progress sys =
  fst (space_stats ?max_states ?expected_states ?domains ?shards ?progress sys)

let count (type s l) ?(max_states = Explore.default_max) ?expected_states
    ?domains ?(shards = default_shards) (sys : (s, l) System.t) : int * bool =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let module E = Engine ((val sys)) in
  E.count ?expected_states ~max_states ~domains ~shards ()

let find (type s l) ?(max_states = Explore.default_max) ?expected_states
    ?domains ?(shards = default_shards) ~goal (sys : (s, l) System.t) :
    (s, l) Explore.verdict =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let module E = Engine ((val sys)) in
  E.find ?expected_states ~max_states ~domains ~shards ~goal ()
