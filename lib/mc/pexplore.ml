(* Parallel explicit-state exploration over OCaml 5 domains.

   Two engines share a lock-striped state table ([Mc.Store], which also
   provides hash-compaction and bitstate compression):

   - the *work-stealing* engine (default): each domain owns a chunked
     FIFO queue of work items; owners push and pop at opposite ends so
     chunks run in discovery (near-BFS) order, and thieves steal the
     oldest half of a victim's chunks.  Stealing is gated on a count of
     active workers: a thief engages only while fewer workers than
     hardware threads are running, since oversubscription cannot raise
     throughput — it only interleaves expansions out of BFS order and
     triggers relaxation cascades.  Idle thieves block on a condition
     variable; termination is detected with a global pending-chunk
     counter whose final decrement broadcasts the wake-up.  Because
     items carry BFS depth stamps that are *relaxed* (re-enqueued)
     whenever a shorter path is found, the set of states interned
     within the [max_states] bound is exactly the sequential one, and a
     final sequential *replay* over the collected integer adjacency
     renumbers states in canonical sequential discovery order,
     re-applying the exact truncation gate of [Explore.space].  A run
     that finished with zero steals and zero relaxations processed
     items in exact sequential BFS order, so its provisional numbering
     is already canonical and the replay is skipped as an identity.
     Results are byte-identical to the sequential engine for every
     domain count.

   - the *level-synchronised* engine ([workstealing:false]): the
     frontier of each BFS level is split into contiguous chunks, one
     per domain, with a barrier per level.  Kept as the baseline the
     work-stealing engine is benchmarked against.

   Truncation contract (both engines): the canonical first [max_states]
   states — a prefix of complete BFS levels plus part of the boundary
   level — are always interned and their adjacency recorded, so the
   replay can cut exactly where the sequential engine would have.

   Work-stealing truncation invariant: a state is only skipped when its
   stamped depth exceeds the adaptive cutoff (the smallest depth whose
   cumulative stamped-state count reaches the bound).  Stamped depths
   only over-approximate true BFS depths and per-depth counters are
   decremented before incremented on relaxation, so the computed cutoff
   never drops below the true boundary level: every state the
   sequential engine retains is interned and expanded here too. *)

type stats = {
  states : int;
  transitions : int;
  wall_seconds : float;
  states_per_sec : float;
  peak_frontier : int;
  depth_histogram : int array;
  shard_occupancy : int array;
  domains_used : int;
  engine : string;
  steals : int;
  relaxations : int;
  coverage : Store.coverage;
  exhausted : Budget.reason option;
  degraded : string list;
  retries : int;
}

let pp_resilience ppf s =
  (match s.exhausted with
  | Some r -> Format.fprintf ppf "@,exhausted: %a" Budget.pp_reason r
  | None -> ());
  if s.degraded <> [] then
    Format.fprintf ppf "@,store degraded in place: %s"
      (String.concat " -> " s.degraded);
  if s.retries > 0 then
    Format.fprintf ppf "@,%d poisoned item(s) quarantined and retried"
      s.retries

let pp_stats ppf s =
  let occ_min, occ_max =
    Array.fold_left
      (fun (mn, mx) o -> (min mn o, max mx o))
      (max_int, 0) s.shard_occupancy
  in
  Format.fprintf ppf
    "@[<v>%d states, %d transitions in %.3fs (%.0f states/s, %d domains, %s \
     engine)@,\
     depth %d, peak frontier %d, shard occupancy %d..%d over %d shards@,\
     %d steals, %d relaxations; store %a%a@]"
    s.states s.transitions s.wall_seconds s.states_per_sec s.domains_used
    s.engine
    (Array.length s.depth_histogram - 1)
    s.peak_frontier occ_min occ_max
    (Array.length s.shard_occupancy)
    s.steals s.relaxations Store.pp_coverage s.coverage pp_resilience s

let default_domains () = max 1 (Domain.recommended_domain_count ())
let default_shards = 64

(* Frontiers smaller than this are expanded on the calling domain; the
   hand-off cost would dwarf the work. *)
let small_frontier = 128

(* Work items per deque chunk. *)
let chunk_cap = 128

(* --- worker crew -------------------------------------------------------- *)

(* A persistent SPMD crew: [size - 1] worker domains plus the caller.
   [run crew job] executes [job k] for every member [k] (the caller takes
   chunk 0) and returns when all are done, re-raising the first exception
   any member observed. *)
module Crew = struct
  type t = {
    size : int;
    mutable job : int -> unit;
    mutable gen : int;
    mutable completed : int;
    mutable failure : exn option;
    mutable stop : bool;
    m : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
    mutable members : unit Domain.t array;
  }

  let worker t k =
    let my_gen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.m;
      while (not t.stop) && t.gen = !my_gen do
        Condition.wait t.start t.m
      done;
      if t.stop then begin
        Mutex.unlock t.m;
        running := false
      end
      else begin
        my_gen := t.gen;
        let job = t.job in
        Mutex.unlock t.m;
        let fail = match job k with () -> None | exception e -> Some e in
        Mutex.lock t.m;
        (match fail with
        | Some _ when t.failure = None -> t.failure <- fail
        | _ -> ());
        t.completed <- t.completed + 1;
        if t.completed = t.size - 1 then Condition.signal t.finished;
        Mutex.unlock t.m
      end
    done

  let create size =
    let t =
      {
        size;
        job = ignore;
        gen = 0;
        completed = 0;
        failure = None;
        stop = false;
        m = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        members = [||];
      }
    in
    if size > 1 then
      t.members <-
        Array.init (size - 1) (fun k -> Domain.spawn (fun () -> worker t (k + 1)));
    t

  let run t job =
    if t.size = 1 then job 0
    else begin
      Mutex.lock t.m;
      t.job <- job;
      t.completed <- 0;
      t.failure <- None;
      t.gen <- t.gen + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.m;
      let fail0 = match job 0 with () -> None | exception e -> Some e in
      Mutex.lock t.m;
      while t.completed < t.size - 1 do
        Condition.wait t.finished t.m
      done;
      let fail = match fail0 with None -> t.failure | some -> some in
      Mutex.unlock t.m;
      match fail with Some e -> raise e | None -> ()
    end

  let shutdown t =
    if t.size > 1 then begin
      Mutex.lock t.m;
      t.stop <- true;
      Condition.broadcast t.start;
      Mutex.unlock t.m;
      Array.iter Domain.join t.members;
      t.members <- [||]
    end
end

(* --- concurrent growable vectors ---------------------------------------- *)

(* Chunked vector indexed by dense provisional id.  Chunks are installed
   with a CAS on the spine, so concurrent writers at distinct indices
   never lose writes and never resize-copy.  Post-barrier readers see
   every write made before the exploration joined. *)
module Pvec = struct
  let chunk_bits = 13
  let chunk_size = 1 lsl chunk_bits
  let chunk_mask = chunk_size - 1
  let max_chunks = 4096

  type 'a t = { spine : 'a array option Atomic.t array; init : unit -> 'a }

  let create_init init =
    { spine = Array.init max_chunks (fun _ -> Atomic.make None); init }

  let create default = create_init (fun () -> default)

  let chunk t i =
    let ci = i lsr chunk_bits in
    match Atomic.get t.spine.(ci) with
    | Some c -> c
    | None ->
        let c = Array.init chunk_size (fun _ -> t.init ()) in
        if Atomic.compare_and_set t.spine.(ci) None (Some c) then c
        else begin
          match Atomic.get t.spine.(ci) with
          | Some c -> c
          | None -> assert false
        end

  let set t i v = (chunk t i).(i land chunk_mask) <- v
  let get t i = (chunk t i).(i land chunk_mask)
end

(* Chunked vector of atomic counters (relaxation depth adjustments).
   Reads of untouched chunks return 0 without installing the chunk, so
   post-run scans over sparse vectors allocate nothing. *)
module Avec = struct
  type t = int Atomic.t array option Atomic.t array

  let create () : t = Array.init Pvec.max_chunks (fun _ -> Atomic.make None)

  let slot (t : t) i =
    let ci = i lsr Pvec.chunk_bits in
    let c =
      match Atomic.get t.(ci) with
      | Some c -> c
      | None ->
          let c = Array.init Pvec.chunk_size (fun _ -> Atomic.make 0) in
          if Atomic.compare_and_set t.(ci) None (Some c) then c
          else begin
            match Atomic.get t.(ci) with Some c -> c | None -> assert false
          end
    in
    c.(i land Pvec.chunk_mask)

  let incr t i = Atomic.incr (slot t i)
  let decr t i = Atomic.decr (slot t i)

  let get (t : t) i =
    match Atomic.get t.(i lsr Pvec.chunk_bits) with
    | None -> 0
    | Some c -> Atomic.get c.(i land Pvec.chunk_mask)
end

(* Chunked atomic bit set (per-pid expansion flags): 62 flags per word
   and small word chunks, so the whole structure costs a few hundred
   boxed atomics rather than one per state. *)
module Aflags = struct
  let bits_per_word = 62
  let chunk_bits = 8 (* 256 words = 15872 flags per chunk *)
  let chunk_size = 1 lsl chunk_bits
  let chunk_mask = chunk_size - 1
  let max_chunks = 4096

  type t = int Atomic.t array option Atomic.t array

  let create () : t = Array.init max_chunks (fun _ -> Atomic.make None)

  let word (t : t) w =
    let ci = w lsr chunk_bits in
    let c =
      match Atomic.get t.(ci) with
      | Some c -> c
      | None ->
          let c = Array.init chunk_size (fun _ -> Atomic.make 0) in
          if Atomic.compare_and_set t.(ci) None (Some c) then c
          else begin
            match Atomic.get t.(ci) with Some c -> c | None -> assert false
          end
    in
    c.(w land chunk_mask)

  (* Set flag [i]; true iff this caller flipped it. *)
  let claim t i =
    let s = word t (i / bits_per_word) in
    let bit = 1 lsl (i mod bits_per_word) in
    let rec go () =
      let cur = Atomic.get s in
      if cur land bit <> 0 then false
      else if Atomic.compare_and_set s cur (cur lor bit) then true
      else go ()
    in
    go ()

  let mem (t : t) i =
    let w = i / bits_per_word in
    match Atomic.get t.(w lsr chunk_bits) with
    | None -> false
    | Some c ->
        Atomic.get c.(w land chunk_mask) land (1 lsl (i mod bits_per_word)) <> 0
end

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

(* --- per-domain chunked deques ------------------------------------------ *)

(* A FIFO queue of chunks (two-stack representation).  Both the owner and
   thieves consume from the oldest end: oldest chunks hold the
   BFS-shallowest states, so draining them first keeps the processing
   order close to breadth-first.  That matters beyond fairness — states
   are depth-stamped at intern time, and a near-BFS order means almost
   every state is first reached at its minimal depth, so the relaxation
   path (re-stamp + re-expand) stays cold.  A LIFO (depth-first) owner
   order re-expands more states than the space contains on diamond-heavy
   graphs.  Thieves take the oldest half of the chunks (steal-half): the
   shallowest and hence largest remaining subtrees. *)
module Deque = struct
  type 'a t = {
    mutable front : 'a array list;  (* oldest first *)
    mutable back : 'a array list;  (* newest first *)
    lock : Mutex.t;
  }

  let create () = { front = []; back = []; lock = Mutex.create () }

  let push d c =
    Mutex.lock d.lock;
    d.back <- c :: d.back;
    Mutex.unlock d.lock

  let pop d =
    Mutex.lock d.lock;
    if d.front = [] then begin
      d.front <- List.rev d.back;
      d.back <- []
    end;
    let r =
      match d.front with
      | [] -> None
      | c :: rest ->
          d.front <- rest;
          Some c
    in
    Mutex.unlock d.lock;
    r

  let steal_half d =
    Mutex.lock d.lock;
    let all = d.front @ List.rev d.back in
    let r =
      match all with
      | [] -> []
      | chunks ->
          let n = List.length chunks in
          let take = n - (n / 2) in
          let rec split i l =
            if i = 0 then ([], l)
            else
              match l with
              | [] -> ([], [])
              | c :: tl ->
                  let stolen, kept = split (i - 1) tl in
                  (c :: stolen, kept)
          in
          let stolen, kept = split take chunks in
          d.front <- kept;
          d.back <- [];
          stolen
    in
    Mutex.unlock d.lock;
    r
end

(* --- the engine, functorised over the system ---------------------------- *)

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

module Engine (S : System.S) = struct
  module St = Store.Make (struct
    type t = S.state

    let equal = S.equal_state
    let hash = S.hash_state
  end)

  let make_table ?expected_states ~shards mode =
    let nshards = round_pow2 (max 1 shards) in
    (* Split the (clamped) expected-state hint evenly across the stripes:
       states shard by hash, so the per-shard load is count / nshards. *)
    let expected =
      match expected_states with
      | None -> 512 * nshards
      | Some n -> max (512 * nshards) (min n Explore.sizing_cap)
    in
    St.create ~expected ~shards:nshards mode

  let intern_pid tbl s ~depth =
    match St.intern tbl s ~depth with
    | St.Fresh pid -> (pid, true)
    | St.Known pid | St.Relaxed (pid, _) -> (pid, false)

  (* --- canonical replay (shared by both engines) ---------------------- *)

  type replay_result = {
    r_pid_of : int array;  (* canonical index -> provisional id *)
    r_count : int;
    r_trans : (int * S.label * int) list;
    r_complete : bool;
    r_levels : int array;  (* retained states per canonical BFS level *)
  }

  (* Renumber provisional ids in sequential BFS discovery order and
     re-apply the exact truncation gate of [Explore.space].  [adj] maps a
     provisional id to its recorded successor cells. *)
  let replay ~max_states ~emit ~total ~adj () =
    let canon = Array.make (max 1 total) (-1) in
    let cap = max 1 (min total (max max_states 1)) in
    let pid_of = Array.make cap (-1) in
    let depth_of = Array.make cap 0 in
    let count = ref 0 in
    let complete = ref true in
    let trans = ref [] in
    let intern pid depth =
      if canon.(pid) >= 0 then canon.(pid)
      else begin
        let c = !count in
        canon.(pid) <- c;
        pid_of.(c) <- pid;
        depth_of.(c) <- depth;
        incr count;
        c
      end
    in
    let (_ : int) = intern 0 0 in
    let c = ref 0 in
    while !c < !count do
      let pid = pid_of.(!c) in
      let d = depth_of.(!c) in
      Array.iter
        (fun (l, dst) ->
          if dst >= 0 && (!count < max_states || canon.(dst) >= 0) then begin
            let j = intern dst (d + 1) in
            if emit then trans := (!c, l, j) :: !trans
          end
          else complete := false)
        (adj pid);
      incr c
    done;
    let levels =
      if !count = 0 then [||]
      else begin
        let a = Array.make (depth_of.(!count - 1) + 1) 0 in
        for i = 0 to !count - 1 do
          a.(depth_of.(i)) <- a.(depth_of.(i)) + 1
        done;
        a
      end
    in
    {
      r_pid_of = pid_of;
      r_count = !count;
      r_trans = List.rev !trans;
      r_complete = !complete;
      r_levels = levels;
    }

  (* ====================================================================== *)
  (* Level-synchronised engine (the pre-work-stealing baseline).            *)
  (* ====================================================================== *)

  (* Per-domain per-level output buffers.  [fresh] keeps, for every state
     this domain won the intern race for: provisional id, state, parent
     edge, goal flag.  [recs] keeps one successor record per expanded
     frontier slot. *)
  type chunk = {
    mutable recs : (int * (S.label * int) array) list;
    mutable fresh : (int * S.state * int * S.label * bool) list;
    mutable fresh_n : int;
  }

  let new_chunk () = { recs = []; fresh = []; fresh_n = 0 }

  let expand_chunk ~lookup_only ~goal tbl (front : (int * S.state) array) lo hi
      out =
    for i = lo to hi - 1 do
      let pid, s = front.(i) in
      let cells =
        List.map
          (fun (l, s') ->
            let j =
              if lookup_only then St.find_pid tbl s'
              else begin
                let j, is_fresh = intern_pid tbl s' ~depth:0 in
                if is_fresh then begin
                  out.fresh <- (j, s', pid, l, goal s') :: out.fresh;
                  out.fresh_n <- out.fresh_n + 1
                end;
                j
              end
            in
            (l, j))
          (S.successors s)
      in
      out.recs <- (pid, Array.of_list cells) :: out.recs
    done

  (* Growable pid-indexed stores.  Provisional ids are dense, so plain
     doubling arrays indexed by pid suffice; they are written only by the
     coordinating domain, between level barriers. *)
  type lstore = {
    mutable states_of : S.state array;
    mutable adj : (S.label * int) array array;
    mutable parent : (int * S.label) option array; (* (parent pid, label) *)
    mutable goal_flag : Bytes.t;
  }

  let no_adj : (S.label * int) array = [||]

  let make_lstore s0 =
    {
      states_of = Array.make 1024 s0;
      adj = Array.make 1024 no_adj;
      parent = Array.make 1024 None;
      goal_flag = Bytes.make 1024 '\000';
    }

  let ensure st n =
    let cap = Array.length st.states_of in
    if n > cap then begin
      let cap' = max n (2 * cap) in
      let grow a fill =
        let a' = Array.make cap' fill in
        Array.blit a 0 a' 0 cap;
        a'
      in
      st.states_of <- grow st.states_of st.states_of.(0);
      st.adj <- grow st.adj no_adj;
      st.parent <- grow st.parent None;
      let b = Bytes.make cap' '\000' in
      Bytes.blit st.goal_flag 0 b 0 cap;
      st.goal_flag <- b
    end

  type exploration = {
    total : int;  (* provisional states interned (may overshoot the bound) *)
    store : lstore;
    levels : int list;  (* level sizes, deepest first *)
    dropped : bool;  (* back-edge pass saw an unknown successor *)
    tbl : St.t;
    exh : Budget.reason option;  (* budget tripped between levels *)
  }

  (* The shared level-synchronised loop.  [keep_adj] retains successor
     records for the replay; [goal] marks fresh states; [stop_on_goal]
     ends the loop at the first level that both contains a goal-flagged
     state and is entirely within the canonical [max_states] prefix.
     [budget] is polled at level barriers only — this engine has no
     mid-level suspension, degradation or quarantine; the work-stealing
     engine is the resilient one. *)
  let explore ?expected_states ?budget ~max_states ~domains ~shards
      ~store_mode ~progress ~keep_adj ~goal ~stop_on_goal () =
    if domains < 1 then invalid_arg "Mc.Pexplore: domains must be >= 1";
    if max_states < 0 then invalid_arg "Mc.Pexplore: negative max_states";
    let crew = Crew.create domains in
    Fun.protect ~finally:(fun () -> Crew.shutdown crew) @@ fun () ->
    let tbl = make_table ?expected_states ~shards store_mode in
    let pid0, _ = intern_pid tbl S.initial ~depth:0 in
    let store = make_lstore S.initial in
    Bytes.set store.goal_flag pid0 (if goal S.initial then '\001' else '\000');
    let levels = ref [] in
    let record_recs chunks =
      if keep_adj then
        Array.iter
          (fun c ->
            List.iter (fun (pid, cells) -> store.adj.(pid) <- cells) c.recs)
          chunks
    in
    let expand ~lookup_only front =
      let n = Array.length front in
      let chunks = Array.init domains (fun _ -> new_chunk ()) in
      if domains = 1 || n < small_frontier then
        expand_chunk ~lookup_only ~goal tbl front 0 n chunks.(0)
      else
        Crew.run crew (fun k ->
            expand_chunk ~lookup_only ~goal tbl front (k * n / domains)
              ((k + 1) * n / domains)
              chunks.(k));
      chunks
    in
    let rec loop front depth =
      match
        match budget with Some b -> Budget.check b | None -> None
      with
      | Some _ as exh ->
          {
            total = St.total tbl;
            store;
            levels = !levels;
            dropped = false;
            tbl;
            exh;
          }
      | None -> loop_body front depth
    and loop_body front depth =
      levels := Array.length front :: !levels;
      let total = St.total tbl in
      progress ~depth ~states:total ~frontier:(Array.length front);
      if total >= max_states then begin
        (* Overflow level: fully interned already, cumulative count at or
           past the bound.  Expand it lookup-only so the replay sees the
           back-edges the sequential engine keeps, then stop. *)
        let chunks = expand ~lookup_only:true front in
        record_recs chunks;
        let dropped =
          Array.exists
            (fun c ->
              List.exists
                (fun (_, cells) -> Array.exists (fun (_, j) -> j < 0) cells)
                c.recs)
            chunks
        in
        { total; store; levels = !levels; dropped; tbl; exh = None }
      end
      else if Array.length front = 0 then
        {
          total;
          store;
          levels = List.tl !levels;
          dropped = false;
          tbl;
          exh = None;
        }
      else begin
        let chunks = expand ~lookup_only:false front in
        record_recs chunks;
        let total' = St.total tbl in
        ensure store total';
        let fresh_n = Array.fold_left (fun n c -> n + c.fresh_n) 0 chunks in
        let next = Array.make fresh_n (pid0, S.initial) in
        let goal_hit = ref false in
        (* Concatenate the per-chunk fresh lists (each reversed) into the
           next frontier, filling every chunk's slice back to front. *)
        let k = ref fresh_n in
        for ci = domains - 1 downto 0 do
          List.iter
            (fun (pid, s, parent_pid, l, g) ->
              decr k;
              next.(!k) <- (pid, s);
              store.states_of.(pid) <- s;
              store.parent.(pid) <- Some (parent_pid, l);
              if g then begin
                Bytes.set store.goal_flag pid '\001';
                goal_hit := true
              end)
            chunks.(ci).fresh
        done;
        if !goal_hit && stop_on_goal && total' <= max_states then
          {
            total = total';
            store;
            levels = !levels;
            dropped = false;
            tbl;
            exh = None;
          }
        else loop next (depth + 1)
      end
    in
    loop [| (pid0, S.initial) |] 0

  let stats_of ?(exhausted = None) ?(degraded = []) ?(retries = 0) ~engine
      ~count ~transitions ~wall ~peak ~histogram ~tbl ~domains ~steals
      ~relaxations () =
    {
      states = count;
      transitions;
      wall_seconds = wall;
      states_per_sec = (if wall > 0. then float_of_int count /. wall else 0.);
      peak_frontier = peak;
      depth_histogram = histogram;
      shard_occupancy = St.occupancy tbl;
      domains_used = domains;
      engine;
      steals;
      relaxations;
      coverage = St.coverage tbl;
      exhausted;
      degraded;
      retries;
    }

  let space ?expected_states ~max_states ~domains ~shards ~store_mode
      ~progress () =
    let t0 = Unix.gettimeofday () in
    let expl =
      explore ?expected_states ~max_states ~domains ~shards ~store_mode
        ~progress ~keep_adj:true
        ~goal:(fun _ -> false)
        ~stop_on_goal:false ()
    in
    let r =
      replay ~max_states ~emit:true ~total:expl.total
        ~adj:(fun pid -> expl.store.adj.(pid))
        ()
    in
    let states =
      Array.init r.r_count (fun c -> expl.store.states_of.(r.r_pid_of.(c)))
    in
    let lts = Lts.Graph.make ~num_states:r.r_count ~initial:0 r.r_trans in
    let wall = Unix.gettimeofday () -. t0 in
    let stats =
      stats_of ~engine:"levels" ~count:r.r_count
        ~transitions:(Lts.Graph.num_transitions lts)
        ~wall
        ~peak:(List.fold_left max 0 expl.levels)
        ~histogram:(Array.of_list (List.rev expl.levels))
        ~tbl:expl.tbl ~domains ~steals:0 ~relaxations:0 ()
    in
    ({ Explore.lts; states; complete = r.r_complete }, stats)

  let count ?expected_states ?budget ~max_states ~domains ~shards ~store_mode
      () =
    let expl =
      explore ?expected_states ?budget ~max_states ~domains ~shards
        ~store_mode
        ~progress:(fun ~depth:_ ~states:_ ~frontier:_ -> ())
        ~keep_adj:false
        ~goal:(fun _ -> false)
        ~stop_on_goal:false ()
    in
    (* Mirrors [Explore.count]: the canonical count is the bounded prefix,
       and the space is complete iff nothing fell outside the table. The
       effective bound floors at one because the initial state is always
       interned, even under [max_states = 0]. *)
    let n = max 1 (min expl.total max_states) in
    ( n,
      expl.total <= max 1 max_states && (not expl.dropped) && expl.exh = None
    )

  let trace_to st pid =
    let rec go pid acc =
      match st.parent.(pid) with
      | None -> acc
      | Some (parent, l) -> go parent (l :: acc)
    in
    go pid []

  let find ?expected_states ?budget ~max_states ~domains ~shards ~store_mode
      ~goal () =
    if goal S.initial then
      Explore.Reached { Explore.trace = []; state = S.initial }
    else begin
      let expl =
        explore ?expected_states ?budget ~max_states ~domains ~shards
          ~store_mode
          ~progress:(fun ~depth:_ ~states:_ ~frontier:_ -> ())
          ~keep_adj:true ~goal ~stop_on_goal:true ()
      in
      let st = expl.store in
      match expl.exh with
      | Some reason ->
          (* The run was cut short at a level barrier; a goal flagged in
             an earlier level is still a real witness. *)
          let witness = ref (-1) in
          for pid = 0 to expl.total - 1 do
            if !witness < 0 && Bytes.get st.goal_flag pid = '\001' then
              witness := pid
          done;
          if !witness >= 0 then
            Explore.Reached
              {
                Explore.trace = trace_to st !witness;
                state = st.states_of.(!witness);
              }
          else
            Explore.Exhausted
              {
                Explore.reason;
                states_so_far = expl.total;
                coverage = St.coverage expl.tbl;
              }
      | None ->
      (* The effective bound floors at one: the initial state is interned
         even under [max_states = 0], exactly as in [Explore.find]. *)
      let emax = max 1 max_states in
      if expl.total > emax || (expl.total = emax && expl.dropped) then begin
        (* Truncated: only the canonical [max_states] prefix counts, and
           only a goal state inside it is a sequential-parity witness. *)
        let r =
          replay ~max_states ~emit:false ~total:expl.total
            ~adj:(fun pid -> st.adj.(pid))
            ()
        in
        let witness = ref (-1) in
        let c = ref 0 in
        while !witness < 0 && !c < r.r_count do
          let pid = r.r_pid_of.(!c) in
          if Bytes.get st.goal_flag pid = '\001' then witness := pid;
          incr c
        done;
        if !witness >= 0 then
          Explore.Reached
            {
              Explore.trace = trace_to st !witness;
              state = st.states_of.(!witness);
            }
        else Explore.Bound_hit max_states
      end
      else begin
        (* Everything interned is canonical; any goal-flagged state is a
           shortest witness (the loop stopped at its level). *)
        let witness = ref (-1) in
        for pid = 0 to expl.total - 1 do
          if !witness < 0 && Bytes.get st.goal_flag pid = '\001' then
            witness := pid
        done;
        if !witness >= 0 then
          Explore.Reached
            {
              Explore.trace = trace_to st !witness;
              state = st.states_of.(!witness);
            }
        else Explore.Unreachable
      end
    end

  (* ====================================================================== *)
  (* Work-stealing engine.                                                  *)
  (* ====================================================================== *)

  (* [ifresh] records whether the item comes from a [Fresh] intern (as
     opposed to a relaxation re-enqueue): in runs where no item is ever
     skipped it identifies the unique first expansion of the state
     without touching the shared [expanded] bitset.  [iattempt] counts
     quarantine retries: an item whose expansion raised is re-enqueued
     once on a neighbouring domain with [iattempt = 1]; a second raise
     records the state as unrecoverable. *)
  type item = {
    ipid : int;
    ist : S.state;
    idepth : int;
    ifresh : bool;
    iattempt : int;
  }

  (* Per-domain depth histogram for first-time interns: a plain growable
     int array written only by the owning domain.  The counters are
     monotone (fresh states only), so a racing reader sees values no
     larger than the truth — cumulative scans can only under-count,
     which keeps the truncation cutoff safe (see [refresh_cutoff]). *)
  type dhist = { mutable counts : int array; mutable mdepth : int }

  let dh_create () = { counts = Array.make 64 0; mdepth = 0 }

  let dh_incr dh d =
    let n = Array.length dh.counts in
    if d >= n then begin
      let a = Array.make (max (2 * n) (d + 1)) 0 in
      Array.blit dh.counts 0 a 0 n;
      dh.counts <- a
    end;
    dh.counts.(d) <- dh.counts.(d) + 1;
    if d > dh.mdepth then dh.mdepth <- d

  type ws = {
    tbl : St.t;
    deques : item Deque.t array;
    pending : int Atomic.t;  (* chunks queued or in flight, incl. buffers *)
    running : int Atomic.t;  (* workers currently holding work *)
    hw : int;  (* hardware parallelism: cap on concurrently active workers *)
    idle_m : Mutex.t;  (* guards [idle_c]; wakers lock it before signalling *)
    idle_c : Condition.t;  (* idle thieves block here, no polling *)
    waiters : int Atomic.t;  (* thieves blocked (or about to block) on idle_c *)
    failed : bool Atomic.t;
    w_steals : int Atomic.t;
    w_relax : int Atomic.t;
    edges : int Atomic.t;
    dhists : dhist array;  (* per-domain first-intern depth counts *)
    depth_adjust : Avec.t;  (* global +/- adjustments from relaxations *)
    expanded : Aflags.t;
    goal_cut : int Atomic.t;  (* min depth of a goal state; max_int = none *)
    bound_cut : int Atomic.t;  (* adaptive truncation cutoff; sticky min *)
    emax : int;  (* effective state bound, >= 1 *)
    bounded : bool;
    states_v : S.state Pvec.t option;
    adj_v : (S.label * int) array Pvec.t option;
    parent_v : (int * S.label * int) option Atomic.t Pvec.t option;
    goal_v : bool Pvec.t;
    skipped : item list ref array;
    goal : S.state -> bool;
    stop_on_goal : bool;
    domains : int;
    (* --- resilience ----------------------------------------------- *)
    budget : Budget.t option;
    degrade_ok : bool;  (* memory trips walk the store down the ladder *)
    degrade_m : Mutex.t;  (* serialises degradation; guards [degraded] *)
    mutable degraded : string list;  (* ladder rungs taken, in order *)
    retries : int Atomic.t;  (* poisoned items quarantined and retried *)
    crash_m : Mutex.t;  (* guards [crashes] *)
    mutable crashes : (item * string) list;  (* unrecoverable items *)
    claims : bool;  (* track first expansions via the [expanded] bitset *)
    resumed : bool;  (* seeded from a cursor: provisional order is inherited *)
  }

  (* The count of states stamped depth [d]: per-domain monotone fresh
     counts plus the (seq-cst) relaxation adjustments. *)
  let depth_count ws d =
    let c = ref (Avec.get ws.depth_adjust d) in
    Array.iter
      (fun dh ->
        let a = dh.counts in
        if d < Array.length a then c := !c + a.(d))
      ws.dhists;
    !c

  (* Smallest depth whose cumulative stamped-state count reaches the
     bound.  Relaxation adjustments are decremented before incremented
     (and the scan reads shallow depths first), and the per-domain fresh
     counters are monotone, so concurrent reads only under-count and the
     published (sticky-min) cutoff never drops below the true boundary
     level. *)
  let refresh_cutoff ws =
    let md =
      Array.fold_left (fun m dh -> max m dh.mdepth) 0 ws.dhists
    in
    let acc = ref 0 and d = ref 0 and cut = ref max_int in
    while !cut = max_int && !d <= md do
      acc := !acc + depth_count ws !d;
      if !acc >= ws.emax then cut := !d;
      incr d
    done;
    if !cut < max_int then atomic_min ws.bound_cut !cut

  (* Memory-budget trip: one worker wins the degradation lock, walks the
     store a rung down the ladder and re-arms the budget; everyone else
     carries on against the swapped representation.  At the bottom of
     the ladder the trip stays sticky and the run suspends. *)
  let try_degrade ws b =
    Mutex.lock ws.degrade_m;
    Fun.protect ~finally:(fun () -> Mutex.unlock ws.degrade_m) @@ fun () ->
    match Budget.tripped b with
    | Some (Budget.Memory _) -> (
        match St.degrade ws.tbl with
        | Some mode ->
            ws.degraded <- ws.degraded @ [ Store.mode_name mode ];
            (* a major cycle lets the freed exact table actually go away
               before the budget re-arms against the current heap *)
            Gc.compact ();
            Budget.rearm b
        | None -> ())
    | _ -> ()

  let budget_tick ws =
    match ws.budget with
    | None -> ()
    | Some b -> (
        match Budget.check b with
        | Some (Budget.Memory _) when ws.degrade_ok -> try_degrade ws b
        | _ -> ())

  (* A sticky trip (after any degradation had its chance) means the run
     is suspending: workers drain their queues into [skipped] without
     expanding, so the frontier is captured for the cursor. *)
  let ws_suspended ws =
    match ws.budget with
    | None -> false
    | Some b -> Budget.tripped b <> None

  let ws_worker ws k =
    let my = ws.deques.(k) in
    let dh = ws.dhists.(k) in
    (* Fresh items accumulate in a fixed buffer (in discovery order, so
       a flushed chunk runs in near-BFS order with no reversal) and
       first-expansion successor counts in a plain local counter,
       published once when the worker exits. *)
    let dummy =
      { ipid = 0; ist = S.initial; idepth = 0; ifresh = false; iattempt = 0 }
    in
    let buf = Array.make chunk_cap dummy in
    let fill_n = ref 0 in
    let edges_acc = ref 0 in
    (* [pending] counts chunks (queued or in flight) rather than items,
       so the termination counter is touched a couple of times per
       [chunk_cap] items instead of twice per item.  A non-empty fill
       buffer holds one token ([buffered]); flushing transfers that
       token to the pushed chunk, and a chunk's token is released only
       after every item in it has been processed — so [pending] can hit
       zero only when no work exists anywhere. *)
    let buffered = ref false in
    let skipped = ws.skipped.(k) in
    let flush () =
      if !fill_n > 0 then begin
        (* the buffer's pending token transfers to the pushed chunk *)
        Deque.push my (Array.sub buf 0 !fill_n);
        fill_n := 0;
        buffered := false;
        (* wake a blocked thief only when a core is actually idle; a
           missed race here is harmless (this worker is active and will
           process its own push; the thief wakes at the next signal or
           at termination) *)
        if Atomic.get ws.waiters > 0 && Atomic.get ws.running < ws.hw then begin
          Mutex.lock ws.idle_m;
          Condition.signal ws.idle_c;
          Mutex.unlock ws.idle_m
        end
      end
    in
    let enqueue it =
      if not !buffered then begin
        Atomic.incr ws.pending;
        buffered := true
      end;
      buf.(!fill_n) <- it;
      incr fill_n;
      if !fill_n >= chunk_cap then flush ()
    in
    let cutoff () =
      if not ws.bounded then max_int
      else begin
        if St.total ws.tbl >= ws.emax then refresh_cutoff ws;
        Atomic.get ws.bound_cut
      end
    in
    let set_parent =
      match ws.parent_v with
      | None -> fun _ _ _ _ -> ()
      | Some pv ->
          fun j p l d ->
            let slot = Pvec.get pv j in
            let rec go () =
              match Atomic.get slot with
              | Some (_, _, d0) when d0 <= d -> ()
              | cur ->
                  if not (Atomic.compare_and_set slot cur (Some (p, l, d)))
                  then go ()
            in
            go ()
    in
    let expand it =
      (* The [expanded] bitset is only consulted when items can be
         skipped (truncation cutoff or goal cutoff); otherwise every
         item is expanded exactly once per enqueue and [ifresh] already
         identifies the first expansion, with no shared CAS. *)
      let first =
        if ws.claims then Aflags.claim ws.expanded it.ipid else it.ifresh
      in
      let succs = S.successors it.ist in
      let d' = it.idepth + 1 in
      let intern1 (l, s') =
        let j =
          match St.intern ws.tbl s' ~depth:d' with
          | St.Fresh j ->
              dh_incr dh d';
              (match ws.states_v with
              | Some sv -> Pvec.set sv j s'
              | None -> ());
              set_parent j it.ipid l d';
              if ws.stop_on_goal && ws.goal s' then begin
                Pvec.set ws.goal_v j true;
                atomic_min ws.goal_cut d'
              end;
              enqueue
                { ipid = j; ist = s'; idepth = d'; ifresh = true; iattempt = 0 };
              j
          | St.Known j -> j
          | St.Relaxed (j, old) ->
              Atomic.incr ws.w_relax;
              (* decrement before increment: concurrent cutoff scans
                 may only under-count, keeping the cutoff safe *)
              Avec.decr ws.depth_adjust old;
              Avec.incr ws.depth_adjust d';
              set_parent j it.ipid l d';
              if ws.stop_on_goal && Pvec.get ws.goal_v j then
                atomic_min ws.goal_cut d';
              enqueue
                {
                  ipid = j;
                  ist = s';
                  idepth = d';
                  ifresh = false;
                  iattempt = 0;
                };
              j
        in
        (l, j)
      in
      let n =
        match ws.adj_v with
        | Some av ->
            let cells = Array.of_list (List.map intern1 succs) in
            Pvec.set av it.ipid cells;
            Array.length cells
        | None ->
            List.fold_left
              (fun n c ->
                ignore (intern1 c : S.label * int);
                n + 1)
              0 succs
      in
      if first then edges_acc := !edges_acc + n
    in
    (* A raising successor (or hash/equal) must not take the whole run
       down: the first failure re-enqueues the item on the next domain
       after an exponential backoff — transient failures (e.g. a
       resource blip in an effectful successor) clear on retry — and a
       second failure records the state as unrecoverable.  Either way
       the chunk finishes and the pending-token protocol stays
       balanced, so termination detection still works. *)
    let quarantine it e =
      if it.iattempt = 0 then begin
        Atomic.incr ws.retries;
        Unix.sleepf (0.001 *. (2. ** float_of_int (it.iattempt + 1)));
        Atomic.incr ws.pending;
        Deque.push
          ws.deques.((k + 1) mod ws.domains)
          [| { it with iattempt = 1 } |];
        if Atomic.get ws.waiters > 0 then begin
          Mutex.lock ws.idle_m;
          Condition.signal ws.idle_c;
          Mutex.unlock ws.idle_m
        end
      end
      else begin
        Mutex.lock ws.crash_m;
        ws.crashes <- (it, Printexc.to_string e) :: ws.crashes;
        Mutex.unlock ws.crash_m
      end
    in
    let process it =
      if ws_suspended ws then skipped := it :: !skipped
      else begin
        let gcut =
          if ws.stop_on_goal then Atomic.get ws.goal_cut else max_int
        in
        if it.idepth < gcut && it.idepth <= cutoff () then (
          try expand it with e -> quarantine it e)
        else skipped := it :: !skipped
      end
    in
    let run_chunk c =
      budget_tick ws;
      Array.iter process c;
      (* release the chunk's token only once every item has run; the
         worker that drops the count to zero announces termination (the
         broadcast is taken under [idle_m], and thieves re-check the
         predicate under the same lock, so the wake-up cannot be lost) *)
      if Atomic.fetch_and_add ws.pending (-1) = 1 then begin
        Mutex.lock ws.idle_m;
        Condition.broadcast ws.idle_c;
        Mutex.unlock ws.idle_m
      end
    in
    (* [running] counts workers between go-active and go-idle edges, so
       it never dips transiently to zero while a worker still holds
       work — the steal gate below relies on that. *)
    let rec main () =
      if not (Atomic.get ws.failed) then
        match Deque.pop my with
        | Some c ->
            run_chunk c;
            main ()
        | None ->
            if !fill_n > 0 then begin
              let c = Array.sub buf 0 !fill_n in
              fill_n := 0;
              (* the buffer token now covers the in-flight chunk *)
              buffered := false;
              run_chunk c;
              main ()
            end
            else begin
              (* go idle: this worker holds no work from here on *)
              Atomic.decr ws.running;
              try_steal 0
            end
    and try_steal backoff =
      if (not (Atomic.get ws.failed)) && Atomic.get ws.pending > 0 then begin
        let got = ref None in
        (* Steal only when a hardware thread is actually idle: engaging
           more workers than cores cannot raise throughput — it only
           interleaves expansions out of BFS order, inflating depth
           stamps and triggering relaxation re-expansion cascades, and
           it stalls minor-GC safepoints on descheduled domains. *)
        let gate_open = Atomic.get ws.running < ws.hw in
        if gate_open then
          for i = 1 to ws.domains - 1 do
            if !got = None then begin
              match Deque.steal_half ws.deques.((k + i) mod ws.domains) with
              | [] -> ()
              | c :: rest ->
                  Atomic.incr ws.w_steals;
                  List.iter (Deque.push my) rest;
                  got := Some c
            end
          done;
        match !got with
        | Some c ->
            Atomic.incr ws.running;
            run_chunk c;
            main ()
        | None ->
            (* Nothing to take: spin briefly for latency, then block on
               the condition variable.  Wakers: a flush while a core is
               idle, the pending counter reaching zero, and failure.
               No polling — on oversubscribed hosts idle thieves cost
               nothing, and termination wakes them instantly. *)
            if backoff < 2 then begin
              Domain.cpu_relax ();
              try_steal (backoff + 1)
            end
            else begin
              Atomic.incr ws.waiters;
              Mutex.lock ws.idle_m;
              if Atomic.get ws.pending > 0 && not (Atomic.get ws.failed) then
                Condition.wait ws.idle_c ws.idle_m;
              Mutex.unlock ws.idle_m;
              Atomic.decr ws.waiters;
              try_steal 0
            end
      end
    in
    Atomic.incr ws.running;
    Fun.protect ~finally:(fun () ->
        ignore (Atomic.fetch_and_add ws.edges !edges_acc))
    @@ fun () ->
    try main ()
    with e ->
      Atomic.set ws.failed true;
      (* release any thieves blocked on the idle condition *)
      Mutex.lock ws.idle_m;
      Condition.broadcast ws.idle_c;
      Mutex.unlock ws.idle_m;
      raise e

  let ws_explore ?expected_states ?budget ?(degrade_ok = false) ?resume
      ~max_states ~domains ~shards ~store_mode ~keep_adj ~keep_states
      ~keep_parent ~goal ~stop_on_goal () =
    if domains < 1 then invalid_arg "Mc.Pexplore: domains must be >= 1";
    if max_states < 0 then invalid_arg "Mc.Pexplore: negative max_states";
    (match resume with
    | Some c when c.Explore.c_max_states <> max_states ->
        invalid_arg
          (Printf.sprintf
             "Mc.Pexplore: checkpoint was taken with max_states=%d, resumed \
              with %d"
             c.Explore.c_max_states max_states)
    | _ -> ());
    let tbl = make_table ?expected_states ~shards store_mode in
    let ws =
      {
        tbl;
        deques = Array.init domains (fun _ -> Deque.create ());
        pending = Atomic.make 0;
        running = Atomic.make 0;
        hw = max 1 (Domain.recommended_domain_count ());
        idle_m = Mutex.create ();
        idle_c = Condition.create ();
        waiters = Atomic.make 0;
        failed = Atomic.make false;
        w_steals = Atomic.make 0;
        w_relax = Atomic.make 0;
        edges = Atomic.make 0;
        dhists = Array.init domains (fun _ -> dh_create ());
        depth_adjust = Avec.create ();
        expanded = Aflags.create ();
        goal_cut = Atomic.make max_int;
        bound_cut = Atomic.make max_int;
        emax = max 1 max_states;
        bounded = max_states < max_int;
        states_v = (if keep_states then Some (Pvec.create S.initial) else None);
        adj_v = (if keep_adj then Some (Pvec.create [||]) else None);
        parent_v =
          (if keep_parent then
             Some (Pvec.create_init (fun () -> Atomic.make None))
           else None);
        goal_v = Pvec.create false;
        skipped = Array.init domains (fun _ -> ref []);
        goal;
        stop_on_goal;
        domains;
        budget;
        degrade_ok;
        degrade_m = Mutex.create ();
        degraded = [];
        retries = Atomic.make 0;
        crash_m = Mutex.create ();
        crashes = [];
        (* suspension and resume both need exact first-expansion
           tracking, so any budget or cursor forces the bitset on *)
        claims =
          max_states < max_int || stop_on_goal || budget <> None
          || resume <> None;
        resumed = resume <> None;
      }
    in
    (match resume with
    | None ->
        let pid0, _ = intern_pid tbl S.initial ~depth:0 in
        dh_incr ws.dhists.(0) 0;
        (match ws.states_v with
        | Some sv -> Pvec.set sv pid0 S.initial
        | None -> ());
        if stop_on_goal && goal S.initial then begin
          Pvec.set ws.goal_v pid0 true;
          atomic_min ws.goal_cut 0
        end;
        Atomic.incr ws.pending;
        Deque.push ws.deques.(0)
          [|
            {
              ipid = pid0;
              ist = S.initial;
              idepth = 0;
              ifresh = true;
              iattempt = 0;
            };
          |]
    | Some c ->
        (* Rebuild the table in pid order so provisional ids match the
           cursor's, then restore adjacency, mark everything off the
           frontier as already expanded, and scatter the frontier
           round-robin over the deques. *)
        let cs = c.Explore.c_states and cd = c.Explore.c_depths in
        let n = Array.length cs in
        for i = 0 to n - 1 do
          (match St.intern tbl cs.(i) ~depth:cd.(i) with
          | St.Fresh pid when pid = i -> ()
          | St.Fresh _ | St.Known _ | St.Relaxed _ ->
              invalid_arg
                "Mc.Pexplore: resume store does not reproduce checkpoint \
                 state ids (was the store mode changed between runs?)");
          dh_incr ws.dhists.(0) cd.(i);
          (match ws.states_v with
          | Some sv -> Pvec.set sv i cs.(i)
          | None -> ());
          if stop_on_goal && goal cs.(i) then begin
            Pvec.set ws.goal_v i true;
            atomic_min ws.goal_cut cd.(i)
          end
        done;
        (match ws.adj_v with
        | Some av ->
            let by_src = Hashtbl.create 1024 in
            (* [c_trans] is newest-first, so consing while walking it
               leaves each per-source list in original emission order *)
            List.iter
              (fun (src, l, dst) ->
                let prev =
                  match Hashtbl.find_opt by_src src with
                  | Some cells -> cells
                  | None -> []
                in
                Hashtbl.replace by_src src ((l, dst) :: prev))
              c.Explore.c_trans;
            Hashtbl.iter
              (fun src cells -> Pvec.set av src (Array.of_list cells))
              by_src
        | None -> ());
        let infront = Array.make (max 1 n) false in
        Array.iter (fun i -> infront.(i) <- true) c.Explore.c_queue;
        for pid = 0 to n - 1 do
          if not infront.(pid) then
            ignore (Aflags.claim ws.expanded pid : bool)
        done;
        let nq = Array.length c.Explore.c_queue in
        let di = ref 0 in
        let i = ref 0 in
        while !i < nq do
          let len = min chunk_cap (nq - !i) in
          let base = !i in
          let chunk =
            Array.init len (fun j ->
                let pid = c.Explore.c_queue.(base + j) in
                {
                  ipid = pid;
                  ist = cs.(pid);
                  idepth = cd.(pid);
                  ifresh = false;
                  iattempt = 0;
                })
          in
          Atomic.incr ws.pending;
          Deque.push ws.deques.(!di mod domains) chunk;
          incr di;
          i := !i + len
        done);
    let crew = Crew.create domains in
    Fun.protect
      ~finally:(fun () -> Crew.shutdown crew)
      (fun () -> Crew.run crew (fun k -> ws_worker ws k));
    ws

  (* Post-barrier closure check: does some never-expanded (skipped) state
     have a successor outside the table?  Mirrors the sequential
     [dropped] flag when the interned total sits exactly at the bound. *)
  let ws_dropped ws =
    let tracks = St.tracks_pids ws.tbl in
    let seen = Hashtbl.create 64 in
    let dropped = ref false in
    Array.iter
      (fun lst ->
        List.iter
          (fun it ->
            if
              (not !dropped)
              && not (Aflags.mem ws.expanded it.ipid)
              && not (Hashtbl.mem seen it.ipid)
            then begin
              Hashtbl.add seen it.ipid ();
              if not tracks then dropped := true
              else
                List.iter
                  (fun (_, s') ->
                    if St.find_pid ws.tbl s' < 0 then dropped := true)
                  (S.successors it.ist)
            end)
          !lst)
      ws.skipped;
    !dropped

  let ws_adj ws =
    match ws.adj_v with
    | Some av -> fun pid -> Pvec.get av pid
    | None -> fun _ -> [||]

  let ws_states ws =
    match ws.states_v with
    | Some sv -> fun pid -> Pvec.get sv pid
    | None -> fun _ -> S.initial

  let ws_trace ws pid =
    match ws.parent_v with
    | None -> []
    | Some pv ->
        let rec go pid acc =
          match Atomic.get (Pvec.get pv pid) with
          | None -> acc
          | Some (p, l, _) -> go p (l :: acc)
        in
        go pid []

  let ws_histogram ws =
    let md =
      Array.fold_left (fun m dh -> max m dh.mdepth) 0 ws.dhists
    in
    Array.init (md + 1) (fun d -> depth_count ws d)

  (* --- suspension ------------------------------------------------------ *)

  (* The first unrecoverable crash, as a budget reason naming the state
     whose expansion raised twice. *)
  let ws_crash ws =
    match List.rev ws.crashes with
    | [] -> None
    | (it, msg) :: _ ->
        Some
          (Budget.Crashed
             (Format.asprintf "%s at state %a" msg S.pp_state it.ist))

  (* Why the run fell short of a full verdict, if it did: an
     unrecoverable crash outranks the budget trip it may have caused. *)
  let ws_exhausted ws =
    match ws_crash ws with
    | Some _ as r -> r
    | None -> (
        match ws.budget with None -> None | Some b -> Budget.tripped b)

  let ws_exhaustion ws reason =
    {
      Explore.reason;
      states_so_far = St.total ws.tbl;
      coverage = St.coverage ws.tbl;
    }

  (* Capture a suspended run as a sequential-style cursor: every interned
     state with its depth stamp, all recorded adjacency, and the
     never-expanded states (drained frontier, cutoff skips, crashed
     items) as the queue, in pid order.  Requires [keep_states] and
     [keep_adj]. *)
  let ws_cursor ws ~max_states =
    let total = St.total ws.tbl in
    let state_of = ws_states ws in
    let states = Array.init total state_of in
    let stamps = St.depths ws.tbl in
    let depths =
      Array.init total (fun i ->
          if i < Array.length stamps then stamps.(i) else 0)
    in
    let adj = ws_adj ws in
    let trans = ref [] in
    for pid = 0 to total - 1 do
      Array.iter
        (fun (l, dst) -> if dst >= 0 then trans := (pid, l, dst) :: !trans)
        (adj pid)
    done;
    let infront = Array.make (max 1 total) false in
    let frontier = ref [] in
    let add pid =
      if pid >= 0 && pid < total && not infront.(pid) then begin
        infront.(pid) <- true;
        frontier := pid :: !frontier
      end
    in
    Array.iter
      (fun lst ->
        List.iter
          (fun it ->
            if not (Aflags.mem ws.expanded it.ipid) then add it.ipid)
          !lst)
      ws.skipped;
    (* a crashed item claimed its expansion flag before raising, so it
       must be re-queued explicitly *)
    List.iter (fun (it, _) -> add it.ipid) ws.crashes;
    let queue = Array.of_list !frontier in
    Array.sort compare queue;
    {
      Explore.c_max_states = max_states;
      c_states = states;
      c_depths = depths;
      c_trans = !trans;
      c_queue = queue;
      c_complete = true;
    }

  let ws_space_run ?expected_states ?budget ?(degrade_ok = false) ?resume
      ~max_states ~domains ~shards ~store_mode ~progress ~do_replay () =
    (match store_mode with
    | Store.Bitstate _ ->
        invalid_arg
          "Mc.Pexplore.space: a bitstate store keeps no state identities \
           and cannot produce a state graph"
    | _ -> ());
    let t0 = Unix.gettimeofday () in
    let ws =
      ws_explore ?expected_states ?budget ~degrade_ok ?resume ~max_states
        ~domains ~shards ~store_mode ~keep_adj:true ~keep_states:true
        ~keep_parent:false
        ~goal:(fun _ -> false)
        ~stop_on_goal:false ()
    in
    let total = St.total ws.tbl in
    let adj = ws_adj ws and state_of = ws_states ws in
    let finish ~count ~states ~trans ~complete ~peak ~histogram =
      let lts = Lts.Graph.make ~num_states:count ~initial:0 trans in
      let wall = Unix.gettimeofday () -. t0 in
      let stats =
        stats_of ~degraded:ws.degraded
          ~retries:(Atomic.get ws.retries)
          ~engine:"workstealing" ~count
          ~transitions:(Lts.Graph.num_transitions lts)
          ~wall ~peak ~histogram ~tbl:ws.tbl ~domains
          ~steals:(Atomic.get ws.w_steals)
          ~relaxations:(Atomic.get ws.w_relax)
          ()
      in
      (Explore.Done { Explore.lts; states; complete }, stats)
    in
    match ws_exhausted ws with
    | Some reason ->
        let wall = Unix.gettimeofday () -. t0 in
        let histogram = ws_histogram ws in
        let stats =
          stats_of ~exhausted:(Some reason) ~degraded:ws.degraded
            ~retries:(Atomic.get ws.retries)
            ~engine:"workstealing" ~count:total
            ~transitions:(Atomic.get ws.edges)
            ~wall
            ~peak:(Array.fold_left max 0 histogram)
            ~histogram ~tbl:ws.tbl ~domains
            ~steals:(Atomic.get ws.w_steals)
            ~relaxations:(Atomic.get ws.w_relax)
            ()
        in
        (Explore.Suspended (reason, ws_cursor ws ~max_states), stats)
    | None ->
    (* With no steals, every chunk ran on the owning domain in FIFO
       order, and with no relaxations every state was first reached at
       its minimal depth — so the provisional numbering already equals
       sequential BFS discovery order and the replay would be an
       identity renumbering.  A resumed run inherits the cursor's
       numbering instead, so it must replay. *)
    let canonical_already =
      Atomic.get ws.w_steals = 0
      && Atomic.get ws.w_relax = 0
      && not ws.resumed
    in
    if
      ((not do_replay) || canonical_already)
      && total <= ws.emax
      && not (ws_dropped ws)
    then begin
      (* Fast path: exploration completed within the bound, so the
         provisional numbering is a valid space (canonical when
         [canonical_already]). *)
      let states = Array.init total state_of in
      let trans = ref [] in
      for pid = total - 1 downto 0 do
        let cells = adj pid in
        for k = Array.length cells - 1 downto 0 do
          let l, dst = cells.(k) in
          trans := (pid, l, dst) :: !trans
        done
      done;
      let histogram = ws_histogram ws in
      let cum = ref 0 in
      Array.iteri
        (fun d n ->
          cum := !cum + n;
          progress ~depth:d ~states:!cum ~frontier:n)
        histogram;
      finish ~count:total ~states ~trans:!trans ~complete:true
        ~peak:(Array.fold_left max 0 histogram)
        ~histogram
    end
    else begin
      let r = replay ~max_states ~emit:true ~total ~adj () in
      let cum = ref 0 in
      Array.iteri
        (fun d n ->
          cum := !cum + n;
          progress ~depth:d ~states:!cum ~frontier:n)
        r.r_levels;
      let states = Array.init r.r_count (fun c -> state_of r.r_pid_of.(c)) in
      finish ~count:r.r_count ~states ~trans:r.r_trans ~complete:r.r_complete
        ~peak:(Array.fold_left max 0 r.r_levels)
        ~histogram:r.r_levels
    end

  let ws_space ?expected_states ~max_states ~domains ~shards ~store_mode
      ~progress ~do_replay () =
    match
      ws_space_run ?expected_states ~max_states ~domains ~shards ~store_mode
        ~progress ~do_replay ()
    with
    | Explore.Done sp, stats -> (sp, stats)
    | Explore.Suspended _, _ -> assert false (* no budget, cannot suspend *)

  let ws_count ?expected_states ?budget ?(degrade_ok = false) ~max_states
      ~domains ~shards ~store_mode () =
    let ws =
      ws_explore ?expected_states ?budget ~degrade_ok ~max_states ~domains
        ~shards ~store_mode ~keep_adj:false ~keep_states:false
        ~keep_parent:false
        ~goal:(fun _ -> false)
        ~stop_on_goal:false ()
    in
    let total = St.total ws.tbl in
    let n = max 1 (min total max_states) in
    let complete =
      (match ws_exhausted ws with None -> true | Some _ -> false)
      && total <= max 1 max_states
      && not (ws_dropped ws)
    in
    ((n, complete), ws)

  let ws_count_stats ?expected_states ?budget ?degrade_ok ~max_states ~domains
      ~shards ~store_mode () =
    let t0 = Unix.gettimeofday () in
    let r, ws =
      ws_count ?expected_states ?budget ?degrade_ok ~max_states ~domains
        ~shards ~store_mode ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    let histogram = ws_histogram ws in
    let stats =
      stats_of
        ~exhausted:(ws_exhausted ws)
        ~degraded:ws.degraded
        ~retries:(Atomic.get ws.retries)
        ~engine:"workstealing" ~count:(fst r)
        ~transitions:(Atomic.get ws.edges)
        ~wall
        ~peak:(Array.fold_left max 0 histogram)
        ~histogram ~tbl:ws.tbl ~domains
        ~steals:(Atomic.get ws.w_steals)
        ~relaxations:(Atomic.get ws.w_relax)
        ()
    in
    (r, stats)

  let ws_find ?expected_states ?budget ?(degrade_ok = false) ~max_states
      ~domains ~shards ~store_mode ~goal () =
    if goal S.initial then
      Explore.Reached { Explore.trace = []; state = S.initial }
    else begin
      let tracks = match store_mode with Store.Bitstate _ -> false | _ -> true in
      let ws =
        ws_explore ?expected_states ?budget ~degrade_ok ~max_states ~domains
          ~shards ~store_mode ~keep_adj:tracks ~keep_states:true
          ~keep_parent:true ~goal ~stop_on_goal:true ()
      in
      let total = St.total ws.tbl in
      let emax = max 1 max_states in
      let state_of = ws_states ws in
      (* Scan flagged goal states for the one with the shortest (relaxed)
         parent chain: its length equals the sequential BFS depth. *)
      let best_goal lo hi =
        let best = ref (-1) and best_len = ref max_int in
        for pid = lo to hi - 1 do
          if Pvec.get ws.goal_v pid then begin
            let len = List.length (ws_trace ws pid) in
            if len < !best_len then begin
              best := pid;
              best_len := len
            end
          end
        done;
        !best
      in
      match ws_exhausted ws with
      | Some reason ->
          (* Cut short — but a goal flagged before the trip is still a
             real witness, and always outranks the exhaustion. *)
          let w = best_goal 0 total in
          if w >= 0 then
            Explore.Reached
              { Explore.trace = ws_trace ws w; state = state_of w }
          else Explore.Exhausted (ws_exhaustion ws reason)
      | None ->
      if not tracks then begin
        (* Bitstate: no replay possible; verdicts are probabilistic. *)
        let w = best_goal 0 total in
        if w >= 0 then
          Explore.Reached { Explore.trace = ws_trace ws w; state = state_of w }
        else if total > emax || ws_dropped ws then Explore.Bound_hit max_states
        else Explore.Unreachable
      end
      else if total > emax || (total = emax && ws_dropped ws) then begin
        (* Truncated: only a goal inside the canonical prefix counts. *)
        let r = replay ~max_states ~emit:false ~total ~adj:(ws_adj ws) () in
        let witness = ref (-1) in
        let c = ref 0 in
        while !witness < 0 && !c < r.r_count do
          let pid = r.r_pid_of.(!c) in
          if Pvec.get ws.goal_v pid then witness := pid;
          incr c
        done;
        if !witness >= 0 then
          Explore.Reached
            { Explore.trace = ws_trace ws !witness; state = state_of !witness }
        else Explore.Bound_hit max_states
      end
      else begin
        let w = best_goal 0 total in
        if w >= 0 then
          Explore.Reached { Explore.trace = ws_trace ws w; state = state_of w }
        else Explore.Unreachable
      end
    end
end

(* --- public entry points ------------------------------------------------ *)

let no_progress ~depth:_ ~states:_ ~frontier:_ = ()

let reject_levels_bitstate store =
  match store with
  | Store.Bitstate _ ->
      invalid_arg
        "Mc.Pexplore: the bitstate store requires the work-stealing engine"
  | _ -> ()

let space_stats (type s l) ?(max_states = Explore.default_max)
    ?expected_states ?domains ?(shards = default_shards)
    ?(progress = no_progress) ?(store = Store.Exact) ?(workstealing = true)
    ?(replay = true) (sys : (s, l) System.t) : (s, l) Explore.space * stats =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let module E = Engine ((val sys)) in
  if workstealing then
    E.ws_space ?expected_states ~max_states ~domains ~shards ~store_mode:store
      ~progress ~do_replay:replay ()
  else begin
    reject_levels_bitstate store;
    E.space ?expected_states ~max_states ~domains ~shards ~store_mode:store
      ~progress ()
  end

let space ?max_states ?expected_states ?domains ?shards ?progress ?store
    ?workstealing ?replay sys =
  fst
    (space_stats ?max_states ?expected_states ?domains ?shards ?progress
       ?store ?workstealing ?replay sys)

let space_run (type s l) ?(max_states = Explore.default_max) ?expected_states
    ?domains ?(shards = default_shards) ?(progress = no_progress)
    ?(store = Store.Exact) ?budget ?(degrade = true) ?resume
    (sys : (s, l) System.t) : (s, l) Explore.run_result * stats =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let module E = Engine ((val sys)) in
  E.ws_space_run ?expected_states ?budget ~degrade_ok:degrade ?resume
    ~max_states ~domains ~shards ~store_mode:store ~progress ~do_replay:true
    ()

let count (type s l) ?(max_states = Explore.default_max) ?expected_states
    ?domains ?(shards = default_shards) ?(store = Store.Exact)
    ?(workstealing = true) ?budget ?(degrade = true) (sys : (s, l) System.t) :
    int * bool =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let module E = Engine ((val sys)) in
  if workstealing then
    fst
      (E.ws_count ?expected_states ?budget ~degrade_ok:degrade ~max_states
         ~domains ~shards ~store_mode:store ())
  else begin
    reject_levels_bitstate store;
    E.count ?expected_states ?budget ~max_states ~domains ~shards
      ~store_mode:store ()
  end

let count_stats (type s l) ?(max_states = Explore.default_max)
    ?expected_states ?domains ?(shards = default_shards)
    ?(store = Store.Exact) ?budget ?(degrade = true) (sys : (s, l) System.t) :
    (int * bool) * stats =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let module E = Engine ((val sys)) in
  E.ws_count_stats ?expected_states ?budget ~degrade_ok:degrade ~max_states
    ~domains ~shards ~store_mode:store ()

let find (type s l) ?(max_states = Explore.default_max) ?expected_states
    ?domains ?(shards = default_shards) ?(store = Store.Exact)
    ?(workstealing = true) ?budget ?(degrade = true) ~goal
    (sys : (s, l) System.t) : (s, l) Explore.verdict =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let module E = Engine ((val sys)) in
  if workstealing then
    E.ws_find ?expected_states ?budget ~degrade_ok:degrade ~max_states
      ~domains ~shards ~store_mode:store ~goal ()
  else begin
    reject_levels_bitstate store;
    E.find ?expected_states ?budget ~max_states ~domains ~shards
      ~store_mode:store ~goal ()
  end
