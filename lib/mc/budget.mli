(** Resource budgets with cooperative cancellation.

    A budget bounds a verification run by wall-clock time and/or live
    heap size, and doubles as the cancellation token for signal
    handling.  Exploration engines poll {!check} at chunk granularity;
    the first limit to trip is recorded {e stickily} and every
    subsequent poll returns it, so all domains of a parallel run
    converge on the same reason.

    Budgets are cheap to poll: the sticky trip state and the
    cancellation flag are single atomic reads, and the expensive
    probes (gettimeofday, GC stats, user probe) only run every
    [check_every] calls. *)

type reason =
  | Wall_clock of float  (** wall-clock budget (seconds) exhausted *)
  | Memory of int  (** live-heap budget (megabytes) exhausted *)
  | Cancelled  (** {!cancel} was called (signal or user request) *)
  | Crashed of string
      (** a successor function raised and could not be retried; the
          payload names the exception and the offending state *)

type t

val make :
  ?wall_secs:float ->
  ?mem_mb:int ->
  ?probe:(unit -> reason option) ->
  ?check_every:int ->
  unit ->
  t
(** [make ()] starts the wall clock immediately.  [probe] is an extra
    user-supplied limit evaluated alongside the built-in ones (used by
    the test suite to trip deterministically at a chosen state count).
    [check_every] rate-limits the expensive probes to one in every
    [check_every] calls to {!check} (rounded up to a power of two;
    default 64).  Cancellation is checked on {e every} call. *)

val unlimited : unit -> t
(** A budget with no limits; still usable as a cancellation token. *)

val check : t -> reason option
(** Poll the budget.  Returns [Some r] once tripped (sticky until
    {!rearm}).  Thread-safe; callable from any domain. *)

val tripped : t -> reason option
(** The sticky trip state, without probing.  One atomic read. *)

val cancel : t -> unit
(** Request cooperative cancellation; the next {!check} from any
    domain trips with {!Cancelled}.  Async-signal-safe. *)

val trip : t -> reason -> unit
(** Force a trip with an explicit reason (used to surface successor
    crashes as {!Crashed}).  The first trip wins; later ones are
    ignored. *)

val rearm : t -> unit
(** Clear a {!Memory} trip after the store has been degraded, so the
    run can continue under the smaller footprint.  Because the OCaml 5
    major heap does not shrink in place, the memory limit re-arms with
    headroom above the {e current} heap size — a later trip then means
    the degraded run itself is outgrowing memory, not that the old
    high-water mark lingers.  Trips for any other reason are
    permanent. *)

val elapsed : t -> float
(** Seconds since [make]. *)

val live_mb : unit -> int
(** Current live major-heap size in megabytes (from [Gc.quick_stat]). *)

val install_signal_handlers : ?on_force:(unit -> unit) -> t -> unit
(** Route SIGINT/SIGTERM to {!cancel} so a run checkpoints and reports
    partial results instead of dying.  A {e second} signal calls
    [on_force] (default: [exit 130]) for users who really mean it.
    No-op on platforms without those signals. *)

val reason_name : reason -> string
(** Short stable tag: ["wall-clock"], ["memory"], ["interrupted"],
    ["crashed"] — used in JSON output. *)

val pp_reason : Format.formatter -> reason -> unit
