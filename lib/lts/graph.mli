(** Finite labelled transition systems.

    A labelled transition system (LTS) is a finite graph whose nodes are
    states (numbered [0 .. num_states - 1]) and whose edges carry labels of
    an arbitrary type ['l].  LTSs are the common output format of the
    process-algebra semantics ({!Proc.Semantics}) and the timed-automata
    semantics ({!Ta.Semantics}), and the common input format of the
    minimisation and export utilities. *)

type 'l t
(** An immutable LTS with labels of type ['l]. *)

val make : num_states:int -> initial:int -> (int * 'l * int) list -> 'l t
(** [make ~num_states ~initial transitions] builds an LTS.  Every state
    index occurring in [transitions] and [initial] must lie in
    [0 .. num_states - 1].
    @raise Invalid_argument on an out-of-range state index. *)

val num_states : 'l t -> int
(** Number of states. *)

val num_transitions : 'l t -> int
(** Number of transitions. *)

val initial : 'l t -> int
(** The initial state. *)

val successors : 'l t -> int -> ('l * int) list
(** [successors lts s] lists the outgoing transitions of state [s], in the
    order they were given to {!make}. *)

val transitions : 'l t -> (int * 'l * int) list
(** All transitions as [(source, label, target)] triples. *)

val fold_transitions : (int -> 'l -> int -> 'a -> 'a) -> 'l t -> 'a -> 'a
(** Fold over all transitions. *)

val labels : 'l t -> 'l list
(** The distinct labels occurring in the LTS (using structural equality),
    in first-occurrence order. *)

val deadlocks : 'l t -> int list
(** States with no outgoing transition, in increasing order. *)

val reachable : 'l t -> bool array
(** [reachable lts] marks the states reachable from the initial state. *)

val predecessors : 'l t -> int list array
(** [predecessors lts] is the reverse-edge table: entry [s'] lists the
    sources of transitions into [s'] (one entry per transition, so a state
    with two edges into [s'] appears twice), in transition order. *)

val scc : 'l t -> int * int array
(** [scc lts] computes the strongly connected components (Tarjan's
    algorithm, iterative).  Returns [(count, comp)] where [comp.(s)] is the
    component index of state [s], in [0 .. count - 1].  Components are
    numbered in completion order, which is reverse topological: for every
    transition [s -> s'] with [comp.(s) <> comp.(s')], [comp.(s') <
    comp.(s)].  All states are covered, reachable from the initial state or
    not. *)

val restrict_to_reachable : 'l t -> 'l t * int array
(** Drop unreachable states.  Returns the restricted LTS together with the
    renumbering map [old_index -> new_index] ([-1] for dropped states). *)

val map_labels : ('l -> 'm) -> 'l t -> 'm t
(** Relabel every transition. *)

val trace_to : 'l t -> (int -> bool) -> 'l list option
(** [trace_to lts goal] returns the labels of a shortest path from the
    initial state to some state satisfying [goal], or [None] if no such
    state is reachable. *)

val has_trace : 'l t -> eq:('l -> 'l -> bool) -> 'l list -> bool
(** [has_trace lts ~eq word] tests whether [word] labels a path starting in
    the initial state. *)

val pp_stats : Format.formatter -> 'l t -> unit
(** Print a one-line [states/transitions/deadlocks] summary. *)
