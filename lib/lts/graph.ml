type 'l t = {
  num_states : int;
  initial : int;
  trans : (int * 'l * int) array;
  succ : int list array; (* indices into [trans], per source state *)
}

let make ~num_states ~initial transitions =
  let check s =
    if s < 0 || s >= num_states then
      invalid_arg (Printf.sprintf "Lts.Graph.make: state %d out of range" s)
  in
  check initial;
  List.iter (fun (s, _, s') -> check s; check s') transitions;
  let trans = Array.of_list transitions in
  let succ = Array.make num_states [] in
  for i = Array.length trans - 1 downto 0 do
    let s, _, _ = trans.(i) in
    succ.(s) <- i :: succ.(s)
  done;
  { num_states; initial; trans; succ }

let num_states t = t.num_states
let num_transitions t = Array.length t.trans
let initial t = t.initial

let successors t s =
  List.map (fun i -> let _, l, s' = t.trans.(i) in (l, s')) t.succ.(s)

let transitions t = Array.to_list t.trans

let fold_transitions f t acc =
  Array.fold_left (fun acc (s, l, s') -> f s l s' acc) acc t.trans

let labels t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun (_, l, _) ->
      if not (Hashtbl.mem seen l) then begin
        Hashtbl.add seen l ();
        out := l :: !out
      end)
    t.trans;
  List.rev !out

let deadlocks t =
  let rec collect s acc =
    if s < 0 then acc
    else collect (s - 1) (if t.succ.(s) = [] then s :: acc else acc)
  in
  collect (t.num_states - 1) []

let reachable t =
  let seen = Array.make t.num_states false in
  let rec dfs s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter (fun i -> let _, _, s' = t.trans.(i) in dfs s') t.succ.(s)
    end
  in
  dfs t.initial;
  seen

let predecessors t =
  let pred = Array.make t.num_states [] in
  for i = Array.length t.trans - 1 downto 0 do
    let s, _, s' = t.trans.(i) in
    pred.(s') <- s :: pred.(s')
  done;
  pred

(* Tarjan, iterative: an explicit work stack of (state, next-successor
   cursor) frames replaces the recursion, so deep graphs (long BFS chains
   of product spaces) cannot overflow the OCaml stack. *)
let scc t =
  let n = t.num_states in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let tarjan_stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let succs s = Array.of_list t.succ.(s) in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      (* frames: (state, successor array, cursor) *)
      let frames = ref [ (root, succs root, ref 0) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      tarjan_stack := root :: !tarjan_stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (s, edges, cursor) :: rest ->
            if !cursor < Array.length edges then begin
              let _, _, s' = t.trans.(edges.(!cursor)) in
              incr cursor;
              if index.(s') < 0 then begin
                index.(s') <- !next_index;
                lowlink.(s') <- !next_index;
                incr next_index;
                tarjan_stack := s' :: !tarjan_stack;
                on_stack.(s') <- true;
                frames := (s', succs s', ref 0) :: !frames
              end
              else if on_stack.(s') then
                lowlink.(s) <- min lowlink.(s) index.(s')
            end
            else begin
              frames := rest;
              (match rest with
              | (parent, _, _) :: _ ->
                  lowlink.(parent) <- min lowlink.(parent) lowlink.(s)
              | [] -> ());
              if lowlink.(s) = index.(s) then begin
                let rec pop () =
                  match !tarjan_stack with
                  | [] -> ()
                  | v :: vs ->
                      tarjan_stack := vs;
                      on_stack.(v) <- false;
                      comp.(v) <- !next_comp;
                      if v <> s then pop ()
                in
                pop ();
                incr next_comp
              end
            end
      done
    end
  done;
  (!next_comp, comp)

let restrict_to_reachable t =
  let keep = reachable t in
  let map = Array.make t.num_states (-1) in
  let next = ref 0 in
  for s = 0 to t.num_states - 1 do
    if keep.(s) then begin
      map.(s) <- !next;
      incr next
    end
  done;
  let transitions =
    fold_transitions
      (fun s l s' acc ->
        if keep.(s) && keep.(s') then (map.(s), l, map.(s')) :: acc else acc)
      t []
  in
  (make ~num_states:!next ~initial:map.(t.initial) (List.rev transitions), map)

let map_labels f t =
  { t with trans = Array.map (fun (s, l, s') -> (s, f l, s')) t.trans }

let trace_to t goal =
  if goal t.initial then Some []
  else begin
    let visited = Array.make t.num_states false in
    (* [parent.(s)] records the transition index that first reached [s]. *)
    let parent = Array.make t.num_states (-1) in
    let queue = Queue.create () in
    visited.(t.initial) <- true;
    Queue.add t.initial queue;
    let found = ref (-1) in
    (try
       while not (Queue.is_empty queue) do
         let s = Queue.pop queue in
         List.iter
           (fun i ->
             let _, _, s' = t.trans.(i) in
             if not visited.(s') then begin
               visited.(s') <- true;
               parent.(s') <- i;
               if goal s' then begin
                 found := s';
                 raise Exit
               end;
               Queue.add s' queue
             end)
           t.succ.(s)
       done
     with Exit -> ());
    if !found < 0 then None
    else begin
      let rec build s acc =
        if s = t.initial then acc
        else
          let i = parent.(s) in
          let src, l, _ = t.trans.(i) in
          build src (l :: acc)
      in
      Some (build !found [])
    end
  end

let has_trace t ~eq word =
  let rec step states = function
    | [] -> states <> []
    | l :: rest ->
        let next =
          List.concat_map
            (fun s ->
              List.filter_map
                (fun (l', s') -> if eq l l' then Some s' else None)
                (successors t s))
            states
        in
        let next = List.sort_uniq compare next in
        next <> [] && step next rest
  in
  step [ t.initial ] word

let pp_stats ppf t =
  Format.fprintf ppf "%d states, %d transitions, %d deadlocks" t.num_states
    (num_transitions t)
    (List.length (deadlocks t))
