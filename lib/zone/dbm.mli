(** Difference Bound Matrices over integer constants.

    A DBM of dimension [dim] represents a convex set of clock
    valuations (a {e zone}) as a flat [dim * dim] int array: entry
    [(i, j)] is an upper bound on [x_i - x_j], where clock index [0] is
    the constant reference clock (always 0) and indices [1 .. dim-1]
    are the real clocks.  Bounds carry a strictness bit in the low bit
    of the encoding: [(v, <=)] is [2v + 1], [(v, <)] is [2v], and
    [infinity] is {!inf}.  Encoded bounds compare with plain integer
    [<], and {!badd} adds them (strict wins).

    All operations except {!close} expect their input {e closed}
    (canonical: every entry is the tightest bound implied by the
    others, as computed by Floyd–Warshall) and preserve closure, with
    the exception of {!extrapolate_lu}, which re-closes internally.
    Emptiness surfaces as a [false] return from the tightening
    operations; an empty DBM must be discarded, not reused. *)

type t = int array

val inf : int
(** The encoded bound "no constraint". *)

val bnd : int -> strict:bool -> int
(** [bnd v ~strict] encodes the bound [(v, <)] or [(v, <=)]. *)

val value : int -> int
(** The constant of a finite encoded bound. *)

val is_strict : int -> bool

val badd : int -> int -> int
(** Bound addition: [(v1 + v2)], strict if either side is strict;
    absorbs {!inf}. *)

val zero : dim:int -> t
(** The zone where every clock equals 0 (closed). *)

val copy : t -> t

val close : dim:int -> t -> bool
(** Floyd–Warshall canonicalisation in place.  Returns [false] when
    the zone is empty (a negative cycle was found). *)

val constrain : dim:int -> t -> int -> int -> int -> bool
(** [constrain ~dim m i j b] adds the constraint [x_i - x_j <= b] (an
    encoded bound) to a closed DBM, re-canonicalising incrementally in
    O(dim^2).  Returns [false] when the zone becomes empty. *)

val up : dim:int -> t -> unit
(** Delay closure: remove the upper bounds of all clocks (future
    operator).  Preserves closure. *)

val reset : dim:int -> t -> int -> unit
(** [reset ~dim m i] sets clock [i] to 0.  Preserves closure. *)

val intersect : dim:int -> t -> t -> bool
(** [intersect ~dim m other] conjoins [other] into [m] (entrywise min,
    then a full {!close}).  Returns [false] when empty. *)

val includes : dim:int -> t -> t -> bool
(** [includes ~dim big small]: does [big] contain [small]?  Entrywise
    comparison — exact on closed DBMs. *)

val clock_lo : dim:int -> t -> int -> int
(** Smallest {e integer} value clock [i] takes in the zone (0 when the
    zone only constrains it from above). *)

val clock_hi : dim:int -> t -> int -> int option
(** Largest integer value of clock [i], or [None] when unbounded. *)

val extrapolate_lu : dim:int -> t -> l:int array -> u:int array -> unit
(** Extra_LU extrapolation (Behrmann–Bouyer–Larsen–Pelánek): abstract
    the closed DBM using per-clock lower/upper guard bounds [l.(i)] /
    [u.(i)] (indexed by DBM clock index; [-1] means the model never
    compares the clock that way).  Sound for location reachability of
    diagonal-free automata only.  Re-closes internally; the result is
    closed and non-empty whenever the input was. *)

val equal : t -> t -> bool
val hash : t -> int

val pp : dim:int -> names:string array -> Format.formatter -> t -> unit
(** Render the non-trivial constraints ([names.(i)] labels clock [i];
    [names.(0)] is ignored). *)
