(** Symbolic (dense-time) semantics of timed-automata networks over
    DBM zones.

    A symbolic state pairs the {e discrete part} of a configuration —
    the location vector and variable values, laid out exactly like
    {!Ta.Semantics}'s cell array with every clock cell zeroed — with a
    canonical DBM over the network's clocks.  Reusing the discrete
    layout means state predicates written against
    {!Ta.Semantics.config} observations ([loc_is], [var], [elem])
    apply unchanged to symbolic states via {!Ta.Semantics.of_cells}.

    Successor states follow the standard zone-graph construction: for
    each macro transition (internal edge, binary handshake, broadcast)
    whose data guard holds, conjoin the clock guard atoms, apply the
    resets and variable updates in order, conjoin the target
    invariants, delay ([up], unless a target location is urgent or
    committed), re-conjoin the invariants, zero the Daws–Yovine
    inactive clocks, and apply Extra_LU extrapolation with static
    per-clock bounds derived from the model by interval analysis.
    Each zone is closed and non-empty by construction, so a state is a
    canonical representative of its region set and states compare by
    plain structural equality (or, better, by zone inclusion — see
    {!Reach}).

    Supported constraint language: conjunctions of clock-free boolean
    expressions and atomic comparisons [c ~ e] between one clock and a
    clock-free integer expression ([~] any of [< <= == >= >]).
    Diagonal constraints ([c - d ~ e]), clocks under disjunction or
    [!=], and clocks inside arithmetic raise {!Unsupported} — Extra_LU
    is only sound for diagonal-free automata, and the rest would need
    zone splitting.  Clock {e reads} in update right-hand sides are
    supported exactly by finite case-split on the integer value read
    (saturated at the clock's declared cap, mirroring the discrete
    semantics' saturation).  Receivers on broadcast channels must have
    data-only guards (the UPPAAL restriction): participation is then a
    function of the discrete part alone. *)

exception Unsupported of string
(** Raised by {!compile} on constraints outside the supported
    fragment; the message names the offending automaton/edge. *)

type t
(** A compiled symbolic network. *)

type state = { disc : int array; dbm : Dbm.t }
(** [disc] is a {!Ta.Semantics} cell array with clock cells zeroed;
    [dbm] is closed, non-empty and extrapolated.  Treat both as
    immutable. *)

type lu = Global | Location
(** Extrapolation mode.  [Global]: one static L/U pair per clock (the
    maxima over the whole model).  [Location]: per-state bounds from
    {!Lubounds}' backward fixpoint, composed as the maximum over the
    current location vector, with Daws–Yovine inactive clocks dropped
    to [L = U = -1].  Verdict-preserving either way (both are sound
    Extra+LU abstractions of the same zone graph); [Location] never
    stores more zones and typically far fewer. *)

val compile : ?lu:lu -> Ta.Model.t -> t
(** Compile a network for zone exploration.  [lu] defaults to
    [Global].
    @raise Unsupported on constraints outside the zone fragment.
    @raise Invalid_argument on the errors {!Ta.Semantics.compile}
    rejects (unknown names, initial invariant violation). *)

val net : t -> Ta.Semantics.t
(** The underlying discrete compilation (same layout). *)

val dim : t -> int
(** DBM dimension: number of clocks + 1. *)

val initial : t -> state

val successors : t -> state -> (Ta.Semantics.label * state) list
(** Labels are always [Act _] (time is inside the zones); the label
    strings coincide with the discrete semantics' labels, so a
    symbolic trace is a candidate discrete trace modulo delays. *)

val system : t -> (state, Ta.Semantics.label) Mc.System.t
(** Package for the generic explorers ({!Mc.Explore},
    {!Mc.Pexplore}). *)

val bad_of : t -> (Ta.Semantics.config -> bool) -> state -> bool
(** Lift a discrete state predicate (built from clock-free
    observations) to symbolic states. *)

val lu_bounds : t -> (string * int * int) list
(** Per clock: name, largest lower-bound constant L, largest
    upper-bound constant U — the global maxima, i.e. what [Global]
    mode extrapolates with ([-1] = the model never compares the clock
    that way).  For the per-location tables see {!lu_tables}. *)

val lu_mode : t -> lu
(** The extrapolation mode this network was compiled with. *)

val lu_tables : t -> (string * (string * (string * int * int) list) list) list
(** The per-location bound tables behind [Location] mode, computed in
    both modes: every automaton (model order) with every location
    (model order) and every clock (declaration order) as
    [(clock, L, U)].  Each entry never exceeds the {!lu_bounds}
    global pair for its clock. *)

val subsumes : t -> state -> state -> bool
(** [subsumes t big small]: same discrete part and [big]'s zone
    includes [small]'s. *)

val pp_state : t -> Format.formatter -> state -> unit

(** {2 Lint support} *)

val diagnostics : Ta.Model.t -> Lint_report.diag list
(** The TA-ZONE lint section: errors for constraints outside the zone
    fragment (diagonal constraints, clocks under disjunction,
    non-integer clock comparisons, clock-guarded broadcast receivers)
    and info lines reporting the static LU bounds and update
    clock-read case splits.  A model with no TA-ZONE errors compiles
    with {!compile}. *)
