(** Zone-graph reachability with inclusion subsumption.

    A breadth-first explorer specialised to {!Sym} states: the passed
    list is keyed by the discrete part, and a freshly generated state
    is discarded when an already-stored state with the same discrete
    part has a zone that {e includes} the new one (every behaviour of
    the new state is a behaviour of the stored one, so nothing
    reachable is lost).  This is the classic waiting-list discipline
    that makes zone graphs finite {e and} small — plain equality
    ([subsume:false]) is exact too (Extra_LU already guarantees
    finiteness) but stores every distinct zone.

    Verdicts reuse {!Mc.Explore.verdict}, so callers
    ({!Heartbeat.Verify}) treat the two engines uniformly.  Goal states
    are detected on interning; because goal predicates observe only
    the discrete part, subsuming a state never hides a goal (the
    subsuming state has the same discrete part and was itself
    tested). *)

type stats = {
  mutable states : int;  (** stored (non-subsumed) states *)
  mutable transitions : int;  (** successor edges generated *)
  mutable subsumed : int;
      (** successors discarded by zone inclusion ([subsume:true]) or
          zone equality ([subsume:false]) against a stored state *)
}

val new_stats : unit -> stats

val find :
  ?max_states:int ->
  ?subsume:bool ->
  ?budget:Mc.Budget.t ->
  ?stats:stats ->
  Sym.t ->
  goal:(Sym.state -> bool) ->
  (Sym.state, Ta.Semantics.label) Mc.Explore.verdict
(** [find t ~goal] searches breadth-first for a goal state, returning a
    shortest (in macro steps) witness trace of [Act] labels.
    [subsume] defaults to [true]; [max_states] to
    {!Mc.Explore.default_max}.  The budget is polled once per expanded
    state; a trip yields [Exhausted] with exact coverage over the
    stored states.  Pass [stats] to observe the subsumption counters
    of the run. *)

val count :
  ?max_states:int ->
  ?subsume:bool ->
  ?budget:Mc.Budget.t ->
  ?stats:stats ->
  Sym.t ->
  int * bool
(** Stored-state count and completeness, mirroring {!Mc.Explore.count}. *)

val guided_replay :
  ('s, Ta.Semantics.label) Mc.System.t ->
  trace:Ta.Semantics.label list ->
  goal:('s -> bool) ->
  bool
(** [guided_replay sys ~trace ~goal]: does some run of [sys] traverse
    exactly the [Act] labels of [trace] (in order, with any number of
    [Delay] steps interleaved) and end in a state satisfying [goal]?
    Used to validate zone counterexamples against the discrete
    semantics: the zone engine abstracts delays away, so its traces
    are action sequences modulo time.  DFS with a per-position visited
    set; terminates on any finite-state system. *)
