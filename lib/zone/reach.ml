(* Subsumption-aware BFS over the zone graph.  The structure mirrors
   Mc.Explore.find; the difference is the passed store, which is keyed
   by the discrete part with a list of (zone, node id) per key so that
   inclusion checks only scan zones of the same locations and
   variables. *)

module S = Ta.Semantics

type stats = {
  mutable states : int;
  mutable transitions : int;
  mutable subsumed : int;
}

let new_stats () = { states = 0; transitions = 0; subsumed = 0 }

module DiscTbl = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash (a : int array) =
    let h = ref 0x811c9dc5 in
    Array.iter (fun x -> h := (!h lxor x) * 0x01000193 land max_int) a;
    !h
end)

type node = { n_st : Sym.state; n_parent : int; n_via : string }

(* minimal growable array (OCaml 5.1 has no Dynarray yet) *)
type vec = { mutable arr : node array; mutable len : int }

let vec_add v x =
  if v.len = Array.length v.arr then begin
    let cap = max 1024 (2 * Array.length v.arr) in
    let b = Array.make cap x in
    Array.blit v.arr 0 b 0 v.len;
    v.arr <- b
  end;
  v.arr.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let trace_to (v : vec) id =
  let rec go id acc =
    if id < 0 then acc
    else
      let n = v.arr.(id) in
      if n.n_parent < 0 then acc else go n.n_parent (S.Act n.n_via :: acc)
  in
  go id []

let find ?(max_states = Mc.Explore.default_max) ?(subsume = true) ?budget
    ?stats (t : Sym.t) ~goal :
    (Sym.state, S.label) Mc.Explore.verdict =
  let stats = match stats with Some s -> s | None -> new_stats () in
  let dim = Sym.dim t in
  let passed : (Dbm.t * int) list ref DiscTbl.t = DiscTbl.create 4096 in
  let nodes = { arr = [||]; len = 0 } in
  let q = Queue.create () in
  let goal_hit = ref (-1) in
  let truncated = ref false in
  let intern parent via (s : Sym.state) =
    let bucket =
      match DiscTbl.find_opt passed s.Sym.disc with
      | Some b -> b
      | None ->
          let b = ref [] in
          DiscTbl.add passed s.Sym.disc b;
          b
    in
    let covered =
      if subsume then
        List.exists (fun (z, _) -> Dbm.includes ~dim z s.Sym.dbm) !bucket
      else List.exists (fun (z, _) -> Dbm.equal z s.Sym.dbm) !bucket
    in
    if covered then stats.subsumed <- stats.subsumed + 1
    else if nodes.len >= max_states then truncated := true
    else begin
      let id = vec_add nodes { n_st = s; n_parent = parent; n_via = via } in
      bucket := (s.Sym.dbm, id) :: !bucket;
      stats.states <- stats.states + 1;
      if !goal_hit < 0 && goal s then goal_hit := id;
      Queue.add id q
    end
  in
  intern (-1) "" (Sym.initial t);
  let budget_reason = ref None in
  while
    !goal_hit < 0 && !budget_reason = None && not (Queue.is_empty q)
  do
    (match budget with
    | Some b -> budget_reason := Mc.Budget.check b
    | None -> ());
    if !budget_reason = None then begin
      let id = Queue.pop q in
      List.iter
        (fun (l, s') ->
          stats.transitions <- stats.transitions + 1;
          match l with
          | S.Act via -> if !goal_hit < 0 then intern id via s'
          | S.Delay -> assert false (* zone successors are actions *))
        (Sym.successors t nodes.arr.(id).n_st)
    end
  done;
  if !goal_hit >= 0 then
    Mc.Explore.Reached
      {
        trace = trace_to nodes !goal_hit;
        state = nodes.arr.(!goal_hit).n_st;
      }
  else
    match !budget_reason with
    | Some reason ->
        Mc.Explore.Exhausted
          {
            reason;
            states_so_far = stats.states;
            coverage =
              Mc.Store.coverage_of ~mode:Mc.Store.Exact ~stored:stats.states;
          }
    | None ->
        if !truncated then Mc.Explore.Bound_hit stats.states
        else Mc.Explore.Unreachable

let count ?max_states ?subsume ?budget ?stats t =
  let stats = match stats with Some s -> s | None -> new_stats () in
  match find ?max_states ?subsume ?budget ~stats t ~goal:(fun _ -> false) with
  | Mc.Explore.Unreachable -> (stats.states, true)
  | Mc.Explore.Bound_hit n -> (n, false)
  | Mc.Explore.Exhausted e -> (e.Mc.Explore.states_so_far, false)
  | Mc.Explore.Reached _ -> assert false (* the goal is never satisfied *)

let guided_replay (type s) (sys : (s, S.label) Mc.System.t) ~trace ~goal =
  let module Sys = (val sys) in
  let module H = Hashtbl.Make (struct
    type t = Sys.state

    let equal = Sys.equal_state
    let hash = Sys.hash_state
  end) in
  let acts =
    trace
    |> List.filter_map (function S.Act a -> Some a | S.Delay -> None)
    |> Array.of_list
  in
  let len = Array.length acts in
  let visited = Array.init (len + 1) (fun _ -> H.create 64) in
  let rec dfs s pos =
    if H.mem visited.(pos) s then false
    else begin
      H.add visited.(pos) s ();
      if pos = len then goal s
      else
        List.exists
          (fun (l, s') ->
            match l with
            | S.Delay -> dfs s' pos
            | S.Act a -> String.equal a acts.(pos) && dfs s' (pos + 1))
          (Sys.successors s)
    end
  in
  dfs Sys.initial 0
