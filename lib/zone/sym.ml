(* Zone-graph semantics: Ta.Model compiled to a successor relation over
   (discrete part, canonical DBM) pairs.

   The discrete part reuses Ta.Semantics' cell layout (locations,
   zeroed clock cells, variables), so the data fragments of guards,
   invariants and updates are compiled by the discrete compiler itself
   — the two engines cannot drift apart on data semantics.  Only the
   clock fragments get a second, symbolic compilation: conjunctions of
   atoms [c ~ e] with clock-free [e], applied to the DBM as row/column
   constraints whose bound is evaluated against the current discrete
   part.

   Clock reads in update right-hand sides (the heartbeat models'
   [spent := d0]) are handled by finite case-split: the successor
   forks one branch per integer value the clock can take in the
   current zone, saturated at the clock's declared cap.  The branch
   for [v < cap] constrains [c == v]; the branch for [cap] constrains
   [c >= cap] and reads [cap] — exactly the discrete semantics'
   saturation, which is what makes discrete and zone verdicts agree on
   closed models (see test/test_zone.ml).

   Extrapolation is Extra_LU in one of two modes.  [Global] (the
   PR 9 behaviour): one static L/U pair per clock, obtained by
   interval analysis of every bound expression (Lint_ta's fixpoint);
   clocks read by updates are pinned to L = U = cap since a read
   observes the exact value up to the cap.  [Location]: per-state
   bounds looked up from the discrete part — Lubounds' backward
   fixpoint gives per-(automaton, location, clock) constants, composed
   at extrapolation time as the maximum over the current location
   vector (sound for the product; see lib/lubounds), with the
   Daws-Yovine inactive clocks dropped to the L = U = -1 degenerate
   case on top of the existing reset-to-zero. *)

module E = Ta.Expr
module M = Ta.Model
module S = Ta.Semantics
module I = Lint_interval
module SMap = Map.Make (String)

exception Unsupported of string

(* Internal: a constraint outside the zone fragment, as (code, reason)
   — the lint section turns these into TA-ZONE-* diagnostics, compile
   into {!Unsupported}. *)
exception Frag of string * string

(* --- the supported constraint fragment, at the AST level ------------ *)

type aatom = {
  aa_clock : string;
  aa_lower : bool; (* lower bound: c >(=) e; else c <(=) e *)
  aa_strict : bool;
  aa_expr : E.t;
}

let rec expr_has_clock = function
  | E.Int _ | E.Var _ -> false
  | E.Clock _ -> true
  | E.Elem (_, i) -> expr_has_clock i
  | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
  | E.Min (a, b) | E.Max (a, b) ->
      expr_has_clock a || expr_has_clock b

let rec bexpr_has_clock = function
  | E.True | E.False -> false
  | E.Cmp (_, a, b) -> expr_has_clock a || expr_has_clock b
  | E.Not b -> bexpr_has_clock b
  | E.And (a, b) | E.Or (a, b) -> bexpr_has_clock a || bexpr_has_clock b

let negate_cmp = function
  | E.Lt -> E.Ge
  | E.Le -> E.Gt
  | E.Eq -> E.Ne
  | E.Ne -> E.Eq
  | E.Ge -> E.Lt
  | E.Gt -> E.Le

let rec negate = function
  | E.True -> E.False
  | E.False -> E.True
  | E.Cmp (cmp, a, b) -> E.Cmp (negate_cmp cmp, a, b)
  | E.Not b -> b
  | E.And (a, b) -> E.Or (negate a, negate b)
  | E.Or (a, b) -> E.And (negate a, negate b)

let flip_cmp = function
  | E.Lt -> E.Gt
  | E.Le -> E.Ge
  | E.Gt -> E.Lt
  | E.Ge -> E.Le
  | (E.Eq | E.Ne) as c -> c

let atoms_of_cmp cmp c e =
  let atom lower strict =
    { aa_clock = c; aa_lower = lower; aa_strict = strict; aa_expr = e }
  in
  match cmp with
  | E.Lt -> [ atom false true ]
  | E.Le -> [ atom false false ]
  | E.Gt -> [ atom true true ]
  | E.Ge -> [ atom true false ]
  | E.Eq -> [ atom false false; atom true false ]
  | E.Ne ->
      raise (Frag ("TA-ZONE-CONVEX", "clock disequality (!=) is not convex"))

(* Split a guard/invariant into clock-free conjuncts plus clock atoms.
   Negation is pushed inward first, so [!(c > 3)] is fine; a clock
   under a disjunction, a diagonal [c - d ~ e], or a clock inside
   arithmetic is outside the fragment. *)
let split (b : E.b) : E.b list * aatom list =
  let rec go b ((data, atoms) as acc) =
    if not (bexpr_has_clock b) then (b :: data, atoms)
    else
      match b with
      | E.And (x, y) -> go y (go x acc)
      | E.Cmp (cmp, E.Clock c, e) when not (expr_has_clock e) ->
          (data, atoms_of_cmp cmp c e @ atoms)
      | E.Cmp (cmp, e, E.Clock c) when not (expr_has_clock e) ->
          (data, atoms_of_cmp (flip_cmp cmp) c e @ atoms)
      | E.Cmp (_, a, b) ->
          if
            (match a with E.Clock _ -> true | _ -> false)
            && match b with E.Clock _ -> true | _ -> false
          then
            raise
              (Frag
                 ( "TA-ZONE-DIAGONAL",
                   "diagonal clock constraint (Extra_LU is only sound \
                    diagonal-free)" ))
          else raise (Frag ("TA-ZONE-ARITH", "clock inside arithmetic"))
      | E.Not inner -> go (negate inner) acc
      | E.Or _ ->
          raise
            (Frag ("TA-ZONE-CONVEX", "clock constraint under disjunction"))
      | E.True | E.False -> (b :: data, atoms)
  in
  let data, atoms = go b ([], []) in
  (List.rev data, List.rev atoms)

(* --- static analysis: fragment check, LU bounds, update reads ------- *)

type analysis = {
  an_errors : (string * string * string) list; (* where, code, reason *)
  an_bcast_bad : string list; (* broadcast receivers with clock guards *)
  an_nonint : (string * string) list; (* where, clock: Div in bound expr *)
  an_reads : (string * string list) list; (* edge, clocks read pre-reset *)
  an_l : int SMap.t; (* largest lower-bound constant per clock *)
  an_u : int SMap.t;
  an_fallback : (string * string) list; (* where, clock: cap fallback *)
}

let rec clocks_of acc = function
  | E.Int _ | E.Var _ -> acc
  | E.Clock c -> if List.mem c acc then acc else c :: acc
  | E.Elem (_, i) -> clocks_of acc i
  | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
  | E.Min (a, b) | E.Max (a, b) ->
      clocks_of (clocks_of acc a) b

let rec has_div = function
  | E.Int _ | E.Var _ | E.Clock _ -> false
  | E.Elem (_, i) -> has_div i
  | E.Div _ -> true
  | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Min (a, b) | E.Max (a, b)
    ->
      has_div a || has_div b

(* Clocks an update sequence reads before (or without) resetting them:
   exactly the reads the zone successor must case-split on. *)
let update_reads (updates : M.update list) : string list =
  let reset = ref [] and reads = ref [] in
  List.iter
    (fun (u : M.update) ->
      match u with
      | M.Reset c -> if not (List.mem c !reset) then reset := c :: !reset
      | M.Assign (lhs, rhs) ->
          let exprs =
            rhs :: (match lhs with M.Element (_, i) -> [ i ] | M.Scalar _ -> [])
          in
          List.iter
            (fun e ->
              List.iter
                (fun c ->
                  if not (List.mem c !reset) && not (List.mem c !reads) then
                    reads := c :: !reads)
                (clocks_of [] e))
            exprs)
    updates;
  List.rev !reads

let analyze_model (m : M.t) : analysis =
  let _, globals = Lint_ta.intervals_of m in
  let caps =
    List.fold_left
      (fun acc (c : M.clock_decl) -> SMap.add c.M.clock_name c.M.cap acc)
      SMap.empty m.M.clocks
  in
  let cap_of c = Option.value (SMap.find_opt c caps) ~default:0 in
  let broadcast =
    List.filter_map
      (fun (c : M.chan_decl) ->
        if c.M.broadcast then Some c.M.chan_name else None)
      m.M.chans
  in
  let errors = ref []
  and bcast = ref []
  and nonint = ref []
  and reads = ref []
  and fallback = ref [] in
  let lb = ref SMap.empty and ub = ref SMap.empty in
  let bump tbl c v =
    tbl :=
      SMap.update c
        (function None -> Some v | Some w -> Some (max w v))
        !tbl
  in
  (* Static supremum of a bound expression over all reachable variable
     values, by interval evaluation against the lint fixpoint. *)
  let rec sup_itv (e : E.t) : I.t =
    match e with
    | E.Int n -> I.const n
    | E.Var x | E.Elem (x, _) -> (
        match SMap.find_opt (Lint_ta.vkey x) globals with
        | Some iv -> iv
        | None -> I.top)
    | E.Clock _ -> I.top (* rejected by [split]; never reached *)
    | E.Add (a, b) -> I.add (sup_itv a) (sup_itv b)
    | E.Sub (a, b) -> I.sub (sup_itv a) (sup_itv b)
    | E.Mul (a, b) -> I.mul (sup_itv a) (sup_itv b)
    | E.Div (a, b) -> I.div (sup_itv a) (sup_itv b)
    | E.Min (a, b) -> I.min_ (sup_itv a) (sup_itv b)
    | E.Max (a, b) -> I.max_ (sup_itv a) (sup_itv b)
  in
  let record_atoms where (atoms : aatom list) =
    List.iter
      (fun a ->
        if has_div a.aa_expr then nonint := (where, a.aa_clock) :: !nonint;
        let sup = (sup_itv a.aa_expr).I.hi in
        let sup =
          if sup = I.pos_inf then begin
            fallback := (where, a.aa_clock) :: !fallback;
            cap_of a.aa_clock
          end
          else sup
        in
        (* A negative bound is trivially true (lower) or empties the
           zone outright (upper); either way it never needs to survive
           extrapolation. *)
        if sup >= 0 then bump (if a.aa_lower then lb else ub) a.aa_clock sup)
      atoms
  in
  let do_guard where b =
    match split b with
    | _, atoms ->
        record_atoms where atoms;
        atoms
    | exception Frag (code, reason) ->
        errors := (where, code, reason) :: !errors;
        []
  in
  List.iter
    (fun (a : M.automaton) ->
      List.iter
        (fun (l : M.location) ->
          let where =
            Printf.sprintf "%s.%s invariant" a.M.auto_name l.M.loc_name
          in
          ignore (do_guard where l.M.invariant : aatom list))
        a.M.locations;
      List.iter
        (fun (e : M.edge) ->
          let where =
            Printf.sprintf "%s: %s -> %s" a.M.auto_name e.M.src e.M.dst
          in
          let atoms = do_guard where e.M.guard in
          (match e.M.sync with
          | M.Recv ch when List.mem ch broadcast && atoms <> [] ->
              bcast := where :: !bcast
          | _ -> ());
          let rds = update_reads e.M.updates in
          if rds <> [] then begin
            reads := (where, rds) :: !reads;
            (* a read observes the exact value up to the cap *)
            List.iter
              (fun c ->
                bump lb c (cap_of c);
                bump ub c (cap_of c))
              rds
          end)
        a.M.edges)
    m.M.automata;
  {
    an_errors = List.rev !errors;
    an_bcast_bad = List.rev !bcast;
    an_nonint = List.rev !nonint;
    an_reads = List.rev !reads;
    an_l = !lb;
    an_u = !ub;
    an_fallback = List.rev !fallback;
  }

(* --- compiled form -------------------------------------------------- *)

type atom = {
  at_i : int; (* DBM clock index *)
  at_lower : bool;
  at_strict : bool;
  at_bound : int array -> int; (* evaluated on the discrete part *)
}

type zupd =
  | U_reset of int (* DBM clock index *)
  | U_assign of (int array -> (int -> int) -> unit) * int list
      (* the closure takes the discrete part and a clock valuation
         (by DBM index); the list is the clocks the RHS reads *)

type zedge = {
  ze_data : int array -> bool;
  ze_atoms : atom list;
  ze_updates : zupd list;
  ze_dst : int;
  ze_label : string;
}

type zloc = {
  zl_kind : M.loc_kind;
  zl_inv_data : int array -> bool;
  zl_inv_atoms : atom list;
  zl_tau : zedge list;
  zl_send : zedge list array;
  zl_recv : zedge list array;
}

type lu = Global | Location

type t = {
  znet : S.t;
  zn : int; (* automata *)
  zdim : int; (* clocks + 1 *)
  zautos : zloc array array;
  zchans : M.chan_decl array;
  zcaps : int array; (* by DBM index; zcaps.(0) unused *)
  zlu_l : int array;
  zlu_u : int array;
  zlu : lu;
  zloc_l : int array array array; (* auto -> loc -> DBM index -> L *)
  zloc_u : int array array array;
  zscr_l : int array; (* scratch per-state composition buffers: the *)
  zscr_u : int array; (* engine is sequential, settle owns them *)
  zinactive : int array array array; (* auto -> loc -> DBM indices *)
  zclock_names : string array; (* by DBM index *)
}

type state = { disc : int array; dbm : Dbm.t }

(* --- compilation ---------------------------------------------------- *)

(* Expression compilation in the presence of clock reads: clock-free
   subtrees go through the discrete compiler (identical data
   semantics); a clock leaf consults the valuation chosen by the
   successor's case split. *)
let rec comp_e net cidx (e : E.t) :
    (int array -> (int -> int) -> int) * int list =
  if not (expr_has_clock e) then begin
    let f = S.compile_expr_fn net e in
    ((fun d _ -> f (S.of_cells d)), [])
  end
  else
    let bin op a b =
      let fa, ra = comp_e net cidx a in
      let fb, rb = comp_e net cidx b in
      ((fun d v -> op (fa d v) (fb d v)), ra @ rb)
    in
    match e with
    | E.Clock c ->
        let k = cidx c in
        ((fun _ v -> v k), [ k ])
    | E.Elem (x, idx) ->
        let off, size = S.lookup_var net x in
        let fi, ri = comp_e net cidx idx in
        ( (fun d v ->
            let k = fi d v in
            if k < 0 || k >= size then
              invalid_arg
                (Printf.sprintf "index %d out of bounds for %s" k x);
            d.(off + k)),
          ri )
    | E.Add (a, b) -> bin ( + ) a b
    | E.Sub (a, b) -> bin ( - ) a b
    | E.Mul (a, b) -> bin ( * ) a b
    | E.Div (a, b) -> bin ( / ) a b
    | E.Min (a, b) -> bin min a b
    | E.Max (a, b) -> bin max a b
    | E.Int _ | E.Var _ -> assert false (* clock-free *)

let comp_update net cidx (u : M.update) : zupd =
  match u with
  | M.Reset c -> U_reset (cidx c)
  | M.Assign (M.Scalar x, rhs) ->
      let off, size = S.lookup_var net x in
      if size <> 1 then
        invalid_arg (Printf.sprintf "assignment to array %s without index" x);
      let fr, reads = comp_e net cidx rhs in
      U_assign ((fun d v -> d.(off) <- fr d v), reads)
  | M.Assign (M.Element (x, idx), rhs) ->
      let off, size = S.lookup_var net x in
      let fi, ri = comp_e net cidx idx in
      let fr, rr = comp_e net cidx rhs in
      U_assign
        ( (fun d v ->
            let k = fi d v in
            if k < 0 || k >= size then
              invalid_arg
                (Printf.sprintf "index %d out of bounds for %s" k x);
            d.(off + k) <- fr d v),
          ri @ rr )

let comp_guard net cidx ~where (b : E.b) : (int array -> bool) * atom list =
  match split b with
  | data, aatoms ->
      let fns = List.map (S.compile_bexpr_fn net) data in
      let data_fn d = List.for_all (fun f -> f (S.of_cells d)) fns in
      let atoms =
        List.map
          (fun (a : aatom) ->
            let f = S.compile_expr_fn net a.aa_expr in
            {
              at_i = cidx a.aa_clock;
              at_lower = a.aa_lower;
              at_strict = a.aa_strict;
              at_bound = (fun d -> f (S.of_cells d));
            })
          aatoms
      in
      (data_fn, atoms)
  | exception Frag (_, reason) ->
      raise (Unsupported (where ^ ": " ^ reason))

let compile ?(lu = Global) (model : M.t) : t =
  (* Reject the whole model up front if any constraint is outside the
     fragment, with a located message. *)
  let an = analyze_model model in
  (match an.an_errors with
  | (where, _, reason) :: _ -> raise (Unsupported (where ^ ": " ^ reason))
  | [] -> ());
  (match an.an_bcast_bad with
  | where :: _ ->
      raise
        (Unsupported
           (where
          ^ ": broadcast receiver with a clock guard (participation must \
             be a function of the discrete part)"))
  | [] -> ());
  let net = S.compile model in
  let nclocks = S.num_clocks net in
  let dim = nclocks + 1 in
  let coff = S.clock_offset net in
  let cidx name = S.lookup_clock net name - coff + 1 in
  let zcaps = Array.make dim 0 in
  Array.iteri (fun k cap -> zcaps.(k + 1) <- cap) (S.clock_caps net);
  let zclock_names = Array.make dim "0" in
  List.iteri
    (fun k (c : M.clock_decl) -> zclock_names.(k + 1) <- c.M.clock_name)
    model.M.clocks;
  let zlu_l = Array.make dim (-1) and zlu_u = Array.make dim (-1) in
  for k = 1 to dim - 1 do
    let name = zclock_names.(k) in
    zlu_l.(k) <- Option.value (SMap.find_opt name an.an_l) ~default:(-1);
    zlu_u.(k) <- Option.value (SMap.find_opt name an.an_u) ~default:(-1)
  done;
  let zchans = Array.of_list model.M.chans in
  let num_chans = Array.length zchans in
  let chan_id = Hashtbl.create 8 in
  Array.iteri (fun k (c : M.chan_decl) -> Hashtbl.replace chan_id c.M.chan_name k) zchans;
  let compile_auto ia (a : M.automaton) =
    let zlocs =
      Array.of_list
        (List.map
           (fun (l : M.location) ->
             let where =
               Printf.sprintf "%s.%s invariant" a.M.auto_name l.M.loc_name
             in
             let inv_data, inv_atoms =
               comp_guard net cidx ~where l.M.invariant
             in
             {
               zl_kind = l.M.kind;
               zl_inv_data = inv_data;
               zl_inv_atoms = inv_atoms;
               zl_tau = [];
               zl_send = Array.make num_chans [];
               zl_recv = Array.make num_chans [];
             })
           a.M.locations)
    in
    (* the per-location sync arrays above are shared between nothing —
       each List.map step allocates fresh ones *)
    List.iter
      (fun (e : M.edge) ->
        let src = S.loc_index net ~auto:ia e.M.src in
        let dst = S.loc_index net ~auto:ia e.M.dst in
        let where =
          Printf.sprintf "%s: %s -> %s" a.M.auto_name e.M.src e.M.dst
        in
        let data, atoms = comp_guard net cidx ~where e.M.guard in
        let default_label =
          match e.M.sync with
          | M.Tau -> "tau"
          | M.Send ch -> ch ^ "!"
          | M.Recv ch -> ch ^ "?"
        in
        let ze =
          {
            ze_data = data;
            ze_atoms = atoms;
            ze_updates = List.map (comp_update net cidx) e.M.updates;
            ze_dst = dst;
            ze_label = Option.value e.M.act ~default:default_label;
          }
        in
        let l = zlocs.(src) in
        match e.M.sync with
        | M.Tau -> zlocs.(src) <- { l with zl_tau = l.zl_tau @ [ ze ] }
        | M.Send ch ->
            let k = Hashtbl.find chan_id ch in
            l.zl_send.(k) <- l.zl_send.(k) @ [ ze ]
        | M.Recv ch ->
            let k = Hashtbl.find chan_id ch in
            l.zl_recv.(k) <- l.zl_recv.(k) @ [ ze ])
      a.M.edges;
    zlocs
  in
  let zautos = Array.of_list (List.mapi compile_auto model.M.automata) in
  let zn = Array.length zautos in
  let zinactive =
    let tbl =
      Array.init zn (fun ia -> Array.make (Array.length zautos.(ia)) [||])
    in
    let auto_id = Hashtbl.create 8 in
    List.iteri
      (fun ia (a : M.automaton) -> Hashtbl.replace auto_id a.M.auto_name ia)
      model.M.automata;
    List.iter
      (fun (auto, per_loc) ->
        let ia = Hashtbl.find auto_id auto in
        List.iter
          (fun (loc, clocks) ->
            let k = S.loc_index net ~auto:ia loc in
            tbl.(ia).(k) <- Array.of_list (List.map cidx clocks))
          per_loc)
      (Slice_ta.clock_activity model);
    tbl
  in
  (* Per-(automaton, location) LU arrays by DBM index, from the
     backward fixpoint.  Built in both modes (they also feed the
     lu_tables reporting API); only Location-mode settle consults
     them.  Location order matches zautos: both come from the model's
     location lists via S.loc_index. *)
  let lub = Lubounds.analyze_cached model in
  let loc_tbl select =
    Array.of_list
      (List.mapi
         (fun ia (a : M.automaton) ->
           let arr = Array.make (Array.length zautos.(ia)) [||] in
           List.iter
             (fun (l : M.location) ->
               let li = S.loc_index net ~auto:ia l.M.loc_name in
               let row = Array.make dim (-1) in
               for k = 1 to dim - 1 do
                 row.(k) <-
                   select
                     (Lubounds.bounds lub ~auto:a.M.auto_name
                        ~loc:l.M.loc_name ~clock:zclock_names.(k))
               done;
               arr.(li) <- row)
             a.M.locations;
           arr)
         model.M.automata)
  in
  {
    znet = net;
    zn;
    zdim = dim;
    zautos;
    zchans;
    zcaps;
    zlu_l;
    zlu_u;
    zlu = lu;
    zloc_l = loc_tbl fst;
    zloc_u = loc_tbl snd;
    zscr_l = Array.make dim (-1);
    zscr_u = Array.make dim (-1);
    zinactive;
    zclock_names;
  }

let net t = t.znet
let dim t = t.zdim

let lu_bounds t =
  List.init (t.zdim - 1) (fun k ->
      (t.zclock_names.(k + 1), t.zlu_l.(k + 1), t.zlu_u.(k + 1)))

let lu_mode t = t.zlu

let lu_tables t =
  List.init t.zn (fun i ->
      ( S.auto_name_at t.znet i,
        List.init
          (Array.length t.zautos.(i))
          (fun k ->
            ( S.loc_name_at t.znet i k,
              List.init (t.zdim - 1) (fun j ->
                  ( t.zclock_names.(j + 1),
                    t.zloc_l.(i).(k).(j + 1),
                    t.zloc_u.(i).(k).(j + 1) )) )) ))

(* --- successor relation --------------------------------------------- *)

let constrain_atom t z (a : atom) disc =
  let b = a.at_bound disc in
  if a.at_lower then
    Dbm.constrain ~dim:t.zdim z 0 a.at_i (Dbm.bnd (-b) ~strict:a.at_strict)
  else Dbm.constrain ~dim:t.zdim z a.at_i 0 (Dbm.bnd b ~strict:a.at_strict)

(* Post-transition pipeline: target invariants, delay (unless a target
   location is urgent or committed), invariants again, inactive-clock
   zeroing, Extra_LU.  [z] is owned by the caller and consumed. *)
let settle t disc z : state option =
  let ok = ref true in
  for i = 0 to t.zn - 1 do
    if !ok then begin
      let l = t.zautos.(i).(disc.(i)) in
      if not (l.zl_inv_data disc) then ok := false
      else
        List.iter
          (fun a -> if !ok && not (constrain_atom t z a disc) then ok := false)
          l.zl_inv_atoms
    end
  done;
  if not !ok then None
  else begin
    let urgent = ref false in
    for i = 0 to t.zn - 1 do
      match t.zautos.(i).(disc.(i)).zl_kind with
      | M.Urgent | M.Committed -> urgent := true
      | M.Normal -> ()
    done;
    if not !urgent then begin
      Dbm.up ~dim:t.zdim z;
      (* re-imposing invariants on a superset of a zone that satisfied
         them cannot empty it *)
      for i = 0 to t.zn - 1 do
        List.iter
          (fun a -> ignore (constrain_atom t z a disc : bool))
          t.zautos.(i).(disc.(i)).zl_inv_atoms
      done
    end;
    for i = 0 to t.zn - 1 do
      Array.iter
        (fun k -> Dbm.reset ~dim:t.zdim z k)
        t.zinactive.(i).(disc.(i))
    done;
    (match t.zlu with
    | Global -> Dbm.extrapolate_lu ~dim:t.zdim z ~l:t.zlu_l ~u:t.zlu_u
    | Location ->
        (* compose the per-state bounds: max over the automata's
           current locations, then the Daws-Yovine degenerate case —
           an inactive clock (just reset to zero above) is never
           compared before its next reset, i.e. L = U = -1 *)
        let l = t.zscr_l and u = t.zscr_u in
        for k = 1 to t.zdim - 1 do
          l.(k) <- -1;
          u.(k) <- -1
        done;
        for i = 0 to t.zn - 1 do
          let bl = t.zloc_l.(i).(disc.(i)) and bu = t.zloc_u.(i).(disc.(i)) in
          for k = 1 to t.zdim - 1 do
            if bl.(k) > l.(k) then l.(k) <- bl.(k);
            if bu.(k) > u.(k) then u.(k) <- bu.(k)
          done
        done;
        for i = 0 to t.zn - 1 do
          Array.iter
            (fun k ->
              l.(k) <- -1;
              u.(k) <- -1)
            t.zinactive.(i).(disc.(i))
        done;
        Dbm.extrapolate_lu ~dim:t.zdim z ~l ~u);
    Some { disc; dbm = z }
  end

(* Case-split on the integer values of the clocks an update sequence
   reads: one branch per value in [lo .. min(hi, cap)], plus the
   saturation branch [c >= cap] reading [cap]. *)
let enumerate t z (reads : int list) : (Dbm.t * int array) list =
  match reads with
  | [] -> [ (z, [||]) ] (* the valuation is never consulted *)
  | _ ->
      let expand acc k =
        List.concat_map
          (fun (z, vals) ->
            let cap = t.zcaps.(k) in
            let lo = min (max 0 (Dbm.clock_lo ~dim:t.zdim z k)) cap in
            let hi =
              match Dbm.clock_hi ~dim:t.zdim z k with
              | None -> cap
              | Some h -> min h cap
            in
            let out = ref [] in
            for v = lo to hi do
              let z' = Dbm.copy z in
              let ok =
                if v < cap then
                  Dbm.constrain ~dim:t.zdim z' k 0 (Dbm.bnd v ~strict:false)
                  && Dbm.constrain ~dim:t.zdim z' 0 k
                       (Dbm.bnd (-v) ~strict:false)
                else
                  (* saturation: everything at or above the cap reads cap *)
                  Dbm.constrain ~dim:t.zdim z' 0 k (Dbm.bnd (-v) ~strict:false)
              in
              if ok then begin
                let vals' = Array.copy vals in
                vals'.(k) <- v;
                out := (z', vals') :: !out
              end
            done;
            List.rev !out)
          acc
      in
      List.fold_left expand [ (z, Array.make t.zdim 0) ] reads

(* One macro transition: [parts] is the list of participating automata
   with their edges, in application order (sender first). *)
let apply t (st : state) parts label acc =
  let disc = st.disc in
  if List.for_all (fun (_, e) -> e.ze_data disc) parts then begin
    let z1 = Dbm.copy st.dbm in
    let ok =
      List.for_all
        (fun (_, e) ->
          List.for_all (fun a -> constrain_atom t z1 a disc) e.ze_atoms)
        parts
    in
    if ok then begin
      let reads =
        let reset = Hashtbl.create 4 and out = ref [] in
        List.iter
          (fun (_, e) ->
            List.iter
              (function
                | U_reset k -> Hashtbl.replace reset k ()
                | U_assign (_, ks) ->
                    List.iter
                      (fun k ->
                        if not (Hashtbl.mem reset k) && not (List.mem k !out)
                        then out := k :: !out)
                      ks)
              e.ze_updates)
          parts;
        List.rev !out
      in
      List.iter
        (fun (z2, vals) ->
          let disc' = Array.copy disc in
          List.iter (fun (i, e) -> disc'.(i) <- e.ze_dst) parts;
          let reset_so_far = Array.make t.zdim false in
          let valu k = if reset_so_far.(k) then 0 else vals.(k) in
          List.iter
            (fun (_, e) ->
              List.iter
                (function
                  | U_reset k ->
                      Dbm.reset ~dim:t.zdim z2 k;
                      reset_so_far.(k) <- true
                  | U_assign (f, _) -> f disc' valu)
                e.ze_updates)
            parts;
          match settle t disc' z2 with
          | Some s -> acc := (S.Act label, s) :: !acc
          | None -> ())
        (enumerate t z1 reads)
    end
  end

let initial t : state =
  let disc = S.cells (S.initial t.znet) in
  let z = Dbm.zero ~dim:t.zdim in
  (* S.compile proved the zero valuation satisfies every initial
     invariant, so the settled zone cannot be empty *)
  match settle t disc z with
  | Some s -> s
  | None -> invalid_arg "zone: initial zone is empty"

let successors t (st : state) : (S.label * state) list =
  let disc = st.disc in
  let acc = ref [] in
  let n = t.zn in
  let cur i = t.zautos.(i).(disc.(i)) in
  let committed =
    let rec go i = i < n && ((cur i).zl_kind = M.Committed || go (i + 1)) in
    go 0
  in
  let allowed i = (not committed) || (cur i).zl_kind = M.Committed in
  (* internal edges *)
  for i = 0 to n - 1 do
    if allowed i then
      List.iter (fun e -> apply t st [ (i, e) ] e.ze_label acc) (cur i).zl_tau
  done;
  (* synchronisations — same pairing rules as Ta.Semantics.successors *)
  Array.iteri
    (fun ch (cd : M.chan_decl) ->
      if not cd.M.broadcast then begin
        for i = 0 to n - 1 do
          List.iter
            (fun es ->
              if es.ze_data disc then
                for j = 0 to n - 1 do
                  if j <> i && ((not committed) || allowed i || allowed j)
                  then
                    List.iter
                      (fun er ->
                        if er.ze_data disc then
                          apply t st [ (i, es); (j, er) ] es.ze_label acc)
                      (cur j).zl_recv.(ch)
                done)
            (cur i).zl_send.(ch)
        done
      end
      else
        for i = 0 to n - 1 do
          List.iter
            (fun es ->
              if es.ze_data disc then begin
                (* receivers have data-only guards (enforced by
                   [compile]), so participation is determined by the
                   discrete part alone *)
                let receivers =
                  List.init n (fun j ->
                      if j = i then (j, [])
                      else
                        ( j,
                          List.filter
                            (fun e -> e.ze_data disc)
                            (cur j).zl_recv.(ch) ))
                in
                let participating =
                  List.filter (fun (_, l) -> l <> []) receivers
                in
                let committed_ok =
                  (not committed) || allowed i
                  || List.exists (fun (j, _) -> allowed j) participating
                in
                if committed_ok then begin
                  let rec expand chosen = function
                    | [] ->
                        apply t st
                          ((i, es) :: List.rev chosen)
                          es.ze_label acc
                    | (j, choices) :: rest ->
                        List.iter
                          (fun e -> expand ((j, e) :: chosen) rest)
                          choices
                  in
                  expand [] participating
                end
              end)
            (cur i).zl_send.(ch)
        done)
    t.zchans;
  List.rev !acc

(* --- packaging ------------------------------------------------------ *)

let equal_disc (a : int array) (b : int array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let equal_state a b = equal_disc a.disc b.disc && Dbm.equal a.dbm b.dbm

let hash_state (s : state) =
  let h = ref (Dbm.hash s.dbm) in
  Array.iter
    (fun x -> h := (!h lxor x) * 0x01000193 land max_int)
    s.disc;
  !h

let subsumes t big small =
  equal_disc big.disc small.disc
  && Dbm.includes ~dim:t.zdim big.dbm small.dbm

let pp_state t ppf (s : state) =
  Format.fprintf ppf "@[<h>%a| %a@]"
    (S.pp_config t.znet)
    (S.of_cells s.disc)
    (Dbm.pp ~dim:t.zdim ~names:t.zclock_names)
    s.dbm

let bad_of _t (p : S.config -> bool) (s : state) = p (S.of_cells s.disc)

let system (t : t) : (state, S.label) Mc.System.t =
  (module struct
    type nonrec state = state
    type label = S.label

    let initial = initial t
    let successors = successors t
    let equal_state = equal_state
    let hash_state = hash_state
    let pp_state = pp_state t
    let pp_label = S.pp_label
  end)

(* --- lint section --------------------------------------------------- *)

let diagnostics (m : M.t) : Lint_report.diag list =
  let module R = Lint_report in
  let an = analyze_model m in
  let frag =
    List.map
      (fun (where, code, reason) ->
        R.diag ~severity:R.Error ~code ~where "%s" reason)
      an.an_errors
  in
  let bcast =
    List.map
      (fun where ->
        R.diag ~severity:R.Error ~code:"TA-ZONE-BROADCAST" ~where
          "broadcast receiver with a clock guard: zone participation must \
           be a function of the discrete part")
      an.an_bcast_bad
  in
  let nonint =
    List.map
      (fun (where, clock) ->
        R.diag ~severity:R.Error ~code:"TA-ZONE-NONINT" ~where
          "clock %s compared against an expression with integer division; \
           dense-time and discrete evaluation can disagree"
          clock)
      an.an_nonint
  in
  let fallback =
    List.map
      (fun (where, clock) ->
        R.diag ~severity:R.Warning ~code:"TA-ZONE-LU-CAP" ~where
          "bound on clock %s is unbounded by interval analysis; Extra_LU \
           falls back to the declared cap"
          clock)
      an.an_fallback
  in
  let reads =
    List.map
      (fun (where, clocks) ->
        R.diag ~severity:R.Info ~code:"TA-ZONE-READ" ~where
          "update reads clock%s %s: the zone successor case-splits on the \
           integer value (saturated at the cap)"
          (if List.length clocks > 1 then "s" else "")
          (String.concat ", " clocks))
      an.an_reads
  in
  let lu =
    List.map
      (fun (c : M.clock_decl) ->
        let name = c.M.clock_name in
        let get tbl =
          match SMap.find_opt name tbl with
          | Some v -> string_of_int v
          | None -> "none"
        in
        R.diag ~severity:R.Info ~code:"TA-ZONE-LU" ~where:name
          "Extra_LU bounds: L=%s U=%s (cap %d)" (get an.an_l) (get an.an_u)
          c.M.cap)
      m.M.clocks
  in
  frag @ bcast @ nonint @ fallback @ reads @ lu
