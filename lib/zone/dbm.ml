(* Flat int-array DBMs with the UPPAAL bound encoding: a bound (v, ≺)
   is the int [2v + (≺ = ≤ ? 1 : 0)], so tighter bounds are smaller
   ints and bound comparison is machine [<].  Infinity is [max_int];
   [badd] saturates on it.  Entry (i, j) lives at [i * dim + j]. *)

type t = int array

let inf = max_int
let bnd v ~strict = (v * 2) + if strict then 0 else 1
let value b = b asr 1
let is_strict b = b land 1 = 0
let le_zero = bnd 0 ~strict:false

let badd a b =
  if a = inf || b = inf then inf else a + b - ((a lor b) land 1)

let zero ~dim = Array.make (dim * dim) le_zero
let copy = Array.copy

(* Floyd–Warshall.  Empty iff some diagonal entry drops below (0, ≤);
   the diagonal is pinned back to (0, ≤) so closed DBMs compare
   entrywise. *)
let close ~dim (m : t) =
  let ok = ref true in
  for k = 0 to dim - 1 do
    for i = 0 to dim - 1 do
      let mik = m.((i * dim) + k) in
      if mik <> inf then
        for j = 0 to dim - 1 do
          let via = badd mik m.((k * dim) + j) in
          if via < m.((i * dim) + j) then m.((i * dim) + j) <- via
        done
    done
  done;
  for i = 0 to dim - 1 do
    if m.((i * dim) + i) < le_zero then ok := false
    else m.((i * dim) + i) <- le_zero
  done;
  !ok

(* Incremental tightening: with [m] closed and a new bound b on
   x_i - x_j, every entry (p, q) can only improve through the new edge,
   so one O(dim²) pass over paths p -> i -> j -> q re-closes. *)
let constrain ~dim (m : t) i j b =
  if b >= m.((i * dim) + j) then true (* no tightening: still closed *)
  else if badd b m.((j * dim) + i) < le_zero then false (* negative cycle *)
  else begin
    m.((i * dim) + j) <- b;
    for p = 0 to dim - 1 do
      let pi = m.((p * dim) + i) in
      if pi <> inf then begin
        let pj = badd pi b in
        if pj < m.((p * dim) + j) then m.((p * dim) + j) <- pj;
        let pj = m.((p * dim) + j) in
        if pj <> inf then
          for q = 0 to dim - 1 do
            let pq = badd pj m.((j * dim) + q) in
            if pq < m.((p * dim) + q) then m.((p * dim) + q) <- pq
          done
      end
    done;
    true
  end

let up ~dim (m : t) =
  for i = 1 to dim - 1 do
    m.((i * dim) + 0) <- inf
  done

let reset ~dim (m : t) i =
  (* x_i := 0: x_i - x_j inherits 0 - x_j, x_j - x_i inherits x_j - 0. *)
  for j = 0 to dim - 1 do
    m.((i * dim) + j) <- m.(j);
    (* row 0 entry (0, j) *)
    m.((j * dim) + i) <- m.(j * dim)
    (* column 0 entry (j, 0) *)
  done;
  m.((i * dim) + i) <- le_zero

let intersect ~dim (m : t) (other : t) =
  for k = 0 to (dim * dim) - 1 do
    if other.(k) < m.(k) then m.(k) <- other.(k)
  done;
  close ~dim m

let includes ~dim (big : t) (small : t) =
  let n = dim * dim in
  let rec go k = k >= n || (small.(k) <= big.(k) && go (k + 1)) in
  go 0

let clock_lo ~dim (m : t) i =
  (* entry (0, i) bounds 0 - x_i, i.e. x_i >= -v (strictly if strict) *)
  let b = m.(i) in
  ignore dim;
  let v = -value b in
  if is_strict b then v + 1 else v

let clock_hi ~dim (m : t) i =
  let b = m.((i * dim) + 0) in
  if b = inf then None
  else
    let v = value b in
    Some (if is_strict b then v - 1 else v)

(* Extra_LU, diagonal-free form (Behrmann, Bouyer, Larsen, Pelánek,
   "Lower and Upper Bounds in Zone-Based Abstractions of Timed
   Automata").  With l.(i) / u.(i) the largest constants the model
   compares clock i against from below / above (-1 when it never
   does), and row-0 entries read from the *input* matrix:

     m'[i][j] = inf          if  v(m[i][j]) >  l(i)          (i ≠ 0)
     m'[i][j] = inf          if -v(m[0][i]) >  l(i)          (i ≠ 0)
     m'[i][j] = inf          if -v(m[0][j]) >  u(j)          (i ≠ 0, j ≠ 0)
     m'[0][j] = (-u(j), <)   if -v(m[0][j]) >  u(j)   — clamped at (0, ≤)

   The first two clauses drop zone upper bounds a lower-bound guard
   can never see; the last two weaken zone lower bounds beyond every
   upper-bound guard.  Extrapolation only enlarges the zone, so the
   re-closure cannot find it empty. *)
let extrapolate_lu ~dim (m : t) ~l ~u =
  let row0 = Array.init dim (fun j -> m.(j)) in
  let low j =
    (* the zone's lower bound on x_j as an integer-oriented value *)
    -value row0.(j)
  in
  let changed = ref false in
  for i = 1 to dim - 1 do
    for j = 0 to dim - 1 do
      if i <> j then begin
        let e = m.((i * dim) + j) in
        if
          e <> inf
          && (value e > l.(i)
             || low i > l.(i)
             || (j <> 0 && low j > u.(j)))
        then begin
          m.((i * dim) + j) <- inf;
          changed := true
        end
      end
    done
  done;
  for j = 1 to dim - 1 do
    if low j > u.(j) then begin
      let b = if u.(j) < 0 then le_zero else bnd (-u.(j)) ~strict:true in
      if b > m.(j) then begin
        m.(j) <- b;
        changed := true
      end
    end
  done;
  if !changed then ignore (close ~dim m : bool)

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go k = k >= n || (a.(k) = b.(k) && go (k + 1)) in
  go 0

let hash (m : t) =
  let h = ref 0x811c9dc5 in
  for k = 0 to Array.length m - 1 do
    h := (!h lxor m.(k)) * 0x01000193 land max_int
  done;
  !h

let pp ~dim ~names ppf (m : t) =
  let first = ref true in
  let sep () =
    if !first then first := false else Format.fprintf ppf " && "
  in
  let pp_bound lhs b =
    Format.fprintf ppf "%s %s %d" lhs
      (if is_strict b then "<" else "<=")
      (value b)
  in
  Format.fprintf ppf "@[<h>";
  for i = 1 to dim - 1 do
    let lo = m.(i) and hi = m.((i * dim) + 0) in
    if lo < le_zero then begin
      sep ();
      Format.fprintf ppf "%s %s %d" names.(i)
        (if is_strict lo then ">" else ">=")
        (-value lo)
    end;
    if hi <> inf then begin
      sep ();
      pp_bound names.(i) hi
    end
  done;
  for i = 1 to dim - 1 do
    for j = 1 to dim - 1 do
      if i <> j && m.((i * dim) + j) <> inf then begin
        sep ();
        pp_bound (names.(i) ^ "-" ^ names.(j)) m.((i * dim) + j)
      end
    done
  done;
  if !first then Format.fprintf ppf "true";
  Format.fprintf ppf "@]"
