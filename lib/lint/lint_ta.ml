(* Static analysis of timed-automata models.

   Mirrors the checks {!Ta.Semantics.compile} performs at build time
   (duplicate declarations, unknown variables/clocks/channels/locations,
   scalar/array misuse) without raising, and adds the lints compile
   cannot do: per-automaton location reachability, channel direction
   analysis (split by handshake/broadcast semantics), clock usage, a
   flow-insensitive interval fixpoint over the shared variables with
   guard/invariant satisfiability checks, Zeno-cycle detection over
   urgent/committed locations, and a static state-count upper bound
   (product of location counts, clock domains and variable widths) used
   by {!Mc.Pexplore} to pre-size its tables.

   The interval transfer recognises the arithmetic-mux idiom the
   heartbeat models use for conditional updates,
   [g*x + (1-g)*y] with [g] in [0,1], evaluating it as [join x y]
   instead of the wildly overapproximate product form. *)

module E = Ta.Expr
module M = Ta.Model
module I = Lint_interval
module R = Lint_report

module SSet = Set.Make (String)
module SMap = Map.Make (String)

let where_auto a = "automaton " ^ a
let where_edge (a : M.automaton) (e : M.edge) =
  Printf.sprintf "automaton %s, edge %s -> %s" a.M.auto_name e.M.src e.M.dst

(* --- declaration tables ----------------------------------------------- *)

type decls = {
  vars : (string, int list) Hashtbl.t;  (* name -> initial cells *)
  clocks : (string, int) Hashtbl.t;  (* name -> cap *)
  chans : (string, bool) Hashtbl.t;  (* name -> broadcast *)
}

let build_decls (m : M.t) =
  let diags = ref [] in
  let dup where what name =
    diags :=
      R.diag ~severity:R.Error ~code:"TA-DUP-DECL" ~where
        "%s %s is declared more than once" what name
      :: !diags
  in
  let d =
    {
      vars = Hashtbl.create 32;
      clocks = Hashtbl.create 8;
      chans = Hashtbl.create 8;
    }
  in
  List.iter
    (fun (v : M.var_decl) ->
      if Hashtbl.mem d.vars v.M.var_name then
        dup ("variable " ^ v.M.var_name) "variable" v.M.var_name
      else Hashtbl.add d.vars v.M.var_name v.M.init)
    m.M.vars;
  List.iter
    (fun (c : M.clock_decl) ->
      if Hashtbl.mem d.clocks c.M.clock_name then
        dup ("clock " ^ c.M.clock_name) "clock" c.M.clock_name
      else Hashtbl.add d.clocks c.M.clock_name c.M.cap)
    m.M.clocks;
  List.iter
    (fun (c : M.chan_decl) ->
      if Hashtbl.mem d.chans c.M.chan_name then
        dup ("channel " ^ c.M.chan_name) "channel" c.M.chan_name
      else Hashtbl.add d.chans c.M.chan_name c.M.broadcast)
    m.M.chans;
  let autos = Hashtbl.create 8 in
  List.iter
    (fun (a : M.automaton) ->
      if Hashtbl.mem autos a.M.auto_name then
        dup (where_auto a.M.auto_name) "automaton" a.M.auto_name
      else Hashtbl.add autos a.M.auto_name ();
      let locs = Hashtbl.create 8 in
      List.iter
        (fun (l : M.location) ->
          if Hashtbl.mem locs l.M.loc_name then
            dup
              (Printf.sprintf "automaton %s, location %s" a.M.auto_name
                 l.M.loc_name)
              "location" l.M.loc_name
          else Hashtbl.add locs l.M.loc_name ())
        a.M.locations)
    m.M.automata;
  (d, List.rev !diags)

let is_array cells = List.length cells > 1

(* --- reference checks -------------------------------------------------- *)

let references (m : M.t) (d : decls) : R.diag list =
  let diags = ref [] in
  let err ~code ~where fmt =
    Format.kasprintf
      (fun msg ->
        diags := R.diag ~severity:R.Error ~code ~where "%s" msg :: !diags)
      fmt
  in
  let rec expr ~where (e : E.t) =
    match e with
    | E.Int _ -> ()
    | E.Var x -> (
        match Hashtbl.find_opt d.vars x with
        | None -> err ~code:"TA-UNDEF-VAR" ~where "unknown variable %s" x
        | Some cells ->
            if is_array cells then
              err ~code:"TA-ARRAY" ~where "%s is an array, not a scalar" x)
    | E.Elem (x, idx) ->
        (match Hashtbl.find_opt d.vars x with
        | None -> err ~code:"TA-UNDEF-VAR" ~where "unknown variable %s" x
        | Some cells -> (
            match idx with
            | E.Int i when i < 0 || i >= List.length cells ->
                err ~code:"TA-IDX-RANGE" ~where
                  "index %d out of range for %s (size %d)" i x
                  (List.length cells)
            | _ -> ()));
        expr ~where idx
    | E.Clock c ->
        if not (Hashtbl.mem d.clocks c) then
          err ~code:"TA-UNDEF-CLOCK" ~where "unknown clock %s" c
    | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
    | E.Min (a, b) | E.Max (a, b) ->
        expr ~where a;
        expr ~where b
  in
  let rec bexpr ~where (b : E.b) =
    match b with
    | E.True | E.False -> ()
    | E.Cmp (_, a, b) ->
        expr ~where a;
        expr ~where b
    | E.Not b -> bexpr ~where b
    | E.And (a, b) | E.Or (a, b) ->
        bexpr ~where a;
        bexpr ~where b
  in
  List.iter
    (fun (a : M.automaton) ->
      let locs =
        List.fold_left
          (fun acc (l : M.location) -> SSet.add l.M.loc_name acc)
          SSet.empty a.M.locations
      in
      let check_loc where name =
        if not (SSet.mem name locs) then
          err ~code:"TA-UNDEF-LOC" ~where "unknown location %s" name
      in
      check_loc (where_auto a.M.auto_name) a.M.init_loc;
      List.iter
        (fun (l : M.location) ->
          bexpr
            ~where:
              (Printf.sprintf "automaton %s, location %s" a.M.auto_name
                 l.M.loc_name)
            l.M.invariant)
        a.M.locations;
      List.iter
        (fun (e : M.edge) ->
          let where = where_edge a e in
          check_loc where e.M.src;
          check_loc where e.M.dst;
          bexpr ~where e.M.guard;
          (match e.M.sync with
          | M.Tau -> ()
          | M.Send c | M.Recv c ->
              if not (Hashtbl.mem d.chans c) then
                err ~code:"TA-UNDEF-CHAN" ~where "unknown channel %s" c);
          List.iter
            (fun (u : M.update) ->
              match u with
              | M.Reset c ->
                  if not (Hashtbl.mem d.clocks c) then
                    err ~code:"TA-UNDEF-CLOCK" ~where "unknown clock %s" c
              | M.Assign (M.Scalar x, rhs) ->
                  (match Hashtbl.find_opt d.vars x with
                  | None ->
                      err ~code:"TA-UNDEF-VAR" ~where "unknown variable %s" x
                  | Some cells ->
                      if is_array cells then
                        err ~code:"TA-ARRAY" ~where
                          "%s is an array, not a scalar" x);
                  expr ~where rhs
              | M.Assign (M.Element (x, idx), rhs) ->
                  (match Hashtbl.find_opt d.vars x with
                  | None ->
                      err ~code:"TA-UNDEF-VAR" ~where "unknown variable %s" x
                  | Some cells -> (
                      match idx with
                      | E.Int i when i < 0 || i >= List.length cells ->
                          err ~code:"TA-IDX-RANGE" ~where
                            "index %d out of range for %s (size %d)" i x
                            (List.length cells)
                      | _ -> ()));
                  expr ~where idx;
                  expr ~where rhs)
            e.M.updates)
        a.M.edges)
    m.M.automata;
  List.rev !diags

(* --- reachability, channels, clocks, variables ------------------------- *)

let reachable_locs (a : M.automaton) =
  let seen = ref SSet.empty in
  let rec go l =
    if not (SSet.mem l !seen) then begin
      seen := SSet.add l !seen;
      List.iter
        (fun (e : M.edge) -> if e.M.src = l then go e.M.dst)
        a.M.edges
    end
  in
  go a.M.init_loc;
  !seen

let usage (m : M.t) (d : decls) reach : R.diag list =
  let diags = ref [] in
  let add severity ~code ~where fmt =
    Format.kasprintf
      (fun msg -> diags := R.diag ~severity ~code ~where "%s" msg :: !diags)
      fmt
  in
  (* Dead locations. *)
  List.iter
    (fun (a : M.automaton) ->
      let r = SMap.find a.M.auto_name reach in
      List.iter
        (fun (l : M.location) ->
          if not (SSet.mem l.M.loc_name r) then
            add R.Warning ~code:"TA-DEAD-LOC"
              ~where:(where_auto a.M.auto_name)
              "location %s is not reachable from %s" l.M.loc_name
              a.M.init_loc)
        a.M.locations)
    m.M.automata;
  (* Channel directions, counting only edges leaving reachable
     locations. *)
  let senders = Hashtbl.create 8 and receivers = Hashtbl.create 8 in
  List.iter
    (fun (a : M.automaton) ->
      let r = SMap.find a.M.auto_name reach in
      List.iter
        (fun (e : M.edge) ->
          if SSet.mem e.M.src r then
            match e.M.sync with
            | M.Tau -> ()
            | M.Send c -> Hashtbl.replace senders c ()
            | M.Recv c -> Hashtbl.replace receivers c ())
        a.M.edges)
    m.M.automata;
  Hashtbl.iter
    (fun c broadcast ->
      let where = "channel " ^ c in
      let snd = Hashtbl.mem senders c and rcv = Hashtbl.mem receivers c in
      match (snd, rcv) with
      | false, false ->
          add R.Info ~code:"TA-CHAN-UNUSED" ~where
            "channel %s is declared but no edge uses it" c
      | true, false ->
          if broadcast then
            add R.Info ~code:"TA-CHAN-NO-RECV" ~where
              "broadcast channel %s has senders but no receivers; sends \
               fire with no effect"
              c
          else
            add R.Warning ~code:"TA-CHAN-NO-RECV" ~where
              "handshake channel %s has senders but no receivers; the \
               sending edges can never fire"
              c
      | false, true ->
          add R.Warning ~code:"TA-CHAN-NO-SEND" ~where
            "channel %s has receivers but no senders; the receiving edges \
             can never fire"
            c
      | true, true -> ())
    d.chans;
  (* Clock usage: [reads] from guards, invariants and update right-hand
     sides; [resets] from updates. *)
  let reads = Hashtbl.create 8 and resets = Hashtbl.create 8 in
  let rec expr_clocks (e : E.t) =
    match e with
    | E.Int _ | E.Var _ -> ()
    | E.Elem (_, i) -> expr_clocks i
    | E.Clock c -> Hashtbl.replace reads c ()
    | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
    | E.Min (a, b) | E.Max (a, b) ->
        expr_clocks a;
        expr_clocks b
  in
  let rec bexpr_clocks (b : E.b) =
    match b with
    | E.True | E.False -> ()
    | E.Cmp (_, a, b) ->
        expr_clocks a;
        expr_clocks b
    | E.Not b -> bexpr_clocks b
    | E.And (a, b) | E.Or (a, b) ->
        bexpr_clocks a;
        bexpr_clocks b
  in
  List.iter
    (fun (a : M.automaton) ->
      List.iter (fun (l : M.location) -> bexpr_clocks l.M.invariant)
        a.M.locations;
      List.iter
        (fun (e : M.edge) ->
          bexpr_clocks e.M.guard;
          List.iter
            (fun (u : M.update) ->
              match u with
              | M.Reset c -> Hashtbl.replace resets c ()
              | M.Assign (M.Scalar _, rhs) -> expr_clocks rhs
              | M.Assign (M.Element (_, i), rhs) ->
                  expr_clocks i;
                  expr_clocks rhs)
            e.M.updates)
        a.M.edges)
    m.M.automata;
  Hashtbl.iter
    (fun c _cap ->
      let where = "clock " ^ c in
      if not (Hashtbl.mem reads c) then
        add R.Warning ~code:"TA-CLOCK-UNREAD" ~where
          "clock %s is never read; it multiplies the state space without \
           constraining behaviour"
          c
      else if not (Hashtbl.mem resets c) then
        add R.Info ~code:"TA-CLOCK-NO-RESET" ~where
          "clock %s is read but never reset (measures time since start)" c)
    d.clocks;
  (* Variable usage. *)
  let var_reads = Hashtbl.create 32 and var_writes = Hashtbl.create 32 in
  let rec expr_vars (e : E.t) =
    match e with
    | E.Int _ | E.Clock _ -> ()
    | E.Var x -> Hashtbl.replace var_reads x ()
    | E.Elem (x, i) ->
        Hashtbl.replace var_reads x ();
        expr_vars i
    | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
    | E.Min (a, b) | E.Max (a, b) ->
        expr_vars a;
        expr_vars b
  in
  let rec bexpr_vars (b : E.b) =
    match b with
    | E.True | E.False -> ()
    | E.Cmp (_, a, b) ->
        expr_vars a;
        expr_vars b
    | E.Not b -> bexpr_vars b
    | E.And (a, b) | E.Or (a, b) ->
        bexpr_vars a;
        bexpr_vars b
  in
  List.iter
    (fun (a : M.automaton) ->
      List.iter (fun (l : M.location) -> bexpr_vars l.M.invariant)
        a.M.locations;
      List.iter
        (fun (e : M.edge) ->
          bexpr_vars e.M.guard;
          List.iter
            (fun (u : M.update) ->
              match u with
              | M.Reset _ -> ()
              | M.Assign (M.Scalar x, rhs) ->
                  Hashtbl.replace var_writes x ();
                  expr_vars rhs
              | M.Assign (M.Element (x, i), rhs) ->
                  Hashtbl.replace var_writes x ();
                  expr_vars i;
                  expr_vars rhs)
            e.M.updates)
        a.M.edges)
    m.M.automata;
  Hashtbl.iter
    (fun x _init ->
      if not (Hashtbl.mem var_reads x) then
        if Hashtbl.mem var_writes x then
          add R.Info ~code:"TA-VAR-WRITE-ONLY" ~where:("variable " ^ x)
            "variable %s is written but never read" x
        else
          add R.Info ~code:"TA-VAR-WRITE-ONLY" ~where:("variable " ^ x)
            "variable %s is never read" x)
    d.vars;
  List.rev !diags

(* --- interval analysis ------------------------------------------------- *)

(* Env keys are prefixed ("v:" for variables, "c:" for clocks) so the two
   namespaces cannot collide.  Globals hold one joined interval per
   variable (arrays: join of all cells); clocks range over [0, cap]
   (unit-delay semantics saturate at the cap). *)

let vkey x = "v:" ^ x
let ckey c = "c:" ^ c

type ienv = { globals : I.t SMap.t; local : I.t SMap.t }

let lookup d env key =
  match SMap.find_opt key env.local with
  | Some i -> i
  | None -> (
      match SMap.find_opt key env.globals with
      | Some i -> i
      | None -> (
          (* clocks are not in globals; derive from the cap *)
          match key.[0] with
          | 'c' -> (
              match
                Hashtbl.find_opt d.clocks
                  (String.sub key 2 (String.length key - 2))
              with
              | Some cap -> I.of_bounds 0 cap
              | None -> I.of_bounds 0 I.pos_inf)
          | _ -> I.top))

let icmp = function
  | E.Lt -> I.Lt
  | E.Le -> I.Le
  | E.Eq -> I.Eq
  | E.Ge -> I.Ge
  | E.Gt -> I.Gt
  | E.Ne -> I.Ne

let rec eval d env (e : E.t) : I.t =
  match e with
  | E.Int n -> I.const n
  | E.Var x -> lookup d env (vkey x)
  | E.Elem (x, _) -> lookup d env (vkey x)
  | E.Clock c -> lookup d env (ckey c)
  | E.Add (a, b) -> (
      (* mux idiom: g*x + (1-g)*y with g in [0,1] evaluates to join x y *)
      match mux d env a b with
      | Some r -> r
      | None -> I.add (eval d env a) (eval d env b))
  | E.Sub (a, b) -> I.sub (eval d env a) (eval d env b)
  | E.Mul (a, b) -> I.mul (eval d env a) (eval d env b)
  | E.Div (a, b) -> I.div (eval d env a) (eval d env b)
  | E.Min (a, b) -> I.min_ (eval d env a) (eval d env b)
  | E.Max (a, b) -> I.max_ (eval d env a) (eval d env b)

and mux d env a b =
  let muxed g x g' y =
    if g = g' then begin
      let gi = eval d env g in
      if gi.I.lo >= 0 && gi.I.hi <= 1 then
        Some (I.join (eval d env x) (eval d env y))
      else None
    end
    else None
  in
  match (a, b) with
  | E.Mul (g, x), E.Mul (E.Sub (E.Int 1, g'), y)
  | E.Mul (E.Sub (E.Int 1, g'), y), E.Mul (g, x) ->
      muxed g x g' y
  | _ -> None

(* [refine d env b truth]: [None] means [b = truth] is statically
   impossible under [env]. *)
let rec refine d env (b : E.b) truth : ienv option =
  match b with
  | E.True -> if truth then Some env else None
  | E.False -> if truth then None else Some env
  | E.Cmp (c, a, b) -> (
      let c = if truth then icmp c else I.negate_cmp (icmp c) in
      let ia = eval d env a and ib = eval d env b in
      match I.refine c ia ib with
      | None -> None
      | Some (ia', ib') ->
          let set e i env =
            match e with
            | E.Var x -> { env with local = SMap.add (vkey x) i env.local }
            | E.Clock ck ->
                { env with local = SMap.add (ckey ck) i env.local }
            | _ -> env
          in
          Some (set a ia' (set b ib' env)))
  | E.Not b -> refine d env b (not truth)
  | E.And (a, b) when truth ->
      Option.bind (refine d env a true) (fun env -> refine d env b true)
  | E.Or (a, b) when not truth ->
      Option.bind (refine d env a false) (fun env -> refine d env b false)
  | E.And _ | E.Or _ -> Some env

let model_thresholds (m : M.t) =
  let acc = ref [ 0; 1 ] in
  let rec expr (e : E.t) =
    match e with
    | E.Int n -> acc := n :: !acc
    | E.Var _ | E.Clock _ -> ()
    | E.Elem (_, i) -> expr i
    | E.Add (a, b) | E.Sub (a, b) | E.Mul (a, b) | E.Div (a, b)
    | E.Min (a, b) | E.Max (a, b) ->
        expr a;
        expr b
  in
  let rec bexpr (b : E.b) =
    match b with
    | E.True | E.False -> ()
    | E.Cmp (_, a, b) ->
        expr a;
        expr b
    | E.Not b -> bexpr b
    | E.And (a, b) | E.Or (a, b) ->
        bexpr a;
        bexpr b
  in
  List.iter
    (fun (a : M.automaton) ->
      List.iter (fun (l : M.location) -> bexpr l.M.invariant) a.M.locations;
      List.iter
        (fun (e : M.edge) ->
          bexpr e.M.guard;
          List.iter
            (fun (u : M.update) ->
              match u with
              | M.Reset _ -> ()
              | M.Assign (M.Scalar _, rhs) -> expr rhs
              | M.Assign (M.Element (_, i), rhs) ->
                  expr i;
                  expr rhs)
            e.M.updates)
        a.M.edges)
    m.M.automata;
  List.iter (fun (v : M.var_decl) -> List.iter (fun n -> acc := n :: !acc) v.M.init)
    m.M.vars;
  List.iter (fun (c : M.clock_decl) -> acc := c.M.cap :: !acc) m.M.clocks;
  List.sort_uniq compare !acc

let join_init cells =
  match cells with
  | [] -> I.const 0
  | c :: rest -> List.fold_left (fun acc n -> I.join acc (I.const n)) (I.const c) rest

(* One transfer of every edge under [globals]; returns the next globals
   (writes joined in).  Invariant and guard refinements feed evaluation
   but only assigned variables flow back. *)
let step (m : M.t) (d : decls) invariants globals =
  let next = ref globals in
  List.iter
    (fun (a : M.automaton) ->
      List.iter
        (fun (e : M.edge) ->
          let env0 = { globals; local = SMap.empty } in
          let inv =
            match SMap.find_opt (a.M.auto_name ^ "/" ^ e.M.src) invariants with
            | Some i -> i
            | None -> E.True
          in
          match
            Option.bind (refine d env0 inv true) (fun env ->
                refine d env e.M.guard true)
          with
          | None -> () (* edge statically dead *)
          | Some env ->
              let env = ref env in
              List.iter
                (fun (u : M.update) ->
                  match u with
                  | M.Reset c ->
                      env :=
                        {
                          !env with
                          local = SMap.add (ckey c) (I.const 0) !env.local;
                        }
                  | M.Assign (lhs, rhs) ->
                      let x =
                        match lhs with
                        | M.Scalar x -> x
                        | M.Element (x, _) -> x
                      in
                      let v = eval d !env rhs in
                      let v =
                        (* weak update for array cells: other cells keep
                           their old values *)
                        match lhs with
                        | M.Element _ ->
                            I.join v (lookup d !env (vkey x))
                        | M.Scalar _ -> v
                      in
                      env :=
                        {
                          !env with
                          local = SMap.add (vkey x) v !env.local;
                        };
                      let cur =
                        match SMap.find_opt (vkey x) !next with
                        | Some i -> i
                        | None -> v
                      in
                      next := SMap.add (vkey x) (I.join cur v) !next)
                e.M.updates)
        a.M.edges)
    m.M.automata;
  !next

let fixpoint (m : M.t) (d : decls) thresholds : I.t SMap.t =
  let invariants =
    List.fold_left
      (fun acc (a : M.automaton) ->
        List.fold_left
          (fun acc (l : M.location) ->
            SMap.add (a.M.auto_name ^ "/" ^ l.M.loc_name) l.M.invariant acc)
          acc a.M.locations)
      SMap.empty m.M.automata
  in
  let init =
    Hashtbl.fold
      (fun x cells acc -> SMap.add (vkey x) (join_init cells) acc)
      d.vars SMap.empty
  in
  let rec iterate globals round =
    let next = step m d invariants globals in
    if SMap.equal I.equal next globals then globals
    else if round > 64 then
      (* safety net; thresholds should have converged long before *)
      SMap.map (fun _ -> I.top) globals
    else
      let next =
        if round < 3 then next
        else
          SMap.merge
            (fun _ old cur ->
              match (old, cur) with
              | Some o, Some c -> Some (I.widen ~thresholds ~old:o c)
              | _, c -> c)
            globals next
      in
      iterate next (round + 1)
  in
  iterate init 0

(* Guard satisfiability, evaluated under the final globals.  UNSAT =
   the guard alone can never hold; GUARD-INV = satisfiable alone but
   contradicts the source location's invariant. *)
let guard_diags (m : M.t) (d : decls) globals : R.diag list =
  let diags = ref [] in
  List.iter
    (fun (a : M.automaton) ->
      List.iter
        (fun (e : M.edge) ->
          if e.M.guard <> E.True then begin
            let where = where_edge a e in
            let env0 = { globals; local = SMap.empty } in
            match refine d env0 e.M.guard true with
            | None ->
                diags :=
                  R.diag ~severity:R.Warning ~code:"TA-GUARD-UNSAT" ~where
                    "guard can never be satisfied"
                  :: !diags
            | Some _ -> (
                let inv =
                  List.find_opt
                    (fun (l : M.location) -> l.M.loc_name = e.M.src)
                    a.M.locations
                in
                match inv with
                | None -> ()
                | Some l -> (
                    match
                      Option.bind (refine d env0 l.M.invariant true)
                        (fun env -> refine d env e.M.guard true)
                    with
                    | None ->
                        diags :=
                          R.diag ~severity:R.Warning ~code:"TA-GUARD-INV"
                            ~where
                            "guard contradicts the invariant of %s" e.M.src
                          :: !diags
                    | Some _ -> ()))
          end)
        a.M.edges)
    m.M.automata;
  List.rev !diags

let unbounded_diags (d : decls) globals : R.diag list =
  Hashtbl.fold
    (fun x _ acc ->
      match SMap.find_opt (vkey x) globals with
      | Some (i : I.t) when i.I.lo = I.neg_inf || i.I.hi = I.pos_inf ->
          R.diag ~severity:R.Warning ~code:"TA-VAR-UNBOUNDED"
            ~where:("variable " ^ x)
            "updates may drive %s outside any bounded range" x
          :: acc
      | _ -> acc)
    d.vars []
  |> List.rev

(* --- Zeno cycles -------------------------------------------------------- *)

(* A cycle through urgent/committed locations only never lets time pass:
   the automaton can take infinitely many discrete steps in zero time. *)
let zeno_diags (m : M.t) : R.diag list =
  let diags = ref [] in
  List.iter
    (fun (a : M.automaton) ->
      let urgent =
        List.fold_left
          (fun acc (l : M.location) ->
            match l.M.kind with
            | M.Urgent | M.Committed -> SSet.add l.M.loc_name acc
            | M.Normal -> acc)
          SSet.empty a.M.locations
      in
      let succs l =
        List.filter_map
          (fun (e : M.edge) ->
            if e.M.src = l && SSet.mem e.M.dst urgent then Some e.M.dst
            else None)
          a.M.edges
      in
      (* DFS cycle detection within the urgent subgraph *)
      let color = Hashtbl.create 8 in
      (* 0 = in progress, 1 = done *)
      let found = ref None in
      let rec visit l =
        match Hashtbl.find_opt color l with
        | Some 0 -> if !found = None then found := Some l
        | Some _ -> ()
        | None ->
            Hashtbl.add color l 0;
            List.iter visit (succs l);
            Hashtbl.replace color l 1
      in
      SSet.iter visit urgent;
      match !found with
      | Some l ->
          diags :=
            R.diag ~severity:R.Warning ~code:"TA-ZENO"
              ~where:(where_auto a.M.auto_name)
              "cycle through urgent/committed locations (via %s) can take \
               infinitely many steps in zero time"
              l
            :: !diags
      | None -> ())
    m.M.automata;
  List.rev !diags

(* --- state bound -------------------------------------------------------- *)

let state_bound (m : M.t) (d : decls) reach globals : I.card =
  let acc =
    List.fold_left
      (fun acc (a : M.automaton) ->
        let n = SSet.cardinal (SMap.find a.M.auto_name reach) in
        I.card_mul acc (I.Finite (max 1 n)))
      (I.Finite 1) m.M.automata
  in
  let acc =
    Hashtbl.fold
      (fun _ cap acc -> I.card_mul acc (I.Finite (cap + 1)))
      d.clocks acc
  in
  Hashtbl.fold
    (fun x cells acc ->
      let i =
        match SMap.find_opt (vkey x) globals with
        | Some i -> i
        | None -> join_init cells
      in
      I.card_mul acc (I.card_pow (I.width i) (List.length cells)))
    d.vars acc

(* --- entry points -------------------------------------------------------- *)

(* Range analysis + state bound only: what {!Heartbeat.Verify} calls to
   pre-size the explorer tables without paying for diagnostics. *)
(* Declarations plus the final variable intervals: the slicer's
   constant-folding pass consumes these directly (a variable whose
   interval is a singleton is provably constant). *)
let intervals_of (m : M.t) : decls * I.t SMap.t =
  let d, _ = build_decls m in
  (d, fixpoint m d (model_thresholds m))

let static_bound (m : M.t) : I.card =
  let d, _ = build_decls m in
  let reach =
    List.fold_left
      (fun acc (a : M.automaton) ->
        SMap.add a.M.auto_name (reachable_locs a) acc)
      SMap.empty m.M.automata
  in
  let globals = fixpoint m d (model_thresholds m) in
  state_bound m d reach globals

(* Memoised on the model term, for sweeps that rebuild the same model
   at the same parameters for several requirements (the R2/R3 models
   coincide; R1 adds the watchdogs). *)
let bound_memo : (M.t, I.card) Lint_memo.t = Lint_memo.create ()
let static_bound_cached m = Lint_memo.find bound_memo m static_bound
let cache_stats () = Lint_memo.stats bound_memo

let analyze ~model (m : M.t) : R.t =
  let d, dup_diags = build_decls m in
  let ref_diags = references m d in
  let reach =
    List.fold_left
      (fun acc (a : M.automaton) ->
        SMap.add a.M.auto_name (reachable_locs a) acc)
      SMap.empty m.M.automata
  in
  let usage_diags = usage m d reach in
  let thresholds = model_thresholds m in
  let globals = fixpoint m d thresholds in
  let g_diags = guard_diags m d globals in
  let u_diags = unbounded_diags d globals in
  let z_diags = zeno_diags m in
  let ranges =
    Hashtbl.fold
      (fun x cells acc ->
        let i =
          match SMap.find_opt (vkey x) globals with
          | Some i -> i
          | None -> join_init cells
        in
        (x, i) :: acc)
      d.vars []
  in
  let ranges =
    Hashtbl.fold
      (fun c cap acc -> ("clock " ^ c, I.of_bounds 0 cap) :: acc)
      d.clocks ranges
  in
  let bound = state_bound m d reach globals in
  R.make ~model
    ~diags:
      (dup_diags @ ref_diags @ usage_diags @ g_diags @ u_diags @ z_diags)
    ~stats:{ R.ranges; state_bound = bound }
