(* Diagnostics and report rendering for hblint.

   A report is a per-model bundle of diagnostics plus the analysis
   statistics (variable ranges and the static state-count bound) that
   the explorer uses for table pre-sizing.  Both renderers are fully
   deterministic: diagnostics are sorted by (severity, code, where,
   message), ranges by variable name, and the JSON is hand-rolled with
   no hashtable iteration order or timestamps leaking in. *)

module I = Lint_interval

type severity = Error | Warning | Info

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type diag = {
  code : string;  (* e.g. "PA-SUM-EMPTY" *)
  severity : severity;
  where : string;  (* definition / automaton / channel ... *)
  message : string;
  waived : bool;  (* demoted by the allowlist *)
}

let diag ?(severity = Warning) ~code ~where fmt =
  Format.kasprintf
    (fun message -> { code; severity; where; message; waived = false })
    fmt

type stats = {
  ranges : (string * I.t) list;  (* sorted by variable name *)
  state_bound : I.card;
}

let no_stats = { ranges = []; state_bound = I.Unbounded }

type t = { model : string; diags : diag list; stats : stats }

let compare_diag a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = String.compare a.where b.where in
      if c <> 0 then c else String.compare a.message b.message

let make ~model ~diags ~stats =
  {
    model;
    diags = List.sort compare_diag diags;
    stats = { stats with ranges = List.sort compare (stats.ranges : (string * I.t) list) };
  }

(* Demote every diagnostic matched by [allow] to a waived info.  Used by
   the CLI allowlist: known-benign findings stay visible in the output
   but no longer gate. *)
let waive allow r =
  let diags =
    List.map
      (fun d ->
        if d.severity <> Info && allow r.model d then
          { d with severity = Info; waived = true }
        else d)
      r.diags
  in
  { r with diags = List.sort compare_diag diags }

(* Allowlist entry syntax, shared with the CLI: "CODE" waives the code
   everywhere, "MODEL/CODE" for one model only. *)
let spec_matches spec ~model (d : diag) =
  match String.index_opt spec '/' with
  | None -> spec = d.code
  | Some i ->
      String.sub spec 0 i = model
      && String.sub spec (i + 1) (String.length spec - i - 1) = d.code

(* The allowlist entries that matched no diagnostic of any report — a
   stale waiver usually means the lint it silenced was fixed (or the
   code was renamed) and the entry should be dropped. *)
let unused_allows specs reports =
  List.filter
    (fun spec ->
      not
        (List.exists
           (fun r ->
             List.exists (fun d -> spec_matches spec ~model:r.model d) r.diags)
           reports))
    specs

let count sev r =
  List.length (List.filter (fun d -> d.severity = sev) r.diags)

let errors r = count Error r
let warnings r = count Warning r

(* --- text rendering ------------------------------------------------- *)

let pp_diag ppf d =
  Format.fprintf ppf "%s[%s]%s %s: %s" (severity_name d.severity) d.code
    (if d.waived then " (waived)" else "")
    d.where d.message

let pp ?(verbose = false) ppf r =
  Format.fprintf ppf "== %s ==@." r.model;
  List.iter (fun d -> Format.fprintf ppf "  %a@." pp_diag d) r.diags;
  if verbose then
    List.iter
      (fun (x, i) -> Format.fprintf ppf "  range %s = %a@." x I.pp i)
      r.stats.ranges;
  Format.fprintf ppf "  state bound: %a; %d error(s), %d warning(s)@."
    I.pp_card r.stats.state_bound (errors r) (warnings r)

(* --- JSON rendering ------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)

let json_bound ppf x =
  if x = I.neg_inf then Format.pp_print_string ppf "\"-inf\""
  else if x = I.pos_inf then Format.pp_print_string ppf "\"+inf\""
  else Format.pp_print_int ppf x

let json_card ppf = function
  | I.Finite n -> Format.pp_print_int ppf n
  | I.Unbounded -> Format.pp_print_string ppf "\"unbounded\""

let json_diag ppf d =
  Format.fprintf ppf
    "{\"code\":%s,\"severity\":%s,\"where\":%s,\"message\":%s,\"waived\":%b}"
    (json_str d.code)
    (json_str (severity_name d.severity))
    (json_str d.where) (json_str d.message) d.waived

let json_range ppf (x, (i : I.t)) =
  Format.fprintf ppf "{\"var\":%s,\"lo\":%a,\"hi\":%a}" (json_str x)
    json_bound i.I.lo json_bound i.I.hi

let json_list pp_item ppf l =
  Format.pp_print_string ppf "[";
  List.iteri
    (fun k x ->
      if k > 0 then Format.pp_print_string ppf ",";
      pp_item ppf x)
    l;
  Format.pp_print_string ppf "]"

let pp_json_model ppf r =
  Format.fprintf ppf
    "{\"model\":%s,\"state_bound\":%a,\"errors\":%d,\"warnings\":%d,@,\
     \"ranges\":%a,@,\"diagnostics\":%a}"
    (json_str r.model) json_card r.stats.state_bound (errors r)
    (warnings r)
    (json_list json_range) r.stats.ranges
    (json_list json_diag) r.diags

(* Whole-run JSON document.  Rendered on a plain formatter (no margins),
   so the output is byte-identical across runs and terminal widths. *)
let to_json reports =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf max_int;
  let total f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  Format.fprintf ppf "{\"version\":1,\"errors\":%d,\"warnings\":%d,@,\"models\":%a}"
    (total errors) (total warnings)
    (json_list pp_json_model) reports;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
