(* Interval domain for the static analyses.

   Closed integer intervals [lo, hi] with [min_int]/[max_int] as minus
   and plus infinity.  All arithmetic saturates at the sentinels, so the
   domain is safe for the usual abstract-interpretation transfer
   functions; widening is threshold-based (the thresholds are the integer
   constants of the analysed model), which keeps loop counters guarded by
   [c < k] / [c = k] exits finite instead of blowing straight to
   infinity. *)

type t = { lo : int; hi : int }

let neg_inf = min_int
let pos_inf = max_int
let top = { lo = neg_inf; hi = pos_inf }
let const n = { lo = n; hi = n }
let of_bounds lo hi = { lo; hi }
let bool_top = { lo = 0; hi = 1 }
let of_bool b = const (if b then 1 else 0)
let is_singleton i = i.lo = i.hi
let contains i n = i.lo <= n && n <= i.hi

let equal a b = a.lo = b.lo && a.hi = b.hi

(* --- saturating bound arithmetic --- *)

let is_inf x = x = neg_inf || x = pos_inf

let badd a b =
  if a = neg_inf || b = neg_inf then neg_inf
  else if a = pos_inf || b = pos_inf then pos_inf
  else
    let s = a + b in
    if a > 0 && b > 0 && s < 0 then pos_inf
    else if a < 0 && b < 0 && s >= 0 then neg_inf
    else s

let bneg x = if x = neg_inf then pos_inf else if x = pos_inf then neg_inf else -x
let bsub a b = badd a (bneg b)

let bmul a b =
  if a = 0 || b = 0 then 0
  else
    let sign = (if a < 0 then -1 else 1) * (if b < 0 then -1 else 1) in
    if is_inf a || is_inf b then if sign > 0 then pos_inf else neg_inf
    else if abs a > max_int / abs b then if sign > 0 then pos_inf else neg_inf
    else a * b

(* OCaml integer division (truncation toward zero) on bounds; the
   divisor is known to be finite and nonzero when this is called. *)
let bdiv a b = if is_inf a then if (a > 0) = (b > 0) then pos_inf else neg_inf else a / b

(* --- lattice --- *)

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

(* Threshold widening: a bound that grew jumps to the nearest threshold
   beyond it (or to infinity when none is left).  [thresholds] must be
   sorted ascending. *)
let widen ~thresholds ~old cur =
  let lo =
    if cur.lo >= old.lo then old.lo
    else
      List.fold_left
        (fun acc th -> if th <= cur.lo && th > acc then th else acc)
        neg_inf thresholds
  in
  let hi =
    if cur.hi <= old.hi then old.hi
    else
      List.fold_right
        (fun th acc -> if th >= cur.hi && th < acc then th else acc)
        thresholds pos_inf
  in
  { lo; hi }

(* --- arithmetic transfer functions --- *)

let add a b = { lo = badd a.lo b.lo; hi = badd a.hi b.hi }
let sub a b = { lo = bsub a.lo b.hi; hi = bsub a.hi b.lo }
let neg a = { lo = bneg a.hi; hi = bneg a.lo }

let spread l =
  List.fold_left
    (fun acc x -> { lo = min acc.lo x; hi = max acc.hi x })
    { lo = pos_inf; hi = neg_inf } l

let mul a b =
  spread [ bmul a.lo b.lo; bmul a.lo b.hi; bmul a.hi b.lo; bmul a.hi b.hi ]

let div a b =
  if b.lo <= 0 && b.hi >= 0 then top (* divisor may be zero: give up *)
  else spread [ bdiv a.lo b.lo; bdiv a.lo b.hi; bdiv a.hi b.lo; bdiv a.hi b.hi ]

let min_ a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
let max_ a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }

(* --- three-valued comparison --- *)

type cmp = Lt | Le | Eq | Ge | Gt | Ne

(* [sat c a b] is [Some true] when [a c b] holds for every pair of
   values, [Some false] when it holds for none, [None] otherwise. *)
let rec sat cmp a b =
  match cmp with
  | Lt ->
      if a.hi < b.lo then Some true
      else if a.lo >= b.hi then Some false
      else None
  | Le ->
      if a.hi <= b.lo then Some true
      else if a.lo > b.hi then Some false
      else None
  | Eq ->
      if is_singleton a && is_singleton b && a.lo = b.lo then Some true
      else if a.hi < b.lo || b.hi < a.lo then Some false
      else None
  | Ne -> Option.map not (sat Eq a b)
  | Ge -> sat Le b a
  | Gt -> sat Lt b a

let negate_cmp = function
  | Lt -> Ge
  | Le -> Gt
  | Eq -> Ne
  | Ne -> Eq
  | Ge -> Lt
  | Gt -> Le

(* [refine c a b] assumes [a c b] holds and returns the narrowed pair,
   or [None] when the assumption is contradictory. *)
let rec refine cmp a b =
  match cmp with
  | Le ->
      let a' = { a with hi = min a.hi b.hi }
      and b' = { b with lo = max b.lo a.lo } in
      if a'.lo > a'.hi || b'.lo > b'.hi then None else Some (a', b')
  | Lt ->
      let a' = { a with hi = min a.hi (bsub b.hi 1) }
      and b' = { b with lo = max b.lo (badd a.lo 1) } in
      if a'.lo > a'.hi || b'.lo > b'.hi then None else Some (a', b')
  | Eq -> (
      match meet a b with None -> None | Some m -> Some (m, m))
  | Ne ->
      (* Only endpoint clipping against a singleton is exact. *)
      let clip x k =
        if not (contains x k) then Some x
        else if is_singleton x then None
        else if x.lo = k then Some { x with lo = k + 1 }
        else if x.hi = k then Some { x with hi = k - 1 }
        else Some x
      in
      let a' = if is_singleton b then clip a b.lo else Some a in
      let b' = if is_singleton a then clip b a.lo else Some b in
      Option.bind a' (fun a' -> Option.map (fun b' -> (a', b')) b')
  | Ge -> Option.map (fun (b', a') -> (a', b')) (refine Le b a)
  | Gt -> Option.map (fun (b', a') -> (a', b')) (refine Lt b a)

(* --- cardinalities --- *)

type card = Finite of int | Unbounded

(* Cardinalities saturate to [Unbounded] beyond 10^18: the consumer
   (table pre-sizing) clamps far below that anyway, and staying clear of
   [max_int] keeps the JSON report platform-independent. *)
let card_cap = 1_000_000_000_000_000_000

let width i =
  if is_inf i.lo || is_inf i.hi then Unbounded
  else
    let w = i.hi - i.lo + 1 in
    if w < 0 || w > card_cap then Unbounded else Finite w

let card_mul a b =
  match (a, b) with
  | Finite 0, _ | _, Finite 0 -> Finite 0
  | Unbounded, _ | _, Unbounded -> Unbounded
  | Finite x, Finite y -> if x > card_cap / y then Unbounded else Finite (x * y)

let card_add a b =
  match (a, b) with
  | Unbounded, _ | _, Unbounded -> Unbounded
  | Finite x, Finite y ->
      let s = x + y in
      if s < 0 || s > card_cap then Unbounded else Finite s

let card_pow a n =
  let rec go acc n = if n <= 0 then acc else go (card_mul acc a) (n - 1) in
  go (Finite 1) n

let pp_card ppf = function
  | Finite n -> Format.pp_print_int ppf n
  | Unbounded -> Format.pp_print_string ppf "unbounded"

let pp ppf i =
  let b ppf x =
    if x = neg_inf then Format.pp_print_string ppf "-inf"
    else if x = pos_inf then Format.pp_print_string ppf "+inf"
    else Format.pp_print_int ppf x
  in
  Format.fprintf ppf "[%a, %a]" b i.lo b i.hi
