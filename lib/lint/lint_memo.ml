(* Structural memoisation for the static analyses.

   Verification sweeps (tables, campaigns, benchmarks) rebuild the same
   model at many parameter points and re-run the same analysis on each
   cell: the three requirements of one table cell share a spec, and the
   R2/R3 timed-automata models coincide.  The analyses are pure
   functions of the model term, and both DSLs are closed first-order
   data, so structural equality of the input is exactly the right cache
   key.

   The cache is a bounded most-recent-first association list: sweeps
   revisit a handful of models in tight succession, so a small window
   with O(window) structural comparisons beats hashing the whole model
   term on every call.  A mutex keeps the counters and the window sound
   if a parallel engine ever consults an analysis from a worker domain
   (today all analyses run on the main domain before workers spawn). *)

type ('k, 'v) t = {
  mutable entries : ('k * 'v) list; (* most recent first *)
  cap : int;
  mutable lookups : int;
  mutable hits : int;
  lock : Mutex.t;
}

let create ?(cap = 16) () =
  { entries = []; cap; lookups = 0; hits = 0; lock = Mutex.create () }

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

(* [find t k compute] returns the cached value for [k], computing and
   interning it on a miss.  [compute] runs outside the lock: analyses
   are slow and reentrant lookups (an analysis using another memoised
   analysis) must not deadlock.  A racing duplicate computation is
   harmless — both results are equal, the later one wins the window. *)
let find t key compute =
  let cached =
    Mutex.protect t.lock (fun () ->
        t.lookups <- t.lookups + 1;
        match List.assoc_opt key t.entries with
        | Some v ->
            t.hits <- t.hits + 1;
            Some v
        | None -> None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = compute key in
      Mutex.protect t.lock (fun () ->
          if not (List.mem_assoc key t.entries) then
            t.entries <- take t.cap ((key, v) :: t.entries));
      v

let stats t = Mutex.protect t.lock (fun () -> (t.lookups, t.hits))

let reset t =
  Mutex.protect t.lock (fun () ->
      t.entries <- [];
      t.lookups <- 0;
      t.hits <- 0)
