(* PA typing diagnostics.

   Thin wrapper turning {!Proc.Typing}'s unified sort inference into
   hblint diagnostics.  The heavy lifting — one signature per action and
   per definition, consistent across all occurrences — lives in the proc
   library so the mCRL2 exporter shares it; here each recorded conflict
   becomes an error diagnostic. *)

module R = Lint_report

let code_of_kind = function
  | Proc.Typing.Sort_clash -> "PA-TYPE"
  | Proc.Typing.Arity_conflict -> "PA-ACT-ARITY"
  | Proc.Typing.Unbound_var -> "PA-UNBOUND-VAR"

let check (spec : Proc.Spec.t) : Proc.Typing.signatures * R.diag list =
  let sigs, errors = Proc.Typing.infer spec in
  ( sigs,
    List.map
      (fun (e : Proc.Typing.error) ->
        R.diag ~severity:R.Error
          ~code:(code_of_kind e.Proc.Typing.err_kind)
          ~where:e.Proc.Typing.err_context "%s" e.Proc.Typing.err_message)
      errors )
