(* Namespaced entry point for the (unwrapped) lint library.

   The library is unwrapped so its submodules can refer to the [Proc]
   and [Ta] libraries without shadowing; external code should go through
   [Lint.Pa.analyze] / [Lint.Ta_model.analyze] and friends. *)

module Interval = Lint_interval
module Report = Lint_report
module Types = Lint_types
module Pa = Lint_pa
module Ta_model = Lint_ta
module Memo = Lint_memo
