(* Static analysis of process-algebra specifications.

   Three layers on top of {!Lint_types}' sort inference:

   - structural lints: duplicate/unknown definitions, call arities, empty
     sum ranges, self-communications, hidden tick (mirrors
     [Proc.Spec.validate] without raising), plus call-graph reachability
     (dead definitions), offered-action analysis (communication halves
     that are never offered, allow-set entries nothing can produce, hide
     names outside the allow set) and a may-tick check (a component that
     can never offer [tick] blocks the global clock forever);

   - interval abstract interpretation over definition parameters: a
     worklist fixpoint flowing call-site argument intervals into callee
     parameters, with guard refinement on conditionals, threshold
     widening (thresholds = the model's integer constants), and a sound
     "unit counter" invariant rule for counters guarded by
     [c == lim] exits where [lim] is itself a parameter (see below);

   - a static state-count upper bound derived from the ranges: per
     component, the sum over call-graph-reachable definitions of the
     number of control positions times the product of in-scope variable
     widths; the product over components bounds the interleaved state
     space and is what {!Mc.Pexplore} uses to pre-size its tables.

   The unit-counter rule: if every self-call of a definition either
   passes a parameter pair [(c, e)] through unchanged or increments [c]
   by one inside the else-branch of a condition [c == e], then [c <= e]
   is inductive provided every remaining call site establishes it
   ([hi(c-arg) <= lo(e-arg)] under the computed intervals).  Candidates
   are detected syntactically, assumed during the fixpoint (clamping
   [hi(c)] to [hi(e)]), and verified afterwards; failed candidates are
   dropped and the fixpoint rerun without them. *)

module P = Proc.Pexpr
module T = Proc.Term
module S = Proc.Spec
module I = Lint_interval
module R = Lint_report

module SSet = Set.Make (String)
module SMap = Map.Make (String)

let where_def name = "definition " ^ name
let where_init name = "initial component " ^ name

(* --- model constants (widening thresholds) -------------------------- *)

let rec expr_consts acc (e : P.t) =
  match e with
  | P.Const (Proc.Value.Int n) -> n :: acc
  | P.Const (Proc.Value.Bool _) -> acc
  | P.Const (Proc.Value.List l) ->
      List.fold_left
        (fun acc v ->
          match v with Proc.Value.Int n -> n :: acc | _ -> acc)
        acc l
  | P.Var _ -> acc
  | P.Add (a, b) | P.Sub (a, b) | P.Mul (a, b) | P.Div (a, b)
  | P.Eq (a, b) | P.Lt (a, b) | P.Le (a, b) | P.And (a, b) | P.Or (a, b)
  | P.Nth (a, b) | P.Repl (a, b) ->
      expr_consts (expr_consts acc a) b
  | P.Not a | P.Min_list a | P.Len a -> expr_consts acc a
  | P.If (a, b, c) | P.Set_nth (a, b, c) ->
      expr_consts (expr_consts (expr_consts acc a) b) c

let rec term_consts acc (t : T.t) =
  match t with
  | T.Nil -> acc
  | T.Prefix (a, p) ->
      term_consts (List.fold_left expr_consts acc a.T.act_args) p
  | T.Choice ps -> List.fold_left term_consts acc ps
  | T.Sum (_, lo, hi, p) -> term_consts (lo :: hi :: acc) p
  | T.Cond (c, p, q) -> term_consts (term_consts (expr_consts acc c) p) q
  | T.Call (_, args) -> List.fold_left expr_consts acc args

let thresholds_of (spec : S.t) =
  let acc =
    List.fold_left (fun acc (d : T.def) -> term_consts acc d.T.body) [ 0; 1 ]
      spec.S.defs
  in
  let acc =
    List.fold_left
      (fun acc (_, vs) ->
        List.fold_left
          (fun acc v ->
            match v with Proc.Value.Int n -> n :: acc | _ -> acc)
          acc vs)
      acc spec.S.init
  in
  List.sort_uniq compare acc

(* --- structural lints ----------------------------------------------- *)

let structural (spec : S.t) : R.diag list =
  let diags = ref [] in
  let err ~code ~where fmt =
    Format.kasprintf
      (fun m -> diags := R.diag ~severity:R.Error ~code ~where "%s" m :: !diags)
      fmt
  in
  let table = Hashtbl.create 16 in
  List.iter
    (fun (d : T.def) ->
      if Hashtbl.mem table d.T.def_name then
        err ~code:"PA-DUP-DEF" ~where:(where_def d.T.def_name)
          "definition %s is declared more than once" d.T.def_name
      else Hashtbl.add table d.T.def_name (List.length d.T.params))
    spec.S.defs;
  let check_call where name arity =
    match Hashtbl.find_opt table name with
    | None ->
        err ~code:"PA-UNDEF" ~where "call of unknown definition %s" name
    | Some n ->
        if n <> arity then
          err ~code:"PA-ARITY" ~where "%s expects %d argument(s), got %d" name
            n arity
  in
  List.iter
    (fun (name, args) ->
      check_call (where_init name) name (List.length args))
    spec.S.init;
  let rec check_term where (t : T.t) =
    match t with
    | T.Nil -> ()
    | T.Prefix (_, p) -> check_term where p
    | T.Choice ps -> List.iter (check_term where) ps
    | T.Sum (x, lo, hi, p) ->
        if lo > hi then
          err ~code:"PA-SUM-EMPTY" ~where "sum over %s has empty range [%d..%d]"
            x lo hi;
        check_term where p
    | T.Cond (_, p, q) ->
        check_term where p;
        check_term where q
    | T.Call (name, args) -> check_call where name (List.length args)
  in
  List.iter
    (fun (d : T.def) -> check_term (where_def d.T.def_name) d.T.body)
    spec.S.defs;
  List.iter
    (fun (s, r, c) ->
      if s = r then
        err ~code:"PA-COMM-SELF"
          ~where:(Printf.sprintf "communication %s" c)
          "action %s communicates with itself" s)
    spec.S.comms;
  if List.mem S.tick_name spec.S.hide then
    err ~code:"PA-HIDE-TICK" ~where:"hide set"
      "the global clock action %s cannot be hidden" S.tick_name;
  List.rev !diags

(* --- call graph ------------------------------------------------------ *)

let def_table (spec : S.t) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : T.def) ->
      if not (Hashtbl.mem tbl d.T.def_name) then
        Hashtbl.add tbl d.T.def_name d)
    spec.S.defs;
  tbl

let rec callees acc (t : T.t) =
  match t with
  | T.Nil -> acc
  | T.Prefix (_, p) -> callees acc p
  | T.Choice ps -> List.fold_left callees acc ps
  | T.Sum (_, _, _, p) -> callees acc p
  | T.Cond (_, p, q) -> callees (callees acc p) q
  | T.Call (name, _) -> SSet.add name acc

let reachable_from defs roots =
  let seen = ref SSet.empty in
  let rec go name =
    if not (SSet.mem name !seen) then begin
      seen := SSet.add name !seen;
      match Hashtbl.find_opt defs name with
      | None -> ()
      | Some (d : T.def) -> SSet.iter go (callees SSet.empty d.T.body)
    end
  in
  List.iter go roots;
  !seen

(* --- offered actions -------------------------------------------------- *)

let rec offered acc (t : T.t) =
  match t with
  | T.Nil | T.Call _ -> acc
  | T.Prefix (a, p) -> offered (SSet.add a.T.act_name acc) p
  | T.Choice ps -> List.fold_left offered acc ps
  | T.Sum (_, _, _, p) | T.Cond (_, p, T.Nil) -> offered acc p
  | T.Cond (_, p, q) -> offered (offered acc p) q

let offered_by defs names =
  SSet.fold
    (fun name acc ->
      match Hashtbl.find_opt defs name with
      | None -> acc
      | Some (d : T.def) -> offered acc d.T.body)
    names SSet.empty

let liveness (spec : S.t) defs : R.diag list =
  let diags = ref [] in
  let warn ~code ~where fmt =
    Format.kasprintf
      (fun m -> diags := R.diag ~severity:R.Warning ~code ~where "%s" m :: !diags)
      fmt
  in
  let roots = List.map fst spec.S.init in
  let reach = reachable_from defs roots in
  List.iter
    (fun (d : T.def) ->
      if not (SSet.mem d.T.def_name reach) then
        warn ~code:"PA-DEAD-DEF" ~where:(where_def d.T.def_name)
          "definition %s is not reachable from any initial component"
          d.T.def_name)
    spec.S.defs;
  let offers = offered_by defs reach in
  let has = Fun.flip SSet.mem offers in
  List.iter
    (fun (s, r, c) ->
      if not (has s) then
        warn ~code:"PA-COMM-DEAD"
          ~where:(Printf.sprintf "communication %s" c)
          "send half %s is never offered by a reachable process" s;
      if not (has r) then
        warn ~code:"PA-COMM-DEAD"
          ~where:(Printf.sprintf "communication %s" c)
          "receive half %s is never offered by a reachable process" r)
    spec.S.comms;
  (* Communication halves never fire on their own (the allow set blocks
     them), so an allow entry is producible either as the result of a
     communication whose halves are both offered, or as a directly
     offered action that is not a communication half. *)
  let halves =
    List.fold_left
      (fun acc (s, r, _) -> SSet.add s (SSet.add r acc))
      SSet.empty spec.S.comms
  in
  let producible a =
    List.exists (fun (s, r, c) -> c = a && has s && has r) spec.S.comms
    || (has a && not (SSet.mem a halves))
  in
  List.iter
    (fun a ->
      if not (producible a) then
        warn ~code:"PA-ALLOW-DEAD"
          ~where:(Printf.sprintf "allow entry %s" a)
          "allowed action %s can never be produced" a)
    spec.S.allow;
  List.iter
    (fun h ->
      if not (List.mem h spec.S.allow) then
        warn ~code:"PA-HIDE-DEAD"
          ~where:(Printf.sprintf "hide entry %s" h)
          "hidden action %s is not in the allow set" h
      else if not (producible h) then
        warn ~code:"PA-HIDE-DEAD"
          ~where:(Printf.sprintf "hide entry %s" h)
          "hidden action %s can never be produced" h)
    spec.S.hide;
  (* A component whose reachable definitions never offer tick blocks the
     globally synchronised clock forever. *)
  let global_ticks = SSet.mem S.tick_name offers in
  if global_ticks then
    List.iter
      (fun (name, _) ->
        let mine = offered_by defs (reachable_from defs [ name ]) in
        if not (SSet.mem S.tick_name mine) then
          warn ~code:"PA-NO-TICK" ~where:(where_init name)
            "component %s can never offer %s; the global clock is blocked \
             once its alternatives run out"
            name S.tick_name)
      spec.S.init;
  List.rev !diags

(* --- interval analysis ----------------------------------------------- *)

type aval = Num of I.t | Lst

let to_num = function Num i -> i | Lst -> I.top

let join_aval a b =
  match (a, b) with
  | Num x, Num y -> Num (I.join x y)
  | Lst, _ | _, Lst -> Lst

let widen_aval ~thresholds ~old cur =
  match (old, cur) with
  | Num o, Num c -> Num (I.widen ~thresholds ~old:o c)
  | _ -> Lst

let equal_aval a b =
  match (a, b) with
  | Num x, Num y -> I.equal x y
  | Lst, Lst -> true
  | _ -> false

let aval_of_value = function
  | Proc.Value.Int n -> Num (I.const n)
  | Proc.Value.Bool b -> Num (I.of_bool b)
  | Proc.Value.List _ -> Lst

type env = aval SMap.t

let lookup env x =
  match SMap.find_opt x env with Some v -> v | None -> Num I.top

let rec eval (env : env) (e : P.t) : aval =
  let num e = to_num (eval env e) in
  match e with
  | P.Const v -> aval_of_value v
  | P.Var x -> lookup env x
  | P.Add (a, b) -> Num (I.add (num a) (num b))
  | P.Sub (a, b) -> Num (I.sub (num a) (num b))
  | P.Mul (a, b) -> Num (I.mul (num a) (num b))
  | P.Div (a, b) -> Num (I.div (num a) (num b))
  | P.Eq _ | P.Lt _ | P.Le _ | P.And _ | P.Or _ | P.Not _ -> (
      match bool_eval env e with
      | Some b -> Num (I.of_bool b)
      | None -> Num I.bool_top)
  | P.If (c, a, b) -> (
      match bool_eval env c with
      | Some true -> eval_refined env c true a
      | Some false -> eval_refined env c false b
      | None -> (
          let va = Option.map (fun env -> eval env a) (refine env c true) in
          let vb = Option.map (fun env -> eval env b) (refine env c false) in
          match (va, vb) with
          | Some x, Some y -> join_aval x y
          | Some x, None | None, Some x -> x
          | None, None -> Num I.top))
  | P.Nth _ | P.Min_list _ -> Num I.top
  | P.Len _ -> Num (I.of_bounds 0 I.pos_inf)
  | P.Set_nth _ | P.Repl _ -> Lst

and eval_refined env c truth e =
  match refine env c truth with
  | Some env' -> eval env' e
  | None -> eval env e

and bool_eval (env : env) (e : P.t) : bool option =
  match e with
  | P.Const (Proc.Value.Bool b) -> Some b
  | P.Var _ -> (
      match eval env e with
      | Num i ->
          if I.equal i (I.of_bool true) then Some true
          else if I.equal i (I.of_bool false) then Some false
          else None
      | Lst -> None)
  | P.Eq (a, b) -> cmp_eval env I.Eq a b
  | P.Lt (a, b) -> cmp_eval env I.Lt a b
  | P.Le (a, b) -> cmp_eval env I.Le a b
  | P.And (a, b) -> (
      match (bool_eval env a, bool_eval env b) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | P.Or (a, b) -> (
      match (bool_eval env a, bool_eval env b) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)
  | P.Not a -> Option.map not (bool_eval env a)
  | P.If (c, a, b) -> (
      match bool_eval env c with
      | Some true -> bool_eval env a
      | Some false -> bool_eval env b
      | None -> (
          match (bool_eval env a, bool_eval env b) with
          | Some x, Some y when x = y -> Some x
          | _ -> None))
  | _ -> None

and cmp_eval env cmp a b =
  match (eval env a, eval env b) with
  | Num ia, Num ib -> I.sat cmp ia ib
  | _ -> None

(* [refine env c truth] narrows variable intervals assuming the condition
   [c] has truth value [truth]; [None] means the assumption is
   contradictory (the branch is unreachable). *)
and refine (env : env) (c : P.t) (truth : bool) : env option =
  let refine_cmp cmp a b =
    match (eval env a, eval env b) with
    | Num ia, Num ib -> (
        let cmp = if truth then cmp else I.negate_cmp cmp in
        match I.refine cmp ia ib with
        | None -> None
        | Some (ia', ib') ->
            let set e v env =
              match e with P.Var x -> SMap.add x (Num v) env | _ -> env
            in
            Some (set a ia' (set b ib' env)))
    | _ -> Some env
  in
  match c with
  | P.Const (Proc.Value.Bool b) -> if b = truth then Some env else None
  | P.Var x -> (
      match lookup env x with
      | Num i -> (
          match I.meet i (I.of_bool truth) with
          | None -> None
          | Some i' -> Some (SMap.add x (Num i') env))
      | Lst -> Some env)
  | P.Eq (a, b) -> refine_cmp I.Eq a b
  | P.Lt (a, b) -> refine_cmp I.Lt a b
  | P.Le (a, b) -> refine_cmp I.Le a b
  | P.And (a, b) when truth ->
      Option.bind (refine env a true) (fun env -> refine env b true)
  | P.Or (a, b) when not truth ->
      Option.bind (refine env a false) (fun env -> refine env b false)
  | P.Not a -> refine env a (not truth)
  | _ -> Some env

(* --- unit-counter candidates ------------------------------------------ *)

type candidate = { cand_def : string; ic : int; ie : int }

let index_of x params =
  let rec go k = function
    | [] -> None
    | p :: _ when p = x -> Some k
    | _ :: rest -> go (k + 1) rest
  in
  go 0 params

let is_increment_of c (e : P.t) =
  match e with
  | P.Add (P.Var x, P.Const (Proc.Value.Int 1))
  | P.Add (P.Const (Proc.Value.Int 1), P.Var x) ->
      x = c
  | _ -> false

(* Does [t] contain a self-call of [d] incrementing [c] and passing [e]
   through?  (No deeper [Cond] may rebind anything — params can't be
   rebound, only [Sum] shadows, which disqualifies.) *)
let rec has_increment_call dname c e shadowed (t : T.t) =
  match t with
  | T.Nil -> false
  | T.Prefix (_, p) -> has_increment_call dname c e shadowed p
  | T.Choice ps -> List.exists (has_increment_call dname c e shadowed) ps
  | T.Sum (x, _, _, p) ->
      has_increment_call dname c e (SSet.add x shadowed) p
  | T.Cond (_, p, q) ->
      has_increment_call dname c e shadowed p
      || has_increment_call dname c e shadowed q
  | T.Call (name, args) ->
      name = dname
      && (not (SSet.mem c shadowed))
      && (not (SSet.mem e shadowed))
      && List.exists (is_increment_of c) args

let candidates_of (d : T.def) : candidate list =
  let try_pair c e =
    match (index_of c d.T.params, index_of e d.T.params) with
    | Some ic, Some ie when ic <> ie ->
        let rec scan (t : T.t) =
          match t with
          | T.Nil | T.Call _ -> false
          | T.Prefix (_, p) -> scan p
          | T.Choice ps -> List.exists scan ps
          | T.Sum (_, _, _, p) -> scan p
          | T.Cond (P.Eq (P.Var a, P.Var b), p, q)
            when (a = c && b = e) || (a = e && b = c) ->
              has_increment_call d.T.def_name c e SSet.empty q || scan p
          | T.Cond (_, p, q) -> scan p || scan q
        in
        if scan d.T.body then Some { cand_def = d.T.def_name; ic; ie }
        else None
    | _ -> None
  in
  List.concat_map
    (fun c ->
      List.filter_map
        (fun e -> if c = e then None else try_pair c e)
        d.T.params)
    d.T.params

(* --- the fixpoint ----------------------------------------------------- *)

(* Plain joins for the first few updates of a definition, threshold
   widening afterwards: precise on shallow chains, terminating on
   counters. *)
let widen_delay = 3

type fix_state = {
  mutable params : aval array SMap.t;  (* absent = unreached *)
  mutable updates : int SMap.t;
}

let clamp_for candidates dname (avals : aval array) =
  List.iter
    (fun cand ->
      if cand.cand_def = dname then
        match (avals.(cand.ic), avals.(cand.ie)) with
        | Num c, Num e ->
            let c' = { c with I.hi = min c.I.hi e.I.hi } in
            if c'.I.lo <= c'.I.hi then avals.(cand.ic) <- Num c'
        | _ -> ())
    candidates

(* Walk a definition body under [env], invoking [on_call] at every call
   site with the callee, evaluated arguments, and whether the site is an
   exempt unit-counter increment (inside the else of its [c == e]).
   [exempt] maps def name -> (c, e) pairs currently justified. *)
let walk_body defs candidates ~on_call (d : T.def) (env0 : env) =
  let my_cands =
    List.filter_map
      (fun cand ->
        if cand.cand_def = d.T.def_name then
          Some
            ( List.nth d.T.params cand.ic,
              List.nth d.T.params cand.ie,
              cand )
        else None)
      candidates
  in
  let rec walk env active (t : T.t) =
    match t with
    | T.Nil -> ()
    | T.Prefix (a, p) ->
        List.iter (fun e -> ignore (eval env e)) a.T.act_args;
        walk env active p
    | T.Choice ps -> List.iter (walk env active) ps
    | T.Sum (x, lo, hi, p) ->
        if lo <= hi then
          let active =
            List.filter (fun (c, e, _) -> c <> x && e <> x) active
          in
          walk (SMap.add x (Num (I.of_bounds lo hi)) env) active p
    | T.Cond (c, p, q) ->
        (match refine env c true with
        | Some env' -> walk env' active p
        | None -> ());
        (match refine env c false with
        | Some env' ->
            let active' =
              match c with
              | P.Eq (P.Var a, P.Var b) ->
                  List.fold_left
                    (fun acc (cn, en, cand) ->
                      if (a = cn && b = en) || (a = en && b = cn) then
                        (cn, en, cand) :: acc
                      else acc)
                    active my_cands
              | _ -> active
            in
            walk env' active' q
        | None -> ())
    | T.Call (name, args) ->
        if Hashtbl.mem defs name then begin
          let avals = List.map (eval env) args in
          let exempt =
            name = d.T.def_name
            && List.exists
                 (fun (cn, en, cand) ->
                   (match List.nth_opt args cand.ic with
                   | Some a -> is_increment_of cn a
                   | None -> false)
                   && match List.nth_opt args cand.ie with
                      | Some (P.Var y) -> y = en
                      | _ -> false)
                 active
          in
          let identity =
            name = d.T.def_name
            && List.length args = List.length d.T.params
            && List.for_all2
                 (fun p a -> match a with P.Var x -> x = p | _ -> false)
                 d.T.params args
          in
          on_call ~callee:name ~avals ~exempt ~identity
        end
  in
  walk env0 [] d.T.body

let fixpoint (spec : S.t) defs candidates thresholds : aval array SMap.t =
  let st = { params = SMap.empty; updates = SMap.empty } in
  let queue = Queue.create () in
  let queued = Hashtbl.create 16 in
  let enqueue name =
    if not (Hashtbl.mem queued name) then begin
      Hashtbl.add queued name ();
      Queue.add name queue
    end
  in
  let flow name (avals : aval list) =
    match Hashtbl.find_opt defs name with
    | None -> ()
    | Some (d : T.def) ->
        let arity = List.length d.T.params in
        let incoming = Array.make arity (Num I.top) in
        List.iteri (fun k v -> if k < arity then incoming.(k) <- v) avals;
        (* Arity mismatches are structural errors; missing positions
           default to top so the analysis stays sound. *)
        if List.length avals < arity then
          for k = List.length avals to arity - 1 do
            incoming.(k) <- Num I.top
          done;
        clamp_for candidates name incoming;
        (match SMap.find_opt name st.params with
        | None ->
            st.params <- SMap.add name incoming st.params;
            enqueue name
        | Some cur ->
            let n = match SMap.find_opt name st.updates with
              | Some n -> n
              | None -> 0
            in
            let joined = Array.map2 join_aval cur incoming in
            let next =
              if n < widen_delay then joined
              else
                Array.map2
                  (fun old j -> widen_aval ~thresholds ~old j)
                  cur joined
            in
            clamp_for candidates name next;
            if not (Array.for_all2 equal_aval cur next) then begin
              st.params <- SMap.add name next st.params;
              st.updates <- SMap.add name (n + 1) st.updates;
              enqueue name
            end)
  in
  List.iter
    (fun (name, values) -> flow name (List.map aval_of_value values))
    spec.S.init;
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    Hashtbl.remove queued name;
    match (Hashtbl.find_opt defs name, SMap.find_opt name st.params) with
    | Some d, Some avals ->
        let env0 =
          List.fold_left
            (fun (env, k) p -> (SMap.add p avals.(k) env, k + 1))
            (SMap.empty, 0) d.T.params
          |> fst
        in
        walk_body defs candidates d env0
          ~on_call:(fun ~callee ~avals ~exempt:_ ~identity:_ ->
            flow callee avals)
    | _ -> ()
  done;
  st.params

(* Post-fixpoint check of the unit-counter invariants: every call site
   that is neither an exempt increment nor a parameter-identity self-call
   must establish [hi(c-arg) <= lo(e-arg)]. *)
let verify_candidates (spec : S.t) defs candidates thresholds state =
  let ok = Hashtbl.create 4 in
  List.iter (fun c -> Hashtbl.replace ok c true) candidates;
  let check_site callee (avals : aval list) ~exempt ~identity =
    List.iter
      (fun cand ->
        if cand.cand_def = callee && not (exempt || identity) then
          let get k =
            match List.nth_opt avals k with
            | Some v -> to_num v
            | None -> I.top
          in
          let c = get cand.ic and e = get cand.ie in
          if c.I.hi > e.I.lo then Hashtbl.replace ok cand false)
      candidates
  in
  List.iter
    (fun (name, values) ->
      check_site name
        (List.map aval_of_value values)
        ~exempt:false ~identity:false)
    spec.S.init;
  SMap.iter
    (fun name avals ->
      match Hashtbl.find_opt defs name with
      | None -> ()
      | Some (d : T.def) ->
          let env0 =
            List.fold_left
              (fun (env, k) p -> (SMap.add p avals.(k) env, k + 1))
              (SMap.empty, 0) d.T.params
            |> fst
          in
          walk_body defs candidates d env0
            ~on_call:(fun ~callee ~avals ~exempt ~identity ->
              check_site callee avals ~exempt ~identity))
    state;
  ignore thresholds;
  List.filter (fun c -> Hashtbl.find ok c) candidates

let analyze_intervals (spec : S.t) defs thresholds =
  let all_candidates =
    List.concat_map
      (fun (d : T.def) ->
        if Hashtbl.mem defs d.T.def_name then candidates_of d else [])
      spec.S.defs
  in
  let rec stable candidates =
    let state = fixpoint spec defs candidates thresholds in
    let kept = verify_candidates spec defs candidates thresholds state in
    if List.length kept = List.length candidates then (state, candidates)
    else stable kept
  in
  stable all_candidates

(* --- state bound ------------------------------------------------------ *)

(* Control positions of a definition body: the entry point plus every
   prefix continuation that is not a call (calls normalise away to the
   callee's entry).  A position's environment is the definition's
   parameters plus the sum variables in scope, so each position
   contributes the product of their widths. *)
let def_card (d : T.def) (avals : aval array) : I.card =
  let param_product =
    Array.fold_left
      (fun acc v -> I.card_mul acc (I.width (to_num v)))
      (I.Finite 1) avals
  in
  let rec positions mult (t : T.t) : I.card =
    match t with
    | T.Nil | T.Call _ -> I.Finite 0
    | T.Prefix (_, p) ->
        let rest = positions mult p in
        let here =
          match p with T.Call _ -> I.Finite 0 | _ -> mult
        in
        I.card_add here rest
    | T.Choice ps ->
        List.fold_left
          (fun acc p -> I.card_add acc (positions mult p))
          (I.Finite 0) ps
    | T.Sum (_, lo, hi, p) ->
        if lo > hi then I.Finite 0
        else positions (I.card_mul mult (I.Finite (hi - lo + 1))) p
    | T.Cond (_, p, q) -> I.card_add (positions mult p) (positions mult q)
  in
  I.card_mul param_product
    (I.card_add (I.Finite 1) (positions (I.Finite 1) d.T.body))

let state_bound (spec : S.t) defs state : I.card =
  List.fold_left
    (fun acc (name, _) ->
      let reach = reachable_from defs [ name ] in
      let component =
        SSet.fold
          (fun dname acc ->
            match
              (Hashtbl.find_opt defs dname, SMap.find_opt dname state)
            with
            | Some d, Some avals -> I.card_add acc (def_card d avals)
            | Some _, None -> acc (* abstractly unreachable *)
            | None, _ -> acc)
          reach (I.Finite 0)
      in
      I.card_mul acc component)
    (I.Finite 1) spec.S.init

(* --- entry points ----------------------------------------------------- *)

(* Range analysis + state bound only: what {!Heartbeat.Pa_verify} calls
   to pre-size the explorer tables without paying for diagnostics. *)
let static_bound (spec : S.t) : I.card =
  let defs = def_table spec in
  let thresholds = thresholds_of spec in
  let state, _ = analyze_intervals spec defs thresholds in
  state_bound spec defs state

(* Sweeps call [static_bound] once per table cell but build the same
   spec for all three requirements of the cell (and often for several
   cells): memoised on the spec term. *)
let bound_memo : (S.t, I.card) Lint_memo.t = Lint_memo.create ()
let static_bound_cached spec = Lint_memo.find bound_memo spec static_bound
let cache_stats () = Lint_memo.stats bound_memo

(* The final parameter intervals alone (no diagnostics, no bound): what
   the slicer's constant-propagation pass consumes. *)
let intervals_of (spec : S.t) : aval array SMap.t =
  let defs = def_table spec in
  let state, _ = analyze_intervals spec defs (thresholds_of spec) in
  state

let analyze ~model (spec : S.t) : R.t =
  let _sigs, type_diags = Lint_types.check spec in
  let structural_diags = structural spec in
  let defs = def_table spec in
  let live_diags = liveness spec defs in
  let thresholds = thresholds_of spec in
  let state, _candidates = analyze_intervals spec defs thresholds in
  let ranges =
    SMap.fold
      (fun name avals acc ->
        match Hashtbl.find_opt defs name with
        | None -> acc
        | Some (d : T.def) ->
            List.fold_left
              (fun (acc, k) p ->
                let acc =
                  match avals.(k) with
                  | Num i -> ((name ^ "." ^ p, i) :: acc, k + 1) |> fst
                  | Lst -> acc
                in
                (acc, k + 1))
              (acc, 0) d.T.params
            |> fst)
      state []
  in
  let bound = state_bound spec defs state in
  R.make ~model
    ~diags:(type_diags @ structural_diags @ live_diags)
    ~stats:{ R.ranges; state_bound = bound }
