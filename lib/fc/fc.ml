(* The Fontana-Cleaveland benchmark workload: five classic timed
   verification benchmarks, each exercising a dense-time feature the
   discrete engine cannot express (strict guards, urgent locations,
   broadcast synchronisation), rebuilt inside the zone fragment. *)

module M = Ta.Model
module E = Ta.Expr
module S = Ta.Semantics

type spec = {
  fc_name : string;
  model : M.t;
  forbid : (string * string) list list;
  safe : bool;
}

let clk name cap = { M.clock_name = name; cap }

(* --- Fischer's protocol --------------------------------------------- *)

(* The textbook timing argument: a process may enter the critical
   section only after waiting *strictly* longer than any competitor
   could take to publish its claim.  The strict [x > k] is load-bearing:
   weaken it to [x >= k] and two processes can race through the
   boundary instant (the [fischer-broken] entry below). *)
let fischer_with ~strict ~n ~k =
  let proc pid =
    let x = Printf.sprintf "x%d" pid in
    let cs_guard =
      let age = if strict then E.(clk x > i k) else E.(clk x >= i k) in
      E.(age && v "id" = i pid)
    in
    {
      M.auto_name = Printf.sprintf "P%d" pid;
      locations =
        [
          M.loc "Idle";
          M.loc ~invariant:E.(clk x <= i k) "Try";
          M.loc "Wait";
          M.loc "CS";
        ];
      edges =
        [
          M.edge ~src:"Idle" ~dst:"Try"
            ~guard:E.(v "id" = i 0)
            ~updates:[ M.Reset x ] ~act:"try" ();
          M.edge ~src:"Try" ~dst:"Wait"
            ~guard:E.(clk x <= i k)
            ~updates:[ M.Assign (M.Scalar "id", E.i pid); M.Reset x ]
            ~act:"claim" ();
          M.edge ~src:"Wait" ~dst:"CS" ~guard:cs_guard ~act:"enter" ();
          M.edge ~src:"Wait" ~dst:"Idle"
            ~guard:E.(v "id" = i 0)
            ~act:"retry" ();
          M.edge ~src:"CS" ~dst:"Idle"
            ~updates:[ M.Assign (M.Scalar "id", E.i 0) ]
            ~act:"leave" ();
        ];
      init_loc = "Idle";
    }
  in
  {
    M.vars = [ M.scalar "id" 0 ];
    clocks = List.init n (fun i -> clk (Printf.sprintf "x%d" (i + 1)) (k + 2));
    chans = [];
    automata = List.init n (fun i -> proc (i + 1));
  }

let fischer ?(n = 2) ?(k = 2) () = fischer_with ~strict:true ~n ~k

let mutex_pairs n =
  let cs = List.init n (fun i -> Printf.sprintf "P%d" (i + 1)) in
  List.concat_map
    (fun a -> List.filter_map (fun b -> if a < b then Some [ (a, "CS"); (b, "CS") ] else None) cs)
    cs

let fischer_spec ?(n = 2) ?(k = 2) () =
  {
    fc_name = "fischer";
    model = fischer ~n ~k ();
    forbid = mutex_pairs n;
    safe = true;
  }

let fischer_broken_spec =
  {
    fc_name = "fischer-broken";
    model = fischer_with ~strict:false ~n:2 ~k:2;
    forbid = mutex_pairs 2;
    safe = false;
  }

(* --- CSMA/CD -------------------------------------------------------- *)

(* Two stations on a shared bus; propagation delay sigma = 1, frame
   time lambda = 3.  A station beginning within sigma of another causes
   a collision, which the bus broadcasts ([cd]) to knock both back to
   retry.  The safety property is the bus's [Error] location: a frame
   completing within the propagation window ([end] with [y < 1]) is
   impossible because lambda > sigma. *)
let csma_model =
  let station i =
    let x = Printf.sprintf "x%d" i in
    {
      M.auto_name = Printf.sprintf "S%d" i;
      locations =
        [
          M.loc "Wait";
          M.loc ~invariant:E.(clk x <= i 3) "Transmit";
          M.loc "Retry";
        ];
      edges =
        [
          M.edge ~src:"Wait" ~dst:"Transmit" ~sync:(M.Send "begin")
            ~updates:[ M.Reset x ] ~act:"start" ();
          M.edge ~src:"Transmit" ~dst:"Wait"
            ~guard:E.(clk x >= i 3)
            ~sync:(M.Send "end") ~act:"finish" ();
          M.edge ~src:"Transmit" ~dst:"Retry" ~sync:(M.Recv "cd")
            ~updates:[ M.Reset x ] ~act:"backoff" ();
          M.edge ~src:"Wait" ~dst:"Wait" ~sync:(M.Recv "cd") ~act:"heard" ();
          M.edge ~src:"Retry" ~dst:"Transmit"
            ~guard:E.(clk x >= i 1)
            ~sync:(M.Send "begin") ~updates:[ M.Reset x ] ~act:"restart" ();
        ];
      init_loc = "Wait";
    }
  in
  let bus =
    {
      M.auto_name = "Bus";
      locations =
        [
          M.loc "Idle";
          M.loc "Active";
          M.loc ~invariant:E.(clk "y" < i 1) "Collision";
          M.loc "Error";
        ];
      edges =
        [
          M.edge ~src:"Idle" ~dst:"Active" ~sync:(M.Recv "begin")
            ~updates:[ M.Reset "y" ] ~act:"carrier" ();
          M.edge ~src:"Active" ~dst:"Idle"
            ~guard:E.(clk "y" >= i 1)
            ~sync:(M.Recv "end") ~act:"clear" ();
          M.edge ~src:"Active" ~dst:"Error"
            ~guard:E.(clk "y" < i 1)
            ~sync:(M.Recv "end") ~act:"impossible" ();
          M.edge ~src:"Active" ~dst:"Collision"
            ~guard:E.(clk "y" < i 1)
            ~sync:(M.Recv "begin") ~updates:[ M.Reset "y" ] ~act:"clash" ();
          M.edge ~src:"Collision" ~dst:"Idle"
            ~guard:E.(clk "y" < i 1)
            ~sync:(M.Send "cd") ~act:"jam" ();
        ];
      init_loc = "Idle";
    }
  in
  {
    M.vars = [];
    clocks = [ clk "x1" 5; clk "x2" 5; clk "y" 5 ];
    chans = [ M.chan "begin"; M.chan "end"; M.chan ~broadcast:true "cd" ];
    automata = [ station 1; station 2; bus ];
  }

let csma_spec =
  { fc_name = "csma"; model = csma_model; forbid = [ [ ("Bus", "Error") ] ]; safe = true }

(* --- FDDI token ring ------------------------------------------------ *)

(* Two stations passing a token; each holds it for synchronous traffic
   between 2 (strict) and 4 time units.  Single-token integrity: the
   stations are never both in [Sync]. *)
let fddi_model =
  let station i ~tin ~tout ~init =
    let x = Printf.sprintf "x%d" i in
    {
      M.auto_name = Printf.sprintf "S%d" i;
      locations = [ M.loc "Idle"; M.loc ~invariant:E.(clk x <= i 4) "Sync" ];
      edges =
        [
          M.edge ~src:"Idle" ~dst:"Sync" ~sync:(M.Recv tin)
            ~updates:[ M.Reset x ] ~act:"take" ();
          M.edge ~src:"Sync" ~dst:"Idle"
            ~guard:E.(clk x > i 2)
            ~sync:(M.Send tout) ~act:"pass" ();
        ];
      init_loc = init;
    }
  in
  {
    M.vars = [];
    clocks = [ clk "x1" 6; clk "x2" 6 ];
    chans = [ M.chan "tok1"; M.chan "tok2" ];
    automata =
      [
        station 1 ~tin:"tok1" ~tout:"tok2" ~init:"Sync";
        station 2 ~tin:"tok2" ~tout:"tok1" ~init:"Idle";
      ];
  }

let fddi_spec =
  {
    fc_name = "fddi";
    model = fddi_model;
    forbid = [ [ ("S1", "Sync"); ("S2", "Sync") ] ];
    safe = true;
  }

(* --- generalized railroad crossing ---------------------------------- *)

(* Two trains, a gate, and a counting controller.  A train reaches the
   crossing strictly more than 2 time units after announcing itself;
   the controller commands the gate down within 1, and the gate
   completes within 1 more — so the gate is always [Down] before any
   train is [In].  The controller's decision locations are urgent:
   command latency is queueing, never idling. *)
let grc_model =
  let train i =
    let x = Printf.sprintf "x%d" i in
    {
      M.auto_name = Printf.sprintf "Train%d" i;
      locations =
        [
          M.loc "Far";
          M.loc ~invariant:E.(clk x <= i 5) "Near";
          M.loc ~invariant:E.(clk x <= i 5) "In";
        ];
      edges =
        [
          M.edge ~src:"Far" ~dst:"Near" ~sync:(M.Send "approach")
            ~updates:[ M.Reset x ] ~act:"approach" ();
          M.edge ~src:"Near" ~dst:"In"
            ~guard:E.(clk x > i 2)
            ~act:"enter" ();
          M.edge ~src:"In" ~dst:"Far"
            ~guard:E.(clk x >= i 3)
            ~sync:(M.Send "exit") ~act:"exit" ();
        ];
      init_loc = "Far";
    }
  in
  let gate =
    {
      M.auto_name = "Gate";
      locations =
        [
          M.loc "Up";
          M.loc ~invariant:E.(clk "y" <= i 1) "Lowering";
          M.loc "Down";
          M.loc ~invariant:E.(clk "y" <= i 2) "Raising";
        ];
      edges =
        [
          M.edge ~src:"Up" ~dst:"Lowering" ~sync:(M.Recv "lower")
            ~updates:[ M.Reset "y" ] ~act:"lowering" ();
          M.edge ~src:"Lowering" ~dst:"Down" ~act:"down" ();
          M.edge ~src:"Down" ~dst:"Raising" ~sync:(M.Recv "raise")
            ~updates:[ M.Reset "y" ] ~act:"raising" ();
          M.edge ~src:"Raising" ~dst:"Up"
            ~guard:E.(clk "y" >= i 1)
            ~act:"up" ();
          M.edge ~src:"Raising" ~dst:"Lowering" ~sync:(M.Recv "lower")
            ~updates:[ M.Reset "y" ] ~act:"relower" ();
          M.edge ~src:"Lowering" ~dst:"Raising" ~sync:(M.Recv "raise")
            ~updates:[ M.Reset "y" ] ~act:"reraise" ();
        ];
      init_loc = "Up";
    }
  in
  let controller =
    {
      M.auto_name = "Ctl";
      locations =
        [
          M.loc "C0";
          M.loc ~kind:M.Urgent "CLower";
          M.loc "CDown";
          M.loc ~kind:M.Urgent "CCheck";
        ];
      edges =
        [
          M.edge ~src:"C0" ~dst:"CLower" ~sync:(M.Recv "approach")
            ~updates:[ M.Assign (M.Scalar "cnt", E.(v "cnt" + i 1)) ]
            ~act:"count" ();
          M.edge ~src:"CLower" ~dst:"CDown" ~sync:(M.Send "lower")
            ~act:"lower" ();
          M.edge ~src:"CDown" ~dst:"CDown" ~sync:(M.Recv "approach")
            ~updates:[ M.Assign (M.Scalar "cnt", E.(v "cnt" + i 1)) ]
            ~act:"count" ();
          M.edge ~src:"CDown" ~dst:"CCheck" ~sync:(M.Recv "exit")
            ~updates:[ M.Assign (M.Scalar "cnt", E.(v "cnt" - i 1)) ]
            ~act:"uncount" ();
          M.edge ~src:"CCheck" ~dst:"C0"
            ~guard:E.(v "cnt" = i 0)
            ~sync:(M.Send "raise") ~act:"raise" ();
          M.edge ~src:"CCheck" ~dst:"CDown"
            ~guard:E.(v "cnt" > i 0)
            ~act:"stay" ();
        ];
      init_loc = "C0";
    }
  in
  {
    M.vars = [ M.scalar "cnt" 0 ];
    clocks = [ clk "x1" 7; clk "x2" 7; clk "y" 7 ];
    chans = [ M.chan "approach"; M.chan "exit"; M.chan "lower"; M.chan "raise" ];
    automata = [ train 1; train 2; gate; controller ];
  }

let grc_spec =
  {
    fc_name = "grc";
    model = grc_model;
    forbid =
      List.concat_map
        (fun t ->
          [
            [ (t, "In"); ("Gate", "Up") ];
            [ (t, "In"); ("Gate", "Lowering") ];
            [ (t, "In"); ("Gate", "Raising") ];
          ])
        [ "Train1"; "Train2" ];
    safe = true;
  }

(* --- leader election ------------------------------------------------ *)

(* Timeout-based election: the candidate with the shortest timeout
   claims leadership over a broadcast channel; everyone still waiting
   follows.  Uniqueness rests on the invariant forcing the fast
   candidate to claim before the slow one's timeout can fire. *)
let leader_model =
  let cand i ~timeout =
    let x = Printf.sprintf "x%d" i in
    {
      M.auto_name = Printf.sprintf "C%d" i;
      locations =
        [
          M.loc ~invariant:E.(clk x <= i timeout) "Start";
          M.loc "Leader";
          M.loc "Follower";
        ];
      edges =
        [
          M.edge ~src:"Start" ~dst:"Leader"
            ~guard:E.(clk x >= i timeout)
            ~sync:(M.Send "claim") ~act:"claim" ();
          M.edge ~src:"Start" ~dst:"Follower" ~sync:(M.Recv "claim")
            ~act:"follow" ();
        ];
      init_loc = "Start";
    }
  in
  {
    M.vars = [];
    clocks = [ clk "x1" 5; clk "x2" 5 ];
    chans = [ M.chan ~broadcast:true "claim" ];
    automata = [ cand 1 ~timeout:1; cand 2 ~timeout:3 ];
  }

let leader_spec =
  {
    fc_name = "leader";
    model = leader_model;
    forbid = [ [ ("C1", "Leader"); ("C2", "Leader") ] ];
    safe = true;
  }

(* --- registry ------------------------------------------------------- *)

let all =
  [
    fischer_spec ();
    fischer_broken_spec;
    csma_spec;
    fddi_spec;
    grc_spec;
    leader_spec;
  ]

let find name = List.find_opt (fun s -> s.fc_name = name) all

let bad_predicate spec t =
  let conj pairs =
    let tests =
      List.map (fun (a, l) -> S.loc_is t ~auto:a ~loc:l) pairs
    in
    fun c -> List.for_all (fun f -> f c) tests
  in
  let disj = List.map conj spec.forbid in
  fun c -> List.exists (fun f -> f c) disj
