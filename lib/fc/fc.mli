(** The Fontana–Cleaveland benchmark suite, rebuilt as dense-time
    models for the zone engine.

    Five classic timed-automata verification benchmarks (the workload
    of Fontana and Cleaveland's timed-specification survey, all
    originally UPPAAL distributions): Fischer's mutual-exclusion
    protocol, CSMA/CD, an FDDI token ring, the generalized railroad
    crossing, and a timeout-based leader election.  Every model uses
    strict clock comparisons, urgent locations, or broadcast channels —
    the dense-time features the discrete engine cannot express — so
    they check only under [--zone].

    All models stay inside the zone fragment: diagonal-free, integer
    constants, broadcast receivers with data-only guards. *)

type spec = {
  fc_name : string;
  model : Ta.Model.t;
  forbid : (string * string) list list;
      (** safety property as a disjunction of conjunctions: the system
          is bad when, for some inner list, every [(automaton, location)]
          pair is occupied simultaneously *)
  safe : bool;  (** expected verdict: is the bad set unreachable? *)
}

val fischer : ?n:int -> ?k:int -> unit -> Ta.Model.t
(** Fischer's protocol with [n] processes (default 2) and delay
    constant [k] (default 2).  The [Wait -> CS] guard [x > k] is
    strict — correctness depends on it. *)

val fischer_spec : ?n:int -> ?k:int -> unit -> spec
(** [fischer] with its mutual-exclusion property (no two processes in
    [CS]), expected safe. *)

val all : spec list
(** The five benchmarks with their properties: [fischer] (safe),
    [fischer-broken] (the same protocol with a non-strict [x >= k]
    guard — the classic bug, expected unsafe), [csma] (safe), [fddi]
    (safe), [grc] (safe), [leader] (safe). *)

val find : string -> spec option
(** Look up a benchmark by [fc_name]. *)

val bad_predicate :
  spec -> Ta.Semantics.t -> Ta.Semantics.config -> bool
(** Compile the [forbid] sets of a spec against a compiled network. *)
