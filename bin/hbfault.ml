(* hbfault: adversarial fault-injection campaigns against the heartbeat
   protocols, checked online by the R1-R3 runtime monitors. *)

open Cmdliner
module H = Heartbeat

let seed_arg =
  Arg.(value & opt int64 7L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let n_arg =
  Arg.(value & opt int 1 & info [ "n" ] ~docv:"N" ~doc:"Participants.")

let fixed_arg =
  Arg.(
    value & flag
    & info [ "fixed" ]
        ~doc:"Monitor against the corrected (\\u00a76.2) bounds instead of \
              the paper's claimed 2*tmax.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the deterministic JSON report.")

let duration_arg =
  Arg.(
    value & opt float 10.0
    & info [ "duration-factor" ] ~docv:"F"
        ~doc:"Run each point for F * tmax simulated time.")

let no_shrink_arg =
  Arg.(
    value & flag
    & info [ "no-shrink" ] ~doc:"Skip shrinking violating schedules.")

let kind_arg =
  let kinds =
    [
      ("halving", H.Runtime.Halving);
      ("two-phase", H.Runtime.Two_phase);
      ("fixed-rate", H.Runtime.Fixed_rate 2);
    ]
  in
  Arg.(
    value
    & opt (enum kinds) H.Runtime.Halving
    & info [ "kind" ] ~docv:"KIND" ~doc:"Coordinator discipline.")

let campaign_cmd =
  let run fixed seed n duration_factor no_shrink json bsecs bmb =
    (* the budget doubles as the SIGINT token: an interrupted campaign
       reports the completed prefix (JSON or text) instead of dying *)
    let budget = Cli_resilience.budget bsecs bmb in
    let c =
      H.Campaign.run ~fixed ~seed ~n ~duration_factor
        ~shrink_failures:(not no_shrink) ~budget ()
    in
    if json then print_string (H.Campaign.to_json c)
    else Format.printf "%a" H.Campaign.pp c;
    if c.H.Campaign.interrupted <> None then
      exit Cli_resilience.exit_exhausted;
    if H.Campaign.violations c <> [] then exit Cli_resilience.exit_violation
  in
  Cmd.v
    (Cmd.info "campaign" ~exits:Cli_resilience.exits
       ~doc:
         "Sweep the default fault scenarios over all disciplines and table \
          parameter points.")
    Term.(
      const run $ fixed_arg $ seed_arg $ n_arg $ duration_arg $ no_shrink_arg
      $ json_arg $ Cli_resilience.budget_secs_arg
      $ Cli_resilience.budget_mb_arg)

let show_cmd =
  let tmin_arg =
    Arg.(value & opt int 4 & info [ "tmin" ] ~docv:"TMIN" ~doc:"tmin.")
  in
  let tmax_arg =
    Arg.(value & opt int 10 & info [ "tmax" ] ~docv:"TMAX" ~doc:"tmax.")
  in
  let scenario_arg =
    Arg.(
      value & opt string "crash-early"
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Scenario name (see campaign).")
  in
  let run kind tmin tmax n fixed seed scenario =
    let params = H.Params.make ~n ~tmin ~tmax () in
    match List.assoc_opt scenario (H.Campaign.default_scenarios params) with
    | None ->
        Format.eprintf "unknown scenario %s; known:@." scenario;
        List.iter
          (fun (name, _) -> Format.eprintf "  %s@." name)
          (H.Campaign.default_scenarios params);
        exit 2
    | Some faults ->
        let pt =
          {
            H.Campaign.kind;
            params;
            fixed;
            scenario;
            faults;
            seed;
            duration = 10.0 *. float_of_int tmax;
          }
        in
        Format.printf "scenario %s at (%d,%d), %s bounds:@.%a@." scenario tmin
          tmax
          (if fixed then "fixed" else "unfixed")
          Sim.Fault.pp faults;
        let verdict, _ = H.Campaign.run_point pt in
        (match verdict with
        | H.Monitors.Pass -> Format.printf "verdict: pass@."
        | H.Monitors.Fail v ->
            Format.printf "verdict: %a@.@.%s" H.Monitors.pp_violation v
              (H.Monitors.render_prefix ~n v);
            let minimal = H.Campaign.shrink pt in
            Format.printf "@.minimal failing schedule:@.%a@." Sim.Fault.pp
              minimal)
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:
         "Run one scenario at one parameter point and render the violating \
          trace MSC-style.")
    Term.(
      const run $ kind_arg $ tmin_arg $ tmax_arg $ n_arg $ fixed_arg $ seed_arg
      $ scenario_arg)

(* The CI gate: the corrected protocols survive the whole default
   adversary, the unfixed ones are refuted at a table F point, and the
   report is reproducible byte-for-byte. *)
let smoke_cmd =
  let run seed =
    let failures = ref 0 in
    let expect what ok =
      Format.printf "%-58s %s@." what (if ok then "ok" else "FAILED");
      if not ok then incr failures
    in
    let fixed = H.Campaign.run ~fixed:true ~seed () in
    expect "fixed variants: zero violations over the default campaign"
      (H.Campaign.violations fixed = []);
    let unfixed = H.Campaign.run ~fixed:false ~seed () in
    let bad = H.Campaign.violations unfixed in
    expect "unfixed variants: at least one violation reproduced"
      (bad <> []);
    let r1_at_table_point =
      List.exists
        (fun (o : H.Campaign.outcome) ->
          match o.verdict with
          | H.Monitors.Fail v ->
              (v.H.Monitors.req = H.Requirements.R1
              || v.H.Monitors.req = H.Requirements.R2)
              && List.mem
                   ( o.point.params.H.Params.tmin,
                     o.point.params.H.Params.tmax )
                   H.Params.table_datasets
          | H.Monitors.Pass -> false)
        bad
    in
    expect "violation is R1/R2 at a paper table point" r1_at_table_point;
    expect "every violation carries a shrunk schedule"
      (List.for_all
         (fun (o : H.Campaign.outcome) ->
           match o.shrunk with Some s -> s <> [] | None -> false)
         bad);
    let again = H.Campaign.run ~fixed:false ~seed () in
    expect "identical seed reproduces a byte-identical report"
      (H.Campaign.to_json again = H.Campaign.to_json unfixed);
    (match bad with
    | o :: _ ->
        Format.printf "@.example minimal reproduction (%s at (%d,%d), %s):@."
          (H.Runtime.kind_name o.point.kind)
          o.point.params.H.Params.tmin o.point.params.H.Params.tmax
          o.point.scenario;
        Option.iter
          (fun s -> Format.printf "%a@." Sim.Fault.pp s)
          o.shrunk;
        (match o.verdict with
        | H.Monitors.Fail v ->
            Format.printf "%a@." H.Monitors.pp_violation v
        | H.Monitors.Pass -> ())
    | [] -> ());
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "Deterministic campaign gate: fixed variants pass, unfixed are \
          refuted and shrunk, reports reproduce byte-identically.")
    Term.(const run $ seed_arg)

let () =
  let info =
    Cmd.info "hbfault" ~version:"1.0.0"
      ~doc:
        "Adversarial fault injection with requirement-derived runtime \
         monitors."
  in
  exit (Cmd.eval (Cmd.group info [ campaign_cmd; show_cmd; smoke_cmd ]))
