(* hbexplore: state-space statistics and Graphviz export for the formal
   models. *)

open Cmdliner
module H = Heartbeat

let variant_conv =
  let parse s =
    match
      List.find_opt
        (fun v -> H.Ta_models.variant_name v = s)
        H.Ta_models.all_variants
    with
    | Some v -> Ok v
    | None -> Error (`Msg ("unknown variant " ^ s))
  in
  Arg.conv
    (parse, fun ppf v -> Format.pp_print_string ppf (H.Ta_models.variant_name v))

let variant_arg =
  Arg.(
    value
    & opt variant_conv H.Ta_models.Binary
    & info [ "v"; "variant" ] ~docv:"VARIANT" ~doc:"Protocol variant.")

let tmin_arg = Arg.(value & opt int 1 & info [ "tmin" ] ~docv:"TMIN" ~doc:"tmin.")
let tmax_arg = Arg.(value & opt int 10 & info [ "tmax" ] ~docv:"TMAX" ~doc:"tmax.")

let n_arg =
  Arg.(value & opt int 1 & info [ "n" ] ~docv:"N" ~doc:"Participants.")

let fixed_arg = Arg.(value & flag & info [ "fixed" ] ~doc:"Fixed version.")

let monitors_arg =
  Arg.(value & flag & info [ "monitors" ] ~doc:"Include the R1 watchdogs.")

let slice_arg =
  Arg.(
    value & flag
    & info [ "slice" ]
        ~doc:"Explore the statically sliced model (dead-write elimination, \
              constant folding, clock-activity reduction; exact, \
              label-preserving).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Exploration domains: 1 runs the sequential engine, more runs \
           the parallel engine (identical output). 0 uses all cores.")

let exploration_stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print exploration statistics (states/s, frontier, shards).")

let store_conv =
  let parse s =
    match Mc.Store.of_string s with Ok m -> Ok m | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun ppf m -> Format.pp_print_string ppf (Mc.Store.mode_name m))

let store_arg =
  Arg.(
    value
    & opt store_conv Mc.Store.Exact
    & info [ "store" ] ~docv:"MODE"
        ~doc:
          "State storage mode: $(b,exact) (default, no omissions), \
           $(b,hashcompact)[:BITS] (64-bit fingerprints) or \
           $(b,bitstate)[:LOG2BITS[:HASHES]] (supertrace bit array). The \
           compressed modes conflate fingerprint-colliding states, so any \
           $(i,no violation) / $(i,complete) answer they produce is \
           probabilistic — a violation hidden behind an omitted state is \
           missed, never invented; the printed coverage estimate \
           quantifies the omission risk. Violations and deadlocks that \
           $(i,are) reported remain real.")

let levels_arg =
  Arg.(
    value & flag
    & info [ "levels" ]
        ~doc:
          "Use the level-synchronised parallel engine instead of the \
           work-stealing default (baseline for benchmarks; no bitstate \
           support).")

let resolve_jobs jobs =
  if jobs < 0 then failwith "--jobs must be >= 0"
  else if jobs = 0 then Domain.recommended_domain_count ()
  else jobs

let count_arg =
  Arg.(
    value & flag
    & info [ "count" ]
        ~doc:
          "Count reachable states without retaining the graph (the \
           high-volume mode; composes with compressed stores and the \
           degradation ladder).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the deterministic JSON result.")

let zone_arg =
  Arg.(
    value & flag
    & info [ "zone" ]
        ~doc:"Explore the dense-time zone graph (canonical DBMs with \
              inclusion subsumption) instead of the discrete state space.")

let no_subsume_arg =
  Arg.(
    value & flag
    & info [ "no-subsume" ]
        ~doc:"With $(b,--zone): store zones up to equality only, disabling \
              inclusion subsumption (the zone graph as a plain transition \
              system driven by the generic explorer).")

let lu_conv =
  Arg.enum [ ("global", Zone.Sym.Global); ("location", Zone.Sym.Location) ]

let lu_arg =
  Arg.(
    value
    & opt lu_conv Zone.Sym.Global
    & info [ "lu" ] ~docv:"MODE"
        ~doc:"LU-bound source: $(b,global) (one pair per clock, whole \
              network) or $(b,location) (per-location tables from the \
              lubounds backward fixpoint).  With $(b,--zone) this selects \
              the Extra+LU extrapolation; on the discrete engine it caps \
              each clock at its per-location bound during delays (same \
              reachable locations and variables; the valuation count \
              usually shrinks on clock-dominated spaces).")

let lu_name = function
  | Zone.Sym.Global -> "global"
  | Zone.Sym.Location -> "location"

(* Zone-graph statistics.  With subsumption this is the waiting-list
   discipline of Zone.Reach; without it the zone system is handed to
   the generic Mc.Explore engine as-is, exercising the Mc.System
   integration. *)
let zone_stats ~variant ~params ~fixed ~monitors ~subsume ~lu ~json header =
  let model =
    H.Ta_models.build ~fixed ~with_r1_monitors:monitors variant params
  in
  let z = Zone.Sym.compile ~lu model in
  let states, complete, subsumed =
    if subsume then begin
      let stats = Zone.Reach.new_stats () in
      let n, complete =
        Zone.Reach.count ~max_states:10_000_000 ~stats z
      in
      (n, complete, Some stats.Zone.Reach.subsumed)
    end
    else
      let n, complete =
        Mc.Explore.count ~max_states:10_000_000 (Zone.Sym.system z)
      in
      (n, complete, None)
  in
  if json then
    Printf.printf
      "{\"tool\":\"hbexplore\",\"cmd\":\"stats\",\"engine\":\"zone\",\"lu\":\"%s\",\"variant\":\"%s\",\"fixed\":%b,\"monitors\":%b,\"tmin\":%d,\"tmax\":%d,\"n\":%d,\"subsume\":%b,\"states\":%d,%s\"complete\":%b}\n"
      (lu_name lu)
      (H.Ta_models.variant_name variant)
      fixed monitors params.H.Params.tmin params.H.Params.tmax
      params.H.Params.n subsume states
      (match subsumed with
      | Some s -> Printf.sprintf "\"subsumed\":%d," s
      | None -> "")
      complete
  else
    Format.printf "%a [zone%s%s]: %d zones (%s%s)@." header ()
      (if lu = Zone.Sym.Location then " lu=location" else "")
      (if subsume then "" else ", no subsumption")
      states
      (if complete then "complete" else "TRUNCATED")
      (match subsumed with
      | Some s -> Printf.sprintf "; %d subsumed" s
      | None -> "")

let stats_cmd =
  let run variant tmin tmax n fixed monitors slice zone no_subsume lu jobs
      show_stats store levels count_only json bsecs bmb no_degrade ckpt
      ckpt_every resume_file =
    let jobs = resolve_jobs jobs in
    let params = H.Params.make ~n ~tmin ~tmax () in
    if zone then begin
      if
        slice || levels || count_only
        || store <> Mc.Store.Exact
        || jobs > 1 || ckpt <> None || resume_file <> None
      then
        failwith
          "--zone is sequential with an exact store (drop --slice, --store, \
           --levels, --count, -j, --checkpoint and --resume)";
      let header ppf () =
        Format.fprintf ppf "%s%s %a%s"
          (H.Ta_models.variant_name variant)
          (if fixed then " [fixed]" else "")
          H.Params.pp params
          (if monitors then " +monitors" else "")
      in
      zone_stats ~variant ~params ~fixed ~monitors ~subsume:(not no_subsume)
        ~lu ~json header
    end
    else begin
    if no_subsume then failwith "--no-subsume needs --zone";
    if lu = Zone.Sym.Location && slice then
      failwith
        "--lu location caps the full model's clocks (drop --slice: the \
         sliced model has its own activity-based reduction)";
    let model =
      H.Ta_models.build ~fixed ~with_r1_monitors:monitors variant params
    in
    (* the property-free slice: no seed, so the reduction comes from dead
       writes, folded constants and clock activity alone *)
    let sys =
      if slice then
        let sl = Slice.Ta.slice model in
        Slice.Ta.system sl (Ta.Semantics.compile sl.Slice.Ta.model)
      else
        (* --lu location: delays saturate each clock at its per-location
           bound (from the lubounds backward fixpoint) instead of the
           global cap — same reachable locations and variables, usually
           fewer clock valuations.  Sound here because exploration
           observes only the discrete part. *)
        let net = Ta.Semantics.compile model in
        let net =
          if lu = Zone.Sym.Location then
            Ta.Semantics.with_loc_caps net
              (Lubounds.caps_for net model (Lubounds.analyze_cached model))
          else net
        in
        Ta.Semantics.system net
    in
    let max_states = 10_000_000 in
    let workstealing = if levels then Some false else None in
    let count_mode =
      count_only || match store with Mc.Store.Bitstate _ -> true | _ -> false
    in
    if levels && (bsecs <> None || bmb <> None || ckpt <> None
                  || resume_file <> None) then
      failwith
        "budgets and checkpoints require the work-stealing engine (drop \
         --levels)";
    if count_mode && (ckpt <> None || resume_file <> None) then
      failwith
        "--checkpoint/--resume need the state graph (drop --count; bitstate \
         stores keep no graph)";
    (* the checkpoint kind guards resume identity: same tool, model,
       parameters, bound and store family, or the resume is rejected *)
    let kind =
      Printf.sprintf
        "hbexplore/stats/ta/%s/fixed=%b/monitors=%b/slice=%b/lu=%s/tmin=%d/tmax=%d/n=%d/max=%d/store=%s"
        (H.Ta_models.variant_name variant)
        fixed monitors slice (lu_name lu) tmin tmax n max_states
        (Mc.Store.mode_name store)
    in
    let header ppf () =
      Format.fprintf ppf "%s%s %a%s%s%s"
        (H.Ta_models.variant_name variant)
        (if fixed then " [fixed]" else "")
        H.Params.pp params
        (if monitors then " +monitors" else "")
        (if slice then " [sliced]" else "")
        (if lu = Zone.Sym.Location then " [lu=location]" else "")
    in
    let json_result ~states ~transitions ~complete ~coverage ~exhausted
        ~degraded =
      Printf.printf
        "{\"tool\":\"hbexplore\",\"cmd\":\"stats\",\"variant\":\"%s\",\"fixed\":%b,\"monitors\":%b,\"slice\":%b,\"tmin\":%d,\"tmax\":%d,\"n\":%d,\"store\":\"%s\",\"states\":%d,%s\"complete\":%b,\"coverage\":%s,\"exhausted\":%s,\"degraded\":[%s]}\n"
        (H.Ta_models.variant_name variant)
        fixed monitors slice tmin tmax n (Mc.Store.mode_name store) states
        (match transitions with
        | Some t -> Printf.sprintf "\"transitions\":%d," t
        | None -> "")
        complete
        (match coverage with
        | Some c -> Cli_resilience.coverage_json c
        | None -> "null")
        (match exhausted with
        | Some r -> Printf.sprintf "\"%s\"" (Mc.Budget.reason_name r)
        | None -> "null")
        (String.concat ","
           (List.map (fun m -> "\"" ^ m ^ "\"") degraded))
    in
    if count_mode then begin
      if levels then
        failwith "bitstate requires the work-stealing engine (drop --levels)";
      let budget = Cli_resilience.budget bsecs bmb in
      let (count, complete), stats =
        Mc.Pexplore.count_stats ~max_states ~domains:jobs ~store ~budget
          ~degrade:(not no_degrade) sys
      in
      if json then
        json_result ~states:count ~transitions:None ~complete
          ~coverage:(Some stats.Mc.Pexplore.coverage)
          ~exhausted:stats.Mc.Pexplore.exhausted
          ~degraded:stats.Mc.Pexplore.degraded
      else begin
        Format.printf
          "%a: %d states visited (%s; counts under a compressed store are \
           probabilistic lower bounds)@."
          header () count
          (match stats.Mc.Pexplore.exhausted with
          | Some r -> "EXHAUSTED: " ^ Mc.Budget.reason_name r
          | None -> if complete then "complete" else "TRUNCATED");
        (match stats.Mc.Pexplore.degraded with
        | [] -> ()
        | ms ->
            Format.printf "store degraded in place: %s@."
              (String.concat " -> " (Mc.Store.mode_name store :: ms)));
        Format.printf "coverage: %a@." Mc.Store.pp_coverage
          stats.Mc.Pexplore.coverage;
        if show_stats then Format.printf "%a@." Mc.Pexplore.pp_stats stats
      end;
      if stats.Mc.Pexplore.exhausted <> None then
        exit Cli_resilience.exit_exhausted
    end
    else begin
      let sequential =
        jobs <= 1 && (not show_stats) && store = Mc.Store.Exact
        && workstealing = None
      in
      let result, stats =
        if levels then
          let space, stats =
            Mc.Pexplore.space_stats ~max_states ~domains:jobs ~store
              ?workstealing sys
          in
          (Mc.Explore.Done space, Some stats)
        else if sequential then begin
          let budget = Cli_resilience.budget bsecs bmb in
          let resume = Cli_resilience.load_resume ~kind resume_file in
          let checkpoint =
            Option.map
              (fun file ->
                (ckpt_every, Cli_resilience.save_checkpoint ~kind file))
              ckpt
          in
          (Mc.Explore.space_run ~max_states ~budget ?checkpoint ?resume sys,
           None)
        end
        else begin
          let budget = Cli_resilience.budget bsecs bmb in
          let resume = Cli_resilience.load_resume ~kind resume_file in
          let result, stats =
            Mc.Pexplore.space_run ~max_states ~domains:jobs ~store ~budget
              ~degrade:(not no_degrade) ?resume sys
          in
          (result, Some stats)
        end
      in
      match result with
      | Mc.Explore.Done space ->
          if json then
            json_result
              ~states:(Lts.Graph.num_states space.Mc.Explore.lts)
              ~transitions:
                (Some (Lts.Graph.num_transitions space.Mc.Explore.lts))
              ~complete:space.Mc.Explore.complete
              ~coverage:(Option.map (fun s -> s.Mc.Pexplore.coverage) stats)
              ~exhausted:None
              ~degraded:
                (match stats with
                | Some s -> s.Mc.Pexplore.degraded
                | None -> [])
          else begin
            Format.printf "%a: %a (%s)@." header ()
              Lts.Graph.pp_stats space.Mc.Explore.lts
              (if space.Mc.Explore.complete then "complete" else "TRUNCATED");
            (match stats with
            | Some s when store <> Mc.Store.Exact ->
                Format.printf "coverage: %a@." Mc.Store.pp_coverage
                  s.Mc.Pexplore.coverage
            | _ -> ());
            (match stats with
            | Some s when show_stats ->
                Format.printf "%a@." Mc.Pexplore.pp_stats s
            | _ -> ())
          end
      | Mc.Explore.Suspended (reason, cursor) ->
          Option.iter
            (fun file -> Cli_resilience.save_checkpoint ~kind file cursor)
            ckpt;
          let states = Mc.Explore.cursor_states cursor in
          let frontier = Mc.Explore.cursor_frontier cursor in
          if json then
            json_result ~states ~transitions:None ~complete:false
              ~coverage:(Option.map (fun s -> s.Mc.Pexplore.coverage) stats)
              ~exhausted:(Some reason)
              ~degraded:
                (match stats with
                | Some s -> s.Mc.Pexplore.degraded
                | None -> [])
          else
            Format.printf
              "%a: EXHAUSTED (%a) — %d states interned, %d frontier states \
               unexpanded%s@."
              header () Mc.Budget.pp_reason reason states frontier
              (if ckpt <> None then "; checkpoint written" else "");
          exit Cli_resilience.exit_exhausted
    end
    end
  in
  Cmd.v
    (Cmd.info "stats" ~exits:Cli_resilience.exits
       ~doc:"Reachable state space of a timed-automata model (discrete, or \
             the dense-time zone graph with $(b,--zone)).")
    Term.(
      const run $ variant_arg $ tmin_arg $ tmax_arg $ n_arg $ fixed_arg
      $ monitors_arg $ slice_arg $ zone_arg $ no_subsume_arg $ lu_arg
      $ jobs_arg
      $ exploration_stats_arg $ store_arg
      $ levels_arg $ count_arg $ json_arg $ Cli_resilience.budget_secs_arg
      $ Cli_resilience.budget_mb_arg $ Cli_resilience.no_degrade_arg
      $ Cli_resilience.checkpoint_arg $ Cli_resilience.checkpoint_every_arg
      $ Cli_resilience.resume_arg)

let pa_stats_cmd =
  let reduce_arg =
    Arg.(
      value & flag
      & info [ "reduce" ]
          ~doc:"Also explore the ample-set reduced state space and report \
                the reduction ratio.")
  in
  let pa_slice_arg =
    Arg.(
      value & flag
      & info [ "slice" ]
          ~doc:"Also explore the statically sliced state space (and, with \
                $(b,--reduce), the sliced-then-reduced one) and report the \
                ratios.")
  in
  let run tmin tmax n reduce slice =
    let params = H.Params.make ~n ~tmin ~tmax () in
    let ratio (full : H.Pa_verify.explore_stats)
        (other : H.Pa_verify.explore_stats) =
      float_of_int full.H.Pa_verify.states
      /. float_of_int other.H.Pa_verify.states
    in
    List.iter
      (fun v ->
        let full = H.Pa_verify.explore v params in
        Format.printf "PA %-10s %a: %d states, %d transitions"
          (H.Pa_models.variant_name v)
          H.Params.pp params full.H.Pa_verify.states
          full.H.Pa_verify.transitions;
        if slice then begin
          let sl = H.Pa_verify.explore ~slice:true v params in
          Format.printf "; sliced: %d states, %d transitions (%.2fx)"
            sl.H.Pa_verify.states sl.H.Pa_verify.transitions (ratio full sl)
        end;
        if reduce then begin
          let red = H.Pa_verify.explore ~reduce:true v params in
          Format.printf "; reduced: %d states, %d transitions (%.2fx)"
            red.H.Pa_verify.states red.H.Pa_verify.transitions
            (ratio full red)
        end;
        if slice && reduce then begin
          let both = H.Pa_verify.explore ~slice:true ~reduce:true v params in
          Format.printf "; sliced+reduced: %d states, %d transitions (%.2fx)"
            both.H.Pa_verify.states both.H.Pa_verify.transitions
            (ratio full both)
        end;
        Format.printf "@.")
      [ H.Pa_models.Binary; H.Pa_models.Revised; H.Pa_models.Two_phase;
        H.Pa_models.Static; H.Pa_models.Expanding; H.Pa_models.Dynamic ]
  in
  Cmd.v
    (Cmd.info "pa-stats"
       ~doc:"Reachable state spaces of the process-algebra models, \
             optionally with the static slice and the ample-set reduction \
             for comparison.")
    Term.(const run $ tmin_arg $ tmax_arg $ n_arg $ reduce_arg $ pa_slice_arg)

let dot_cmd =
  let run which tmin tmax =
    let params = H.Params.make ~tmin ~tmax () in
    let lts =
      match which with
      | "p0" -> H.Figures.p0_reduced params
      | "p1" -> H.Figures.p1_reduced params
      | "p0-raw" -> H.Figures.p0_component params
      | "p1-raw" -> H.Figures.p1_component params
      | other -> failwith ("unknown component " ^ other)
    in
    let pp_label ppf l =
      Format.pp_print_string ppf (H.Figures.label_to_string l)
    in
    print_string (Lts.Dot.to_string ~name:which ~pp_label lts)
  in
  let which_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"COMPONENT"
          ~doc:"p0 or p1 (reduced, paper Figures 1/2); p0-raw / p1-raw for \
                the unreduced LTS.")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Emit a component state space (paper Figures 1 and 2) as \
             Graphviz dot.")
    Term.(const run $ which_arg $ Arg.(value & opt int 1 & info [ "tmin" ])
          $ Arg.(value & opt int 2 & info [ "tmax" ]))

let export_cmd =
  let run format variant tmin tmax n fixed =
    let params = H.Params.make ~n ~tmin ~tmax () in
    match format with
    | "xta" ->
        let model = H.Ta_models.build ~fixed variant params in
        print_string (Ta.Xta.to_string model)
    | "mcrl2" -> (
        match H.Pa_models.of_ta variant with
        | Some pv -> print_string (Proc.Mcrl2.to_string (H.Pa_models.build pv params))
        | None -> failwith "no process-algebra encoding for this variant")
    | other -> failwith ("unknown format " ^ other)
  in
  let format_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FORMAT"
          ~doc:"xta (UPPAAL textual format, from the timed-automata model) \
                or mcrl2 (from the process-algebra model).")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a protocol model for the UPPAAL or mCRL2 toolsets.")
    Term.(
      const run $ format_arg $ variant_arg $ tmin_arg $ tmax_arg $ n_arg
      $ fixed_arg)

(* Per-benchmark zone counts for both LU-extrapolation modes, with a
   verdict check against the spec's expected answer.  This is the
   global-vs-location A/B measurement over the whole FC suite; the
   --json form is byte-deterministic (counts only, no wall times) and
   gated by `make zone`. *)
let fc_zones specs json =
  let failures = ref 0 in
  let rows =
    List.map
      (fun (s : Fc.spec) ->
        let measure lu =
          let z = Zone.Sym.compile ~lu s.Fc.model in
          let goal = Zone.Sym.bad_of z (Fc.bad_predicate s (Zone.Sym.net z)) in
          let verdict =
            match Zone.Reach.find ~max_states:10_000_000 z ~goal with
            | Mc.Explore.Unreachable -> Some true
            | Mc.Explore.Reached _ -> Some false
            | Mc.Explore.Bound_hit _ | Mc.Explore.Exhausted _ -> None
          in
          let zones, complete =
            Zone.Reach.count ~max_states:10_000_000 ~subsume:true z
          in
          (verdict, zones, complete)
        in
        let g_verdict, g_zones, g_complete = measure Zone.Sym.Global in
        let l_verdict, l_zones, l_complete = measure Zone.Sym.Location in
        let parity =
          g_verdict = Some s.Fc.safe && l_verdict = Some s.Fc.safe
        in
        (* monotonicity: location bounds never exceed the global ones,
           so coarser extrapolation can only merge zones *)
        if not (parity && g_complete && l_complete && l_zones <= g_zones)
        then incr failures;
        (s, parity, g_zones, l_zones))
      specs
  in
  if json then begin
    print_string "{\"tool\":\"hbexplore\",\"cmd\":\"fc-zones\",\"rows\":[";
    List.iteri
      (fun k ((s : Fc.spec), parity, g_zones, l_zones) ->
        if k > 0 then print_string ",";
        Printf.printf
          "{\"model\":\"%s\",\"safe\":%b,\"verdict_parity\":%b,\"zones_global\":%d,\"zones_location\":%d}"
          s.Fc.fc_name s.Fc.safe parity g_zones l_zones)
      rows;
    Printf.printf "],\"failures\":%d}\n" !failures
  end
  else
    List.iter
      (fun ((s : Fc.spec), parity, g_zones, l_zones) ->
        Format.printf "%-16s %-6s %s  zones: global %d, location %d (%.2fx)@."
          s.Fc.fc_name
          (if s.Fc.safe then "safe" else "unsafe")
          (if parity then "verdict ok" else "VERDICT WRONG")
          g_zones l_zones
          (float_of_int g_zones /. float_of_int l_zones))
      rows;
  if !failures > 0 then exit 1

(* The Fontana-Cleaveland workload: print a benchmark as .xta (the
   exact content of examples/fc/NAME.xta), list the registry, or
   measure zone counts under both LU modes with --zones. *)
let fc_cmd =
  let name_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Benchmark to print: fischer, fischer-broken, csma, fddi, \
                grc or leader.  Omit to list the registry.")
  in
  let fischer_n_arg =
    Arg.(
      value & opt (some int) None
      & info [ "n" ] ~docv:"N"
          ~doc:"For fischer: number of processes (default 2).")
  in
  let zones_arg =
    Arg.(
      value & flag
      & info [ "zones" ]
          ~doc:"Instead of printing models, zone-check each selected \
                benchmark under both global and location LU extrapolation \
                and report the zone counts (verdicts must match the spec; \
                location LU must never store more zones).")
  in
  let run name fischer_n zones json =
    if json && not zones then failwith "--json needs --zones";
    if zones then
      let specs =
        match name with
        | None -> Fc.all
        | Some "fischer" when fischer_n <> None ->
            [ Fc.fischer_spec ?n:fischer_n () ]
        | Some name -> (
            match Fc.find name with
            | Some s -> [ s ]
            | None -> failwith ("unknown benchmark " ^ name))
      in
      fc_zones specs json
    else
      match name with
      | None ->
          List.iter
            (fun (s : Fc.spec) ->
              Format.printf "%-16s %s, bad sets: %s@." s.Fc.fc_name
                (if s.Fc.safe then "safe" else "unsafe")
                (String.concat " | "
                   (List.map
                      (fun conj ->
                        String.concat ","
                          (List.map (fun (a, l) -> a ^ "." ^ l) conj))
                      s.Fc.forbid)))
            Fc.all
      | Some "fischer" when fischer_n <> None ->
          print_string
            (Ta.Xta.to_string (Fc.fischer ?n:fischer_n ()))
      | Some name -> (
          match Fc.find name with
          | Some s -> print_string (Ta.Xta.to_string s.Fc.model)
          | None -> failwith ("unknown benchmark " ^ name))
  in
  Cmd.v
    (Cmd.info "fc"
       ~doc:"Print a Fontana-Cleaveland benchmark model as UPPAAL .xta \
             (zone-check them with hbverify xta), or A/B the zone counts \
             of both LU-extrapolation modes with $(b,--zones).")
    Term.(const run $ name_arg $ fischer_n_arg $ zones_arg $ json_arg)

let deadlocks_cmd =
  let run variant tmin tmax n fixed jobs store levels bsecs bmb no_degrade =
    let jobs = resolve_jobs jobs in
    let workstealing = if levels then Some false else None in
    if levels && (bsecs <> None || bmb <> None) then
      failwith
        "budgets require the work-stealing engine (drop --levels)";
    let budget = Cli_resilience.budget ~signals:(not levels) bsecs bmb in
    let params = H.Params.make ~n ~tmin ~tmax () in
    let verdict =
      H.Verify.deadlocks ~fixed ~domains:jobs ~store ?workstealing ~budget
        ~degrade:(not no_degrade) variant params
    in
    let line s =
      Format.printf "%s %a: %s@."
        (H.Ta_models.variant_name variant)
        H.Params.pp params s
    in
    match verdict with
    | Mc.Safety.Holds ->
        line
          ("deadlock-free"
          ^
          if store <> Mc.Store.Exact then
            " (probabilistic: compressed store may omit states)"
          else "")
    | Mc.Safety.Violated _ ->
        line "HAS DEADLOCKS";
        exit Cli_resilience.exit_violation
    | Mc.Safety.Unknown n ->
        line (Printf.sprintf "UNKNOWN (state bound hit at %d)" n);
        exit Cli_resilience.exit_unknown
    | Mc.Safety.Exhausted e ->
        line
          (Format.asprintf "EXHAUSTED (%a) — no deadlock found so far"
             Mc.Explore.pp_exhaustion e);
        exit Cli_resilience.exit_exhausted
  in
  Cmd.v
    (Cmd.info "deadlocks" ~exits:Cli_resilience.exits
       ~doc:"Check a model for deadlocked configurations.")
    Term.(
      const run $ variant_arg $ tmin_arg $ tmax_arg $ n_arg $ fixed_arg
      $ jobs_arg $ store_arg $ levels_arg $ Cli_resilience.budget_secs_arg
      $ Cli_resilience.budget_mb_arg $ Cli_resilience.no_degrade_arg)

let () =
  let info =
    Cmd.info "hbexplore" ~version:"1.0.0"
      ~doc:"State-space exploration of the heartbeat protocol models."
  in
  exit
    (Cmd.eval (Cmd.group info
       [ stats_cmd; pa_stats_cmd; dot_cmd; export_cmd; fc_cmd; deadlocks_cmd ]))
