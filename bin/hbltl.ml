(* hbltl: LTL liveness checking of the accelerated heartbeat protocols.

   Where hbverify answers reachability questions (can a bad state be
   reached?), hbltl answers liveness ones (does the beat exchange keep
   happening on every fair run?).  Refutations are lassos: a finite
   prefix plus a cycle that repeats forever. *)

open Cmdliner
module H = Heartbeat

let variant_conv =
  let parse s =
    match
      List.find_opt
        (fun v -> H.Ta_models.variant_name v = s)
        H.Ta_models.all_variants
    with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown variant %s (expected one of: %s)" s
                (String.concat ", "
                   (List.map H.Ta_models.variant_name H.Ta_models.all_variants))))
  in
  Arg.conv
    (parse, fun ppf v -> Format.pp_print_string ppf (H.Ta_models.variant_name v))

let variant_arg =
  Arg.(
    value
    & opt variant_conv H.Ta_models.Binary
    & info [ "v"; "variant" ] ~docv:"VARIANT"
        ~doc:"Protocol variant: binary, revised, two-phase, static, \
              expanding or dynamic.")

let tmin_arg =
  Arg.(value & opt int 10 & info [ "tmin" ] ~docv:"TMIN" ~doc:"Lower round bound.")

let tmax_arg =
  Arg.(value & opt int 10 & info [ "tmax" ] ~docv:"TMAX" ~doc:"Upper round bound.")

let n_arg =
  Arg.(
    value & opt int 1
    & info [ "n" ] ~docv:"N" ~doc:"Number of participants (multi-party variants).")

let fixed_arg =
  Arg.(
    value & flag
    & info [ "fixed" ] ~doc:"Check the corrected (section-6) version.")

let engine_conv =
  let parse = function
    | "ndfs" -> Ok Ltl.Check.Ndfs
    | "scc" -> Ok Ltl.Check.Scc
    | s -> Error (`Msg ("unknown engine " ^ s ^ " (expected ndfs or scc)"))
  in
  Arg.conv
    ( parse,
      fun ppf e ->
        Format.pp_print_string ppf
          (match e with Ltl.Check.Ndfs -> "ndfs" | Ltl.Check.Scc -> "scc") )

let engine_arg =
  Arg.(
    value
    & opt engine_conv Ltl.Check.Ndfs
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:"Emptiness engine: ndfs (on-the-fly nested DFS) or scc \
              (Tarjan components over the built product).")

let req_conv =
  let parse = function
    | "R1" | "r1" -> Ok H.Requirements.R1
    | "R2" | "r2" -> Ok H.Requirements.R2
    | "R3" | "r3" -> Ok H.Requirements.R3
    | s -> Error (`Msg ("unknown requirement " ^ s))
  in
  Arg.conv
    (parse, fun ppf r -> Format.pp_print_string ppf (H.Requirements.name r))

let req_arg =
  Arg.(
    required
    & pos 0 (some req_conv) None
    & info [] ~docv:"REQ" ~doc:"Requirement: R1, R2 or R3.")

(* ------------------------------------------------------------------ *)
(* JSON rendering (deterministic: fixed key order, no hash iteration)  *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let step_string = function
  | Ltl.Check.Step Ta.Semantics.Delay -> "tick"
  | Ltl.Check.Step (Ta.Semantics.Act a) -> a
  | Ltl.Check.Stutter -> "(stutter)"

let pa_step_string = function
  | Ltl.Check.Step l -> Format.asprintf "%a" Proc.Semantics.pp_label l
  | Ltl.Check.Stutter -> "(stutter)"

let json_steps to_string steps =
  "["
  ^ String.concat ","
      (List.map (fun s -> "\"" ^ json_escape (to_string s) ^ "\"") steps)
  ^ "]"

(* State-space statistics of the model being checked (not of the Büchi
   product): states, transitions, completeness, and — when the ample-set
   reduction is on — the full-space size and the reduction ratio. *)
let pa_stats_json ~slice ~reduce variant params =
  let st = H.Pa_verify.explore ~slice ~reduce variant params in
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"states\":%d,\"transitions\":%d,\"complete\":%b"
    st.H.Pa_verify.states st.H.Pa_verify.transitions st.H.Pa_verify.complete;
  if slice || reduce then begin
    let full = H.Pa_verify.explore variant params in
    Printf.bprintf buf ",\"full_states\":%d,\"reduction_ratio\":%.2f"
      full.H.Pa_verify.states
      (float_of_int full.H.Pa_verify.states
      /. float_of_int st.H.Pa_verify.states)
  end;
  Buffer.add_string buf "}";
  Buffer.contents buf

let ta_stats_json ~fixed ~slice variant params =
  let model = H.Ta_models.build ~fixed variant params in
  let sys =
    if slice then
      let sl = Slice.Ta.slice model in
      Slice.Ta.system sl (Ta.Semantics.compile sl.Slice.Ta.model)
    else Ta.Semantics.system (Ta.Semantics.compile model)
  in
  let space = Mc.Explore.space ~max_states:10_000_000 sys in
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"states\":%d,\"transitions\":%d,\"complete\":%b"
    (Lts.Graph.num_states space.Mc.Explore.lts)
    (Lts.Graph.num_transitions space.Mc.Explore.lts)
    space.Mc.Explore.complete;
  if slice then begin
    let full =
      Mc.Explore.space ~max_states:10_000_000
        (Ta.Semantics.system (Ta.Semantics.compile model))
    in
    Printf.bprintf buf ",\"full_states\":%d,\"reduction_ratio\":%.2f"
      (Lts.Graph.num_states full.Mc.Explore.lts)
      (float_of_int (Lts.Graph.num_states full.Mc.Explore.lts)
      /. float_of_int (Lts.Graph.num_states space.Mc.Explore.lts))
  end;
  Buffer.add_string buf "}";
  Buffer.contents buf

let verdict_json ~model ~variant ~params ~fixed ~slice ~reduce ~engine ~req
    ~formula ~fairness_names ~stats ~to_string verdict =
  let open Printf in
  let buf = Buffer.create 256 in
  bprintf buf
    "{\"tool\":\"hbltl\",\"model\":\"%s\",\"variant\":\"%s\",\"tmin\":%d,\"tmax\":%d,"
    model
    (H.Ta_models.variant_name variant)
    params.H.Params.tmin params.H.Params.tmax;
  bprintf buf
    "\"n\":%d,\"fixed\":%b,\"slice\":%b,\"reduce\":%b,\"requirement\":\"%s\",\"engine\":\"%s\","
    params.H.Params.n fixed slice reduce (H.Requirements.name req)
    (match engine with Ltl.Check.Ndfs -> "ndfs" | Ltl.Check.Scc -> "scc");
  bprintf buf "\"formula\":\"%s\",\"fairness\":[%s],\"stats\":%s,"
    (json_escape formula)
    (String.concat ","
       (List.map (fun n -> "\"" ^ json_escape n ^ "\"") fairness_names))
    stats;
  (match verdict with
  | Ltl.Check.Holds -> bprintf buf "\"verdict\":\"holds\"}"
  | Ltl.Check.Unknown n ->
      bprintf buf "\"verdict\":\"unknown\",\"states\":%d}" n
  | Ltl.Check.Refuted l ->
      bprintf buf "\"verdict\":\"refuted\",\"lasso\":{\"prefix\":%s,\"cycle\":%s}}"
        (json_steps to_string l.Ltl.Check.prefix)
        (json_steps to_string l.Ltl.Check.cycle)
  | Ltl.Check.Exhausted e ->
      bprintf buf "\"verdict\":\"exhausted\",\"exhaustion\":%s}"
        (Cli_resilience.exhaustion_json e));
  Buffer.contents buf

let fairness_names fs =
  List.map (fun (f : _ Ltl.Check.fairness) -> f.Ltl.Check.fname) fs

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let run_check ?domains variant params fixed engine req =
  ( H.Verify.check_live ~fixed ~engine ?domains variant params req,
    Format.asprintf "%a" Ltl.Formula.pp
      (H.Requirements.live_formula variant params req) )

(* Exit code for a concluded verdict; [exit 0] is implicit. *)
let verdict_exit = function
  | Ltl.Check.Holds -> ()
  | Ltl.Check.Refuted _ -> exit Cli_resilience.exit_violation
  | Ltl.Check.Unknown _ -> exit Cli_resilience.exit_unknown
  | Ltl.Check.Exhausted _ -> exit Cli_resilience.exit_exhausted

(* A suspended product build reported as an [Exhausted] verdict: the
   checkpoint (when requested) carries the cursor, the report carries
   the partial state count. *)
let exhaustion_of_cursor reason cursor =
  let n = Mc.Explore.cursor_states cursor in
  {
    Mc.Explore.reason;
    states_so_far = n;
    coverage = Mc.Store.coverage_of ~mode:Mc.Store.exact ~stored:n;
  }

(* The process-algebra path (--pa): same requirements, read as LTL over
   the PA action names, with the ample-set reduction available because
   those formulas are stutter-invariant. *)
let run_pa_check ?domains ?budget ?ckpt_file ~ckpt_every ~resume_file variant
    params slice reduce engine json req =
  let pv =
    match H.Pa_models.of_ta variant with
    | Some pv -> pv
    | None -> assert false (* of_ta is total *)
  in
  let kind =
    Printf.sprintf
      "hbltl/check/pa/%s/slice=%b/reduce=%b/req=%s/tmin=%d/tmax=%d/n=%d/engine=scc"
      (H.Pa_models.variant_name pv)
      slice reduce (H.Requirements.name req) params.H.Params.tmin
      params.H.Params.tmax params.H.Params.n
  in
  let resume = Cli_resilience.load_resume ~kind resume_file in
  let checkpoint =
    Option.map
      (fun file -> (ckpt_every, Cli_resilience.save_checkpoint ~kind file))
      ckpt_file
  in
  let result =
    H.Pa_verify.check_live_run ~engine ~slice ~reduce ?domains ?budget
      ?checkpoint ?resume pv params req
  in
  let verdict, suspended =
    match result with
    | Ltl.Check.Concluded v -> (v, false)
    | Ltl.Check.Suspended (reason, cursor) ->
        Option.iter
          (fun file -> Cli_resilience.save_checkpoint ~kind file cursor)
          ckpt_file;
        (Ltl.Check.Exhausted (exhaustion_of_cursor reason cursor), true)
  in
  let formula =
    Format.asprintf "%a" Ltl.Formula.pp
      (H.Requirements.live_formula_pa pv params req)
  in
  if json then
    print_endline
      (verdict_json ~model:"pa" ~variant ~params ~fixed:false ~slice ~reduce
         ~engine ~req ~formula
         ~fairness_names:(fairness_names H.Requirements.live_fairness_pa)
         ~stats:
           (match verdict with
           | Ltl.Check.Exhausted _ -> "null"
           | _ -> pa_stats_json ~slice ~reduce pv params)
         ~to_string:pa_step_string verdict)
  else begin
    Format.printf "PA %s %a %s-live (%s engine%s%s)@."
      (H.Pa_models.variant_name pv)
      H.Params.pp params (H.Requirements.name req)
      (match engine with Ltl.Check.Ndfs -> "ndfs" | Ltl.Check.Scc -> "scc")
      (if slice then ", sliced" else "")
      (if reduce then ", reduced" else "");
    Format.printf "property: %s@." (H.Requirements.live_description req);
    Format.printf "formula:  %s@." formula;
    match verdict with
    | Ltl.Check.Holds -> Format.printf "verdict:  HOLDS@."
    | Ltl.Check.Unknown st ->
        Format.printf "verdict:  UNKNOWN (state bound hit at %d)@." st
    | Ltl.Check.Exhausted e ->
        Format.printf "verdict:  EXHAUSTED (%a)%s@." Mc.Explore.pp_exhaustion
          e
          (if suspended && ckpt_file <> None then "; checkpoint written"
           else "")
    | Ltl.Check.Refuted lasso ->
        Format.printf "verdict:  REFUTED@.@.";
        List.iter
          (fun s -> Format.printf "  %s@." (pa_step_string s))
          lasso.Ltl.Check.prefix;
        Format.printf "  -- cycle repeats forever --@.";
        List.iter
          (fun s -> Format.printf "  %s@." (pa_step_string s))
          lasso.Ltl.Check.cycle
  end;
  verdict

let check_cmd =
  let run variant tmin tmax n fixed pa slice reduce engine json msc jobs bsecs
      bmb ckpt_file ckpt_every resume_file req =
    let domains =
      if jobs < 0 then failwith "--jobs must be >= 0"
      else if jobs = 0 then Domain.recommended_domain_count ()
      else jobs
    in
    let params = H.Params.make ~n ~tmin ~tmax () in
    if pa && fixed then begin
      Format.eprintf
        "hbltl: --fixed applies to the timed-automata models only (the PA \
         encoding has no fixed timing); drop --fixed or --pa@.";
      exit 2
    end;
    if reduce && not pa then begin
      Format.eprintf
        "hbltl: --reduce requires --pa (the ample-set reduction works on \
         the process-algebra models)@.";
      exit 2
    end;
    if (ckpt_file <> None || resume_file <> None) && engine <> Ltl.Check.Scc
    then begin
      Format.eprintf
        "hbltl: --checkpoint/--resume require the scc engine (the nested \
         DFS search state is not checkpointable); add --engine scc@.";
      exit 2
    end;
    let budget = Cli_resilience.budget bsecs bmb in
    if pa then
      verdict_exit
        (run_pa_check ~domains ~budget ?ckpt_file ~ckpt_every ~resume_file
           variant params slice reduce engine json req)
    else begin
      let kind =
        Printf.sprintf
          "hbltl/check/ta/%s/fixed=%b/slice=%b/req=%s/tmin=%d/tmax=%d/n=%d/engine=scc"
          (H.Ta_models.variant_name variant)
          fixed slice (H.Requirements.name req) tmin tmax n
      in
      let resume = Cli_resilience.load_resume ~kind resume_file in
      let checkpoint =
        Option.map
          (fun file -> (ckpt_every, Cli_resilience.save_checkpoint ~kind file))
          ckpt_file
      in
      let result =
        H.Verify.check_live_run ~fixed ~engine ~slice ~domains ~budget
          ?checkpoint ?resume variant params req
      in
      let verdict, suspended =
        match result with
        | Ltl.Check.Concluded v -> (v, false)
        | Ltl.Check.Suspended (reason, cursor) ->
            Option.iter
              (fun file -> Cli_resilience.save_checkpoint ~kind file cursor)
              ckpt_file;
            (Ltl.Check.Exhausted (exhaustion_of_cursor reason cursor), true)
      in
      let formula =
        Format.asprintf "%a" Ltl.Formula.pp
          (H.Requirements.live_formula variant params req)
      in
      if json then
        print_endline
          (verdict_json ~model:"ta" ~variant ~params ~fixed ~slice
             ~reduce:false ~engine ~req ~formula
             ~fairness_names:(fairness_names H.Requirements.live_fairness)
             ~stats:
               (match verdict with
               | Ltl.Check.Exhausted _ -> "null"
               | _ -> ta_stats_json ~fixed ~slice variant params)
             ~to_string:step_string verdict)
      else begin
        Format.printf "%s%s %a %s-live (%s engine)@."
          (H.Ta_models.variant_name variant)
          (if fixed then " [fixed]" else "")
          H.Params.pp params (H.Requirements.name req)
          (match engine with Ltl.Check.Ndfs -> "ndfs" | Ltl.Check.Scc -> "scc");
        Format.printf "property: %s@." (H.Requirements.live_description req);
        Format.printf "formula:  %s@." formula;
        match verdict with
        | Ltl.Check.Holds -> Format.printf "verdict:  HOLDS@."
        | Ltl.Check.Unknown st ->
            Format.printf "verdict:  UNKNOWN (state bound hit at %d)@." st
        | Ltl.Check.Exhausted e ->
            Format.printf "verdict:  EXHAUSTED (%a)%s@."
              Mc.Explore.pp_exhaustion e
              (if suspended && ckpt_file <> None then "; checkpoint written"
               else "")
        | Ltl.Check.Refuted lasso ->
            Format.printf "verdict:  REFUTED@.@.";
            if msc then
              print_string
                (H.Msc.render_lasso ~n
                   ~header:
                     (Printf.sprintf "%s-live refutation — %s%s"
                        (H.Requirements.name req)
                        (H.Ta_models.variant_name variant)
                        (if fixed then " [fixed]" else ""))
                   lasso)
            else begin
              List.iter
                (fun e ->
                  Format.printf "  t=%-4d %s@." e.H.Scenarios.time
                    e.H.Scenarios.action)
                (H.Scenarios.timeline (Ltl.Check.strip lasso.Ltl.Check.prefix));
              Format.printf "  -- cycle repeats forever --@.";
              List.iter
                (fun s -> Format.printf "  %s@." (step_string s))
                lasso.Ltl.Check.cycle
            end
      end;
      verdict_exit verdict
    end
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the deterministic JSON verdict.")
  in
  let msc_arg =
    Arg.(
      value & flag
      & info [ "msc" ]
          ~doc:"Render a refutation lasso as a message sequence chart.")
  in
  let pa_arg =
    Arg.(
      value & flag
      & info [ "pa" ]
          ~doc:"Check the process-algebra encoding instead of the \
                timed-automata one (incompatible with --fixed).")
  in
  let slice_arg =
    Arg.(
      value & flag
      & info [ "slice" ]
          ~doc:"Check the statically sliced model (label-preserving, so \
                liveness verdicts are unchanged; composes with --pa and \
                --reduce).")
  in
  let reduce_arg =
    Arg.(
      value & flag
      & info [ "reduce" ]
          ~doc:"With --pa: explore an ample-set reduced state space \
                (sound for these stutter-invariant formulas).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Exploration domains for the scc engine's product graph \
             (identical verdicts and lassos; ndfs is sequential and \
             ignores this). 0 uses all cores. Composes with --reduce via \
             the parallel-safe cycle proviso.")
  in
  Cmd.v
    (Cmd.info "check" ~exits:Cli_resilience.exits
       ~doc:"Check the liveness formulation of one requirement.")
    Term.(
      const run $ variant_arg $ tmin_arg $ tmax_arg $ n_arg $ fixed_arg
      $ pa_arg $ slice_arg $ reduce_arg $ engine_arg $ json_arg $ msc_arg
      $ jobs_arg
      $ Cli_resilience.budget_secs_arg $ Cli_resilience.budget_mb_arg
      $ Cli_resilience.checkpoint_arg $ Cli_resilience.checkpoint_every_arg
      $ Cli_resilience.resume_arg $ req_arg)

(* ------------------------------------------------------------------ *)
(* table                                                               *)
(* ------------------------------------------------------------------ *)

let race_params variant =
  (* the simultaneity races need tmin = tmax; the multi-party variants
     get the smallest instance to keep the product small *)
  if H.Ta_models.is_multi variant && variant <> H.Ta_models.Static then
    H.Params.make ~tmin:2 ~tmax:2 ()
  else H.Params.make ~tmin:4 ~tmax:4 ()

let table_cmd =
  let run engine =
    Format.printf
      "liveness verdicts at the race point tmin = tmax (%s engine)@.@."
      (match engine with Ltl.Check.Ndfs -> "ndfs" | Ltl.Check.Scc -> "scc");
    Format.printf "  %-19s %-18s %3s %3s %3s@." "variant" "params" "R1" "R2"
      "R3";
    List.iter
      (fun variant ->
        List.iter
          (fun fixed ->
            let params = race_params variant in
            let cell req =
              match H.Verify.check_live ~fixed ~engine variant params req with
              | Ltl.Check.Holds -> "T"
              | Ltl.Check.Refuted _ -> "F"
              | Ltl.Check.Unknown _ | Ltl.Check.Exhausted _ -> "?"
            in
            Format.printf "  %-19s %-18s %3s %3s %3s@."
              (H.Ta_models.variant_name variant
              ^ if fixed then " [fixed]" else "")
              (Format.asprintf "%a" H.Params.pp params)
              (cell H.Requirements.R1) (cell H.Requirements.R2)
              (cell H.Requirements.R3))
          [ false; true ])
      H.Ta_models.all_variants
  in
  Cmd.v
    (Cmd.info "table"
       ~doc:"Liveness verdicts for all six variants, original and fixed.")
    Term.(const run $ engine_arg)

(* ------------------------------------------------------------------ *)
(* smoke: the CI gate                                                  *)
(* ------------------------------------------------------------------ *)

let smoke_cmd =
  let run () =
    let failures = ref 0 in
    let expect what ok =
      Format.printf "%-62s %s@." what (if ok then "ok" else "FAILED");
      if not ok then incr failures
    in
    let check ~fixed ~engine variant req =
      H.Verify.check_live ~fixed ~engine variant (race_params variant) req
    in
    List.iter
      (fun variant ->
        let name = H.Ta_models.variant_name variant in
        List.iter
          (fun req ->
            let rname = H.Requirements.name req in
            let unf = check ~fixed:false ~engine:Ltl.Check.Ndfs variant req in
            let unf' = check ~fixed:false ~engine:Ltl.Check.Scc variant req in
            let fx = check ~fixed:true ~engine:Ltl.Check.Ndfs variant req in
            let fx' = check ~fixed:true ~engine:Ltl.Check.Scc variant req in
            expect
              (Printf.sprintf "%s %s-live: engines agree (unfixed and fixed)"
                 name rname)
              (Ltl.Check.holds unf = Ltl.Check.holds unf'
              && Ltl.Check.holds fx = Ltl.Check.holds fx');
            expect
              (Printf.sprintf "%s %s-live: fixed model holds under fairness"
                 name rname)
              (Ltl.Check.holds fx);
            match req with
            | H.Requirements.R1 ->
                (* the untimed essence of R1 holds even unfixed: the races
                   break the 2*tmax bound, not eventual detection *)
                expect
                  (Printf.sprintf "%s R1-live: holds on the unfixed model too"
                     name)
                  (Ltl.Check.holds unf)
            | H.Requirements.R2 | H.Requirements.R3 ->
                expect
                  (Printf.sprintf
                     "%s %s-live: unfixed model refuted with a lasso cycle"
                     name rname)
                  (match unf with
                  | Ltl.Check.Refuted l -> l.Ltl.Check.cycle <> []
                  | _ -> false))
          H.Requirements.all)
      H.Ta_models.all_variants;
    (* JSON determinism: the same query twice is byte-identical *)
    let render () =
      let variant = H.Ta_models.Binary and req = H.Requirements.R2 in
      let params = race_params variant in
      let verdict, formula =
        run_check variant params false Ltl.Check.Scc req
      in
      verdict_json ~model:"ta" ~variant ~params ~fixed:false ~slice:false
        ~reduce:false ~engine:Ltl.Check.Scc ~req ~formula
        ~fairness_names:(fairness_names H.Requirements.live_fairness)
        ~stats:
          (ta_stats_json ~fixed:false ~slice:false variant
             (race_params variant))
        ~to_string:step_string verdict
    in
    expect "json verdict reproduces byte-identically" (render () = render ());
    (* the ample-set reduction must not change PA liveness verdicts *)
    let pa_params = H.Params.make ~tmin:2 ~tmax:2 () in
    List.iter
      (fun req ->
        let full = H.Pa_verify.check_live H.Pa_models.Binary pa_params req in
        let red =
          H.Pa_verify.check_live ~reduce:true H.Pa_models.Binary pa_params req
        in
        expect
          (Printf.sprintf "pa binary %s-live: reduced agrees with full"
             (H.Requirements.name req))
          (Ltl.Check.holds full = Ltl.Check.holds red))
      H.Requirements.all;
    (* neither must the static slice, on either encoding, alone or
       composed with the reduction *)
    List.iter
      (fun req ->
        let ta_full =
          H.Verify.check_live H.Ta_models.Binary
            (race_params H.Ta_models.Binary) req
        in
        let ta_sl =
          H.Verify.check_live ~slice:true H.Ta_models.Binary
            (race_params H.Ta_models.Binary) req
        in
        expect
          (Printf.sprintf "ta binary %s-live: sliced agrees with full"
             (H.Requirements.name req))
          (Ltl.Check.holds ta_full = Ltl.Check.holds ta_sl);
        let pa_full = H.Pa_verify.check_live H.Pa_models.Binary pa_params req in
        let pa_sl =
          H.Pa_verify.check_live ~slice:true ~reduce:true H.Pa_models.Binary
            pa_params req
        in
        expect
          (Printf.sprintf
             "pa binary %s-live: sliced+reduced agrees with full"
             (H.Requirements.name req))
          (Ltl.Check.holds pa_full = Ltl.Check.holds pa_sl))
      H.Requirements.all;
    (* show one lasso for the log *)
    (match
       H.Verify.check_live ~fixed:false ~engine:Ltl.Check.Scc H.Ta_models.Binary
         (race_params H.Ta_models.Binary) H.Requirements.R2
     with
    | Ltl.Check.Refuted lasso ->
        Format.printf "@.%s"
          (H.Msc.render_lasso
             ~header:"example: R2-live refutation — binary, tmin = tmax"
             lasso)
    | _ -> ());
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "Deterministic liveness gate: fixed models hold under fairness, \
          unfixed ones are refuted with lassos, engines agree, JSON \
          reproduces byte-identically.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "hbltl" ~version:"1.0.0"
      ~doc:
        "LTL liveness model checking of accelerated heartbeat protocols \
         (Büchi products with lasso counterexamples)."
  in
  exit (Cmd.eval (Cmd.group info [ check_cmd; table_cmd; smoke_cmd ]))
