(* hblint: static analysis over the PA and TA heartbeat models.

   Runs the {!Lint} passes (sort inference, structural lints, interval
   range analysis, state-bound estimation) over every shipped model —
   all six protocol variants in both encodings, the TA family in both
   the paper's and the corrected (fixed) timing — and renders a text or
   byte-deterministic JSON report.

   Exit status: 0 when clean, 1 when any error (or, with [--strict],
   any warning) survives the allowlist, 2 on usage errors. *)

open Cmdliner
module H = Heartbeat

type kind =
  | Pa of H.Pa_models.variant
  | Ta of H.Ta_models.variant * bool (* fixed? *)

(* The shipped-model inventory, linted with the same mid-size parameter
   point the test-suite uses.  Names are stable CLI identifiers:
   "pa:binary", "ta:binary", "ta:binary:fixed", ... *)
let inventory : (string * kind) list =
  List.concat_map
    (fun v ->
      let name = H.Ta_models.variant_name v in
      let pa =
        match H.Pa_models.of_ta v with
        | Some pv -> [ ("pa:" ^ name, Pa pv) ]
        | None -> []
      in
      pa
      @ [ ("ta:" ^ name, Ta (v, false)); ("ta:" ^ name ^ ":fixed", Ta (v, true)) ])
    H.Ta_models.all_variants

let lint_params = H.Params.make ~n:2 ~tmin:4 ~tmax:10 ()

let run_one name kind : Lint.Report.t =
  match kind with
  | Pa v ->
      (* The PA reports also carry the dependence analysis the ample-set
         reducer is built on (PA-POR info entries) and what the static
         slice would remove (PA-SLICE). *)
      let spec = H.Pa_models.build v lint_params in
      let r = Lint.Pa.analyze ~model:name spec in
      Lint.Report.make ~model:name
        ~diags:
          (r.Lint.Report.diags
          @ Por.diagnostics (Por.analyze spec)
          @ Slice.Pa.diagnostics (Slice.Pa.slice spec))
        ~stats:r.Lint.Report.stats
  | Ta (v, fixed) ->
      (* TA reports carry the property-free slice summary (TA-SLICE):
         folded constants, dead writes, inactive clocks — the zone
         engine's fragment check (TA-ZONE): per-clock static LU bounds,
         with errors on anything --zone could not explore (diagonal
         constraints, clocks under disjunction, non-integer clock
         comparisons, clock-guarded broadcast receivers) — and the
         location-sensitive LU tables (TA-LU) from the [lubounds]
         backward fixpoint, with a warning per clock whose per-location
         bound diverges to the declared cap. *)
      let model = H.Ta_models.build ~fixed ~with_r1_monitors:true v lint_params in
      let r = Lint.Ta_model.analyze ~model:name model in
      Lint.Report.make ~model:name
        ~diags:
          (r.Lint.Report.diags
          @ Slice.Ta.diagnostics (Slice.Ta.slice model)
          @ Zone.Sym.diagnostics model
          @ Lubounds.diagnostics model)
        ~stats:r.Lint.Report.stats

(* Allowlist entries are "CODE" (waive the code everywhere) or
   "MODEL/CODE" (waive it for one model).  Waived diagnostics stay in the
   report, demoted to info, and never gate. *)
let allow_of specs model (d : Lint.Report.diag) =
  List.exists (fun spec -> Lint.Report.spec_matches spec ~model d) specs

(* Waivers that matched nothing are themselves findings: a stale --allow
   hides future regressions of the code it names.  Reported as a
   synthetic model so they render and gate like any other warning. *)
let unused_waivers allows reports =
  match Lint.Report.unused_allows allows reports with
  | [] -> []
  | unused ->
      [
        Lint.Report.make ~model:"(allowlist)"
          ~diags:
            (List.map
               (fun spec ->
                 Lint.Report.diag ~code:"UNUSED-WAIVER" ~where:spec
                   "allow entry matched no diagnostic in this run")
               unused)
          ~stats:Lint.Report.no_stats;
      ]

let models_arg =
  Arg.(
    value & opt_all string []
    & info [ "model" ] ~docv:"NAME"
        ~doc:
          "Lint only $(docv) (repeatable); e.g. pa:binary, ta:static:fixed. \
           Default: every shipped model.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the deterministic JSON report.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Fail (exit 1) on warnings, not just errors.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Include inferred variable ranges.")

let allow_arg =
  Arg.(
    value & opt_all string []
    & info [ "allow" ] ~docv:"[MODEL/]CODE"
        ~doc:
          "Waive a diagnostic code, globally or for one model \
           (repeatable).  Waived findings are demoted to info.")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List model names and exit.")

let run models json strict verbose allows list =
  if list then begin
    List.iter (fun (name, _) -> print_endline name) inventory;
    0
  end
  else
    let selected =
      match models with
      | [] -> Ok inventory
      | names ->
          let missing =
            List.filter (fun n -> not (List.mem_assoc n inventory)) names
          in
          if missing <> [] then Error missing
          else Ok (List.filter (fun (n, _) -> List.mem n names) inventory)
    in
    match selected with
    | Error missing ->
        List.iter (Printf.eprintf "hblint: unknown model %s\n") missing;
        Printf.eprintf "hblint: use --list for the inventory\n";
        2
    | Ok selected ->
        let reports =
          List.map
            (fun (name, kind) ->
              Lint.Report.waive (allow_of allows) (run_one name kind))
            selected
        in
        let reports = reports @ unused_waivers allows reports in
        if json then print_string (Lint.Report.to_json reports)
        else
          List.iter
            (fun r -> Format.printf "%a" (Lint.Report.pp ~verbose) r)
            reports;
        let total f = List.fold_left (fun acc r -> acc + f r) 0 reports in
        let errors = total Lint.Report.errors
        and warnings = total Lint.Report.warnings in
        if errors > 0 || (strict && warnings > 0) then 1 else 0

let cmd =
  Cmd.v
    (Cmd.info "hblint" ~version:"1.0.0"
       ~doc:
         "Static analysis (typechecking, structural lints, range analysis, \
          state-bound estimation) over the heartbeat PA and TA models.")
    Term.(
      const run $ models_arg $ json_arg $ strict_arg $ verbose_arg
      $ allow_arg $ list_arg)

let () = exit (Cmd.eval' cmd)
