(* Shared resilience plumbing for the command-line tools: budget flags,
   checkpoint/resume flags, documented exit codes, and signal handling
   that turns an interrupted run into a reported partial result instead
   of a dead process. *)

open Cmdliner

(* Exit codes, shared by every verification subcommand:
     0   clean verdict (holds / deadlock-free / campaign passed)
     1   violation, refutation or deadlock found
     3   state bound hit before a verdict (Unknown)
     4   resource budget exhausted or run interrupted; partial results
         were reported (and a checkpoint written when requested)
     130 forced quit (second SIGINT/SIGTERM)
   2 and the 12x range stay with cmdliner (usage / internal errors). *)
let exit_violation = 1
let exit_unknown = 3
let exit_exhausted = 4

let exits =
  Cmd.Exit.info 0 ~doc:"on a clean verdict." ::
  Cmd.Exit.info exit_violation
    ~doc:"when a violation, refutation or deadlock was found." ::
  Cmd.Exit.info exit_unknown
    ~doc:"when the state bound was hit before a verdict (UNKNOWN)." ::
  Cmd.Exit.info exit_exhausted
    ~doc:"when the resource budget tripped or the run was interrupted \
          (SIGINT/SIGTERM); partial results were reported, and a \
          checkpoint written if $(b,--checkpoint) was given." ::
  Cmd.Exit.info 130 ~doc:"on a forced quit (second SIGINT/SIGTERM)." ::
  Cmd.Exit.defaults

let budget_secs_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-secs" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget: after $(docv) seconds the run stops \
           cooperatively and reports partial results (exit 4).")

let budget_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-mb" ] ~docv:"MB"
        ~doc:
          "Live-heap budget in megabytes.  Engines that support it first \
           degrade the state store down the compression ladder in place \
           (exact, hashcompact, bitstate) and only stop once the ladder \
           is exhausted; see $(b,--no-degrade).")

let no_degrade_arg =
  Arg.(
    value & flag
    & info [ "no-degrade" ]
        ~doc:
          "Disable the graceful store degradation on a memory-budget \
           trip: stop and report partial results instead.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Write a versioned checkpoint to $(docv) periodically and on \
           suspension (budget trip or signal), for $(b,--resume).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 100_000
    & info [ "checkpoint-every" ] ~docv:"STATES"
        ~doc:
          "Periodic checkpoint interval in expanded states (sequential \
           engine only; the parallel engine checkpoints on suspension).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from a checkpoint written by $(b,--checkpoint).  The \
           model, parameters and store mode must match the writing run \
           (the checkpoint records them and a mismatch is rejected).  \
           Sequential resumed runs are byte-identical to uninterrupted \
           ones; parallel ones are verdict-identical.")

(* Every resilient subcommand carries a budget, even without limits: it
   is the SIGINT/SIGTERM cancellation token that turns Ctrl-C into a
   partial result (plus checkpoint) instead of a dead process.  A second
   signal force-quits with 130. *)
let budget ?(signals = true) secs mb =
  let b = Mc.Budget.make ?wall_secs:secs ?mem_mb:mb () in
  if signals then Mc.Budget.install_signal_handlers b;
  b

let save_checkpoint ~kind file cursor =
  Mc.Checkpoint.save ~file ~kind cursor;
  Format.eprintf "checkpoint written to %s@." file

let load_resume ~kind = function
  | None -> None
  | Some file -> (
      match Mc.Checkpoint.load ~file ~kind with
      | Ok c -> Some c
      | Error e ->
          Format.eprintf "cannot resume from %s: %s@." file e;
          exit 2)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let coverage_json (c : Mc.Store.coverage) =
  Printf.sprintf "{\"mode\":\"%s\",\"est_coverage\":%.6f}"
    (json_escape c.Mc.Store.mode)
    c.Mc.Store.est_coverage

let exhaustion_json (e : Mc.Explore.exhaustion) =
  Printf.sprintf "{\"reason\":\"%s\",\"states\":%d,\"coverage\":%s}"
    (Mc.Budget.reason_name e.Mc.Explore.reason)
    e.Mc.Explore.states_so_far
    (coverage_json e.Mc.Explore.coverage)
