(* hbverify: model-check the accelerated heartbeat protocols and
   regenerate the paper's verification tables and counterexamples. *)

open Cmdliner
module H = Heartbeat

let variant_conv =
  let parse s =
    match
      List.find_opt
        (fun v -> H.Ta_models.variant_name v = s)
        H.Ta_models.all_variants
    with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown variant %s (expected one of: %s)" s
                (String.concat ", "
                   (List.map H.Ta_models.variant_name H.Ta_models.all_variants))))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (H.Ta_models.variant_name v))

let variant_arg =
  Arg.(
    value
    & opt variant_conv H.Ta_models.Binary
    & info [ "v"; "variant" ] ~docv:"VARIANT"
        ~doc:"Protocol variant: binary, revised, two-phase, static, \
              expanding or dynamic.")

let tmin_arg =
  Arg.(value & opt int 1 & info [ "tmin" ] ~docv:"TMIN" ~doc:"Lower round bound.")

let tmax_arg =
  Arg.(value & opt int 10 & info [ "tmax" ] ~docv:"TMAX" ~doc:"Upper round bound.")

let n_arg =
  Arg.(
    value & opt int 1
    & info [ "n" ] ~docv:"N" ~doc:"Number of participants (multi-party variants).")

let fixed_arg =
  Arg.(
    value & flag
    & info [ "fixed" ] ~doc:"Verify the corrected (section-6) version.")

let req_conv =
  let parse = function
    | "R1" | "r1" -> Ok H.Requirements.R1
    | "R2" | "r2" -> Ok H.Requirements.R2
    | "R3" | "r3" -> Ok H.Requirements.R3
    | s -> Error (`Msg ("unknown requirement " ^ s))
  in
  Arg.conv
    (parse, fun ppf r -> Format.pp_print_string ppf (H.Requirements.name r))

let print_variant_table ~fixed ~n variant =
  let rows = H.Verify.table ~fixed ~n variant in
  let header =
    Printf.sprintf "%s%s (n=%d)"
      (H.Ta_models.variant_name variant)
      (if fixed then " [fixed]" else "")
      n
  in
  Format.printf "%a@." (fun ppf -> H.Verify.pp_table ppf ~header) rows

let table1_cmd =
  let run () =
    List.iter
      (print_variant_table ~fixed:false ~n:1)
      [ H.Ta_models.Binary; H.Ta_models.Revised; H.Ta_models.Two_phase;
        H.Ta_models.Static ]
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Reproduce Table 1: (revised) binary, two-phase and static.")
    Term.(const run $ const ())

let table2_cmd =
  let run () =
    List.iter
      (print_variant_table ~fixed:false ~n:1)
      [ H.Ta_models.Expanding; H.Ta_models.Dynamic ]
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce Table 2: expanding and dynamic.")
    Term.(const run $ const ())

let table_fixed_cmd =
  let run () =
    List.iter (print_variant_table ~fixed:true ~n:1) H.Ta_models.all_variants
  in
  Cmd.v
    (Cmd.info "table-fixed"
       ~doc:"Verify the section-6 fixed versions of all six variants.")
    Term.(const run $ const ())

let ta_slice_arg =
  Arg.(
    value & flag
    & info [ "slice" ]
        ~doc:"Model-check the property-directed static slice instead of the               full model (cone-of-influence + dead writes + constant               folding + clock activity; exact, same verdicts).")

let zone_arg =
  Arg.(
    value & flag
    & info [ "zone" ]
        ~doc:"Check the dense-time semantics through the symbolic zone \
              engine (DBM zone graph with inclusion subsumption) instead \
              of the discrete explorer.  Verdicts coincide for the shipped \
              models; counterexamples are action sequences modulo time.")

let lu_conv =
  Arg.enum [ ("global", Zone.Sym.Global); ("location", Zone.Sym.Location) ]

let lu_arg =
  Arg.(
    value
    & opt lu_conv Zone.Sym.Global
    & info [ "lu" ] ~docv:"MODE"
        ~doc:"Zone-extrapolation bounds: $(b,global) uses one LU pair per \
              clock over the whole network, $(b,location) the per-location \
              tables from the lubounds backward fixpoint (same verdicts, \
              never more zones).  Needs $(b,--zone).")

let check_cmd =
  let run variant tmin tmax n fixed slice zone lu bsecs bmb no_degrade req =
    let params = H.Params.make ~n ~tmin ~tmax () in
    let budget = Cli_resilience.budget bsecs bmb in
    let outcome =
      H.Verify.check ~fixed ~slice ~zone ~lu ~budget ~degrade:(not no_degrade)
        variant params req
    in
    let name ppf () =
      Format.fprintf ppf "%s%s %a %s%s%s"
        (H.Ta_models.variant_name variant)
        (if fixed then " [fixed]" else "")
        H.Params.pp params (H.Requirements.name req)
        (if slice then " [sliced]" else "")
        (if zone then
           if lu = Zone.Sym.Location then " [zone lu=location]" else " [zone]"
         else "")
    in
    match outcome.H.Verify.exhausted with
    | Some e ->
        Format.printf "%a: EXHAUSTED (%a) — no violation found so far@." name
          () Mc.Explore.pp_exhaustion e;
        exit Cli_resilience.exit_exhausted
    | None ->
        Format.printf "%a: %s@." name ()
          (if outcome.H.Verify.holds then "HOLDS" else "VIOLATED");
        Option.iter
          (fun trace ->
            Format.printf "counterexample:@.";
            if zone then
              (* zone traces abstract delays away: an action sequence
                 modulo time, not a timeline *)
              List.iter
                (function
                  | Ta.Semantics.Act a -> Format.printf "  %s@." a
                  | Ta.Semantics.Delay -> ())
                trace
            else
              List.iter
                (fun e ->
                  Format.printf "  t=%-4d %s@." e.H.Scenarios.time
                    e.H.Scenarios.action)
                (H.Scenarios.timeline trace))
          outcome.H.Verify.counterexample;
        if not outcome.H.Verify.holds then exit Cli_resilience.exit_violation
  in
  let req_arg =
    Arg.(
      required
      & pos 0 (some req_conv) None
      & info [] ~docv:"REQ" ~doc:"Requirement: R1, R2 or R3.")
  in
  Cmd.v
    (Cmd.info "check" ~exits:Cli_resilience.exits
       ~doc:"Model-check one requirement on one variant.")
    Term.(
      const run $ variant_arg $ tmin_arg $ tmax_arg $ n_arg $ fixed_arg
      $ ta_slice_arg $ zone_arg $ lu_arg $ Cli_resilience.budget_secs_arg
      $ Cli_resilience.budget_mb_arg $ Cli_resilience.no_degrade_arg
      $ req_arg)

let cex_cmd =
  let scenarios =
    [
      ("r1a", H.Scenarios.fig10a);
      ("r1b", H.Scenarios.fig10b);
      ("r2", H.Scenarios.fig11);
      ("r3", H.Scenarios.fig12);
      ("r2join", H.Scenarios.fig13);
    ]
  in
  let name_conv =
    let parse s =
      if List.mem_assoc s scenarios then Ok s
      else
        Error
          (`Msg
             (Printf.sprintf "unknown scenario %s (expected: %s)" s
                (String.concat ", " (List.map fst scenarios))))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let msc_arg =
    Arg.(
      value & flag
      & info [ "msc" ]
          ~doc:"Render the trace as a message sequence chart instead of an \
                event list.")
  in
  let run name msc =
    let scenario = (List.assoc name scenarios) () in
    if msc then print_string (H.Msc.render scenario)
    else Format.printf "%a@." H.Scenarios.pp scenario
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some name_conv) None
      & info [] ~docv:"SCENARIO"
          ~doc:"One of r1a (Fig 10a), r1b (Fig 10b), r2 (Fig 11), r3 \
                (Fig 12), r2join (Fig 13).")
  in
  Cmd.v
    (Cmd.info "cex" ~doc:"Print a counterexample figure of the paper.")
    Term.(const run $ name_arg $ msc_arg)

let bounds_cmd =
  let run tmax =
    Format.printf
      "tmin  claimed(2*tmax)  corrected  halving-worst  p[i]-tight  join@.";
    for tmin = 1 to tmax do
      let p = H.Params.make ~tmin ~tmax () in
      Format.printf "%4d  %15d  %9d  %13d  %10d  %4d@." tmin
        (H.Bounds.original_p0_claim p)
        (H.Bounds.p0_detection p)
        (H.Bounds.p0_detection_exhaustive p)
        (H.Bounds.pi_waiting p)
        (H.Bounds.pi_join_waiting p)
    done
  in
  Cmd.v
    (Cmd.info "bounds"
       ~doc:"Print the section-6.2 detection-bound analysis for a tmin sweep.")
    Term.(const run $ tmax_arg)

let worst_cmd =
  let run variant tmin tmax fixed =
    let params = H.Params.make ~tmin ~tmax () in
    let measured = H.Verify.worst_detection ~fixed variant params in
    Format.printf
      "%s%s %a: worst-case detection measured on the model = %d (analytic        halving worst = %d, corrected bound = %d, original claim = %d)@."
      (H.Ta_models.variant_name variant)
      (if fixed then " [fixed]" else "")
      H.Params.pp params measured
      (H.Bounds.p0_detection_exhaustive params)
      (H.Bounds.p0_detection params)
      (H.Bounds.original_p0_claim params)
  in
  Cmd.v
    (Cmd.info "worst"
       ~doc:"Measure the exact worst-case detection delay on the model              (binary search over the watchdog bound).")
    Term.(const run $ variant_arg $ tmin_arg $ tmax_arg $ fixed_arg)

(* ------------------------------------------------------------------ *)
(* process-algebra checks (with optional partial-order reduction)      *)
(* ------------------------------------------------------------------ *)

let pa_variants =
  [ H.Pa_models.Binary; H.Pa_models.Revised; H.Pa_models.Two_phase;
    H.Pa_models.Static; H.Pa_models.Expanding; H.Pa_models.Dynamic ]

let pa_variant_conv =
  let parse s =
    match
      List.find_opt (fun v -> H.Pa_models.variant_name v = s) pa_variants
    with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown variant %s (expected one of: %s)" s
                (String.concat ", " (List.map H.Pa_models.variant_name pa_variants))))
  in
  Arg.conv
    (parse, fun ppf v -> Format.pp_print_string ppf (H.Pa_models.variant_name v))

let pa_variant_arg =
  Arg.(
    value
    & opt pa_variant_conv H.Pa_models.Binary
    & info [ "v"; "variant" ] ~docv:"VARIANT"
        ~doc:"Protocol variant: binary, revised, two-phase, static, \
              expanding or dynamic.")

let reduce_arg =
  Arg.(
    value & flag
    & info [ "reduce" ]
        ~doc:"Explore an ample-set reduced state space (sound partial-order \
              reduction; same verdicts, fewer states).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the deterministic JSON verdict.")

let slice_arg =
  Arg.(
    value & flag
    & info [ "slice" ]
        ~doc:"Explore the statically sliced model (constant parameter               folding + dead-parameter elimination; exact, same verdicts;               composes with $(b,--reduce)).")

(* Exploration statistics of the (possibly sliced and/or reduced) state
   space as a deterministic JSON object; with [slice] or [reduce] also
   the full-space size and the combined reduction ratio, so CI logs show
   what the passes bought. *)
let stats_json ~slice ~reduce variant params =
  let st = H.Pa_verify.explore ~slice ~reduce variant params in
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"states\":%d,\"transitions\":%d,\"complete\":%b"
    st.H.Pa_verify.states st.H.Pa_verify.transitions st.H.Pa_verify.complete;
  if slice || reduce then begin
    let full = H.Pa_verify.explore variant params in
    Printf.bprintf buf ",\"full_states\":%d,\"reduction_ratio\":%.2f"
      full.H.Pa_verify.states
      (float_of_int full.H.Pa_verify.states /. float_of_int st.H.Pa_verify.states)
  end;
  Buffer.add_string buf "}";
  Buffer.contents buf

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Exploration domains: 1 runs the sequential engine, more runs the \
           work-stealing parallel engine (identical verdicts; composes with \
           $(b,--reduce) through the parallel-safe cycle proviso). 0 uses \
           all cores.")

let resolve_jobs jobs =
  if jobs < 0 then failwith "--jobs must be >= 0"
  else if jobs = 0 then Domain.recommended_domain_count ()
  else jobs

let pa_check_cmd =
  let run variant tmin tmax n slice reduce json jobs bsecs bmb no_degrade req =
    let domains = resolve_jobs jobs in
    let params = H.Params.make ~n ~tmin ~tmax () in
    let budget = Cli_resilience.budget bsecs bmb in
    let verdict =
      H.Pa_verify.check_verdict ~slice ~reduce ~domains ~budget
        ~degrade:(not no_degrade) variant params req
    in
    let print_json verdict_field stats =
      Printf.printf
        "{\"tool\":\"hbverify\",\"model\":\"pa\",\"variant\":\"%s\",\"tmin\":%d,\"tmax\":%d,\"n\":%d,\"requirement\":\"%s\",\"slice\":%b,\"reduce\":%b,%s,\"stats\":%s}\n"
        (H.Pa_models.variant_name variant)
        params.H.Params.tmin params.H.Params.tmax params.H.Params.n
        (H.Requirements.name req) slice reduce verdict_field stats
    in
    let print_text status =
      Format.printf "PA %s %a %s%s%s: %s@."
        (H.Pa_models.variant_name variant)
        H.Params.pp params (H.Requirements.name req)
        (if slice then " [sliced]" else "")
        (if reduce then " [reduced]" else "")
        status
    in
    match verdict with
    | Mc.Safety.Holds ->
        if json then
          print_json "\"verdict\":\"holds\""
            (stats_json ~slice ~reduce variant params)
        else print_text "HOLDS"
    | Mc.Safety.Violated _ ->
        if json then
          print_json "\"verdict\":\"violated\""
            (stats_json ~slice ~reduce variant params)
        else print_text "VIOLATED";
        exit Cli_resilience.exit_violation
    | Mc.Safety.Unknown st ->
        (* no re-exploration for the stats object: it would hit the same
           bound again *)
        if json then
          print_json
            (Printf.sprintf "\"verdict\":\"unknown\",\"states\":%d" st)
            "null"
        else print_text (Printf.sprintf "UNKNOWN (state bound hit at %d)" st);
        exit Cli_resilience.exit_unknown
    | Mc.Safety.Exhausted e ->
        if json then
          print_json
            (Printf.sprintf "\"verdict\":\"exhausted\",\"exhaustion\":%s"
               (Cli_resilience.exhaustion_json e))
            "null"
        else
          print_text
            (Format.asprintf "EXHAUSTED (%a) — no violation found so far"
               Mc.Explore.pp_exhaustion e);
        exit Cli_resilience.exit_exhausted
  in
  let req_arg =
    Arg.(
      required
      & pos 0 (some req_conv) None
      & info [] ~docv:"REQ" ~doc:"Requirement: R1, R2 or R3.")
  in
  Cmd.v
    (Cmd.info "pa-check" ~exits:Cli_resilience.exits
       ~doc:"Model-check one requirement on a process-algebra model, \
             optionally with ample-set partial-order reduction.")
    Term.(
      const run $ pa_variant_arg $ tmin_arg $ tmax_arg $ n_arg $ slice_arg
      $ reduce_arg $ json_arg $ jobs_arg $ Cli_resilience.budget_secs_arg
      $ Cli_resilience.budget_mb_arg $ Cli_resilience.no_degrade_arg
      $ req_arg)

(* The soundness gate for `make por`: on every shipped variant, the
   reduced and full explorations must give the same verdict for every
   requirement.  Multi-party variants run at n = 1 except static (n = 2),
   keeping the gate fast while still covering a genuinely concurrent
   instance. *)
let pa_smoke_cmd =
  let smoke_params variant =
    (* static gets a genuinely concurrent instance (n = 2, the point
       where the reduction passes 2x) at a tmax the gate can afford *)
    if variant = H.Pa_models.Static then H.Params.make ~n:2 ~tmin:2 ~tmax:3 ()
    else H.Params.make ~n:1 ~tmin:2 ~tmax:4 ()
  in
  let run json =
    let failures = ref 0 in
    let rows =
      List.map
        (fun variant ->
          let params = smoke_params variant in
          let verdicts =
            List.map
              (fun req ->
                let full = H.Pa_verify.check variant params req in
                let red = H.Pa_verify.check ~reduce:true variant params req in
                if full <> red then incr failures;
                (req, full, red))
              H.Requirements.all
          in
          let full = H.Pa_verify.explore ~reduce:false variant params in
          let red = H.Pa_verify.explore ~reduce:true variant params in
          if not (full.H.Pa_verify.complete && red.H.Pa_verify.complete) then
            incr failures;
          (variant, params, verdicts, full, red))
        pa_variants
    in
    let ratio (full : H.Pa_verify.explore_stats) (red : H.Pa_verify.explore_stats) =
      float_of_int full.H.Pa_verify.states /. float_of_int red.H.Pa_verify.states
    in
    if json then begin
      print_string "{\"tool\":\"hbverify\",\"gate\":\"pa-smoke\",\"rows\":[";
      List.iteri
        (fun k (variant, params, verdicts, full, red) ->
          if k > 0 then print_string ",";
          Printf.printf
            "{\"variant\":\"%s\",\"tmin\":%d,\"tmax\":%d,\"n\":%d,\"parity\":%b,\"full_states\":%d,\"reduced_states\":%d,\"reduction_ratio\":%.2f}"
            (H.Pa_models.variant_name variant)
            params.H.Params.tmin params.H.Params.tmax params.H.Params.n
            (List.for_all (fun (_, f, r) -> f = r) verdicts)
            full.H.Pa_verify.states red.H.Pa_verify.states (ratio full red))
        rows;
      Printf.printf "],\"failures\":%d}\n" !failures
    end
    else
      List.iter
        (fun (variant, params, verdicts, full, red) ->
          Format.printf "PA %-10s %a " (H.Pa_models.variant_name variant)
            H.Params.pp params;
          List.iter
            (fun (req, f, r) ->
              Format.printf "%s %s  " (H.Requirements.name req)
                (if f = r then "ok" else "VERDICT CHANGED"))
            verdicts;
          Format.printf "states %d -> %d (%.2fx)@." full.H.Pa_verify.states
            red.H.Pa_verify.states (ratio full red))
        rows;
    (* the reduction must actually reduce: at least one shipped variant
       at least halves its state count *)
    let best =
      List.fold_left
        (fun acc (_, _, _, full, red) -> Float.max acc (ratio full red))
        0. rows
    in
    if best < 2.0 then begin
      Format.printf "FAILED: best reduction ratio %.2f < 2.0@." best;
      incr failures
    end;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "pa-smoke"
       ~doc:"Partial-order-reduction gate: reduced and full explorations \
             agree on every requirement verdict for all six \
             process-algebra variants, and the reduction at least halves \
             one of them.")
    Term.(const run $ json_arg)

(* The soundness gate for `make slice`: slicing is an exact projection,
   so on every shipped variant the sliced, sliced+reduced and full
   explorations must give the same verdict for every requirement — on
   both encodings — and every sliced TA counterexample must replay in
   the full model (the certificate check).  Parameters mirror pa-smoke:
   small enough for CI, concurrent enough to mean something. *)
let slice_smoke_cmd =
  let pa_params variant =
    if variant = H.Pa_models.Static then H.Params.make ~n:2 ~tmin:2 ~tmax:3 ()
    else H.Params.make ~n:1 ~tmin:2 ~tmax:4 ()
  in
  (* tmin = tmax is the race point where the unfixed R2/R3 are violated,
     so the certificate-replay path is actually exercised *)
  let ta_params_list =
    [ H.Params.make ~n:1 ~tmin:2 ~tmax:2 (); H.Params.make ~n:1 ~tmin:2 ~tmax:3 () ]
  in
  let run json =
    let failures = ref 0 in
    (* PA: verdict parity (full = sliced = sliced+reduced, the latter at
       domains 1 and 4) and state-count ratios *)
    let pa_rows =
      List.map
        (fun variant ->
          let params = pa_params variant in
          let parity =
            List.for_all
              (fun req ->
                let full = H.Pa_verify.check variant params req in
                let sl = H.Pa_verify.check ~slice:true variant params req in
                let slred =
                  H.Pa_verify.check ~slice:true ~reduce:true variant params req
                in
                let slpar =
                  H.Pa_verify.check ~slice:true ~reduce:true ~domains:4 variant
                    params req
                in
                let ok = full = sl && full = slred && full = slpar in
                if not ok then incr failures;
                ok)
              H.Requirements.all
          in
          let full = H.Pa_verify.explore variant params in
          let sl = H.Pa_verify.explore ~slice:true variant params in
          let slred =
            H.Pa_verify.explore ~slice:true ~reduce:true variant params
          in
          if not
               (full.H.Pa_verify.complete && sl.H.Pa_verify.complete
              && slred.H.Pa_verify.complete)
          then incr failures;
          (variant, params, parity, full, sl, slred))
        pa_variants
    in
    (* TA: verdict parity, certificate replay of every sliced
       counterexample in the full model, and the property-free slice's
       state-count ratio *)
    let replays = ref 0 in
    let ta_rows =
      List.concat_map
        (fun variant ->
          List.map
            (fun ta_params ->
              let results =
                List.map
                  (fun req ->
                    let full = H.Verify.check variant ta_params req in
                    let sl = H.Verify.check ~slice:true variant ta_params req in
                    let parity = full.H.Verify.holds = sl.H.Verify.holds in
                    let replayed =
                      match sl.H.Verify.counterexample with
                      | None -> true
                      | Some trace ->
                          incr replays;
                          let model =
                            H.Ta_models.build
                              ~with_r1_monitors:
                                (H.Requirements.needs_monitors req)
                              variant ta_params
                          in
                          Slice.replay
                            (Ta.Semantics.system (Ta.Semantics.compile model))
                            trace
                    in
                    if not (parity && replayed) then incr failures;
                    (req, parity, replayed))
                  H.Requirements.all
              in
              let model = H.Ta_models.build variant ta_params in
              let count sys =
                (Mc.Explore.space ~max_states:10_000_000 sys).Mc.Explore.lts
                |> Lts.Graph.num_states
              in
              let full_states =
                count (Ta.Semantics.system (Ta.Semantics.compile model))
              in
              let sliced_states =
                let sl = Slice.Ta.slice model in
                count
                  (Slice.Ta.system sl (Ta.Semantics.compile sl.Slice.Ta.model))
              in
              (variant, ta_params, results, full_states, sliced_states))
            ta_params_list)
        H.Ta_models.all_variants
    in
    let ratio (full : H.Pa_verify.explore_stats)
        (sl : H.Pa_verify.explore_stats) =
      float_of_int full.H.Pa_verify.states
      /. float_of_int sl.H.Pa_verify.states
    in
    if json then begin
      print_string "{\"tool\":\"hbverify\",\"gate\":\"slice-smoke\",\"pa\":[";
      List.iteri
        (fun k (variant, params, parity, full, sl, slred) ->
          if k > 0 then print_string ",";
          Printf.printf
            "{\"variant\":\"%s\",\"tmin\":%d,\"tmax\":%d,\"n\":%d,\"parity\":%b,\"full_states\":%d,\"sliced_states\":%d,\"slice_ratio\":%.2f,\"slice_reduce_states\":%d,\"slice_reduce_ratio\":%.2f}"
            (H.Pa_models.variant_name variant)
            params.H.Params.tmin params.H.Params.tmax params.H.Params.n parity
            full.H.Pa_verify.states sl.H.Pa_verify.states (ratio full sl)
            slred.H.Pa_verify.states (ratio full slred))
        pa_rows;
      print_string "],\"ta\":[";
      List.iteri
        (fun k (variant, params, results, full_states, sliced_states) ->
          if k > 0 then print_string ",";
          Printf.printf
            "{\"variant\":\"%s\",\"tmin\":%d,\"tmax\":%d,\"parity\":%b,\"replayed\":%b,\"full_states\":%d,\"sliced_states\":%d,\"slice_ratio\":%.2f}"
            (H.Ta_models.variant_name variant)
            params.H.Params.tmin params.H.Params.tmax
            (List.for_all (fun (_, p, _) -> p) results)
            (List.for_all (fun (_, _, r) -> r) results)
            full_states sliced_states
            (float_of_int full_states /. float_of_int sliced_states))
        ta_rows;
      Printf.printf "],\"cache\":%s,\"failures\":%d}\n"
        (H.Analysis_cache.to_json (H.Analysis_cache.stats ()))
        !failures
    end
    else begin
      List.iter
        (fun (variant, params, parity, full, sl, slred) ->
          Format.printf
            "PA %-10s %a %s  states %d -> sliced %d (%.2fx) -> +reduce %d \
             (%.2fx)@."
            (H.Pa_models.variant_name variant)
            H.Params.pp params
            (if parity then "parity ok" else "VERDICT CHANGED")
            full.H.Pa_verify.states sl.H.Pa_verify.states (ratio full sl)
            slred.H.Pa_verify.states (ratio full slred))
        pa_rows;
      List.iter
        (fun (variant, params, results, full_states, sliced_states) ->
          Format.printf "TA %-10s %a " (H.Ta_models.variant_name variant)
            H.Params.pp params;
          List.iter
            (fun (req, parity, replayed) ->
              Format.printf "%s %s%s  " (H.Requirements.name req)
                (if parity then "ok" else "VERDICT CHANGED")
                (if replayed then "" else " REPLAY FAILED"))
            results;
          Format.printf "states %d -> sliced %d (%.2fx)@." full_states
            sliced_states
            (float_of_int full_states /. float_of_int sliced_states))
        ta_rows;
      Format.printf "%a@." H.Analysis_cache.pp (H.Analysis_cache.stats ())
    end;
    (* the slice must actually shrink something: at least one TA
       variant's sliced space is at most half the full one (the clock
       activity and dead-variable passes are worth that much even
       property-free) *)
    let best =
      List.fold_left
        (fun acc (_, _, _, full_states, sliced_states) ->
          Float.max acc
            (float_of_int full_states /. float_of_int sliced_states))
        0. ta_rows
    in
    if best < 2.0 then begin
      Format.printf "FAILED: best TA slice ratio %.2f < 2.0@." best;
      incr failures
    end;
    (* at least one sliced counterexample must have gone through the
       certificate replay, or the replay check above checked nothing *)
    if !replays = 0 then begin
      Format.printf "FAILED: no sliced counterexample exercised the replay@.";
      incr failures
    end;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "slice-smoke"
       ~doc:"Static-slicing gate: sliced (and sliced+reduced, sequential \
             and 4-domain) explorations agree with the full ones on every \
             requirement verdict for all six variants in both encodings, \
             sliced counterexamples replay in the full models, and the \
             slice measurably shrinks at least one state space.")
    Term.(const run $ json_arg)

(* The soundness gate for `make zone`: on every shipped variant, the
   dense-time zone verdict must equal the discrete one for every
   requirement, every zone counterexample must replay in the discrete
   semantics (delays free, actions exact), and inclusion subsumption
   must keep the verdicts while never storing more states.  All output
   is byte-deterministic: state and subsumption counts, no wall
   times. *)
let zone_smoke_cmd =
  let smoke_params = H.Params.make ~n:1 ~tmin:1 ~tmax:2 () in
  let run json =
    let failures = ref 0 in
    let replays = ref 0 in
    let rows =
      List.map
        (fun variant ->
          let params = smoke_params in
          let results =
            List.map
              (fun req ->
                let disc = H.Verify.check variant params req in
                let zone = H.Verify.check ~zone:true variant params req in
                let zloc =
                  H.Verify.check ~zone:true ~lu:Zone.Sym.Location variant
                    params req
                in
                let parity = disc.H.Verify.holds = zone.H.Verify.holds in
                let lu_parity = disc.H.Verify.holds = zloc.H.Verify.holds in
                let replay trace =
                  incr replays;
                  let model =
                    H.Ta_models.build
                      ~with_r1_monitors:(H.Requirements.needs_monitors req)
                      variant params
                  in
                  let net = Ta.Semantics.compile model in
                  Zone.Reach.guided_replay (Ta.Semantics.system net) ~trace
                    ~goal:(H.Requirements.bad_state variant params net req)
                in
                let replayed =
                  (match zone.H.Verify.counterexample with
                  | None -> true
                  | Some trace -> replay trace)
                  && match zloc.H.Verify.counterexample with
                     | None -> true
                     | Some trace -> replay trace
                in
                if not (parity && lu_parity && replayed) then incr failures;
                (req, parity, lu_parity, replayed))
              H.Requirements.all
          in
          let model = H.Ta_models.build ~with_r1_monitors:true variant params in
          let z = Zone.Sym.compile model in
          let zl = Zone.Sym.compile ~lu:Zone.Sym.Location model in
          let s_on = Zone.Reach.new_stats () in
          let s_off = Zone.Reach.new_stats () in
          let s_loc = Zone.Reach.new_stats () in
          let n_on, c_on = Zone.Reach.count ~subsume:true ~stats:s_on z in
          let n_off, c_off = Zone.Reach.count ~subsume:false ~stats:s_off z in
          let n_loc, c_loc = Zone.Reach.count ~subsume:true ~stats:s_loc zl in
          if not (c_on && c_off && n_on <= n_off) then incr failures;
          (* the location-LU monotonicity gate: per-location bounds are
             at most the global ones, so coarser extrapolation can only
             merge zones — never create new ones *)
          if not (c_loc && n_loc <= n_on) then incr failures;
          (variant, params, results, n_on, s_on.Zone.Reach.subsumed, n_off,
           n_loc))
        H.Ta_models.all_variants
    in
    (* subsumption must actually discard something on at least one
       shipped variant, or the discipline is untested *)
    let total_subsumed =
      List.fold_left (fun acc (_, _, _, _, s, _, _) -> acc + s) 0 rows
    in
    if json then begin
      print_string "{\"tool\":\"hbverify\",\"gate\":\"zone-smoke\",\"rows\":[";
      List.iteri
        (fun k (variant, params, results, n_on, subsumed, n_off, n_loc) ->
          if k > 0 then print_string ",";
          Printf.printf
            "{\"variant\":\"%s\",\"tmin\":%d,\"tmax\":%d,\"n\":%d,\"parity\":%b,\"replayed\":%b,\"zone_states\":%d,\"subsumed\":%d,\"zone_states_no_subsume\":%d,\"lu_parity\":%b,\"zone_states_lu_location\":%d}"
            (H.Ta_models.variant_name variant)
            params.H.Params.tmin params.H.Params.tmax params.H.Params.n
            (List.for_all (fun (_, p, _, _) -> p) results)
            (List.for_all (fun (_, _, _, r) -> r) results)
            n_on subsumed n_off
            (List.for_all (fun (_, _, p, _) -> p) results)
            n_loc)
        rows;
      Printf.printf
        "],\"replays\":%d,\"total_subsumed\":%d,\"lu_version\":2,\"failures\":%d}\n"
        !replays total_subsumed !failures
    end
    else
      List.iter
        (fun (variant, params, results, n_on, subsumed, n_off, n_loc) ->
          Format.printf "TA %-10s %a " (H.Ta_models.variant_name variant)
            H.Params.pp params;
          List.iter
            (fun (req, parity, lu_parity, replayed) ->
              Format.printf "%s %s%s%s  " (H.Requirements.name req)
                (if parity then "ok" else "VERDICT CHANGED")
                (if lu_parity then "" else " LU VERDICT CHANGED")
                (if replayed then "" else " REPLAY FAILED"))
            results;
          Format.printf
            "zones %d (+%d subsumed; %d without subsumption; %d with \
             location LU)@."
            n_on subsumed n_off n_loc)
        rows;
    if total_subsumed = 0 then begin
      Format.printf "FAILED: subsumption never discarded a zone@.";
      incr failures
    end;
    if !replays = 0 then begin
      Format.printf "FAILED: no zone counterexample exercised the replay@.";
      incr failures
    end;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "zone-smoke"
       ~doc:"Zone-engine gate: the dense-time zone verdicts agree with the \
             discrete ones on every requirement for all six variants under \
             both LU-extrapolation modes, zone counterexamples replay \
             discretely, inclusion subsumption keeps verdicts while \
             measurably discarding zones, and location-LU extrapolation \
             never stores more zones than global LU.")
    Term.(const run $ json_arg)

(* Check an arbitrary .xta model (e.g. the Fontana-Cleaveland suite in
   examples/fc/) against forbidden-location sets under the zone
   engine. *)
let xta_cmd =
  let forbid_conv =
    let parse s =
      let pairs = String.split_on_char ',' s in
      let parsed =
        List.map
          (fun p ->
            match String.index_opt p '.' with
            | Some k ->
                Ok
                  ( String.sub p 0 k,
                    String.sub p (k + 1) (String.length p - k - 1) )
            | None -> Error p)
          pairs
      in
      match
        List.partition_map
          (function Ok x -> Left x | Error e -> Right e)
          parsed
      with
      | pairs, [] -> Ok pairs
      | _, bad :: _ ->
          Error (`Msg (Printf.sprintf "expected AUTO.LOC, got %S" bad))
    in
    Arg.conv
      ( parse,
        fun ppf pairs ->
          Format.pp_print_string ppf
            (String.concat "," (List.map (fun (a, l) -> a ^ "." ^ l) pairs)) )
  in
  let forbid_arg =
    Arg.(
      value & opt_all forbid_conv []
      & info [ "forbid" ] ~docv:"AUTO.LOC[,AUTO.LOC...]"
          ~doc:"Forbidden location set: the model is unsafe if all the \
                listed automaton locations are occupied simultaneously.  \
                Repeat the flag for alternative bad sets (a disjunction).")
  in
  let fc_arg =
    Arg.(
      value & opt (some string) None
      & info [ "fc" ] ~docv:"NAME"
          ~doc:"Instead of a file, load a built-in Fontana-Cleaveland \
                benchmark with its safety property: fischer, \
                fischer-broken, csma, fddi, grc or leader.")
  in
  let file_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"An UPPAAL .xta model file.")
  in
  let run file fc forbid lu json =
    let model, forbid, expect_name =
      match (fc, file) with
      | Some name, _ -> (
          match Fc.find name with
          | Some spec -> (spec.Fc.model, spec.Fc.forbid, name)
          | None -> failwith ("unknown benchmark " ^ name))
      | None, Some path ->
          let ic = open_in path in
          let len = in_channel_length ic in
          let src = really_input_string ic len in
          close_in ic;
          (Ta.Xta.parse src, forbid, Filename.basename path)
      | None, None -> failwith "need a FILE or --fc NAME"
    in
    if forbid = [] then failwith "no --forbid sets given";
    let z = Zone.Sym.compile ~lu model in
    let net = Zone.Sym.net z in
    let spec = { Fc.fc_name = expect_name; model; forbid; safe = true } in
    let stats = Zone.Reach.new_stats () in
    let verdict =
      Zone.Reach.find ~stats z
        ~goal:(Zone.Sym.bad_of z (Fc.bad_predicate spec net))
    in
    let status, trace =
      match verdict with
      | Mc.Explore.Unreachable -> ("safe", None)
      | Mc.Explore.Reached w -> ("unsafe", Some w.Mc.Explore.trace)
      | Mc.Explore.Bound_hit _ -> ("unknown", None)
      | Mc.Explore.Exhausted _ -> ("exhausted", None)
    in
    let lu_name =
      match lu with Zone.Sym.Global -> "global" | Zone.Sym.Location -> "location"
    in
    if json then
      Printf.printf
        "{\"tool\":\"hbverify\",\"model\":\"%s\",\"engine\":\"zone\",\"lu\":\"%s\",\"verdict\":\"%s\",\"zone_states\":%d,\"subsumed\":%d}\n"
        expect_name lu_name status stats.Zone.Reach.states
        stats.Zone.Reach.subsumed
    else begin
      Format.printf "%s [zone lu=%s]: %s (%d zones, %d subsumed)@." expect_name
        lu_name
        (String.uppercase_ascii status)
        stats.Zone.Reach.states stats.Zone.Reach.subsumed;
      Option.iter
        (fun trace ->
          Format.printf "counterexample:@.";
          List.iter
            (function
              | Ta.Semantics.Act a -> Format.printf "  %s@." a
              | Ta.Semantics.Delay -> ())
            trace)
        trace
    end;
    if status = "unsafe" then exit Cli_resilience.exit_violation
    else if status <> "safe" then exit Cli_resilience.exit_unknown
  in
  Cmd.v
    (Cmd.info "xta" ~exits:Cli_resilience.exits
       ~doc:"Zone-check an UPPAAL .xta model (or a built-in \
             Fontana-Cleaveland benchmark) against forbidden location \
             sets.")
    Term.(const run $ file_arg $ fc_arg $ forbid_arg $ lu_arg $ json_arg)

let all_cmd =
  let run () =
    List.iter (print_variant_table ~fixed:false ~n:1) H.Ta_models.all_variants;
    Format.printf "@.=== fixed versions ===@.@.";
    List.iter (print_variant_table ~fixed:true ~n:1) H.Ta_models.all_variants
  in
  Cmd.v
    (Cmd.info "all" ~doc:"All tables, original and fixed.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "hbverify" ~version:"1.0.0"
      ~doc:"Model checking of accelerated heartbeat protocols (ICDCS'98)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd; table2_cmd; table_fixed_cmd; all_cmd; check_cmd;
            pa_check_cmd; pa_smoke_cmd; slice_smoke_cmd; zone_smoke_cmd;
            xta_cmd; cex_cmd; bounds_cmd; worst_cmd;
          ]))
