(* hbverify: model-check the accelerated heartbeat protocols and
   regenerate the paper's verification tables and counterexamples. *)

open Cmdliner
module H = Heartbeat

let variant_conv =
  let parse s =
    match
      List.find_opt
        (fun v -> H.Ta_models.variant_name v = s)
        H.Ta_models.all_variants
    with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown variant %s (expected one of: %s)" s
                (String.concat ", "
                   (List.map H.Ta_models.variant_name H.Ta_models.all_variants))))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (H.Ta_models.variant_name v))

let variant_arg =
  Arg.(
    value
    & opt variant_conv H.Ta_models.Binary
    & info [ "v"; "variant" ] ~docv:"VARIANT"
        ~doc:"Protocol variant: binary, revised, two-phase, static, \
              expanding or dynamic.")

let tmin_arg =
  Arg.(value & opt int 1 & info [ "tmin" ] ~docv:"TMIN" ~doc:"Lower round bound.")

let tmax_arg =
  Arg.(value & opt int 10 & info [ "tmax" ] ~docv:"TMAX" ~doc:"Upper round bound.")

let n_arg =
  Arg.(
    value & opt int 1
    & info [ "n" ] ~docv:"N" ~doc:"Number of participants (multi-party variants).")

let fixed_arg =
  Arg.(
    value & flag
    & info [ "fixed" ] ~doc:"Verify the corrected (section-6) version.")

let req_conv =
  let parse = function
    | "R1" | "r1" -> Ok H.Requirements.R1
    | "R2" | "r2" -> Ok H.Requirements.R2
    | "R3" | "r3" -> Ok H.Requirements.R3
    | s -> Error (`Msg ("unknown requirement " ^ s))
  in
  Arg.conv
    (parse, fun ppf r -> Format.pp_print_string ppf (H.Requirements.name r))

let print_variant_table ~fixed ~n variant =
  let rows = H.Verify.table ~fixed ~n variant in
  let header =
    Printf.sprintf "%s%s (n=%d)"
      (H.Ta_models.variant_name variant)
      (if fixed then " [fixed]" else "")
      n
  in
  Format.printf "%a@." (fun ppf -> H.Verify.pp_table ppf ~header) rows

let table1_cmd =
  let run () =
    List.iter
      (print_variant_table ~fixed:false ~n:1)
      [ H.Ta_models.Binary; H.Ta_models.Revised; H.Ta_models.Two_phase;
        H.Ta_models.Static ]
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Reproduce Table 1: (revised) binary, two-phase and static.")
    Term.(const run $ const ())

let table2_cmd =
  let run () =
    List.iter
      (print_variant_table ~fixed:false ~n:1)
      [ H.Ta_models.Expanding; H.Ta_models.Dynamic ]
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce Table 2: expanding and dynamic.")
    Term.(const run $ const ())

let table_fixed_cmd =
  let run () =
    List.iter (print_variant_table ~fixed:true ~n:1) H.Ta_models.all_variants
  in
  Cmd.v
    (Cmd.info "table-fixed"
       ~doc:"Verify the section-6 fixed versions of all six variants.")
    Term.(const run $ const ())

let check_cmd =
  let run variant tmin tmax n fixed req =
    let params = H.Params.make ~n ~tmin ~tmax () in
    let outcome = H.Verify.check ~fixed variant params req in
    Format.printf "%s%s %a %s: %s@."
      (H.Ta_models.variant_name variant)
      (if fixed then " [fixed]" else "")
      H.Params.pp params (H.Requirements.name req)
      (if outcome.H.Verify.holds then "HOLDS" else "VIOLATED");
    Option.iter
      (fun trace ->
        Format.printf "counterexample:@.";
        List.iter
          (fun e ->
            Format.printf "  t=%-4d %s@." e.H.Scenarios.time e.H.Scenarios.action)
          (H.Scenarios.timeline trace))
      outcome.H.Verify.counterexample;
    if not outcome.H.Verify.holds then exit 1
  in
  let req_arg =
    Arg.(
      required
      & pos 0 (some req_conv) None
      & info [] ~docv:"REQ" ~doc:"Requirement: R1, R2 or R3.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Model-check one requirement on one variant.")
    Term.(
      const run $ variant_arg $ tmin_arg $ tmax_arg $ n_arg $ fixed_arg
      $ req_arg)

let cex_cmd =
  let scenarios =
    [
      ("r1a", H.Scenarios.fig10a);
      ("r1b", H.Scenarios.fig10b);
      ("r2", H.Scenarios.fig11);
      ("r3", H.Scenarios.fig12);
      ("r2join", H.Scenarios.fig13);
    ]
  in
  let name_conv =
    let parse s =
      if List.mem_assoc s scenarios then Ok s
      else
        Error
          (`Msg
             (Printf.sprintf "unknown scenario %s (expected: %s)" s
                (String.concat ", " (List.map fst scenarios))))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let msc_arg =
    Arg.(
      value & flag
      & info [ "msc" ]
          ~doc:"Render the trace as a message sequence chart instead of an \
                event list.")
  in
  let run name msc =
    let scenario = (List.assoc name scenarios) () in
    if msc then print_string (H.Msc.render scenario)
    else Format.printf "%a@." H.Scenarios.pp scenario
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some name_conv) None
      & info [] ~docv:"SCENARIO"
          ~doc:"One of r1a (Fig 10a), r1b (Fig 10b), r2 (Fig 11), r3 \
                (Fig 12), r2join (Fig 13).")
  in
  Cmd.v
    (Cmd.info "cex" ~doc:"Print a counterexample figure of the paper.")
    Term.(const run $ name_arg $ msc_arg)

let bounds_cmd =
  let run tmax =
    Format.printf
      "tmin  claimed(2*tmax)  corrected  halving-worst  p[i]-tight  join@.";
    for tmin = 1 to tmax do
      let p = H.Params.make ~tmin ~tmax () in
      Format.printf "%4d  %15d  %9d  %13d  %10d  %4d@." tmin
        (H.Bounds.original_p0_claim p)
        (H.Bounds.p0_detection p)
        (H.Bounds.p0_detection_exhaustive p)
        (H.Bounds.pi_waiting p)
        (H.Bounds.pi_join_waiting p)
    done
  in
  Cmd.v
    (Cmd.info "bounds"
       ~doc:"Print the section-6.2 detection-bound analysis for a tmin sweep.")
    Term.(const run $ tmax_arg)

let worst_cmd =
  let run variant tmin tmax fixed =
    let params = H.Params.make ~tmin ~tmax () in
    let measured = H.Verify.worst_detection ~fixed variant params in
    Format.printf
      "%s%s %a: worst-case detection measured on the model = %d (analytic        halving worst = %d, corrected bound = %d, original claim = %d)@."
      (H.Ta_models.variant_name variant)
      (if fixed then " [fixed]" else "")
      H.Params.pp params measured
      (H.Bounds.p0_detection_exhaustive params)
      (H.Bounds.p0_detection params)
      (H.Bounds.original_p0_claim params)
  in
  Cmd.v
    (Cmd.info "worst"
       ~doc:"Measure the exact worst-case detection delay on the model              (binary search over the watchdog bound).")
    Term.(const run $ variant_arg $ tmin_arg $ tmax_arg $ fixed_arg)

let all_cmd =
  let run () =
    List.iter (print_variant_table ~fixed:false ~n:1) H.Ta_models.all_variants;
    Format.printf "@.=== fixed versions ===@.@.";
    List.iter (print_variant_table ~fixed:true ~n:1) H.Ta_models.all_variants
  in
  Cmd.v
    (Cmd.info "all" ~doc:"All tables, original and fixed.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "hbverify" ~version:"1.0.0"
      ~doc:"Model checking of accelerated heartbeat protocols (ICDCS'98)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd; table2_cmd; table_fixed_cmd; all_cmd; check_cmd;
            cex_cmd; bounds_cmd; worst_cmd;
          ]))
