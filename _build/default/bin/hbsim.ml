(* hbsim: quantitative simulation of the heartbeat protocols — message
   overhead, detection delay, and loss robustness. *)

open Cmdliner
module H = Heartbeat

let tmin_arg = Arg.(value & opt int 2 & info [ "tmin" ] ~docv:"TMIN" ~doc:"tmin.")
let tmax_arg = Arg.(value & opt int 10 & info [ "tmax" ] ~docv:"TMAX" ~doc:"tmax.")

let n_arg =
  Arg.(value & opt int 1 & info [ "n" ] ~docv:"N" ~doc:"Participants.")

let runs_arg =
  Arg.(value & opt int 200 & info [ "runs" ] ~docv:"RUNS" ~doc:"Repetitions.")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let kinds params = H.Experiments.default_kinds params

let rate_cmd =
  let run tmin tmax n seed =
    let params = H.Params.make ~n ~tmin ~tmax () in
    Format.printf "steady-state heartbeat rate (%a):@." H.Params.pp params;
    List.iter
      (fun k ->
        Format.printf "  %a@." H.Experiments.pp_rate
          (H.Experiments.steady_rate ~seed k params))
      (kinds params)
  in
  Cmd.v
    (Cmd.info "rate" ~doc:"Steady-state message rate per discipline.")
    Term.(const run $ tmin_arg $ tmax_arg $ n_arg $ seed_arg)

let detection_cmd =
  let run tmin tmax n runs seed =
    let params = H.Params.make ~n ~tmin ~tmax () in
    Format.printf "crash-detection delay (%a, %d runs):@." H.Params.pp params
      runs;
    List.iter
      (fun k ->
        Format.printf "  %a@." H.Experiments.pp_detection
          (H.Experiments.detection ~runs ~seed k params))
      (kinds params)
  in
  Cmd.v
    (Cmd.info "detection" ~doc:"Crash-detection delay per discipline.")
    Term.(const run $ tmin_arg $ tmax_arg $ n_arg $ runs_arg $ seed_arg)

let reliability_cmd =
  let losses_arg =
    Arg.(
      value
      & opt (list float) [ 0.01; 0.02; 0.05; 0.1; 0.2 ]
      & info [ "loss" ] ~docv:"P,P,..." ~doc:"Loss probabilities to sweep.")
  in
  let run tmin tmax n runs seed losses =
    let params = H.Params.make ~n ~tmin ~tmax () in
    Format.printf "false-deactivation probability (%a, %d runs each):@."
      H.Params.pp params runs;
    List.iter
      (fun loss ->
        List.iter
          (fun k ->
            Format.printf "  %a@." H.Experiments.pp_reliability
              (H.Experiments.reliability ~runs ~seed k params ~loss))
          (kinds params))
      losses
  in
  Cmd.v
    (Cmd.info "reliability"
       ~doc:"False deactivations under message loss, per discipline.")
    Term.(
      const run $ tmin_arg $ tmax_arg $ n_arg $ runs_arg $ seed_arg
      $ losses_arg)

let sweep_cmd =
  let run tmax n runs seed =
    let ratios = [ 1; 2; 4; 8 ] in
    Format.printf
      "acceleration depth sweep (tmax=%d): rate and detection vs tmax/tmin@."
      tmax;
    List.iter
      (fun ratio ->
        let tmin = max 1 (tmax / ratio) in
        let params = H.Params.make ~n ~tmin ~tmax () in
        let rate = H.Experiments.steady_rate ~seed H.Runtime.Halving params in
        let det =
          H.Experiments.detection ~runs ~seed H.Runtime.Halving params
        in
        Format.printf
          "  tmin=%-3d rate %6.4f  mean detection %6.2f  max %6.2f  bound \
           %6.2f@."
          tmin rate.H.Experiments.msgs_per_time det.H.Experiments.mean_delay
          det.H.Experiments.max_delay det.H.Experiments.analytic_bound)
      ratios
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep the acceleration depth tmax/tmin (halving discipline).")
    Term.(const run $ tmax_arg $ n_arg $ runs_arg $ seed_arg)

let bursty_cmd =
  let run tmin tmax n runs seed =
    let params = H.Params.make ~n ~tmin ~tmax () in
    let bursty = Sim.Loss.gilbert ~p_gb:0.01 ~p_bg:0.19 () in
    let avg = Sim.Loss.expected_loss bursty in
    Format.printf
      "bursty (Gilbert) vs independent loss at %.1f%% average (%a):@."
      (100.0 *. avg) H.Params.pp params;
    List.iter
      (fun k ->
        let b = H.Experiments.reliability_model ~runs ~seed k params ~model:bursty in
        let u = H.Experiments.reliability ~runs ~seed k params ~loss:avg in
        Format.printf "  %-14s bursty %3d/%d   independent %3d/%d@."
          (H.Runtime.kind_name k) b.H.Experiments.false_detections runs
          u.H.Experiments.false_detections runs)
      (kinds params)
  in
  Cmd.v
    (Cmd.info "bursty"
       ~doc:"Ablate the independence assumption: Gilbert-Elliott vs Bernoulli loss at equal average rate.")
    Term.(const run $ tmin_arg $ tmax_arg $ n_arg $ runs_arg $ seed_arg)

let join_cmd =
  let run tmin tmax runs seed =
    let params = H.Params.make ~tmin ~tmax () in
    Format.printf "%a@." H.Experiments.pp_join
      (H.Experiments.join_latency ~runs ~seed params)
  in
  Cmd.v
    (Cmd.info "join"
       ~doc:"Joining-phase latency of the expanding protocol vs the corrected bound 2*tmax + tmin.")
    Term.(const run $ tmin_arg $ tmax_arg $ runs_arg $ seed_arg)

let fd_cmd =
  let probes_arg =
    Arg.(value & opt int 0 & info [ "probes" ] ~docv:"K" ~doc:"Probe burst size.")
  in
  let loss_arg =
    Arg.(value & opt float 0.05 & info [ "loss" ] ~docv:"P" ~doc:"Loss rate.")
  in
  let run runs seed probes loss =
    Format.printf
      "failure-detector QoS (period 10, loss %.2f, probes %d):@." loss probes;
    List.iter
      (fun r -> Format.printf "  %a@." Fd.Qos.pp_tradeoff r)
      (Fd.Qos.margin_sweep ~runs ~probes ~loss ~seed ())
  in
  Cmd.v
    (Cmd.info "fd"
       ~doc:"Failure-detector QoS margin sweep (detection time vs mistake rate).")
    Term.(const run $ runs_arg $ seed_arg $ probes_arg $ loss_arg)

let () =
  let info =
    Cmd.info "hbsim" ~version:"1.0.0"
      ~doc:"Quantitative simulation of accelerated heartbeat protocols."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            rate_cmd; detection_cmd; reliability_cmd; sweep_cmd; bursty_cmd;
            join_cmd; fd_cmd;
          ]))
