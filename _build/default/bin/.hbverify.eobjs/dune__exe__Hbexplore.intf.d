bin/hbexplore.mli:
