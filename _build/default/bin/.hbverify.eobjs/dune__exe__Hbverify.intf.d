bin/hbverify.mli:
