bin/hbsim.mli:
