bin/hbsim.ml: Arg Cmd Cmdliner Fd Format Heartbeat List Sim Term
