bin/hbexplore.ml: Arg Cmd Cmdliner Format Heartbeat List Lts Mc Proc Ta Term
