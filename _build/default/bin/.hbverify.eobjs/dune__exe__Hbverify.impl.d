bin/hbverify.ml: Arg Cmd Cmdliner Format Heartbeat List Option Printf String Term
