(* Quickstart: model-check the binary accelerated heartbeat protocol.

   Builds the timed-automata model for one data set, checks the three
   requirements of the paper, prints a counterexample trace for the one
   that fails, and shows that the corrected version passes.

   Run with: dune exec examples/quickstart.exe *)

module H = Heartbeat

let () =
  (* tmin = 4, tmax = 10: the "usual situation" (tmax > 2*tmin) in which
     the paper finds the detection-bound violation of requirement R1. *)
  let params = H.Params.make ~tmin:4 ~tmax:10 () in
  Format.printf "Binary accelerated heartbeat protocol, %a@.@." H.Params.pp
    params;
  List.iter
    (fun req ->
      let outcome = H.Verify.check H.Ta_models.Binary params req in
      Format.printf "  %s: %s@."
        (H.Requirements.name req)
        (if outcome.H.Verify.holds then "holds" else "VIOLATED"))
    H.Requirements.all;

  (* R1 fails: p[0] can stay alive for 3*tmax - tmin = 26 time units
     after the last heartbeat it received, while the protocol claims
     2*tmax = 20.  Print the offending run. *)
  let outcome = H.Verify.check H.Ta_models.Binary params H.Requirements.R1 in
  (match outcome.H.Verify.counterexample with
  | Some trace ->
      Format.printf "@.Counterexample for R1 (paper Figure 10):@.";
      List.iter
        (fun e ->
          Format.printf "  t=%-3d %s@." e.H.Scenarios.time e.H.Scenarios.action)
        (H.Scenarios.timeline trace)
  | None -> assert false);

  (* The section-6 fix: receive-priority for simultaneous events plus the
     corrected bound 3*tmax - tmin.  All requirements pass. *)
  Format.printf "@.With the section-6 corrections:@.";
  List.iter
    (fun req ->
      let outcome = H.Verify.check ~fixed:true H.Ta_models.Binary params req in
      Format.printf "  %s: %s@."
        (H.Requirements.name req)
        (if outcome.H.Verify.holds then "holds" else "VIOLATED"))
    H.Requirements.all
