(* Failure detectors on top of heartbeats — the analysis paper's stated
   follow-up work.

   A monitor watches a process through periodic heartbeats over a lossy,
   jittery network.  Quality of service is the classic three-way tension
   (Chen, Toueg & Aguilera): detect real crashes fast, suspect live
   processes rarely, and recover from mistakes quickly.

   This example compares three designs:
   - a fixed-margin deadline,
   - an adaptive (window-max) deadline that learns the real jitter,
   - the ICDCS'98 acceleration idea as a detector: on a missed deadline,
     fire a burst of quick probes and condemn only if all fail.

   Run with: dune exec examples/adaptive_detector.exe *)

let describe name estimator probes =
  let crash_at = 120.0 in
  let detect =
    let cfg =
      Fd.Detector.config ~estimator ~probes ~loss:0.08 ~crash:(1, crash_at)
        ~seed:77L ~duration:400.0 ()
    in
    (Fd.Qos.measure cfg).Fd.Qos.detection_time
  in
  let quiet =
    let cfg =
      Fd.Detector.config ~estimator ~probes ~loss:0.08 ~seed:78L
        ~duration:3_000.0 ()
    in
    Fd.Qos.measure cfg
  in
  Format.printf "  %-24s detection %s   mistakes %3d in 3000tu   availability %.4f@."
    name
    (match detect with
    | Some d -> Printf.sprintf "%6.2f" d
    | None -> "  (missed!)")
    quiet.Fd.Qos.mistakes quiet.Fd.Qos.availability

let () =
  Format.printf
    "Monitoring a process (heartbeat period 10, 8%% loss, jittery delays):@.@.";
  describe "fixed margin 2" (Fd.Estimator.Fixed { margin = 2.0 }) 0;
  describe "window-max margin 1" (Fd.Estimator.Window_max { window = 10; margin = 1.0 }) 0;
  describe "ewma margin 1" (Fd.Estimator.Ewma { alpha = 0.2; margin = 1.0 }) 0;
  describe "fixed + 3 probes" (Fd.Estimator.Fixed { margin = 2.0 }) 3;
  Format.printf
    "@.The probe burst is the accelerated-heartbeat idea transplanted: a@.\
     missed deadline triggers cheap confirmation rounds instead of an@.\
     immediate verdict.  The QoS trade-off curve:@.@.";
  List.iter
    (fun r -> Format.printf "  %a@." Fd.Qos.pp_tradeoff r)
    (Fd.Qos.margin_sweep ~runs:30 ~margins:[ 1.0; 2.0; 4.0 ] ());
  List.iter
    (fun r -> Format.printf "  %a@." Fd.Qos.pp_tradeoff r)
    (Fd.Qos.margin_sweep ~runs:30 ~margins:[ 1.0; 2.0; 4.0 ] ~probes:3 ())
