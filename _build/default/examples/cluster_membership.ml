(* Cluster membership with the dynamic heartbeat protocol.

   The dynamic variant lets processes join the group at run time and
   leave it again with a farewell beat — the paper's most flexible
   protocol, and the one whose joining phase hides a real bug: a join
   request acknowledged just after a round boundary is only answered two
   full rounds later, which exceeds the joining timeout whenever
   2*tmin >= tmax (paper Figure 13).

   This example model-checks exactly that: membership changes must never
   take down a correct process.

   Run with: dune exec examples/cluster_membership.exe *)

module H = Heartbeat

let verdict b = if b then "holds" else "VIOLATED"

let () =
  Format.printf "Dynamic heartbeat protocol: membership safety (R2)@.@.";
  (* A safe configuration: tmax comfortably above 2*tmin. *)
  let safe = H.Params.make ~tmin:4 ~tmax:10 () in
  let o = H.Verify.check H.Ta_models.Dynamic safe H.Requirements.R2 in
  Format.printf "  %a: joining member can never be wrongly expelled: %s@."
    H.Params.pp safe (verdict o.H.Verify.holds);

  (* The buggy regime: 2*tmin >= tmax. *)
  let buggy = H.Params.make ~tmin:5 ~tmax:10 () in
  let o = H.Verify.check H.Ta_models.Dynamic buggy H.Requirements.R2 in
  Format.printf "  %a: %s@." H.Params.pp buggy (verdict o.H.Verify.holds);
  (match o.H.Verify.counterexample with
  | Some trace ->
      Format.printf "@.  The join-race run (paper Figure 13):@.";
      List.iter
        (fun e ->
          Format.printf "    t=%-3d %s@." e.H.Scenarios.time
            e.H.Scenarios.action)
        (H.Scenarios.timeline trace)
  | None -> ());

  (* Leaving must be harmless: a member that says goodbye (beat carrying
     [false]) must not cause anyone's inactivation.  This is part of R2/R3
     for the dynamic protocol; with the section-6 fixes everything holds,
     including the corrected joining timeout 2*tmax + tmin. *)
  Format.printf "@.With the corrected joining timeout (2*tmax + tmin = %d):@."
    (H.Bounds.pi_join_waiting buggy);
  List.iter
    (fun req ->
      let o = H.Verify.check ~fixed:true H.Ta_models.Dynamic buggy req in
      Format.printf "  %s: %s@." (H.Requirements.name req)
        (verdict o.H.Verify.holds))
    H.Requirements.all
