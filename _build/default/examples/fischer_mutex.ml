(* The timed-automata substrate as a general tool: Fischer's timed mutual
   exclusion protocol.

   The heartbeat analysis is built on a reusable discrete-time
   timed-automata engine (library [ta]) and explicit-state checker
   (library [mc]).  This example uses them for a classic independent
   problem: n processes race for a critical section guarded only by a
   shared variable and real-time constraints.  Correct timing
   (write-delay K strictly below the read-delay) gives mutual exclusion;
   shrinking the read-delay breaks it, and the checker produces the
   interleaving.

   Run with: dune exec examples/fischer_mutex.exe *)

module M = Ta.Model
module E = Ta.Expr

let process ~k ~read_delay i =
  let x = Printf.sprintf "x%d" i in
  let guard_id v = E.Cmp (E.Eq, E.Var "id", E.Int v) in
  {
    M.auto_name = Printf.sprintf "F%d" i;
    locations =
      [
        M.loc "Idle";
        M.loc ~invariant:(E.Cmp (E.Le, E.Clock x, E.Int k)) "Req";
        M.loc "Wait";
        M.loc "CS";
      ];
    edges =
      [
        M.edge ~src:"Idle" ~dst:"Req" ~guard:(guard_id 0)
          ~updates:[ M.Reset x ] ();
        M.edge ~src:"Req" ~dst:"Wait"
          ~guard:(E.Cmp (E.Le, E.Clock x, E.Int k))
          ~updates:[ M.Assign (M.Scalar "id", E.Int i); M.Reset x ]
          ();
        M.edge ~src:"Wait" ~dst:"CS"
          ~guard:
            (E.And
               ( E.Cmp (E.Ge, E.Clock x, E.Int read_delay),
                 E.Cmp (E.Eq, E.Var "id", E.Int i) ))
          ~act:(Printf.sprintf "enter%d" i) ();
        M.edge ~src:"Wait" ~dst:"Req" ~guard:(guard_id 0)
          ~updates:[ M.Reset x ] ();
        M.edge ~src:"CS" ~dst:"Idle"
          ~updates:[ M.Assign (M.Scalar "id", E.Int 0) ]
          ~act:(Printf.sprintf "leave%d" i) ();
      ];
    init_loc = "Idle";
  }

let network ~n ~k ~read_delay =
  {
    M.vars = [ M.scalar "id" 0 ];
    clocks =
      List.init n (fun i ->
          { M.clock_name = Printf.sprintf "x%d" (i + 1); cap = read_delay + 1 });
    chans = [];
    automata = List.init n (fun i -> process ~k ~read_delay (i + 1));
  }

let check ~n ~k ~read_delay =
  let net = Ta.Semantics.compile (network ~n ~k ~read_delay) in
  let in_cs =
    List.init n (fun i ->
        Ta.Semantics.loc_is net ~auto:(Printf.sprintf "F%d" (i + 1)) ~loc:"CS")
  in
  let two_in_cs c =
    List.length (List.filter (fun p -> p c) in_cs) >= 2
  in
  Mc.Safety.check_state (Ta.Semantics.system net) two_in_cs

let () =
  Format.printf "Fischer's protocol, 3 processes, write delay K = 2:@.@.";
  (match check ~n:3 ~k:2 ~read_delay:3 with
  | Mc.Safety.Holds ->
      Format.printf "  read delay 3 > K: mutual exclusion holds@."
  | _ -> assert false);
  (match check ~n:3 ~k:2 ~read_delay:2 with
  | Mc.Safety.Violated trace ->
      Format.printf
        "  read delay 2 = K: VIOLATED — two processes in the critical \
         section;@.  shortest run (%d steps):@."
        (List.length trace);
      List.iter
        (fun l -> Format.printf "    %a@." Ta.Semantics.pp_label l)
        trace
  | _ -> assert false)
