(* The process-algebra substrate as a general tool: the alternating-bit
   protocol over lossy channels.

   Shows the [proc] library (mCRL2-style processes with data, binary
   communication, allow sets) and the [mc] regular-safety checker on a
   protocol unrelated to heartbeats: a sender retransmits each message
   until acknowledged; the bit protects against duplicates.  The checked
   property is the classic one — the receiver never delivers the same
   bit twice in a row — expressed as the forbidden-trace regular
   expression  (any)* . deliver(b) . (no deliver)* . deliver(b).

   Run with: dune exec examples/alternating_bit.exe *)

module T = Proc.Term
module P = Proc.Pexpr
module V = Proc.Value

let spec ~checked =
  (* Sender: send the current bit, then wait; on the right ack flip the
     bit, on a wrong ack (or spontaneously) retransmit. *)
  let sender =
    T.def "S" [ "b" ]
      (T.Prefix
         ( T.act "s_msg" [ P.Var "b" ],
           T.choice
             [
               T.Prefix
                 (T.act "r_ack" [ P.Var "b" ], T.call "S" [ P.Sub (P.int 1, P.Var "b") ]);
               T.Prefix
                 (T.act "r_ack" [ P.Sub (P.int 1, P.Var "b") ], T.call "S" [ P.Var "b" ]);
               T.Prefix (T.act "again" [], T.call "S" [ P.Var "b" ]);
             ] ))
  in
  (* Receiver: deliver a message with the expected bit and acknowledge;
     re-acknowledge duplicates without delivering.  The broken variant
     skips the bit check. *)
  let receiver =
    if checked then
      T.def "R" [ "b" ]
        (T.Sum
           ( "x",
             0,
             1,
             T.Prefix
               ( T.act "r_out" [ P.Var "x" ],
                 T.cond
                   (P.Eq (P.Var "x", P.Var "b"))
                   (T.Prefix
                      ( T.act "deliver" [ P.Var "x" ],
                        T.Prefix
                          ( T.act "s_ack" [ P.Var "x" ],
                            T.call "R" [ P.Sub (P.int 1, P.Var "b") ] ) ))
                   (T.Prefix (T.act "s_ack" [ P.Var "x" ], T.call "R" [ P.Var "b" ]))
               ) ))
    else
      T.def "R" [ "b" ]
        (T.Sum
           ( "x",
             0,
             1,
             T.Prefix
               ( T.act "r_out" [ P.Var "x" ],
                 T.Prefix
                   ( T.act "deliver" [ P.Var "x" ],
                     T.Prefix (T.act "s_ack" [ P.Var "x" ], T.call "R" [ P.Var "b" ])
                   ) ) ))
  in
  (* Lossy one-place channels, message and ack directions. *)
  let channel name inp out =
    T.def name []
      (T.Sum
         ( "x",
           0,
           1,
           T.Prefix
             ( T.act inp [ P.Var "x" ],
               T.choice
                 [
                   T.Prefix (T.act out [ P.Var "x" ], T.call name []);
                   T.Prefix (T.act "lose" [], T.call name []);
                 ] ) ))
  in
  {
    Proc.Spec.defs =
      [ sender; receiver; channel "K" "r_msg" "s_out"; channel "L" "r_back" "s_ack2" ];
    init = [ ("S", [ V.Int 0 ]); ("R", [ V.Int 0 ]); ("K", []); ("L", []) ];
    comms =
      [
        ("s_msg", "r_msg", "msg");
        ("s_out", "r_out", "out");
        ("s_ack", "r_back", "ack_in");
        ("s_ack2", "r_ack", "ack");
      ];
    allow = [ "msg"; "out"; "ack_in"; "ack"; "deliver"; "lose"; "again" ];
    hide = [ "msg"; "out"; "ack_in"; "ack"; "again" ];
  }

let duplicate_delivery =
  let deliver b (l : Proc.Semantics.label) =
    match l with
    | Proc.Semantics.Act ("deliver", [ V.Int x ]) -> x = b
    | _ -> false
  in
  let is_deliver l = deliver 0 l || deliver 1 l in
  let dup b =
    Mc.Regex.(
      seq_list
        [
          star any;
          atom "deliver" (deliver b);
          star (atom "other" (fun l -> not (is_deliver l)));
          atom "deliver-again" (deliver b);
        ])
  in
  Mc.Regex.alt (dup 0) (dup 1)

let () =
  let check ~checked =
    Mc.Safety.check_forbidden
      (Proc.Semantics.system (spec ~checked))
      duplicate_delivery
  in
  Format.printf "Alternating-bit protocol over lossy channels:@.";
  (match check ~checked:true with
  | Mc.Safety.Holds ->
      Format.printf "  with the bit check: no duplicate delivery, ever@."
  | _ -> assert false);
  match check ~checked:false with
  | Mc.Safety.Violated trace ->
      Format.printf
        "  without the bit check: VIOLATED — a retransmission is \
         delivered twice:@.";
      List.iter
        (fun l -> Format.printf "    %a@." Proc.Semantics.pp_label l)
        trace
  | _ -> assert false
