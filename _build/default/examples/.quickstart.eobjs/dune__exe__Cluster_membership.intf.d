examples/cluster_membership.mli:
