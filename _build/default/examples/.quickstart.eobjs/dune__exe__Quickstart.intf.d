examples/quickstart.mli:
