examples/cluster_membership.ml: Format Heartbeat List
