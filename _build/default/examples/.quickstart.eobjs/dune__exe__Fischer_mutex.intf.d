examples/fischer_mutex.mli:
