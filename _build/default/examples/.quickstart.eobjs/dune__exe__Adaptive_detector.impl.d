examples/adaptive_detector.ml: Fd Format List Printf
