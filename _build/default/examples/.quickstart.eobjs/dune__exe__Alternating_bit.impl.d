examples/alternating_bit.ml: Format List Mc Proc
