examples/adaptive_detector.mli:
