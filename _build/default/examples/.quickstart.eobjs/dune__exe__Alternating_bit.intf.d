examples/alternating_bit.mli:
