examples/failure_detector.ml: Format Heartbeat List
