examples/quickstart.ml: Format Heartbeat List
