examples/fischer_mutex.ml: Format List Mc Printf Ta
