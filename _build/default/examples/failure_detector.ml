(* Failure detection for a small service fleet.

   The scenario the ICDCS'98 paper motivates the protocols with: a
   coordinator supervises worker processes with heartbeats and must take
   the whole group down quickly when anything dies, while keeping the
   steady-state network load low.

   This example runs the event-driven simulation: three workers under the
   accelerated (halving) discipline and under a fixed-rate baseline with
   the same worst-case detection delay, with a worker crash injected —
   then compares message cost and reaction time.

   Run with: dune exec examples/failure_detector.exe *)

module H = Heartbeat

let describe kind params =
  let crash = { H.Runtime.who = 1; at = 137.0 } in
  let cfg =
    H.Runtime.config ~kind ~crash ~seed:2024L ~duration:400.0 params
  in
  let result = H.Runtime.run cfg in
  Format.printf "%-14s: %4d heartbeats in 400 time units"
    (H.Runtime.kind_name kind)
    result.H.Runtime.messages_sent;
  (match H.Runtime.detection_delay cfg result with
  | Some d -> Format.printf ", worker crash at t=137 detected after %.1f" d
  | None -> Format.printf ", crash NOT detected");
  (match result.H.Runtime.pi_inactivated_at with
  | [] -> ()
  | l ->
      Format.printf "; workers shut down:";
      List.iter (fun (i, at) -> Format.printf " p%d@%.1f" i at) l);
  Format.printf "@."

let () =
  let params = H.Params.make ~n:3 ~tmin:2 ~tmax:10 () in
  Format.printf
    "Supervising 3 workers, %a (accelerated worst-case detection = %d):@.@."
    H.Params.pp params
    (H.Bounds.p0_detection_exhaustive params);
  List.iter
    (fun kind -> describe kind params)
    [ H.Runtime.Halving; H.Runtime.Two_phase; H.Runtime.Fixed_rate 2 ];
  Format.printf
    "@.The accelerated disciplines idle at one beat per tmax and only \
     speed@.up on suspicion; the fixed-rate baseline pays double the \
     steady-state@.traffic for comparable reaction time.@.";
  (* Under lossy networking the acceleration also buys robustness: a
     false group shutdown needs log2(tmax/tmin) consecutive losses. *)
  Format.printf "@.Loss robustness (false group shutdowns in 200 runs):@.";
  List.iter
    (fun kind ->
      let row =
        H.Experiments.reliability ~runs:200 ~duration:1000.0 kind params
          ~loss:0.05
      in
      Format.printf "  %a@." H.Experiments.pp_reliability row)
    [ H.Runtime.Halving; H.Runtime.Two_phase; H.Runtime.Fixed_rate 2 ]
