lib/sim/net.mli: Engine Loss
