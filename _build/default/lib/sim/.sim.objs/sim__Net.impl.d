lib/sim/net.ml: Engine Loss Rng
