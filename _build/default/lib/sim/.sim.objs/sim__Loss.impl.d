lib/sim/loss.ml: Printf Rng
