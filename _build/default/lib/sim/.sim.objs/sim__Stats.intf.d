lib/sim/stats.mli:
