lib/sim/rng.mli:
