lib/sim/loss.mli: Rng
