lib/sim/heap.mli:
