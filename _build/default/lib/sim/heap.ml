type 'a t = Empty | Node of float * 'a * 'a t list

let empty = Empty
let is_empty = function Empty -> true | Node _ -> false

let merge a b =
  match (a, b) with
  | Empty, h | h, Empty -> h
  | Node (ka, va, ca), Node (kb, vb, cb) ->
      if ka <= kb then Node (ka, va, b :: ca) else Node (kb, vb, a :: cb)

let insert k v h = merge (Node (k, v, [])) h

let find_min = function Empty -> None | Node (k, v, _) -> Some (k, v)

(* Two-pass pairing merge of the children list. *)
let rec merge_pairs = function
  | [] -> Empty
  | [ h ] -> h
  | a :: b :: rest -> merge (merge a b) (merge_pairs rest)

let delete_min = function
  | Empty -> invalid_arg "Sim.Heap.delete_min: empty heap"
  | Node (_, _, children) -> merge_pairs children

let pop = function
  | Empty -> None
  | Node (k, v, children) -> Some ((k, v), merge_pairs children)

let rec size = function
  | Empty -> 0
  | Node (_, _, children) -> 1 + List.fold_left (fun n h -> n + size h) 0 children

let of_list l = List.fold_left (fun h (k, v) -> insert k v h) empty l

let to_sorted_list h =
  let rec drain h acc =
    match pop h with
    | None -> List.rev acc
    | Some (kv, h') -> drain h' (kv :: acc)
  in
  drain h []
