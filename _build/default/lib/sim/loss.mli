(** Packet-loss models for simulated links.

    Besides independent (Bernoulli) loss, provides the Gilbert–Elliott
    two-state Markov model: the link alternates between a Good and a Bad
    state with given transition probabilities (evaluated per message) and
    state-dependent loss rates.  Bursty loss is the interesting adversary
    for accelerated heartbeats — their reliability argument counts
    {e consecutive} losses, which bursts correlate. *)

type t =
  | Bernoulli of float  (** i.i.d. loss probability *)
  | Gilbert of {
      p_gb : float;  (** P(Good -> Bad), per message *)
      p_bg : float;  (** P(Bad -> Good), per message *)
      loss_good : float;
      loss_bad : float;
    }

val bernoulli : float -> t

val gilbert :
  ?loss_good:float -> ?loss_bad:float -> p_gb:float -> p_bg:float -> unit -> t
(** Defaults: [loss_good = 0.0], [loss_bad = 1.0] (the classic Gilbert
    channel: the bad state swallows everything). *)

val validate : t -> unit
(** @raise Invalid_argument if any probability is outside [\[0,1\]]. *)

val expected_loss : t -> float
(** Stationary loss probability of the model (for matching a bursty model
    against a Bernoulli one of equal average loss). *)

type state
(** Mutable per-link channel state. *)

val start : t -> state
val drops : t -> state -> Rng.t -> bool
(** Advance the channel state and decide the fate of one message. *)
