type t =
  | Bernoulli of float
  | Gilbert of {
      p_gb : float;
      p_bg : float;
      loss_good : float;
      loss_bad : float;
    }

let bernoulli p = Bernoulli p

let gilbert ?(loss_good = 0.0) ?(loss_bad = 1.0) ~p_gb ~p_bg () =
  Gilbert { p_gb; p_bg; loss_good; loss_bad }

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Sim.Loss: %s outside [0,1]" name)

let validate = function
  | Bernoulli p -> check_prob "loss" p
  | Gilbert { p_gb; p_bg; loss_good; loss_bad } ->
      check_prob "p_gb" p_gb;
      check_prob "p_bg" p_bg;
      check_prob "loss_good" loss_good;
      check_prob "loss_bad" loss_bad

let expected_loss = function
  | Bernoulli p -> p
  | Gilbert { p_gb; p_bg; loss_good; loss_bad } ->
      (* stationary distribution of the two-state chain *)
      if p_gb = 0.0 && p_bg = 0.0 then loss_good
      else
        let pi_bad = p_gb /. (p_gb +. p_bg) in
        ((1.0 -. pi_bad) *. loss_good) +. (pi_bad *. loss_bad)

type state = { mutable bad : bool }

let start (_ : t) = { bad = false }

let drops model state rng =
  match model with
  | Bernoulli p -> Rng.bool rng p
  | Gilbert { p_gb; p_bg; loss_good; loss_bad } ->
      (* transition first, then draw the loss from the new state *)
      if state.bad then begin
        if Rng.bool rng p_bg then state.bad <- false
      end
      else if Rng.bool rng p_gb then state.bad <- true;
      Rng.bool rng (if state.bad then loss_bad else loss_good)
