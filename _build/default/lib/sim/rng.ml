(* splitmix64 (Steele, Lea, Flood 2014): tiny, fast, good statistical
   quality for simulation purposes. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (int64 t)

let float t =
  (* 53 high bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Sim.Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (int64 t) mask) in
  v mod bound

let bool t p = float t < p
let uniform t lo hi = lo +. (float t *. (hi -. lo))
