(** Lossy, delaying point-to-point links for simulations.

    Matches the paper's channel assumptions: a message is either lost or
    delivered within a bounded delay; the bound [tmin] of the protocols is
    an upper bound on the *round-trip* delay, so each direction of a link
    is given half the budget by the callers. *)

type 'a t

val create :
  Engine.t ->
  ?loss:float ->
  ?model:Loss.t ->
  delay_lo:float ->
  delay_hi:float ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [create engine ~loss ~delay_lo ~delay_hi ~deliver ()] builds a
    unidirectional link.  Each sent message is dropped according to the
    loss model — [model] if given, otherwise Bernoulli with probability
    [loss] (default 0) — and otherwise delivered after a uniform random
    delay in [\[delay_lo, delay_hi\]].
    @raise Invalid_argument on a negative delay, [delay_hi < delay_lo], or
    an invalid loss model. *)

val send : 'a t -> 'a -> unit

val up : 'a t -> bool
val set_up : 'a t -> bool -> unit
(** Taking a link down silently drops everything sent afterwards (messages
    already in flight still arrive) — used to model channel crashes. *)

val sent : 'a t -> int
(** Messages handed to the link. *)

val delivered : 'a t -> int
(** Messages actually delivered so far. *)

val lost : 'a t -> int
(** Messages dropped (by loss or a down link). *)
