type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v

let ci95_half_width t =
  if t.n < 2 then 0.0 else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let percentile samples p =
  if samples = [] then invalid_arg "Sim.Stats.percentile: empty sample list";
  if p < 0.0 || p > 1.0 then
    invalid_arg "Sim.Stats.percentile: p outside [0,1]";
  let sorted = Array.of_list (List.sort compare samples) in
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let histogram ~bins ~lo ~hi samples =
  if bins <= 0 then invalid_arg "Sim.Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Sim.Stats.histogram: hi must exceed lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  List.iter
    (fun x ->
      let k = int_of_float ((x -. lo) /. width) in
      let k = max 0 (min (bins - 1) k) in
      counts.(k) <- counts.(k) + 1)
    samples;
  counts
