(** Minimum-priority queue (pairing heap) keyed by float priorities.

    The event queue of the discrete-event engine.  A pairing heap gives
    O(1) insert and amortised O(log n) delete-min without any external
    dependency. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val insert : float -> 'a -> 'a t -> 'a t
val find_min : 'a t -> (float * 'a) option
val delete_min : 'a t -> 'a t
(** @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> ((float * 'a) * 'a t) option
val size : 'a t -> int
(** O(n); intended for diagnostics and tests. *)

val of_list : (float * 'a) list -> 'a t
val to_sorted_list : 'a t -> (float * 'a) list
(** Drain into a priority-sorted list (stable only per priority class). *)
