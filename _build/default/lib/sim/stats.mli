(** Streaming and batch statistics for simulation measurements. *)

type t
(** A streaming accumulator (Welford's algorithm). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val ci95_half_width : t -> float
(** Half-width of a normal-approximation 95% confidence interval for the
    mean; 0 with fewer than two samples. *)

val percentile : float list -> float -> float
(** [percentile samples p] for [p] in [\[0,1\]], by linear interpolation on
    the sorted samples.
    @raise Invalid_argument on an empty list or [p] outside [\[0,1\]]. *)

val histogram : bins:int -> lo:float -> hi:float -> float list -> int array
(** Fixed-width histogram; samples outside [\[lo,hi\]] clamp to the first or
    last bin. *)
