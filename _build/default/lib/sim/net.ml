type 'a t = {
  engine : Engine.t;
  model : Loss.t;
  loss_state : Loss.state;
  delay_lo : float;
  delay_hi : float;
  deliver : 'a -> unit;
  mutable is_up : bool;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
}

let create engine ?(loss = 0.0) ?model ~delay_lo ~delay_hi ~deliver () =
  if delay_lo < 0.0 || delay_hi < delay_lo then
    invalid_arg "Sim.Net.create: bad delay range";
  if loss < 0.0 || loss > 1.0 then invalid_arg "Sim.Net.create: bad loss rate";
  let model = match model with Some m -> m | None -> Loss.bernoulli loss in
  Loss.validate model;
  {
    engine;
    model;
    loss_state = Loss.start model;
    delay_lo;
    delay_hi;
    deliver;
    is_up = true;
    sent = 0;
    delivered = 0;
    lost = 0;
  }

let send t msg =
  t.sent <- t.sent + 1;
  if (not t.is_up) || Loss.drops t.model t.loss_state (Engine.rng t.engine)
  then
    t.lost <- t.lost + 1
  else begin
    let delay = Rng.uniform (Engine.rng t.engine) t.delay_lo t.delay_hi in
    ignore
      (Engine.schedule t.engine ~delay (fun () ->
           t.delivered <- t.delivered + 1;
           t.deliver msg))
  end

let up t = t.is_up
let set_up t b = t.is_up <- b
let sent t = t.sent
let delivered t = t.delivered
let lost t = t.lost
