(** Deterministic pseudo-random numbers (splitmix64).

    A small, self-contained PRNG so simulation experiments are reproducible
    from a seed and independent of the OCaml standard library's generator. *)

type t

val create : int64 -> t
(** [create seed] builds a generator; equal seeds give equal streams. *)

val split : t -> t
(** A statistically independent generator derived from the current state. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)
