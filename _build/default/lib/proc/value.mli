(** Data values of the process algebra: booleans, integers and lists.

    These mirror the mCRL2 sorts used by the paper's specifications
    ([Bool], [Nat]/[Pos], and [List]). *)

type t = Bool of bool | Int of int | List of t list

val bool : bool -> t
val int : int -> t
val list : t list -> t

val to_bool : t -> bool
(** @raise Invalid_argument if the value is not a boolean. *)

val to_int : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_list : t -> t list
(** @raise Invalid_argument if the value is not a list. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
