(** Parallel specifications: components, communication and abstraction.

    A specification composes sequential processes ({!Term}) in parallel,
    mCRL2 style: a communication function turns matching send/receive
    action pairs (with equal data) into a result action, an allow set
    restricts which action names may appear (so unmatched sends and
    receives are blocked, enforcing synchronisation), and a hide set
    renames result actions to the internal action [tau].

    Time is discrete: the distinguished action name {!tick_name} is a
    global synchronisation — a tick step is possible only when every
    component offers one, which is how the paper's specifications make
    watchdogs urgent (a watchdog at its limit refuses to tick, forcing its
    timeout action to happen before time advances). *)

val tick_name : string
(** ["tick"] — the globally-synchronised clock action. *)

type t = {
  defs : Term.def list;  (** recursive process definitions *)
  init : (string * Value.t list) list;
      (** the parallel components, as instantiated definition calls *)
  comms : (string * string * string) list;
      (** [(send, recv, result)] communication triples *)
  allow : string list;
      (** action names allowed to occur (besides [tick]); everything else —
          in particular unmatched communication halves — is blocked *)
  hide : string list;  (** result actions renamed to [tau] *)
}

val validate : t -> unit
(** Check that all called definitions exist, arities match, and the allow /
    hide / comm sets are consistent.
    @raise Invalid_argument otherwise. *)
