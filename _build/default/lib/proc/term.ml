type action = { act_name : string; act_args : Pexpr.t list }

type t =
  | Nil
  | Prefix of action * t
  | Choice of t list
  | Sum of string * int * int * t
  | Cond of Pexpr.t * t * t
  | Call of string * Pexpr.t list

type def = { def_name : string; params : string list; body : t }

let def def_name params body = { def_name; params; body }
let act act_name act_args = { act_name; act_args }
let ( @. ) a p = Prefix (a, p)
let choice ps = Choice ps
let cond c p q = Cond (c, p, q)
let when_ c p = Cond (c, p, Nil)
let call name args = Call (name, args)

let rec pp ppf = function
  | Nil -> Format.pp_print_string ppf "delta"
  | Prefix (a, p) ->
      Format.fprintf ppf "%s%a.%a" a.act_name pp_args a.act_args pp p
  | Choice ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
           pp)
        ps
  | Sum (x, lo, hi, p) ->
      Format.fprintf ppf "sum %s:[%d..%d].%a" x lo hi pp p
  | Cond (c, p, Nil) -> Format.fprintf ppf "(%a) -> %a" Pexpr.pp c pp p
  | Cond (c, p, q) ->
      Format.fprintf ppf "(%a) -> %a <> %a" Pexpr.pp c pp p pp q
  | Call (name, args) -> Format.fprintf ppf "%s%a" name pp_args args

and pp_args ppf = function
  | [] -> ()
  | args ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Pexpr.pp)
        args
