(** First-order data expressions of the process algebra.

    The language is deliberately closed (no embedded OCaml functions), so
    process terms — and hence explorer states — can be compared and hashed
    structurally.  It covers what the paper's mCRL2 specifications use:
    arithmetic, comparisons, boolean connectives, conditionals, and the
    list operations of the static/expanding/dynamic protocols ([update],
    [minimum], element access). *)

type t =
  | Const of Value.t
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | If of t * t * t
  | Nth of t * t  (** [Nth (list, index)], 0-based *)
  | Set_nth of t * t * t  (** [Set_nth (list, index, value)] *)
  | Min_list of t  (** minimum of a non-empty integer list *)
  | Len of t
  | Repl of t * t  (** [Repl (n, v)]: list of [n] copies of [v] *)

type env = (string * Value.t) list
(** Evaluation environment, most recent binding first. *)

val eval : env -> t -> Value.t
(** Evaluate an expression.
    @raise Invalid_argument on unbound variables or type errors. *)

val eval_bool : env -> t -> bool
val eval_int : env -> t -> int

(** {2 Construction helpers} *)

val tt : t
val ff : t
val int : int -> t
val v : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t

val pp : Format.formatter -> t -> unit
