(** Process terms and recursive definitions, mCRL2 style.

    A sequential process is built from deadlock, action prefix,
    nondeterministic choice, finite sums, data conditions, and calls to
    named recursive definitions with data parameters.  Parallel composition
    and communication live at the specification level ({!Spec}). *)

type action = { act_name : string; act_args : Pexpr.t list }

type t =
  | Nil  (** deadlock: offers nothing *)
  | Prefix of action * t  (** [a(e1,..,ek) . P] *)
  | Choice of t list  (** [P1 + ... + Pn] *)
  | Sum of string * int * int * t
      (** [sum x : \[lo..hi\] . P] — finite data sum *)
  | Cond of Pexpr.t * t * t  (** [c -> P <> Q] *)
  | Call of string * Pexpr.t list  (** instantiation of a definition *)

type def = { def_name : string; params : string list; body : t }

val def : string -> string list -> t -> def

(** {2 Construction helpers} *)

val act : string -> Pexpr.t list -> action
val ( @. ) : action -> t -> t  (** prefix *)

val choice : t list -> t
val cond : Pexpr.t -> t -> t -> t
val when_ : Pexpr.t -> t -> t  (** [cond c p Nil] *)

val call : string -> Pexpr.t list -> t
val pp : Format.formatter -> t -> unit
