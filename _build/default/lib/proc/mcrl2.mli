(** Export of process-algebra specifications to mCRL2 syntax.

    Produces a textual model a downstream user can load into the mCRL2
    toolset (the one the paper used): action declarations, one [proc]
    equation per definition, and an [init] line wiring the parallel
    composition through [hide], [allow] and [comm].

    Action argument sorts are inferred per action name from the argument
    expressions at their occurrences (integer arithmetic implies [Int],
    boolean operations [Bool]); actions never used with arguments are
    declared plain.  Finite sums [sum x:[lo..hi]] are exported as
    [sum x: Int . (lo <= x && x <= hi) -> ...]. *)

val pp : Format.formatter -> Spec.t -> unit
val to_string : Spec.t -> string
