let tick_name = "tick"

type t = {
  defs : Term.def list;
  init : (string * Value.t list) list;
  comms : (string * string * string) list;
  allow : string list;
  hide : string list;
}

let validate spec =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (d : Term.def) ->
      if Hashtbl.mem table d.Term.def_name then
        invalid_arg ("Proc.Spec: duplicate definition " ^ d.Term.def_name);
      Hashtbl.add table d.Term.def_name (List.length d.Term.params))
    spec.defs;
  let check_call context name arity =
    match Hashtbl.find_opt table name with
    | None -> invalid_arg ("Proc.Spec: unknown definition " ^ name ^ context)
    | Some n ->
        if n <> arity then
          invalid_arg
            (Printf.sprintf "Proc.Spec: %s expects %d arguments, got %d%s"
               name n arity context)
  in
  List.iter
    (fun (name, args) -> check_call " (initial component)" name (List.length args))
    spec.init;
  let rec check_term (t : Term.t) =
    match t with
    | Term.Nil -> ()
    | Term.Prefix (_, p) -> check_term p
    | Term.Choice ps -> List.iter check_term ps
    | Term.Sum (_, lo, hi, p) ->
        if lo > hi then invalid_arg "Proc.Spec: empty sum domain";
        check_term p
    | Term.Cond (_, p, q) ->
        check_term p;
        check_term q
    | Term.Call (name, args) -> check_call "" name (List.length args)
  in
  List.iter (fun (d : Term.def) -> check_term d.Term.body) spec.defs;
  List.iter
    (fun (s, r, _) ->
      if s = r then
        invalid_arg ("Proc.Spec: communication of " ^ s ^ " with itself"))
    spec.comms;
  if List.mem tick_name spec.hide then
    invalid_arg "Proc.Spec: tick cannot be hidden"
