type t =
  | Const of Value.t
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | If of t * t * t
  | Nth of t * t
  | Set_nth of t * t * t
  | Min_list of t
  | Len of t
  | Repl of t * t

type env = (string * Value.t) list

let rec eval env (e : t) : Value.t =
  match e with
  | Const v -> v
  | Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> invalid_arg ("Proc.Pexpr.eval: unbound variable " ^ x))
  | Add (a, b) -> Value.Int (eval_int env a + eval_int env b)
  | Sub (a, b) -> Value.Int (eval_int env a - eval_int env b)
  | Mul (a, b) -> Value.Int (eval_int env a * eval_int env b)
  | Div (a, b) -> Value.Int (eval_int env a / eval_int env b)
  | Eq (a, b) -> Value.Bool (Value.equal (eval env a) (eval env b))
  | Lt (a, b) -> Value.Bool (eval_int env a < eval_int env b)
  | Le (a, b) -> Value.Bool (eval_int env a <= eval_int env b)
  | And (a, b) -> Value.Bool (eval_bool env a && eval_bool env b)
  | Or (a, b) -> Value.Bool (eval_bool env a || eval_bool env b)
  | Not a -> Value.Bool (not (eval_bool env a))
  | If (c, a, b) -> if eval_bool env c then eval env a else eval env b
  | Nth (l, i) -> (
      let l = Value.to_list (eval env l) and i = eval_int env i in
      match List.nth_opt l i with
      | Some v -> v
      | None -> invalid_arg "Proc.Pexpr.eval: list index out of bounds")
  | Set_nth (l, i, x) ->
      let l = Value.to_list (eval env l) and i = eval_int env i in
      let x = eval env x in
      if i < 0 || i >= List.length l then
        invalid_arg "Proc.Pexpr.eval: list index out of bounds";
      Value.List (List.mapi (fun j y -> if j = i then x else y) l)
  | Min_list l -> (
      match List.map Value.to_int (Value.to_list (eval env l)) with
      | [] -> invalid_arg "Proc.Pexpr.eval: minimum of empty list"
      | x :: rest -> Value.Int (List.fold_left min x rest))
  | Len l -> Value.Int (List.length (Value.to_list (eval env l)))
  | Repl (n, x) ->
      let n = eval_int env n and x = eval env x in
      if n < 0 then invalid_arg "Proc.Pexpr.eval: negative replication";
      Value.List (List.init n (fun _ -> x))

and eval_bool env e = Value.to_bool (eval env e)
and eval_int env e = Value.to_int (eval env e)

let tt = Const (Value.Bool true)
let ff = Const (Value.Bool false)
let int n = Const (Value.Int n)
let v x = Var x
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( / ) a b = Div (a, b)
let ( = ) a b = Eq (a, b)
let ( < ) a b = Lt (a, b)
let ( <= ) a b = Le (a, b)
let ( >= ) a b = Le (b, a)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not_ a = Not a

let rec pp ppf (e : t) =
  match e with
  | Const v -> Value.pp ppf v
  | Var x -> Format.pp_print_string ppf x
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a div %a)" pp a pp b
  | Eq (a, b) -> Format.fprintf ppf "(%a == %a)" pp a pp b
  | Lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp a pp b
  | Le (a, b) -> Format.fprintf ppf "(%a <= %a)" pp a pp b
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Not a -> Format.fprintf ppf "!(%a)" pp a
  | If (c, a, b) -> Format.fprintf ppf "if(%a, %a, %a)" pp c pp a pp b
  | Nth (l, i) -> Format.fprintf ppf "%a.%a" pp l pp i
  | Set_nth (l, i, x) -> Format.fprintf ppf "set(%a, %a, %a)" pp l pp i pp x
  | Min_list l -> Format.fprintf ppf "min(%a)" pp l
  | Len l -> Format.fprintf ppf "len(%a)" pp l
  | Repl (n, x) -> Format.fprintf ppf "repl(%a, %a)" pp n pp x
