type t = Bool of bool | Int of int | List of t list

let bool b = Bool b
let int n = Int n
let list l = List l

let type_name = function Bool _ -> "bool" | Int _ -> "int" | List _ -> "list"

let to_bool = function
  | Bool b -> b
  | v -> invalid_arg ("Proc.Value.to_bool: got a " ^ type_name v)

let to_int = function
  | Int n -> n
  | v -> invalid_arg ("Proc.Value.to_int: got a " ^ type_name v)

let to_list = function
  | List l -> l
  | v -> invalid_arg ("Proc.Value.to_list: got a " ^ type_name v)

let equal = ( = )
let compare = compare

let rec pp ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | List l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp)
        l

let to_string v = Format.asprintf "%a" pp v
