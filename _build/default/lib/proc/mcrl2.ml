(* mCRL2 pretty-printer for specifications.

   Sorts are inferred: a small fixpoint propagates the sorts of the
   initial component arguments through definition calls, and expression
   shapes (arithmetic vs boolean operations) decide the rest.  Anything
   still unknown defaults to Int. *)

type sort = SInt | SBool | SList | SUnknown

let sort_name = function
  | SInt -> "Int"
  | SBool -> "Bool"
  | SList -> "List(Int)"
  | SUnknown -> "Int"

let join a b =
  match (a, b) with
  | SUnknown, s | s, SUnknown -> s
  | s, s' when s = s' -> s
  | _ -> SInt

let sort_of_value = function
  | Value.Bool _ -> SBool
  | Value.Int _ -> SInt
  | Value.List _ -> SList

(* Sort of an expression under a (partial) variable-sort environment. *)
let rec sort_of env (e : Pexpr.t) =
  match e with
  | Pexpr.Const v -> sort_of_value v
  | Pexpr.Var x -> (
      match List.assoc_opt x env with Some s -> s | None -> SUnknown)
  | Pexpr.Add _ | Pexpr.Sub _ | Pexpr.Mul _ | Pexpr.Div _ | Pexpr.Min_list _
  | Pexpr.Len _ ->
      SInt
  | Pexpr.Eq _ | Pexpr.Lt _ | Pexpr.Le _ | Pexpr.And _ | Pexpr.Or _
  | Pexpr.Not _ ->
      SBool
  | Pexpr.If (_, a, b) -> join (sort_of env a) (sort_of env b)
  | Pexpr.Nth _ -> SInt
  | Pexpr.Set_nth _ | Pexpr.Repl _ -> SList

(* Infer parameter sorts for every definition and argument sorts for
   every action. *)
let infer (spec : Spec.t) =
  let def_sorts = Hashtbl.create 16 in
  List.iter
    (fun (d : Term.def) ->
      Hashtbl.replace def_sorts d.Term.def_name
        (Array.make (List.length d.Term.params) SUnknown))
    spec.Spec.defs;
  (* seed from the initial components *)
  List.iter
    (fun (name, values) ->
      let sorts = Hashtbl.find def_sorts name in
      List.iteri (fun k v -> sorts.(k) <- join sorts.(k) (sort_of_value v)) values)
    spec.Spec.init;
  let act_sorts = Hashtbl.create 32 in
  let changed = ref true in
  let iterations = ref 0 in
  while !changed && !iterations < 10 do
    changed := false;
    incr iterations;
    List.iter
      (fun (d : Term.def) ->
        let own = Hashtbl.find def_sorts d.Term.def_name in
        let env =
          List.mapi (fun k x -> (x, own.(k))) d.Term.params
        in
        let rec walk env (t : Term.t) =
          match t with
          | Term.Nil -> ()
          | Term.Prefix (a, p) ->
              let arity = List.length a.Term.act_args in
              let sorts =
                match Hashtbl.find_opt act_sorts a.Term.act_name with
                | Some s when Array.length s = arity -> s
                | _ ->
                    let s = Array.make arity SUnknown in
                    Hashtbl.replace act_sorts a.Term.act_name s;
                    s
              in
              List.iteri
                (fun k e ->
                  let s = join sorts.(k) (sort_of env e) in
                  if s <> sorts.(k) then begin
                    sorts.(k) <- s;
                    changed := true
                  end)
                a.Term.act_args;
              walk env p
          | Term.Choice ps -> List.iter (walk env) ps
          | Term.Sum (x, _, _, p) -> walk ((x, SInt) :: env) p
          | Term.Cond (_, p, q) ->
              walk env p;
              walk env q
          | Term.Call (name, args) -> (
              match Hashtbl.find_opt def_sorts name with
              | None -> ()
              | Some sorts ->
                  List.iteri
                    (fun k e ->
                      if k < Array.length sorts then begin
                        let s = join sorts.(k) (sort_of env e) in
                        if s <> sorts.(k) then begin
                          sorts.(k) <- s;
                          changed := true
                        end
                      end)
                    args)
        in
        walk env d.Term.body)
      spec.Spec.defs
  done;
  (def_sorts, act_sorts)

(* --- expression printing --- *)

let rec pp_expr ppf (e : Pexpr.t) =
  match e with
  | Pexpr.Const (Value.Bool b) -> Format.pp_print_bool ppf b
  | Pexpr.Const (Value.Int n) -> Format.pp_print_int ppf n
  | Pexpr.Const (Value.List l) ->
      Format.fprintf ppf "[%s]"
        (String.concat ", " (List.map Value.to_string l))
  | Pexpr.Var x -> Format.pp_print_string ppf x
  | Pexpr.Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Pexpr.Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_expr a pp_expr b
  | Pexpr.Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_expr a pp_expr b
  | Pexpr.Div (a, b) -> Format.fprintf ppf "(%a div %a)" pp_expr a pp_expr b
  | Pexpr.Eq (a, b) -> Format.fprintf ppf "(%a == %a)" pp_expr a pp_expr b
  | Pexpr.Lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp_expr a pp_expr b
  | Pexpr.Le (a, b) -> Format.fprintf ppf "(%a <= %a)" pp_expr a pp_expr b
  | Pexpr.And (a, b) -> Format.fprintf ppf "(%a && %a)" pp_expr a pp_expr b
  | Pexpr.Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_expr a pp_expr b
  | Pexpr.Not a -> Format.fprintf ppf "!(%a)" pp_expr a
  | Pexpr.If (c, a, b) ->
      Format.fprintf ppf "if(%a, %a, %a)" pp_expr c pp_expr a pp_expr b
  | Pexpr.Nth (l, i) -> Format.fprintf ppf "(%a . %a)" pp_expr l pp_expr i
  | Pexpr.Set_nth (l, i, x) ->
      Format.fprintf ppf "set_nth(%a, %a, %a)" pp_expr l pp_expr i pp_expr x
  | Pexpr.Min_list l -> Format.fprintf ppf "min_list(%a)" pp_expr l
  | Pexpr.Len l -> Format.fprintf ppf "#(%a)" pp_expr l
  | Pexpr.Repl (n, x) -> Format.fprintf ppf "repl(%a, %a)" pp_expr n pp_expr x

(* --- process printing --- *)

let pp_action ppf (a : Term.action) =
  match a.Term.act_args with
  | [] -> Format.pp_print_string ppf a.Term.act_name
  | args ->
      Format.fprintf ppf "%s(%s)" a.Term.act_name
        (String.concat ", " (List.map (Format.asprintf "%a" pp_expr) args))

let rec pp_term ppf (t : Term.t) =
  match t with
  | Term.Nil -> Format.pp_print_string ppf "delta"
  | Term.Prefix (a, p) -> Format.fprintf ppf "%a . %a" pp_action a pp_factor p
  | Term.Choice [] -> Format.pp_print_string ppf "delta"
  | Term.Choice ps ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ + ")
        pp_factor ppf ps
  | Term.Sum (x, lo, hi, p) ->
      Format.fprintf ppf "sum %s: Int . (%d <= %s && %s <= %d) -> %a" x lo x x
        hi pp_factor p
  | Term.Cond (c, p, Term.Nil) ->
      Format.fprintf ppf "(%a) -> %a" pp_expr c pp_factor p
  | Term.Cond (c, p, q) ->
      Format.fprintf ppf "(%a) -> %a <> %a" pp_expr c pp_factor p pp_factor q
  | Term.Call (name, []) -> Format.pp_print_string ppf name
  | Term.Call (name, args) ->
      Format.fprintf ppf "%s(%s)" name
        (String.concat ", " (List.map (Format.asprintf "%a" pp_expr) args))

and pp_factor ppf (t : Term.t) =
  match t with
  | Term.Choice (_ :: _ :: _) | Term.Sum _ | Term.Cond _ ->
      Format.fprintf ppf "(%a)" pp_term t
  | _ -> pp_term ppf t

let pp ppf (spec : Spec.t) =
  let def_sorts, act_sorts = infer spec in
  Format.fprintf ppf "%% generated by hbproto (Proc.Mcrl2)@.";
  Format.fprintf ppf
    "%% note: the global tick is a multi-action synchronisation of all@.";
  Format.fprintf ppf "%% components, allowed below as tick|...|tick.@.@.";
  (* action declarations *)
  let tick_used = Hashtbl.mem act_sorts Spec.tick_name in
  let plain, sorted =
    Hashtbl.fold
      (fun name sorts (plain, sorted) ->
        if Array.length sorts = 0 then (name :: plain, sorted)
        else (plain, (name, sorts) :: sorted))
      act_sorts ([], [])
  in
  (match List.sort compare plain with
  | [] -> ()
  | names -> Format.fprintf ppf "act %s;@." (String.concat ", " names));
  List.iter
    (fun (name, sorts) ->
      Format.fprintf ppf "act %s: %s;@." name
        (String.concat " # "
           (List.map sort_name (Array.to_list sorts))))
    (List.sort compare sorted);
  Format.fprintf ppf "@.";
  (* process equations *)
  List.iter
    (fun (d : Term.def) ->
      let sorts = Hashtbl.find def_sorts d.Term.def_name in
      (match d.Term.params with
      | [] -> Format.fprintf ppf "proc %s =@." d.Term.def_name
      | params ->
          Format.fprintf ppf "proc %s(%s) =@." d.Term.def_name
            (String.concat ", "
               (List.mapi
                  (fun k x -> Printf.sprintf "%s: %s" x (sort_name sorts.(k)))
                  params)));
      Format.fprintf ppf "  @[<hv>%a@];@.@." pp_term d.Term.body)
    spec.Spec.defs;
  (* init *)
  let n = List.length spec.Spec.init in
  let tick_multi =
    if tick_used then
      [ String.concat "|" (List.init n (fun _ -> Spec.tick_name)) ]
    else []
  in
  let allow_set = tick_multi @ spec.Spec.allow in
  let comm_set =
    List.map (fun (s, r, c) -> Printf.sprintf "%s|%s -> %s" s r c)
      spec.Spec.comms
  in
  let components =
    List.map
      (fun (name, values) ->
        match values with
        | [] -> name
        | vs ->
            Printf.sprintf "%s(%s)" name
              (String.concat ", " (List.map Value.to_string vs)))
      spec.Spec.init
  in
  Format.fprintf ppf "init@.";
  let close = ref 0 in
  if spec.Spec.hide <> [] then begin
    Format.fprintf ppf "  hide({%s},@." (String.concat ", " spec.Spec.hide);
    incr close
  end;
  Format.fprintf ppf "  allow({%s},@." (String.concat ", " allow_set);
  incr close;
  if comm_set <> [] then begin
    Format.fprintf ppf "  comm({%s},@." (String.concat ", " comm_set);
    incr close
  end;
  Format.fprintf ppf "    %s" (String.concat " || " components);
  for _ = 1 to !close do
    Format.fprintf ppf ")"
  done;
  Format.fprintf ppf ";@."

let to_string spec = Format.asprintf "%a" pp spec
