lib/proc/pexpr.ml: Format List Value
