lib/proc/mcrl2.mli: Format Spec
