lib/proc/term.mli: Format Pexpr
