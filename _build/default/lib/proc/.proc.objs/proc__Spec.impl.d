lib/proc/spec.ml: Hashtbl List Printf Term Value
