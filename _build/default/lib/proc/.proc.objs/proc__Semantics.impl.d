lib/proc/semantics.ml: Array Format Hashtbl List Mc Pexpr Spec Term Value
