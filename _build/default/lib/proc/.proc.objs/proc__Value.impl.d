lib/proc/value.ml: Format
