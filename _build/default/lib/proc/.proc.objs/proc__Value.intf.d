lib/proc/value.mli: Format
