lib/proc/semantics.mli: Format Lts Mc Spec Value
