lib/proc/spec.mli: Term Value
