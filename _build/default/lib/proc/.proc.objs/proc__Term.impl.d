lib/proc/term.ml: Format Pexpr
