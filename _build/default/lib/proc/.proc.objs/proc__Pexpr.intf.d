lib/proc/pexpr.mli: Format Value
