lib/proc/mcrl2.ml: Array Format Hashtbl List Pexpr Printf Spec String Term Value
