(** Freshness-deadline estimators for heartbeat failure detectors.

    A monitor expects a heartbeat from each monitored process every
    [period]; an estimator turns the observed arrival history into the
    next freshness deadline.  Implemented estimators:

    - {!Fixed}: deadline = last arrival + period + margin;
    - {!Window_max}: margin over the largest inter-arrival time in a
      sliding window (adapts to the real jitter);
    - {!Ewma}: Chen-style — an exponentially weighted moving average of
      inter-arrival times plus a margin. *)

type t =
  | Fixed of { margin : float }
  | Window_max of { window : int; margin : float }
  | Ewma of { alpha : float; margin : float }

val name : t -> string

val validate : t -> unit
(** @raise Invalid_argument on a non-positive margin or window, or an
    EWMA weight outside (0, 1]. *)

type state
(** Per-monitored-process estimator state. *)

val start : t -> period:float -> state

val observe : t -> state -> now:float -> unit
(** Record a heartbeat arrival. *)

val deadline : t -> state -> float
(** The current freshness deadline: suspect if nothing arrives by then. *)
