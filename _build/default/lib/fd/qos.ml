type metrics = {
  detection_time : float option;
  mistakes : int;
  mistake_rate : float;
  mean_mistake_duration : float;
  availability : float;
  messages : int;
}

let measure (cfg : Detector.config) : metrics =
  let result = Detector.run cfg in
  let crash_at =
    match cfg.Detector.crash with Some (1, at) -> Some at | _ -> None
  in
  let horizon =
    match crash_at with Some at -> at | None -> cfg.Detector.duration
  in
  (* walk process 1's suspicion intervals before the crash/horizon *)
  let mistakes = ref 0 in
  let mistaken_time = ref 0.0 in
  let open_suspicion = ref None in
  List.iter
    (fun e ->
      match e with
      | Detector.Suspect { who = 1; at } when at < horizon ->
          incr mistakes;
          open_suspicion := Some at
      | Detector.Trust { who = 1; at } ->
          Option.iter
            (fun s -> mistaken_time := !mistaken_time +. (min at horizon -. s))
            !open_suspicion;
          open_suspicion := None
      | _ -> ())
    result.Detector.events;
  (* a pre-crash suspicion never revoked before the horizon: if there was
     no crash it is an (ongoing) mistake; with a crash it may be the
     detection, so only count its pre-crash span as mistaken when the
     process was alive *)
  (match (!open_suspicion, crash_at) with
  | Some s, None -> mistaken_time := !mistaken_time +. (horizon -. s)
  | Some _, Some _ -> ()
  | None, _ -> ());
  let detection_time =
    match crash_at with
    | None -> None
    | Some at ->
        Option.map
          (fun d -> d -. at)
          (Detector.suspected_forever result ~who:1 ~after:at)
  in
  {
    detection_time;
    mistakes = !mistakes;
    mistake_rate = float_of_int !mistakes /. horizon;
    mean_mistake_duration =
      (if !mistakes = 0 then 0.0
       else !mistaken_time /. float_of_int !mistakes);
    availability = 1.0 -. (!mistaken_time /. horizon);
    messages = result.Detector.messages;
  }

type tradeoff_row = {
  margin : float;
  probes : int;
  mean_detection : float;
  t_mistake_rate : float;
  t_availability : float;
}

let margin_sweep ?(runs = 50) ?(margins = [ 0.5; 1.0; 2.0; 4.0; 8.0 ])
    ?(probes = 0) ?(loss = 0.05) ?(seed = 5L) () =
  let master = Sim.Rng.create seed in
  List.map
    (fun margin ->
      let estimator = Estimator.Fixed { margin } in
      let det_stats = Sim.Stats.create () in
      let mistake_total = ref 0.0 in
      let avail_total = ref 0.0 in
      for _ = 1 to runs do
        (* crash run for detection *)
        let crash_at = Sim.Rng.uniform master 40.0 80.0 in
        let cfg =
          Detector.config ~estimator ~probes ~loss ~crash:(1, crash_at)
            ~seed:(Sim.Rng.int64 master) ~duration:(crash_at +. 200.0) ()
        in
        Option.iter (Sim.Stats.add det_stats) (measure cfg).detection_time;
        (* crash-free run for accuracy *)
        let cfg =
          Detector.config ~estimator ~probes ~loss ~seed:(Sim.Rng.int64 master)
            ~duration:2_000.0 ()
        in
        let m = measure cfg in
        mistake_total := !mistake_total +. m.mistake_rate;
        avail_total := !avail_total +. m.availability
      done;
      {
        margin;
        probes;
        mean_detection = Sim.Stats.mean det_stats;
        t_mistake_rate = !mistake_total /. float_of_int runs;
        t_availability = !avail_total /. float_of_int runs;
      })
    margins

let pp_tradeoff ppf r =
  Format.fprintf ppf
    "margin %5.2f  probes %d: detection %6.2f  mistakes/time %8.5f  \
     availability %.4f"
    r.margin r.probes r.mean_detection r.t_mistake_rate r.t_availability
