type t =
  | Fixed of { margin : float }
  | Window_max of { window : int; margin : float }
  | Ewma of { alpha : float; margin : float }

let name = function
  | Fixed _ -> "fixed"
  | Window_max _ -> "window-max"
  | Ewma _ -> "ewma"

let validate = function
  | Fixed { margin } ->
      if margin <= 0.0 then invalid_arg "Fd.Estimator: margin must be positive"
  | Window_max { window; margin } ->
      if window < 1 then invalid_arg "Fd.Estimator: window must be >= 1";
      if margin <= 0.0 then invalid_arg "Fd.Estimator: margin must be positive"
  | Ewma { alpha; margin } ->
      if alpha <= 0.0 || alpha > 1.0 then
        invalid_arg "Fd.Estimator: alpha outside (0,1]";
      if margin <= 0.0 then invalid_arg "Fd.Estimator: margin must be positive"

type state = {
  period : float;
  mutable last_arrival : float;
  mutable intervals : float list; (* most recent first, for Window_max *)
  mutable ewma : float; (* smoothed inter-arrival estimate *)
}

let start est ~period =
  validate est;
  { period; last_arrival = 0.0; intervals = []; ewma = period }

let observe est st ~now =
  let gap = now -. st.last_arrival in
  st.last_arrival <- now;
  (match est with
  | Fixed _ -> ()
  | Window_max { window; _ } ->
      st.intervals <- gap :: st.intervals;
      if List.length st.intervals > window then
        st.intervals <-
          List.filteri (fun i _ -> i < window) st.intervals
  | Ewma { alpha; _ } -> st.ewma <- (alpha *. gap) +. ((1.0 -. alpha) *. st.ewma))

let deadline est st =
  match est with
  | Fixed { margin } -> st.last_arrival +. st.period +. margin
  | Window_max { margin; _ } ->
      let worst = List.fold_left max st.period st.intervals in
      st.last_arrival +. worst +. margin
  | Ewma { margin; _ } ->
      st.last_arrival +. max st.period st.ewma +. margin
