(** Quality-of-service metrics for failure detectors
    (Chen, Toueg & Aguilera's framework).

    - {e detection time}: crash to permanent suspicion;
    - {e mistake rate}: false suspicions per unit time;
    - {e mistake duration}: how long a false suspicion lasts;
    - {e availability}: fraction of time a live process is trusted. *)

type metrics = {
  detection_time : float option;
      (** when the run contains a crash and it was detected *)
  mistakes : int;  (** false suspicions (suspicions of a live process) *)
  mistake_rate : float;  (** mistakes per unit time *)
  mean_mistake_duration : float;  (** 0 when there were no mistakes *)
  availability : float;
      (** fraction of (pre-crash) time the process was trusted *)
  messages : int;
}

val measure : Detector.config -> metrics
(** Run the detector once and extract the metrics for process 1. *)

type tradeoff_row = {
  margin : float;
  probes : int;
  mean_detection : float;
  t_mistake_rate : float;
  t_availability : float;
}

val margin_sweep :
  ?runs:int ->
  ?margins:float list ->
  ?probes:int ->
  ?loss:float ->
  ?seed:int64 ->
  unit ->
  tradeoff_row list
(** The classic QoS trade-off curve: sweeping the safety margin trades
    detection time against mistake rate.  Each row aggregates [runs]
    crash runs (for detection) and [runs] crash-free runs (for
    mistakes). *)

val pp_tradeoff : Format.formatter -> tradeoff_row -> unit
