type event = Suspect of { who : int; at : float } | Trust of { who : int; at : float }

type config = {
  n : int;
  period : float;
  estimator : Estimator.t;
  probes : int;
  rtt_bound : float;
  loss : float;
  loss_model : Sim.Loss.t option;
  delay_lo : float;
  delay_hi : float;
  duration : float;
  crash : (int * float) option;
  seed : int64;
}

let config ?(n = 1) ?(period = 10.0) ?(estimator = Estimator.Fixed { margin = 2.0 })
    ?(probes = 0) ?(rtt_bound = 2.0) ?(loss = 0.0) ?loss_model ?(delay_lo = 0.0)
    ?(delay_hi = 1.0) ?crash ?(seed = 1L) ~duration () =
  if n < 1 then invalid_arg "Fd.Detector: n must be >= 1";
  if period <= 0.0 then invalid_arg "Fd.Detector: period must be positive";
  if probes < 0 then invalid_arg "Fd.Detector: probes must be >= 0";
  Estimator.validate estimator;
  {
    n;
    period;
    estimator;
    probes;
    rtt_bound;
    loss;
    loss_model;
    delay_lo;
    delay_hi;
    duration;
    crash;
    seed;
  }

type result = { events : event list; messages : int }

(* Monitor-side per-process record. *)
type watch = {
  est : Estimator.state;
  mutable suspected : bool;
  mutable probing : bool;
  mutable probes_left : int;
  mutable timer : Sim.Engine.timer option;
}

let run (cfg : config) : result =
  let engine = Sim.Engine.create ~seed:cfg.seed () in
  let events = ref [] in
  let alive = Array.make (cfg.n + 1) true in
  let emit e = events := e :: !events in
  let watches =
    Array.init (cfg.n + 1) (fun _ ->
        {
          est = Estimator.start cfg.estimator ~period:cfg.period;
          suspected = false;
          probing = false;
          probes_left = 0;
          timer = None;
        })
  in
  let link deliver =
    Sim.Net.create engine ~loss:cfg.loss ?model:cfg.loss_model
      ~delay_lo:cfg.delay_lo ~delay_hi:cfg.delay_hi ~deliver ()
  in
  (* forward declarations tied together below *)
  let on_heartbeat = ref (fun (_ : int) -> ()) in
  let on_probe = ref (fun (_ : int) -> ()) in
  let to_monitor = Array.init (cfg.n + 1) (fun _ -> link (fun i -> !on_heartbeat i)) in
  let to_process = Array.init (cfg.n + 1) (fun _ -> link (fun i -> !on_probe i)) in
  (* monitored processes: heartbeat every period; answer probes *)
  let rec beat i () =
    if alive.(i) then begin
      Sim.Net.send to_monitor.(i) i;
      ignore (Sim.Engine.schedule engine ~delay:cfg.period (beat i))
    end
  in
  (on_probe :=
     fun i -> if alive.(i) then Sim.Net.send to_monitor.(i) i);
  (* monitor: freshness deadlines, optional probe confirmation *)
  let rec rearm i =
    let w = watches.(i) in
    Option.iter Sim.Engine.cancel w.timer;
    let deadline = Estimator.deadline cfg.estimator w.est in
    let delay = max 0.0 (deadline -. Sim.Engine.now engine) in
    w.timer <- Some (Sim.Engine.schedule engine ~delay (expire i))
  and expire i () =
    let w = watches.(i) in
    if cfg.probes = 0 then suspect i
    else if not w.probing then begin
      (* deadline missed: start the accelerated probe burst *)
      w.probing <- true;
      w.probes_left <- cfg.probes;
      send_probe i
    end
    else if w.probes_left = 0 then suspect i
    else send_probe i
  and send_probe i =
    let w = watches.(i) in
    w.probes_left <- w.probes_left - 1;
    Sim.Net.send to_process.(i) i;
    w.timer <- Some (Sim.Engine.schedule engine ~delay:cfg.rtt_bound (expire i))
  and suspect i =
    let w = watches.(i) in
    if not w.suspected then begin
      w.suspected <- true;
      emit (Suspect { who = i; at = Sim.Engine.now engine })
    end
  in
  (on_heartbeat :=
     fun i ->
       let w = watches.(i) in
       Estimator.observe cfg.estimator w.est ~now:(Sim.Engine.now engine);
       w.probing <- false;
       w.probes_left <- 0;
       if w.suspected then begin
         w.suspected <- false;
         emit (Trust { who = i; at = Sim.Engine.now engine })
       end;
       rearm i);
  for i = 1 to cfg.n do
    ignore (Sim.Engine.schedule engine ~delay:0.0 (beat i));
    rearm i
  done;
  Option.iter
    (fun (who, at) ->
      ignore (Sim.Engine.schedule engine ~delay:at (fun () -> alive.(who) <- false)))
    cfg.crash;
  Sim.Engine.run ~until:cfg.duration engine;
  let messages =
    let total = ref 0 in
    Array.iter (fun l -> total := !total + Sim.Net.sent l) to_monitor;
    Array.iter (fun l -> total := !total + Sim.Net.sent l) to_process;
    !total
  in
  { events = List.rev !events; messages }

let suspected_forever result ~who ~after =
  (* the last state change for [who] must be a suspicion at/after the
     crash *)
  let relevant =
    List.filter
      (function Suspect { who = w; _ } | Trust { who = w; _ } -> w = who)
      result.events
  in
  match List.rev relevant with
  | Suspect { at; _ } :: _ when at >= after -> Some at
  | _ -> None
