(** An eventually-perfect-style heartbeat failure detector, simulated.

    The analysis paper closes by turning to failure detectors — the layer
    the heartbeat protocols exist to support.  This module implements a
    monitor in the style of Chen, Toueg & Aguilera: each monitored
    process sends heartbeats every [period]; the monitor derives a
    freshness deadline from an {!Estimator} and emits [Suspect] when it
    passes and [Trust] when a late heartbeat proves the suspicion wrong.

    The [probes] option adds the ICDCS'98 acceleration idea: instead of
    suspecting at the first missed deadline, the monitor sends up to [k]
    quick ping probes (answered immediately by a live process within the
    round-trip bound) and suspects only after all fail — trading a small
    amount of detection time for a large reduction in false
    suspicions. *)

type event = Suspect of { who : int; at : float } | Trust of { who : int; at : float }

type config = {
  n : int;  (** monitored processes, numbered 1..n *)
  period : float;  (** heartbeat sending period *)
  estimator : Estimator.t;
  probes : int;  (** 0 = classic; k > 0 = accelerated confirmation *)
  rtt_bound : float;  (** round-trip bound used by probe confirmation *)
  loss : float;
  loss_model : Sim.Loss.t option;
  delay_lo : float;
  delay_hi : float;  (** one-way heartbeat delay range *)
  duration : float;
  crash : (int * float) option;  (** crash one process at a time *)
  seed : int64;
}

val config :
  ?n:int ->
  ?period:float ->
  ?estimator:Estimator.t ->
  ?probes:int ->
  ?rtt_bound:float ->
  ?loss:float ->
  ?loss_model:Sim.Loss.t ->
  ?delay_lo:float ->
  ?delay_hi:float ->
  ?crash:int * float ->
  ?seed:int64 ->
  duration:float ->
  unit ->
  config
(** Defaults: one process, period 10, fixed margin 2, no probes,
    rtt bound 2, lossless, delays in [\[0, 1\]]. *)

type result = {
  events : event list;  (** in time order *)
  messages : int;  (** heartbeats + probes + probe replies sent *)
}

val run : config -> result
(** Deterministic for a given seed. *)

val suspected_forever : result -> who:int -> after:float -> float option
(** The time of the suspicion of [who] that is never revoked later (the
    detection event for a crash at [after]), if any. *)
