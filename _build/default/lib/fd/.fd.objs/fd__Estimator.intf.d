lib/fd/estimator.mli:
