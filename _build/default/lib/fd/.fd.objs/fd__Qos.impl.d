lib/fd/qos.ml: Detector Estimator Format List Option Sim
