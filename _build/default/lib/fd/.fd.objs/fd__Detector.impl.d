lib/fd/detector.ml: Array Estimator List Option Sim
