lib/fd/estimator.ml: List
