lib/fd/detector.mli: Estimator Sim
