lib/fd/qos.mli: Detector Format
