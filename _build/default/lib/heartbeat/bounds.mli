(** Worst-case detection-delay bounds (paper §6.2).

    The ICDCS'98 protocols claim that p[0] becomes inactive within
    [2*tmax] of the last received heartbeat, and participants within
    [3*tmax - tmin] of the last heartbeat of p[0].  The analysis shows both
    bounds are wrong or imprecise; this module provides the corrected
    closed forms together with an exhaustive computation of the actual
    worst case of the halving schedule, used by the property tests to check
    the closed forms. *)

val p0_detection : Params.t -> int
(** Corrected maximal time between p[0]'s last received heartbeat and its
    non-voluntary inactivation: [3*tmax - tmin] when [2*tmin <= tmax],
    [2*tmax] otherwise. *)

val p0_detection_exhaustive : Params.t -> int
(** The same worst case computed by direct simulation of the halving
    schedule over all adversarial receipt times of the last heartbeat:
    p[1] crashes right after replying in some round; p[0] then sets
    [t = tmax] once more and halves until [t/2 < tmin].  Agrees with
    {!p0_detection} (property-tested). *)

val pi_waiting : Params.t -> int
(** Corrected (tight) bound on a joined participant's wait between
    consecutive heartbeats from a live p[0]: [2*tmax] — tighter than the
    protocols' [3*tmax - tmin]. *)

val pi_join_waiting : Params.t -> int
(** Corrected bound for the joining phase of the expanding/dynamic
    protocols: a join request may be acknowledged only after
    [2*tmax + tmin] (the paper's Figure 13), so the joining timeout must be
    at least that. *)

val original_pi_timeout : Params.t -> int
(** The protocols' original participant timeout, [3*tmax - tmin]. *)

val original_p0_claim : Params.t -> int
(** The protocols' original claim for p[0], [2*tmax]. *)

val halving_schedule : Params.t -> int list
(** The successive waiting times of p[0] after replies stop arriving,
    starting from [tmax]: [tmax; tmax/2; ...] down to (and excluding) the
    first value below [tmin]. *)
