(** Protocol parameters.

    Every accelerated heartbeat protocol is parameterised by the round-time
    bounds [tmin] and [tmax] (ICDCS'98: [0 < tmin <= tmax]; [tmin] is also
    the upper bound on the round-trip channel delay) and, for the
    multi-party variants, the number [n] of participants. *)

type t = private { tmin : int; tmax : int; n : int }

val make : ?n:int -> tmin:int -> tmax:int -> unit -> t
(** [make ~tmin ~tmax ()] with [n] defaulting to 1.
    @raise Invalid_argument unless [0 < tmin <= tmax] and [n >= 1]. *)

val usual : t -> bool
(** The paper's "usual situation": [tmax > 2 * tmin]. *)

val degenerate : t -> bool
(** [tmin = tmax] — the regime of the R2/R3 counterexamples. *)

val p1_timeout : t -> int
(** [3*tmax - tmin]: the protocols' inactivation bound for participants. *)

val pp : Format.formatter -> t -> unit

val table_datasets : (int * int) list
(** The [(tmin, tmax)] pairs of the paper's Tables 1 and 2:
    [(1,10); (4,10); (5,10); (9,10); (10,10)]. *)
