(** Process-algebra models of the heartbeat protocols (paper §3).

    This is the paper's second, independent encoding: each protocol is an
    mCRL2-style parallel composition of sequential processes

    - [P0] / [P1_{i}] — the protocol participants;
    - [SW0] — p[0]'s round stopwatch, armed with the current waiting time
      at each beat ([arm(t)]); at its limit it refuses to tick, forcing
      the timeout to be delivered before time can pass;
    - [SW1_{i}] — p\[i\]'s inactivation watchdog, reset by each beat
      p\[i\] replies to; the reset summand stays enabled at the limit, so
      the timeout/receive race of §5.5 is present, exactly as in the
      paper's model;
    - [Ch0] — the forward channel; for the static protocol it contains
      the paper's {e Broadcaster} loop, delivering or losing the beat per
      recipient; the joining variants use one forward channel per
      participant instead, since p\[0\] addresses only the joined ones;
    - [Ch1_{i}] — reply channels, which lose or forward (in the dynamic
      variant they carry true and leave beats separately);
    - [SWCH_{i}] — the channel stopwatch: carries an in-flight beat,
      enforces the round-trip bound [tmin] by refusing to tick at the
      deadline, and remembers the spent forward delay for the reply leg;
    - [JCh_{i}] — the joining variants' pre-join channel (the paper's
      "extra channel"): join requests may take up to [tmax] and a newer
      request silently supersedes a pending one;
    - [PJInit_{i}] / [PJWait_{i}] — the joining phase: a join request at
      start-up and every [tmin] after, until p[0]'s first beat arrives.

    Time is the global [tick] action ({!Proc.Spec.tick_name}).

    All six protocol variants are encoded; the test suite checks that
    this encoding and the timed-automata encoding ({!Ta_models}) give
    identical verdicts — the paper's CADP/UPPAAL cross-validation. *)

type variant = Binary | Revised | Two_phase | Static | Expanding | Dynamic

val variant_name : variant -> string

val of_ta : Ta_models.variant -> variant option
(** The corresponding PA variant (total since all six are encoded). *)

val has_join : variant -> bool

val build : variant -> Params.t -> Proc.Spec.t
(** Build the specification ([Params.n] participants for the multi-party
    variants, one otherwise). *)

(** {2 Visible action names} (for monitors and properties) *)

val act_beat_delivered_to_p0 : int -> string
(** ["dlv1_i"]: a (true) beat of p\[i\] reaching p[0]. *)

val act_join_delivered_to_p0 : int -> string
(** ["jdlv_i"]: a join request reaching p[0] (joining variants). *)

val act_leave_delivered_to_p0 : int -> string
(** ["dlv1f_i"]: a leave beat reaching p[0] (dynamic). *)

val act_beat_delivered_to_pi : int -> string
val act_inactivate_nv_p0 : string
val act_inactivate_nv_pi : int -> string
val act_crash_p0 : string
val act_crash_pi : int -> string

val act_leave_pi : int -> string
(** ["left_i"]: p\[i\] left the protocol voluntarily (dynamic). *)

val act_lose : variant -> int -> string list
(** The loss actions of participant [i]'s channels (including the
    pre-join channel for the joining variants). *)

(** {2 Building blocks} (exposed for the component figures of
    {!Figures}) *)

module For_figures : sig
  val p0_def : variant -> Params.t -> int -> Proc.Term.def
  val sw0_defs : Params.t -> Proc.Term.def list
  val p1_defs : Params.t -> int -> Proc.Term.def list
  val tick_dead : Proc.Term.def list
end
