(** Timed-automata models of the accelerated heartbeat protocols
    (paper §4, Figures 3–9).

    Each protocol is a network of automata:

    - [P0] — the coordinator.  Locations [Alive] (invariant
      [w0 <= t]), [TimeOut] (urgent: the round boundary is processed
      without time passing), [VInact] (voluntary crash) and [NVInact].
      At a timeout it recomputes every waiting time
      [tm_i := rcvd_i ? tmax : tm_i/2] (two-phase: drop to [tmin]),
      broadcasts its heartbeat, and inactivates itself when the new round
      time falls below [tmin].
    - [P{i}] — participants.  Reply immediately to each received beat
      (urgent location [Rcvd]); inactivate after [3*tmax - tmin] without
      one.  In the expanding/dynamic variants they start in a joining
      phase, re-sending their beat every [tmin]; in the dynamic variant a
      reply can carry [false], which leaves the protocol (location
      [Left]).
    - [Ch0_{i}] / [Ch1_{i}] — one-place channels.  A message in flight is
      delivered or lost; the shared budget [spent_i] enforces the paper's
      round-trip bound [tmin].  Any loss sets the sticky flag [lost]
      (the paper's [lostMsg]).  Deliveries are broadcast syncs guarded by
      the destination being ready, so a beat arriving while the receiver
      is processing a simultaneous event waits for that instant to
      resolve instead of vanishing — reproducing the simultaneity races
      of §5.5.
    - [M{i}] — optional requirement-R1 watchdogs (Figure 9): reset by
      each beat of p\[i\] delivered to p[0], they raise [errorR1_{i}] when
      more than the claimed detection bound passes while p[0] is still
      alive.  In the expanding/dynamic variants they arm at the first
      delivered beat and disarm on a leave beat.

    The [fixed] flag applies the §6 corrections: receive-priority
    (timeout edges are guarded on no message being in flight to the
    timing-out process) and the corrected time bounds ({!Bounds}). *)

type variant =
  | Binary
  | Revised  (** MG04: p\[0\] sends its first beat immediately *)
  | Two_phase
      (** on a missed reply the waiting time drops straight to [tmin];
          the paper leaves p\[0\]'s inactivation condition unspecified
          (its footnote 2) — we inactivate on a missed reply when [t] is
          already [tmin] *)
  | Static
  | Expanding
  | Dynamic

val all_variants : variant list
val variant_name : variant -> string

val is_multi : variant -> bool
(** [true] for the variants honouring [Params.n] (Static, Expanding,
    Dynamic); the binary family always has one participant. *)

val build :
  ?fixed:bool ->
  ?with_r1_monitors:bool ->
  ?r1_bound:int ->
  variant ->
  Params.t ->
  Ta.Model.t
(** Build the network.  [fixed] (default false) applies the §6
    corrections; [with_r1_monitors] (default false) adds the watchdog
    automata [M{i}] needed for checking R1 (left out otherwise to keep
    the state space smaller); [r1_bound] overrides the watchdogs'
    detection bound (used to measure the exact worst case, see
    {!Verify.worst_detection}). *)

(** {2 Naming conventions} (for building state predicates)

    Participants are numbered [1..n].  Automata: ["P0"], ["P1"]…,
    ["Ch0_1"]…, ["Ch1_1"]…, ["M1"]….  Key variables: ["active0"],
    ["active1"]…, ["lost"], ["rcvd1"]…, ["tm1"]…, ["jnd1"]…, ["leave1"]….
    Locations: ["Alive"], ["TimeOut"], ["Rcvd"], ["VInact"], ["NVInact"],
    ["Waiting"], ["Left"], monitor ["Watch"]/["Error"]. *)

val p0_name : string
val p_name : int -> string
val monitor_name : int -> string
val error_act : int -> string
