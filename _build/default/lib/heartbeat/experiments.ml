type rate_row = { kind : Runtime.kind; msgs_per_time : float }

let steady_rate ?(duration = 10_000.0) ?(seed = 11L) kind params =
  let cfg = Runtime.config ~kind ~seed ~duration params in
  let result = Runtime.run cfg in
  { kind; msgs_per_time = float_of_int result.Runtime.messages_sent /. duration }

type detection_row = {
  d_kind : Runtime.kind;
  runs : int;
  detected : int;
  mean_delay : float;
  max_delay : float;
  analytic_bound : float;
}

let analytic_bound kind (p : Params.t) =
  match (kind : Runtime.kind) with
  | Runtime.Halving -> float_of_int (Bounds.p0_detection_exhaustive p)
  | Runtime.Two_phase -> float_of_int ((2 * p.Params.tmax) + p.Params.tmin)
  | Runtime.Fixed_rate k ->
      (* k misses of period tmax/k after a full period of grace. *)
      float_of_int p.Params.tmax *. (1.0 +. (1.0 /. float_of_int k))

let detection ?(runs = 200) ?(seed = 42L) kind params =
  let stats = Sim.Stats.create () in
  let detected = ref 0 in
  let master = Sim.Rng.create seed in
  let horizon = float_of_int (20 * params.Params.tmax) in
  for _ = 1 to runs do
    let crash_at =
      Sim.Rng.uniform master
        (float_of_int params.Params.tmax)
        (float_of_int (5 * params.Params.tmax))
    in
    let cfg =
      Runtime.config ~kind
        ~crash:{ Runtime.who = 1; at = crash_at }
        ~seed:(Sim.Rng.int64 master) ~duration:(crash_at +. horizon) params
    in
    let result = Runtime.run cfg in
    match Runtime.detection_delay cfg result with
    | Some d ->
        incr detected;
        Sim.Stats.add stats d
    | None -> ()
  done;
  {
    d_kind = kind;
    runs;
    detected = !detected;
    mean_delay = Sim.Stats.mean stats;
    max_delay =
      (if Sim.Stats.count stats = 0 then nan else Sim.Stats.max_value stats);
    analytic_bound = analytic_bound kind params;
  }

type reliability_row = {
  r_kind : Runtime.kind;
  loss : float;
  r_runs : int;
  false_detections : int;
  false_rate : float;
}

let reliability ?(runs = 200) ?(duration = 2_000.0) ?(seed = 7L) kind params
    ~loss =
  let master = Sim.Rng.create seed in
  let false_detections = ref 0 in
  for _ = 1 to runs do
    let cfg =
      Runtime.config ~kind ~loss ~seed:(Sim.Rng.int64 master) ~duration params
    in
    let result = Runtime.run cfg in
    if result.Runtime.false_detection then incr false_detections
  done;
  {
    r_kind = kind;
    loss;
    r_runs = runs;
    false_detections = !false_detections;
    false_rate = float_of_int !false_detections /. float_of_int runs;
  }

let default_kinds (_ : Params.t) =
  [ Runtime.Halving; Runtime.Two_phase; Runtime.Fixed_rate 2 ]

let pp_rate ppf r =
  Format.fprintf ppf "%-14s %8.4f msgs/unit-time"
    (Runtime.kind_name r.kind)
    r.msgs_per_time

let pp_detection ppf r =
  Format.fprintf ppf
    "%-14s detected %d/%d  mean %6.2f  max %6.2f  (analytic worst %6.2f)"
    (Runtime.kind_name r.d_kind)
    r.detected r.runs r.mean_delay r.max_delay r.analytic_bound

let pp_reliability ppf r =
  Format.fprintf ppf "%-14s loss=%4.2f  false detections %d/%d (rate %.3f)"
    (Runtime.kind_name r.r_kind)
    r.loss r.false_detections r.r_runs r.false_rate

let reliability_model ?(runs = 200) ?(duration = 2_000.0) ?(seed = 7L) kind
    params ~model =
  let master = Sim.Rng.create seed in
  let false_detections = ref 0 in
  for _ = 1 to runs do
    let cfg =
      Runtime.config ~kind ~loss_model:model ~seed:(Sim.Rng.int64 master)
        ~duration params
    in
    let result = Runtime.run cfg in
    if result.Runtime.false_detection then incr false_detections
  done;
  {
    r_kind = kind;
    loss = Sim.Loss.expected_loss model;
    r_runs = runs;
    false_detections = !false_detections;
    false_rate = float_of_int !false_detections /. float_of_int runs;
  }

type join_row = {
  j_runs : int;
  joined : int;
  mean_latency : float;
  max_latency : float;
  join_bound : float;
}

(* One joining episode: p[0] beats joined members at its round
   boundaries (multiples of tmax); the joiner starts at [phase] and
   requests every tmin over the slow pre-join channel.  Returns the time
   from start-up to the first received beat. *)
let one_join (p : Params.t) rng phase =
  let tmin = float_of_int p.Params.tmin
  and tmax = float_of_int p.Params.tmax in
  let engine = Sim.Engine.create ~seed:(Sim.Rng.int64 rng) () in
  let joined_at_p0 = ref None in
  let acked_at = ref None in
  (* join requests, starting at [phase], every tmin, delay up to tmax *)
  let rec send_join () =
    if !acked_at = None then begin
      let delay = Sim.Rng.uniform (Sim.Engine.rng engine) 0.0 tmax in
      ignore
        (Sim.Engine.schedule engine ~delay (fun () ->
             if !joined_at_p0 = None then
               joined_at_p0 := Some (Sim.Engine.now engine)));
      ignore (Sim.Engine.schedule engine ~delay:tmin send_join)
    end
  in
  ignore (Sim.Engine.at engine ~time:phase send_join);
  (* p[0]'s round boundaries: beat the joiner once it is in the list *)
  for k = 1 to 9 do
    ignore
      (Sim.Engine.at engine
         ~time:(float_of_int k *. tmax)
         (fun () ->
           match !joined_at_p0 with
           | Some _ when !acked_at = None ->
               let delay =
                 Sim.Rng.uniform (Sim.Engine.rng engine) 0.0 (tmin /. 2.0)
               in
               ignore
                 (Sim.Engine.schedule engine ~delay (fun () ->
                      if !acked_at = None then
                        acked_at := Some (Sim.Engine.now engine)))
           | _ -> ()))
  done;
  Sim.Engine.run ~until:(10.0 *. tmax) engine;
  Option.map (fun t -> t -. phase) !acked_at

let join_latency ?(runs = 500) ?(seed = 99L) (p : Params.t) =
  let rng = Sim.Rng.create seed in
  let stats = Sim.Stats.create () in
  let joined = ref 0 in
  for _ = 1 to runs do
    let phase =
      Sim.Rng.uniform rng 0.0 (float_of_int p.Params.tmax)
    in
    match one_join p rng phase with
    | Some latency ->
        incr joined;
        Sim.Stats.add stats latency
    | None -> ()
  done;
  {
    j_runs = runs;
    joined = !joined;
    mean_latency = Sim.Stats.mean stats;
    max_latency =
      (if Sim.Stats.count stats = 0 then nan else Sim.Stats.max_value stats);
    join_bound = float_of_int (Bounds.pi_join_waiting p);
  }

let pp_join ppf r =
  Format.fprintf ppf
    "join latency: %d/%d acknowledged, mean %6.2f  max %6.2f  (bound %6.2f)"
    r.joined r.j_runs r.mean_latency r.max_latency r.join_bound
