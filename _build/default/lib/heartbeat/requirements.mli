(** The paper's correctness requirements R1–R3 (§5), as checks on the
    timed-automata models.

    - {b R1} (progress): for each participant i, if p[0] receives no
      heartbeat from p\[i\] for [2*tmax], then p[0] becomes inactive.
      Checked as reachability of the watchdog error location of
      [M{i}] ({!Ta_models.monitor_automaton}).
    - {b R2} (safety of participants): no p\[i\] is non-voluntarily
      inactivated unless a message was lost or some other process crashed
      voluntarily.  Checked as reachability of a state with
      [lost == 0], [P{i}] in [NVInact], [P0] in [Alive], and no other
      participant voluntarily crashed.
    - {b R3} (safety of p\[0\]): symmetric for the coordinator.

    Each requirement is expressed as a {e bad-state predicate}; the
    requirement holds iff no bad state is reachable. *)

type requirement = R1 | R2 | R3

val all : requirement list
val name : requirement -> string

val needs_monitors : requirement -> bool
(** R1 needs the watchdog automata in the model. *)

val bad_state :
  Ta_models.variant ->
  Params.t ->
  Ta.Semantics.t ->
  requirement ->
  Ta.Semantics.config ->
  bool
(** [bad_state variant params compiled r] is the predicate over
    configurations whose reachability refutes requirement [r].  The
    [compiled] network must have been built by {!Ta_models.build} for the
    same [variant] and [params] (and with monitors for R1). *)
