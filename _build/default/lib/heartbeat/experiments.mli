(** Quantitative experiments over the {!Runtime} simulations.

    These regenerate the trade-offs the ICDCS'98 paper motivates the
    accelerated design with: steady-state heartbeat rate, crash-detection
    delay, and robustness of each discipline to message loss.  Absolute
    numbers depend on the simulated network; the shapes — acceleration
    sends at the slow rate [1/tmax] yet detects within a small multiple
    of [tmax], a fixed-rate protocol with equal detection delay sends
    [k] times as often, and the false-detection probability decays
    geometrically with the number of accelerated retries — are the
    paper's claims. *)

type rate_row = {
  kind : Runtime.kind;
  msgs_per_time : float;  (** steady-state heartbeats per unit time *)
}

val steady_rate :
  ?duration:float -> ?seed:int64 -> Runtime.kind -> Params.t -> rate_row
(** Message rate with no crashes and no loss. *)

type detection_row = {
  d_kind : Runtime.kind;
  runs : int;
  detected : int;  (** runs in which p\[0\] detected the crash *)
  mean_delay : float;
  max_delay : float;
  analytic_bound : float;  (** the §6.2 worst case for this discipline *)
}

val detection :
  ?runs:int -> ?seed:int64 -> Runtime.kind -> Params.t -> detection_row
(** Crash participant 1 at a random phase, measure p\[0\]'s detection
    delay. *)

type reliability_row = {
  r_kind : Runtime.kind;
  loss : float;
  r_runs : int;
  false_detections : int;
  false_rate : float;  (** false detections per run *)
}

val reliability :
  ?runs:int ->
  ?duration:float ->
  ?seed:int64 ->
  Runtime.kind ->
  Params.t ->
  loss:float ->
  reliability_row
(** Loss-injection runs with no crash: how often does each discipline
    falsely deactivate? *)

val default_kinds : Params.t -> Runtime.kind list
(** Halving, two-phase, and the fixed-rate baseline matched to the
    accelerated detection bound ([k = 2]). *)

val pp_rate : Format.formatter -> rate_row -> unit
val pp_detection : Format.formatter -> detection_row -> unit
val pp_reliability : Format.formatter -> reliability_row -> unit

val reliability_model :
  ?runs:int ->
  ?duration:float ->
  ?seed:int64 ->
  Runtime.kind ->
  Params.t ->
  model:Sim.Loss.t ->
  reliability_row
(** {!reliability} with an explicit loss model — used to compare bursty
    (Gilbert–Elliott) loss against Bernoulli loss of the same average
    rate: bursts correlate consecutive losses, which is exactly what the
    accelerated schedule's robustness argument assumes away. *)

type join_row = {
  j_runs : int;
  joined : int;  (** runs in which the joiner was acknowledged *)
  mean_latency : float;
  max_latency : float;
  join_bound : float;  (** the corrected bound [2*tmax + tmin] *)
}

val join_latency : ?runs:int -> ?seed:int64 -> Params.t -> join_row
(** Simulate the expanding protocol's joining phase: a participant starts
    at a random phase of p\[0\]'s round schedule and sends join requests
    every [tmin] over the slow pre-join channel (delay up to [tmax]); the
    latency is the time until p\[0\]'s first beat reaches it.  The
    maximum approaches the Figure-13 bound [2*tmax + tmin]. *)

val pp_join : Format.formatter -> join_row -> unit
