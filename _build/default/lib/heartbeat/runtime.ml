type kind = Halving | Two_phase | Fixed_rate of int

let kind_name = function
  | Halving -> "halving"
  | Two_phase -> "two-phase"
  | Fixed_rate k -> Printf.sprintf "fixed-rate(%d)" k

type crash = { who : int; at : float }

type config = {
  params : Params.t;
  kind : kind;
  loss : float;
  loss_model : Sim.Loss.t option;
  duration : float;
  crash : crash option;
  fixed_bounds : bool;
  seed : int64;
}

let config ?(kind = Halving) ?(loss = 0.0) ?loss_model ?crash
    ?(fixed_bounds = false) ?(seed = 1L) ~duration params =
  (match kind with
  | Fixed_rate k when k < 1 ->
      invalid_arg "Heartbeat.Runtime: Fixed_rate needs k >= 1"
  | _ -> ());
  { params; kind; loss; loss_model; duration; crash; fixed_bounds; seed }

type result = {
  messages_sent : int;
  messages_lost : int;
  p0_detected_at : float option;
  pi_inactivated_at : (int * float) list;
  false_detection : bool;
}

(* Mutable per-run protocol state. *)
type participant = {
  index : int;
  mutable alive : bool;
  mutable deadline : Sim.Engine.timer option;
}

type coordinator = {
  mutable c_alive : bool;
  mutable tm : float array; (* per-participant waiting time *)
  mutable rcvd : bool array;
  mutable misses : int array; (* fixed-rate miss counters *)
  mutable detected : float option;
}

let run (cfg : config) : result =
  let { Params.tmin; tmax; n } = cfg.params in
  let tmin_f = float_of_int tmin and tmax_f = float_of_int tmax in
  let engine = Sim.Engine.create ~seed:cfg.seed () in
  let pi_bound =
    if cfg.fixed_bounds then 2.0 *. tmax_f
    else (3.0 *. tmax_f) -. tmin_f
  in
  let coordinator =
    {
      c_alive = true;
      tm = Array.make (n + 1) tmax_f;
      rcvd = Array.make (n + 1) true;
      misses = Array.make (n + 1) 0;
      detected = None;
    }
  in
  let participants =
    Array.init (n + 1) (fun i -> { index = i; alive = true; deadline = None })
  in
  let inactivations = ref [] in
  let crashed = ref false in
  (* One-way links; each direction gets half the round-trip budget. *)
  let link deliver =
    Sim.Net.create engine ~loss:cfg.loss ?model:cfg.loss_model ~delay_lo:0.0
      ~delay_hi:(tmin_f /. 2.0) ~deliver ()
  in
  (* Forward refs between the two directions' handlers. *)
  let to_p0 : (int, int Sim.Net.t) Hashtbl.t = Hashtbl.create 8 in
  let reply i = Sim.Net.send (Hashtbl.find to_p0 i) i in
  let rearm_deadline p on_fire =
    Option.iter Sim.Engine.cancel p.deadline;
    p.deadline <- Some (Sim.Engine.schedule engine ~delay:pi_bound on_fire)
  in
  let rec participant_deadline i () =
    let p = participants.(i) in
    if p.alive then begin
      p.alive <- false;
      inactivations := (i, Sim.Engine.now engine) :: !inactivations
    end
  and on_beat i =
    let p = participants.(i) in
    if p.alive then begin
      reply i;
      rearm_deadline p (participant_deadline i)
    end
  in
  let to_pi =
    Array.init (n + 1) (fun i -> link (fun _ -> on_beat i))
  in
  for i = 1 to n do
    Hashtbl.add to_p0 i
      (link (fun i ->
           if coordinator.c_alive then begin
             coordinator.rcvd.(i) <- true;
             coordinator.misses.(i) <- 0
           end))
  done;
  let detect () =
    if coordinator.detected = None then begin
      coordinator.detected <- Some (Sim.Engine.now engine);
      coordinator.c_alive <- false
    end
  in
  let broadcast () =
    for i = 1 to n do
      Sim.Net.send to_pi.(i) i
    done
  in
  (* Halving coordinator: evaluate the ending round, recompute the
     waiting times, broadcast, and schedule the next round boundary. *)
  let rec accelerated_round () =
    if coordinator.c_alive then begin
      for i = 1 to n do
        if coordinator.rcvd.(i) then coordinator.tm.(i) <- tmax_f
        else coordinator.tm.(i) <- coordinator.tm.(i) /. 2.0;
        coordinator.rcvd.(i) <- false
      done;
      let t = Array.fold_left min infinity (Array.sub coordinator.tm 1 n) in
      if t < tmin_f then detect ()
      else begin
        broadcast ();
        ignore (Sim.Engine.schedule engine ~delay:t accelerated_round)
      end
    end
  in
  (* Two-phase starvation bookkeeping: a miss at tm = tmin means the
     accelerated probe also went unanswered. *)
  let rec two_phase_round () =
    if coordinator.c_alive then begin
      let starved = ref false in
      for i = 1 to n do
        if coordinator.rcvd.(i) then coordinator.tm.(i) <- tmax_f
        else if coordinator.tm.(i) <= tmin_f then starved := true
        else coordinator.tm.(i) <- tmin_f;
        coordinator.rcvd.(i) <- false
      done;
      if !starved then detect ()
      else begin
        let t = Array.fold_left min infinity (Array.sub coordinator.tm 1 n) in
        broadcast ();
        ignore (Sim.Engine.schedule engine ~delay:t two_phase_round)
      end
    end
  in
  let rec fixed_rate_round k () =
    if coordinator.c_alive then begin
      let period = tmax_f /. float_of_int k in
      let failed = ref false in
      for i = 1 to n do
        if not coordinator.rcvd.(i) then begin
          coordinator.misses.(i) <- coordinator.misses.(i) + 1;
          if coordinator.misses.(i) >= k then failed := true
        end;
        coordinator.rcvd.(i) <- false
      done;
      if !failed then detect ()
      else begin
        broadcast ();
        ignore (Sim.Engine.schedule engine ~delay:period (fixed_rate_round k))
      end
    end
  in
  (* Arm participant deadlines and start the coordinator. *)
  for i = 1 to n do
    rearm_deadline participants.(i) (participant_deadline i)
  done;
  (match cfg.kind with
  | Halving ->
      ignore (Sim.Engine.schedule engine ~delay:tmax_f accelerated_round)
  | Two_phase ->
      ignore (Sim.Engine.schedule engine ~delay:tmax_f two_phase_round)
  | Fixed_rate k ->
      ignore
        (Sim.Engine.schedule engine
           ~delay:(tmax_f /. float_of_int k)
           (fixed_rate_round k)));
  (* Crash injection. *)
  Option.iter
    (fun { who; at } ->
      ignore
        (Sim.Engine.schedule engine ~delay:at (fun () ->
             crashed := true;
             if who = 0 then coordinator.c_alive <- false
             else begin
               participants.(who).alive <- false;
               Option.iter Sim.Engine.cancel participants.(who).deadline
             end)))
    cfg.crash;
  Sim.Engine.run ~until:cfg.duration engine;
  let sent = ref 0 and lost = ref 0 in
  Array.iteri
    (fun i l ->
      if i >= 1 then begin
        sent := !sent + Sim.Net.sent l;
        lost := !lost + Sim.Net.lost l
      end)
    to_pi;
  Hashtbl.iter
    (fun _ l ->
      sent := !sent + Sim.Net.sent l;
      lost := !lost + Sim.Net.lost l)
    to_p0;
  {
    messages_sent = !sent;
    messages_lost = !lost;
    p0_detected_at = coordinator.detected;
    pi_inactivated_at = List.rev !inactivations;
    false_detection = coordinator.detected <> None && not !crashed;
  }

let detection_delay cfg result =
  match (cfg.crash, result.p0_detected_at) with
  | Some { at; _ }, Some d when d >= at -> Some (d -. at)
  | _ -> None
