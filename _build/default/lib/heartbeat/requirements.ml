type requirement = R1 | R2 | R3

let all = [ R1; R2; R3 ]
let name = function R1 -> "R1" | R2 -> "R2" | R3 -> "R3"
let needs_monitors = function R1 -> true | R2 | R3 -> false

let participants variant (p : Params.t) =
  let n = if Ta_models.is_multi variant then p.Params.n else 1 in
  List.init n (fun k -> k + 1)

(* "p[j] is still a live participant": any location other than the two
   inactivated ones.  Never-joined and left participants are handled
   separately, following the paper's UPPAAL formulas
   (e.g. [P2.Alive or (not jnd[..]) or leave[..]]). *)
let alive_pred variant net j =
  let loc_is loc = Ta.Semantics.loc_is net ~auto:(Ta_models.p_name j) ~loc in
  let v = loc_is "VInact" and nv = loc_is "NVInact" in
  let left =
    if variant = Ta_models.Dynamic then loc_is "Left" else fun _ -> false
  in
  fun c -> (not (v c)) && (not (nv c)) && not (left c)

(* "p[j]'s state cannot excuse someone else's inactivation": p[j] is
   alive, or it never joined, or it left voluntarily. *)
let no_excuse_pred variant net j =
  let alive = alive_pred variant net j in
  let left =
    if variant = Ta_models.Dynamic then
      Ta.Semantics.loc_is net ~auto:(Ta_models.p_name j) ~loc:"Left"
    else fun _ -> false
  in
  let unjoined =
    if variant = Ta_models.Expanding || variant = Ta_models.Dynamic then
      let jv = Ta.Semantics.var net (Printf.sprintf "jnd%d" j) in
      fun c -> jv c = 0
    else fun _ -> false
  in
  fun c -> alive c || left c || unjoined c

let bad_state variant (p : Params.t) (net : Ta.Semantics.t) req =
  let loc_is auto loc = Ta.Semantics.loc_is net ~auto ~loc in
  let var name = Ta.Semantics.var net name in
  let ps = participants variant p in
  match req with
  | R1 ->
      (* Some watchdog reached its error location. *)
      let errors =
        List.map (fun i -> loc_is (Ta_models.monitor_name i) "Error") ps
      in
      fun c -> List.exists (fun pred -> pred c) errors
  | R2 ->
      (* Some participant was non-voluntarily inactivated although no
         message was ever lost, p[0] is still alive, and every other
         participant is alive (or never joined / left voluntarily). *)
      let lost = var "lost" in
      let p0_alive = loc_is Ta_models.p0_name "Alive" in
      let nv =
        List.map (fun i -> (i, loc_is (Ta_models.p_name i) "NVInact")) ps
      in
      let no_excuse = List.map (fun j -> (j, no_excuse_pred variant net j)) ps in
      fun c ->
        lost c = 0 && p0_alive c
        && List.exists
             (fun (i, nv_i) ->
               nv_i c
               && List.for_all (fun (j, ok_j) -> j = i || ok_j c) no_excuse)
             nv
  | R3 ->
      (* p[0] was non-voluntarily inactivated although no message was ever
         lost and every participant is alive (or never joined / left). *)
      let lost = var "lost" in
      let p0_nv = loc_is Ta_models.p0_name "NVInact" in
      let no_excuse = List.map (fun j -> no_excuse_pred variant net j) ps in
      fun c ->
        lost c = 0 && p0_nv c && List.for_all (fun ok_j -> ok_j c) no_excuse
