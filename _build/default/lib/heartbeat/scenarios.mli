(** The paper's counterexample figures (10–13), regenerated.

    Each scenario runs the model checker on the configuration the paper
    uses for that figure, extracts the shortest violating trace, and
    summarises it (events with their occurrence times).  The test suite
    asserts structural properties of each trace — e.g. that the Figure 11
    trace contains no message loss and no voluntary crash, and that p[1]
    is non-voluntarily inactivated at time [3*tmax - tmin]. *)

type event = { time : int; action : string }

type t = {
  figure : string;  (** e.g. ["Fig10a"] *)
  description : string;
  variant : Ta_models.variant;
  params : Params.t;
  requirement : Requirements.requirement;
  events : event list;  (** the violating trace, ticks folded into times *)
}

val timeline : Ta.Semantics.label list -> event list
(** Fold delay steps into integer timestamps. *)

val fig10a : unit -> t
(** R1 counterexample for [2*tmin < tmax] (tmin=4): p\[1\] replies once and
    crashes; p\[0\]'s halving schedule keeps it alive past [2*tmax]. *)

val fig10b : unit -> t
(** R1 counterexample for [2*tmin <= tmax] (tmin=5). *)

val fig11 : unit -> t
(** R2 counterexample for [tmin = tmax]: a beat reaches p\[1\] at the same
    instant as its timeout, and the timeout is processed first. *)

val fig12 : unit -> t
(** R3 counterexample for [tmin = tmax]: the reply reaches p\[0\] at the
    same instant as p\[0\]'s timeout. *)

val fig13 : unit -> t
(** R2 counterexample for the expanding protocol, [2*tmin >= tmax]: a join
    request is acknowledged only after [2*tmax + tmin], past the joining
    timeout [3*tmax - tmin]. *)

val all : unit -> t list

val last_event : t -> event
(** The final (violating) event.
    @raise Invalid_argument on an empty trace. *)

val has_action : t -> string -> bool
val pp : Format.formatter -> t -> unit
