type event = { time : int; action : string }

type t = {
  figure : string;
  description : string;
  variant : Ta_models.variant;
  params : Params.t;
  requirement : Requirements.requirement;
  events : event list;
}

let timeline labels =
  let time = ref 0 in
  List.filter_map
    (fun (l : Ta.Semantics.label) ->
      match l with
      | Ta.Semantics.Delay ->
          incr time;
          None
      | Ta.Semantics.Act name -> Some { time = !time; action = name })
    labels

let make ~figure ~description ~variant ~tmin ~tmax requirement =
  let params = Params.make ~tmin ~tmax () in
  let outcome = Verify.check variant params requirement in
  match outcome.Verify.counterexample with
  | None ->
      Format.kasprintf failwith
        "Scenarios.%s: expected a counterexample for %s at (%d,%d)" figure
        (Requirements.name requirement)
        tmin tmax
  | Some trace ->
      {
        figure;
        description;
        variant;
        params;
        requirement;
        events = timeline trace;
      }

let fig10a () =
  make ~figure:"Fig10a"
    ~description:
      "R1 violation, 2*tmin < tmax: p[1] replies then crashes; p[0]'s \
       halving keeps it alive past 2*tmax after the last received beat"
    ~variant:Ta_models.Binary ~tmin:4 ~tmax:10 Requirements.R1

let fig10b () =
  make ~figure:"Fig10b"
    ~description:
      "R1 violation, 2*tmin <= tmax: the halving schedule reaches \
       3*tmax - tmin in the worst case"
    ~variant:Ta_models.Binary ~tmin:5 ~tmax:10 Requirements.R1

let fig11 () =
  make ~figure:"Fig11"
    ~description:
      "R2 violation, tmin = tmax: the beat reaches p[1] exactly at its \
       timeout 3*tmax - tmin and the timeout is processed first"
    ~variant:Ta_models.Binary ~tmin:10 ~tmax:10 Requirements.R2

let fig12 () =
  make ~figure:"Fig12"
    ~description:
      "R3 violation, tmin = tmax: the reply reaches p[0] exactly at its \
       round boundary and the timeout is processed first"
    ~variant:Ta_models.Binary ~tmin:10 ~tmax:10 Requirements.R3

let fig13 () =
  make ~figure:"Fig13"
    ~description:
      "R2 violation for the expanding protocol, 2*tmin >= tmax: the join \
       acknowledgement arrives only after 2*tmax + tmin, past the joining \
       timeout 3*tmax - tmin"
    ~variant:Ta_models.Expanding ~tmin:5 ~tmax:10 Requirements.R2

let all () = [ fig10a (); fig10b (); fig11 (); fig12 (); fig13 () ]

let last_event s =
  match List.rev s.events with
  | [] -> invalid_arg "Scenarios.last_event: empty trace"
  | e :: _ -> e

let has_action s name = List.exists (fun e -> e.action = name) s.events

let pp ppf s =
  Format.fprintf ppf "@[<v>%s (%s, %a, %s):@,%s@,@," s.figure
    (Ta_models.variant_name s.variant)
    Params.pp s.params
    (Requirements.name s.requirement)
    s.description;
  List.iter
    (fun e -> Format.fprintf ppf "  t=%-3d %s@," e.time e.action)
    s.events;
  Format.fprintf ppf "@]"
