module T = Proc.Term
module P = Proc.Pexpr

type variant = Binary | Revised | Two_phase | Static | Expanding | Dynamic

let variant_name = function
  | Binary -> "binary"
  | Revised -> "revised"
  | Two_phase -> "two-phase"
  | Static -> "static"
  | Expanding -> "expanding"
  | Dynamic -> "dynamic"

let of_ta = function
  | Ta_models.Binary -> Some Binary
  | Ta_models.Revised -> Some Revised
  | Ta_models.Two_phase -> Some Two_phase
  | Ta_models.Static -> Some Static
  | Ta_models.Expanding -> Some Expanding
  | Ta_models.Dynamic -> Some Dynamic

let has_join = function
  | Expanding | Dynamic -> true
  | Binary | Revised | Two_phase | Static -> false

(* Action names.  s_/r_ prefixes are the communication halves; the bare
   name is the synchronisation result. *)
let s_ name = "s_" ^ name
let r_ name = "r_" ^ name
let fly0 i = Printf.sprintf "fly0_%d" i
let dlv0 i = Printf.sprintf "dlv0_%d" i
let beat1 i = Printf.sprintf "beat1_%d" i
let beat1f i = Printf.sprintf "beat1f_%d" i
let fly1 i = Printf.sprintf "fly1_%d" i
let fly1f i = Printf.sprintf "fly1f_%d" i
let dlv1 i = Printf.sprintf "dlv1_%d" i
let dlv1f i = Printf.sprintf "dlv1f_%d" i
let reset1 i = Printf.sprintf "reset1_%d" i
let timeout1 i = Printf.sprintf "timeout1_%d" i
let crash1 i = Printf.sprintf "inactivate_v_p%d" i
let disarm i = Printf.sprintf "left_%d" i
let lose0 i = Printf.sprintf "lose0_%d" i
let lose1 i = Printf.sprintf "lose1_%d" i
let nv_pi i = Printf.sprintf "inactivate_nv_p%d" i
let join i = Printf.sprintf "join_%d" i
let jdlv i = Printf.sprintf "jdlv_%d" i
let jlose i = Printf.sprintf "jlose_%d" i
let beat0 i = Printf.sprintf "beat0_%d" i

let act_beat_delivered_to_p0 = dlv1
let act_join_delivered_to_p0 = jdlv
let act_leave_delivered_to_p0 = dlv1f
let act_beat_delivered_to_pi = dlv0
let act_inactivate_nv_p0 = "inactivate_nv_p0"
let act_inactivate_nv_pi = nv_pi
let act_crash_p0 = "inactivate_v_p0"
let act_crash_pi = crash1
let act_leave_pi = disarm

let act_lose variant i =
  [ lose0 i; lose1 i ] @ if has_join variant then [ jlose i ] else []

(* Term-building shorthands. *)
let tick p = T.Prefix (T.act Proc.Spec.tick_name [], p)
let emit name p = T.Prefix (T.act name [], p)
let emit1 name e p = T.Prefix (T.act name [ e ], p)
let recv name p = T.Prefix (T.act name [], p)
let rcvd i = Printf.sprintf "rcvd%d" i
let tmv i = Printf.sprintf "tm%d" i
let jnd i = Printf.sprintf "jnd%d" i
let gone i = Printf.sprintf "gone%d" i

(* ------------------------------------------------------------------ *)
(* p[0]                                                                 *)
(* ------------------------------------------------------------------ *)

let p0_def variant (p : Params.t) n =
  let tmin = p.Params.tmin and tmax = p.Params.tmax in
  let joining = has_join variant in
  let participants = List.init n (fun k -> k + 1) in
  let params =
    [ "active"; "t" ]
    @ List.concat_map
        (fun i ->
          [ rcvd i; tmv i ]
          @ (if joining then [ jnd i ] else [])
          @ if variant = Dynamic then [ gone i ] else [])
        participants
  in
  (* Recursive call with selected parameters overridden. *)
  let continue overrides =
    T.Call
      ( "P0",
        List.map
          (fun name ->
            match List.assoc_opt name overrides with
            | Some e -> e
            | None -> P.Var name)
          params )
  in
  let new_tm i =
    let joined_case =
      match variant with
      | Two_phase -> P.If (P.Var (rcvd i), P.int tmax, P.int tmin)
      | Binary | Revised | Static | Expanding | Dynamic ->
          P.If (P.Var (rcvd i), P.int tmax, P.Div (P.Var (tmv i), P.int 2))
    in
    if joining then P.If (P.Var (jnd i), joined_case, P.int tmax)
    else joined_case
  in
  let newt =
    match participants with
    | [] -> P.int tmax
    | first :: rest ->
        List.fold_left
          (fun acc i -> P.If (P.Lt (new_tm i, acc), new_tm i, acc))
          (new_tm first) rest
  in
  let proceed_guard =
    match variant with
    | Two_phase -> P.Or (P.Var (rcvd 1), P.Lt (P.int tmin, P.Var (tmv 1)))
    | Binary | Revised | Static | Expanding | Dynamic ->
        P.Le (P.int tmin, newt)
  in
  let send_and_rearm =
    let after =
      continue
        ((("t", newt) :: List.map (fun i -> (tmv i, new_tm i)) participants)
        @ List.map (fun i -> (rcvd i, P.ff)) participants)
    in
    if joining then
      (* Per-participant beats, only to the joined ones; then re-arm. *)
      let rec emit_beats = function
        | [] -> emit1 (s_ "arm") newt after
        | i :: rest ->
            T.cond (P.Var (jnd i))
              (emit (s_ (beat0 i)) (emit_beats rest))
              (emit_beats rest)
      in
      emit_beats participants
    else
      (* One broadcast beat through the Broadcaster channel. *)
      emit (s_ "beat0") (emit1 (s_ "arm") newt after)
  in
  let timeout_branch =
    T.cond proceed_guard send_and_rearm
      (emit act_inactivate_nv_p0 (continue [ ("active", P.ff) ]))
  in
  let set_if_active name value =
    (name, P.If (P.Var "active", value, P.Var name))
  in
  (* Dynamic: a participant that has left is gone for good — later beats
     and stale join requests are ignored. *)
  let set_if_live i name value =
    if variant = Dynamic then
      ( name,
        P.If
          (P.And (P.Var "active", P.Not (P.Var (gone i))), value, P.Var name)
      )
    else set_if_active name value
  in
  let receive_branches =
    List.concat_map
      (fun i ->
        match variant with
        | Expanding | Dynamic ->
            [
              (* join request received: mark joined *)
              recv (r_ (jdlv i))
                (continue
                   [ set_if_live i (jnd i) P.tt; set_if_live i (rcvd i) P.tt ]);
              (* regular (true) beat *)
              recv (r_ (dlv1 i))
                (continue
                   [ set_if_live i (jnd i) P.tt; set_if_live i (rcvd i) P.tt ]);
            ]
            @ (if variant = Dynamic then
                 [
                   (* leave (false) beat: drop from the joined set,
                      permanently *)
                   recv (r_ (dlv1f i))
                     (continue
                        [
                          set_if_active (jnd i) P.ff;
                          set_if_active (gone i) P.tt;
                        ]);
                 ]
               else [])
        | Binary | Revised | Two_phase | Static ->
            [ recv (r_ (dlv1 i)) (continue [ set_if_active (rcvd i) P.tt ]) ])
      participants
  in
  let body =
    T.choice
      ([
         tick (continue []);
         T.when_ (P.Var "active")
           (emit (s_ "crash0") (continue [ ("active", P.ff) ]));
         T.when_ (P.Var "active") (recv (r_ "timeout0") timeout_branch);
       ]
      @ receive_branches)
  in
  T.def "P0" params body

(* p[0]'s round stopwatch: armed with the waiting time at each beat; at
   the limit it refuses to tick, forcing the timeout. *)
let tick_dead_def = T.def "TickDead" [] (tick (T.call "TickDead" []))

let sw0_defs (p : Params.t) =
  let tmax = p.Params.tmax in
  [
    tick_dead_def;
    T.def "SW0Armed" [ "c"; "lim" ]
      (T.choice
         [
           recv (r_ "crash0") (T.call "TickDead" []);
           T.cond
             (P.Eq (P.Var "c", P.Var "lim"))
             (emit (s_ "timeout0") (T.call "SW0Idle" []))
             (tick
                (T.call "SW0Armed" [ P.Add (P.Var "c", P.int 1); P.Var "lim" ]));
         ]);
    T.def "SW0Idle" []
      (T.choice
         [
           tick (T.call "SW0Idle" []);
           T.Sum
             ( "x",
               1,
               tmax,
               T.Prefix
                 ( T.act (r_ "arm") [ P.Var "x" ],
                   T.call "SW0Armed" [ P.int 0; P.Var "x" ] ) );
           recv (r_ "crash0") (T.call "TickDead" []);
         ]);
  ]

(* ------------------------------------------------------------------ *)
(* participants                                                         *)
(* ------------------------------------------------------------------ *)

(* Joined participant: reply immediately to each received beat, crash at
   will, inactivate on the watchdog's timeout.  In the dynamic variant a
   reply may instead carry false, leaving the protocol and disarming the
   watchdog. *)
let p1_defs variant (p : Params.t) i =
  let limit = Params.p1_timeout p in
  let pname = Printf.sprintf "P1_%d" i in
  let swname = Printf.sprintf "SW1_%d" i in
  let reply_true k = emit (s_ (beat1 i)) (emit (s_ (reset1 i)) k) in
  let on_beat =
    let continue = T.call pname [ P.Var "active" ] in
    if variant = Dynamic then
      T.cond (P.Var "active")
        (T.choice
           [
             reply_true continue;
             emit (s_ (beat1f i)) (emit (s_ (disarm i)) (T.call pname [ P.ff ]));
           ])
        continue
    else T.cond (P.Var "active") (reply_true continue) continue
  in
  let sw_summands =
    [
      recv (r_ (reset1 i)) (T.call swname [ P.int 0 ]);
      recv (r_ (crash1 i)) (T.call "TickDead" []);
      T.cond
        (P.Eq (P.Var "c", P.int limit))
        (emit (s_ (timeout1 i)) (T.call "TickDead" []))
        (tick (T.call swname [ P.Add (P.Var "c", P.int 1) ]));
    ]
    @
    if variant = Dynamic then [ recv (r_ (disarm i)) (T.call "TickDead" []) ]
    else []
  in
  [
    T.def pname [ "active" ]
      (T.choice
         [
           tick (T.call pname [ P.Var "active" ]);
           T.when_ (P.Var "active")
             (emit (s_ (crash1 i)) (T.call pname [ P.ff ]));
           recv (r_ (dlv0 i)) on_beat;
           T.when_ (P.Var "active")
             (recv (r_ (timeout1 i)) (emit (nv_pi i) (T.call pname [ P.ff ])));
         ]);
    (* The reset summand stays enabled at the limit, so the paper's
       timeout/receive race is present in this encoding too. *)
    T.def swname [ "c" ] (T.choice sw_summands);
  ]

(* Joining phase (expanding/dynamic): send a join request immediately,
   then every tmin, until p[0]'s first beat arrives; the inactivation
   watchdog runs from start-up. *)
let joiner_defs (p : Params.t) i =
  let tmin = p.Params.tmin in
  let pname = Printf.sprintf "P1_%d" i in
  let init = Printf.sprintf "PJInit_%d" i in
  let wait = Printf.sprintf "PJWait_%d" i in
  let reply_and_join =
    (* the first beat from p[0] acknowledges the join; reply at once *)
    emit (s_ (beat1 i)) (emit (s_ (reset1 i)) (T.call pname [ P.tt ]))
  in
  [
    T.def init []
      (T.choice
         [
           emit (s_ (join i)) (T.call wait [ P.int 0 ]);
           emit (s_ (crash1 i)) (T.call pname [ P.ff ]);
         ]);
    T.def wait [ "w" ]
      (T.choice
         [
           T.cond
             (P.Eq (P.Var "w", P.int tmin))
             (emit (s_ (join i)) (T.call wait [ P.int 0 ]))
             (tick (T.call wait [ P.Add (P.Var "w", P.int 1) ]));
           recv (r_ (dlv0 i)) reply_and_join;
           emit (s_ (crash1 i)) (T.call pname [ P.ff ]);
           recv (r_ (timeout1 i)) (emit (nv_pi i) (T.call pname [ P.ff ]));
         ]);
  ]

(* ------------------------------------------------------------------ *)
(* channels                                                             *)
(* ------------------------------------------------------------------ *)

(* Forward channel.  Static/binary family: one channel that receives
   p[0]'s beat and runs the paper's Broadcaster loop.  Joining variants:
   one channel per participant (p[0] addresses the joined ones). *)
let ch0_broadcast_def n =
  let rec broadcast i =
    if i > n then T.call "Ch0" []
    else
      T.choice
        [
          emit (s_ (fly0 i)) (broadcast (i + 1));
          emit (lose0 i) (broadcast (i + 1));
        ]
  in
  T.def "Ch0" []
    (T.choice [ tick (T.call "Ch0" []); recv (r_ "beat0") (broadcast 1) ])

let ch0_single_def i =
  let name = Printf.sprintf "Ch0_%d" i in
  T.def name []
    (T.choice
       [
         tick (T.call name []);
         recv (r_ (beat0 i))
           (T.choice
              [
                emit (s_ (fly0 i)) (T.call name []);
                emit (lose0 i) (T.call name []);
              ]);
       ])

(* Reply channel: forward or lose.  Dynamic: true and false beats. *)
let ch1_def variant i =
  let name = Printf.sprintf "Ch1_%d" i in
  let true_branch =
    recv (r_ (beat1 i))
      (T.choice
         [ emit (s_ (fly1 i)) (T.call name []); emit (lose1 i) (T.call name []) ])
  in
  let branches =
    [ tick (T.call name []); true_branch ]
    @
    if variant = Dynamic then
      [
        recv (r_ (beat1f i))
          (T.choice
             [
               emit (s_ (fly1f i)) (T.call name []);
               emit (lose1 i) (T.call name []);
             ]);
      ]
    else []
  in
  T.def name [] (T.choice branches)

(* Pre-join channel (the paper's "extra channel", active before the
   process has joined): a join request may take up to tmax; a newer
   request overruns a pending one silently. *)
let join_channel_defs (p : Params.t) i =
  let tmax = p.Params.tmax in
  let idle = Printf.sprintf "JChIdle_%d" i in
  let fly = Printf.sprintf "JChFly_%d" i in
  [
    T.def idle []
      (T.choice
         [
           tick (T.call idle []);
           recv (r_ (join i))
             (T.choice
                [ T.call fly [ P.int 0 ]; emit (jlose i) (T.call idle []) ]);
         ]);
    T.def fly [ "c" ]
      (T.choice
         [
           emit (s_ (jdlv i)) (T.call idle []);
           T.when_
             (P.Lt (P.Var "c", P.int tmax))
             (tick (T.call fly [ P.Add (P.Var "c", P.int 1) ]));
           (* a superseding join request is absorbed silently *)
           recv (r_ (join i)) (T.call fly [ P.Var "c" ]);
         ]);
  ]

(* Channel stopwatch: carries in-flight beats and enforces the
   round-trip bound by refusing to tick at the deadline. *)
let swch_defs variant (p : Params.t) i =
  let tmin = p.Params.tmin in
  let idle = Printf.sprintf "SWCHIdle_%d" i in
  let f0 = Printf.sprintf "SWCHFly0_%d" i in
  let after = Printf.sprintf "SWCHAfter_%d" i in
  let f1 = Printf.sprintf "SWCHFly1_%d" i in
  let f1f = Printf.sprintf "SWCHFly1f_%d" i in
  [
    T.def idle []
      (T.choice
         ([ tick (T.call idle []); recv (r_ (fly0 i)) (T.call f0 [ P.int 0 ]) ]
         @
         (* a leave beat can also originate while no exchange is pending *)
         if variant = Dynamic then
           [ recv (r_ (fly1f i)) (T.call f1f [ P.int 0 ]) ]
         else []));
    T.def f0 [ "c" ]
      (T.choice
         [
           emit (s_ (dlv0 i)) (T.call after [ P.Var "c" ]);
           T.when_
             (P.Lt (P.Var "c", P.int tmin))
             (tick (T.call f0 [ P.Add (P.Var "c", P.int 1) ]));
         ]);
    T.def after [ "spent" ]
      (T.choice
         ([
            tick (T.call after [ P.Var "spent" ]);
            recv (r_ (fly0 i)) (T.call f0 [ P.int 0 ]);
            recv (r_ (fly1 i)) (T.call f1 [ P.Var "spent" ]);
          ]
         @
         if variant = Dynamic then
           [ recv (r_ (fly1f i)) (T.call f1f [ P.Var "spent" ]) ]
         else []));
    T.def f1 [ "c" ]
      (T.choice
         [
           emit (s_ (dlv1 i)) (T.call idle []);
           T.when_
             (P.Lt (P.Var "c", P.int tmin))
             (tick (T.call f1 [ P.Add (P.Var "c", P.int 1) ]));
         ]);
  ]
  @
  if variant = Dynamic then
    [
      T.def f1f [ "c" ]
        (T.choice
           [
             emit (s_ (dlv1f i)) (T.call idle []);
             T.when_
               (P.Lt (P.Var "c", P.int tmin))
               (tick (T.call f1f [ P.Add (P.Var "c", P.int 1) ]));
           ]);
    ]
  else []

(* The revised protocol's p[0] starts by sending its beat at time 0. *)
let p0_start_def (p : Params.t) n =
  let tmax = p.Params.tmax in
  let participants = List.init n (fun k -> k + 1) in
  let initial_args =
    [ P.tt; P.int tmax ]
    @ List.concat_map (fun _ -> [ P.ff; P.int tmax ]) participants
  in
  T.def "P0Start" []
    (emit (s_ "beat0")
       (emit1 (s_ "arm") (P.int tmax) (T.Call ("P0", initial_args))))

(* ------------------------------------------------------------------ *)
(* assembly                                                             *)
(* ------------------------------------------------------------------ *)

let build variant (p : Params.t) : Proc.Spec.t =
  let joining = has_join variant in
  let n =
    match variant with
    | Static | Expanding | Dynamic -> p.Params.n
    | Binary | Revised | Two_phase -> 1
  in
  let participants = List.init n (fun k -> k + 1) in
  let tmax = p.Params.tmax in
  let defs =
    [ p0_def variant p n ]
    @ (if joining then List.map ch0_single_def participants
       else [ ch0_broadcast_def n ])
    @ sw0_defs p
    @ (if variant = Revised then [ p0_start_def p n ] else [])
    @ List.concat_map (fun i -> p1_defs variant p i) participants
    @ (if joining then
         List.concat_map (fun i -> joiner_defs p i) participants
         @ List.concat_map (fun i -> join_channel_defs p i) participants
       else [])
    @ List.map (fun i -> ch1_def variant i) participants
    @ List.concat_map (fun i -> swch_defs variant p i) participants
  in
  let comms =
    [
      (s_ "arm", r_ "arm", "arm");
      (s_ "timeout0", r_ "timeout0", "timeout0");
      (s_ "crash0", r_ "crash0", act_crash_p0);
    ]
    @ (if joining then
         List.map (fun i -> (s_ (beat0 i), r_ (beat0 i), beat0 i)) participants
       else [ (s_ "beat0", r_ "beat0", "beat0") ])
    @ List.concat_map
        (fun i ->
          [
            (s_ (fly0 i), r_ (fly0 i), fly0 i);
            (s_ (dlv0 i), r_ (dlv0 i), dlv0 i);
            (s_ (beat1 i), r_ (beat1 i), beat1 i);
            (s_ (fly1 i), r_ (fly1 i), fly1 i);
            (s_ (dlv1 i), r_ (dlv1 i), dlv1 i);
            (s_ (reset1 i), r_ (reset1 i), reset1 i);
            (s_ (timeout1 i), r_ (timeout1 i), timeout1 i);
            (s_ (crash1 i), r_ (crash1 i), crash1 i);
          ]
          @ (if joining then
               [
                 (s_ (join i), r_ (join i), join i);
                 (s_ (jdlv i), r_ (jdlv i), jdlv i);
               ]
             else [])
          @
          if variant = Dynamic then
            [
              (s_ (beat1f i), r_ (beat1f i), beat1f i);
              (s_ (fly1f i), r_ (fly1f i), fly1f i);
              (s_ (dlv1f i), r_ (dlv1f i), dlv1f i);
              (s_ (disarm i), r_ (disarm i), disarm i);
            ]
          else [])
        participants
  in
  let allow =
    [ "arm"; "timeout0"; act_crash_p0; act_inactivate_nv_p0 ]
    @ (if joining then List.map beat0 participants else [ "beat0" ])
    @ List.concat_map
        (fun i ->
          [
            fly0 i; dlv0 i; beat1 i; fly1 i; dlv1 i; reset1 i; timeout1 i;
            crash1 i; nv_pi i; lose0 i; lose1 i;
          ]
          @ (if joining then [ join i; jdlv i; jlose i ] else [])
          @
          if variant = Dynamic then [ beat1f i; fly1f i; dlv1f i; disarm i ]
          else [])
        participants
  in
  let rcvd_init =
    if variant = Revised then Proc.Value.Bool false else Proc.Value.Bool true
  in
  let p0_init_args =
    [ Proc.Value.Bool true; Proc.Value.Int tmax ]
    @ List.concat_map
        (fun _ ->
          [ rcvd_init; Proc.Value.Int tmax ]
          @ (if joining then [ Proc.Value.Bool false ] else [])
          @ if variant = Dynamic then [ Proc.Value.Bool false ] else [])
        participants
  in
  let init =
    (if variant = Revised then [ ("P0Start", []); ("SW0Idle", []) ]
     else
       [
         ("P0", p0_init_args);
         ("SW0Armed", [ Proc.Value.Int 0; Proc.Value.Int tmax ]);
       ])
    @ (if joining then
         List.map (fun i -> (Printf.sprintf "Ch0_%d" i, [])) participants
       else [ ("Ch0", []) ])
    @ List.concat_map
        (fun i ->
          (if joining then
             [
               (Printf.sprintf "PJInit_%d" i, []);
               (Printf.sprintf "JChIdle_%d" i, []);
             ]
           else [ (Printf.sprintf "P1_%d" i, [ Proc.Value.Bool true ]) ])
          @ [
              (Printf.sprintf "SW1_%d" i, [ Proc.Value.Int 0 ]);
              (Printf.sprintf "Ch1_%d" i, []);
              (Printf.sprintf "SWCHIdle_%d" i, []);
            ])
        participants
  in
  { Proc.Spec.defs; init; comms; allow; hide = [] }

module For_figures = struct
  let p0_def = p0_def
  let sw0_defs = sw0_defs
  let p1_defs = p1_defs Binary
  let tick_dead = [ tick_dead_def ]
end
