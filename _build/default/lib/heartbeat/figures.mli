(** The paper's component state-space figures.

    Figure 1 shows p\[0\] of the binary protocol in isolation (with its
    round stopwatch, the arming channel hidden) reduced modulo weak-trace
    equivalence, for tmax = 2 and tmin = 1; Figure 2 shows p\[1\] (with
    its watchdog).  These functions rebuild those state spaces from the
    process-algebra models and return the reduced LTSs, which
    [bin/hbexplore] can render to Graphviz. *)

val p0_component : Params.t -> Proc.Semantics.label Lts.Graph.t
(** The raw LTS of p\[0\] composed with its stopwatch; beats and received
    replies are free (unsynchronised) actions, as in the paper's Fig 1. *)

val p0_reduced : Params.t -> Proc.Semantics.label Lts.Graph.t
(** [p0_component] with the arming channel hidden, determinised and
    minimised (weak-trace reduction, as the paper's Figure 1). *)

val p1_component : Params.t -> Proc.Semantics.label Lts.Graph.t
(** The LTS of p\[1\] composed with its watchdog (paper Figure 2). *)

val p1_reduced : Params.t -> Proc.Semantics.label Lts.Graph.t
(** [p1_component] with the watchdog-reset channel hidden, weak-trace
    reduced. *)

val label_to_string : Proc.Semantics.label -> string
