type t = { tmin : int; tmax : int; n : int }

let make ?(n = 1) ~tmin ~tmax () =
  if tmin <= 0 then invalid_arg "Heartbeat.Params: tmin must be positive";
  if tmax < tmin then invalid_arg "Heartbeat.Params: tmax must be >= tmin";
  if n < 1 then invalid_arg "Heartbeat.Params: n must be >= 1";
  { tmin; tmax; n }

let usual p = p.tmax > 2 * p.tmin
let degenerate p = p.tmin = p.tmax
let p1_timeout p = (3 * p.tmax) - p.tmin

let pp ppf p =
  Format.fprintf ppf "tmin=%d tmax=%d n=%d" p.tmin p.tmax p.n

let table_datasets = [ (1, 10); (4, 10); (5, 10); (9, 10); (10, 10) ]
