let p0_detection (p : Params.t) =
  if 2 * p.Params.tmin <= p.Params.tmax then (3 * p.Params.tmax) - p.Params.tmin
  else 2 * p.Params.tmax

let halving_schedule (p : Params.t) =
  let rec go t acc =
    if t < p.Params.tmin then List.rev acc else go (t / 2) (t :: acc)
  in
  go p.Params.tmax []

(* Worst case of the halving schedule: p[1]'s last reply arrives at p[0]
   just after a round of length tmax has started.  That round completes
   (tmax), the reply causes one more full round (tmax), and then the
   waiting time halves every round until it would drop below tmin, at which
   point p[0] inactivates at the timeout. *)
let p0_detection_exhaustive (p : Params.t) =
  let halvings =
    List.filter (fun t -> t < p.Params.tmax) (halving_schedule p)
  in
  (2 * p.Params.tmax) + List.fold_left ( + ) 0 halvings

let pi_waiting (p : Params.t) = 2 * p.Params.tmax

let pi_join_waiting (p : Params.t) = (2 * p.Params.tmax) + p.Params.tmin

let original_pi_timeout (p : Params.t) = (3 * p.Params.tmax) - p.Params.tmin

let original_p0_claim (p : Params.t) = 2 * p.Params.tmax
