lib/heartbeat/bounds.ml: List Params
