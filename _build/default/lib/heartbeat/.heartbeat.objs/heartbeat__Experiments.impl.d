lib/heartbeat/experiments.ml: Bounds Format Option Params Runtime Sim
