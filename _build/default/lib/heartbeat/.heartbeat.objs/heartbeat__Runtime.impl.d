lib/heartbeat/runtime.ml: Array Hashtbl List Option Params Printf Sim
