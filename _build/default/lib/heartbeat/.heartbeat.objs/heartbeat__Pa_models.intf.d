lib/heartbeat/pa_models.mli: Params Proc Ta_models
