lib/heartbeat/verify.mli: Format Params Requirements Ta Ta_models
