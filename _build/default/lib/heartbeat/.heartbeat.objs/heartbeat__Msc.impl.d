lib/heartbeat/msc.ml: Buffer List Printf Scenarios String Ta_models
