lib/heartbeat/ta_models.mli: Params Ta
