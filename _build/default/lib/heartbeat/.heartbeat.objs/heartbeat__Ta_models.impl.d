lib/heartbeat/ta_models.ml: Bounds List Params Printf Ta
