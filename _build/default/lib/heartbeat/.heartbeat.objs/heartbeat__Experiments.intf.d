lib/heartbeat/experiments.mli: Format Params Runtime Sim
