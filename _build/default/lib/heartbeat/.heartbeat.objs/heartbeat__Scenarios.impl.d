lib/heartbeat/scenarios.ml: Format List Params Requirements Ta Ta_models Verify
