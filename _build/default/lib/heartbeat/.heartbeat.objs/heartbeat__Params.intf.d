lib/heartbeat/params.mli: Format
