lib/heartbeat/runtime.mli: Params Sim
