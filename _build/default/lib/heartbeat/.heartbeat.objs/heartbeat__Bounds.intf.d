lib/heartbeat/bounds.mli: Params
