lib/heartbeat/figures.mli: Lts Params Proc
