lib/heartbeat/verify.ml: Format List Mc Params Requirements Ta Ta_models
