lib/heartbeat/scenarios.mli: Format Params Requirements Ta Ta_models
