lib/heartbeat/msc.mli: Scenarios
