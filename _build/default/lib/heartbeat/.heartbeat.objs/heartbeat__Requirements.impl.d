lib/heartbeat/requirements.ml: List Params Printf Ta Ta_models
