lib/heartbeat/params.ml: Format
