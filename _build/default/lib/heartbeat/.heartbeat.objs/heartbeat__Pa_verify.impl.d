lib/heartbeat/pa_verify.ml: Format List Mc Pa_models Params Proc Requirements
