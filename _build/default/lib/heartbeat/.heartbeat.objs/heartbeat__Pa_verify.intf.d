lib/heartbeat/pa_verify.mli: Pa_models Params Requirements
