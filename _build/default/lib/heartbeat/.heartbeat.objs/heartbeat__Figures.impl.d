lib/heartbeat/figures.ml: Format Lts Pa_models Params Proc
