lib/heartbeat/requirements.mli: Params Ta Ta_models
