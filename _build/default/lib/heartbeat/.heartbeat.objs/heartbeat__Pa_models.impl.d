lib/heartbeat/pa_models.ml: List Params Printf Proc Ta_models
