(* Component state spaces: a participant together with its private
   stopwatch, with the network-facing actions left free.  Reuses the
   process-algebra definitions of {!Pa_models} under a smaller
   communication/allow structure. *)

let spec_of defs init comms allow hide =
  { Proc.Spec.defs; init; comms; allow; hide }

let p0_spec (p : Params.t) =
  let tmax = p.Params.tmax in
  let defs =
    [ Pa_models.For_figures.p0_def Pa_models.Binary p 1 ]
    @ Pa_models.For_figures.sw0_defs p
  in
  let init =
    [
      ( "P0",
        [
          Proc.Value.Bool true;
          Proc.Value.Int tmax;
          Proc.Value.Bool true;
          Proc.Value.Int tmax;
        ] );
      ("SW0Armed", [ Proc.Value.Int 0; Proc.Value.Int tmax ]);
    ]
  in
  let comms =
    [
      ("s_arm", "r_arm", "arm");
      ("s_timeout0", "r_timeout0", "timeout0");
      ("s_crash0", "r_crash0", "inactivate_v_p0");
    ]
  in
  let allow =
    [
      "arm";
      "timeout0";
      "inactivate_v_p0";
      "inactivate_nv_p0";
      "s_beat0";
      "r_dlv1_1";
    ]
  in
  spec_of defs init comms allow [ "arm" ]

let p1_spec (p : Params.t) =
  let defs = Pa_models.For_figures.p1_defs p 1 @ Pa_models.For_figures.tick_dead in
  let init =
    [ ("P1_1", [ Proc.Value.Bool true ]); ("SW1_1", [ Proc.Value.Int 0 ]) ]
  in
  let comms =
    [
      ("s_reset1_1", "r_reset1_1", "reset1");
      ("s_timeout1_1", "r_timeout1_1", "timeout1");
      ("s_inactivate_v_p1", "r_inactivate_v_p1", "inactivate_v_p1");
    ]
  in
  let allow =
    [
      "reset1";
      "timeout1";
      "inactivate_v_p1";
      "inactivate_nv_p1";
      "r_dlv0_1";
      "s_beat1_1";
    ]
  in
  spec_of defs init comms allow [ "reset1" ]

let p0_component p = Proc.Semantics.lts (p0_spec p)
let p1_component p = Proc.Semantics.lts (p1_spec p)

let hidden (l : Proc.Semantics.label) =
  match l with
  | Proc.Semantics.Act ("tau", _) -> true
  | Proc.Semantics.Act _ | Proc.Semantics.Tick -> false

let p0_reduced p = Lts.Minimize.weak_trace ~hidden (p0_component p)
let p1_reduced p = Lts.Minimize.weak_trace ~hidden (p1_component p)

let label_to_string l = Format.asprintf "%a" Proc.Semantics.pp_label l
