(** Export of timed-automata networks to UPPAAL's textual [.xta] format.

    Lets a downstream user load the models built here into the real
    UPPAAL tool (the one the paper used).  The discrete-time semantics of
    {!Semantics} and UPPAAL's dense-time semantics agree on location
    reachability for these models because all constraints are closed, so
    the exported model checks the same properties.

    Notes on the mapping: clocks and variables become global
    declarations; [Min]/[Max] expressions use UPPAAL's [<?] / [>?]
    operators; clock caps are a state-space device of our checker and do
    not appear in the export. *)

val pp : Format.formatter -> Model.t -> unit
(** Print the network as a self-contained [.xta] document (declarations,
    one [process] per automaton, and the [system] line). *)

val to_string : Model.t -> string
