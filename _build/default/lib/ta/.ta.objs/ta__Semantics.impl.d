lib/ta/semantics.ml: Array Expr Format Hashtbl List Mc Model Option
