lib/ta/xta.mli: Format Model
