lib/ta/xta.ml: Expr Format List Model String
