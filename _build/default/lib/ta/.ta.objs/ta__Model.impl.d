lib/ta/model.ml: Expr
