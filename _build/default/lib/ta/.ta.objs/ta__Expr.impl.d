lib/ta/expr.ml: Format List
