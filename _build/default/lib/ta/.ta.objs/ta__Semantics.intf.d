lib/ta/semantics.mli: Format Mc Model
