lib/ta/model.mli: Expr
