type loc_kind = Normal | Urgent | Committed

type location = {
  loc_name : string;
  kind : loc_kind;
  invariant : Expr.b;
}

let loc ?(kind = Normal) ?(invariant = Expr.True) loc_name =
  { loc_name; kind; invariant }

type sync = Tau | Send of string | Recv of string
type lhs = Scalar of string | Element of string * Expr.t
type update = Assign of lhs * Expr.t | Reset of string

type edge = {
  src : string;
  guard : Expr.b;
  sync : sync;
  updates : update list;
  dst : string;
  act : string option;
}

let edge ?(guard = Expr.True) ?(sync = Tau) ?(updates = []) ?act ~src ~dst ()
    =
  { src; guard; sync; updates; dst; act }

type automaton = {
  auto_name : string;
  locations : location list;
  edges : edge list;
  init_loc : string;
}

type var_decl = { var_name : string; init : int list }

let scalar var_name value = { var_name; init = [ value ] }
let array var_name init = { var_name; init }

type clock_decl = { clock_name : string; cap : int }
type chan_decl = { chan_name : string; broadcast : bool }

let chan ?(broadcast = false) chan_name = { chan_name; broadcast }

type t = {
  vars : var_decl list;
  clocks : clock_decl list;
  chans : chan_decl list;
  automata : automaton list;
}
