(** Timed-automata networks, UPPAAL style.

    A network is a set of automata composed in parallel, communicating by
    handshake or broadcast channels and through shared bounded integer
    variables, with integer-valued clocks that advance in lockstep (the
    discrete-time semantics lives in {!Semantics}).

    Locations can be [Urgent] (time may not pass while occupied) or
    [Committed] (time may not pass, and the next transition must involve a
    committed location) — both are used by the paper's models. *)

type loc_kind = Normal | Urgent | Committed

type location = {
  loc_name : string;
  kind : loc_kind;
  invariant : Expr.b;  (** must hold whenever the location is occupied *)
}

val loc : ?kind:loc_kind -> ?invariant:Expr.b -> string -> location
(** Location constructor; default kind [Normal], default invariant true. *)

type sync =
  | Tau  (** internal step *)
  | Send of string  (** [c!] *)
  | Recv of string  (** [c?] *)

type lhs = Scalar of string | Element of string * Expr.t

type update =
  | Assign of lhs * Expr.t  (** variable assignment, evaluated in order *)
  | Reset of string  (** clock reset to 0 *)

type edge = {
  src : string;
  guard : Expr.b;
  sync : sync;
  updates : update list;
  dst : string;
  act : string option;
      (** optional action name shown on transition labels; defaults to the
          channel name (or ["tau"]) *)
}

val edge :
  ?guard:Expr.b ->
  ?sync:sync ->
  ?updates:update list ->
  ?act:string ->
  src:string ->
  dst:string ->
  unit ->
  edge

type automaton = {
  auto_name : string;
  locations : location list;
  edges : edge list;
  init_loc : string;
}

type var_decl = {
  var_name : string;
  init : int list;  (** one element for scalars, [n] for arrays *)
}

val scalar : string -> int -> var_decl
val array : string -> int list -> var_decl

type clock_decl = {
  clock_name : string;
  cap : int;
      (** values saturate at [cap]; must exceed every constant the clock is
          compared against for the saturation to be sound *)
}

type chan_decl = { chan_name : string; broadcast : bool }

val chan : ?broadcast:bool -> string -> chan_decl

type t = {
  vars : var_decl list;
  clocks : clock_decl list;
  chans : chan_decl list;
  automata : automaton list;
}
