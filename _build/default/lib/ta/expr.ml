type t =
  | Int of int
  | Var of string
  | Elem of string * t
  | Clock of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Min of t * t
  | Max of t * t

type cmp = Lt | Le | Eq | Ge | Gt | Ne

type b =
  | True
  | False
  | Cmp of cmp * t * t
  | Not of b
  | And of b * b
  | Or of b * b

let i n = Int n
let v name = Var name
let clk name = Clock name
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( <> ) a b = Cmp (Ne, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not_ b = Not b
let conj = List.fold_left ( && ) True
let is_true e = Cmp (Ne, e, Int 0)

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Var name -> Format.pp_print_string ppf name
  | Elem (name, e) -> Format.fprintf ppf "%s[%a]" name pp e
  | Clock name -> Format.pp_print_string ppf name
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Min (a, b) -> Format.fprintf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Format.fprintf ppf "max(%a, %a)" pp a pp b

let pp_cmp ppf c =
  Format.pp_print_string ppf
    (match c with
    | Lt -> "<"
    | Le -> "<="
    | Eq -> "=="
    | Ge -> ">="
    | Gt -> ">"
    | Ne -> "!=")

let rec pp_b ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (c, a, b) -> Format.fprintf ppf "%a %a %a" pp a pp_cmp c pp b
  | Not b -> Format.fprintf ppf "!(%a)" pp_b b
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp_b a pp_b b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_b a pp_b b
