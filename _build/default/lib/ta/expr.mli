(** Integer and boolean expressions for timed-automata guards, invariants
    and updates.

    Expressions refer to scalar variables, array elements and clocks by
    name; names are resolved to indices when a network is compiled
    ({!Semantics.compile}).  The language is deliberately small — exactly
    what the UPPAAL models in the paper use: arithmetic, comparisons,
    boolean connectives, and [min]/[max] (for the waiting-time lists of the
    static protocol). *)

type t =
  | Int of int
  | Var of string  (** scalar state variable *)
  | Elem of string * t  (** array element [a\[e\]] *)
  | Clock of string  (** current clock value *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** integer division, rounding toward zero *)
  | Min of t * t
  | Max of t * t

type cmp = Lt | Le | Eq | Ge | Gt | Ne

type b =
  | True
  | False
  | Cmp of cmp * t * t
  | Not of b
  | And of b * b
  | Or of b * b

(** {2 Construction helpers} *)

val i : int -> t
val v : string -> t
val clk : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( < ) : t -> t -> b
val ( <= ) : t -> t -> b
val ( = ) : t -> t -> b
val ( >= ) : t -> t -> b
val ( > ) : t -> t -> b
val ( <> ) : t -> t -> b
val ( && ) : b -> b -> b
val ( || ) : b -> b -> b
val not_ : b -> b
val conj : b list -> b
val is_true : t -> b
(** [is_true e] is [e <> 0] — booleans are stored as 0/1 variables. *)

val pp : Format.formatter -> t -> unit
val pp_b : Format.formatter -> b -> unit
