(* Disjoint union of two LTSs; the second system's states are shifted by
   the first's size.  The union's initial state is arbitrary (graph-level
   algorithms below never rely on it). *)
let union a b =
  let na = Graph.num_states a in
  let transitions =
    Graph.fold_transitions (fun s l s' acc -> (s, l, s') :: acc) a []
    |> Graph.fold_transitions
         (fun s l s' acc -> (s + na, l, s' + na) :: acc)
         b
  in
  Graph.make
    ~num_states:(na + Graph.num_states b)
    ~initial:(Graph.initial a) transitions

let strong_bisimilar a b =
  let u = union a b in
  let _, block = Minimize.strong u in
  block.(Graph.initial a) = block.(Graph.initial b + Graph.num_states a)

let weak_trace_equivalent ~hidden a b =
  let da = Minimize.determinize ~hidden a in
  let db = Minimize.determinize ~hidden b in
  strong_bisimilar da db
