(* Partition refinement for strong bisimilarity (Kanellakis-Smolka).
   Blocks are represented as an int array [block.(s)]; refinement recomputes
   per-state signatures (multiset of (label, target block) pairs) until the
   partition is stable. *)

let strong lts =
  let n = Graph.num_states lts in
  let block = Array.make n 0 in
  let num_blocks = ref (if n = 0 then 0 else 1) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Signature of a state: sorted, deduplicated successor profile. *)
    let signature s =
      Graph.successors lts s
      |> List.map (fun (l, s') -> (l, block.(s')))
      |> List.sort_uniq compare
    in
    let table = Hashtbl.create (2 * n) in
    let next = ref 0 in
    let new_block = Array.make n 0 in
    for s = 0 to n - 1 do
      let key = (block.(s), signature s) in
      match Hashtbl.find_opt table key with
      | Some b -> new_block.(s) <- b
      | None ->
          Hashtbl.add table key !next;
          new_block.(s) <- !next;
          incr next
    done;
    if !next <> !num_blocks then begin
      changed := true;
      num_blocks := !next;
      Array.blit new_block 0 block 0 n
    end
  done;
  let transitions =
    Graph.fold_transitions
      (fun s l s' acc -> (block.(s), l, block.(s')) :: acc)
      lts []
    |> List.sort_uniq compare
  in
  let quotient =
    Graph.make ~num_states:!num_blocks
      ~initial:(if n = 0 then 0 else block.(Graph.initial lts))
      transitions
  in
  (quotient, block)

(* Module over sets of states represented as sorted int lists. *)
module State_set = struct
  type t = int list

  let of_list l = List.sort_uniq compare l

  let closure step (set : t) : t =
    let seen = Hashtbl.create 16 in
    let rec go todo =
      match todo with
      | [] -> ()
      | s :: rest ->
          if Hashtbl.mem seen s then go rest
          else begin
            Hashtbl.add seen s ();
            go (step s @ rest)
          end
    in
    go set;
    Hashtbl.fold (fun s () acc -> s :: acc) seen [] |> List.sort compare
end

let determinize ~hidden lts =
  let tau_step s =
    Graph.successors lts s
    |> List.filter_map (fun (l, s') -> if hidden l then Some s' else None)
  in
  let close set = State_set.closure tau_step set in
  let visible_moves set =
    let table = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun s ->
        List.iter
          (fun (l, s') ->
            if not (hidden l) then begin
              if not (Hashtbl.mem table l) then order := l :: !order;
              Hashtbl.replace table l
                (s' :: (try Hashtbl.find table l with Not_found -> []))
            end)
          (Graph.successors lts s))
      set;
    List.rev_map (fun l -> (l, close (State_set.of_list (Hashtbl.find table l)))) !order
  in
  let index = Hashtbl.create 64 in
  let states = ref [] in
  let count = ref 0 in
  let intern set =
    match Hashtbl.find_opt index set with
    | Some i -> i
    | None ->
        let i = !count in
        Hashtbl.add index set i;
        states := set :: !states;
        incr count;
        i
  in
  let transitions = ref [] in
  let queue = Queue.create () in
  let init = close [ Graph.initial lts ] in
  let init_i = intern init in
  Queue.add (init_i, init) queue;
  let expanded = Hashtbl.create 64 in
  while not (Queue.is_empty queue) do
    let i, set = Queue.pop queue in
    if not (Hashtbl.mem expanded i) then begin
      Hashtbl.add expanded i ();
      List.iter
        (fun (l, set') ->
          let before = !count in
          let j = intern set' in
          transitions := (i, l, j) :: !transitions;
          if j >= before then Queue.add (j, set') queue)
        (visible_moves set)
    end
  done;
  Graph.make ~num_states:!count ~initial:init_i (List.rev !transitions)

let weak_trace ~hidden lts = fst (strong (determinize ~hidden lts))
