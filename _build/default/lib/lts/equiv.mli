(** Equivalence checking between two labelled transition systems.

    Strong bisimilarity is decided by partition refinement on the
    disjoint union; weak-trace equivalence by determinising both systems
    (with the given internal labels hidden) and checking bisimilarity of
    the results, which coincides with language equivalence for
    deterministic systems. *)

val strong_bisimilar : 'l Graph.t -> 'l Graph.t -> bool
(** Are the initial states of the two systems strongly bisimilar?
    Labels are compared structurally across the two systems. *)

val weak_trace_equivalent :
  hidden:('l -> bool) -> 'l Graph.t -> 'l Graph.t -> bool
(** Do the two systems have the same weak traces (visible-label
    sequences, with [hidden] labels treated as internal)? *)
