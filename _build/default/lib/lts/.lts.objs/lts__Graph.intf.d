lib/lts/graph.mli: Format
