lib/lts/dot.mli: Format Graph
