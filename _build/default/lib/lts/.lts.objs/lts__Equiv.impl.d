lib/lts/equiv.ml: Array Graph Minimize
