lib/lts/graph.ml: Array Format Hashtbl List Printf Queue
