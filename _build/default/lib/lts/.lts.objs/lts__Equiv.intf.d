lib/lts/equiv.mli: Graph
