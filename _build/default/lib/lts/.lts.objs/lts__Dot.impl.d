lib/lts/dot.ml: Buffer Format Graph String
