lib/lts/minimize.ml: Array Graph Hashtbl List Queue
