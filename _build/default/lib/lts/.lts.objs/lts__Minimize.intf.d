lib/lts/minimize.mli: Graph
