let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp ?(name = "lts") ~pp_label ppf lts =
  Format.fprintf ppf "digraph %s {@." name;
  Format.fprintf ppf "  rankdir=TB;@.";
  for s = 0 to Graph.num_states lts - 1 do
    let shape = if s = Graph.initial lts then "doublecircle" else "circle" in
    Format.fprintf ppf "  s%d [shape=%s,label=\"%d\"];@." s shape s
  done;
  Graph.fold_transitions
    (fun s l s' () ->
      let label = escape (Format.asprintf "%a" pp_label l) in
      Format.fprintf ppf "  s%d -> s%d [label=\"%s\"];@." s s' label)
    lts ();
  Format.fprintf ppf "}@."

let to_string ?name ~pp_label lts = Format.asprintf "%a" (pp ?name ~pp_label) lts
