(** Graphviz export of labelled transition systems. *)

val pp :
  ?name:string ->
  pp_label:(Format.formatter -> 'l -> unit) ->
  Format.formatter ->
  'l Graph.t ->
  unit
(** [pp ~pp_label ppf lts] writes [lts] in Graphviz dot syntax.  The initial
    state is drawn with a double circle, matching the convention used in the
    paper's automata figures. *)

val to_string :
  ?name:string -> pp_label:(Format.formatter -> 'l -> unit) -> 'l Graph.t -> string
(** Same as {!pp}, into a string. *)
