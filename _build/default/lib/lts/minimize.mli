(** Quotienting of labelled transition systems.

    Provides strong-bisimulation minimisation (partition refinement in the
    style of Kanellakis–Smolka) and weak-trace reduction (saturation of
    internal steps followed by subset construction), the two reductions used
    by the paper to present protocol state spaces (its Figure 1 shows the
    binary protocol's p[0] reduced modulo weak-trace equivalence). *)

val strong : 'l Graph.t -> 'l Graph.t * int array
(** [strong lts] computes the quotient of [lts] under strong bisimilarity.
    Labels are compared with structural equality.  Returns the quotient LTS
    and the map from original states to their equivalence classes. *)

val determinize : hidden:('l -> bool) -> 'l Graph.t -> 'l Graph.t
(** [determinize ~hidden lts] saturates the transitions satisfying [hidden]
    (treating them as internal) and performs a subset construction, yielding
    a deterministic LTS over the visible labels that is weak-trace
    equivalent to [lts]. *)

val weak_trace : hidden:('l -> bool) -> 'l Graph.t -> 'l Graph.t
(** [weak_trace ~hidden lts] is [strong (determinize ~hidden lts)]: the
    minimal deterministic LTS accepting the same weak traces. *)
