(** Interface between state-producing semantics and the explicit-state
    checker.

    Both the process-algebra semantics ({!Proc.Semantics}) and the
    timed-automata semantics ({!Ta.Semantics}) expose their models through
    this signature, so exploration, safety checking and counterexample
    extraction are written once. *)

module type S = sig
  type state
  type label

  val initial : state
  (** The initial configuration. *)

  val successors : state -> (label * state) list
  (** All enabled transitions of a configuration. *)

  val equal_state : state -> state -> bool
  val hash_state : state -> int

  val pp_state : Format.formatter -> state -> unit
  val pp_label : Format.formatter -> label -> unit
end

type ('s, 'l) t = (module S with type state = 's and type label = 'l)
(** A system packaged as a first-class module. *)
