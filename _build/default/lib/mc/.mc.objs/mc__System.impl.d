lib/mc/system.ml: Format
