lib/mc/explore.ml: Array Hashtbl List Lts Queue System
