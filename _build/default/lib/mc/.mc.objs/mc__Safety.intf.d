lib/mc/safety.mli: Format Monitor Regex System
