lib/mc/regex.ml: Array Format Hashtbl List Monitor
