lib/mc/safety.ml: Explore Format List Monitor Regex System
