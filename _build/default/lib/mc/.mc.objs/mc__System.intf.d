lib/mc/system.mli: Format
