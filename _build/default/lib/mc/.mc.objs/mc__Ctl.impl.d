lib/mc/ctl.ml: Array Format Lazy List Lts Queue
