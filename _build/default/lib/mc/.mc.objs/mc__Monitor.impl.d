lib/mc/monitor.ml:
