lib/mc/ctl.mli: Format Lts
