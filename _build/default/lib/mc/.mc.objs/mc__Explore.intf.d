lib/mc/explore.mli: Lts System
