lib/mc/monitor.mli:
