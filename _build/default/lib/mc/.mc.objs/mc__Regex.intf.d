lib/mc/regex.mli: Format Monitor
