(** Regular expressions over transition labels, compiled to monitors.

    The paper states requirements R2 and R3 as modal µ-calculus formulae of
    the shape [\[R\]false] where [R] is a regular expression over action
    predicates (e.g. [\[(¬fault)* · inactivate_nv_p1\]false]).  Such a
    formula is violated exactly when some finite run's label word matches
    [R]; this module compiles [R] to a Thompson NFA and exposes it, lazily
    determinised, as a {!Monitor.t} whose accepting states signal a match of
    the word read so far. *)

type 'l t

val empty : 'l t
(** Matches no word. *)

val eps : 'l t
(** Matches the empty word. *)

val atom : string -> ('l -> bool) -> 'l t
(** [atom name pred] matches any single label satisfying [pred]; [name] is
    used only for printing. *)

val any : 'l t
(** Matches any single label. *)

val seq : 'l t -> 'l t -> 'l t
val alt : 'l t -> 'l t -> 'l t
val star : 'l t -> 'l t
val plus : 'l t -> 'l t
val opt : 'l t -> 'l t

val repeat : 'l t -> int -> 'l t
(** [repeat r n] is [r] concatenated [n] times.
    @raise Invalid_argument if [n < 0]. *)

val seq_list : 'l t list -> 'l t
val alt_list : 'l t list -> 'l t

val pp : Format.formatter -> 'l t -> unit
(** Print the expression using atom names. *)

val matches : 'l t -> 'l list -> bool
(** [matches r word] tests whether [word] is in the language of [r]. *)

val compile : 'l t -> 'l Monitor.t
(** Compile to a monitor that accepts exactly the prefixes of the input
    word that match the expression.  Determinisation is lazy and memoised,
    so only monitor states actually reached during exploration are built. *)
