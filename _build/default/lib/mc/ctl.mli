(** CTL model checking over explored state graphs.

    Complements the on-the-fly safety checking of {!Safety} with full
    branching-time logic on an already-built {!Lts.Graph.t} (typically
    from {!Explore.space}).  Used in this project for liveness-flavoured
    sanity properties of the protocol models — e.g. non-zenoness: from
    every reachable configuration a time step remains reachable,
    [AG (EF (Can delay))]. *)

type 'l t =
  | True
  | False
  | Atom of string * (int -> bool)
      (** predicate over state indices of the graph; the name is used for
          printing only *)
  | Can of string * ('l -> bool)
      (** some outgoing transition carries a matching label *)
  | Not of 'l t
  | And of 'l t * 'l t
  | Or of 'l t * 'l t
  | EX of 'l t
  | EF of 'l t
  | EG of 'l t
  | AX of 'l t
  | AF of 'l t
  | AG of 'l t
  | EU of 'l t * 'l t
  | AU of 'l t * 'l t

val atom : string -> (int -> bool) -> 'l t
val can : string -> ('l -> bool) -> 'l t
val implies : 'l t -> 'l t -> 'l t
val pp : Format.formatter -> 'l t -> unit

val eval : 'l Lts.Graph.t -> 'l t -> bool array
(** The set of states satisfying the formula, as a characteristic
    array.

    Path quantifiers use the standard fixpoint characterisations over the
    finite graph.  Deadlocked states have no successors, so [EX f] (and
    hence [EF]-steps, [EG], …) are false there, while [AX f] is
    vacuously true. *)

val holds : 'l Lts.Graph.t -> 'l t -> bool
(** Does the initial state satisfy the formula? *)

val witness_ef : 'l Lts.Graph.t -> 'l t -> 'l list option
(** For a formula [EF f]-style query: a shortest path from the initial
    state to a state satisfying [f] (None if unreachable). *)
