type 'l t = {
  start : int;
  step : int -> 'l -> int;
  accepting : int -> bool;
}

(* State 1 is the absorbing "violated" state in the simple monitors. *)

let never bad =
  {
    start = 0;
    step = (fun q l -> if q = 1 || bad l then 1 else 0);
    accepting = (fun q -> q = 1);
  }

let always good = never (fun l -> not (good l))

let precedence ~fault ~bad =
  (* 0 = watching, 1 = violated, 2 = discharged (a fault occurred first). *)
  {
    start = 0;
    step =
      (fun q l ->
        match q with
        | 0 -> if fault l then 2 else if bad l then 1 else 0
        | q -> q);
    accepting = (fun q -> q = 1);
  }

let deadline ~tick ~reset ~ok n =
  (* States 0..n count ticks since the last reset; n+1 = violated;
     n+2 = discharged. *)
  let violated = n + 1 and discharged = n + 2 in
  {
    start = 0;
    step =
      (fun q l ->
        if q = violated || q = discharged then q
        else if ok l then discharged
        else if reset l then 0
        else if tick l then if q >= n then violated else q + 1
        else q);
    accepting = (fun q -> q = violated);
  }

let deadline_after ~arm ~tick ~reset ~ok n =
  (* State -1 = unarmed; 0..n ticks since last reset; n+1 = violated;
     n+2 = discharged. *)
  let unarmed = -1 and violated = n + 1 and discharged = n + 2 in
  {
    start = unarmed;
    step =
      (fun q l ->
        if q = violated || q = discharged then q
        else if ok l then discharged
        else if q = unarmed then if arm l then 0 else unarmed
        else if reset l then 0
        else if tick l then if q >= n then violated else q + 1
        else q);
    accepting = (fun q -> q = violated);
  }
