module type S = sig
  type state
  type label

  val initial : state
  val successors : state -> (label * state) list
  val equal_state : state -> state -> bool
  val hash_state : state -> int
  val pp_state : Format.formatter -> state -> unit
  val pp_label : Format.formatter -> label -> unit
end

type ('s, 'l) t = (module S with type state = 's and type label = 'l)
