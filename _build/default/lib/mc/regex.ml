type 'l t =
  | Empty
  | Eps
  | Atom of string * ('l -> bool)
  | Seq of 'l t * 'l t
  | Alt of 'l t * 'l t
  | Star of 'l t

let empty = Empty
let eps = Eps
let atom name pred = Atom (name, pred)
let any = Atom ("any", fun _ -> true)

let seq a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Eps, r | r, Eps -> r
  | a, b -> Seq (a, b)

let alt a b =
  match (a, b) with Empty, r | r, Empty -> r | a, b -> Alt (a, b)

let star = function Empty | Eps -> Eps | r -> Star r
let plus r = seq r (star r)
let opt r = alt eps r

let repeat r n =
  if n < 0 then invalid_arg "Mc.Regex.repeat: negative count";
  let rec go n acc = if n = 0 then acc else go (n - 1) (seq r acc) in
  go n eps

let seq_list rs = List.fold_right seq rs eps
let alt_list rs = List.fold_left alt empty rs

let rec pp ppf = function
  | Empty -> Format.pp_print_string ppf "0"
  | Eps -> Format.pp_print_string ppf "eps"
  | Atom (name, _) -> Format.pp_print_string ppf name
  | Seq (a, b) -> Format.fprintf ppf "%a.%a" pp_tight a pp_tight b
  | Alt (a, b) -> Format.fprintf ppf "%a + %a" pp a pp b
  | Star r -> Format.fprintf ppf "%a*" pp_tight r

and pp_tight ppf r =
  match r with
  | Alt _ | Seq _ -> Format.fprintf ppf "(%a)" pp r
  | _ -> pp ppf r

(* Thompson construction.  NFA states are integers; [eps_edges] and
   [atom_edges] are populated by [build], which for fragment (entry, exit)
   wires sub-fragments together with epsilon transitions. *)
type 'l nfa = {
  num : int;
  eps_edges : int list array;
  atom_edges : (('l -> bool) * int) list array;
  nfa_start : int;
  nfa_final : int;
}

let to_nfa (r : 'l t) : 'l nfa =
  let count = ref 0 in
  let eps_acc = ref [] and atom_acc = ref [] in
  let fresh () =
    let i = !count in
    incr count;
    i
  in
  let add_eps a b = eps_acc := (a, b) :: !eps_acc in
  let add_atom a pred b = atom_acc := (a, pred, b) :: !atom_acc in
  let rec build r =
    match r with
    | Empty ->
        let i = fresh () and f = fresh () in
        (i, f)
    | Eps ->
        let i = fresh () in
        (i, i)
    | Atom (_, pred) ->
        let i = fresh () and f = fresh () in
        add_atom i pred f;
        (i, f)
    | Seq (a, b) ->
        let ia, fa = build a in
        let ib, fb = build b in
        add_eps fa ib;
        (ia, fb)
    | Alt (a, b) ->
        let i = fresh () and f = fresh () in
        let ia, fa = build a in
        let ib, fb = build b in
        add_eps i ia;
        add_eps i ib;
        add_eps fa f;
        add_eps fb f;
        (i, f)
    | Star a ->
        let i = fresh () in
        let ia, fa = build a in
        add_eps i ia;
        add_eps fa i;
        (i, i)
  in
  let nfa_start, nfa_final = build r in
  let num = !count in
  let eps_edges = Array.make num [] in
  let atom_edges = Array.make num [] in
  List.iter (fun (a, b) -> eps_edges.(a) <- b :: eps_edges.(a)) !eps_acc;
  List.iter
    (fun (a, pred, b) -> atom_edges.(a) <- (pred, b) :: atom_edges.(a))
    !atom_acc;
  { num; eps_edges; atom_edges; nfa_start; nfa_final }

(* Epsilon closure of a set of NFA states, as a sorted list. *)
let closure nfa set =
  let seen = Array.make nfa.num false in
  let rec go = function
    | [] -> ()
    | s :: rest ->
        if seen.(s) then go rest
        else begin
          seen.(s) <- true;
          go (nfa.eps_edges.(s) @ rest)
        end
  in
  go set;
  let out = ref [] in
  for s = nfa.num - 1 downto 0 do
    if seen.(s) then out := s :: !out
  done;
  !out

let move nfa set label =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun (pred, s') -> if pred label then Some s' else None)
        nfa.atom_edges.(s))
    set

let matches r word =
  let nfa = to_nfa r in
  let rec go set = function
    | [] -> List.mem nfa.nfa_final set
    | l :: rest ->
        let set' = closure nfa (move nfa set l) in
        set' <> [] && go set' rest
  in
  go (closure nfa [ nfa.nfa_start ]) word

let compile (r : 'l t) : 'l Monitor.t =
  let nfa = to_nfa r in
  (* Lazy subset construction: determinised states (sorted NFA-state lists)
     are interned as integers; transitions are memoised per (state, label)
     pair so exploration pays for each combination only once. *)
  let intern_tbl : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let sets = ref [||] in
  let size = ref 0 in
  let intern set =
    match Hashtbl.find_opt intern_tbl set with
    | Some q -> q
    | None ->
        let q = !size in
        Hashtbl.add intern_tbl set q;
        if q >= Array.length !sets then
          sets := Array.append !sets (Array.make (max 16 (q + 1)) []);
        !sets.(q) <- set;
        incr size;
        q
  in
  let accepting_tbl = Hashtbl.create 64 in
  let accepting q =
    match Hashtbl.find_opt accepting_tbl q with
    | Some b -> b
    | None ->
        let b = List.mem nfa.nfa_final !sets.(q) in
        Hashtbl.add accepting_tbl q b;
        b
  in
  let step_tbl = Hashtbl.create 256 in
  let step q label =
    match Hashtbl.find_opt step_tbl (q, label) with
    | Some q' -> q'
    | None ->
        let set' = closure nfa (move nfa !sets.(q) label) in
        let q' = intern set' in
        Hashtbl.add step_tbl (q, label) q';
        q'
  in
  let start = intern (closure nfa [ nfa.nfa_start ]) in
  { Monitor.start; step; accepting }
