(** Finite-state observers over transition labels.

    A monitor reads the labels of a run one by one and flags when the word
    read so far violates a safety property (equivalently: matches the
    "forbidden prefix" language).  Monitors are deterministic from the
    outside — states are opaque integers — which makes the product with a
    {!System.S} straightforward. *)

type 'l t = {
  start : int;
  step : int -> 'l -> int;
  accepting : int -> bool;
      (** [accepting q] holds when the word read so far is forbidden. *)
}

val never : ('l -> bool) -> 'l t
(** [never bad] accepts as soon as a label satisfying [bad] occurs. *)

val always : ('l -> bool) -> 'l t
(** [always good] accepts as soon as a label violates [good]. *)

val precedence : fault:('l -> bool) -> bad:('l -> bool) -> 'l t
(** [precedence ~fault ~bad] accepts when a [bad] label occurs before any
    [fault] label: the safety property "bad only after fault", the shape of
    the paper's requirements R2 and R3 ([\[(not fault)* . bad\]false]). *)

val deadline : tick:('l -> bool) -> reset:('l -> bool) -> ok:('l -> bool) -> int -> 'l t
(** [deadline ~tick ~reset ~ok n] accepts when more than [n] ticks pass with
    no [reset] label and no [ok] label in between: the watchdog shape of
    requirement R1 ("if no heartbeat for [2*tmax] then inactivation").
    [reset] restarts the count; [ok] discharges the obligation forever. *)

val deadline_after :
  arm:('l -> bool) ->
  tick:('l -> bool) ->
  reset:('l -> bool) ->
  ok:('l -> bool) ->
  int ->
  'l t
(** Like {!deadline}, but inert until a label satisfying [arm] occurs
    (which also counts as the first reset) — the watchdog shape for the
    joining phases of the expanding/dynamic protocols, where the
    obligation only starts once the coordinator has heard from the
    participant.  A label satisfying [ok] before arming disarms it for
    good. *)
